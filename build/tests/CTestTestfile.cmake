# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_ip[1]_include.cmake")
include("/root/repo/build/tests/test_adapter[1]_include.cmake")
include("/root/repo/build/tests/test_wrapper[1]_include.cmake")
include("/root/repo/build/tests/test_shell[1]_include.cmake")
include("/root/repo/build/tests/test_cmd[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_roles[1]_include.cmake")
include("/root/repo/build/tests/test_frameworks[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
