file(REMOVE_RECURSE
  "CMakeFiles/test_cmd.dir/cmd/test_command.cc.o"
  "CMakeFiles/test_cmd.dir/cmd/test_command.cc.o.d"
  "CMakeFiles/test_cmd.dir/cmd/test_control_kernel.cc.o"
  "CMakeFiles/test_cmd.dir/cmd/test_control_kernel.cc.o.d"
  "test_cmd"
  "test_cmd.pdb"
  "test_cmd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
