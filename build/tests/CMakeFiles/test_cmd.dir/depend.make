# Empty dependencies file for test_cmd.
# This may be replaced when dependencies are built.
