
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/shell/test_cdc.cc" "tests/CMakeFiles/test_shell.dir/shell/test_cdc.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_cdc.cc.o.d"
  "/root/repo/tests/shell/test_health.cc" "tests/CMakeFiles/test_shell.dir/shell/test_health.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_health.cc.o.d"
  "/root/repo/tests/shell/test_host_rbb.cc" "tests/CMakeFiles/test_shell.dir/shell/test_host_rbb.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_host_rbb.cc.o.d"
  "/root/repo/tests/shell/test_memory_rbb.cc" "tests/CMakeFiles/test_shell.dir/shell/test_memory_rbb.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_memory_rbb.cc.o.d"
  "/root/repo/tests/shell/test_network_rbb.cc" "tests/CMakeFiles/test_shell.dir/shell/test_network_rbb.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_network_rbb.cc.o.d"
  "/root/repo/tests/shell/test_partial_reconfig.cc" "tests/CMakeFiles/test_shell.dir/shell/test_partial_reconfig.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_partial_reconfig.cc.o.d"
  "/root/repo/tests/shell/test_rbb.cc" "tests/CMakeFiles/test_shell.dir/shell/test_rbb.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_rbb.cc.o.d"
  "/root/repo/tests/shell/test_tailoring.cc" "tests/CMakeFiles/test_shell.dir/shell/test_tailoring.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_tailoring.cc.o.d"
  "/root/repo/tests/shell/test_unified_shell.cc" "tests/CMakeFiles/test_shell.dir/shell/test_unified_shell.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_unified_shell.cc.o.d"
  "/root/repo/tests/shell/test_workload_model.cc" "tests/CMakeFiles/test_shell.dir/shell/test_workload_model.cc.o" "gcc" "tests/CMakeFiles/test_shell.dir/shell/test_workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
