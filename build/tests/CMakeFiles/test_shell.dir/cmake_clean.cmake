file(REMOVE_RECURSE
  "CMakeFiles/test_shell.dir/shell/test_cdc.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_cdc.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_health.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_health.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_host_rbb.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_host_rbb.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_memory_rbb.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_memory_rbb.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_network_rbb.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_network_rbb.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_partial_reconfig.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_partial_reconfig.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_rbb.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_rbb.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_tailoring.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_tailoring.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_unified_shell.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_unified_shell.cc.o.d"
  "CMakeFiles/test_shell.dir/shell/test_workload_model.cc.o"
  "CMakeFiles/test_shell.dir/shell/test_workload_model.cc.o.d"
  "test_shell"
  "test_shell.pdb"
  "test_shell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
