
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rtl/test_arbiter.cc" "tests/CMakeFiles/test_rtl.dir/rtl/test_arbiter.cc.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_arbiter.cc.o.d"
  "/root/repo/tests/rtl/test_async_fifo.cc" "tests/CMakeFiles/test_rtl.dir/rtl/test_async_fifo.cc.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_async_fifo.cc.o.d"
  "/root/repo/tests/rtl/test_crc.cc" "tests/CMakeFiles/test_rtl.dir/rtl/test_crc.cc.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_crc.cc.o.d"
  "/root/repo/tests/rtl/test_fifo.cc" "tests/CMakeFiles/test_rtl.dir/rtl/test_fifo.cc.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_fifo.cc.o.d"
  "/root/repo/tests/rtl/test_pipeline.cc" "tests/CMakeFiles/test_rtl.dir/rtl/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_pipeline.cc.o.d"
  "/root/repo/tests/rtl/test_width_converter.cc" "tests/CMakeFiles/test_rtl.dir/rtl/test_width_converter.cc.o" "gcc" "tests/CMakeFiles/test_rtl.dir/rtl/test_width_converter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
