file(REMOVE_RECURSE
  "CMakeFiles/test_rtl.dir/rtl/test_arbiter.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/test_arbiter.cc.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_async_fifo.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/test_async_fifo.cc.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_crc.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/test_crc.cc.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_fifo.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/test_fifo.cc.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_pipeline.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/test_pipeline.cc.o.d"
  "CMakeFiles/test_rtl.dir/rtl/test_width_converter.cc.o"
  "CMakeFiles/test_rtl.dir/rtl/test_width_converter.cc.o.d"
  "test_rtl"
  "test_rtl.pdb"
  "test_rtl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
