
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/roles/test_board_test.cc" "tests/CMakeFiles/test_roles.dir/roles/test_board_test.cc.o" "gcc" "tests/CMakeFiles/test_roles.dir/roles/test_board_test.cc.o.d"
  "/root/repo/tests/roles/test_host_network.cc" "tests/CMakeFiles/test_roles.dir/roles/test_host_network.cc.o" "gcc" "tests/CMakeFiles/test_roles.dir/roles/test_host_network.cc.o.d"
  "/root/repo/tests/roles/test_l4lb.cc" "tests/CMakeFiles/test_roles.dir/roles/test_l4lb.cc.o" "gcc" "tests/CMakeFiles/test_roles.dir/roles/test_l4lb.cc.o.d"
  "/root/repo/tests/roles/test_retrieval.cc" "tests/CMakeFiles/test_roles.dir/roles/test_retrieval.cc.o" "gcc" "tests/CMakeFiles/test_roles.dir/roles/test_retrieval.cc.o.d"
  "/root/repo/tests/roles/test_sec_gateway.cc" "tests/CMakeFiles/test_roles.dir/roles/test_sec_gateway.cc.o" "gcc" "tests/CMakeFiles/test_roles.dir/roles/test_sec_gateway.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
