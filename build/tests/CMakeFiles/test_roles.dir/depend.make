# Empty dependencies file for test_roles.
# This may be replaced when dependencies are built.
