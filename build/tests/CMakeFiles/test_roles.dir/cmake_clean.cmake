file(REMOVE_RECURSE
  "CMakeFiles/test_roles.dir/roles/test_board_test.cc.o"
  "CMakeFiles/test_roles.dir/roles/test_board_test.cc.o.d"
  "CMakeFiles/test_roles.dir/roles/test_host_network.cc.o"
  "CMakeFiles/test_roles.dir/roles/test_host_network.cc.o.d"
  "CMakeFiles/test_roles.dir/roles/test_l4lb.cc.o"
  "CMakeFiles/test_roles.dir/roles/test_l4lb.cc.o.d"
  "CMakeFiles/test_roles.dir/roles/test_retrieval.cc.o"
  "CMakeFiles/test_roles.dir/roles/test_retrieval.cc.o.d"
  "CMakeFiles/test_roles.dir/roles/test_sec_gateway.cc.o"
  "CMakeFiles/test_roles.dir/roles/test_sec_gateway.cc.o.d"
  "test_roles"
  "test_roles.pdb"
  "test_roles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
