file(REMOVE_RECURSE
  "CMakeFiles/test_wrapper.dir/wrapper/test_beat_wrapper.cc.o"
  "CMakeFiles/test_wrapper.dir/wrapper/test_beat_wrapper.cc.o.d"
  "CMakeFiles/test_wrapper.dir/wrapper/test_memmap_wrapper.cc.o"
  "CMakeFiles/test_wrapper.dir/wrapper/test_memmap_wrapper.cc.o.d"
  "CMakeFiles/test_wrapper.dir/wrapper/test_reg_wrapper.cc.o"
  "CMakeFiles/test_wrapper.dir/wrapper/test_reg_wrapper.cc.o.d"
  "CMakeFiles/test_wrapper.dir/wrapper/test_stream_wrapper.cc.o"
  "CMakeFiles/test_wrapper.dir/wrapper/test_stream_wrapper.cc.o.d"
  "CMakeFiles/test_wrapper.dir/wrapper/test_uniform.cc.o"
  "CMakeFiles/test_wrapper.dir/wrapper/test_uniform.cc.o.d"
  "test_wrapper"
  "test_wrapper.pdb"
  "test_wrapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
