
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wrapper/test_beat_wrapper.cc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_beat_wrapper.cc.o" "gcc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_beat_wrapper.cc.o.d"
  "/root/repo/tests/wrapper/test_memmap_wrapper.cc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_memmap_wrapper.cc.o" "gcc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_memmap_wrapper.cc.o.d"
  "/root/repo/tests/wrapper/test_reg_wrapper.cc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_reg_wrapper.cc.o" "gcc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_reg_wrapper.cc.o.d"
  "/root/repo/tests/wrapper/test_stream_wrapper.cc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_stream_wrapper.cc.o" "gcc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_stream_wrapper.cc.o.d"
  "/root/repo/tests/wrapper/test_uniform.cc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_uniform.cc.o" "gcc" "tests/CMakeFiles/test_wrapper.dir/wrapper/test_uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
