file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_matmul.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_matmul.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_packet_gen.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_packet_gen.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_tcp_model.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_tcp_model.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_vector_db.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_vector_db.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
