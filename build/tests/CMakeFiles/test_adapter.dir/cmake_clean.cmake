file(REMOVE_RECURSE
  "CMakeFiles/test_adapter.dir/adapter/test_device_adapter.cc.o"
  "CMakeFiles/test_adapter.dir/adapter/test_device_adapter.cc.o.d"
  "CMakeFiles/test_adapter.dir/adapter/test_toolchain.cc.o"
  "CMakeFiles/test_adapter.dir/adapter/test_toolchain.cc.o.d"
  "CMakeFiles/test_adapter.dir/adapter/test_vendor_adapter.cc.o"
  "CMakeFiles/test_adapter.dir/adapter/test_vendor_adapter.cc.o.d"
  "test_adapter"
  "test_adapter.pdb"
  "test_adapter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
