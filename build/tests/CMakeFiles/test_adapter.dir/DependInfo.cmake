
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/adapter/test_device_adapter.cc" "tests/CMakeFiles/test_adapter.dir/adapter/test_device_adapter.cc.o" "gcc" "tests/CMakeFiles/test_adapter.dir/adapter/test_device_adapter.cc.o.d"
  "/root/repo/tests/adapter/test_toolchain.cc" "tests/CMakeFiles/test_adapter.dir/adapter/test_toolchain.cc.o" "gcc" "tests/CMakeFiles/test_adapter.dir/adapter/test_toolchain.cc.o.d"
  "/root/repo/tests/adapter/test_vendor_adapter.cc" "tests/CMakeFiles/test_adapter.dir/adapter/test_vendor_adapter.cc.o" "gcc" "tests/CMakeFiles/test_adapter.dir/adapter/test_vendor_adapter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
