
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ip/test_catalog.cc" "tests/CMakeFiles/test_ip.dir/ip/test_catalog.cc.o" "gcc" "tests/CMakeFiles/test_ip.dir/ip/test_catalog.cc.o.d"
  "/root/repo/tests/ip/test_dma_ip.cc" "tests/CMakeFiles/test_ip.dir/ip/test_dma_ip.cc.o" "gcc" "tests/CMakeFiles/test_ip.dir/ip/test_dma_ip.cc.o.d"
  "/root/repo/tests/ip/test_ip_block.cc" "tests/CMakeFiles/test_ip.dir/ip/test_ip_block.cc.o" "gcc" "tests/CMakeFiles/test_ip.dir/ip/test_ip_block.cc.o.d"
  "/root/repo/tests/ip/test_mac_ip.cc" "tests/CMakeFiles/test_ip.dir/ip/test_mac_ip.cc.o" "gcc" "tests/CMakeFiles/test_ip.dir/ip/test_mac_ip.cc.o.d"
  "/root/repo/tests/ip/test_memory_ip.cc" "tests/CMakeFiles/test_ip.dir/ip/test_memory_ip.cc.o" "gcc" "tests/CMakeFiles/test_ip.dir/ip/test_memory_ip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
