file(REMOVE_RECURSE
  "CMakeFiles/test_ip.dir/ip/test_catalog.cc.o"
  "CMakeFiles/test_ip.dir/ip/test_catalog.cc.o.d"
  "CMakeFiles/test_ip.dir/ip/test_dma_ip.cc.o"
  "CMakeFiles/test_ip.dir/ip/test_dma_ip.cc.o.d"
  "CMakeFiles/test_ip.dir/ip/test_ip_block.cc.o"
  "CMakeFiles/test_ip.dir/ip/test_ip_block.cc.o.d"
  "CMakeFiles/test_ip.dir/ip/test_mac_ip.cc.o"
  "CMakeFiles/test_ip.dir/ip/test_mac_ip.cc.o.d"
  "CMakeFiles/test_ip.dir/ip/test_memory_ip.cc.o"
  "CMakeFiles/test_ip.dir/ip/test_memory_ip.cc.o.d"
  "test_ip"
  "test_ip.pdb"
  "test_ip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
