file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/protocol/test_avalon_st.cc.o"
  "CMakeFiles/test_protocol.dir/protocol/test_avalon_st.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_axi_stream.cc.o"
  "CMakeFiles/test_protocol.dir/protocol/test_axi_stream.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_mm.cc.o"
  "CMakeFiles/test_protocol.dir/protocol/test_mm.cc.o.d"
  "CMakeFiles/test_protocol.dir/protocol/test_translate.cc.o"
  "CMakeFiles/test_protocol.dir/protocol/test_translate.cc.o.d"
  "test_protocol"
  "test_protocol.pdb"
  "test_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
