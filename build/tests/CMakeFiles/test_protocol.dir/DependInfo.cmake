
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocol/test_avalon_st.cc" "tests/CMakeFiles/test_protocol.dir/protocol/test_avalon_st.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/test_avalon_st.cc.o.d"
  "/root/repo/tests/protocol/test_axi_stream.cc" "tests/CMakeFiles/test_protocol.dir/protocol/test_axi_stream.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/test_axi_stream.cc.o.d"
  "/root/repo/tests/protocol/test_mm.cc" "tests/CMakeFiles/test_protocol.dir/protocol/test_mm.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/test_mm.cc.o.d"
  "/root/repo/tests/protocol/test_translate.cc" "tests/CMakeFiles/test_protocol.dir/protocol/test_translate.cc.o" "gcc" "tests/CMakeFiles/test_protocol.dir/protocol/test_translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/harmonia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
