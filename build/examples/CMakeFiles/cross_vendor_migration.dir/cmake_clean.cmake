file(REMOVE_RECURSE
  "CMakeFiles/cross_vendor_migration.dir/cross_vendor_migration.cc.o"
  "CMakeFiles/cross_vendor_migration.dir/cross_vendor_migration.cc.o.d"
  "cross_vendor_migration"
  "cross_vendor_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_vendor_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
