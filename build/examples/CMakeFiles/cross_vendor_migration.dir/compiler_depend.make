# Empty compiler generated dependencies file for cross_vendor_migration.
# This may be replaced when dependencies are built.
