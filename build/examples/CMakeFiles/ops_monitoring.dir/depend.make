# Empty dependencies file for ops_monitoring.
# This may be replaced when dependencies are built.
