file(REMOVE_RECURSE
  "CMakeFiles/ops_monitoring.dir/ops_monitoring.cc.o"
  "CMakeFiles/ops_monitoring.dir/ops_monitoring.cc.o.d"
  "ops_monitoring"
  "ops_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
