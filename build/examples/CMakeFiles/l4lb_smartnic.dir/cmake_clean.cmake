file(REMOVE_RECURSE
  "CMakeFiles/l4lb_smartnic.dir/l4lb_smartnic.cc.o"
  "CMakeFiles/l4lb_smartnic.dir/l4lb_smartnic.cc.o.d"
  "l4lb_smartnic"
  "l4lb_smartnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l4lb_smartnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
