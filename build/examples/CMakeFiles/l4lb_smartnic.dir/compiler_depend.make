# Empty compiler generated dependencies file for l4lb_smartnic.
# This may be replaced when dependencies are built.
