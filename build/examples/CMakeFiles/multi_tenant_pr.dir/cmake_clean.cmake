file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_pr.dir/multi_tenant_pr.cc.o"
  "CMakeFiles/multi_tenant_pr.dir/multi_tenant_pr.cc.o.d"
  "multi_tenant_pr"
  "multi_tenant_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
