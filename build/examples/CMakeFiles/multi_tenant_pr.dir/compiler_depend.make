# Empty compiler generated dependencies file for multi_tenant_pr.
# This may be replaced when dependencies are built.
