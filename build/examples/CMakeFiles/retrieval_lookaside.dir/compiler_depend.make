# Empty compiler generated dependencies file for retrieval_lookaside.
# This may be replaced when dependencies are built.
