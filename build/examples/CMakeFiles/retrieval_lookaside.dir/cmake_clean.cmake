file(REMOVE_RECURSE
  "CMakeFiles/retrieval_lookaside.dir/retrieval_lookaside.cc.o"
  "CMakeFiles/retrieval_lookaside.dir/retrieval_lookaside.cc.o.d"
  "retrieval_lookaside"
  "retrieval_lookaside.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieval_lookaside.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
