
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapter/device_adapter.cc" "src/CMakeFiles/harmonia.dir/adapter/device_adapter.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/adapter/device_adapter.cc.o.d"
  "/root/repo/src/adapter/toolchain.cc" "src/CMakeFiles/harmonia.dir/adapter/toolchain.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/adapter/toolchain.cc.o.d"
  "/root/repo/src/adapter/vendor_adapter.cc" "src/CMakeFiles/harmonia.dir/adapter/vendor_adapter.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/adapter/vendor_adapter.cc.o.d"
  "/root/repo/src/cmd/command.cc" "src/CMakeFiles/harmonia.dir/cmd/command.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/cmd/command.cc.o.d"
  "/root/repo/src/cmd/command_codes.cc" "src/CMakeFiles/harmonia.dir/cmd/command_codes.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/cmd/command_codes.cc.o.d"
  "/root/repo/src/cmd/control_kernel.cc" "src/CMakeFiles/harmonia.dir/cmd/control_kernel.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/cmd/control_kernel.cc.o.d"
  "/root/repo/src/common/checksum.cc" "src/CMakeFiles/harmonia.dir/common/checksum.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/common/checksum.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/harmonia.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/harmonia.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/common/stats.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/harmonia.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/common/strings.cc.o.d"
  "/root/repo/src/device/chip.cc" "src/CMakeFiles/harmonia.dir/device/chip.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/device/chip.cc.o.d"
  "/root/repo/src/device/database.cc" "src/CMakeFiles/harmonia.dir/device/database.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/device/database.cc.o.d"
  "/root/repo/src/device/peripheral.cc" "src/CMakeFiles/harmonia.dir/device/peripheral.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/device/peripheral.cc.o.d"
  "/root/repo/src/device/resource.cc" "src/CMakeFiles/harmonia.dir/device/resource.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/device/resource.cc.o.d"
  "/root/repo/src/frameworks/comparison.cc" "src/CMakeFiles/harmonia.dir/frameworks/comparison.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/frameworks/comparison.cc.o.d"
  "/root/repo/src/frameworks/coyote.cc" "src/CMakeFiles/harmonia.dir/frameworks/coyote.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/frameworks/coyote.cc.o.d"
  "/root/repo/src/frameworks/framework.cc" "src/CMakeFiles/harmonia.dir/frameworks/framework.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/frameworks/framework.cc.o.d"
  "/root/repo/src/frameworks/oneapi.cc" "src/CMakeFiles/harmonia.dir/frameworks/oneapi.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/frameworks/oneapi.cc.o.d"
  "/root/repo/src/frameworks/vitis.cc" "src/CMakeFiles/harmonia.dir/frameworks/vitis.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/frameworks/vitis.cc.o.d"
  "/root/repo/src/host/cmd_driver.cc" "src/CMakeFiles/harmonia.dir/host/cmd_driver.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/host/cmd_driver.cc.o.d"
  "/root/repo/src/host/dma_engine.cc" "src/CMakeFiles/harmonia.dir/host/dma_engine.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/host/dma_engine.cc.o.d"
  "/root/repo/src/host/host_app.cc" "src/CMakeFiles/harmonia.dir/host/host_app.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/host/host_app.cc.o.d"
  "/root/repo/src/host/reg_driver.cc" "src/CMakeFiles/harmonia.dir/host/reg_driver.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/host/reg_driver.cc.o.d"
  "/root/repo/src/ip/catalog.cc" "src/CMakeFiles/harmonia.dir/ip/catalog.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/ip/catalog.cc.o.d"
  "/root/repo/src/ip/dma_ip.cc" "src/CMakeFiles/harmonia.dir/ip/dma_ip.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/ip/dma_ip.cc.o.d"
  "/root/repo/src/ip/ip_block.cc" "src/CMakeFiles/harmonia.dir/ip/ip_block.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/ip/ip_block.cc.o.d"
  "/root/repo/src/ip/mac_ip.cc" "src/CMakeFiles/harmonia.dir/ip/mac_ip.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/ip/mac_ip.cc.o.d"
  "/root/repo/src/ip/memory_ip.cc" "src/CMakeFiles/harmonia.dir/ip/memory_ip.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/ip/memory_ip.cc.o.d"
  "/root/repo/src/protocol/avalon_mm.cc" "src/CMakeFiles/harmonia.dir/protocol/avalon_mm.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/protocol/avalon_mm.cc.o.d"
  "/root/repo/src/protocol/avalon_st.cc" "src/CMakeFiles/harmonia.dir/protocol/avalon_st.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/protocol/avalon_st.cc.o.d"
  "/root/repo/src/protocol/axi_mm.cc" "src/CMakeFiles/harmonia.dir/protocol/axi_mm.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/protocol/axi_mm.cc.o.d"
  "/root/repo/src/protocol/axi_stream.cc" "src/CMakeFiles/harmonia.dir/protocol/axi_stream.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/protocol/axi_stream.cc.o.d"
  "/root/repo/src/protocol/translate.cc" "src/CMakeFiles/harmonia.dir/protocol/translate.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/protocol/translate.cc.o.d"
  "/root/repo/src/roles/board_test.cc" "src/CMakeFiles/harmonia.dir/roles/board_test.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/roles/board_test.cc.o.d"
  "/root/repo/src/roles/host_network.cc" "src/CMakeFiles/harmonia.dir/roles/host_network.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/roles/host_network.cc.o.d"
  "/root/repo/src/roles/l4lb.cc" "src/CMakeFiles/harmonia.dir/roles/l4lb.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/roles/l4lb.cc.o.d"
  "/root/repo/src/roles/retrieval.cc" "src/CMakeFiles/harmonia.dir/roles/retrieval.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/roles/retrieval.cc.o.d"
  "/root/repo/src/roles/role.cc" "src/CMakeFiles/harmonia.dir/roles/role.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/roles/role.cc.o.d"
  "/root/repo/src/roles/sec_gateway.cc" "src/CMakeFiles/harmonia.dir/roles/sec_gateway.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/roles/sec_gateway.cc.o.d"
  "/root/repo/src/rtl/arbiter.cc" "src/CMakeFiles/harmonia.dir/rtl/arbiter.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/rtl/arbiter.cc.o.d"
  "/root/repo/src/rtl/async_fifo.cc" "src/CMakeFiles/harmonia.dir/rtl/async_fifo.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/rtl/async_fifo.cc.o.d"
  "/root/repo/src/rtl/crc.cc" "src/CMakeFiles/harmonia.dir/rtl/crc.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/rtl/crc.cc.o.d"
  "/root/repo/src/rtl/width_converter.cc" "src/CMakeFiles/harmonia.dir/rtl/width_converter.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/rtl/width_converter.cc.o.d"
  "/root/repo/src/shell/cdc.cc" "src/CMakeFiles/harmonia.dir/shell/cdc.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/cdc.cc.o.d"
  "/root/repo/src/shell/health.cc" "src/CMakeFiles/harmonia.dir/shell/health.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/health.cc.o.d"
  "/root/repo/src/shell/host_rbb.cc" "src/CMakeFiles/harmonia.dir/shell/host_rbb.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/host_rbb.cc.o.d"
  "/root/repo/src/shell/memory_rbb.cc" "src/CMakeFiles/harmonia.dir/shell/memory_rbb.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/memory_rbb.cc.o.d"
  "/root/repo/src/shell/network_rbb.cc" "src/CMakeFiles/harmonia.dir/shell/network_rbb.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/network_rbb.cc.o.d"
  "/root/repo/src/shell/partial_reconfig.cc" "src/CMakeFiles/harmonia.dir/shell/partial_reconfig.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/partial_reconfig.cc.o.d"
  "/root/repo/src/shell/rbb.cc" "src/CMakeFiles/harmonia.dir/shell/rbb.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/rbb.cc.o.d"
  "/root/repo/src/shell/tailoring.cc" "src/CMakeFiles/harmonia.dir/shell/tailoring.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/tailoring.cc.o.d"
  "/root/repo/src/shell/unified_shell.cc" "src/CMakeFiles/harmonia.dir/shell/unified_shell.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/unified_shell.cc.o.d"
  "/root/repo/src/shell/workload_model.cc" "src/CMakeFiles/harmonia.dir/shell/workload_model.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/shell/workload_model.cc.o.d"
  "/root/repo/src/sim/clock.cc" "src/CMakeFiles/harmonia.dir/sim/clock.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/sim/clock.cc.o.d"
  "/root/repo/src/sim/component.cc" "src/CMakeFiles/harmonia.dir/sim/component.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/sim/component.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/harmonia.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/sim/engine.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/harmonia.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/sim/trace.cc.o.d"
  "/root/repo/src/workload/flow_gen.cc" "src/CMakeFiles/harmonia.dir/workload/flow_gen.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/workload/flow_gen.cc.o.d"
  "/root/repo/src/workload/matmul.cc" "src/CMakeFiles/harmonia.dir/workload/matmul.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/workload/matmul.cc.o.d"
  "/root/repo/src/workload/packet_gen.cc" "src/CMakeFiles/harmonia.dir/workload/packet_gen.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/workload/packet_gen.cc.o.d"
  "/root/repo/src/workload/tcp_model.cc" "src/CMakeFiles/harmonia.dir/workload/tcp_model.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/workload/tcp_model.cc.o.d"
  "/root/repo/src/workload/vector_db.cc" "src/CMakeFiles/harmonia.dir/workload/vector_db.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/workload/vector_db.cc.o.d"
  "/root/repo/src/wrapper/beat_wrapper.cc" "src/CMakeFiles/harmonia.dir/wrapper/beat_wrapper.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/wrapper/beat_wrapper.cc.o.d"
  "/root/repo/src/wrapper/memmap_wrapper.cc" "src/CMakeFiles/harmonia.dir/wrapper/memmap_wrapper.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/wrapper/memmap_wrapper.cc.o.d"
  "/root/repo/src/wrapper/reg_wrapper.cc" "src/CMakeFiles/harmonia.dir/wrapper/reg_wrapper.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/wrapper/reg_wrapper.cc.o.d"
  "/root/repo/src/wrapper/stream_wrapper.cc" "src/CMakeFiles/harmonia.dir/wrapper/stream_wrapper.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/wrapper/stream_wrapper.cc.o.d"
  "/root/repo/src/wrapper/uniform.cc" "src/CMakeFiles/harmonia.dir/wrapper/uniform.cc.o" "gcc" "src/CMakeFiles/harmonia.dir/wrapper/uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
