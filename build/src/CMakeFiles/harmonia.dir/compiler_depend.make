# Empty compiler generated dependencies file for harmonia.
# This may be replaced when dependencies are built.
