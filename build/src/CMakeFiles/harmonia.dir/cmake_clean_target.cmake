file(REMOVE_RECURSE
  "libharmonia.a"
)
