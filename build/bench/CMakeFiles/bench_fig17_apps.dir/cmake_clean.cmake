file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_apps.dir/fig17_apps.cc.o"
  "CMakeFiles/bench_fig17_apps.dir/fig17_apps.cc.o.d"
  "bench_fig17_apps"
  "bench_fig17_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
