file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_frameworks.dir/fig18_frameworks.cc.o"
  "CMakeFiles/bench_fig18_frameworks.dir/fig18_frameworks.cc.o.d"
  "bench_fig18_frameworks"
  "bench_fig18_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
