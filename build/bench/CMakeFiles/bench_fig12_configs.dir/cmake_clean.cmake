file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_configs.dir/fig12_configs.cc.o"
  "CMakeFiles/bench_fig12_configs.dir/fig12_configs.cc.o.d"
  "bench_fig12_configs"
  "bench_fig12_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
