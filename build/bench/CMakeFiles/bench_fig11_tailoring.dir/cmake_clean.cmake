file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tailoring.dir/fig11_tailoring.cc.o"
  "CMakeFiles/bench_fig11_tailoring.dir/fig11_tailoring.cc.o.d"
  "bench_fig11_tailoring"
  "bench_fig11_tailoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tailoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
