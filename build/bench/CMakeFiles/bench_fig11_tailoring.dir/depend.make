# Empty dependencies file for bench_fig11_tailoring.
# This may be replaced when dependencies are built.
