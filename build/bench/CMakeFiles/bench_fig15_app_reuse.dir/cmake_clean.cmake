file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_app_reuse.dir/fig15_app_reuse.cc.o"
  "CMakeFiles/bench_fig15_app_reuse.dir/fig15_app_reuse.cc.o.d"
  "bench_fig15_app_reuse"
  "bench_fig15_app_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_app_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
