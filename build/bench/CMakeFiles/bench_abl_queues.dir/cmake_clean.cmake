file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_queues.dir/abl_queues.cc.o"
  "CMakeFiles/bench_abl_queues.dir/abl_queues.cc.o.d"
  "bench_abl_queues"
  "bench_abl_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
