# Empty compiler generated dependencies file for bench_abl_queues.
# This may be replaced when dependencies are built.
