# Empty dependencies file for bench_abl_cdc.
# This may be replaced when dependencies are built.
