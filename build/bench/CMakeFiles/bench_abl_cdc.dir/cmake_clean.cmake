file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_cdc.dir/abl_cdc.cc.o"
  "CMakeFiles/bench_abl_cdc.dir/abl_cdc.cc.o.d"
  "bench_abl_cdc"
  "bench_abl_cdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_cdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
