file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_devices.dir/tab3_devices.cc.o"
  "CMakeFiles/bench_tab3_devices.dir/tab3_devices.cc.o.d"
  "bench_tab3_devices"
  "bench_tab3_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
