file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_commands.dir/tab4_commands.cc.o"
  "CMakeFiles/bench_tab4_commands.dir/tab4_commands.cc.o.d"
  "bench_tab4_commands"
  "bench_tab4_commands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_commands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
