# Empty dependencies file for bench_tab4_commands.
# This may be replaced when dependencies are built.
