file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_hotcache.dir/abl_hotcache.cc.o"
  "CMakeFiles/bench_abl_hotcache.dir/abl_hotcache.cc.o.d"
  "bench_abl_hotcache"
  "bench_abl_hotcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_hotcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
