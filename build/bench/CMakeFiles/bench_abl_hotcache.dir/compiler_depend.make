# Empty compiler generated dependencies file for bench_abl_hotcache.
# This may be replaced when dependencies are built.
