# Empty dependencies file for bench_fig14_rbb_reuse.
# This may be replaced when dependencies are built.
