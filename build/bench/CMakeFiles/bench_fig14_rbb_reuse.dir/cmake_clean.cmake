file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_rbb_reuse.dir/fig14_rbb_reuse.cc.o"
  "CMakeFiles/bench_fig14_rbb_reuse.dir/fig14_rbb_reuse.cc.o.d"
  "bench_fig14_rbb_reuse"
  "bench_fig14_rbb_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rbb_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
