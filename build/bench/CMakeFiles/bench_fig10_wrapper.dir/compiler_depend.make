# Empty compiler generated dependencies file for bench_fig10_wrapper.
# This may be replaced when dependencies are built.
