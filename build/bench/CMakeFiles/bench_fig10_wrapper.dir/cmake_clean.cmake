file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_wrapper.dir/fig10_wrapper.cc.o"
  "CMakeFiles/bench_fig10_wrapper.dir/fig10_wrapper.cc.o.d"
  "bench_fig10_wrapper"
  "bench_fig10_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
