file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dma_style.dir/abl_dma_style.cc.o"
  "CMakeFiles/bench_abl_dma_style.dir/abl_dma_style.cc.o.d"
  "bench_abl_dma_style"
  "bench_abl_dma_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dma_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
