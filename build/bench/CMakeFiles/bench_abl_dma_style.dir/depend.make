# Empty dependencies file for bench_abl_dma_style.
# This may be replaced when dependencies are built.
