file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_swmods.dir/fig13_swmods.cc.o"
  "CMakeFiles/bench_fig13_swmods.dir/fig13_swmods.cc.o.d"
  "bench_fig13_swmods"
  "bench_fig13_swmods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_swmods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
