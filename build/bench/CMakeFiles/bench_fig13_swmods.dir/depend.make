# Empty dependencies file for bench_fig13_swmods.
# This may be replaced when dependencies are built.
