#include <gtest/gtest.h>

#include <algorithm>

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "host/host_app.h"
#include "obs/fleet_sim.h"
#include "obs/hub.h"
#include "obs/trace_federation.h"
#include "telemetry/telemetry_target.h"

namespace harmonia {
namespace {

/** Open a streaming subscription; returns its id. */
std::uint32_t
openSub(TelemetryTarget &target, const std::string &prefix = "")
{
    std::vector<std::uint32_t> req{0};
    if (!prefix.empty())
        TelemetryTarget::packNameTo(req, prefix);
    const CommandResult r =
        target.executeCommand(kCmdObsSubscribe, req);
    EXPECT_EQ(r.status, kCmdOk);
    EXPECT_GE(r.data.size(), 5u);
    return r.data.empty() ? 0 : r.data[0];
}

/** Walk the map pages of one subscription into index order. */
std::vector<ObsMapEntry>
walkMap(TelemetryTarget &target, std::uint32_t sub_id)
{
    constexpr std::size_t kRecord = 2 + TelemetryTarget::kNameWords;
    std::vector<ObsMapEntry> map;
    std::uint32_t start = 0;
    for (;;) {
        const CommandResult r =
            target.executeCommand(kCmdObsSubscribe, {sub_id, start});
        EXPECT_EQ(r.status, kCmdOk);
        const std::uint32_t total = r.data[0];
        const std::uint32_t k = r.data[1];
        if (map.size() != total)
            map.resize(total);
        for (std::uint32_t i = 0; i < k; ++i) {
            const std::size_t at = 2 + i * kRecord;
            const std::uint32_t idx = r.data[at];
            EXPECT_LT(idx, map.size());
            map[idx].enc = r.data[at + 1];
            map[idx].name =
                TelemetryTarget::unpackName(&r.data[at + 2]);
        }
        start += k;
        if (k == 0 || start >= total)
            break;
    }
    return map;
}

/** One decoded ObsDelta response. */
struct DecodedDelta {
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;
    std::uint32_t flags = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> records;
};

DecodedDelta
readDelta(TelemetryTarget &target, std::uint32_t sub_id,
          std::uint32_t req_flags = 0)
{
    std::vector<std::uint32_t> req{sub_id};
    if (req_flags != 0)
        req.push_back(req_flags);
    const CommandResult r = target.executeCommand(kCmdObsDelta, req);
    EXPECT_EQ(r.status, kCmdOk);
    DecodedDelta d;
    if (r.data.size() < 4)
        return d;
    d.epoch = r.data[0];
    d.seq = r.data[1];
    d.flags = r.data[2];
    const std::uint32_t k = r.data[3];
    EXPECT_EQ(r.data.size(), 4u + std::size_t{k} * 3);
    for (std::uint32_t i = 0; i < k; ++i) {
        const std::size_t at = 4 + std::size_t{i} * 3;
        d.records.emplace_back(
            r.data[at],
            (static_cast<std::uint64_t>(r.data[at + 1]) << 32) |
                r.data[at + 2]);
    }
    return d;
}

/** Value of @p name in a decoded delta via @p map; -1 when absent. */
double
deltaValue(const DecodedDelta &d, const std::vector<ObsMapEntry> &map,
           const std::string &name)
{
    for (const auto &[idx, raw] : d.records) {
        if (idx >= map.size() || map[idx].name != name)
            continue;
        return map[idx].enc == 1 ? static_cast<double>(raw) / 1000.0
                                 : static_cast<double>(raw);
    }
    return -1.0;
}

// --- Protocol level: TelemetryTarget against a local registry. -----

TEST(Federation, SubscribeFreezesSortedFilteredMap)
{
    MetricsRegistry reg;
    Counter cx, cy, cz;
    Histogram h(1000, 64);
    h.sample(5'000);
    reg.addCounter("a/y", &cy);
    reg.addCounter("b/z", &cz);
    reg.addCounter("a/x", &cx);
    reg.addHistogram("a/h", &h);

    TelemetryTarget target(reg);
    const std::uint32_t sub = openSub(target, "a/");
    const std::vector<ObsMapEntry> map = walkMap(target, sub);

    // Histogram explodes into count + /p50 + /p99; "b/z" filtered
    // out; order is name-sorted.
    ASSERT_EQ(map.size(), 5u);
    EXPECT_EQ(map[0].name, "a/h");
    EXPECT_EQ(map[0].enc, 0u);
    EXPECT_EQ(map[1].name, "a/h/p50");
    EXPECT_EQ(map[1].enc, 1u);
    EXPECT_EQ(map[2].name, "a/h/p99");
    EXPECT_EQ(map[2].enc, 1u);
    EXPECT_EQ(map[3].name, "a/x");
    EXPECT_EQ(map[4].name, "a/y");
}

TEST(Federation, DeltaSendsEverythingOnceThenOnlyChanges)
{
    MetricsRegistry reg;
    Counter ca, cb;
    ca.inc(5);
    reg.addCounter("s/a", &ca);
    reg.addCounter("s/b", &cb);

    TelemetryTarget target(reg);
    const std::uint32_t sub = openSub(target);
    const std::vector<ObsMapEntry> map = walkMap(target, sub);

    // First delta: the full set, never-sent series included at 0.
    DecodedDelta d = readDelta(target, sub);
    EXPECT_EQ(d.seq, 1u);
    EXPECT_EQ(d.flags, 0u);
    ASSERT_EQ(d.records.size(), 2u);
    EXPECT_EQ(deltaValue(d, map, "s/a"), 5.0);
    EXPECT_EQ(deltaValue(d, map, "s/b"), 0.0);

    // Quiescent: nothing to send, seq still advances.
    d = readDelta(target, sub);
    EXPECT_EQ(d.seq, 2u);
    EXPECT_TRUE(d.records.empty());

    // One change moves exactly one record, cumulative value.
    ca.inc(7);
    d = readDelta(target, sub);
    EXPECT_EQ(d.seq, 3u);
    ASSERT_EQ(d.records.size(), 1u);
    EXPECT_EQ(deltaValue(d, map, "s/a"), 12.0);
}

TEST(Federation, DeltaBatchesWithMorePendingFlag)
{
    MetricsRegistry reg;
    std::vector<Counter> counters(TelemetryTarget::kDeltaBatch + 10);
    for (std::size_t i = 0; i < counters.size(); ++i) {
        counters[i].inc(i + 1);
        reg.addCounter(format("m/%03zu", i), &counters[i]);
    }

    TelemetryTarget target(reg);
    const std::uint32_t sub = openSub(target);

    DecodedDelta d = readDelta(target, sub);
    EXPECT_EQ(d.records.size(), TelemetryTarget::kDeltaBatch);
    EXPECT_EQ(d.flags & 0x2u, 0x2u);  // more pending

    d = readDelta(target, sub);
    EXPECT_EQ(d.records.size(), 10u);
    EXPECT_EQ(d.flags & 0x2u, 0u);

    d = readDelta(target, sub);
    EXPECT_TRUE(d.records.empty());
}

TEST(Federation, MapChangeRefreezesUnderNewEpoch)
{
    MetricsRegistry reg;
    Counter ca;
    reg.addCounter("s/a", &ca);

    TelemetryTarget target(reg);
    const std::uint32_t sub = openSub(target);
    DecodedDelta d = readDelta(target, sub);
    const std::uint32_t epoch0 = d.epoch;
    ASSERT_EQ(d.records.size(), 1u);

    // The registry changes shape: the next delta carries no records,
    // just the map-changed flag under a bumped epoch — and seq stays
    // gapless, so a map change is never mistaken for a lost response.
    Counter cb;
    cb.inc(9);
    const MetricId id = reg.addCounter("s/b", &cb);
    d = readDelta(target, sub);
    EXPECT_EQ(d.flags & 0x1u, 0x1u);
    EXPECT_EQ(d.epoch, epoch0 + 1);
    EXPECT_EQ(d.seq, 2u);
    EXPECT_TRUE(d.records.empty());

    // Re-read the map, then the full re-send arrives.
    const std::vector<ObsMapEntry> map = walkMap(target, sub);
    ASSERT_EQ(map.size(), 2u);
    d = readDelta(target, sub);
    EXPECT_EQ(d.seq, 3u);
    ASSERT_EQ(d.records.size(), 2u);
    EXPECT_EQ(deltaValue(d, map, "s/b"), 9.0);
    reg.remove(id);
}

TEST(Federation, ResyncRequestResendsCumulativeValues)
{
    MetricsRegistry reg;
    Counter ca, cb;
    ca.inc(3);
    cb.inc(4);
    reg.addCounter("s/a", &ca);
    reg.addCounter("s/b", &cb);

    TelemetryTarget target(reg);
    const std::uint32_t sub = openSub(target);
    const std::vector<ObsMapEntry> map = walkMap(target, sub);
    DecodedDelta d = readDelta(target, sub);
    ASSERT_EQ(d.records.size(), 2u);
    d = readDelta(target, sub);
    EXPECT_TRUE(d.records.empty());

    // Resync: everything again, values still cumulative.
    d = readDelta(target, sub, 0x1);
    EXPECT_EQ(d.seq, 3u);
    ASSERT_EQ(d.records.size(), 2u);
    EXPECT_EQ(deltaValue(d, map, "s/a"), 3.0);
    EXPECT_EQ(deltaValue(d, map, "s/b"), 4.0);
}

TEST(Federation, DroppedDeltaLeavesVisibleSeqGap)
{
    MetricsRegistry reg;
    Counter ca;
    reg.addCounter("s/a", &ca);

    TelemetryTarget target(reg);
    const std::uint32_t sub = openSub(target);
    DecodedDelta d = readDelta(target, sub);
    EXPECT_EQ(d.seq, 1u);

    // The lost response consumed the change: without a resync its
    // samples would be gone for good — the seq jump is the only tell.
    ca.inc(8);
    ASSERT_TRUE(target.dropOneDelta(sub));
    d = readDelta(target, sub);
    EXPECT_EQ(d.seq, 3u);
    EXPECT_TRUE(d.records.empty());

    const std::vector<ObsMapEntry> map = walkMap(target, sub);
    d = readDelta(target, sub, 0x1);
    EXPECT_EQ(deltaValue(d, map, "s/a"), 8.0);
}

TEST(Federation, SubscriptionCapacityAndClose)
{
    MetricsRegistry reg;
    Counter c;
    reg.addCounter("a", &c);
    TelemetryTarget target(reg);

    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < TelemetryTarget::kMaxSubscriptions;
         ++i)
        ids.push_back(openSub(target));
    EXPECT_EQ(target.subscriptionCount(),
              TelemetryTarget::kMaxSubscriptions);
    EXPECT_EQ(target.executeCommand(kCmdObsSubscribe, {0}).status,
              kCmdInternalError);

    // Close frees the slot; stale ids are rejected, not crashed on.
    EXPECT_EQ(
        target.executeCommand(kCmdObsSubscribe, {ids[0]}).status,
        kCmdOk);
    EXPECT_EQ(target.subscriptionCount(),
              TelemetryTarget::kMaxSubscriptions - 1);
    EXPECT_EQ(target.executeCommand(kCmdObsDelta, {ids[0]}).status,
              kCmdBadArgument);
    EXPECT_EQ(
        target.executeCommand(kCmdObsSubscribe, {ids[0], 0}).status,
        kCmdBadArgument);
    EXPECT_FALSE(target.dropOneDelta(ids[0]));
}

// --- Hub level: streaming federation over a real shell. ------------

TEST(Federation, HubStreamsFewerWireWordsThanSnapshotPolling)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    shell->registerTelemetry();

    ObsHub hub(engine);
    ASSERT_TRUE(hub.addDevice("DeviceA", "uut", *shell));
    ASSERT_TRUE(hub.subscribe("DeviceA"));
    EXPECT_GT(hub.device("DeviceA").mapSize, 0u);

    for (int i = 0; i < 8; ++i) {
        engine.runFor(1'000'000);
        hub.poll(engine.now());
    }

    // The acceptance bar: streaming must move strictly fewer wire
    // words than the same coverage polled as full snapshots.
    EXPECT_GT(hub.streamedWireWords(), 0u);
    EXPECT_GT(hub.snapshotEquivalentWords(), 0u);
    EXPECT_LT(hub.streamedWireWords(), hub.snapshotEquivalentWords());
    EXPECT_EQ(hub.gapsDetected(), 0u);
    EXPECT_TRUE(hub.device("DeviceA").alive);
}

TEST(Federation, ForcedGapTriggersResyncWithoutLossOrDoubleCount)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    shell->registerTelemetry();

    // A test-owned counter the wire traffic itself never perturbs.
    Counter acked;
    ScopedMetrics scoped;
    scoped.reset(MetricsRegistry::instance());
    const std::string series = "unified_DeviceA/drill/acked";
    scoped.addCounter(series, &acked);

    ObsHub hub(engine);
    ASSERT_TRUE(hub.addDevice("DeviceA", "uut", *shell));
    ASSERT_TRUE(hub.subscribe("DeviceA"));
    const auto &map = hub.deviceMap("DeviceA");
    ASSERT_TRUE(std::any_of(
        map.begin(), map.end(),
        [&](const ObsMapEntry &e) { return e.name == series; }));

    // Warm-up polls let the lazily-created kernel stats settle so the
    // frozen map is stable before the fault is injected.
    for (int i = 0; i < 3; ++i) {
        engine.runFor(1'000'000);
        hub.poll(engine.now());
    }
    EXPECT_EQ(hub.store().latest(series), 0.0);

    acked.inc(7);
    engine.runFor(1'000'000);
    hub.poll(engine.now());
    EXPECT_EQ(hub.store().latest(series), 7.0);
    EXPECT_EQ(hub.gapsDetected(), 0u);

    // inc to 19, then lose the one delta that carries it: the card's
    // shadow advances to 19, so an ordinary next delta would never
    // re-send it. Only the seq-gap -> full-resync path can recover.
    acked.inc(12);
    ASSERT_TRUE(shell->telemetryTarget().dropOneDelta(
        hub.device("DeviceA").subId));

    engine.runFor(1'000'000);
    hub.poll(engine.now());
    EXPECT_EQ(hub.device("DeviceA").gapsDetected, 1u);
    EXPECT_EQ(hub.device("DeviceA").resyncs, 1u);
    // No loss: the resent cumulative value landed.
    EXPECT_EQ(hub.store().latest(series), 19.0);
    // No double count: cumulative re-ingest can't inflate the series.
    EXPECT_EQ(hub.store().windowStats(series, engine.now(),
                                      engine.now())
                  .max,
              19.0);
    EXPECT_EQ(hub.store().delta(series, engine.now(), engine.now()),
              19.0);
}

TEST(Federation, RegistryChurnReloadsMapMidStream)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    shell->registerTelemetry();

    ObsHub hub(engine);
    ASSERT_TRUE(hub.addDevice("DeviceA", "uut", *shell));
    ASSERT_TRUE(hub.subscribe("DeviceA"));
    for (int i = 0; i < 3; ++i) {
        engine.runFor(1'000'000);
        hub.poll(engine.now());
    }
    const std::uint64_t reloads_before =
        hub.device("DeviceA").mapReloads;
    const std::size_t map_before = hub.device("DeviceA").mapSize;

    // A series appears mid-stream: the card re-freezes, the hub
    // re-reads the map, and the new series' value still lands.
    Counter late;
    late.inc(5);
    ScopedMetrics scoped;
    scoped.reset(MetricsRegistry::instance());
    const std::string series = "unified_DeviceA/drill/late";
    scoped.addCounter(series, &late);

    engine.runFor(1'000'000);
    hub.poll(engine.now());
    EXPECT_GT(hub.device("DeviceA").mapReloads, reloads_before);
    EXPECT_EQ(hub.device("DeviceA").mapSize, map_before + 1);
    EXPECT_EQ(hub.store().latest(series), 5.0);
    EXPECT_EQ(hub.gapsDetected(), 0u);
}

TEST(Federation, LivenessProbeGatesPollingAndRevives)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    shell->registerTelemetry();

    ObsHub hub(engine);
    ASSERT_TRUE(hub.addDevice("DeviceA", "uut", *shell));
    ASSERT_TRUE(hub.subscribe("DeviceA"));
    bool probe_alive = true;
    hub.attachLiveness("DeviceA", [&] { return probe_alive; });

    engine.runFor(1'000'000);
    hub.poll(engine.now());
    EXPECT_TRUE(hub.device("DeviceA").alive);
    EXPECT_EQ(hub.store().latest("fleet/devices/alive"), 1.0);

    // A dead probe verdict skips the device without burning wire.
    probe_alive = false;
    const std::uint64_t streamed = hub.streamedWireWords();
    hub.poll(engine.now());
    EXPECT_FALSE(hub.device("DeviceA").alive);
    EXPECT_EQ(hub.streamedWireWords(), streamed);
    EXPECT_EQ(hub.store().latest("fleet/devices/alive"), 0.0);

    probe_alive = true;
    hub.poll(engine.now());
    EXPECT_TRUE(hub.device("DeviceA").alive);
    EXPECT_EQ(hub.store().latest("fleet/devices/alive"), 1.0);
}

TEST(Federation, FleetRollupsAggregateAcrossDevices)
{
    Engine engine;
    auto a = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    auto d = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceD"));
    a->registerTelemetry();
    d->registerTelemetry();

    Counter ca, cd;
    ca.inc(30);
    cd.inc(12);
    ScopedMetrics scoped;
    scoped.reset(MetricsRegistry::instance());
    scoped.addCounter("unified_DeviceA/drill/load", &ca);
    scoped.addCounter("unified_DeviceD/drill/load", &cd);

    ObsHub hub(engine);
    ASSERT_TRUE(hub.addDevice("DeviceA", "x", *a));
    ASSERT_TRUE(hub.addDevice("DeviceD", "y", *d));
    hub.addRollup("drill/load");
    ASSERT_EQ(hub.subscribeAll(), 2u);

    engine.runFor(1'000'000);
    hub.poll(engine.now());
    EXPECT_EQ(hub.store().latest("fleet/devices/alive"), 2.0);
    EXPECT_EQ(hub.store().latest("fleet/drill/load/sum"), 42.0);
    EXPECT_EQ(hub.store().latest("fleet/drill/load/max"), 30.0);
    EXPECT_EQ(hub.fleetQuantile("drill/load", 100.0), 30.0);
    EXPECT_EQ(hub.fleetQuantile("drill/load", 0.0), 12.0);
}

// --- Trace federation. ---------------------------------------------

struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST(Federation, StitchesCrossDeviceSpanTrees)
{
    TraceGuard guard;
    Engine engine;
    auto a = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    auto d = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceD"));
    CmdDriver driver_a(engine, *a);
    CmdDriver driver_d(engine, *d);

    TraceFederation fed;
    fed.addDevice("DeviceA", a->name());
    fed.addDevice("DeviceD", d->name());
    EXPECT_EQ(fed.deviceFor("unified_DeviceA.uck"), "DeviceA");
    EXPECT_EQ(fed.deviceFor("cmd00"), "host");

    // One request spanning both cards under a shared correlation id.
    TraceContext ctx;
    ctx.corr = Trace::instance().newCorrelation();
    {
        ScopedTraceContext scope(ctx);
        driver_a.call(kRbbSystem, 0, kCmdTimeCount);
        driver_d.call(kRbbSystem, 0, kCmdTimeCount);
    }

    const std::vector<std::uint64_t> corrs =
        fed.crossDeviceCorrs(Trace::instance());
    ASSERT_NE(std::find(corrs.begin(), corrs.end(), ctx.corr),
              corrs.end());

    const FederatedTree tree =
        fed.treeForCorr(Trace::instance(), ctx.corr);
    ASSERT_EQ(tree.devices.size(), 2u);
    EXPECT_EQ(tree.devices[0], "DeviceA");
    EXPECT_EQ(tree.devices[1], "DeviceD");
    EXPECT_FALSE(tree.spans.empty());

    // Device columns are space-padded to a fixed width in the render.
    const std::string text = TraceFederation::render(tree);
    EXPECT_NE(text.find("[DeviceA "), std::string::npos);
    EXPECT_NE(text.find("[DeviceD "), std::string::npos);
    EXPECT_NE(text.find("across [DeviceA DeviceD]"), std::string::npos);
}

// --- End to end: the canned fleet drill is deterministic. ----------

TEST(Federation, FleetSimDeterministicAcrossRuns)
{
    FleetSimConfig cfg;
    cfg.rounds = 12;
    cfg.deathAt = 30'000'000;

    std::string top1;
    std::string summary1;
    std::uint64_t fp1 = 0;
    {
        FleetSim sim(cfg);
        sim.run();
        top1 = sim.top();
        summary1 = sim.summary();
        fp1 = sim.fingerprint();
        // The injected death was detected by failure tracking alone.
        EXPECT_FALSE(sim.hub().device(cfg.victim).alive);
        EXPECT_EQ(sim.hub().gapsDetected(), 0u);
    }
    {
        FleetSim sim(cfg);
        sim.run();
        EXPECT_EQ(sim.top(), top1);
        EXPECT_EQ(sim.summary(), summary1);
        EXPECT_EQ(sim.fingerprint(), fp1);
    }
}

} // namespace
} // namespace harmonia
