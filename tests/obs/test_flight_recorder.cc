#include <gtest/gtest.h>

#include <cstdio>

#include "fault/fault_plan.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "sim/trace.h"

namespace harmonia {
namespace {

class FlightRecorderTest : public ::testing::Test {
  protected:
    void TearDown() override
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST_F(FlightRecorderTest, RingRetainsNewestEvents)
{
    FlightRecorder fdr(4);
    for (Tick t = 1; t <= 10; ++t)
        fdr.note(FdrKind::Note, t * 100, "t", "n");
    EXPECT_EQ(fdr.size(), 4u);
    const std::vector<FdrEvent> ev = fdr.events();
    EXPECT_EQ(ev.front().tick, 700u);
    EXPECT_EQ(ev.back().tick, 1000u);
    EXPECT_EQ(fdr.stats().value("events_note"), 10u);
}

TEST_F(FlightRecorderTest, ArmingIsProcessExclusive)
{
    EXPECT_EQ(FlightRecorder::active(), nullptr);
    {
        FlightRecorder a;
        a.arm();
        EXPECT_EQ(FlightRecorder::active(), &a);
        FlightRecorder b;
        b.arm();  // replaces a
        EXPECT_EQ(FlightRecorder::active(), &b);
        a.disarm();  // not armed: no effect on b
        EXPECT_EQ(FlightRecorder::active(), &b);
    }
    // Destruction disarms.
    EXPECT_EQ(FlightRecorder::active(), nullptr);
}

TEST_F(FlightRecorderTest, CorrOfInterestPrefersFailures)
{
    FlightRecorder fdr;
    EXPECT_EQ(fdr.corrOfInterest(), 0u);
    fdr.noteCommand(100, "cmd01", 0x0006, "ok", true, 1, 41);
    EXPECT_EQ(fdr.corrOfInterest(), 41u);
    fdr.noteCommand(200, "cmd01", 0x0006, "timeout", false, 5, 42);
    fdr.noteCommand(300, "cmd01", 0x0006, "ok", true, 1, 43);
    // The failed call stays the story a post-mortem should tell.
    EXPECT_EQ(fdr.corrOfInterest(), 42u);
}

TEST_F(FlightRecorderTest, FaultTriggerMarksPendingOnceUntilRearm)
{
    FlightRecorder fdr;
    fdr.setDumpOnFault(true);
    fdr.setRearmInterval(1'000);

    fdr.noteFault("cmd_drop", "cmd01", 100);
    EXPECT_TRUE(fdr.dumpPending());
    EXPECT_EQ(fdr.pendingReason(), "fault:cmd_drop");

    // A storm inside the rearm window marks nothing new.
    fdr.noteFault("cmd_drop", "cmd01", 200);
    fdr.noteFault("resp_drop", "cmd01", 300);
    EXPECT_EQ(fdr.stats().value("triggers"), 1u);
    EXPECT_EQ(fdr.stats().value("triggers_suppressed"), 2u);

    // Past the rearm interval the next fault triggers again.
    fdr.noteFault("cmd_drop", "cmd01", 1'200);
    EXPECT_EQ(fdr.stats().value("triggers"), 2u);
}

TEST_F(FlightRecorderTest, AlertTriggerOnlyOnFiringEdge)
{
    FlightRecorder fdr;
    fdr.setDumpOnAlert(true);
    fdr.noteAlert("occ", "inactive", "pending", 100, 1.5, false);
    EXPECT_FALSE(fdr.dumpPending());
    fdr.noteAlert("occ", "pending", "firing", 200, 1.5, true);
    EXPECT_TRUE(fdr.dumpPending());
    EXPECT_EQ(fdr.pendingReason(), "alert:occ");
}

TEST_F(FlightRecorderTest, BundleCarriesAttachedPlanes)
{
    TimeSeriesStore store;
    store.ingestPoint(100, "x", 1.0);
    store.ingestPoint(200, "x", 2.0);

    SloEngine slo("slo", store);
    SloSpec spec;
    spec.name = "occ";
    spec.kind = SloKind::OccupancyAbove;
    spec.metric = "x";
    spec.objective = 1.0;
    spec.window = 500;
    slo.addSpec(spec);
    slo.evaluate(200);

    FaultPlan plan(7);
    plan.addWindow(FaultKind::CmdDrop, 0, kTickMax, 1.0);
    plan.shouldInject(FaultKind::CmdDrop, "cmd01", 150);

    FlightRecorder fdr;
    fdr.attachStore(&store);
    fdr.attachSlo(&slo);
    fdr.attachFaultPlan(&plan);
    fdr.noteCommand(210, "cmd01", 6, "ok", true, 1, 0);

    std::string err;
    const JsonValue doc =
        JsonValue::parse(fdr.bundleText("test", 250), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.get("harmonia_postmortem").asU64(), 1u);
    EXPECT_EQ(doc.get("reason").asString(), "test");
    EXPECT_EQ(doc.get("tick").asU64(), 250u);

    ASSERT_TRUE(doc.get("events").isArray());
    EXPECT_GE(doc.get("events").size(), 1u);

    ASSERT_TRUE(doc.get("alerts").isArray());
    ASSERT_EQ(doc.get("alerts").size(), 1u);
    EXPECT_EQ(doc.get("alerts").at(0).get("name").asString(), "occ");
    EXPECT_EQ(doc.get("alerts").at(0).get("state").asString(),
              "pending");

    ASSERT_TRUE(doc.get("series").isObject());
    EXPECT_TRUE(doc.get("series").has("x"));
    EXPECT_EQ(doc.get("series").get("x").get("latest").asDouble(),
              2.0);
    EXPECT_EQ(doc.get("series").get("x").get("points").size(), 2u);

    ASSERT_TRUE(doc.get("faults").isObject());
    EXPECT_EQ(doc.get("faults").get("seed").asU64(), 7u);
    EXPECT_EQ(doc.get("faults").get("injected_total").asU64(), 1u);
    EXPECT_EQ(doc.get("faults").get("log").size(), 1u);
}

TEST_F(FlightRecorderTest, BundleSpanTreeUsesDenseIds)
{
    Trace &tracer = Trace::instance();
    tracer.clear();
    tracer.setEnabled(true);

    const std::uint64_t corr = tracer.newCorrelation();
    const SpanId root = tracer.beginSpan(100, "cmd01", "call:Stats",
                                         "command",
                                         TraceContext{0, corr});
    tracer.completeSpan(120, 180, "kernel", "decode", "kernel",
                        TraceContext{root, corr});
    tracer.endSpan(root, 200);

    FlightRecorder fdr;
    fdr.noteCommand(200, "cmd01", 6, "ok", true, 1, corr);

    std::string err;
    const JsonValue doc =
        JsonValue::parse(fdr.bundleText("test", 200), &err);
    ASSERT_TRUE(err.empty()) << err;
    const JsonValue &tree = doc.get("span_tree");
    ASSERT_EQ(tree.size(), 2u);
    // Dense remap: the root is id 1 under parent 0, its child id 2 —
    // regardless of what the process-global counters handed out.
    EXPECT_EQ(tree.at(0).get("id").asU64(), 1u);
    EXPECT_EQ(tree.at(0).get("parent").asU64(), 0u);
    EXPECT_EQ(tree.at(0).get("what").asString(), "call:Stats");
    EXPECT_EQ(tree.at(1).get("parent").asU64(), 1u);
    EXPECT_EQ(tree.at(1).get("what").asString(), "decode");
}

TEST_F(FlightRecorderTest, IdenticalHistoriesYieldIdenticalBundles)
{
    const auto run = [](FlightRecorder &fdr) {
        fdr.note(FdrKind::Note, 100, "op", "hello", 1, 2);
        fdr.noteCommand(200, "cmd01", 6, "timeout", false, 5, 0);
        fdr.noteRecovery("recovery", "enter-degraded", 300);
    };
    FlightRecorder a;
    FlightRecorder b;
    run(a);
    run(b);
    EXPECT_EQ(a.bundleText("same", 400), b.bundleText("same", 400));
}

TEST_F(FlightRecorderTest, RequestDumpWritesFileAndClearsPending)
{
    const std::string path = "test_fdr_bundle.json";
    FlightRecorder fdr;
    fdr.note(FdrKind::Note, 50, "op", "context");
    fdr.requestDump("operator", 100);
    ASSERT_TRUE(fdr.dumpPending());

    ASSERT_TRUE(fdr.dumpToFile(path, fdr.pendingReason(), 100));
    EXPECT_FALSE(fdr.dumpPending());
    EXPECT_EQ(fdr.dumps(), 1u);

    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, AutoDumpPathWritesSynchronously)
{
    const std::string path = "test_fdr_auto.json";
    FlightRecorder fdr;
    fdr.setDumpOnFault(true);
    fdr.setAutoDumpPath(path);
    fdr.noteFault("cmd_drop", "cmd01", 100);
    EXPECT_FALSE(fdr.dumpPending());
    EXPECT_EQ(fdr.dumps(), 1u);

    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

} // namespace
} // namespace harmonia
