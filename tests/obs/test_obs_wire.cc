#include <gtest/gtest.h>

#include "cmd/command_codes.h"
#include "host/host_app.h"
#include "obs/flight_recorder.h"
#include "obs/ops_client.h"
#include "obs/slo.h"
#include "telemetry/telemetry_target.h"

namespace harmonia {
namespace {

SloSpec
occupancySpec(const std::string &name)
{
    SloSpec s;
    s.name = name;
    s.kind = SloKind::OccupancyAbove;
    s.metric = "occ";
    s.objective = 10.0;
    s.window = 50;
    s.pendingFor = 100;
    s.resolveFor = 200;
    return s;
}

TEST(ObsWire, CommandsNeedAttachedPlanes)
{
    MetricsRegistry reg;
    TelemetryTarget target(reg);
    EXPECT_EQ(target.executeCommand(kCmdSloStatus, {}).status,
              kCmdInternalError);
    EXPECT_EQ(target.executeCommand(kCmdAlertSnapshot, {}).status,
              kCmdInternalError);
    EXPECT_EQ(target.executeCommand(kCmdFlightDump, {}).status,
              kCmdInternalError);
}

TEST(ObsWire, SloStatusCountAndFullRecord)
{
    MetricsRegistry reg;
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    slo.addSpec(occupancySpec("occ-a"));
    slo.addSpec(occupancySpec("occ-b"));
    TelemetryTarget target(reg);
    target.attachSloEngine(&slo);

    // Count query: no payload.
    CommandResult r = target.executeCommand(kCmdSloStatus, {});
    ASSERT_EQ(r.status, kCmdOk);
    ASSERT_EQ(r.data.size(), 1u);
    EXPECT_EQ(r.data[0], 2u);

    // Drive spec 1 to pending, then read it back over the wire.
    store.ingestPoint(100, "occ", 15.0);
    slo.evaluate(100);

    r = target.executeCommand(kCmdSloStatus, {1});
    ASSERT_EQ(r.status, kCmdOk);
    EXPECT_EQ(r.data[0], 2u);  // total
    EXPECT_EQ(r.data[1], 1u);  // index echo
    EXPECT_EQ(r.data[2],
              static_cast<std::uint32_t>(SloKind::OccupancyAbove));
    EXPECT_EQ(r.data[3],
              static_cast<std::uint32_t>(AlertState::Pending));
    // objective 10.0 -> 10'000 milli (hi word 0).
    EXPECT_EQ(r.data[4], 0u);
    EXPECT_EQ(r.data[5], 10'000u);
    // burn 1.5 -> 1'500 milli.
    EXPECT_EQ(r.data[9], 1'500u);
    EXPECT_EQ(TelemetryTarget::unpackName(&r.data[15]), "occ-b");

    EXPECT_EQ(target.executeCommand(kCmdSloStatus, {9}).status,
              kCmdBadArgument);
}

TEST(ObsWire, AlertSnapshotPaginates)
{
    MetricsRegistry reg;
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    const std::size_t specs = TelemetryTarget::kAlertBatch + 2;
    for (std::size_t i = 0; i < specs; ++i)
        slo.addSpec(occupancySpec(format("occ-%zu", i)));
    TelemetryTarget target(reg);
    target.attachSloEngine(&slo);

    std::size_t seen = 0;
    std::uint32_t start = 0;
    for (;;) {
        const CommandResult r =
            target.executeCommand(kCmdAlertSnapshot, {start});
        ASSERT_EQ(r.status, kCmdOk);
        const std::uint32_t total = r.data[0];
        const std::uint32_t k = r.data[1];
        EXPECT_EQ(total, specs);
        EXPECT_LE(k, TelemetryTarget::kAlertBatch);
        std::size_t off = 2;
        for (std::uint32_t i = 0; i < k; ++i) {
            EXPECT_EQ(r.data[off], start + i);
            EXPECT_EQ(
                TelemetryTarget::unpackName(&r.data[off + 6]),
                format("occ-%u", start + i));
            off += 6 + TelemetryTarget::kNameWords;
            ++seen;
        }
        start += k;
        if (k == 0 || start >= total)
            break;
    }
    EXPECT_EQ(seen, specs);
}

TEST(ObsWire, FlightDumpRequestsOverTheWire)
{
    MetricsRegistry reg;
    FlightRecorder fdr;
    TelemetryTarget target(reg);
    target.attachRecorder(&fdr);

    const CommandResult r =
        target.executeCommand(kCmdFlightDump, {});
    ASSERT_EQ(r.status, kCmdOk);
    EXPECT_EQ(r.data[0], 1u);  // pending (no auto-dump path)
    EXPECT_TRUE(fdr.dumpPending());
    EXPECT_EQ(fdr.pendingReason(), "command-plane request");
}

TEST(ObsWire, OpsClientRoundTripsThroughRealShell)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));

    TimeSeriesStore store;
    SloEngine slo("slo", store);
    slo.addSpec(occupancySpec("occ"));
    FlightRecorder fdr;
    shell->telemetryTarget().attachSloEngine(&slo);
    shell->telemetryTarget().attachRecorder(&fdr);

    store.ingestPoint(100, "occ", 15.0);
    slo.evaluate(100);

    CmdDriver driver(engine, *shell);
    OpsClient ops(driver);

    EXPECT_EQ(ops.sloCount(), 1u);

    WireSlo ws;
    ASSERT_TRUE(ops.readSlo(0, &ws));
    EXPECT_EQ(ws.name, "occ");
    EXPECT_EQ(ws.kind, SloKind::OccupancyAbove);
    EXPECT_EQ(ws.state, AlertState::Pending);
    EXPECT_NEAR(ws.objective, 10.0, 1e-9);
    EXPECT_EQ(ws.window, 50u);
    EXPECT_NEAR(ws.burnRate, 1.5, 1e-3);
    EXPECT_EQ(ws.pendingEvents, 1u);

    const std::vector<WireAlert> alerts = ops.readAlerts();
    ASSERT_EQ(alerts.size(), 1u);
    EXPECT_EQ(alerts[0].name, "occ");
    EXPECT_EQ(alerts[0].state, AlertState::Pending);
    EXPECT_EQ(alerts[0].since, 100u);

    EXPECT_TRUE(ops.requestDump());
    EXPECT_TRUE(fdr.dumpPending());
}

} // namespace
} // namespace harmonia
