#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/slo.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

SloSpec
occupancySpec()
{
    SloSpec s;
    s.name = "occ";
    s.kind = SloKind::OccupancyAbove;
    s.metric = "occ";
    s.objective = 10.0;
    s.window = 50;
    s.burnThreshold = 1.0;
    s.clearRatio = 0.5;
    s.pendingFor = 100;
    s.resolveFor = 200;
    return s;
}

TEST(Slo, BurnRatePerKind)
{
    TimeSeriesStore store;
    // Error-rate: 50 bad of 200 total in-window, objective 0.9
    // -> (0.25) / (0.1) = 2.5.
    store.ingestPoint(0, "bad", 0.0);
    store.ingestPoint(0, "total", 0.0);
    store.ingestPoint(100, "bad", 50.0);
    store.ingestPoint(100, "total", 200.0);
    SloSpec err;
    err.name = "avail";
    err.kind = SloKind::ErrorRate;
    err.badMetric = "bad";
    err.totalMetric = "total";
    err.objective = 0.9;
    err.window = 1000;
    EXPECT_NEAR(SloEngine::burnRate(err, store, 100), 2.5, 1e-9);

    // Latency p99 of a 1..200 ramp vs a bound of 100 -> ~2x burn.
    for (Tick t = 1; t <= 200; ++t)
        store.ingestPoint(t, "lat", static_cast<double>(t));
    SloSpec lat;
    lat.name = "lat";
    lat.kind = SloKind::LatencyP99;
    lat.metric = "lat";
    lat.objective = 100.0;
    lat.window = 200;
    EXPECT_NEAR(SloEngine::burnRate(lat, store, 200), 2.0, 0.05);

    // Occupancy: windowed mean vs ceiling.
    store.ingestPoint(300, "occ", 15.0);
    SloSpec occ = occupancySpec();
    EXPECT_NEAR(SloEngine::burnRate(occ, store, 300), 1.5, 1e-9);

    // Gauge floor: objective / mean, and the zero-mean escalation.
    store.ingestPoint(400, "floor", 5.0);
    SloSpec below;
    below.name = "floor";
    below.kind = SloKind::GaugeBelow;
    below.metric = "floor";
    below.objective = 10.0;
    below.window = 50;
    EXPECT_NEAR(SloEngine::burnRate(below, store, 400), 2.0, 1e-9);
    store.ingestPoint(500, "floor", 0.0);
    EXPECT_EQ(SloEngine::burnRate(below, store, 500), 2.0);

    // Unknown series never burns.
    SloSpec unknown = occupancySpec();
    unknown.metric = "nope";
    EXPECT_EQ(SloEngine::burnRate(unknown, store, 300), 0.0);
}

TEST(Slo, AlertLifecycleWithHysteresis)
{
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    const std::size_t i = slo.addSpec(occupancySpec());

    const auto step = [&](Tick t, double v) {
        store.ingestPoint(t, "occ", v);
        slo.evaluate(t);
        return slo.status(i).state;
    };

    EXPECT_EQ(slo.status(i).state, AlertState::Inactive);
    EXPECT_FALSE(slo.anyActive());

    // Burn 1.5: condition trips, alert goes pending.
    EXPECT_EQ(step(100, 15.0), AlertState::Pending);
    EXPECT_EQ(slo.status(i).since, 100u);
    EXPECT_TRUE(slo.anyActive());

    // Held for pendingFor -> firing.
    EXPECT_EQ(step(200, 15.0), AlertState::Firing);
    EXPECT_EQ(slo.status(i).fireEvents, 1u);

    // Burn 0.7 sits in the hysteresis band: firing holds, the clear
    // timer must not start.
    EXPECT_EQ(step(300, 7.0), AlertState::Firing);

    // Clear seen... then a re-trip resets the clear timer.
    EXPECT_EQ(step(400, 2.0), AlertState::Firing);
    EXPECT_EQ(step(500, 15.0), AlertState::Firing);

    // Clear must now hold resolveFor before resolving.
    EXPECT_EQ(step(600, 2.0), AlertState::Firing);
    EXPECT_EQ(step(700, 2.0), AlertState::Firing);  // 100 < 200 held
    EXPECT_EQ(step(800, 2.0), AlertState::Resolved);
    EXPECT_EQ(slo.status(i).resolveEvents, 1u);
    EXPECT_FALSE(slo.anyActive());

    // A re-trip from resolved re-enters pending directly.
    EXPECT_EQ(step(900, 15.0), AlertState::Pending);
    EXPECT_EQ(slo.status(i).pendingEvents, 2u);

    // ...and a clear from pending drops straight back to inactive.
    // (Step to 1000 so the tick-900 spike ages out of the window.)
    EXPECT_EQ(step(1000, 2.0), AlertState::Inactive);

    EXPECT_EQ(slo.stats().value("to_firing"), 1u);
    EXPECT_EQ(slo.stats().value("to_pending"), 2u);
    EXPECT_GT(slo.stats().value("evaluations"), 0u);
}

TEST(Slo, ResolvedDecaysToInactive)
{
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    const std::size_t i = slo.addSpec(occupancySpec());

    store.ingestPoint(100, "occ", 15.0);
    slo.evaluate(100);  // pending
    store.ingestPoint(200, "occ", 15.0);
    slo.evaluate(200);  // firing
    store.ingestPoint(300, "occ", 1.0);
    slo.evaluate(300);  // clear starts
    store.ingestPoint(500, "occ", 1.0);
    slo.evaluate(500);  // resolved
    ASSERT_EQ(slo.status(i).state, AlertState::Resolved);

    store.ingestPoint(750, "occ", 1.0);
    slo.evaluate(750);  // 250 > resolveFor past resolution
    EXPECT_EQ(slo.status(i).state, AlertState::Inactive);
}

TEST(Slo, PendingHoldsInHysteresisBand)
{
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    const std::size_t i = slo.addSpec(occupancySpec());

    store.ingestPoint(100, "occ", 15.0);
    slo.evaluate(100);
    ASSERT_EQ(slo.status(i).state, AlertState::Pending);

    // Band burn (0.7): neither promotes nor clears, however long.
    for (Tick t = 200; t <= 1000; t += 100) {
        store.ingestPoint(t, "occ", 7.0);
        slo.evaluate(t);
        EXPECT_EQ(slo.status(i).state, AlertState::Pending);
    }
}

TEST(Slo, ErrorBudgetConsumptionIsLifetime)
{
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    SloSpec err;
    err.name = "avail";
    err.kind = SloKind::ErrorRate;
    err.badMetric = "bad";
    err.totalMetric = "total";
    err.objective = 0.9;  // 10% allowance
    err.window = 1000;
    const std::size_t i = slo.addSpec(err);

    store.ingestPoint(0, "bad", 0.0);
    store.ingestPoint(0, "total", 0.0);
    store.ingestPoint(100, "bad", 5.0);
    store.ingestPoint(100, "total", 100.0);
    slo.evaluate(100);
    // 5% errors against a 10% allowance: half the budget is gone.
    EXPECT_NEAR(slo.status(i).budgetConsumed, 0.5, 1e-9);
}

TEST(Slo, EvaluatesOnSimulatedTimeCadence)
{
    TimeSeriesStore store;
    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);  // 10 ns period
    SloEngine slo("slo", store, 50'000);         // every 50 ns
    slo.addSpec(occupancySpec());
    engine.add(&slo, clk);

    engine.runCycles(clk, 100);  // 1 us
    // First edge evaluates immediately, then every 50 ns: 20 total.
    EXPECT_EQ(slo.stats().value("evaluations"), 20u);
}

TEST(Slo, TelemetryGaugesExposeState)
{
    // The registry must outlive the engine: SloEngine's ScopedMetrics
    // unregisters from it on destruction.
    MetricsRegistry reg;
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    slo.addSpec(occupancySpec());
    slo.registerTelemetry(reg, "slo");

    store.ingestPoint(100, "occ", 15.0);
    slo.evaluate(100);

    bool sawState = false;
    for (const MetricSample &m : reg.snapshot()) {
        if (m.name == "slo/occ/state") {
            sawState = true;
            EXPECT_EQ(m.value,
                      static_cast<double>(AlertState::Pending));
        }
    }
    EXPECT_TRUE(sawState);
}

TEST(Slo, RejectsBadSpecs)
{
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    EXPECT_THROW(slo.addSpec(SloSpec{}), FatalError);  // empty name
    SloSpec bad = occupancySpec();
    bad.burnThreshold = 0.0;
    EXPECT_THROW(slo.addSpec(bad), FatalError);
    EXPECT_THROW(slo.status(7), FatalError);
    EXPECT_THROW(SloEngine("slo", store, 0), FatalError);
}

} // namespace
} // namespace harmonia
