#include <gtest/gtest.h>

#include "common/logging.h"
#include "obs/timeseries.h"

namespace harmonia {
namespace {

TEST(TimeSeries, IngestPointAndQuery)
{
    TimeSeriesStore store;
    store.ingestPoint(100, "a", 1.0);
    store.ingestPoint(200, "a", 2.0);
    store.ingestPoint(150, "b", 9.0);

    EXPECT_TRUE(store.has("a"));
    EXPECT_FALSE(store.has("zz"));
    EXPECT_EQ(store.seriesCount(), 2u);
    EXPECT_EQ(store.latest("a"), 2.0);
    EXPECT_EQ(store.latestTick("a"), 200u);
    EXPECT_EQ(store.latest("unknown"), 0.0);

    const std::vector<TsPoint> pts = store.points("a");
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].tick, 100u);
    EXPECT_EQ(pts[1].value, 2.0);
}

TEST(TimeSeries, SeriesNamesAreSorted)
{
    TimeSeriesStore store;
    store.ingestPoint(1, "zeta", 0.0);
    store.ingestPoint(1, "alpha", 0.0);
    store.ingestPoint(1, "mid", 0.0);
    const std::vector<std::string> names = store.seriesNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid");
    EXPECT_EQ(names[2], "zeta");
}

TEST(TimeSeries, RawRingEvictsOldest)
{
    TsConfig cfg;
    cfg.rawCapacity = 4;
    TimeSeriesStore store(cfg);
    for (Tick t = 1; t <= 10; ++t)
        store.ingestPoint(t * 100, "s",
                          static_cast<double>(t));
    const std::vector<TsPoint> pts = store.points("s");
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts.front().tick, 700u);  // 7th point is the oldest kept
    EXPECT_EQ(pts.back().value, 10.0);
}

TEST(TimeSeries, RollupsSealOnWindowBoundary)
{
    TsConfig cfg;
    cfg.midWindow = 100;
    cfg.longWindow = 1000;
    TimeSeriesStore store(cfg);

    // Two points in window [0,100), two in [100,200).
    store.ingestPoint(10, "s", 5.0);
    store.ingestPoint(90, "s", 1.0);
    store.ingestPoint(110, "s", 7.0);
    store.ingestPoint(190, "s", 3.0);

    const std::vector<TsRollup> mid =
        store.rollups("s", TsTier::Mid);
    ASSERT_EQ(mid.size(), 2u);  // one sealed + the open bucket
    EXPECT_EQ(mid[0].windowStart, 0u);
    EXPECT_EQ(mid[0].count, 2u);
    EXPECT_EQ(mid[0].min, 1.0);
    EXPECT_EQ(mid[0].max, 5.0);
    EXPECT_EQ(mid[0].sum, 6.0);
    EXPECT_EQ(mid[0].last, 1.0);
    EXPECT_DOUBLE_EQ(mid[0].mean(), 3.0);

    EXPECT_EQ(mid[1].windowStart, 100u);
    EXPECT_EQ(mid[1].count, 2u);
    EXPECT_EQ(mid[1].max, 7.0);

    // The long tier has everything still in one open bucket.
    const std::vector<TsRollup> lng =
        store.rollups("s", TsTier::Long);
    ASSERT_EQ(lng.size(), 1u);
    EXPECT_EQ(lng[0].count, 4u);
}

TEST(TimeSeries, DeltaAndRateOverWindow)
{
    TimeSeriesStore store;
    // A counter ramping 100 per 1 us of simulated time.
    for (Tick t = 0; t <= 10; ++t)
        store.ingestPoint(t * 1'000'000, "ctr",
                          static_cast<double>(t) * 100.0);

    // Window covering the last 5 points: 6 us back from 10 us.
    EXPECT_DOUBLE_EQ(store.delta("ctr", 5'000'000, 10'000'000),
                     500.0);
    // 500 events over 5 us -> 1e8 events/s.
    EXPECT_DOUBLE_EQ(store.rate("ctr", 5'000'000, 10'000'000), 1e8);

    // Degenerate windows: fewer than two points -> 0.
    EXPECT_EQ(store.delta("ctr", 100, 10'000'000), 0.0);
    EXPECT_EQ(store.rate("ctr", 100, 10'000'000), 0.0);
    EXPECT_EQ(store.delta("unknown", 1'000'000, 10'000'000), 0.0);
}

TEST(TimeSeries, WindowStatsAggregates)
{
    TimeSeriesStore store;
    store.ingestPoint(100, "g", 4.0);
    store.ingestPoint(200, "g", 8.0);
    store.ingestPoint(300, "g", 6.0);

    const TsWindowStats w = store.windowStats("g", 300, 300);
    EXPECT_FALSE(w.empty());
    EXPECT_EQ(w.count, 3u);
    EXPECT_EQ(w.min, 4.0);
    EXPECT_EQ(w.max, 8.0);
    EXPECT_DOUBLE_EQ(w.mean, 6.0);
    EXPECT_EQ(w.first, 4.0);
    EXPECT_EQ(w.last, 6.0);
    EXPECT_EQ(w.firstTick, 100u);
    EXPECT_EQ(w.lastTick, 300u);

    // Window excludes the first point.
    const TsWindowStats tail = store.windowStats("g", 150, 300);
    EXPECT_EQ(tail.count, 2u);
    EXPECT_EQ(tail.first, 8.0);

    EXPECT_TRUE(store.windowStats("unknown", 100, 100).empty());
}

TEST(TimeSeries, PercentileOverWindow)
{
    TimeSeriesStore store;
    EXPECT_EQ(store.percentileOver("s", 100, 99.0, 100), 0.0);

    // A ramp 1..100: p50 near 50, p99 near 99.
    for (Tick t = 1; t <= 100; ++t)
        store.ingestPoint(t, "s", static_cast<double>(t));
    const double p50 = store.percentileOver("s", 100, 50.0, 100);
    const double p99 = store.percentileOver("s", 100, 99.0, 100);
    EXPECT_NEAR(p50, 50.0, 1.0);
    EXPECT_NEAR(p99, 99.0, 1.0);
    EXPECT_LT(p50, p99);
}

TEST(TimeSeries, HistogramSamplesSpawnPercentileSeries)
{
    TimeSeriesStore store;
    MetricSample m;
    m.name = "lat";
    m.kind = MetricKind::Histogram;
    m.value = 10.0;
    m.p50 = 40.0;
    m.p99 = 90.0;
    store.ingest(500, {m});

    EXPECT_TRUE(store.has("lat"));
    EXPECT_TRUE(store.has("lat/p50"));
    EXPECT_TRUE(store.has("lat/p99"));
    EXPECT_EQ(store.latest("lat/p50"), 40.0);
    EXPECT_EQ(store.latest("lat/p99"), 90.0);
    EXPECT_EQ(store.ingested(), 1u);
}

TEST(TimeSeries, MaxSeriesBoundDropsExcess)
{
    TsConfig cfg;
    cfg.maxSeries = 2;
    TimeSeriesStore store(cfg);
    store.ingestPoint(1, "a", 1.0);
    store.ingestPoint(1, "b", 1.0);
    store.ingestPoint(1, "c", 1.0);  // dropped
    store.ingestPoint(2, "a", 2.0);  // existing series still ingests

    EXPECT_EQ(store.seriesCount(), 2u);
    EXPECT_FALSE(store.has("c"));
    EXPECT_EQ(store.droppedSeries(), 1u);
    EXPECT_EQ(store.latest("a"), 2.0);
}

TEST(TimeSeries, ClearResetsEverything)
{
    TimeSeriesStore store;
    store.ingest(1, {});
    store.ingestPoint(1, "a", 1.0);
    store.clear();
    EXPECT_EQ(store.seriesCount(), 0u);
    EXPECT_EQ(store.ingested(), 0u);
    EXPECT_FALSE(store.has("a"));
}

TEST(TimeSeries, RejectsDegenerateConfig)
{
    TsConfig bad;
    bad.rawCapacity = 0;
    EXPECT_THROW(TimeSeriesStore{bad}, FatalError);
    TsConfig badWindow;
    badWindow.midWindow = 0;
    EXPECT_THROW(TimeSeriesStore{badWindow}, FatalError);
}

// --- Tier-boundary pins: the default rollup windows are 1k cycles
// (mid, 4'000'000 ticks) and 100k cycles (long, 400'000'000 ticks) of
// the 250 MHz kernel clock. These tests pin the exact boundary
// semantics: a bucket covers [k*window, (k+1)*window), so a point
// landing exactly ON a boundary tick belongs to the UPPER bucket and
// seals the lower one. A regression here silently shifts every SLO
// burn rate computed from rollup history.

TEST(TimeSeries, PointOnMidBoundaryBelongsToUpperBucket)
{
    TimeSeriesStore store;  // default tiers: 4'000'000 / 400'000'000
    store.ingestPoint(0, "s", 1.0);
    store.ingestPoint(3'999'999, "s", 2.0);  // last tick of bucket 0

    // Bucket 0 is still open: no sealed history yet.
    std::vector<TsRollup> mid = store.rollups("s", TsTier::Mid);
    ASSERT_EQ(mid.size(), 1u);
    EXPECT_EQ(mid[0].windowStart, 0u);
    EXPECT_EQ(mid[0].count, 2u);

    // Exactly 4'000'000 seals bucket 0 and opens [4M, 8M) with the
    // boundary point inside it — boundary ticks are never counted in
    // the lower bucket.
    store.ingestPoint(4'000'000, "s", 7.0);
    mid = store.rollups("s", TsTier::Mid);
    ASSERT_EQ(mid.size(), 2u);
    EXPECT_EQ(mid[0].windowStart, 0u);
    EXPECT_EQ(mid[0].count, 2u);
    EXPECT_EQ(mid[0].min, 1.0);
    EXPECT_EQ(mid[0].max, 2.0);
    EXPECT_EQ(mid[0].sum, 3.0);
    EXPECT_EQ(mid[0].last, 2.0);
    EXPECT_EQ(mid[1].windowStart, 4'000'000u);
    EXPECT_EQ(mid[1].count, 1u);
    EXPECT_EQ(mid[1].min, 7.0);
    EXPECT_EQ(mid[1].max, 7.0);

    // One more full bucket: [4M, 8M) sealed with exactly the
    // boundary point and its interior follower.
    store.ingestPoint(7'999'999, "s", 9.0);
    store.ingestPoint(8'000'000, "s", 0.5);
    mid = store.rollups("s", TsTier::Mid);
    ASSERT_EQ(mid.size(), 3u);
    EXPECT_EQ(mid[1].windowStart, 4'000'000u);
    EXPECT_EQ(mid[1].count, 2u);
    EXPECT_EQ(mid[1].sum, 16.0);
    EXPECT_EQ(mid[2].windowStart, 8'000'000u);

    // The long tier saw the same five points in one open bucket —
    // mid boundaries are invisible to it.
    const std::vector<TsRollup> lng = store.rollups("s", TsTier::Long);
    ASSERT_EQ(lng.size(), 1u);
    EXPECT_EQ(lng[0].windowStart, 0u);
    EXPECT_EQ(lng[0].count, 5u);
}

TEST(TimeSeries, LongTierSealsExactlyAtHundredKCycleSeam)
{
    TimeSeriesStore store;
    store.ingestPoint(399'999'999, "s", 3.0);  // last long-bucket tick
    store.ingestPoint(400'000'000, "s", 5.0);  // first of the next

    const std::vector<TsRollup> lng =
        store.rollups("s", TsTier::Long);
    ASSERT_EQ(lng.size(), 2u);
    EXPECT_EQ(lng[0].windowStart, 0u);
    EXPECT_EQ(lng[0].count, 1u);
    EXPECT_EQ(lng[0].last, 3.0);
    EXPECT_EQ(lng[1].windowStart, 400'000'000u);
    EXPECT_EQ(lng[1].count, 1u);
    EXPECT_EQ(lng[1].last, 5.0);

    // The same two points straddle a mid seam too: 399'999'999 is in
    // mid bucket [396M, 400M), the boundary point in [400M, 404M).
    const std::vector<TsRollup> mid = store.rollups("s", TsTier::Mid);
    ASSERT_EQ(mid.size(), 2u);
    EXPECT_EQ(mid[0].windowStart, 396'000'000u);
    EXPECT_EQ(mid[1].windowStart, 400'000'000u);
}

TEST(TimeSeries, WindowQueriesSpanTierSeamsOverRawPoints)
{
    TimeSeriesStore store;
    // One point each side of the long seam plus one far earlier.
    store.ingestPoint(300'000'000, "s", 1.0);
    store.ingestPoint(399'999'999, "s", 2.0);
    store.ingestPoint(400'000'001, "s", 4.0);

    // A window straddling the 400M seam sees both adjacent points —
    // windowed queries run over the raw ring, never rollup buckets,
    // so a tier seam cannot split or drop samples.
    const TsWindowStats st =
        store.windowStats("s", 10, 400'000'005);
    ASSERT_EQ(st.count, 2u);
    EXPECT_EQ(st.first, 2.0);
    EXPECT_EQ(st.last, 4.0);
    EXPECT_EQ(st.firstTick, 399'999'999u);
    EXPECT_EQ(st.lastTick, 400'000'001u);
    EXPECT_EQ(store.delta("s", 10, 400'000'005), 2.0);

    // Window edges are inclusive on both sides: [from, now].
    const TsWindowStats edge =
        store.windowStats("s", 2, 400'000'001);
    ASSERT_EQ(edge.count, 2u);
    EXPECT_EQ(edge.firstTick, 399'999'999u);
}

} // namespace
} // namespace harmonia
