/**
 * @file
 * Fuzz harness for OpsClient's reply decoders. The ops plane reads
 * replies that crossed a corruptible wire, so the decoders must treat
 * every length and enum field as hostile. Three layers here: seeded
 * garbage and mutations hammered straight through the static
 * decoders (asan proves no read ever escapes the payload), exhaustive
 * truncation sweeps asserting the typed classification, and a live
 * shell whose telemetry target is swapped for an adversarial one so
 * readAlerts() meets wedged and self-contradicting pagination over
 * the real command plane without looping forever.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cmd/command_codes.h"
#include "host/host_app.h"
#include "obs/ops_client.h"
#include "telemetry/telemetry_target.h"

namespace harmonia {
namespace {

constexpr std::uint64_t kFuzzSeed = 0x0b5c11e4720260808ull;

constexpr std::size_t kSloFixedWords = 4 + 4 * 2 + 3;
constexpr std::size_t kSloReplyWords =
    kSloFixedWords + TelemetryTarget::kNameWords;
constexpr std::size_t kAlertRecordWords =
    6 + TelemetryTarget::kNameWords;

void
pushU64(std::vector<std::uint32_t> &out, std::uint64_t v)
{
    out.push_back(static_cast<std::uint32_t>(v >> 32));
    out.push_back(static_cast<std::uint32_t>(v));
}

CommandPacket
reply(std::vector<std::uint32_t> data, std::uint16_t status = kCmdOk)
{
    CommandPacket pkt;
    pkt.status = status;
    pkt.data = std::move(data);
    return pkt;
}

/** A well-formed single-spec SloStatus reply. */
std::vector<std::uint32_t>
goodSloWords()
{
    std::vector<std::uint32_t> d;
    d.push_back(3);  // total
    d.push_back(1);  // index echo
    d.push_back(static_cast<std::uint32_t>(SloKind::LatencyP99));
    d.push_back(static_cast<std::uint32_t>(AlertState::Firing));
    pushU64(d, 2'500);       // objective 2.5
    pushU64(d, 5'000'000);   // window
    pushU64(d, 1'250);       // burn 1.25
    pushU64(d, 40);          // budget 0.04
    d.push_back(2);          // pending events
    d.push_back(1);          // fire events
    d.push_back(0);          // resolve events
    TelemetryTarget::packNameTo(d, "uck/service_time_ps/p99");
    return d;
}

/** One well-formed AlertSnapshot page of @p k records. */
std::vector<std::uint32_t>
goodAlertWords(std::uint32_t total, std::uint32_t k,
               std::uint32_t start)
{
    std::vector<std::uint32_t> d;
    d.push_back(total);
    d.push_back(k);
    for (std::uint32_t r = 0; r < k; ++r) {
        d.push_back(start + r);  // index
        d.push_back(
            static_cast<std::uint32_t>(AlertState::Pending));
        pushU64(d, 1'000 + start + r);  // since
        pushU64(d, 1'100);              // burn 1.1
        TelemetryTarget::packNameTo(d,
                                    format("slo-%u", start + r));
    }
    return d;
}

TEST(OpsClientFuzz, GoodRepliesDecodeCleanly)
{
    std::uint32_t count = 0;
    EXPECT_EQ(OpsClient::decodeSloCount(reply({7}), &count),
              OpsDecodeError::Ok);
    EXPECT_EQ(count, 7u);

    WireSlo ws;
    ASSERT_EQ(OpsClient::decodeSlo(reply(goodSloWords()), &ws),
              OpsDecodeError::Ok);
    EXPECT_EQ(ws.index, 1u);
    EXPECT_EQ(ws.kind, SloKind::LatencyP99);
    EXPECT_EQ(ws.state, AlertState::Firing);
    EXPECT_NEAR(ws.objective, 2.5, 1e-9);
    EXPECT_EQ(ws.window, 5'000'000u);
    EXPECT_NEAR(ws.burnRate, 1.25, 1e-9);
    EXPECT_NEAR(ws.budgetConsumed, 0.04, 1e-9);
    EXPECT_EQ(ws.pendingEvents, 2u);
    EXPECT_EQ(ws.name, "uck/service_time_ps/p99");

    std::uint32_t total = 0;
    std::uint32_t k = 0;
    std::vector<WireAlert> alerts;
    ASSERT_EQ(OpsClient::decodeAlertPage(
                  reply(goodAlertWords(6, 4, 0)), &total, &k,
                  &alerts),
              OpsDecodeError::Ok);
    EXPECT_EQ(total, 6u);
    EXPECT_EQ(k, 4u);
    ASSERT_EQ(alerts.size(), 4u);
    EXPECT_EQ(alerts[2].index, 2u);
    EXPECT_EQ(alerts[2].name, "slo-2");
    EXPECT_EQ(alerts[2].since, 1'002u);
    EXPECT_NEAR(alerts[2].burnRate, 1.1, 1e-9);

    // The empty fleet: zero total, zero records, still a clean page.
    alerts.clear();
    EXPECT_EQ(OpsClient::decodeAlertPage(reply({0, 0}), &total, &k,
                                         &alerts),
              OpsDecodeError::Ok);
    EXPECT_EQ(total, 0u);
    EXPECT_TRUE(alerts.empty());
}

TEST(OpsClientFuzz, NonOkStatusIsTransportAndWritesNothing)
{
    const std::uint16_t statuses[] = {kCmdBadArgument,
                                      kCmdInternalError,
                                      kCmdUnknownCode,
                                      kCmdNoResponse};
    for (const std::uint16_t status : statuses) {
        std::uint32_t count = 99;
        EXPECT_EQ(OpsClient::decodeSloCount(reply({7}, status),
                                            &count),
                  OpsDecodeError::Transport);
        EXPECT_EQ(count, 99u);

        WireSlo ws;
        ws.name = "untouched";
        EXPECT_EQ(
            OpsClient::decodeSlo(reply(goodSloWords(), status), &ws),
            OpsDecodeError::Transport);
        EXPECT_EQ(ws.name, "untouched");

        std::uint32_t total = 0;
        std::uint32_t k = 0;
        std::vector<WireAlert> alerts;
        EXPECT_EQ(OpsClient::decodeAlertPage(
                      reply(goodAlertWords(2, 2, 0), status), &total,
                      &k, &alerts),
                  OpsDecodeError::Transport);
        EXPECT_TRUE(alerts.empty());
    }
}

TEST(OpsClientFuzz, EveryTruncationIsClassifiedNeverOverread)
{
    // Every strict prefix of a full SloStatus reply is Truncated —
    // there is no cut point that half-decodes.
    const std::vector<std::uint32_t> slo = goodSloWords();
    ASSERT_EQ(slo.size(), kSloReplyWords);
    for (std::size_t cut = 0; cut < slo.size(); ++cut) {
        WireSlo ws;
        EXPECT_EQ(OpsClient::decodeSlo(
                      reply({slo.begin(),
                             slo.begin() + static_cast<long>(cut)}),
                      &ws),
                  OpsDecodeError::Truncated)
            << "cut at " << cut;
    }

    EXPECT_EQ(OpsClient::decodeSloCount(reply({}), nullptr),
              OpsDecodeError::Truncated);

    // Alert pages: a cut inside the header or the advertised records
    // is Truncated; the intact page still decodes afterwards.
    const std::vector<std::uint32_t> page = goodAlertWords(3, 3, 0);
    for (std::size_t cut = 0; cut < page.size(); ++cut) {
        std::uint32_t total = 0;
        std::uint32_t k = 0;
        std::vector<WireAlert> alerts;
        const OpsDecodeError err = OpsClient::decodeAlertPage(
            reply({page.begin(),
                   page.begin() + static_cast<long>(cut)}),
            &total, &k, &alerts);
        EXPECT_EQ(err, OpsDecodeError::Truncated) << "cut at " << cut;
        EXPECT_TRUE(alerts.empty()) << "partial append at " << cut;
    }
}

TEST(OpsClientFuzz, OutOfRangeEnumsAreMalformed)
{
    for (std::uint32_t bad = 4; bad < 9; ++bad) {
        std::vector<std::uint32_t> d = goodSloWords();
        d[2] = bad;  // kind past GaugeBelow
        WireSlo ws;
        EXPECT_EQ(OpsClient::decodeSlo(reply(d), &ws),
                  OpsDecodeError::Malformed);

        d = goodSloWords();
        d[3] = bad;  // state past Resolved
        EXPECT_EQ(OpsClient::decodeSlo(reply(d), &ws),
                  OpsDecodeError::Malformed);
    }

    // A bad state in the *last* record rejects the whole page: no
    // half-decoded tail ever reaches the caller.
    std::vector<std::uint32_t> page = goodAlertWords(4, 4, 0);
    page[2 + 3 * kAlertRecordWords + 1] = 17;
    std::uint32_t total = 0;
    std::uint32_t k = 0;
    std::vector<WireAlert> alerts;
    EXPECT_EQ(OpsClient::decodeAlertPage(reply(page), &total, &k,
                                         &alerts),
              OpsDecodeError::Malformed);
    EXPECT_TRUE(alerts.empty());
}

TEST(OpsClientFuzz, CountLiesAreMalformed)
{
    std::uint32_t count = 0;
    EXPECT_EQ(OpsClient::decodeSloCount(
                  reply({OpsClient::kMaxWireRecords + 1}), &count),
              OpsDecodeError::Malformed);

    std::uint32_t total = 0;
    std::uint32_t k = 0;
    std::vector<WireAlert> alerts;
    // k beyond the producer's page bound — even when the payload is
    // absurdly short, the claim itself is rejected as malformed, not
    // trusted into a multiplication.
    EXPECT_EQ(OpsClient::decodeAlertPage(
                  reply({100, 0xffffffffu}), &total, &k, &alerts),
              OpsDecodeError::Malformed);
    // k exceeding its own total.
    EXPECT_EQ(OpsClient::decodeAlertPage(reply(goodAlertWords(1, 2,
                                                              0)),
                                         &total, &k, &alerts),
              OpsDecodeError::Malformed);
    // total beyond any real fleet.
    std::vector<std::uint32_t> page = goodAlertWords(4, 4, 0);
    page[0] = OpsClient::kMaxWireRecords + 1;
    EXPECT_EQ(OpsClient::decodeAlertPage(reply(page), &total, &k,
                                         &alerts),
              OpsDecodeError::Malformed);
    EXPECT_TRUE(alerts.empty());
}

TEST(OpsClientFuzz, RandomGarbageNeverEscapesThePayload)
{
    std::mt19937_64 rng(kFuzzSeed);
    for (int iter = 0; iter < 3000; ++iter) {
        CommandPacket pkt;
        pkt.status = (rng() % 4 == 0)
                         ? static_cast<std::uint16_t>(rng())
                         : kCmdOk;
        pkt.data.resize(rng() % 96);
        for (auto &w : pkt.data)
            w = static_cast<std::uint32_t>(rng());

        // Every decoder survives every packet (asan guards the
        // no-overread claim); Ok outputs obey the protocol bounds.
        std::uint32_t count = 0;
        if (OpsClient::decodeSloCount(pkt, &count) ==
            OpsDecodeError::Ok)
            EXPECT_LE(count, OpsClient::kMaxWireRecords);

        WireSlo ws;
        if (OpsClient::decodeSlo(pkt, &ws) == OpsDecodeError::Ok) {
            EXPECT_LE(static_cast<std::uint32_t>(ws.kind),
                      static_cast<std::uint32_t>(SloKind::GaugeBelow));
            EXPECT_LE(
                static_cast<std::uint32_t>(ws.state),
                static_cast<std::uint32_t>(AlertState::Resolved));
        }

        std::uint32_t total = 0;
        std::uint32_t k = 0;
        std::vector<WireAlert> alerts;
        if (OpsClient::decodeAlertPage(pkt, &total, &k, &alerts) ==
            OpsDecodeError::Ok) {
            EXPECT_LE(k, TelemetryTarget::kAlertBatch);
            EXPECT_EQ(alerts.size(), k);
        }
    }
}

TEST(OpsClientFuzz, MutatedGoodRepliesClassifyCleanly)
{
    std::mt19937_64 rng(kFuzzSeed ^ 1);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<std::uint32_t> d = iter % 2 == 0
                                           ? goodSloWords()
                                           : goodAlertWords(4, 4, 0);
        const std::size_t flips = 1 + rng() % 3;
        for (std::size_t f = 0; f < flips; ++f)
            d[rng() % d.size()] ^= 1u << (rng() % 32);

        if (iter % 2 == 0) {
            WireSlo ws;
            OpsClient::decodeSlo(reply(d), &ws);  // must not crash
        } else {
            std::uint32_t total = 0;
            std::uint32_t k = 0;
            std::vector<WireAlert> alerts;
            const OpsDecodeError err = OpsClient::decodeAlertPage(
                reply(d), &total, &k, &alerts);
            if (err != OpsDecodeError::Ok)
                EXPECT_TRUE(alerts.empty());
        }
    }
}

/**
 * A telemetry target that answers AlertSnapshot with scripted lies,
 * mounted over the real target on a live shell's kernel so the full
 * CmdDriver path carries the damage. Everything else (SloStatus with
 * garbage enums, truncated records) rides the same switch.
 */
class EvilTarget : public CommandTarget {
  public:
    enum class Mode {
        WedgedWalk,      ///< claims rows remain, delivers none
        ShrinkingTotal,  ///< total changes between pages
        GarbageEnum,     ///< SloStatus kind field past the enum
        ShortRecord,     ///< advertises more words than it sends
    };

    explicit EvilTarget(Mode mode) : mode_(mode) {}

    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override
    {
        CommandResult r;
        r.status = kCmdOk;
        if (code == kCmdAlertSnapshot) {
            const std::uint32_t start =
                data.empty() ? 0 : data[0];
            switch (mode_) {
              case Mode::WedgedWalk:
                // "8 alerts exist" but every page is empty.
                r.data = {8, 0};
                break;
              case Mode::ShrinkingTotal:
                r.data = goodAlertWords(
                    start == 0 ? 8 : 6,
                    static_cast<std::uint32_t>(
                        TelemetryTarget::kAlertBatch),
                    start);
                break;
              case Mode::GarbageEnum: {
                r.data = goodAlertWords(2, 2, start);
                r.data[2 + 1] = 200;  // first record's state
                break;
              }
              case Mode::ShortRecord:
                r.data = {4, 4, 1, 1};  // 4 records, 2 words
                break;
            }
            return r;
        }
        if (code == kCmdSloStatus) {
            if (data.empty()) {
                r.data = {1};
                return r;
            }
            r.data = goodSloWords();
            if (mode_ == Mode::GarbageEnum)
                r.data[2] = 200;
            else if (mode_ == Mode::ShortRecord)
                r.data.resize(5);
            return r;
        }
        r.status = kCmdUnknownCode;
        return r;
    }

  private:
    Mode mode_;
};

/** A live card whose telemetry plane lies in a chosen way. */
struct EvilRig {
    Engine engine;
    std::unique_ptr<Shell> shell;
    EvilTarget evil;
    CmdDriver driver;
    OpsClient ops;

    explicit EvilRig(EvilTarget::Mode mode)
        : shell(Shell::makeUnified(
              engine, DeviceDatabase::instance().byName("DeviceA"))),
          evil(mode), driver(engine, *shell), ops(driver)
    {
        shell->kernel().unregisterTarget(kRbbTelemetry, 0);
        shell->kernel().registerTarget(kRbbTelemetry, 0, &evil);
    }
};

TEST(OpsClientFuzz, WedgedPaginationTerminatesAsMalformed)
{
    EvilRig rig(EvilTarget::Mode::WedgedWalk);
    EXPECT_TRUE(rig.ops.readAlerts().empty());
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Malformed);
}

TEST(OpsClientFuzz, MidWalkTotalChangeRejectsTheSnapshot)
{
    EvilRig rig(EvilTarget::Mode::ShrinkingTotal);
    EXPECT_TRUE(rig.ops.readAlerts().empty());
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Malformed);
}

TEST(OpsClientFuzz, GarbageEnumOverTheWireIsMalformed)
{
    EvilRig rig(EvilTarget::Mode::GarbageEnum);
    EXPECT_TRUE(rig.ops.readAlerts().empty());
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Malformed);

    WireSlo ws;
    EXPECT_FALSE(rig.ops.readSlo(0, &ws));
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Malformed);
    // The count header is still honest in this mode.
    EXPECT_EQ(rig.ops.sloCount(), 1u);
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Ok);
}

TEST(OpsClientFuzz, ShortRecordsOverTheWireAreTruncated)
{
    EvilRig rig(EvilTarget::Mode::ShortRecord);
    EXPECT_TRUE(rig.ops.readAlerts().empty());
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Truncated);

    WireSlo ws;
    EXPECT_FALSE(rig.ops.readSlo(0, &ws));
    EXPECT_EQ(rig.ops.lastError(), OpsDecodeError::Truncated);
}

TEST(OpsClientFuzz, ErrorNamesAreStable)
{
    EXPECT_STREQ(toString(OpsDecodeError::Ok), "ok");
    EXPECT_STREQ(toString(OpsDecodeError::Transport), "transport");
    EXPECT_STREQ(toString(OpsDecodeError::Truncated), "truncated");
    EXPECT_STREQ(toString(OpsDecodeError::Malformed), "malformed");
}

} // namespace
} // namespace harmonia
