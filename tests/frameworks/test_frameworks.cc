#include <gtest/gtest.h>

#include "common/logging.h"
#include "frameworks/comparison.h"
#include "roles/sec_gateway.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

TEST(Frameworks, Table3SupportMatrix)
{
    const SupportMatrix m = buildSupportMatrix();
    auto supported = [&](const char *fw, const char *dev) {
        return m.supported.at({fw, dev});
    };
    // Vitis: commercial Xilinx boards only.
    EXPECT_TRUE(supported("Vitis", "DeviceA"));
    EXPECT_FALSE(supported("Vitis", "DeviceB"));  // in-house board
    EXPECT_FALSE(supported("Vitis", "DeviceD"));
    // oneAPI: Intel boards only.
    EXPECT_FALSE(supported("oneAPI", "DeviceA"));
    EXPECT_FALSE(supported("oneAPI", "DeviceC"));  // in-house board
    EXPECT_TRUE(supported("oneAPI", "DeviceD"));
    // Coyote: Xilinx Alveo-class boards.
    EXPECT_TRUE(supported("Coyote", "DeviceA"));
    EXPECT_FALSE(supported("Coyote", "DeviceD"));
    // Harmonia: everything, including in-house.
    for (const char *dev :
         {"DeviceA", "DeviceB", "DeviceC", "DeviceD"})
        EXPECT_TRUE(supported("Harmonia", dev)) << dev;
}

TEST(Frameworks, Fig18aHarmoniaUsesLessShell)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    const auto rows = compareShellFootprints(device("DeviceA"), *shell);
    // Vitis, Coyote and Harmonia can all target device A.
    ASSERT_EQ(rows.size(), 3u);
    double harmonia_lut = 0, best_baseline = 1.0;
    for (const auto &row : rows) {
        if (row.framework == "Harmonia")
            harmonia_lut = row.lutFraction;
        else
            best_baseline = std::min(best_baseline, row.lutFraction);
    }
    EXPECT_GT(harmonia_lut, 0.0);
    // Paper: 3.5-14.9 percentage points lower than the baselines.
    const double saving = best_baseline - harmonia_lut;
    EXPECT_GE(saving, 0.03);
    EXPECT_LE(saving, 0.16);
}

TEST(Frameworks, BaselineFootprintsAreMonolithic)
{
    VitisFramework vitis;
    const ResourceVector r = vitis.shellResources(device("DeviceA"));
    // Benchmark-independent and a large fixed fraction of the die.
    const double lut_frac =
        r.utilization("lut", device("DeviceA").chip().budget);
    EXPECT_GT(lut_frac, 0.15);
    EXPECT_LT(lut_frac, 0.25);
}

TEST(Frameworks, Table4CommandRatioInPaperBand)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    const auto rows = compareConfigCosts(*shell);
    ASSERT_EQ(rows.size(), 3u);
    for (const auto &row : rows) {
        EXPECT_GT(row.registerOps, row.commandOps);
        // Paper: 15-23x simplification.
        EXPECT_GE(row.ratio(), 10.0) << toString(row.task);
        EXPECT_LE(row.ratio(), 40.0) << toString(row.task);
    }
}

TEST(Frameworks, PerformanceFactorsNearUnity)
{
    for (const auto &fw : makeBaselines()) {
        EXPECT_GE(fw->datapathEfficiency(), 0.95) << fw->name();
        EXPECT_LE(fw->datapathEfficiency(), 1.0) << fw->name();
        EXPECT_LT(fw->addedLatencyPs(), 500'000u) << fw->name();
    }
}

TEST(Frameworks, ConfigTaskNames)
{
    EXPECT_STREQ(toString(ConfigTask::MonitoringStatistics),
                 "Monitoring Statistics");
    EXPECT_STREQ(toString(ConfigTask::HostInteraction),
                 "Host Interaction Config");
}

} // namespace
} // namespace harmonia
