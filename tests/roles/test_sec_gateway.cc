#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/cmd_driver.h"
#include "roles/sec_gateway.h"

namespace harmonia {
namespace {

struct GatewayBench {
    Engine engine;
    std::unique_ptr<Shell> shell;
    SecGateway role;

    GatewayBench()
        : shell(Shell::makeTailored(
              engine,
              DeviceDatabase::instance().byName("DeviceA"),
              SecGateway::standardRequirements()))
    {
        role.bind(engine, *shell);
    }

    void
    inject(std::uint64_t flow, std::uint32_t bytes = 256,
           Tick when = 0)
    {
        PacketDesc pkt;
        pkt.flowHash = flow;
        pkt.bytes = bytes;
        pkt.injected = when ? when : engine.now();
        shell->network().mac().injectRx(pkt, pkt.injected);
    }
};

TEST(SecGateway, PolicyMatching)
{
    SecGateway gw;
    gw.setDefaultAllow(true);
    gw.addPolicy({0xff00, 0x1200, false});  // deny 0x12xx
    gw.addPolicy({0xffff, 0x1234, true});   // unreachable: first wins
    EXPECT_FALSE(gw.allows(0x1234));
    EXPECT_FALSE(gw.allows(0x12ff));
    EXPECT_TRUE(gw.allows(0x1334));
    gw.setDefaultAllow(false);
    EXPECT_FALSE(gw.allows(0x9999));
}

TEST(SecGateway, ForwardsAllowedDropsDenied)
{
    GatewayBench b;
    b.role.setDefaultAllow(true);
    b.role.addPolicy({0xf, 0x3, false});  // deny flows ending in 3

    for (std::uint64_t flow = 0; flow < 16; ++flow)
        b.inject(flow);
    b.engine.runFor(20'000'000);

    // 15 forwarded (flow 3 denied); forwarded packets leave via TX.
    EXPECT_EQ(b.role.stats().value("forwarded_packets"), 15u);
    EXPECT_EQ(b.role.stats().value("denied_packets"), 1u);
    EXPECT_EQ(b.shell->network().monitor().value("tx_packets"), 15u);
}

TEST(SecGateway, LineRateForwardingUnderLoad)
{
    GatewayBench b;
    // Saturate: 2000 packets of 512B paced at the 100G wire rate.
    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 2000; ++i)
        b.inject(i % 64, 512, b.engine.now() + i * wire);
    b.engine.runFor(200'000'000);
    const std::uint64_t fwd =
        b.role.stats().value("forwarded_packets");
    // No policy: everything forwards; nothing is lost in the shell.
    EXPECT_EQ(fwd + b.shell->network().monitor().value("rx_drops") +
                  b.shell->network().mac().stats().value(
                      "rx_dropped"),
              2000u);
    EXPECT_GT(fwd, 1800u);
}

TEST(SecGateway, PoliciesViaCommandInterface)
{
    GatewayBench b;
    CmdDriver driver(b.engine, *b.shell);
    // Role targets live at kRoleRbbIdBase.
    const CommandPacket resp = driver.call(
        kRoleRbbIdBase, 0, kCmdTableWrite,
        {0xf, 0x0, 0x3, 0x0, 0});  // deny mask=0xf value=0x3
    EXPECT_EQ(resp.status, kCmdOk);
    EXPECT_EQ(b.role.policyCount(), 1u);
    EXPECT_FALSE(b.role.allows(0x13));
}

TEST(SecGateway, RequirementsDescribeBitwRole)
{
    const RoleRequirements r = SecGateway::standardRequirements();
    EXPECT_TRUE(r.needsNetwork);
    EXPECT_TRUE(r.needsHost);
    EXPECT_FALSE(r.needsMemory);
    EXPECT_EQ(SecGateway().arch(), RoleArch::BumpInTheWire);
}

TEST(SecGateway, DoubleBindRejected)
{
    GatewayBench b;
    EXPECT_THROW(b.role.bind(b.engine, *b.shell), FatalError);
}

TEST(SecGateway, BindValidatesShellCapabilities)
{
    Engine engine;
    ShellConfig cfg;  // host-only shell: no network RBB
    Shell shell(engine,
                DeviceDatabase::instance().byName("DeviceC"), cfg,
                "hostonly");
    SecGateway role;
    EXPECT_THROW(role.bind(engine, shell), FatalError);
}

} // namespace
} // namespace harmonia
