#include <gtest/gtest.h>

#include "common/logging.h"
#include "roles/board_test.h"

namespace harmonia {
namespace {

TEST(BoardTest, FullBoardPasses)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    BoardTest tester;
    tester.bind(engine, *shell);
    const BoardReport report = tester.runAll(engine);
    EXPECT_TRUE(report.allPass()) << [&] {
        std::string all;
        for (const auto &l : report.log)
            all += l + "\n";
        return all;
    }();
    EXPECT_GT(report.networkGbps, 10.0);
    EXPECT_GT(report.memoryGBps, 1.0);
    EXPECT_GT(report.dmaGBps, 1.0);
    EXPECT_EQ(tester.stats().value("passes"), 1u);
}

TEST(BoardTest, AdaptsToBoardsWithoutMemory)
{
    // Device C has no external memory: the memory test is skipped,
    // everything else runs.
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceC"));
    BoardTest tester;
    tester.bind(engine, *shell);
    const BoardReport report = tester.runAll(engine);
    EXPECT_TRUE(report.allPass());
    bool skipped = false;
    for (const auto &line : report.log)
        if (line.find("memory: skipped") != std::string::npos)
            skipped = true;
    EXPECT_TRUE(skipped);
}

TEST(BoardTest, CrossVendorBoardsPass)
{
    for (const char *name : {"DeviceB", "DeviceD"}) {
        Engine engine;
        auto shell = Shell::makeUnified(
            engine, DeviceDatabase::instance().byName(name));
        BoardTest tester;
        tester.bind(engine, *shell);
        EXPECT_TRUE(tester.runAll(engine).allPass()) << name;
    }
}

TEST(BoardTest, MeasuredRatesAreWithinPhysicalBounds)
{
    Engine engine;
    auto shell = Shell::makeUnified(
        engine, DeviceDatabase::instance().byName("DeviceA"));
    BoardTest tester;
    tester.bind(engine, *shell);
    const BoardReport report = tester.runAll(engine);
    EXPECT_LE(report.networkGbps, 100.0);   // 100G cage
    EXPECT_LE(report.dmaGBps, 16.0);        // Gen4 x8
}

} // namespace
} // namespace harmonia
