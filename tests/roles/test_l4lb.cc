#include <gtest/gtest.h>

#include "common/logging.h"
#include "roles/l4lb.h"

namespace harmonia {
namespace {

TEST(Layer4Lb, RendezvousIsDeterministicAndSpread)
{
    Layer4Lb lb(64);
    std::map<unsigned, int> counts;
    for (std::uint64_t flow = 0; flow < 64000; ++flow) {
        const unsigned s = lb.pickServer(flow);
        EXPECT_EQ(s, lb.pickServer(flow));  // deterministic
        ++counts[s];
    }
    EXPECT_EQ(counts.size(), 64u);
    for (const auto &[server, n] : counts) {
        EXPECT_GT(n, 600) << server;   // ~1000 expected
        EXPECT_LT(n, 1400) << server;
    }
}

TEST(Layer4Lb, ConnectionTablePinsFlows)
{
    Layer4Lb lb(16);
    const unsigned s = lb.processFlowPacket(0x42, FlowPhase::Syn);
    EXPECT_TRUE(lb.isPinned(0x42));
    EXPECT_EQ(lb.pinnedServer(0x42), s);
    EXPECT_EQ(lb.processFlowPacket(0x42, FlowPhase::Data), s);
    EXPECT_EQ(lb.stats().value("table_hits"), 1u);
    lb.processFlowPacket(0x42, FlowPhase::Fin);
    EXPECT_FALSE(lb.isPinned(0x42));
    EXPECT_EQ(lb.stats().value("flows_closed"), 1u);
}

TEST(Layer4Lb, PinnedFlowsSurviveServerSetChanges)
{
    // The stateful-LB property: established connections stay on
    // their server even when the healthy set changes.
    Layer4Lb lb(8);
    const unsigned s = lb.processFlowPacket(0x77, FlowPhase::Syn);
    const unsigned other = (s + 1) % 8;
    lb.setServerHealthy(other, false);
    EXPECT_EQ(lb.processFlowPacket(0x77, FlowPhase::Data), s);

    // New flows avoid the unhealthy server.
    for (std::uint64_t flow = 1000; flow < 1200; ++flow)
        EXPECT_NE(lb.pickServer(flow), other);
}

TEST(Layer4Lb, RendezvousMinimalDisruption)
{
    // Removing one of 16 servers remaps only its own flows.
    Layer4Lb lb(16);
    std::map<std::uint64_t, unsigned> before;
    for (std::uint64_t flow = 0; flow < 4000; ++flow)
        before[flow] = lb.pickServer(flow);
    lb.setServerHealthy(3, false);
    int moved = 0;
    for (const auto &[flow, server] : before) {
        if (lb.pickServer(flow) != server) {
            EXPECT_EQ(server, 3u) << "non-victim flow moved";
            ++moved;
        }
    }
    EXPECT_GT(moved, 100);  // server 3's share did move
}

TEST(Layer4Lb, TableEvictionWhenFull)
{
    Layer4Lb lb(4);
    for (std::uint64_t flow = 0;
         flow < Layer4Lb::kConnTableCapacity + 10; ++flow)
        lb.processFlowPacket(flow, FlowPhase::Syn);
    EXPECT_LE(lb.connectionCount(), Layer4Lb::kConnTableCapacity);
    EXPECT_GT(lb.stats().value("evictions"), 0u);
}

TEST(Layer4Lb, NoHealthyServersFatal)
{
    Layer4Lb lb(2);
    lb.setServerHealthy(0, false);
    lb.setServerHealthy(1, false);
    EXPECT_THROW(lb.pickServer(1), FatalError);
    EXPECT_THROW(Layer4Lb{0}, FatalError);
}

TEST(Layer4Lb, DatapathForwardsAcrossPorts)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName("DeviceB"),
        Layer4Lb::standardRequirements());
    Layer4Lb role(16);
    role.bind(engine, *shell);

    // Flows arrive on port 0 and leave on port 1 toward the chosen
    // real server's queue.
    for (std::uint64_t flow = 0; flow < 8; ++flow) {
        PacketDesc pkt;
        pkt.flowHash = flow;
        pkt.flags = kFlagSyn;
        pkt.bytes = 64;
        shell->network(0).mac().injectRx(pkt, engine.now());
    }
    engine.runFor(20'000'000);
    EXPECT_EQ(role.stats().value("forwarded_packets"), 8u);
    EXPECT_EQ(shell->network(1).monitor().value("tx_packets"), 8u);
    EXPECT_EQ(role.connectionCount(), 8u);
}

} // namespace
} // namespace harmonia
