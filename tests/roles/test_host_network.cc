#include <gtest/gtest.h>

#include <map>

#include "common/logging.h"
#include "roles/host_network.h"

namespace harmonia {
namespace {

struct OffloadBench {
    Engine engine;
    std::unique_ptr<Shell> shell;
    HostNetwork role;

    OffloadBench()
        : shell(Shell::makeTailored(
              engine,
              DeviceDatabase::instance().byName("DeviceA"),
              HostNetwork::standardRequirements()))
    {
        role.bind(engine, *shell);
    }

    void
    inject(std::uint64_t flow, Tick when)
    {
        PacketDesc pkt;
        pkt.flowHash = flow;
        pkt.bytes = 512;
        pkt.injected = when;
        shell->network(0).mac().injectRx(pkt, when);
    }
};

TEST(HostNetwork, MissUpcallsThenFastPath)
{
    OffloadBench b;
    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 10; ++i)
        b.inject(0x5, b.engine.now() + i * 4 * wire);
    b.engine.runFor(50'000'000);

    // First packet misses and punts; the auto-installed rule catches
    // the rest in hardware.
    EXPECT_EQ(b.role.stats().value("upcalls"), 1u);
    EXPECT_EQ(b.role.stats().value("to_host"), 9u);
    EXPECT_TRUE(b.role.hasFlow(0x5));
}

TEST(HostNetwork, ActionsRouteCorrectly)
{
    OffloadBench b;
    b.role.setAutoInstall(false);
    b.shell->host().setQueueActive(7, true);
    b.role.installFlow(1, {FlowAction::Kind::ToHostQueue, 7});
    b.role.installFlow(2, {FlowAction::Kind::ToWire, 0});
    b.role.installFlow(3, {FlowAction::Kind::Drop, 0});

    const Tick wire = wireTime(512, 100e9);
    b.inject(1, b.engine.now());
    b.inject(2, b.engine.now() + wire);
    b.inject(3, b.engine.now() + 2 * wire);
    b.engine.runFor(50'000'000);

    EXPECT_EQ(b.role.stats().value("to_host"), 1u);
    EXPECT_EQ(b.role.stats().value("to_wire"), 1u);
    EXPECT_EQ(b.role.stats().value("dropped"), 1u);
    EXPECT_EQ(b.shell->network(1).monitor().value("tx_packets"), 1u);
    // The to-host packet landed on queue 7 of the DMA engine.
    b.engine.runFor(50'000'000);
    bool queue7 = false;
    while (b.shell->host().hasCompletion())
        if (b.shell->host().popCompletion().request.queue == 7)
            queue7 = true;
    EXPECT_TRUE(queue7);
}

TEST(HostNetwork, FlowTableViaCommands)
{
    OffloadBench b;
    const auto res = b.role.executeCommand(
        kCmdTableWrite, {0x99, 0x0, /*kind=ToWire*/ 1, 0});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_TRUE(b.role.hasFlow(0x99));
    EXPECT_EQ(b.role.executeCommand(kCmdTableWrite, {1, 2, 9, 0})
                  .status,
              kCmdBadArgument);
}

TEST(HostNetwork, SustainedTrafficConvergesToHardware)
{
    OffloadBench b;
    const Tick wire = wireTime(512, 100e9);
    // 64 flows, 20 packets each, interleaved.
    for (int round = 0; round < 20; ++round)
        for (std::uint64_t flow = 0; flow < 64; ++flow)
            b.inject(flow, b.engine.now() +
                               (round * 64 + flow) * wire);
    b.engine.runFor(300'000'000);
    EXPECT_EQ(b.role.stats().value("upcalls"), 64u);
    EXPECT_EQ(b.role.flowCount(), 64u);
    const double fast =
        static_cast<double>(b.role.stats().value("to_host"));
    EXPECT_GT(fast / (fast + 64), 0.9);
}

TEST(HostNetwork, RequirementsNeedEverySubsystem)
{
    const RoleRequirements r = HostNetwork::standardRequirements();
    EXPECT_TRUE(r.needsNetwork);
    EXPECT_TRUE(r.needsMemory);
    EXPECT_TRUE(r.needsHost);
    EXPECT_EQ(r.networkPorts, 2u);
}

} // namespace
} // namespace harmonia
