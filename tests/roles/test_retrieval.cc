#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.h"
#include "roles/retrieval.h"

namespace harmonia {
namespace {

struct RetrievalBench {
    Engine engine;
    std::unique_ptr<Shell> shell;
    Retrieval role;

    explicit RetrievalBench(std::uint64_t corpus = 1 << 10)
        : shell(Shell::makeTailored(
              engine,
              DeviceDatabase::instance().byName("DeviceA"),
              Retrieval::standardRequirements()))
    {
        role.bind(engine, *shell);
        role.setCorpusItems(corpus);
        role.populateCorpus();
    }

    RetrievalResult
    query(std::uint64_t id)
    {
        EXPECT_TRUE(role.submitQuery(id));
        EXPECT_TRUE(engine.runUntilDone(
            [&] { return role.hasResult(); }, 30ULL * 1000 * 1000 *
                                                  1000));
        return role.popResult();
    }
};

TEST(Retrieval, TopKMatchesExhaustiveReference)
{
    RetrievalBench b(512);
    const RetrievalResult r = b.query(7);
    ASSERT_EQ(r.topK.size(), 10u);

    // Reference: score every item, sort.
    std::vector<std::pair<std::int32_t, std::uint64_t>> all;
    for (std::uint64_t item = 0; item < 512; ++item)
        all.emplace_back(b.role.score(7, item), item);
    std::sort(all.begin(), all.end(), [](const auto &x, const auto &y) {
        return x.first > y.first ||
               (x.first == y.first && x.second < y.second);
    });
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(r.topK[i].first, all[i].second) << i;
        EXPECT_EQ(r.topK[i].second, all[i].first) << i;
    }
}

TEST(Retrieval, ScoresAreOrderedInResult)
{
    RetrievalBench b(256);
    const RetrievalResult r = b.query(3);
    for (std::size_t i = 1; i < r.topK.size(); ++i)
        EXPECT_GE(r.topK[i - 1].second, r.topK[i].second);
}

TEST(Retrieval, LatencyGrowsWithCorpus)
{
    RetrievalBench small(1 << 10);
    const Tick lat_small = small.query(1).latency();

    RetrievalBench big(1 << 14);
    const Tick lat_big = big.query(1).latency();
    EXPECT_GT(lat_big, 4 * lat_small);
}

TEST(Retrieval, TimingOnlyModeForHugeCorpora)
{
    RetrievalBench b(1 << 10);
    b.role.setCorpusItems(100'000'000);  // 10^8 items: timing only
    const Tick service = b.role.queryServiceTime();
    // 10^8 x 64B = 6.4 GB at HBM rate (~460 GB/s) ~ 14 ms.
    EXPECT_GT(service, 5ULL * 1000 * 1000 * 1000);
    EXPECT_LT(service, 50ULL * 1000 * 1000 * 1000);
    EXPECT_THROW(b.role.populateCorpus(), FatalError);
}

TEST(Retrieval, QueriesQueueAndAllComplete)
{
    RetrievalBench b(512);
    for (std::uint64_t q = 0; q < 5; ++q)
        ASSERT_TRUE(b.role.submitQuery(q));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] {
            return b.role.stats().value("completed_queries") == 5;
        },
        30ULL * 1000 * 1000 * 1000));
    std::set<std::uint64_t> ids;
    while (b.role.hasResult())
        ids.insert(b.role.popResult().queryId);
    EXPECT_EQ(ids.size(), 5u);
}

TEST(Retrieval, ConfigValidation)
{
    RetrievalConfig bad;
    bad.topK = 0;
    EXPECT_THROW(Retrieval{bad}, FatalError);
    Retrieval ok;
    EXPECT_THROW(ok.setCorpusItems(0), FatalError);
}

TEST(Retrieval, DeterministicEmbeddings)
{
    Retrieval r;
    EXPECT_EQ(r.embeddingElement(5, 3), r.embeddingElement(5, 3));
    EXPECT_EQ(r.score(2, 9), r.score(2, 9));
}

} // namespace
} // namespace harmonia
