#include <gtest/gtest.h>

#include "common/logging.h"
#include "device/chip.h"
#include "device/peripheral.h"

namespace harmonia {
namespace {

TEST(Chip, CatalogueCoversPaperFamilies)
{
    // §3.3.1 names these families as supported.
    EXPECT_EQ(chipByName("XCVU35P").family,
              ChipFamily::VirtexUltraScalePlus);
    EXPECT_EQ(chipByName("XCVU125").family,
              ChipFamily::VirtexUltraScale);
    EXPECT_EQ(chipByName("XC7Z045").family, ChipFamily::Zynq7000);
    EXPECT_EQ(chipByName("AGF014").family, ChipFamily::Agilex);
    EXPECT_EQ(chipByName("1SX280").family, ChipFamily::Stratix10);
    EXPECT_EQ(chipByName("10AX115").family, ChipFamily::Arria10);
}

TEST(Chip, VendorMapping)
{
    EXPECT_EQ(vendorOf(ChipFamily::VirtexUltraScalePlus),
              Vendor::Xilinx);
    EXPECT_EQ(vendorOf(ChipFamily::Agilex), Vendor::Intel);
    EXPECT_EQ(chipByName("XCVU9P").vendor(), Vendor::Xilinx);
    EXPECT_EQ(chipByName("AGF014").vendor(), Vendor::Intel);
}

TEST(Chip, ProcessNodes)
{
    EXPECT_EQ(processNm(ChipFamily::Agilex), 10u);
    EXPECT_EQ(processNm(ChipFamily::Zynq7000), 28u);
    EXPECT_EQ(processNm(ChipFamily::VirtexUltraScale), 20u);
}

TEST(Chip, UnknownChipFatal)
{
    EXPECT_THROW(chipByName("XCVU999"), FatalError);
}

TEST(Chip, HbmFlagAndBudgets)
{
    EXPECT_TRUE(chipByName("XCVU35P").hasHbm);
    EXPECT_FALSE(chipByName("XCVU9P").hasHbm);
    // Budgets are plausible and non-degenerate.
    for (const Chip &c : allChips()) {
        EXPECT_GT(c.budget.lut, 100000u) << c.name;
        EXPECT_GE(c.budget.reg, c.budget.lut) << c.name;
    }
}

TEST(Peripheral, Bandwidths)
{
    Peripheral qsfp{PeripheralKind::Qsfp28, 2, 0};
    EXPECT_DOUBLE_EQ(qsfp.peakBandwidth(), 2 * 100e9 / 8);
    EXPECT_EQ(qsfp.channels(), 2u);

    Peripheral hbm{PeripheralKind::Hbm, 1, 0};
    EXPECT_DOUBLE_EQ(hbm.peakBandwidth(), 460e9);
    EXPECT_EQ(hbm.channels(), 32u);

    Peripheral pcie{PeripheralKind::PcieGen4, 1, 16};
    EXPECT_NEAR(pcie.peakBandwidth(), 31.5e9, 0.5e9);
}

TEST(Peripheral, PcieWithoutLanesFatal)
{
    Peripheral pcie{PeripheralKind::PcieGen3, 1, 0};
    EXPECT_THROW(pcie.peakBandwidth(), FatalError);
}

TEST(Peripheral, Classification)
{
    EXPECT_EQ(classOf(PeripheralKind::Qsfp112),
              PeripheralClass::Network);
    EXPECT_EQ(classOf(PeripheralKind::Dsfp), PeripheralClass::Network);
    EXPECT_EQ(classOf(PeripheralKind::Hbm), PeripheralClass::Memory);
    EXPECT_EQ(classOf(PeripheralKind::PcieGen5),
              PeripheralClass::Host);
}

} // namespace
} // namespace harmonia
