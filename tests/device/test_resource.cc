#include <gtest/gtest.h>

#include "common/logging.h"
#include "device/resource.h"

namespace harmonia {
namespace {

TEST(ResourceVector, Arithmetic)
{
    const ResourceVector a{100, 200, 10, 2, 5};
    const ResourceVector b{50, 100, 5, 1, 0};
    const ResourceVector sum = a + b;
    EXPECT_EQ(sum.lut, 150u);
    EXPECT_EQ(sum.reg, 300u);
    EXPECT_EQ(sum.bram, 15u);
    EXPECT_EQ(sum.uram, 3u);
    EXPECT_EQ(sum.dsp, 5u);
    EXPECT_EQ(sum - b, a);
}

TEST(ResourceVector, SubtractionUnderflowPanics)
{
    ResourceVector a{10, 10, 10, 0, 0};
    const ResourceVector b{20, 0, 0, 0, 0};
    EXPECT_THROW(a -= b, PanicError);
}

TEST(ResourceVector, FitsIn)
{
    const ResourceVector budget{1000, 2000, 100, 10, 50};
    EXPECT_TRUE((ResourceVector{1000, 2000, 100, 10, 50}).fitsIn(
        budget));
    EXPECT_FALSE(
        (ResourceVector{1001, 0, 0, 0, 0}).fitsIn(budget));
    EXPECT_FALSE(
        (ResourceVector{0, 0, 0, 11, 0}).fitsIn(budget));
}

TEST(ResourceVector, Scaled)
{
    const ResourceVector a{100, 200, 10, 4, 6};
    const ResourceVector half = a.scaled(0.5);
    EXPECT_EQ(half.lut, 50u);
    EXPECT_EQ(half.bram, 5u);
    EXPECT_THROW(a.scaled(-1.0), FatalError);
}

TEST(ResourceVector, MaxUtilization)
{
    const ResourceVector budget{1000, 1000, 100, 100, 100};
    const ResourceVector used{100, 200, 90, 0, 0};
    EXPECT_DOUBLE_EQ(used.maxUtilization(budget), 0.9);  // bram bound
}

TEST(ResourceVector, UtilizationOfMissingClassOnZeroBudget)
{
    const ResourceVector budget{1000, 1000, 100, 0, 100};
    const ResourceVector none{10, 10, 1, 0, 0};
    EXPECT_DOUBLE_EQ(none.utilization("uram", budget), 0.0);
    const ResourceVector some{0, 0, 0, 5, 0};
    EXPECT_DOUBLE_EQ(some.utilization("uram", budget), 1.0);
}

TEST(ResourceVector, NamedClassAccess)
{
    const ResourceVector v{1, 2, 3, 4, 5};
    EXPECT_EQ(resourceClass(v, "lut"), 1u);
    EXPECT_EQ(resourceClass(v, "reg"), 2u);
    EXPECT_EQ(resourceClass(v, "bram"), 3u);
    EXPECT_EQ(resourceClass(v, "uram"), 4u);
    EXPECT_EQ(resourceClass(v, "dsp"), 5u);
    EXPECT_THROW(resourceClass(v, "flipflop"), FatalError);
}

} // namespace
} // namespace harmonia
