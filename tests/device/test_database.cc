#include <gtest/gtest.h>

#include "common/logging.h"
#include "device/database.h"

namespace harmonia {
namespace {

TEST(DeviceDatabase, Table2DevicesPresent)
{
    const DeviceDatabase &db = DeviceDatabase::instance();
    ASSERT_TRUE(db.contains("DeviceA"));
    ASSERT_TRUE(db.contains("DeviceB"));
    ASSERT_TRUE(db.contains("DeviceC"));
    ASSERT_TRUE(db.contains("DeviceD"));

    const FpgaDevice &a = db.byName("DeviceA");
    EXPECT_EQ(a.boardVendor, Vendor::Xilinx);
    EXPECT_EQ(a.chipName, "XCVU35P");
    EXPECT_TRUE(a.has(PeripheralKind::Hbm));
    EXPECT_TRUE(a.has(PeripheralKind::Qsfp28));

    const FpgaDevice &b = db.byName("DeviceB");
    EXPECT_EQ(b.boardVendor, Vendor::InHouse);
    EXPECT_EQ(b.chip().vendor(), Vendor::Xilinx);

    const FpgaDevice &c = db.byName("DeviceC");
    EXPECT_EQ(c.boardVendor, Vendor::InHouse);
    EXPECT_EQ(c.chip().vendor(), Vendor::Intel);
    EXPECT_TRUE(c.has(PeripheralKind::Dsfp));
    EXPECT_FALSE(c.has(PeripheralKind::Ddr4));

    const FpgaDevice &d = db.byName("DeviceD");
    EXPECT_EQ(d.boardVendor, Vendor::Intel);
    EXPECT_TRUE(d.has(PeripheralKind::Ddr4));
}

TEST(DeviceDatabase, PcieAccessor)
{
    const FpgaDevice &b =
        DeviceDatabase::instance().byName("DeviceB");
    EXPECT_EQ(b.pcie().kind, PeripheralKind::PcieGen3);
    EXPECT_EQ(b.pcie().lanes, 16u);
}

TEST(DeviceDatabase, ByClassFilter)
{
    const FpgaDevice &a =
        DeviceDatabase::instance().byName("DeviceA");
    EXPECT_EQ(a.byClass(PeripheralClass::Memory).size(), 2u);
    EXPECT_EQ(a.byClass(PeripheralClass::Network).size(), 1u);
    EXPECT_EQ(a.byClass(PeripheralClass::Host).size(), 1u);
}

TEST(DeviceDatabase, UnknownDeviceFatal)
{
    EXPECT_THROW(DeviceDatabase::instance().byName("DeviceZ"),
                 FatalError);
}

TEST(DeviceDatabase, DuplicateRegistrationFatal)
{
    DeviceDatabase db = DeviceDatabase::standard();
    FpgaDevice dup = db.byName("DeviceA");
    EXPECT_THROW(db.add(dup), FatalError);
}

TEST(DeviceDatabase, ExtensibleWithNewBoards)
{
    DeviceDatabase db = DeviceDatabase::standard();
    db.add({"DeviceF", Vendor::InHouse, "XCVU9P",
            {{PeripheralKind::Qsfp112, 2, 0},
             {PeripheralKind::PcieGen5, 1, 16}},
            2025});
    EXPECT_TRUE(db.contains("DeviceF"));
    EXPECT_EQ(db.byName("DeviceF").pcie().kind,
              PeripheralKind::PcieGen5);
}

TEST(DeviceDatabase, FleetHistoryShapesFig3c)
{
    const auto history = fleetHistory(DeviceDatabase::instance());
    ASSERT_FALSE(history.empty());
    unsigned types = 0;
    unsigned prev_total = 0;
    for (const FleetYear &fy : history) {
        types += fy.newDeviceTypes;
        EXPECT_GT(fy.totalUnits, prev_total);  // monotone growth
        prev_total = fy.totalUnits;
    }
    EXPECT_EQ(types, DeviceDatabase::instance().all().size());
    // "Tens of thousands of FPGA accelerators".
    EXPECT_GT(history.back().totalUnits, 20'000u);
}

TEST(DeviceDatabase, ToStringMentionsChipAndPeripherals)
{
    const std::string s =
        DeviceDatabase::instance().byName("DeviceA").toString();
    EXPECT_NE(s.find("XCVU35P"), std::string::npos);
    EXPECT_NE(s.find("HBM"), std::string::npos);
}

} // namespace
} // namespace harmonia
