#include <gtest/gtest.h>

#include "common/logging.h"

namespace harmonia {
namespace {

TEST(Logging, FormatBasics)
{
    EXPECT_EQ(format("x=%d", 42), "x=42");
    EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(Logging, FormatLongStrings)
{
    const std::string big(500, 'x');
    EXPECT_EQ(format("%s", big.c_str()), big);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input %d", 7), FatalError);
    try {
        fatal("value %d out of range", 9);
        FAIL() << "fatal returned";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value 9 out of range");
    }
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("impossible state"), PanicError);
}

TEST(Logging, FatalAndPanicAreDistinct)
{
    // fatal() = user error, panic() = internal bug: different types
    // so callers can distinguish them.
    EXPECT_THROW(
        {
            try {
                fatal("x");
            } catch (const PanicError &) {
                FAIL() << "fatal must not throw PanicError";
            }
        },
        FatalError);
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(old);
}

} // namespace
} // namespace harmonia
