#include <gtest/gtest.h>

#include "common/checksum.h"

namespace harmonia {
namespace {

TEST(Checksum, EmptyBuffer)
{
    EXPECT_EQ(checksum16({}), 0xffff);
}

TEST(Checksum, OddLengthPadsWithZero)
{
    const std::vector<std::uint8_t> odd = {0xab};
    const std::vector<std::uint8_t> even = {0xab, 0x00};
    EXPECT_EQ(checksum16(odd), checksum16(even));
}

TEST(Checksum, DetectsSingleBitFlip)
{
    std::vector<std::uint8_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 13);
    const std::uint16_t good = checksum16(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] ^= 0x40;
        EXPECT_NE(checksum16(data), good) << "flip at " << i;
        data[i] ^= 0x40;
    }
}

TEST(Checksum, DetectsByteSwapWithinWord)
{
    std::vector<std::uint8_t> data = {1, 2, 3, 4};
    const std::uint16_t good = checksum16(data);
    std::swap(data[0], data[1]);
    EXPECT_NE(checksum16(data), good);
}

TEST(Checksum, KnownBlindSpotCrossWordSwap)
{
    // The one's-complement sum is word-commutative: swapping bytes at
    // the same lane of different words is invisible — why commands
    // pair the checksum with structural length checks.
    std::vector<std::uint8_t> data = {1, 2, 3, 4};
    const std::uint16_t good = checksum16(data);
    std::swap(data[0], data[2]);
    EXPECT_EQ(checksum16(data), good);
}

TEST(Checksum, ChecksumOkHelper)
{
    const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
    EXPECT_TRUE(checksumOk(data, checksum16(data)));
    EXPECT_FALSE(checksumOk(
        data, static_cast<std::uint16_t>(checksum16(data) + 1)));
}

TEST(Checksum, DeterministicAcrossCalls)
{
    std::vector<std::uint8_t> data(1000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(checksum16(data), checksum16(data));
}

} // namespace
} // namespace harmonia
