#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"

namespace harmonia {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RateMeter, RatePerSecond)
{
    RateMeter m;
    EXPECT_EQ(m.ratePerSecond(), 0.0);
    m.record(0, 0);
    // 1000 events over 1 us => 1e9 events/s.
    m.record(1'000'000, 1000);
    EXPECT_DOUBLE_EQ(m.ratePerSecond(), 1e9);
    EXPECT_EQ(m.total(), 1000u);
}

TEST(RateMeter, SingleSampleHasNoRate)
{
    RateMeter m;
    m.record(500, 10);
    EXPECT_EQ(m.ratePerSecond(), 0.0);
    EXPECT_EQ(m.total(), 10u);
}

TEST(Histogram, BucketsAndStats)
{
    Histogram h(10, 10);
    for (std::uint64_t v : {5, 15, 15, 25, 95, 1000})
        h.sample(v);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_NEAR(h.mean(), (5 + 15 + 15 + 25 + 95 + 1000) / 6.0, 1e-9);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, Percentile)
{
    Histogram h(1, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(99), 99.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_THROW(Histogram(0, 10), FatalError);
    EXPECT_THROW(Histogram(10, 0), FatalError);
}

TEST(Histogram, PercentileClampsOutOfRangeRequests)
{
    Histogram h(10, 4);
    h.sample(5);
    h.sample(25);
    // Out-of-range requests clamp to [0, 100] instead of aborting, so
    // monitoring code can pass through unvalidated wire values.
    EXPECT_DOUBLE_EQ(h.percentile(-1), h.percentile(0));
    EXPECT_DOUBLE_EQ(h.percentile(101), h.percentile(100));
    // p100 lands in the last occupied bucket; p0 in the first.
    EXPECT_GE(h.percentile(100), h.percentile(0));
}

TEST(Histogram, PercentileOnEmptyIsZero)
{
    Histogram h(10, 4);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(-5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(200), 0.0);
}

TEST(Histogram, PercentileOnSingleSampleIsItsBucketMidpoint)
{
    Histogram h(10, 8);
    h.sample(42);  // bucket [40, 50) -> midpoint 45
    // With one sample, every percentile resolves to the same bucket:
    // the sliding-window percentile path (obs plane) relies on this.
    EXPECT_DOUBLE_EQ(h.percentile(0), 45.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 45.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 45.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 45.0);
    EXPECT_EQ(h.min(), h.max());
}

TEST(Histogram, PercentileOverflowReportsMax)
{
    Histogram h(10, 2);  // covers [0, 20); everything else overflows
    h.sample(1'000'000);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.percentile(99), 1'000'000.0);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(10, 4);
    h.sample(5);
    h.sample(500);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(RateMeter, SameTickRecordsAccumulateWithoutRate)
{
    RateMeter m;
    m.record(1000, 5);
    m.record(1000, 7);
    // Zero elapsed time cannot produce a finite rate; the total still
    // accumulates and a later record restores the rate.
    EXPECT_EQ(m.ratePerSecond(), 0.0);
    EXPECT_EQ(m.total(), 12u);
    m.record(1'001'000, 12);
    EXPECT_GT(m.ratePerSecond(), 0.0);
}

TEST(StatGroup, SnapshotSortedByName)
{
    StatGroup g("mod");
    g.counter("zeta").inc(3);
    g.counter("alpha").inc(1);
    g.counter("mid").inc(2);
    const auto snap = g.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[1].first, "mid");
    EXPECT_EQ(snap[2].first, "zeta");
    EXPECT_EQ(g.value("zeta"), 3u);
    EXPECT_EQ(g.value("missing"), 0u);
}

TEST(StatGroup, ResetAll)
{
    StatGroup g("mod");
    g.counter("a").inc(5);
    g.counter("b").inc(7);
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    EXPECT_EQ(g.value("b"), 0u);
}

} // namespace
} // namespace harmonia
