#include <gtest/gtest.h>

#include "common/json.h"

namespace harmonia {
namespace {

TEST(Json, ParsesScalars)
{
    std::string err;
    EXPECT_TRUE(JsonValue::parse("null", &err).isNull());
    EXPECT_TRUE(err.empty());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").asDouble(), 3.5);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-2e3").asDouble(), -2000.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, LargeTickCountsRoundTripExactly)
{
    // Tick counts stay exact as doubles up to 2^53; a full round trip
    // through dump + parse must not lose a single tick.
    const std::uint64_t ticks = 9'007'199'254'740'992ull;  // 2^53
    JsonValue v(ticks);
    const JsonValue back = JsonValue::parse(v.dump());
    EXPECT_EQ(back.asU64(), ticks);
}

TEST(Json, ParsesNestedDocuments)
{
    const JsonValue v = JsonValue::parse(
        "{\"suite\":\"harmonia\",\"scenarios\":[{\"name\":\"a\","
        "\"metrics\":{\"gbps\":94.5}},{\"name\":\"b\"}]}");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.get("suite").asString(), "harmonia");
    const JsonValue &arr = v.get("scenarios");
    ASSERT_TRUE(arr.isArray());
    ASSERT_EQ(arr.size(), 2u);
    EXPECT_DOUBLE_EQ(
        arr.at(0).get("metrics").get("gbps").asDouble(), 94.5);
    EXPECT_TRUE(arr.at(1).get("metrics").isNull());
}

TEST(Json, StringEscapesRoundTrip)
{
    JsonValue v = JsonValue::object();
    v.set("s", "quote \" slash \\ tab \t newline \n ctrl \x01");
    const std::string text = v.dump();
    std::string err;
    const JsonValue back = JsonValue::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back.get("s").asString(), v.get("s").asString());
}

TEST(Json, ObjectKeysKeepInsertionOrder)
{
    JsonValue v = JsonValue::object();
    v.set("zeta", 1);
    v.set("alpha", 2);
    v.set("mid", 3);
    const auto keys = v.keys();
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "zeta");
    EXPECT_EQ(keys[1], "alpha");
    EXPECT_EQ(keys[2], "mid");
    // Re-setting replaces in place, not append.
    v.set("alpha", 9);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v.get("alpha").asDouble(), 9.0);
}

TEST(Json, DumpCompactAndPretty)
{
    JsonValue v = JsonValue::object();
    v.set("n", 1);
    JsonValue arr = JsonValue::array();
    arr.push(2);
    arr.push("x");
    v.set("a", std::move(arr));
    EXPECT_EQ(v.dump(), "{\"n\":1,\"a\":[2,\"x\"]}");
    const std::string pretty = v.dump(2);
    EXPECT_NE(pretty.find("{\n  \"n\": 1"), std::string::npos);
    // Pretty output re-parses to the same document.
    EXPECT_EQ(JsonValue::parse(pretty).dump(), v.dump());
}

TEST(Json, MalformedInputReportsErrorNotCrash)
{
    for (const char *bad :
         {"{", "[1,", "{\"a\":}", "tru", "\"unterminated",
          "{\"a\":1}trailing", "01", "nan", ""}) {
        std::string err;
        const JsonValue v = JsonValue::parse(bad, &err);
        EXPECT_TRUE(v.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Json, AccessorsAreTotalOnWrongTypes)
{
    const JsonValue v = JsonValue::parse("[1,2]");
    EXPECT_TRUE(v.at(5).isNull());
    EXPECT_TRUE(v.get("missing").isNull());
    EXPECT_FALSE(v.has("missing"));
    EXPECT_EQ(JsonValue("str").asU64(), 0u);
    EXPECT_EQ(JsonValue(-4.0).asU64(), 0u);  // clamped, not wrapped
}

} // namespace
} // namespace harmonia
