#include <gtest/gtest.h>

#include "common/bits.h"

namespace harmonia {
namespace {

TEST(Bits, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(mask(70), ~0ULL);
}

TEST(Bits, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
    EXPECT_FALSE(isPowerOf2((1ULL << 63) + 1));
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
    EXPECT_EQ(ceilDiv(1500, 64), 24u);
}

TEST(Bits, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, GrayRoundTrip)
{
    for (std::uint64_t v = 0; v < 4096; ++v)
        EXPECT_EQ(grayToBinary(binaryToGray(v)), v);
}

TEST(Bits, GraySingleBitChange)
{
    // The async-FIFO safety property: consecutive Gray codes differ
    // in exactly one bit.
    for (std::uint64_t v = 0; v < 4096; ++v) {
        const std::uint64_t diff =
            binaryToGray(v) ^ binaryToGray(v + 1);
        EXPECT_EQ(__builtin_popcountll(diff), 1) << "at " << v;
    }
}

TEST(Bits, ExtractInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 0), 0xdeadbeefu);
    EXPECT_EQ(insertBits(0, 15, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffffff, 15, 8, 0), 0xffff00ffu);
}

class GrayParamTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrayParamTest, RoundTripWideValues)
{
    const std::uint64_t v = GetParam();
    EXPECT_EQ(grayToBinary(binaryToGray(v)), v);
}

INSTANTIATE_TEST_SUITE_P(WideValues, GrayParamTest,
                         ::testing::Values(0ULL, 1ULL, 0xffULL,
                                           0xdeadbeefULL,
                                           0x123456789abcdefULL,
                                           ~0ULL, 1ULL << 63));

} // namespace
} // namespace harmonia
