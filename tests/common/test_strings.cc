#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/strings.h"
#include "common/types.h"

namespace harmonia {
namespace {

TEST(Strings, HumanUnits)
{
    EXPECT_EQ(humanBitRate(100e9), "100.00 Gbps");
    EXPECT_EQ(humanRate(19.2e9), "19.20 GB/s");
    EXPECT_EQ(humanBytes(4096), "4.00 KiB");
    EXPECT_EQ(humanTime(1'500'000), "1.50 us");
    EXPECT_EQ(humanTime(250), "250.00 ps");
}

TEST(Strings, Split)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
    EXPECT_TRUE(split("", ',').empty());
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("AbC-123"), "abc-123");
}

TEST(Strings, EnumNames)
{
    EXPECT_STREQ(toString(Vendor::Xilinx), "Xilinx");
    EXPECT_STREQ(toString(Vendor::InHouse), "InHouse");
    EXPECT_STREQ(toString(Protocol::AvalonStream), "Avalon-ST");
    EXPECT_STREQ(toString(Protocol::Uniform), "Uniform");
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("longer-name  22"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, RejectsWrongArity)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

} // namespace
} // namespace harmonia
