#include <gtest/gtest.h>

#include "common/logging.h"
#include "protocol/translate.h"

namespace harmonia {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
    return out;
}

TEST(Translate, AxisToAvalonPreservesPayload)
{
    const auto payload = pattern(1000);
    const auto axis = packetToAxis(payload, 64);
    const auto avalon = axisPacketToAvalonSt(axis);
    EXPECT_EQ(avalonStToPacket(avalon), payload);
}

TEST(Translate, AvalonToAxisPreservesPayload)
{
    const auto payload = pattern(777);
    const auto avalon = packetToAvalonSt(payload, 64);
    const auto axis = avalonStPacketToAxis(avalon);
    EXPECT_EQ(axisToPacket(axis), payload);
}

TEST(Translate, FramingReExpressed)
{
    const auto payload = pattern(100);  // 2 beats at 64B, 36 valid
    const auto axis = packetToAxis(payload, 64);
    const auto avalon = axisPacketToAvalonSt(axis);

    ASSERT_EQ(avalon.size(), 2u);
    EXPECT_TRUE(avalon[0].sop);       // AXIS has no sop; synthesized
    EXPECT_FALSE(avalon[0].eop);
    EXPECT_TRUE(avalon[1].eop);       // from tlast
    EXPECT_EQ(avalon[1].empty, 28);   // from popcount(tkeep)
}

TEST(Translate, RoundTripBothDirections)
{
    const auto payload = pattern(1500);
    const auto axis = packetToAxis(payload, 32);
    const auto there = axisPacketToAvalonSt(axis);
    const auto back = avalonStPacketToAxis(there);
    EXPECT_EQ(axisToPacket(back), payload);
}

TEST(Translate, RejectsMalformedBeats)
{
    AxisBeat bad;
    bad.tdata.assign(64, 0);
    bad.tkeep = 0x5;  // non-contiguous
    EXPECT_THROW(axisToAvalonSt(bad, true), FatalError);

    bad.tkeep = 0;  // null beat
    EXPECT_THROW(axisToAvalonSt(bad, true), FatalError);

    AvalonStBeat bad_av;
    bad_av.data.assign(64, 0);
    bad_av.empty = 8;
    bad_av.eop = false;  // empty without eop
    EXPECT_THROW(avalonStToAxis(bad_av), FatalError);
}

TEST(Translate, PartialStrobesBeforeTlastRejected)
{
    AxisBeat mid;
    mid.tdata.assign(64, 1);
    mid.tkeep = (1ULL << 32) - 1;  // half-valid, not last
    mid.tlast = false;
    EXPECT_THROW(axisToAvalonSt(mid, false), FatalError);
}

class TranslateSizesTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TranslateSizesTest, PayloadIdentityAcrossSizes)
{
    const auto payload = pattern(GetParam());
    const auto axis = packetToAxis(payload, 64);
    EXPECT_EQ(avalonStToPacket(axisPacketToAvalonSt(axis)), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TranslateSizesTest,
                         ::testing::Values(1u, 64u, 65u, 512u, 1500u,
                                           9000u));

} // namespace
} // namespace harmonia
