#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/logging.h"
#include "protocol/axi_stream.h"

namespace harmonia {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 29 + 1);
    return out;
}

TEST(AxiStream, SegmentationRoundTrip)
{
    const auto payload = pattern(1500);
    const auto beats = packetToAxis(payload, 64);
    EXPECT_EQ(beats.size(), 24u);  // ceil(1500/64)
    EXPECT_EQ(axisToPacket(beats), payload);
}

TEST(AxiStream, FinalBeatStrobesAndPadding)
{
    const auto payload = pattern(100);
    const auto beats = packetToAxis(payload, 64);
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_EQ(beats[0].tkeep, mask(64));
    EXPECT_FALSE(beats[0].tlast);
    EXPECT_EQ(beats[1].tkeep, mask(36));
    EXPECT_TRUE(beats[1].tlast);
    EXPECT_EQ(beats[1].tdata.size(), 64u);  // zero-padded to bus width
    for (std::size_t i = 36; i < 64; ++i)
        EXPECT_EQ(beats[1].tdata[i], 0);
}

TEST(AxiStream, SingleBeatPacket)
{
    const auto payload = pattern(16);
    const auto beats = packetToAxis(payload, 64);
    ASSERT_EQ(beats.size(), 1u);
    EXPECT_TRUE(beats[0].tlast);
    EXPECT_EQ(axisValidBytes(beats[0]), 16u);
    EXPECT_EQ(axisToPacket(beats), payload);
}

TEST(AxiStream, ExactMultipleOfWidth)
{
    const auto payload = pattern(128);
    const auto beats = packetToAxis(payload, 64);
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_EQ(beats[1].tkeep, mask(64));
    EXPECT_TRUE(beats[1].tlast);
    EXPECT_EQ(axisToPacket(beats), payload);
}

TEST(AxiStream, RejectsEmptyPacketAndBadWidth)
{
    EXPECT_THROW(packetToAxis({}, 64), FatalError);
    EXPECT_THROW(packetToAxis(pattern(8), 0), FatalError);
    EXPECT_THROW(packetToAxis(pattern(8), 65), FatalError);
}

TEST(AxiStream, ReassemblyEnforcesProtocolRules)
{
    auto beats = packetToAxis(pattern(128), 64);

    auto corrupt = beats;
    corrupt[0].tkeep = 0x5;  // non-contiguous
    EXPECT_THROW(axisToPacket(corrupt), FatalError);

    corrupt = beats;
    corrupt[0].tlast = true;  // early tlast
    EXPECT_THROW(axisToPacket(corrupt), FatalError);

    corrupt = beats;
    corrupt[1].tlast = false;  // missing tlast
    EXPECT_THROW(axisToPacket(corrupt), FatalError);

    corrupt = beats;
    corrupt[0].tkeep = mask(32);  // partial strobe before tlast
    EXPECT_THROW(axisToPacket(corrupt), FatalError);

    EXPECT_THROW(axisToPacket({}), FatalError);
}

class AxisSizesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AxisSizesTest, RoundTripAcrossSizes)
{
    const auto payload = pattern(GetParam());
    for (std::size_t width : {16u, 32u, 64u}) {
        const auto beats = packetToAxis(payload, width);
        EXPECT_EQ(axisToPacket(beats), payload)
            << "width " << width;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AxisSizesTest,
                         ::testing::Values(1u, 63u, 64u, 65u, 128u,
                                           1024u, 1500u, 9000u));

} // namespace
} // namespace harmonia
