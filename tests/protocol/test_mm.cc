#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/logging.h"
#include "protocol/avalon_mm.h"
#include "protocol/axi_mm.h"

namespace harmonia {
namespace {

TEST(AxiMm, SingleBurstEncoding)
{
    const auto cmds = axiBurstsFor(0x1000, 512, 64, false, 7);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].addr, 0x1000u);
    EXPECT_EQ(cmds[0].len, 7);            // 8 beats - 1
    EXPECT_EQ(cmds[0].size, 6);           // log2(64)
    EXPECT_EQ(cmds[0].beats(), 8u);
    EXPECT_EQ(cmds[0].beatBytes(), 64u);
    EXPECT_EQ(cmds[0].totalBytes(), 512u);
    EXPECT_EQ(cmds[0].id, 7);
    EXPECT_FALSE(cmds[0].write);
}

TEST(AxiMm, SplitsAt256Beats)
{
    // 300 beats of 64B must split into 256 + 44.
    const auto cmds = axiBurstsFor(0, 300 * 64, 64, true);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].beats(), 256u);
    EXPECT_EQ(cmds[1].beats(), 44u);
    EXPECT_EQ(cmds[1].addr, 256u * 64u);
    EXPECT_TRUE(cmds[1].write);
}

TEST(AxiMm, PartialBeatRoundsUp)
{
    const auto cmds = axiBurstsFor(0, 65, 64, false);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].beats(), 2u);
}

TEST(AxiMm, RejectsBadArguments)
{
    EXPECT_THROW(axiBurstsFor(0, 64, 48, false), FatalError);
    EXPECT_THROW(axiBurstsFor(0, 64, 256, false), FatalError);
    EXPECT_THROW(axiBurstsFor(0, 0, 64, false), FatalError);
}

TEST(AvalonMm, SingleBurstEncoding)
{
    const auto cmds = avalonBurstsFor(0x2000, 512, 64, true);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].address, 0x2000u);
    EXPECT_EQ(cmds[0].burstcount, 8);  // beats, 1-based count
    EXPECT_EQ(cmds[0].byteenable, mask(64));
    EXPECT_TRUE(cmds[0].write);
}

TEST(AvalonMm, SplitsAt2048Beats)
{
    const auto cmds = avalonBurstsFor(0, 2100ULL * 64, 64, false);
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].burstcount, 2048);
    EXPECT_EQ(cmds[1].burstcount, 52);
    EXPECT_EQ(cmds[1].address, 2048ULL * 64);
}

TEST(AvalonMm, RejectsBadArguments)
{
    EXPECT_THROW(avalonBurstsFor(0, 64, 100, false), FatalError);
    EXPECT_THROW(avalonBurstsFor(0, 0, 64, false), FatalError);
}

TEST(MmEncodings, VendorsEncodeSameTransferDifferently)
{
    // The structural disparity the interface wrapper hides: the same
    // 512B transfer is len=7 (beats-1) on AXI vs burstcount=8 on
    // Avalon, and Avalon carries byte lanes in the command.
    const auto axi = axiBurstsFor(0, 512, 64, false);
    const auto av = avalonBurstsFor(0, 512, 64, false);
    EXPECT_EQ(axi[0].len + 1, av[0].burstcount);
    EXPECT_EQ(axi[0].totalBytes(),
              static_cast<std::uint64_t>(av[0].burstcount) * 64);
}

class BurstSizesTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BurstSizesTest, TotalBytesCoveredByBothEncodings)
{
    const std::uint64_t bytes = GetParam();
    const auto axi = axiBurstsFor(0, bytes, 64, false);
    std::uint64_t axi_total = 0;
    for (const auto &c : axi)
        axi_total += c.totalBytes();
    EXPECT_GE(axi_total, bytes);
    EXPECT_LT(axi_total - bytes, 64u);

    const auto av = avalonBurstsFor(0, bytes, 64, false);
    std::uint64_t av_total = 0;
    for (const auto &c : av)
        av_total += static_cast<std::uint64_t>(c.burstcount) * 64;
    EXPECT_EQ(av_total, axi_total);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BurstSizesTest,
                         ::testing::Values(1ULL, 64ULL, 4096ULL,
                                           65536ULL, 1ULL << 20,
                                           (1ULL << 20) + 13));

} // namespace
} // namespace harmonia
