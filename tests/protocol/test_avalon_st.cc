#include <gtest/gtest.h>

#include "common/logging.h"
#include "protocol/avalon_st.h"

namespace harmonia {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 41 + 3);
    return out;
}

TEST(AvalonSt, SegmentationRoundTrip)
{
    const auto payload = pattern(1500);
    const auto beats = packetToAvalonSt(payload, 64);
    EXPECT_EQ(beats.size(), 24u);
    EXPECT_EQ(avalonStToPacket(beats), payload);
}

TEST(AvalonSt, SopEopEmptyFraming)
{
    const auto payload = pattern(100);
    const auto beats = packetToAvalonSt(payload, 64, 5);
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_TRUE(beats[0].sop);
    EXPECT_FALSE(beats[0].eop);
    EXPECT_EQ(beats[0].empty, 0);
    EXPECT_FALSE(beats[1].sop);
    EXPECT_TRUE(beats[1].eop);
    EXPECT_EQ(beats[1].empty, 64 - 36);
    EXPECT_EQ(beats[0].channel, 5);
}

TEST(AvalonSt, SingleBeatHasSopAndEop)
{
    const auto beats = packetToAvalonSt(pattern(10), 64);
    ASSERT_EQ(beats.size(), 1u);
    EXPECT_TRUE(beats[0].sop);
    EXPECT_TRUE(beats[0].eop);
    EXPECT_EQ(avalonStValidBytes(beats[0]), 10u);
}

TEST(AvalonSt, ReassemblyEnforcesProtocolRules)
{
    auto beats = packetToAvalonSt(pattern(128), 64);

    auto corrupt = beats;
    corrupt[0].sop = false;
    EXPECT_THROW(avalonStToPacket(corrupt), FatalError);

    corrupt = beats;
    corrupt[1].sop = true;  // sop mid-packet
    EXPECT_THROW(avalonStToPacket(corrupt), FatalError);

    corrupt = beats;
    corrupt[0].eop = true;  // early eop
    EXPECT_THROW(avalonStToPacket(corrupt), FatalError);

    corrupt = beats;
    corrupt[0].empty = 4;  // empty without eop
    EXPECT_THROW(avalonStToPacket(corrupt), FatalError);

    EXPECT_THROW(avalonStToPacket({}), FatalError);
}

TEST(AvalonSt, RejectsEmptyPacketAndBadWidth)
{
    EXPECT_THROW(packetToAvalonSt({}, 64), FatalError);
    EXPECT_THROW(packetToAvalonSt(pattern(4), 0), FatalError);
}

class AvalonSizesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AvalonSizesTest, RoundTripAcrossSizes)
{
    const auto payload = pattern(GetParam());
    for (std::size_t width : {16u, 32u, 64u, 128u}) {
        const auto beats = packetToAvalonSt(payload, width);
        EXPECT_EQ(avalonStToPacket(beats), payload)
            << "width " << width;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AvalonSizesTest,
                         ::testing::Values(1u, 63u, 64u, 65u, 129u,
                                           1500u, 4096u));

} // namespace
} // namespace harmonia
