#include <gtest/gtest.h>

#include "common/logging.h"
#include "ip/catalog.h"

namespace harmonia {
namespace {

TEST(Catalog, MakesAModelForEveryFunctionAndVendor)
{
    for (IpFunction fn : fig3bFunctions()) {
        for (Vendor v : {Vendor::Xilinx, Vendor::Intel}) {
            auto ip = makeIpFor(fn, v);
            ASSERT_NE(ip, nullptr)
                << toString(fn) << "/" << toString(v);
            EXPECT_FALSE(ip->ports().empty());
            EXPECT_FALSE(ip->configItems().empty());
            EXPECT_FALSE(ip->initSequence().empty());
        }
    }
}

TEST(Catalog, CrossVendorDiffsAreSubstantial)
{
    // Figure 3b's premise: common modules differ by tens of
    // properties across vendors, so they cannot simply be reused.
    for (IpFunction fn : fig3bFunctions()) {
        const PropertyDiff diff = crossVendorDiff(fn);
        EXPECT_GE(diff.interfaceDiff, 20u) << toString(fn);
        EXPECT_GE(diff.configDiff, 20u) << toString(fn);
    }
}

TEST(Catalog, FunctionNames)
{
    EXPECT_STREQ(toString(IpFunction::Mac), "MAC");
    EXPECT_STREQ(toString(IpFunction::Tlp), "TLP");
    EXPECT_STREQ(toString(IpFunction::Hbm), "HBM");
}

TEST(Catalog, SameFamilyIpsShareNoRegisterNames)
{
    // The disparity is total at the register level: nothing to reuse
    // without the wrapper/RBB layer.
    for (IpFunction fn :
         {IpFunction::Mac, IpFunction::Dma, IpFunction::Ddr}) {
        auto a = makeIpFor(fn, Vendor::Xilinx);
        auto b = makeIpFor(fn, Vendor::Intel);
        for (const auto &ra : a->regs().descriptors())
            for (const auto &rb : b->regs().descriptors())
                EXPECT_NE(ra.name, rb.name) << toString(fn);
    }
}

} // namespace
} // namespace harmonia
