#include <gtest/gtest.h>

#include "common/logging.h"
#include "ip/ip_block.h"

namespace harmonia {
namespace {

class DummyIp : public IpBlock {
  public:
    DummyIp() : IpBlock("dummy", Vendor::Xilinx,
                        Protocol::Axi4Stream, 64, 100.0)
    {
        regs().define({"CTRL", 0x0, false, "control"});
        regs().define({"STATUS", 0x4, true, "status"});
        addInitOp({RegOp::Kind::Write, "CTRL", 1});
        addInitOp({RegOp::Kind::Read, "STATUS", 0});
        addConfig({"WIDTH", ConfigScope::RoleOriented, "64", ""});
        addConfig({"MODE", ConfigScope::ShellOriented, "fast", ""});
        addPort({"data_in", Protocol::Axi4Stream, 64, false});
        addDependency("cad_tool", "vivado-2023.2");
    }
    void tick() override {}
};

TEST(RegisterFile, ReadWriteByAddrAndName)
{
    DummyIp ip;
    ip.regs().write(0x0, 0x55);
    EXPECT_EQ(ip.regs().read(0x0), 0x55u);
    ip.regs().writeByName("CTRL", 0x66);
    EXPECT_EQ(ip.regs().readByName("CTRL"), 0x66u);
}

TEST(RegisterFile, ReadOnlyEnforced)
{
    DummyIp ip;
    EXPECT_THROW(ip.regs().write(0x4, 1), FatalError);
    ip.regs().poke(0x4, 7);  // hardware-internal update is fine
    EXPECT_EQ(ip.regs().read(0x4), 7u);
}

TEST(RegisterFile, HandlersFire)
{
    DummyIp ip;
    int writes = 0;
    ip.regs().onWrite(0x0, [&](std::uint32_t v) {
        ++writes;
        EXPECT_EQ(v, 9u);
    });
    ip.regs().onRead(0x4, [](std::uint32_t) { return 123u; });
    ip.regs().write(0x0, 9);
    EXPECT_EQ(writes, 1);
    EXPECT_EQ(ip.regs().read(0x4), 123u);
    EXPECT_EQ(ip.regs().peek(0x4), 0u);  // peek bypasses handlers
}

TEST(RegisterFile, UndefinedAccessFatal)
{
    DummyIp ip;
    EXPECT_THROW(ip.regs().read(0x100), FatalError);
    EXPECT_THROW(ip.regs().addrOf("NOPE"), FatalError);
}

TEST(RegisterFile, DuplicateDefinitionFatal)
{
    DummyIp ip;
    EXPECT_THROW(ip.regs().define({"CTRL2", 0x0, false, ""}),
                 FatalError);
    EXPECT_THROW(ip.regs().define({"CTRL", 0x8, false, ""}),
                 FatalError);
}

TEST(RegisterFile, Descriptors)
{
    DummyIp ip;
    const auto descs = ip.regs().descriptors();
    ASSERT_EQ(descs.size(), 2u);
    EXPECT_EQ(descs[0].name, "CTRL");
    EXPECT_TRUE(descs[1].readOnly);
}

TEST(IpBlock, InitSequenceMarksInitialized)
{
    DummyIp ip;
    EXPECT_FALSE(ip.initialized());
    EXPECT_EQ(ip.applyInitSequence(), 2u);
    EXPECT_TRUE(ip.initialized());
    EXPECT_EQ(ip.regs().readByName("CTRL"), 1u);
    ip.reset();
    EXPECT_FALSE(ip.initialized());
}

TEST(IpBlock, RoleOrientedConfigFilter)
{
    DummyIp ip;
    const auto role = ip.roleOrientedConfigs();
    ASSERT_EQ(role.size(), 1u);
    EXPECT_EQ(role[0], "WIDTH");
}

TEST(IpBlock, RejectsNonByteWidth)
{
    class BadIp : public IpBlock {
      public:
        BadIp() : IpBlock("bad", Vendor::Intel,
                          Protocol::AvalonStream, 65, 100.0) {}
        void tick() override {}
    };
    EXPECT_THROW(BadIp bad, FatalError);
}

TEST(PropertyDiff, CountsSymmetricDifferences)
{
    DummyIp a;

    class OtherIp : public IpBlock {
      public:
        OtherIp() : IpBlock("other", Vendor::Intel,
                            Protocol::AvalonStream, 64, 100.0)
        {
            addConfig({"WIDTH", ConfigScope::RoleOriented, "64", ""});
            addConfig({"speed", ConfigScope::ShellOriented, "x", ""});
            addConfig({"lanes", ConfigScope::ShellOriented, "4", ""});
            addPort({"rx_data", Protocol::AvalonStream, 64, true});
            addPort({"data_in", Protocol::AvalonStream, 64, false});
        }
        void tick() override {}
    };
    OtherIp b;

    const PropertyDiff diff = propertyDiff(a, b);
    EXPECT_EQ(diff.interfaceDiff, 1u);  // rx_data only in b
    EXPECT_EQ(diff.configDiff, 3u);     // MODE vs speed+lanes
}

TEST(MigrationRegOps, LcsBasedEditCount)
{
    DummyIp a;

    class SimilarIp : public IpBlock {
      public:
        SimilarIp() : IpBlock("sim", Vendor::Xilinx,
                              Protocol::Axi4Stream, 64, 100.0)
        {
            regs().define({"CTRL", 0x0, false, ""});
            regs().define({"STATUS", 0x4, true, ""});
            regs().define({"EXTRA", 0x8, false, ""});
            addInitOp({RegOp::Kind::Write, "CTRL", 1});
            addInitOp({RegOp::Kind::Write, "EXTRA", 2});
            addInitOp({RegOp::Kind::Read, "STATUS", 0});
        }
        void tick() override {}
    };
    SimilarIp b;

    // Common subsequence: {Write CTRL 1, Read STATUS} => 1 insertion.
    EXPECT_EQ(migrationRegOps(a, b), 1u);
    EXPECT_EQ(migrationRegOps(a, a), 0u);
}

TEST(IpBlock, DependenciesRecorded)
{
    DummyIp ip;
    ASSERT_EQ(ip.dependencies().size(), 1u);
    EXPECT_EQ(ip.dependencies().at("cad_tool"), "vivado-2023.2");
}

} // namespace
} // namespace harmonia
