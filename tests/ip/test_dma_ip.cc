#include <gtest/gtest.h>

#include "common/logging.h"
#include "ip/dma_ip.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

struct DmaBench {
    Engine engine;
    Clock *clk;
    XilinxQdma dma{4, 16, 64};

    DmaBench()
    {
        clk = engine.addClock("clk", DmaIp::clockMhzFor(4));
        engine.add(&dma, clk);
    }
};

TEST(DmaIp, LinkBandwidthScalesWithGenAndLanes)
{
    XilinxQdma g3x8(3, 8, 4);
    XilinxQdma g4x16(4, 16, 4);
    XilinxQdma g5x16(5, 16, 4);
    EXPECT_NEAR(g3x8.linkBandwidth(), 7.88e9, 0.1e9);
    EXPECT_NEAR(g4x16.linkBandwidth(), 31.5e9, 0.2e9);
    EXPECT_NEAR(g5x16.linkBandwidth(), 63.0e9, 0.5e9);
    // Paper: width/clock double with each generation.
    EXPECT_EQ(DmaIp::widthBitsFor(3) * 2, DmaIp::widthBitsFor(4));
    EXPECT_EQ(DmaIp::widthBitsFor(4) * 2, DmaIp::widthBitsFor(5));
}

TEST(DmaIp, TlpEfficiencyShape)
{
    // Small transfers pay proportionally more header overhead.
    EXPECT_LT(DmaIp::tlpEfficiency(64), DmaIp::tlpEfficiency(256));
    EXPECT_DOUBLE_EQ(DmaIp::tlpEfficiency(256),
                     DmaIp::tlpEfficiency(4096));
    EXPECT_GT(DmaIp::tlpEfficiency(64), 0.5);
    EXPECT_DOUBLE_EQ(DmaIp::tlpEfficiency(0), 1.0);
}

TEST(DmaIp, CompletionCarriesLatency)
{
    DmaBench b;
    DmaRequest req;
    req.dir = DmaDir::H2C;
    req.queue = 3;
    req.bytes = 4096;
    req.issued = b.engine.now();
    ASSERT_TRUE(b.dma.post(req));

    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.dma.hasCompletion(); }, 50'000'000));
    const DmaCompletion c = b.dma.popCompletion();
    EXPECT_EQ(c.request.queue, 3);
    // At least base latency + serialization.
    EXPECT_GE(c.latency(), b.dma.baseLatency());
    EXPECT_LT(c.latency(), 10'000'000u);  // < 10 us
}

TEST(DmaIp, ControlChannelIsolatedFromDataBacklog)
{
    DmaBench b;
    // Swamp one data queue with large transfers.
    for (int i = 0; i < 32; ++i) {
        DmaRequest req;
        req.bytes = 1 << 20;
        req.queue = 0;
        req.issued = b.engine.now();
        b.dma.post(req);
    }
    DmaRequest ctrl;
    ctrl.control = true;
    ctrl.bytes = 64;
    ctrl.issued = b.engine.now();
    ASSERT_TRUE(b.dma.post(ctrl));

    // The control completion must arrive at base latency, not behind
    // the megabyte backlog.
    DmaCompletion first{};
    bool got_ctrl = false;
    b.engine.runUntilDone(
        [&] {
            while (b.dma.hasCompletion()) {
                first = b.dma.popCompletion();
                if (first.request.control) {
                    got_ctrl = true;
                    return true;
                }
            }
            return false;
        },
        50'000'000);
    ASSERT_TRUE(got_ctrl);
    EXPECT_LE(first.latency(), b.dma.baseLatency() + 100'000);
}

TEST(DmaIp, RoundRobinAcrossQueues)
{
    DmaBench b;
    for (std::uint16_t q = 0; q < 4; ++q) {
        for (int i = 0; i < 8; ++i) {
            DmaRequest req;
            req.queue = q;
            req.bytes = 1024;
            req.issued = b.engine.now();
            ASSERT_TRUE(b.dma.post(req));
        }
    }
    std::vector<std::uint16_t> order;
    b.engine.runUntilDone(
        [&] {
            while (b.dma.hasCompletion())
                order.push_back(b.dma.popCompletion().request.queue);
            return order.size() == 32;
        },
        100'000'000);
    ASSERT_EQ(order.size(), 32u);
    // First four completions hit four distinct queues (round robin).
    std::set<std::uint16_t> first4(order.begin(), order.begin() + 4);
    EXPECT_EQ(first4.size(), 4u);
}

TEST(DmaIp, QueueBackPressure)
{
    DmaBench b;
    DmaRequest req;
    req.queue = 1;
    req.bytes = 64;
    int accepted = 0;
    while (b.dma.post(req))
        ++accepted;
    EXPECT_EQ(accepted, 64);  // per-queue FIFO depth
    EXPECT_GT(b.dma.stats().value("data_rejected"), 0u);
    EXPECT_EQ(b.dma.queueDepth(1), 64u);
}

TEST(DmaIp, InvalidArgumentsFatal)
{
    EXPECT_THROW(XilinxQdma(2, 16, 64), FatalError);   // bad gen
    EXPECT_THROW(XilinxQdma(4, 4, 64), FatalError);    // bad lanes
    EXPECT_THROW(XilinxQdma(4, 16, 0), FatalError);    // no queues
    EXPECT_THROW(XilinxQdma(4, 16, 4096), FatalError); // too many

    DmaBench b;
    DmaRequest req;
    req.queue = 64;  // out of range
    EXPECT_THROW(b.dma.post(req), FatalError);
}

TEST(DmaIp, VendorsDifferInRegistersAndRecipes)
{
    XilinxQdma x(4, 16, 64, "x");
    IntelMcdma i(4, 16, 64, "i");
    EXPECT_NE(x.initSequence().size(), i.initSequence().size());
    for (const auto &xd : x.regs().descriptors())
        for (const auto &id : i.regs().descriptors())
            EXPECT_NE(xd.name, id.name);
    // Dependencies name different toolchains.
    EXPECT_NE(x.dependencies().at("cad_tool"),
              i.dependencies().at("cad_tool"));
}

TEST(DmaIp, BulkStyleTradesLatencyForEfficiency)
{
    // §3.3.2: a BDMA instance for bulk transfer, SGDMA for discrete.
    XilinxQdma bulk(4, 16, 8, "bulk", DmaEngineStyle::Bulk);
    XilinxQdma sg(4, 16, 8, "sg", DmaEngineStyle::ScatterGather);

    // Bulk moves big buffers with less framing overhead...
    EXPECT_GT(bulk.payloadEfficiency(1 << 20),
              sg.payloadEfficiency(1 << 20));
    EXPECT_EQ(bulk.maxPayload(), 4096u);
    EXPECT_EQ(sg.maxPayload(), 256u);
    // ...at a higher per-transfer setup latency.
    EXPECT_GT(bulk.baseLatency(), sg.baseLatency());
    EXPECT_STREQ(toString(DmaEngineStyle::Bulk), "BDMA");
}

TEST(DmaIp, BulkThroughputWinsOnLargeTransfers)
{
    auto run = [](DmaEngineStyle style) {
        Engine engine;
        Clock *clk = engine.addClock("clk", DmaIp::clockMhzFor(4));
        XilinxQdma dma(4, 16, 4, "t", style);
        engine.add(&dma, clk);
        std::uint64_t done = 0;
        std::uint64_t issued = 0;
        const Tick start = engine.now();
        while (done < 200) {
            while (issued < 200) {
                DmaRequest req;
                req.bytes = 1 << 20;
                req.issued = engine.now();
                if (!dma.post(req))
                    break;
                ++issued;
            }
            engine.step();
            while (dma.hasCompletion()) {
                dma.popCompletion();
                ++done;
            }
        }
        return engine.now() - start;
    };
    EXPECT_LT(run(DmaEngineStyle::Bulk),
              run(DmaEngineStyle::ScatterGather));
}

TEST(DmaIp, FactorySelectsByChipVendor)
{
    auto x = makeDma(Vendor::Xilinx, 3, 16, 128);
    auto i = makeDma(Vendor::Intel, 4, 16, 128);
    EXPECT_EQ(x->vendor(), Vendor::Xilinx);
    EXPECT_EQ(i->vendor(), Vendor::Intel);
    EXPECT_EQ(x->pcieGen(), 3u);
    EXPECT_EQ(i->numQueues(), 128u);
}

} // namespace
} // namespace harmonia
