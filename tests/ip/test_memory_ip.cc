#include <gtest/gtest.h>

#include "common/logging.h"
#include "ip/memory_ip.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

struct MemBench {
    Engine engine;
    Clock *clk;
    XilinxMigDdr4 mem{2};

    MemBench()
    {
        clk = engine.addClock("clk", 300.0);
        engine.add(&mem, clk);
    }

    std::uint64_t
    timeAccesses(unsigned channel, bool sequential, unsigned count)
    {
        const Tick start = engine.now();
        unsigned issued = 0, completed = 0;
        std::uint64_t rng = 42;
        while (completed < count) {
            while (issued < count) {
                MemRequest req;
                req.addr = sequential
                               ? issued * 64ULL
                               : ((rng = rng * 6364136223846793005ULL +
                                         1) >>
                                  20) %
                                     (1ULL << 30) / 64 * 64;
                req.bytes = 64;
                req.issued = engine.now();
                if (!mem.post(channel, req))
                    break;
                ++issued;
            }
            engine.step();
            while (mem.hasCompletion()) {
                mem.popCompletion();
                ++completed;
            }
        }
        return engine.now() - start;
    }
};

TEST(MemoryIp, GeometryByKind)
{
    XilinxMigDdr4 ddr(1);
    XilinxHbm hbm;
    EXPECT_EQ(ddr.channels(), 1u);
    EXPECT_EQ(hbm.channels(), 32u);
    EXPECT_DOUBLE_EQ(ddr.channelBandwidth(), 19.2e9);
    EXPECT_NEAR(hbm.channelBandwidth(), 460e9 / 32, 1e6);
    EXPECT_EQ(ddr.rowBytes(), 8192u);
    EXPECT_EQ(hbm.rowBytes(), 2048u);
}

TEST(MemoryIp, SequentialBeatsRandom)
{
    MemBench b;
    const std::uint64_t seq = b.timeAccesses(0, true, 400);
    MemBench b2;
    const std::uint64_t rnd = b2.timeAccesses(0, false, 400);
    // Open-row hits make sequential streams much faster (Fig 10c
    // and 18c shape).
    EXPECT_LT(seq * 2, rnd);
}

TEST(MemoryIp, RowHitMissCountersTrackPattern)
{
    MemBench b;
    b.timeAccesses(0, true, 200);
    EXPECT_GT(b.mem.stats().value("row_hits"),
              b.mem.stats().value("row_misses"));

    MemBench b2;
    b2.timeAccesses(0, false, 200);
    EXPECT_GT(b2.mem.stats().value("row_misses"),
              b2.mem.stats().value("row_hits"));
}

TEST(MemoryIp, ChannelsServeIndependently)
{
    MemBench b;
    // Same number of requests split across 2 channels finishes
    // roughly twice as fast as on one channel.
    const Tick start = b.engine.now();
    unsigned completed = 0;
    for (unsigned i = 0; i < 200; ++i) {
        MemRequest req;
        req.addr = i * 64;
        req.bytes = 64;
        req.issued = b.engine.now();
        while (!b.mem.post(i % 2, req))
            b.engine.step();
    }
    while (completed < 200) {
        b.engine.step();
        while (b.mem.hasCompletion()) {
            b.mem.popCompletion();
            ++completed;
        }
    }
    const Tick two_ch = b.engine.now() - start;

    MemBench b1;
    const Tick one_ch = b1.timeAccesses(0, true, 200);
    EXPECT_LT(two_ch, one_ch);
}

TEST(MemoryIp, FunctionalStoreRoundTrip)
{
    XilinxMigDdr4 mem(1);
    std::vector<std::uint8_t> data(300);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 3);
    // Crosses a page boundary (pages are 4 KiB).
    mem.storeWrite(4096 - 100, data);
    EXPECT_EQ(mem.storeRead(4096 - 100, data.size()), data);
    // Untouched bytes read as zero.
    EXPECT_EQ(mem.storeRead(1 << 20, 4),
              (std::vector<std::uint8_t>{0, 0, 0, 0}));
}

TEST(MemoryIp, SmallAccessesPayBurstGranularity)
{
    MemBench b;
    // A 4B read occupies the bus like a 64B burst; the latency floor
    // is the same.
    MemRequest small;
    small.addr = 0;
    small.bytes = 4;
    small.issued = b.engine.now();
    ASSERT_TRUE(b.mem.post(0, small));
    b.engine.runUntilDone([&] { return b.mem.hasCompletion(); },
                          10'000'000);
    const MemCompletion c = b.mem.popCompletion();
    EXPECT_GE(c.latency(), 15'000u);  // at least CAS
}

TEST(MemoryIp, InvalidRequestsFatal)
{
    MemBench b;
    MemRequest req;
    req.bytes = 0;
    EXPECT_THROW(b.mem.post(0, req), FatalError);
    req.bytes = 64;
    EXPECT_THROW(b.mem.post(9, req), FatalError);
    EXPECT_THROW(b.mem.popCompletion(), FatalError);
}

TEST(MemoryIp, VendorsDifferIntelVsXilinx)
{
    XilinxMigDdr4 x(1, "x");
    IntelEmifDdr4 i(1, "i");
    EXPECT_EQ(x.dataProtocol(), Protocol::Axi4MemoryMapped);
    EXPECT_EQ(i.dataProtocol(), Protocol::AvalonMemoryMapped);
    for (const auto &xd : x.regs().descriptors())
        for (const auto &id : i.regs().descriptors())
            EXPECT_NE(xd.name, id.name);
}

TEST(MemoryIp, FactoryRules)
{
    auto ddr_i = makeMemory(Vendor::Intel, PeripheralKind::Ddr4, 2);
    EXPECT_EQ(ddr_i->vendor(), Vendor::Intel);
    auto hbm = makeMemory(Vendor::Xilinx, PeripheralKind::Hbm, 32);
    EXPECT_EQ(hbm->memoryKind(), PeripheralKind::Hbm);
    EXPECT_THROW(makeMemory(Vendor::Intel, PeripheralKind::Hbm, 32),
                 FatalError);
}

TEST(MemoryIp, InitRecipesDiffer)
{
    XilinxMigDdr4 x(1, "x2");
    IntelEmifDdr4 i(1, "i2");
    x.applyInitSequence();
    i.applyInitSequence();
    EXPECT_TRUE(x.initialized());
    EXPECT_TRUE(i.initialized());
    EXPECT_EQ(i.regs().readByName("afi_cal_success"), 1u);
}

} // namespace
} // namespace harmonia
