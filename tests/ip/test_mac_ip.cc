#include <gtest/gtest.h>

#include "common/logging.h"
#include "ip/mac_ip.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

struct MacBench {
    Engine engine;
    Clock *clk;
    XilinxCmac mac{100};

    MacBench()
    {
        clk = engine.addClock("clk", MacIp::clockMhzFor(100));
        engine.add(&mac, clk);
    }
};

TEST(MacIp, WidthScalesWithRate)
{
    // The paper: 128/512/2048 bits for 25/100/400G.
    EXPECT_EQ(MacIp::widthBitsFor(25), 128u);
    EXPECT_EQ(MacIp::widthBitsFor(100), 512u);
    EXPECT_EQ(MacIp::widthBitsFor(400), 2048u);
    EXPECT_THROW(MacIp::widthBitsFor(40), FatalError);
}

TEST(MacIp, LoopbackDeliversInOrder)
{
    MacBench b;
    b.mac.setLoopback(true);

    for (std::uint64_t i = 0; i < 10; ++i) {
        PacketDesc pkt;
        pkt.id = i;
        pkt.bytes = 256;
        ASSERT_TRUE(b.mac.txReady());
        b.mac.txPush(pkt);
    }

    std::uint64_t next = 0;
    b.engine.runUntilDone(
        [&] {
            while (b.mac.rxAvailable()) {
                EXPECT_EQ(b.mac.rxPop().id, next);
                ++next;
            }
            return next == 10;
        },
        10'000'000);
    EXPECT_EQ(next, 10u);
    EXPECT_EQ(b.mac.stats().value("tx_packets"), 10u);
    EXPECT_EQ(b.mac.stats().value("rx_packets"), 10u);
}

TEST(MacIp, ThroughputBoundedByLineRate)
{
    MacBench b;
    b.mac.setLoopback(true);

    // Saturate with 256B packets for 100 us and measure.
    const Tick duration = 100'000'000;
    std::uint64_t received = 0;
    std::uint64_t received_bytes = 0;
    const Tick start = b.engine.now();
    while (b.engine.now() - start < duration) {
        while (b.mac.txReady()) {
            PacketDesc pkt;
            pkt.bytes = 256;
            b.mac.txPush(pkt);
        }
        b.engine.step();
        while (b.mac.rxAvailable()) {
            received_bytes += b.mac.rxPop().bytes;
            ++received;
        }
    }
    const double seconds =
        static_cast<double>(duration) / kTicksPerSecond;
    const double gbps = received_bytes * 8.0 / seconds / 1e9;
    // Goodput = 100G * 256/(256+24 overhead) ~ 91.4 Gbps.
    EXPECT_GT(gbps, 88.0);
    EXPECT_LT(gbps, 100.0);
}

TEST(MacIp, PeerLinkDelivers)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 322.265625);
    XilinxCmac a(100, "a");
    XilinxCmac c(100, "c");
    engine.add(&a, clk);
    engine.add(&c, clk);
    a.connectPeer(&c);
    c.connectPeer(&a);

    PacketDesc pkt;
    pkt.id = 77;
    pkt.bytes = 1500;
    a.txPush(pkt);
    ASSERT_TRUE(engine.runUntilDone([&] { return c.rxAvailable(); },
                                    10'000'000));
    EXPECT_EQ(c.rxPop().id, 77u);
}

TEST(MacIp, RxOverflowDropsAndCounts)
{
    MacBench b;
    b.mac.setLoopback(true);
    // Push far more than the 64-entry RX queue without draining.
    std::uint64_t pushed = 0;
    for (int round = 0; round < 300; ++round) {
        while (b.mac.txReady() && pushed < 300) {
            PacketDesc pkt;
            pkt.bytes = 64;
            b.mac.txPush(pkt);
            ++pushed;
        }
        b.engine.step();
    }
    b.engine.runFor(50'000'000);
    EXPECT_GT(b.mac.stats().value("rx_dropped"), 0u);
}

TEST(MacIp, VendorsDifferInRegisterMapsAndInit)
{
    XilinxCmac x(100, "x");
    IntelEtileMac i(100, "i");
    EXPECT_EQ(x.dataProtocol(), Protocol::Axi4Stream);
    EXPECT_EQ(i.dataProtocol(), Protocol::AvalonStream);
    // Xilinx's recipe needs the align-wait dance; Intel self-inits.
    EXPECT_GT(x.initSequence().size(), i.initSequence().size());
    // No shared register names.
    for (const auto &xd : x.regs().descriptors())
        for (const auto &id : i.regs().descriptors())
            EXPECT_NE(xd.name, id.name);
}

TEST(MacIp, StatusRegsTrackEnablement)
{
    XilinxCmac x(100);
    EXPECT_EQ(x.regs().readByName("STAT_RX_STATUS"), 0u);
    x.applyInitSequence();
    EXPECT_EQ(x.regs().readByName("STAT_RX_STATUS"), 1u);
    EXPECT_EQ(x.regs().readByName("STAT_TX_STATUS"), 1u);
}

TEST(MacIp, StatRegistersMirrorCounters)
{
    MacBench b;
    b.mac.setLoopback(true);
    PacketDesc pkt;
    pkt.bytes = 512;
    b.mac.txPush(pkt);
    b.engine.runFor(1'000'000);
    EXPECT_EQ(b.mac.regs().readByName("STAT_TX_TOTAL_PACKETS"), 1u);
    EXPECT_EQ(b.mac.regs().readByName("STAT_TX_TOTAL_BYTES"), 512u);
}

TEST(MacIp, FactorySelectsByVendor)
{
    auto x = makeMac(Vendor::Xilinx, 25);
    auto i = makeMac(Vendor::Intel, 400);
    EXPECT_EQ(x->vendor(), Vendor::Xilinx);
    EXPECT_EQ(x->dataWidthBits(), 128u);
    EXPECT_EQ(i->vendor(), Vendor::Intel);
    EXPECT_EQ(i->dataWidthBits(), 2048u);
}

TEST(MacIp, ResetClearsState)
{
    MacBench b;
    b.mac.setLoopback(true);
    PacketDesc pkt;
    pkt.bytes = 64;
    b.mac.txPush(pkt);
    b.engine.runFor(1'000'000);
    b.mac.reset();
    EXPECT_FALSE(b.mac.rxAvailable());
    EXPECT_EQ(b.mac.stats().value("tx_packets"), 0u);
}

} // namespace
} // namespace harmonia
