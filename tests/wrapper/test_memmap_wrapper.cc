#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"
#include "wrapper/memmap_wrapper.h"

namespace harmonia {
namespace {

struct MmWrapBench {
    Engine engine;
    Clock *clk;
    XilinxMigDdr4 mem{1};
    MemMapWrapper wrap{"mmwrap", mem};

    MmWrapBench()
    {
        clk = engine.addClock("clk", 300.0);
        engine.add(&wrap, clk);
        engine.add(&mem, clk);
    }

    Tick
    roundTrip(const UniformMemCommand &cmd)
    {
        EXPECT_TRUE(wrap.post(0, cmd));
        EXPECT_TRUE(engine.runUntilDone(
            [&] { return wrap.hasCompletion(); }, 50'000'000));
        return wrap.popCompletion().latency();
    }
};

TEST(MemMapWrapper, CompletionsFlowThrough)
{
    MmWrapBench b;
    const Tick lat = b.roundTrip({0x1000, 64, false});
    EXPECT_GT(lat, 0u);
}

TEST(MemMapWrapper, AddsBoundedFixedLatency)
{
    // Wrapper latency = controller latency + 2 crossings of the
    // 3-stage pipeline.
    MmWrapBench wrapped;
    const Tick with = wrapped.roundTrip({0x0, 64, false});

    // Native path: drive the controller directly.
    Engine engine;
    Clock *clk = engine.addClock("clk", 300.0);
    XilinxMigDdr4 mem(1, "native");
    engine.add(&mem, clk);
    MemRequest req;
    req.addr = 0x0;
    req.bytes = 64;
    req.issued = engine.now();
    ASSERT_TRUE(mem.post(0, req));
    ASSERT_TRUE(engine.runUntilDone(
        [&] { return mem.hasCompletion(); }, 50'000'000));
    const Tick native = mem.popCompletion().latency();

    const Tick added = with - native;
    EXPECT_GE(added, 2 * wrapped.wrap.addedLatency());
    // "A few fixed clock cycles": under 10 wrapper cycles total.
    EXPECT_LE(added, 10 * wrapped.clk->period());
}

TEST(MemMapWrapper, TranslatesToVendorBursts)
{
    MmWrapBench b;
    const UniformMemCommand cmd{0x4000, 64 * 300, true};
    const auto axi = b.wrap.toAxiBursts(cmd);
    ASSERT_EQ(axi.size(), 2u);  // 300 beats split at 256
    EXPECT_EQ(axi[0].beats(), 256u);
    EXPECT_TRUE(axi[0].write);

    const auto avalon = b.wrap.toAvalonBursts(cmd);
    ASSERT_EQ(avalon.size(), 1u);  // Avalon bursts up to 2048 beats
    EXPECT_EQ(avalon[0].burstcount, 300);
}

TEST(MemMapWrapper, BackPressurePropagates)
{
    MmWrapBench b;
    int accepted = 0;
    while (b.wrap.post(0, {0, 64, false}))
        ++accepted;
    EXPECT_EQ(accepted, 64);  // controller queue depth
}

TEST(MemMapWrapper, StatsCountCommands)
{
    MmWrapBench b;
    b.wrap.post(0, {0, 64, false});
    b.wrap.post(0, {64, 128, true});
    EXPECT_EQ(b.wrap.stats().value("reads"), 1u);
    EXPECT_EQ(b.wrap.stats().value("writes"), 1u);
    EXPECT_EQ(b.wrap.stats().value("bytes"), 192u);
}

TEST(MemMapWrapper, PopWithoutReadyFatal)
{
    MmWrapBench b;
    EXPECT_THROW(b.wrap.popCompletion(), FatalError);
}

} // namespace
} // namespace harmonia
