#include <gtest/gtest.h>

#include "common/logging.h"
#include "ip/mac_ip.h"
#include "wrapper/reg_wrapper.h"

namespace harmonia {
namespace {

TEST(RegInterconnect, WindowsAreDisjointAndStable)
{
    XilinxCmac mac_a(100, "a");
    XilinxCmac mac_b(100, "b");
    RegInterconnect regs;
    const Addr base_a = regs.attach("mac_a", mac_a.regs());
    const Addr base_b = regs.attach("mac_b", mac_b.regs());
    EXPECT_EQ(base_a, 0u);
    EXPECT_EQ(base_b, RegInterconnect::kWindowSize);
    EXPECT_EQ(regs.baseOf("mac_b"), base_b);
    EXPECT_EQ(regs.moduleCount(), 2u);
}

TEST(RegInterconnect, RoutesReadsAndWrites)
{
    XilinxCmac mac_a(100, "c");
    XilinxCmac mac_b(100, "d");
    RegInterconnect regs;
    regs.attach("a", mac_a.regs());
    regs.attach("b", mac_b.regs());

    const Addr a_ctrl = regs.addrOf("a", "GT_LOOPBACK_REG");
    const Addr b_ctrl = regs.addrOf("b", "GT_LOOPBACK_REG");
    regs.write(a_ctrl, 0x11);
    regs.write(b_ctrl, 0x22);
    EXPECT_EQ(regs.read(a_ctrl), 0x11u);
    EXPECT_EQ(regs.read(b_ctrl), 0x22u);
    EXPECT_EQ(mac_a.regs().readByName("GT_LOOPBACK_REG"), 0x11u);
    EXPECT_EQ(mac_b.regs().readByName("GT_LOOPBACK_REG"), 0x22u);
}

TEST(RegInterconnect, UniqueAddressesAcrossModules)
{
    XilinxCmac mac_a(100, "e");
    XilinxCmac mac_b(100, "f");
    RegInterconnect regs;
    regs.attach("a", mac_a.regs());
    regs.attach("b", mac_b.regs());
    // Same register name, different uniform addresses.
    EXPECT_NE(regs.addrOf("a", "RESET_REG"),
              regs.addrOf("b", "RESET_REG"));
    EXPECT_EQ(regs.totalRegisters(),
              mac_a.regs().count() + mac_b.regs().count());
}

TEST(RegInterconnect, ErrorsAreFatal)
{
    XilinxCmac mac(100, "g");
    RegInterconnect regs;
    regs.attach("m", mac.regs());
    EXPECT_THROW(regs.attach("m", mac.regs()), FatalError);
    EXPECT_THROW(regs.baseOf("missing"), FatalError);
    EXPECT_THROW(regs.read(99 * RegInterconnect::kWindowSize),
                 FatalError);
    EXPECT_THROW(regs.addrOf("m", "NO_SUCH_REG"), FatalError);
}

TEST(IrqHub, LinesAreSingletonsByName)
{
    IrqHub hub;
    IrqLine &a = hub.line("dma_done");
    IrqLine &b = hub.line("dma_done");
    EXPECT_EQ(&a, &b);
    hub.line("link_up");
    EXPECT_EQ(hub.count(), 2u);
    EXPECT_TRUE(hub.contains("link_up"));
    EXPECT_FALSE(hub.contains("nope"));
    const auto names = hub.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "dma_done");
}

TEST(IrqHub, RawSignalBypassesRegisterPlane)
{
    // The irq type exists exactly because some signals cannot afford
    // the register round trip: subscribing fires synchronously.
    IrqHub hub;
    bool seen = false;
    hub.line("urgent").subscribe([&] { seen = true; });
    hub.line("urgent").raise();
    EXPECT_TRUE(seen);
}

} // namespace
} // namespace harmonia
