#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"
#include "wrapper/beat_wrapper.h"

namespace harmonia {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 13 + 5);
    return out;
}

TEST(BeatWrapper, AxisPacketCrossesClockedPipelineIntact)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 322.0);
    AxisIngressWrapper wrap("axis_in");
    engine.add(&wrap, clk);

    const auto payload = pattern(1000);
    for (const AxisBeat &b : packetToAxis(payload, 64))
        wrap.push(b);

    std::vector<UniformStreamBeat> got;
    engine.runUntilDone(
        [&] {
            while (wrap.canPop())
                got.push_back(wrap.pop());
            return got.size() == 16;
        },
        10'000'000);
    EXPECT_EQ(uniformToPacket(got), payload);
}

TEST(BeatWrapper, FixedLatencyOneBeatPerCycle)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);
    AvalonIngressWrapper wrap("av_in");
    engine.add(&wrap, clk);

    // Stream beats back to back; after the pipe fills, exactly one
    // beat emerges per cycle — the wrapper's no-bubble guarantee at
    // beat granularity.
    const auto beats = packetToAvalonSt(pattern(64 * 20), 64);
    for (const auto &b : beats)
        wrap.push(b);
    unsigned popped = 0;
    for (unsigned cycle = 0; cycle < 40; ++cycle) {
        engine.step();
        unsigned this_cycle = 0;
        while (wrap.canPop()) {
            wrap.pop();
            ++this_cycle;
        }
        if (cycle >= wrap.depth() && popped < beats.size()) {
            EXPECT_EQ(this_cycle, 1u) << "cycle " << cycle;
        }
        popped += this_cycle;
    }
    EXPECT_EQ(popped, beats.size());
}

TEST(BeatWrapper, FullCrossVendorBeatPath)
{
    // AXIS beats -> uniform -> Avalon beats, through two clocked
    // pipelines: the wrapper pair a cross-vendor migration swaps in.
    Engine engine;
    Clock *clk = engine.addClock("clk", 250.0);
    AxisIngressWrapper ingress("in");
    AvalonEgressWrapper egress("out", 64);
    engine.add(&egress, clk);   // consumer first
    engine.add(&ingress, clk);

    FunctionComponent mover("mover", [&] {
        while (ingress.canPop() && egress.canPush())
            egress.push(ingress.pop());
    });
    engine.add(&mover, clk);

    const auto payload = pattern(777);
    for (const AxisBeat &b : packetToAxis(payload, 64))
        ingress.push(b);

    std::vector<AvalonStBeat> got;
    engine.runUntilDone(
        [&] {
            while (egress.canPop())
                got.push_back(egress.pop());
            return got.size() == 13;  // ceil(777/64)
        },
        10'000'000);
    EXPECT_EQ(avalonStToPacket(got), payload);
    EXPECT_TRUE(got.front().sop);
    EXPECT_TRUE(got.back().eop);
    EXPECT_EQ(got.back().empty, 64 - 777 % 64);
}

TEST(BeatWrapper, BackPressureStallsWithoutLoss)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);
    AxisEgressWrapper wrap("egress", 64);
    engine.add(&wrap, clk);

    // Fill the input beyond the output FIFO depth without draining;
    // then drain and verify nothing was lost or reordered.
    const auto payload = pattern(64 * 100);
    const auto uni = packetToUniform(payload, 64);
    std::size_t pushed = 0;
    std::vector<AxisBeat> got;
    while (got.size() < uni.size()) {
        while (pushed < uni.size() && wrap.canPush()) {
            wrap.push(uni[pushed]);
            ++pushed;
        }
        engine.runCycles(clk, 80);  // let the output FIFO fill/stall
        while (wrap.canPop())
            got.push_back(wrap.pop());
    }
    EXPECT_EQ(axisToPacket(got), payload);
}

TEST(BeatWrapper, MultiplePacketsKeepFraming)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 200.0);
    AxisIngressWrapper wrap("multi");
    engine.add(&wrap, clk);

    const auto p1 = pattern(100);
    const auto p2 = pattern(200);
    for (const auto &b : packetToAxis(p1, 64))
        wrap.push(b);
    for (const auto &b : packetToAxis(p2, 64))
        wrap.push(b);

    std::vector<UniformStreamBeat> got;
    engine.runUntilDone(
        [&] {
            while (wrap.canPop())
                got.push_back(wrap.pop());
            return got.size() == 2 + 4;  // 2 + 4 beats
        },
        10'000'000);
    // First packet: beats 0-1; second: beats 2-5. Framing intact.
    std::vector<UniformStreamBeat> first(got.begin(), got.begin() + 2);
    std::vector<UniformStreamBeat> second(got.begin() + 2, got.end());
    EXPECT_EQ(uniformToPacket(first), p1);
    EXPECT_EQ(uniformToPacket(second), p2);
}

} // namespace
} // namespace harmonia
