#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"
#include "wrapper/stream_wrapper.h"

namespace harmonia {
namespace {

struct WrapBench {
    Engine engine;
    Clock *clk;
    StreamWrapper wrap{"wrap"};

    WrapBench()
    {
        clk = engine.addClock("clk", 250.0);
        engine.add(&wrap, clk);
    }
};

TEST(StreamWrapper, AddsExactlyPipelineLatency)
{
    WrapBench b;
    PacketDesc pkt;
    pkt.id = 1;
    pkt.bytes = 256;
    const Tick t0 = b.engine.now();
    b.wrap.ingressPush(pkt);
    EXPECT_FALSE(b.wrap.ingressAvailable());

    Tick ready_at = 0;
    b.engine.runUntilDone(
        [&] {
            if (b.wrap.ingressAvailable()) {
                ready_at = b.engine.now();
                return true;
            }
            return false;
        },
        1'000'000);
    const Tick expected =
        StreamWrapper::kPipelineDepth * b.clk->period();
    EXPECT_EQ(ready_at - t0, expected);
    EXPECT_EQ(b.wrap.addedLatency(), expected);
    EXPECT_EQ(b.wrap.ingressPop().id, 1u);
}

TEST(StreamWrapper, NoBubblesBackToBack)
{
    // Push one packet per cycle; after the pipe fills, one pops per
    // cycle — throughput is preserved (Fig 10 property).
    WrapBench b;
    std::uint64_t pushed = 0, popped = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        PacketDesc pkt;
        pkt.id = pushed++;
        pkt.bytes = 64;
        b.wrap.ingressPush(pkt);
        b.engine.step();
        if (cycle >= static_cast<int>(StreamWrapper::kPipelineDepth)) {
            ASSERT_TRUE(b.wrap.ingressAvailable())
                << "bubble at cycle " << cycle;
            EXPECT_EQ(b.wrap.ingressPop().id, popped);
            ++popped;
        }
    }
    EXPECT_EQ(popped, 100 - StreamWrapper::kPipelineDepth);
}

TEST(StreamWrapper, DirectionsAreIndependent)
{
    WrapBench b;
    PacketDesc in, out;
    in.id = 1;
    out.id = 2;
    b.wrap.ingressPush(in);
    b.wrap.egressPush(out);
    b.engine.runFor(4 * b.clk->period());
    ASSERT_TRUE(b.wrap.ingressAvailable());
    ASSERT_TRUE(b.wrap.egressAvailable());
    EXPECT_EQ(b.wrap.ingressPop().id, 1u);
    EXPECT_EQ(b.wrap.egressPop().id, 2u);
}

TEST(StreamWrapper, StatsTrackBothDirections)
{
    WrapBench b;
    PacketDesc pkt;
    pkt.bytes = 100;
    b.wrap.ingressPush(pkt);
    b.wrap.ingressPush(pkt);
    b.wrap.egressPush(pkt);
    EXPECT_EQ(b.wrap.stats().value("ingress_packets"), 2u);
    EXPECT_EQ(b.wrap.stats().value("ingress_bytes"), 200u);
    EXPECT_EQ(b.wrap.stats().value("egress_packets"), 1u);
}

TEST(StreamWrapper, TinyResourceFootprint)
{
    // Fig 16: the wrapper must be well under 0.37% of a mid chip.
    StreamWrapper w("w");
    const ResourceVector &r = w.resources();
    const ResourceVector budget{872160, 1744320, 1344, 640, 5952};
    EXPECT_LT(r.maxUtilization(budget), 0.0037);
    EXPECT_GT(r.lut, 0u);
}

TEST(StreamWrapper, UseBeforeRegistrationPanics)
{
    StreamWrapper w("unbound");
    EXPECT_THROW(w.addedLatency(), PanicError);
}

} // namespace
} // namespace harmonia
