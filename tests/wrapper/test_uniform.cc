#include <gtest/gtest.h>

#include "common/logging.h"
#include "wrapper/uniform.h"

namespace harmonia {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 7 + 11);
    return out;
}

TEST(Uniform, PacketRoundTrip)
{
    const auto payload = pattern(1000);
    const auto beats = packetToUniform(payload, 64);
    EXPECT_EQ(beats.size(), 16u);
    EXPECT_TRUE(beats.front().first);
    EXPECT_TRUE(beats.back().last);
    EXPECT_EQ(uniformToPacket(beats), payload);
}

TEST(Uniform, BeatsCarryOnlyValidBytes)
{
    const auto beats = packetToUniform(pattern(100), 64);
    ASSERT_EQ(beats.size(), 2u);
    EXPECT_EQ(beats[0].data.size(), 64u);
    EXPECT_EQ(beats[1].data.size(), 36u);  // no padding in uniform
}

TEST(Uniform, FromAxisAndBack)
{
    const auto payload = pattern(200);
    const auto axis = packetToAxis(payload, 64);
    std::vector<UniformStreamBeat> uni;
    for (std::size_t i = 0; i < axis.size(); ++i)
        uni.push_back(uniformFromAxis(axis[i], i == 0));
    EXPECT_EQ(uniformToPacket(uni), payload);

    std::vector<AxisBeat> back;
    for (const auto &b : uni)
        back.push_back(uniformToAxis(b, 64));
    EXPECT_EQ(axisToPacket(back), payload);
}

TEST(Uniform, FromAvalonAndBack)
{
    const auto payload = pattern(333);
    const auto avalon = packetToAvalonSt(payload, 64);
    std::vector<UniformStreamBeat> uni;
    for (const auto &b : avalon)
        uni.push_back(uniformFromAvalonSt(b));
    EXPECT_EQ(uniformToPacket(uni), payload);

    std::vector<AvalonStBeat> back;
    for (const auto &b : uni)
        back.push_back(uniformToAvalonSt(b, 64));
    EXPECT_EQ(avalonStToPacket(back), payload);
}

TEST(Uniform, CrossVendorIdentityThroughUniform)
{
    // AXIS -> uniform -> Avalon: the wrapper's whole job.
    const auto payload = pattern(1500);
    const auto axis = packetToAxis(payload, 64);
    std::vector<AvalonStBeat> avalon;
    for (std::size_t i = 0; i < axis.size(); ++i)
        avalon.push_back(uniformToAvalonSt(
            uniformFromAxis(axis[i], i == 0), 64));
    EXPECT_EQ(avalonStToPacket(avalon), payload);
}

TEST(Uniform, FramingValidation)
{
    auto beats = packetToUniform(pattern(200), 64);
    auto bad = beats;
    bad[1].first = true;
    EXPECT_THROW(uniformToPacket(bad), FatalError);
    bad = beats;
    bad[0].last = true;
    EXPECT_THROW(uniformToPacket(bad), FatalError);
    EXPECT_THROW(uniformToPacket({}), FatalError);
    EXPECT_THROW(packetToUniform({}, 64), FatalError);
    EXPECT_THROW(packetToUniform(pattern(4), 0), FatalError);
}

TEST(ClockArray, IndexedSelection)
{
    ClockArray clocks;
    EXPECT_EQ(clocks.add("shell", 250.0), 0u);
    EXPECT_EQ(clocks.add("net", 322.0), 1u);
    EXPECT_DOUBLE_EQ(clocks.mhzAt(1), 322.0);
    EXPECT_EQ(clocks.nameAt(0), "shell");
    EXPECT_THROW(clocks.mhzAt(2), FatalError);
    EXPECT_THROW(clocks.add("bad", -1), FatalError);
}

TEST(ResetArray, AssertDeassert)
{
    ResetArray resets;
    const unsigned hard = resets.add("hard");
    const unsigned soft = resets.add("soft");
    EXPECT_FALSE(resets.isAsserted(hard));
    resets.assertReset(soft);
    EXPECT_TRUE(resets.isAsserted(soft));
    EXPECT_FALSE(resets.isAsserted(hard));
    resets.deassertReset(soft);
    EXPECT_FALSE(resets.isAsserted(soft));
    EXPECT_THROW(resets.assertReset(7), FatalError);
}

TEST(IrqLine, EdgeSemantics)
{
    IrqLine irq("door");
    int fires = 0;
    irq.subscribe([&] { ++fires; });
    irq.raise();
    irq.raise();  // still high: no new edge
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(irq.edgeCount(), 1u);
    irq.clear();
    irq.raise();
    EXPECT_EQ(fires, 2);
    EXPECT_TRUE(irq.level());
}

} // namespace
} // namespace harmonia
