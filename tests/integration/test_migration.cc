#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/host_app.h"
#include "roles/sec_gateway.h"
#include "workload/packet_gen.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/**
 * The paper's portability claim: the identical role + host software
 * runs on every device with appropriate capabilities — only the shell
 * (built by the provider from RBBs) changes underneath.
 */
TEST(Migration, SameRoleCodeRunsOnAllFourDevices)
{
    const RoleRequirements reqs = SecGateway::standardRequirements();

    for (const char *name :
         {"DeviceA", "DeviceB", "DeviceC", "DeviceD"}) {
        Engine engine;
        auto shell = Shell::makeTailored(engine, device(name), reqs);
        SecGateway role;  // unmodified role logic
        role.bind(engine, *shell);
        CmdDriver driver(engine, *shell);  // unmodified host logic
        driver.initializeAll();

        const Tick wire = wireTime(512, 100e9);
        for (int i = 0; i < 100; ++i) {
            PacketDesc pkt;
            pkt.flowHash = i;
            pkt.bytes = 512;
            pkt.injected = engine.now() + i * wire;
            shell->network().mac().injectRx(pkt, pkt.injected);
        }
        engine.runFor(100'000'000);
        EXPECT_EQ(role.stats().value("forwarded_packets"), 100u)
            << name;
    }
}

TEST(Migration, CrossVendorCompileFlows)
{
    const RoleRequirements reqs = SecGateway::standardRequirements();
    for (const char *name : {"DeviceA", "DeviceC"}) {
        Engine engine;
        auto shell = Shell::makeTailored(engine, device(name), reqs);
        Toolchain tc(VendorAdapter::standardFor(device(name)));
        const BuildArtifact art = tc.compile(
            shell->compileJob(std::string("mig_") + name,
                              reqs.roleLogic));
        EXPECT_TRUE(art.success)
            << name << ": "
            << (art.log.empty() ? "" : art.log.back());
    }
}

TEST(Migration, WrongToolchainIsCaughtBeforeCompile)
{
    // Building a Device C (Intel chip) shell with a Vivado
    // environment must fail in dependency inspection.
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceC"), SecGateway::standardRequirements());
    Toolchain wrong(VendorAdapter::standardFor(Vendor::Xilinx));
    const BuildArtifact art =
        wrong.compile(shell->compileJob("wrong", {}));
    EXPECT_FALSE(art.success);
}

TEST(Migration, PerformancePortableAcrossVendors)
{
    // Migrating A -> D keeps throughput within a few percent: the
    // wrapper preserves line rate on both IP families.
    const RoleRequirements reqs = SecGateway::standardRequirements();
    std::map<std::string, std::uint64_t> forwarded;
    for (const char *name : {"DeviceA", "DeviceD"}) {
        Engine engine;
        auto shell = Shell::makeTailored(engine, device(name), reqs);
        SecGateway role;
        role.bind(engine, *shell);
        const Tick wire = wireTime(512, 100e9);
        for (int i = 0; i < 1000; ++i) {
            PacketDesc pkt;
            pkt.flowHash = i;
            pkt.bytes = 512;
            pkt.injected = engine.now() + i * wire;
            shell->network().mac().injectRx(pkt, pkt.injected);
        }
        engine.runFor(200'000'000);
        forwarded[name] = role.stats().value("forwarded_packets");
    }
    EXPECT_EQ(forwarded["DeviceA"], forwarded["DeviceD"]);
}

TEST(Migration, DeviceWithoutCapabilityRejectsRole)
{
    // Retrieval needs big memory bandwidth; Device C has no memory.
    Engine engine;
    EXPECT_THROW(
        Shell::makeTailored(
            engine, device("DeviceC"),
            RoleRequirements{.name = "memhog",
                             .needsMemory = true,
                             .memoryBandwidthGBps = 100,
                             .roleLogic = {}}),
        FatalError);
}

} // namespace
} // namespace harmonia
