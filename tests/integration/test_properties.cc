#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/cmd_driver.h"
#include "roles/board_test.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "workload/packet_gen.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/**
 * Property: the whole stack is deterministic. Two identical runs of a
 * traffic workload through a shell + role produce identical statistics
 * and identical final simulated time.
 */
TEST(Properties, SimulationIsDeterministic)
{
    auto run = [] {
        Engine engine;
        auto shell = Shell::makeTailored(
            engine, device("DeviceA"),
            SecGateway::standardRequirements());
        SecGateway role;
        role.bind(engine, *shell);
        role.addPolicy({0x7, 0x2, false});

        PacketGenConfig cfg;
        cfg.sizeMode = SizeMode::Imix;
        cfg.flows = 128;
        PacketGenerator gen(cfg);
        for (int i = 0; i < 600; ++i) {
            PacketDesc pkt = gen.next(engine.now() + i * 10'000);
            shell->network().mac().injectRx(pkt, pkt.injected);
        }
        engine.runFor(100'000'000);
        return std::make_tuple(
            role.stats().value("forwarded_packets"),
            role.stats().value("denied_packets"),
            shell->network().monitor().value("rx_bytes"),
            engine.now());
    };
    EXPECT_EQ(run(), run());
}

/**
 * Property: tailoring succeeds on exactly the devices that physically
 * satisfy a role's demands, for every (role, device) combination —
 * and every feasible combination also compiles and serves commands.
 */
TEST(Properties, TailoringFeasibilityMatrix)
{
    const std::vector<RoleRequirements> roles = {
        SecGateway::standardRequirements(),
        Layer4Lb::standardRequirements(),
        HostNetwork::standardRequirements(),
        Retrieval::standardRequirements(),
        BoardTest::standardRequirements(),
    };

    for (const FpgaDevice &dev : DeviceDatabase::instance().all()) {
        for (const RoleRequirements &reqs : roles) {
            // Independently decide feasibility from the datasheet.
            unsigned cages = 0;
            for (const Peripheral &p :
                 dev.byClass(PeripheralClass::Network))
                cages += p.count;
            double mem_bw = 0;
            for (const Peripheral &p :
                 dev.byClass(PeripheralClass::Memory))
                mem_bw += p.peakBandwidth() / 1e9;
            bool feasible = true;
            if (reqs.needsNetwork && cages < reqs.networkPorts)
                feasible = false;
            if (reqs.needsMemory &&
                mem_bw < reqs.memoryBandwidthGBps)
                feasible = false;

            Engine engine;
            if (!feasible) {
                EXPECT_THROW(Shell::makeTailored(engine, dev, reqs),
                             FatalError)
                    << reqs.name << " on " << dev.name;
                continue;
            }
            auto shell = Shell::makeTailored(engine, dev, reqs);
            Toolchain tc(VendorAdapter::standardFor(dev));
            const BuildArtifact art = tc.compile(
                shell->compileJob(reqs.name + "@" + dev.name,
                                  reqs.roleLogic));
            EXPECT_TRUE(art.success)
                << reqs.name << " on " << dev.name << ": "
                << (art.log.empty() ? "" : art.log.back());

            CmdDriver driver(engine, *shell);
            EXPECT_GT(driver.initializeAll(), 0u);
        }
    }
}

/**
 * Property: the next-generation board (Gen5 + 400G) works with the
 * same code — the §2.2(iii) generation-evolution claim.
 */
TEST(Properties, NextGenDeviceRunsAt400G)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceE"));
    EXPECT_EQ(shell->network().mac().gbps(), 400u);
    EXPECT_EQ(shell->network().instance().dataWidthBits(), 2048u);
    EXPECT_EQ(shell->host().dma().pcieGen(), 5u);

    // 400G line rate actually flows.
    shell->network().setLoopback(true);
    const Tick wire = wireTime(1024, 400e9);
    for (int i = 0; i < 1000; ++i) {
        PacketDesc pkt;
        pkt.bytes = 1024;
        pkt.injected = engine.now() + i * wire;
        shell->network().txPush(pkt);
        while (!shell->network().txReady())
            engine.step();
    }
    std::uint64_t got = 0;
    engine.runUntilDone(
        [&] {
            while (shell->network().rxAvailable()) {
                shell->network().rxPop();
                ++got;
            }
            return got == 1000;
        },
        100'000'000);
    EXPECT_EQ(got, 1000u);
    // The real-time monitor sees several hundred Gbps.
    EXPECT_GT(shell->network().rxBitsPerSecond(), 200e9);
}

/**
 * Property: monitoring rate meters agree with counters over a run.
 */
TEST(Properties, RateMetersMatchCounters)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 500; ++i) {
        PacketDesc pkt;
        pkt.bytes = 512;
        pkt.injected = engine.now() + i * wire;
        shell->network().mac().injectRx(pkt, pkt.injected);
    }
    std::uint64_t drained = 0;
    engine.runUntilDone(
        [&] {
            while (shell->network().rxAvailable()) {
                shell->network().rxPop();
                ++drained;
            }
            return drained == 500;
        },
        100'000'000);
    EXPECT_EQ(shell->network().monitor().value("rx_packets"), 500u);
    // ~91 Gbps goodput at 512B on a 100G line.
    EXPECT_GT(shell->network().rxBitsPerSecond(), 80e9);
    EXPECT_LT(shell->network().rxBitsPerSecond(), 100e9);
    EXPECT_NEAR(shell->network().rxPacketsPerSecond(),
                shell->network().rxBitsPerSecond() / (512 * 8), 1e5);
}

/**
 * Property: control-plane flooding does not corrupt the data plane.
 */
TEST(Properties, ControlFloodLeavesDataPlaneIntact)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    SecGateway role;
    role.bind(engine, *shell);

    // Flood the kernel with commands while traffic flows.
    CmdDriver driver(engine, *shell);
    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 300; ++i) {
        PacketDesc pkt;
        pkt.bytes = 512;
        pkt.injected = engine.now() + i * wire;
        shell->network().mac().injectRx(pkt, pkt.injected);
    }
    for (int i = 0; i < 40; ++i)
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    engine.runFor(100'000'000);
    EXPECT_EQ(role.stats().value("forwarded_packets"), 300u);
    EXPECT_EQ(shell->kernel().stats().value("commands_executed"),
              40u);
}

} // namespace
} // namespace harmonia
