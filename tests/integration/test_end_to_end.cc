#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/host_app.h"
#include "roles/sec_gateway.h"
#include "workload/packet_gen.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/**
 * The full §4 lifecycle on one device: tailor a shell, compile it
 * through the toolchain, bring it up with the command driver, run
 * traffic through the role, and read statistics back over commands.
 */
TEST(EndToEnd, FullLifecycleOnDeviceA)
{
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();

    // Stage 2: design & development — tailored shell + role.
    auto shell = Shell::makeTailored(engine, device("DeviceA"), reqs);
    SecGateway role;
    role.bind(engine, *shell);

    // Stage 2: project implementation — adapter checks + CAD flow.
    Toolchain tc(VendorAdapter::standardFor(device("DeviceA")));
    const BuildArtifact art =
        tc.compile(shell->compileJob("secgw_a", reqs.roleLogic));
    ASSERT_TRUE(art.success) << (art.log.empty() ? "" : art.log.back());

    // Stage 3/4: bring-up over the command-based interface.
    CmdDriver driver(engine, *shell);
    EXPECT_LE(driver.initializeAll(), 6u);
    for (Rbb *rbb : shell->rbbs())
        EXPECT_TRUE(rbb->instance().initialized());

    // Deploy a policy through a command, then run traffic.
    driver.call(kRoleRbbIdBase, 0, kCmdTableWrite,
                {0x7, 0x0, 0x5, 0x0, 0});  // deny flows &7 == 5
    PacketGenConfig gen_cfg;
    gen_cfg.fixedBytes = 512;
    gen_cfg.flows = 64;
    PacketGenerator gen(gen_cfg);
    const Tick wire = wireTime(512, 100e9);
    for (int i = 0; i < 400; ++i) {
        PacketDesc pkt = gen.next(engine.now() + i * wire);
        shell->network().mac().injectRx(pkt, pkt.injected);
    }
    engine.runFor(100'000'000);

    const std::uint64_t fwd =
        role.stats().value("forwarded_packets");
    const std::uint64_t denied = role.stats().value("denied_packets");
    EXPECT_EQ(fwd + denied, 400u);
    EXPECT_GT(denied, 20u);  // 1/8 of flows

    // Statistics come back over the command path.
    const CommandPacket stats_resp =
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    EXPECT_EQ(stats_resp.status, kCmdOk);
    EXPECT_GT(stats_resp.data[0], 0u);
}

TEST(EndToEnd, RegisterAndCommandPathsAgreeOnState)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));

    // Configure via commands...
    CmdDriver cmd(engine, *shell);
    cmd.call(kRbbNetwork, 0, kCmdModuleStatusWrite, {0x0, 1});

    // ...observe via registers.
    RegDriver reg(*shell);
    EXPECT_EQ(reg.read("net_rbb0", "FILTER_ENABLE"), 1u);
    EXPECT_TRUE(shell->network().filterEnabled());
}

TEST(EndToEnd, DataPlaneAndControlPlaneConcurrently)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    HostApplication app(engine, *shell, HostInterface::Command);
    app.initialize();

    // Data plane: stream of DMA transfers on queue 2, pumped while
    // the engine runs (the staging FIFO is finite).
    unsigned submitted = 0;
    unsigned completions = 0;

    // Control plane: statistics sampled mid-flight.
    CmdDriver driver(engine, *shell);
    const CommandPacket resp =
        driver.call(kRbbHost, 0, kCmdStatsSnapshot);
    EXPECT_EQ(resp.status, kCmdOk);

    engine.runUntilDone(
        [&] {
            while (submitted < 50 &&
                   app.dma().submit(DmaDir::C2H, 2, 8192, submitted))
                ++submitted;
            app.dma().poll();
            while (app.dma().hasCompletion(2)) {
                app.dma().popCompletion(2);
                ++completions;
            }
            return completions == 50;
        },
        500'000'000);
    EXPECT_EQ(completions, 50u);
}

TEST(EndToEnd, UnifiedShellServesMultipleTenantsIsolated)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    HostRbb &host = shell->host();
    host.setQueueActive(10, true);
    host.setQueueActive(20, true);

    // Tenant A floods queue 10; tenant B's queue 20 latency stays
    // bounded by round-robin isolation.
    for (int i = 0; i < 16; ++i)
        host.submit(DmaDir::H2C, 10, 1 << 20);
    host.submit(DmaDir::H2C, 20, 4096, 777);

    Tick b_latency = 0;
    engine.runUntilDone(
        [&] {
            while (host.hasCompletion()) {
                const DmaCompletion c = host.popCompletion();
                if (c.request.id == 777)
                    b_latency = c.latency();
            }
            return b_latency != 0;
        },
        500'000'000);
    ASSERT_GT(b_latency, 0u);
    EXPECT_LT(b_latency, 100'000'000u);
}

} // namespace
} // namespace harmonia
