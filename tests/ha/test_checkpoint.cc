/**
 * @file
 * Checkpoint codec + role snapshot/restore tests: round trips for all
 * four roles, total decoding of skewed/corrupt/truncated blobs, and
 * the chunked kCmdCheckpoint / kCmdRestore wire path matching the
 * in-process blob bit for bit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cmd/checkpoint.h"
#include "host/cmd_driver.h"
#include "roles/board_test.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

/** Re-seal a tampered blob so only the tampered field is at fault. */
void
reseal(std::vector<std::uint32_t> &blob)
{
    std::vector<std::uint32_t> body(blob.begin(), blob.end() - 1);
    blob.back() = checkpointChecksum(body);
}

TEST(CheckpointCodec, EmptyImageRoundTrips)
{
    const std::uint32_t kind = checkpointKindId("stateless");
    const auto blob = encodeCheckpoint(kind, {}, {});
    CheckpointImage img;
    ASSERT_EQ(decodeCheckpoint(blob, kind, &img), CheckpointError::Ok);
    EXPECT_EQ(img.kindId, kind);
    EXPECT_TRUE(img.stats.empty());
    EXPECT_TRUE(img.payload.empty());
}

TEST(CheckpointCodec, StatsAndPayloadRoundTrip)
{
    const std::uint32_t kind = checkpointKindId("sec_gateway");
    const std::vector<std::pair<std::string, std::uint64_t>> stats = {
        {"denied_packets", 7},
        {"forwarded_bytes", 0x1234'5678'9abcULL},
        {"x", 1},  // 1-char name: padding path
    };
    const std::vector<std::uint32_t> payload = {1, 2, 3, 0xffffffff};
    const auto blob = encodeCheckpoint(kind, stats, payload);

    CheckpointImage img;
    ASSERT_EQ(decodeCheckpoint(blob, kind, &img), CheckpointError::Ok);
    EXPECT_EQ(img.stats, stats);
    EXPECT_EQ(img.payload, payload);

    // Kind gate: 0 accepts anything, a different kind does not.
    ASSERT_EQ(decodeCheckpoint(blob, 0, &img), CheckpointError::Ok);
    EXPECT_EQ(decodeCheckpoint(blob, kind + 1, &img),
              CheckpointError::KindMismatch);
}

TEST(CheckpointCodec, VersionSkewIsDiagnosedNotFatal)
{
    auto blob = encodeCheckpoint(checkpointKindId("r"), {{"n", 1}}, {});
    blob[1] = kCheckpointVersion + 1;
    reseal(blob);  // envelope otherwise intact
    CheckpointImage img;
    EXPECT_EQ(decodeCheckpoint(blob, 0, &img),
              CheckpointError::BadVersion);
    EXPECT_STREQ(toString(CheckpointError::BadVersion),
                 "codec version skew");
}

TEST(CheckpointCodec, CorruptionAndTruncationAreTotal)
{
    const auto good = encodeCheckpoint(checkpointKindId("r"),
                                       {{"counter", 42}}, {1, 2, 3});

    // Any single flipped word fails the checksum (tamper without
    // resealing); flipping the trailer itself fails it too.
    for (std::size_t i = 1; i < good.size(); ++i) {
        auto blob = good;
        blob[i] ^= 0x8000'0001u;
        CheckpointImage img;
        if (i == 1) {
            // The version word is checked after the checksum, so an
            // unsealed flip there still reads as corruption.
            EXPECT_EQ(decodeCheckpoint(blob, 0, &img),
                      CheckpointError::BadChecksum);
        } else {
            EXPECT_NE(decodeCheckpoint(blob, 0, &img),
                      CheckpointError::Ok)
                << "word " << i;
        }
    }

    // Wrong magic beats everything else.
    {
        auto blob = good;
        blob[0] = 0xdeadbeef;
        CheckpointImage img;
        EXPECT_EQ(decodeCheckpoint(blob, 0, &img),
                  CheckpointError::BadMagic);
    }

    // Every prefix is rejected cleanly.
    for (std::size_t n = 0; n < good.size(); ++n) {
        std::vector<std::uint32_t> prefix(good.begin(),
                                          good.begin() + n);
        CheckpointImage img;
        EXPECT_NE(decodeCheckpoint(prefix, 0, &img),
                  CheckpointError::Ok)
            << "prefix " << n;
    }

    // A lying stat-name length cannot run the cursor off the end.
    {
        auto blob = good;
        blob[4] = 0x7fffffff;  // stat 0 name length
        reseal(blob);
        CheckpointImage img;
        EXPECT_EQ(decodeCheckpoint(blob, 0, &img),
                  CheckpointError::Truncated);
    }
}

TEST(CheckpointRole, SecGatewayRoundTripsStateAndStats)
{
    SecGateway a;
    a.addPolicy({0xff, 0x42, false});
    a.addPolicy({0xf0, 0x40, true});
    a.setDefaultAllow(false);
    a.stats().counter("denied_packets").inc(9);
    a.stats().counter("forwarded_packets").inc(123);

    SecGateway b;
    ASSERT_EQ(b.restore(a.snapshot()), CheckpointError::Ok);
    EXPECT_EQ(b.policyCount(), 2u);
    for (std::uint64_t h = 0; h < 512; ++h)
        EXPECT_EQ(b.allows(h), a.allows(h)) << h;
    EXPECT_EQ(b.stats().snapshot(), a.stats().snapshot());
}

TEST(CheckpointRole, L4lbRoundTripsPinsAndEvictionOrder)
{
    Layer4Lb a(16);
    a.setServerHealthy(3, false);
    a.setServerHealthy(7, false);
    for (std::uint64_t f = 0; f < 200; ++f)
        a.processFlowPacket(f * 0x9e3779b9, FlowPhase::Syn);
    for (std::uint64_t f = 0; f < 50; ++f)  // close some flows
        a.processFlowPacket(f * 0x9e3779b9, FlowPhase::Fin);

    Layer4Lb b(16);
    ASSERT_EQ(b.restore(a.snapshot()), CheckpointError::Ok);
    EXPECT_EQ(b.connectionCount(), a.connectionCount());
    for (std::uint64_t f = 0; f < 200; ++f) {
        const std::uint64_t h = f * 0x9e3779b9;
        ASSERT_EQ(b.isPinned(h), a.isPinned(h)) << f;
        if (a.isPinned(h)) {
            EXPECT_EQ(b.pinnedServer(h), a.pinnedServer(h)) << f;
        }
    }

    // Pin order travelled too: drive both twins to eviction and the
    // same victims must go, in the same order.
    for (std::uint64_t f = 1000; f < 1000 + Layer4Lb::kConnTableCapacity;
         ++f) {
        const std::uint64_t h = f * 0x61c88647;
        a.processFlowPacket(h, FlowPhase::Syn);
        b.processFlowPacket(h, FlowPhase::Syn);
    }
    for (std::uint64_t f = 0; f < 200; ++f) {
        const std::uint64_t h = f * 0x9e3779b9;
        EXPECT_EQ(a.isPinned(h), b.isPinned(h)) << f;
    }

    // Server-count mismatch is a payload rejection, not a crash.
    Layer4Lb c(8);
    EXPECT_EQ(c.restore(a.snapshot()), CheckpointError::BadPayload);
}

TEST(CheckpointRole, RetrievalRoundTripMidFlight)
{
    Engine engine;
    auto shell = Shell::makeTailored(engine, deviceA(),
                                     Retrieval::standardRequirements());
    Retrieval a;
    a.bind(engine, *shell);
    a.setCorpusItems(512);
    a.populateCorpus();

    // One finished result, one in flight, two queued.
    ASSERT_TRUE(a.submitQuery(11));
    ASSERT_TRUE(engine.runUntilDone([&] { return a.hasResult(); },
                                    30ULL * 1000 * 1000 * 1000));
    ASSERT_TRUE(a.submitQuery(22));
    engine.runFor(a.queryServiceTime() / 4);  // 22 now mid-flight
    ASSERT_TRUE(a.submitQuery(33));
    ASSERT_TRUE(a.submitQuery(44));

    const auto blob = a.snapshot();

    // Restore onto a twin bound to a fresh shell — a second card of
    // the same model (only DeviceA carries the HBM this role needs).
    Engine engine2;
    auto shell2 = Shell::makeTailored(engine2, deviceA(),
                                      Retrieval::standardRequirements());
    Retrieval b;
    b.bind(engine2, *shell2);
    ASSERT_EQ(b.restore(blob), CheckpointError::Ok);
    EXPECT_EQ(b.corpusItems(), 512u);
    EXPECT_EQ(b.stats().snapshot(), a.stats().snapshot());

    // The standby timeline continues from the same simulated instant.
    engine2.runFor(engine.now() - engine2.now());
    ASSERT_TRUE(engine2.runUntilDone(
        [&] {
            return b.stats().value("completed_queries") == 4;
        },
        60ULL * 1000 * 1000 * 1000));

    // Let the primary finish too and compare every result exactly.
    ASSERT_TRUE(engine.runUntilDone(
        [&] {
            return a.stats().value("completed_queries") == 4;
        },
        60ULL * 1000 * 1000 * 1000));
    while (a.hasResult()) {
        ASSERT_TRUE(b.hasResult());
        const RetrievalResult ra = a.popResult();
        const RetrievalResult rb = b.popResult();
        EXPECT_EQ(ra.queryId, rb.queryId);
        EXPECT_EQ(ra.topK, rb.topK);
    }
    EXPECT_FALSE(b.hasResult());
}

TEST(CheckpointRole, BoardTestIsStatelessButCarriesCounters)
{
    BoardTest a;
    a.stats().counter("suites_run").inc(3);
    BoardTest b;
    ASSERT_EQ(b.restore(a.snapshot()), CheckpointError::Ok);
    EXPECT_EQ(b.stats().value("suites_run"), 3u);
}

TEST(CheckpointRole, CrossKindBlobIsRejectedUntouched)
{
    Layer4Lb lb(8);
    lb.processFlowPacket(1, FlowPhase::Syn);

    SecGateway gw;
    gw.addPolicy({0xff, 1, false});
    const auto before = gw.stats().snapshot();
    EXPECT_EQ(gw.restore(lb.snapshot()),
              CheckpointError::KindMismatch);
    EXPECT_EQ(gw.policyCount(), 1u);  // untouched
    EXPECT_EQ(gw.stats().snapshot(), before);
}

TEST(CheckpointRole, BadPayloadLeavesStatsUntouched)
{
    SecGateway a;
    a.stats().counter("denied_packets").inc(5);
    auto blob = a.snapshot();

    SecGateway b;
    b.stats().counter("denied_packets").inc(77);
    // Corrupt the payload length structure: truncate the payload
    // words but fix up the envelope so only restorePayload objects.
    const auto good = encodeCheckpoint(b.checkpointKind(),
                                       a.stats().snapshot(), {1, 2, 3});
    ASSERT_EQ(b.restore(good), CheckpointError::BadPayload);
    EXPECT_EQ(b.stats().value("denied_packets"), 77u);
}

/** Wire rig: one role bound to a tailored shell plus a driver. */
struct WireRig {
    Engine engine;
    std::unique_ptr<Shell> shell;
    SecGateway role;
    CmdDriver driver;

    WireRig()
        : shell(Shell::makeTailored(
              engine, deviceA(), SecGateway::standardRequirements())),
          driver(engine, *shell)
    {
        role.bind(engine, *shell);
    }

    /** Chunked kCmdCheckpoint drain, as the coordinator does it. */
    std::vector<std::uint32_t> fetch()
    {
        std::vector<std::uint32_t> blob;
        for (;;) {
            const CallOutcome out = driver.callChecked(
                kRoleRbbIdBase, 0, kCmdCheckpoint,
                {static_cast<std::uint32_t>(blob.size())});
            EXPECT_TRUE(out.ok());
            EXPECT_EQ(out.response.status, kCmdOk);
            const auto &d = out.response.data;
            EXPECT_GE(d.size(), 1u);
            const std::size_t total = d[0];
            blob.insert(blob.end(), d.begin() + 1, d.end());
            if (blob.size() >= total)
                return blob;
        }
    }

    /** Chunked kCmdRestore push; returns the wire-reported verdict. */
    std::uint32_t push(const std::vector<std::uint32_t> &blob)
    {
        const std::uint32_t total =
            static_cast<std::uint32_t>(blob.size());
        std::size_t at = 0;
        for (;;) {
            std::vector<std::uint32_t> req = {
                total, static_cast<std::uint32_t>(at)};
            const std::size_t n = std::min(
                CheckpointStreamer::kChunkWords, blob.size() - at);
            req.insert(req.end(), blob.begin() + at,
                       blob.begin() + at + n);
            const CallOutcome out = driver.callChecked(
                kRoleRbbIdBase, 0, kCmdRestore, req);
            EXPECT_TRUE(out.ok());
            at += n;
            if (at >= blob.size()) {
                EXPECT_EQ(out.response.data.size(), 2u);
                EXPECT_EQ(out.response.data[0], 1u);
                return out.response.data[1];
            }
        }
    }
};

TEST(CheckpointWire, ChunkedFetchMatchesInProcessSnapshot)
{
    WireRig rig;
    rig.role.addPolicy({0xff, 0x21, false});
    rig.role.setDefaultAllow(false);
    rig.role.stats().counter("denied_packets").inc(4);

    const auto wire = rig.fetch();
    const auto local = rig.role.snapshot();
    EXPECT_EQ(wire, local);
    EXPECT_GT(wire.size(), CheckpointStreamer::kChunkWords);
}

TEST(CheckpointWire, ChunkedRestoreRoundTripsAndReportsSkew)
{
    WireRig source;
    source.role.addPolicy({0xffff, 0x1234, false});
    source.role.addPolicy({0xff00, 0x5600, true});
    const auto blob = source.fetch();

    WireRig target;
    EXPECT_EQ(target.push(blob),
              static_cast<std::uint32_t>(CheckpointError::Ok));
    EXPECT_EQ(target.role.policyCount(), 2u);
    for (std::uint64_t h = 0; h < 0x10000; h += 257)
        EXPECT_EQ(target.role.allows(h), source.role.allows(h));

    // Version-skewed blob over the wire: diagnostic, not a crash.
    auto skewed = blob;
    skewed[1] = kCheckpointVersion + 7;
    reseal(skewed);
    EXPECT_EQ(target.push(skewed),
              static_cast<std::uint32_t>(CheckpointError::BadVersion));
    EXPECT_EQ(target.role.policyCount(), 2u);  // prior state intact
}

TEST(CheckpointWire, StreamerReacksDuplicateChunks)
{
    // Direct streamer exercise: a retried chunk (lost ack) must be
    // re-acknowledged, including the final chunk after apply ran.
    CheckpointStreamer s;
    // Payload sized so the blob spans two chunks — the re-ack paths
    // only exist for multi-chunk transfers.
    const auto blob = encodeCheckpoint(checkpointKindId("x"),
                                       {{"n", 3}},
                                       {9, 8, 7, 6, 5, 4, 3, 2});
    ASSERT_GT(blob.size(), CheckpointStreamer::kChunkWords);
    const std::uint32_t total =
        static_cast<std::uint32_t>(blob.size());
    int applies = 0;
    const auto apply = [&](const std::vector<std::uint32_t> &b) {
        ++applies;
        EXPECT_EQ(b, blob);
        return CheckpointError::Ok;
    };

    std::vector<std::uint32_t> first = {total, 0};
    first.insert(first.end(), blob.begin(),
                 blob.begin() + CheckpointStreamer::kChunkWords);
    std::vector<std::uint32_t> last = {
        total,
        static_cast<std::uint32_t>(CheckpointStreamer::kChunkWords)};
    last.insert(last.end(),
                blob.begin() + CheckpointStreamer::kChunkWords,
                blob.end());

    EXPECT_EQ(s.serveRestore(first, apply).status, kCmdOk);
    EXPECT_EQ(s.serveRestore(first, apply).status, kCmdOk);  // dup
    const CommandResult fin = s.serveRestore(last, apply);
    EXPECT_EQ(fin.status, kCmdOk);
    ASSERT_EQ(fin.data.size(), 2u);
    EXPECT_EQ(fin.data[0], 1u);
    EXPECT_EQ(fin.data[1],
              static_cast<std::uint32_t>(CheckpointError::Ok));

    // Retried final chunk: apply must NOT run twice, verdict repeats.
    const CommandResult again = s.serveRestore(last, apply);
    EXPECT_EQ(again.status, kCmdOk);
    ASSERT_EQ(again.data.size(), 2u);
    EXPECT_EQ(again.data[1],
              static_cast<std::uint32_t>(CheckpointError::Ok));
    EXPECT_EQ(applies, 1);
}

} // namespace
} // namespace harmonia
