/**
 * @file
 * Failover chaos suite: a primary card dies mid-traffic and the
 * coordinator promotes the standby from the last checkpoint plus the
 * journal tail — with zero acknowledged-command loss, a measurable
 * downtime, and a bit-identical end state across reruns of the same
 * seed. Also covers PR-slot corruption recovery and the unbind/rebind
 * path failover rides on.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "fault/fault_plan.h"
#include "ha/failover.h"
#include "host/cmd_driver.h"
#include "roles/sec_gateway.h"
#include "shell/partial_reconfig.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/**
 * Fixed by default so CI is reproducible; override with
 * HARMONIA_CHAOS_SEED to sweep other schedules — every invariant here
 * must hold under any seed.
 */
std::uint64_t
chaosSeed()
{
    const char *env = std::getenv("HARMONIA_CHAOS_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 0)
                          : 20240808ull;
}

/** End state of one failover drill, for determinism comparison. */
struct DrillOutcome {
    bool failedOver = false;
    bool zeroAckedLoss = true;
    std::uint64_t acked = 0;
    std::uint64_t injected = 0;
    std::uint64_t fingerprint = 0;
    Tick downtimeTicks = 0;
    Cycles downtimeCycles = 0;

    bool operator==(const DrillOutcome &) const = default;
};

/**
 * One drill: primary on a Xilinx card, standby on an Intel card, a
 * stream of journaled policy writes, a device-death window opening at
 * @p death_at, and the coordinator's poll loop doing the rest.
 */
DrillOutcome
runDrill(std::uint64_t seed, Tick death_at = 400'000'000)
{
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto primary = Shell::makeTailored(engine, device("DeviceA"), reqs);
    auto standby = Shell::makeTailored(engine, device("DeviceD"), reqs);

    SecGateway role_p;
    SecGateway role_s;
    role_p.bind(engine, *primary);
    role_s.bind(engine, *standby);

    FailoverConfig cfg;
    cfg.checkpointInterval = 20'000'000;
    FailoverCoordinator coord(engine, *primary, *standby, cfg);
    coord.manageRole(role_p, role_s);

    FaultPlan plan(seed);
    // The primary dies and stays dead; the standby is untouched.
    plan.addWindow(FaultKind::DeviceDeath, death_at,
                   10'000'000'000'000ULL, 1.0, "DeviceA");
    plan.arm();

    std::vector<std::uint64_t> acked_values;
    std::uint64_t next_value = 1;
    const auto write_deny = [&] {
        const std::uint64_t v = next_value++;
        const std::vector<std::uint32_t> data = {
            0xffffffffu, 0xffffffffu,  // mask = ~0: exact match
            static_cast<std::uint32_t>(v),
            static_cast<std::uint32_t>(v >> 32),
            0,  // deny
        };
        const CallOutcome out = coord.call(0, kCmdTableWrite, data);
        if (out.ok() && out.response.status == kCmdOk)
            acked_values.push_back(v);
    };

    // Healthy phase: journaled writes, paced checkpoints.
    for (int i = 0; i < 20; ++i) {
        write_deny();
        coord.poll();
        engine.runFor(2'000'000);
    }
    EXPECT_FALSE(coord.failedOver());
    EXPECT_GT(coord.ackedCalls(), 0u);

    // Cross into the death window, leave one write in the journal
    // tail (doomed or in the two-generals window), then let the poll
    // loop detect the death and promote the standby.
    if (engine.now() < death_at)
        engine.runFor(death_at - engine.now());
    write_deny();

    DrillOutcome o;
    for (int i = 0; i < 50 && !coord.failedOver(); ++i) {
        coord.poll();
        engine.runFor(5'000'000);
    }
    o.failedOver = coord.failedOver();

    // Post-failover traffic lands on the standby.
    if (o.failedOver) {
        for (int i = 0; i < 10; ++i) {
            write_deny();
            coord.poll();
            engine.runFor(2'000'000);
        }
    }

    // The invariant: every acknowledged write is present (denies) on
    // the promoted standby.
    for (const std::uint64_t v : acked_values)
        if (role_s.allows(v))
            o.zeroAckedLoss = false;

    o.acked = coord.ackedCalls();
    o.injected = plan.injectedTotal();
    o.fingerprint = coord.fingerprint();
    o.downtimeTicks = coord.downtimeTicks();
    o.downtimeCycles = coord.downtimeCycles();
    return o;
}

TEST(Failover, SurvivesDeviceDeathWithZeroAckedLoss)
{
    const DrillOutcome o = runDrill(chaosSeed());
    EXPECT_TRUE(o.failedOver);
    EXPECT_TRUE(o.zeroAckedLoss);
    EXPECT_GE(o.acked, 20u);  // healthy + post-failover phases
    EXPECT_GT(o.injected, 0u);
    EXPECT_GT(o.downtimeTicks, 0u);
    EXPECT_GT(o.downtimeCycles, 0u);
    EXPECT_NE(o.fingerprint, 0u);
}

TEST(Failover, IdenticalSeedGivesIdenticalEndState)
{
    const DrillOutcome a = runDrill(chaosSeed() ^ 1337);
    const DrillOutcome b = runDrill(chaosSeed() ^ 1337);
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a.failedOver);
    EXPECT_TRUE(a.zeroAckedLoss);
}

TEST(Failover, CheckpointCutStaysConsistent)
{
    // Without any fault, checkpoints drain and the journal shrinks;
    // the fingerprint equals the primary role's own snapshot hash.
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto primary = Shell::makeTailored(engine, device("DeviceA"), reqs);
    auto standby = Shell::makeTailored(engine, device("DeviceD"), reqs);
    SecGateway role_p;
    SecGateway role_s;
    role_p.bind(engine, *primary);
    role_s.bind(engine, *standby);

    FailoverCoordinator coord(engine, *primary, *standby);
    coord.manageRole(role_p, role_s);

    for (int i = 0; i < 5; ++i) {
        const CallOutcome out = coord.call(
            0, kCmdTableWrite,
            {0xffu, 0, static_cast<std::uint32_t>(i), 0, 0});
        ASSERT_TRUE(out.ok());
        ASSERT_EQ(out.response.status, kCmdOk);
    }
    ASSERT_TRUE(coord.checkpointNow());
    EXPECT_EQ(coord.stats().value("checkpoints"), 1u);
    EXPECT_EQ(coord.ackedCalls(), 5u);
    EXPECT_FALSE(coord.failedOver());
    EXPECT_EQ(role_p.policyCount(), 5u);
    EXPECT_EQ(role_s.policyCount(), 0u);  // standby untouched so far
}

TEST(Failover, ManageRoleValidatesThePairing)
{
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto primary = Shell::makeTailored(engine, device("DeviceA"), reqs);
    auto standby = Shell::makeTailored(engine, device("DeviceD"), reqs);
    SecGateway role_p;
    SecGateway unbound;
    role_p.bind(engine, *primary);

    FailoverCoordinator coord(engine, *primary, *standby);
    EXPECT_THROW(coord.manageRole(role_p, unbound), FatalError);
}

TEST(Failover, PrSlotCorruptScrubsThenCheckpointRestores)
{
    Engine engine;
    auto shell = Shell::makeTailored(engine, device("DeviceA"),
                                     SecGateway::standardRequirements());
    PrController pr("pr", engine, *shell,
                    {ResourceVector{120000, 160000, 200, 0, 100}});
    SecGateway role;
    ASSERT_TRUE(pr.load(0, role));
    engine.runFor(pr.reconfigTime(0) + 10'000'000);
    ASSERT_EQ(pr.slotState(0), PrSlotState::Active);

    role.addPolicy({0xff, 0x42, false});
    role.stats().counter("denied_packets").inc(6);
    const auto backup = role.snapshot();  // host-side safety copy
    const auto stats_at_backup = role.stats().snapshot();

    CmdDriver driver(engine, *shell);
    FaultPlan plan(5);
    plan.addOneShot(FaultKind::PrSlotCorrupt, engine.now(), "slot0");
    plan.arm();
    engine.runFor(2'000'000);

    // The upset scrubbed the slot: tenant gone, target released.
    EXPECT_EQ(pr.slotState(0), PrSlotState::Empty);
    EXPECT_FALSE(role.active());
    EXPECT_EQ(pr.stats().value("slots_corrupted"), 1u);
    const CallOutcome gone =
        driver.callChecked(kRoleRbbIdBase, 0, kCmdStatsSnapshot);
    ASSERT_TRUE(gone.ok());
    EXPECT_EQ(gone.response.status, kCmdUnknownTarget);

    // Recovery: reload the slot, then re-seed from the checkpoint.
    ASSERT_TRUE(pr.load(0, role));
    engine.runFor(pr.reconfigTime(0) + 10'000'000);
    ASSERT_EQ(pr.slotState(0), PrSlotState::Active);
    ASSERT_EQ(role.restore(backup), CheckpointError::Ok);
    EXPECT_FALSE(role.allows(0x42));
    EXPECT_EQ(role.stats().snapshot(), stats_at_backup);
    const CallOutcome back =
        driver.callChecked(kRoleRbbIdBase, 0, kCmdStatsSnapshot);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.response.status, kCmdOk);
}

TEST(Failover, UnbindLeavesNoStaleTargetOnTheOldKernel)
{
    // The regression the migration path depends on: a role scrubbed
    // off one shell and re-bound to another must vanish from the old
    // kernel's target table and answer on the new one.
    Engine engine;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto shell_a = Shell::makeTailored(engine, device("DeviceA"), reqs);
    auto shell_b = Shell::makeTailored(engine, device("DeviceD"), reqs);
    CmdDriver driver_a(engine, *shell_a);
    CmdDriver driver_b(engine, *shell_b);

    SecGateway role;
    role.bind(engine, *shell_a);
    CallOutcome out =
        driver_a.callChecked(kRoleRbbIdBase, 0, kCmdStatsSnapshot);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.response.status, kCmdOk);

    role.unbind();
    EXPECT_FALSE(role.bound());

    role.bind(engine, *shell_b);
    EXPECT_TRUE(role.bound());

    out = driver_a.callChecked(kRoleRbbIdBase, 0, kCmdStatsSnapshot);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.response.status, kCmdUnknownTarget);

    out = driver_b.callChecked(kRoleRbbIdBase, 0, kCmdStatsSnapshot);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.response.status, kCmdOk);

    // And unbind is idempotent / re-entrant for the next migration.
    role.unbind();
    role.unbind();
    EXPECT_FALSE(role.bound());
}

} // namespace
} // namespace harmonia
