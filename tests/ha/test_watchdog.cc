/**
 * @file
 * Watchdog tests: heartbeats against a healthy card, deterministic
 * death declaration under DeviceDeath / KernelWedge windows, revival
 * when the window closes, and the SLO-corroborated fast path.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fault/fault_plan.h"
#include "ha/watchdog.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

struct WatchdogRig {
    Engine engine;
    std::unique_ptr<Shell> shell;
    Watchdog dog;

    explicit WatchdogRig(WatchdogConfig cfg = {})
        : shell(Shell::makeUnified(engine, deviceA())),
          dog(engine, *shell, cfg)
    {
    }
};

TEST(Watchdog, HealthyCardNeverTripsIt)
{
    WatchdogRig rig;
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(rig.dog.beat());
        rig.engine.runFor(rig.dog.config().interval);
    }
    EXPECT_FALSE(rig.dog.dead());
    EXPECT_EQ(rig.dog.consecutiveMisses(), 0u);
    EXPECT_GT(rig.dog.lastAliveAt(), 0u);
    EXPECT_EQ(rig.dog.stats().value("missed_beats"), 0u);
}

TEST(Watchdog, PollPacesBeatsByInterval)
{
    WatchdogRig rig;
    EXPECT_TRUE(rig.dog.poll());   // first call always beats
    EXPECT_FALSE(rig.dog.poll());  // interval not yet elapsed
    rig.engine.runFor(rig.dog.config().interval);
    EXPECT_TRUE(rig.dog.poll());
}

TEST(Watchdog, DeviceDeathDeclaredAfterThreshold)
{
    WatchdogRig rig;
    ASSERT_TRUE(rig.dog.beat());
    const Tick alive_at = rig.dog.lastAliveAt();

    FaultPlan plan(42);
    // Window far longer than 3 beats worth of timeouts.
    plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                   rig.engine.now() + 800'000'000, 1.0, "DeviceA");
    plan.arm();

    unsigned beats = 0;
    while (!rig.dog.dead()) {
        ASSERT_LT(beats, 10u) << "watchdog never declared death";
        rig.dog.beat();
        ++beats;
    }
    EXPECT_EQ(beats, rig.dog.config().missThreshold);
    EXPECT_EQ(rig.dog.consecutiveMisses(),
              rig.dog.config().missThreshold);
    EXPECT_EQ(rig.dog.lastAliveAt(), alive_at);
    EXPECT_EQ(rig.dog.stats().value("deaths_declared"), 1u);
    plan.disarm();
}

TEST(Watchdog, KernelWedgeLooksDeadFromTheHost)
{
    // A wedged control kernel executes commands but its acks never
    // escape — end-to-end, the host cannot tell this from death.
    WatchdogRig rig;
    FaultPlan plan(7);
    plan.addWindow(FaultKind::KernelWedge, 0, 800'000'000, 1.0,
                   "DeviceA");
    plan.arm();
    for (unsigned i = 0; i < rig.dog.config().missThreshold; ++i)
        EXPECT_FALSE(rig.dog.beat());
    EXPECT_TRUE(rig.dog.dead());
    plan.disarm();
}

TEST(Watchdog, RevivesWhenTheWindowCloses)
{
    WatchdogRig rig;
    FaultPlan plan(42);
    const Tick window_end = 60'000'000;
    plan.addWindow(FaultKind::DeviceDeath, 0, window_end, 1.0,
                   "DeviceA");
    plan.arm();

    while (!rig.dog.dead())
        rig.dog.beat();

    // Past the window the card answers again: one good beat revives.
    if (rig.engine.now() < window_end)
        rig.engine.runFor(window_end - rig.engine.now());
    EXPECT_TRUE(rig.dog.beat());
    EXPECT_FALSE(rig.dog.dead());
    EXPECT_EQ(rig.dog.consecutiveMisses(), 0u);
    EXPECT_EQ(rig.dog.stats().value("revivals"), 1u);
    plan.disarm();
}

TEST(Watchdog, SloBurnCorroboratesASingleMiss)
{
    WatchdogRig rig;
    // An SLO driven over budget by hand: an occupancy gauge pinned
    // far above its objective goes pending on the first evaluation.
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    SloSpec spec;
    spec.name = "ctrl_occupancy";
    spec.kind = SloKind::OccupancyAbove;
    spec.metric = "occ";
    spec.objective = 0.5;
    spec.window = 50'000'000;
    slo.addSpec(spec);
    store.ingestPoint(0, "occ", 100.0);
    slo.evaluate(1'000'000);
    ASSERT_TRUE(slo.anyActive());

    rig.dog.attachSlo(&slo);
    ASSERT_TRUE(rig.dog.beat());  // healthy first

    FaultPlan plan(9);
    plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                   rig.engine.now() + 800'000'000, 1.0, "DeviceA");
    plan.arm();

    // With burn-rate evidence, ONE miss is enough.
    EXPECT_FALSE(rig.dog.beat());
    EXPECT_TRUE(rig.dog.dead());
    EXPECT_EQ(rig.dog.consecutiveMisses(), 1u);
    plan.disarm();
}

TEST(Watchdog, RevivalResetsSeqAndMissCounter)
{
    // Regression: revival used to leave the last pre-death heartbeat
    // seq in place, so a revived card's beats were judged against
    // stale state. Revival must reset the miss counter and the seq.
    WatchdogRig rig;
    ASSERT_TRUE(rig.dog.beat());
    rig.engine.runFor(rig.dog.config().interval);
    ASSERT_TRUE(rig.dog.beat());
    const std::uint64_t pre_death_seq = rig.dog.lastHeartbeatSeq();
    ASSERT_GT(pre_death_seq, 0u);

    {
        FaultPlan plan(5);
        plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                       rig.engine.now() + 60'000'000, 1.0, "DeviceA");
        plan.arm();
        while (!rig.dog.dead())
            rig.dog.beat();
        // Missed beats leave the stale pre-death seq in place.
        EXPECT_EQ(rig.dog.lastHeartbeatSeq(), pre_death_seq);
    }

    rig.engine.runFor(100'000'000);
    ASSERT_TRUE(rig.dog.beat());
    EXPECT_FALSE(rig.dog.dead());
    EXPECT_EQ(rig.dog.consecutiveMisses(), 0u);
    // The seq was re-learned from the reviving beat, not carried
    // over, and the revival opened the hysteresis window.
    EXPECT_NE(rig.dog.lastHeartbeatSeq(), pre_death_seq);
    EXPECT_EQ(rig.dog.revivalGraceLeft(),
              rig.dog.config().missThreshold);
    EXPECT_EQ(rig.dog.stats().value("stale_heartbeats"), 0u);
}

TEST(Watchdog, RevivalGraceBlocksSloCorroboratedReKill)
{
    // Regression: after a revival, the SLO that burned through the
    // incident is usually still active. A single transient miss
    // right after the revival must NOT re-kill the card through the
    // corroborated fast path while the grace window is open.
    WatchdogRig rig;
    TimeSeriesStore store;
    SloEngine slo("slo", store);
    SloSpec spec;
    spec.name = "ctrl_occupancy";
    spec.kind = SloKind::OccupancyAbove;
    spec.metric = "occ";
    spec.objective = 0.5;
    spec.window = 50'000'000;
    slo.addSpec(spec);
    store.ingestPoint(0, "occ", 100.0);
    slo.evaluate(1'000'000);
    ASSERT_TRUE(slo.anyActive());
    rig.dog.attachSlo(&slo);

    ASSERT_TRUE(rig.dog.beat());

    // Death through the corroborated path, then the window closes.
    {
        FaultPlan plan(6);
        plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                       rig.engine.now() + 40'000'000, 1.0, "DeviceA");
        plan.arm();
        while (!rig.dog.dead())
            rig.dog.beat();
    }
    rig.engine.runFor(80'000'000);
    ASSERT_TRUE(rig.dog.beat());
    ASSERT_FALSE(rig.dog.dead());
    ASSERT_GT(rig.dog.revivalGraceLeft(), 0u);

    // One transient miss inside the grace window: still alive.
    {
        FaultPlan plan(8);
        plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                       rig.engine.now() + 1'000'000, 1.0, "DeviceA");
        plan.arm();
        EXPECT_FALSE(rig.dog.beat());
    }
    EXPECT_FALSE(rig.dog.dead())
        << "single post-revival miss re-killed a revived card";
    EXPECT_EQ(rig.dog.consecutiveMisses(), 1u);

    // A healthy beat clears the miss.
    rig.engine.runFor(rig.dog.config().interval);
    EXPECT_TRUE(rig.dog.beat());
    EXPECT_EQ(rig.dog.consecutiveMisses(), 0u);
}

TEST(Watchdog, SustainedMissesStillKillDuringGrace)
{
    // The grace window softens the corroborated single-miss path
    // only; threshold-many sustained misses still declare death.
    WatchdogRig rig;
    ASSERT_TRUE(rig.dog.beat());
    {
        FaultPlan plan(13);
        plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                       rig.engine.now() + 40'000'000, 1.0, "DeviceA");
        plan.arm();
        while (!rig.dog.dead())
            rig.dog.beat();
    }
    rig.engine.runFor(80'000'000);
    ASSERT_TRUE(rig.dog.beat());
    ASSERT_FALSE(rig.dog.dead());

    FaultPlan plan(14);
    plan.addWindow(FaultKind::DeviceDeath, rig.engine.now(),
                   rig.engine.now() + 800'000'000, 1.0, "DeviceA");
    plan.arm();
    unsigned beats = 0;
    while (!rig.dog.dead()) {
        ASSERT_LT(beats, 10u) << "revived card can never re-die";
        rig.dog.beat();
        ++beats;
    }
    EXPECT_EQ(beats, rig.dog.config().missThreshold);
    EXPECT_EQ(rig.dog.stats().value("deaths_declared"), 2u);
}

TEST(Watchdog, TargetsOnlyItsOwnDevice)
{
    // A DeviceD death window must not affect a DeviceA watchdog.
    WatchdogRig rig;
    FaultPlan plan(3);
    plan.addWindow(FaultKind::DeviceDeath, 0, 800'000'000, 1.0,
                   "DeviceD");
    plan.arm();
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(rig.dog.beat());
    EXPECT_FALSE(rig.dog.dead());
    plan.disarm();
}

} // namespace
} // namespace harmonia
