#include <gtest/gtest.h>

#include "common/logging.h"
#include "workload/vector_db.h"

namespace harmonia {
namespace {

struct DbBench {
    Engine engine;
    Clock *clk;
    MemoryRbb mem;
    VectorDbConfig cfg;

    DbBench()
        : clk(engine.addClock("clk", 300.0)),
          mem(engine, clk, Vendor::Xilinx, PeripheralKind::Ddr4, 2)
    {
        cfg.dbVectors = 1 << 14;
        cfg.accesses = 1500;
    }
};

TEST(VectorDb, PopulateAndVerifyReads)
{
    DbBench b;
    VectorDbWorkload db(b.engine, b.mem, b.cfg);
    db.populate();
    // run() panics internally if any read returns corrupt data.
    const VectorDbResult r = db.run(AccessPattern::Sequential, false);
    EXPECT_EQ(r.vectors, b.cfg.accesses);
    EXPECT_GT(r.vectorsPerSecond, 0.0);
    EXPECT_GT(r.avgLatencyNs, 0.0);
}

TEST(VectorDb, PatternOrderingMatchesPaper)
{
    // Fig 18c: random is slowest. The DB must dwarf both the hot
    // cache and the open-row reach, so the cache is disabled and the
    // store is 4 MiB (the default test DB fits entirely in open
    // rows, which would flatten the comparison).
    DbBench b;
    b.mem.setHotCacheEnabled(false);
    b.cfg.dbVectors = 1 << 20;
    VectorDbWorkload db(b.engine, b.mem, b.cfg);
    db.populate();
    const auto seq = db.run(AccessPattern::Sequential, false);
    const auto fix = db.run(AccessPattern::Fixed, false);
    const auto rnd = db.run(AccessPattern::Random, false);
    EXPECT_GT(seq.vectorsPerSecond, 2 * rnd.vectorsPerSecond);
    EXPECT_GT(fix.vectorsPerSecond, 2 * rnd.vectorsPerSecond);
    // Row-hit locality keeps the fixed pattern's latency below the
    // random pattern's.
    EXPECT_LT(fix.avgLatencyNs, rnd.avgLatencyNs);
}

TEST(VectorDb, HotCacheMakesFixedFast)
{
    DbBench b;
    VectorDbWorkload db(b.engine, b.mem, b.cfg);
    db.populate();
    const auto with_cache = db.run(AccessPattern::Fixed, false);
    b.mem.setHotCacheEnabled(false);
    const auto without = db.run(AccessPattern::Fixed, false);
    EXPECT_GT(with_cache.vectorsPerSecond,
              2 * without.vectorsPerSecond);
}

TEST(VectorDb, WritesComplete)
{
    DbBench b;
    VectorDbWorkload db(b.engine, b.mem, b.cfg);
    db.populate();
    const auto w = db.run(AccessPattern::Sequential, true);
    EXPECT_EQ(w.vectors, b.cfg.accesses);
    EXPECT_TRUE(w.write);
}

TEST(VectorDb, ExpectedVectorsAreDeterministic)
{
    DbBench b;
    VectorDbWorkload db(b.engine, b.mem, b.cfg);
    EXPECT_EQ(db.expectedVector(0), db.expectedVector(0));
    EXPECT_NE(db.expectedVector(0), db.expectedVector(1));
}

TEST(VectorDb, ValidatesConfig)
{
    DbBench b;
    VectorDbConfig bad = b.cfg;
    bad.accesses = 0;
    EXPECT_THROW(VectorDbWorkload(b.engine, b.mem, bad), FatalError);
    bad = b.cfg;
    bad.maxInFlight = 0;
    EXPECT_THROW(VectorDbWorkload(b.engine, b.mem, bad), FatalError);
}

} // namespace
} // namespace harmonia
