#include <gtest/gtest.h>

#include "common/logging.h"
#include "workload/flow_gen.h"
#include "workload/packet_gen.h"

namespace harmonia {
namespace {

TEST(Rng, DeterministicAndSpread)
{
    Rng a(7), b(7), c(8);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    // Bounded draws stay in range.
    Rng r(1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(PacketGen, FixedSizesAndIds)
{
    PacketGenConfig cfg;
    cfg.fixedBytes = 512;
    PacketGenerator gen(cfg);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const PacketDesc pkt = gen.next(1000 * i);
        EXPECT_EQ(pkt.id, i);
        EXPECT_EQ(pkt.bytes, 512u);
        EXPECT_EQ(pkt.injected, 1000 * i);
        EXPECT_LT(pkt.flowHash, cfg.flows);
    }
    EXPECT_EQ(gen.generated(), 100u);
}

TEST(PacketGen, ImixMixesClassicSizes)
{
    PacketGenConfig cfg;
    cfg.sizeMode = SizeMode::Imix;
    PacketGenerator gen(cfg);
    std::map<std::uint32_t, int> sizes;
    for (int i = 0; i < 6000; ++i)
        ++sizes[gen.next(0).bytes];
    ASSERT_EQ(sizes.size(), 3u);
    // 7:4:1 ratio, within sampling tolerance.
    EXPECT_GT(sizes[64], sizes[576]);
    EXPECT_GT(sizes[576], sizes[1500]);
    EXPECT_NEAR(sizes[64] / 6000.0, 7 / 12.0, 0.05);
}

TEST(PacketGen, DestinationMix)
{
    PacketGenConfig cfg;
    cfg.foreignFraction = 0.3;
    cfg.multicastFraction = 0.1;
    PacketGenerator gen(cfg);
    int local = 0, foreign = 0, multicast = 0;
    for (int i = 0; i < 10000; ++i) {
        const PacketDesc pkt = gen.next(0);
        if (pkt.multicast)
            ++multicast;
        else if (pkt.dstMac == cfg.localMac)
            ++local;
        else
            ++foreign;
    }
    EXPECT_NEAR(multicast / 10000.0, 0.1, 0.02);
    EXPECT_NEAR(foreign / 10000.0, 0.3, 0.02);
    EXPECT_NEAR(local / 10000.0, 0.6, 0.02);
}

TEST(PacketGen, ValidatesConfig)
{
    PacketGenConfig cfg;
    cfg.flows = 0;
    EXPECT_THROW(PacketGenerator{cfg}, FatalError);
    cfg = {};
    cfg.fixedBytes = 32;  // below minimum frame
    EXPECT_THROW(PacketGenerator{cfg}, FatalError);
    cfg = {};
    cfg.foreignFraction = 0.8;
    cfg.multicastFraction = 0.4;
    EXPECT_THROW(PacketGenerator{cfg}, FatalError);
}

TEST(FlowGen, FlowLifecycles)
{
    FlowGenConfig cfg;
    cfg.concurrentFlows = 4;
    cfg.packetsPerFlow = 2;
    FlowGenerator gen(cfg);
    std::map<std::uint64_t, std::vector<FlowPhase>> phases;
    for (int i = 0; i < 64; ++i) {
        const FlowPacket fp = gen.next(0);
        phases[fp.packet.flowHash].push_back(fp.phase);
    }
    // Each observed flow follows SYN, data..., FIN in order.
    for (const auto &[hash, seq] : phases) {
        EXPECT_EQ(seq.front(), FlowPhase::Syn);
        for (std::size_t i = 1; i < seq.size(); ++i) {
            if (seq[i] == FlowPhase::Syn)
                FAIL() << "SYN mid-flow";
            if (seq[i - 1] == FlowPhase::Fin)
                FAIL() << "packet after FIN";
        }
    }
    EXPECT_GT(gen.flowsClosed(), 0u);
    EXPECT_EQ(gen.flowsOpened(),
              gen.flowsClosed() + cfg.concurrentFlows);
}

TEST(FlowGen, FlagsMatchPhases)
{
    FlowGenConfig cfg;
    cfg.concurrentFlows = 1;
    cfg.packetsPerFlow = 1;
    FlowGenerator gen(cfg);
    const FlowPacket syn = gen.next(0);
    EXPECT_EQ(syn.phase, FlowPhase::Syn);
    EXPECT_EQ(syn.packet.flags, kFlagSyn);
    const FlowPacket data = gen.next(0);
    EXPECT_EQ(data.phase, FlowPhase::Data);
    EXPECT_EQ(data.packet.flags, 0);
    const FlowPacket fin = gen.next(0);
    EXPECT_EQ(fin.phase, FlowPhase::Fin);
    EXPECT_EQ(fin.packet.flags, kFlagFin);
}

TEST(FlowGen, ConstantConcurrency)
{
    FlowGenConfig cfg;
    cfg.concurrentFlows = 16;
    cfg.packetsPerFlow = 3;
    FlowGenerator gen(cfg);
    for (int i = 0; i < 1000; ++i)
        gen.next(0);
    EXPECT_EQ(gen.flowsOpened() - gen.flowsClosed(),
              cfg.concurrentFlows);
}

} // namespace
} // namespace harmonia
