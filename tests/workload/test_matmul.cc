#include <gtest/gtest.h>

#include "common/logging.h"
#include "workload/matmul.h"

namespace harmonia {
namespace {

TEST(MatMul, LaneProductMatchesReference)
{
    MatMulConfig cfg;
    cfg.dim = 16;
    cfg.parallelism = 4;
    const MatMulResult r = MatMulWorkload(cfg).run();
    EXPECT_TRUE(r.verified);
    EXPECT_LT(r.maxAbsError, 1e-3f);
}

TEST(MatMul, ThroughputScalesWithParallelism)
{
    // Fig 18b: x4 -> x8 -> x16 unrolling raises matrices/s.
    double last = 0;
    for (unsigned p : {4u, 8u, 16u}) {
        MatMulConfig cfg;
        cfg.parallelism = p;
        const MatMulResult r = MatMulWorkload(cfg).run();
        EXPECT_GT(r.matricesPerSecond, last);
        last = r.matricesPerSecond;
        EXPECT_EQ(r.dspUsed, p * MatMulWorkload::kDspPerLane);
    }
}

TEST(MatMul, NearLinearScaling)
{
    MatMulConfig c4, c16;
    c4.parallelism = 4;
    c16.parallelism = 16;
    const double r4 = MatMulWorkload(c4).run().matricesPerSecond;
    const double r16 = MatMulWorkload(c16).run().matricesPerSecond;
    EXPECT_GT(r16 / r4, 3.5);
    EXPECT_LT(r16 / r4, 4.0);  // fill/drain overhead costs a little
}

TEST(MatMul, CyclesAccountsMacsAndOverhead)
{
    MatMulConfig cfg;
    cfg.dim = 64;
    cfg.parallelism = 4;
    const MatMulResult r = MatMulWorkload(cfg).run();
    EXPECT_EQ(r.cyclesPerMatrix,
              64ULL * 64 * 64 / 4 + 2 * 64 + 32);
}

TEST(MatMul, ValidatesConfig)
{
    MatMulConfig cfg;
    cfg.parallelism = 0;
    EXPECT_THROW(MatMulWorkload{cfg}, FatalError);
    cfg = {};
    cfg.dim = 10;
    cfg.parallelism = 4;  // does not divide
    EXPECT_THROW(MatMulWorkload{cfg}, FatalError);
}

TEST(MatMul, ReferenceKnownSmallCase)
{
    // 2x2 sanity: [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]].
    const std::vector<float> a = {1, 2, 3, 4};
    const std::vector<float> b = {5, 6, 7, 8};
    const auto c = MatMulWorkload::reference(a, b, 2);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
    const auto lanes = MatMulWorkload::laneProduct(a, b, 2, 2);
    EXPECT_FLOAT_EQ(lanes[3], 50);
}

class MatMulParamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MatMulParamTest, VerifiedAcrossParallelism)
{
    MatMulConfig cfg;
    cfg.dim = 32;
    cfg.parallelism = GetParam();
    EXPECT_TRUE(MatMulWorkload(cfg).run().verified);
}

INSTANTIATE_TEST_SUITE_P(Lanes, MatMulParamTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

} // namespace
} // namespace harmonia
