#include <gtest/gtest.h>

#include "common/logging.h"
#include "workload/tcp_model.h"

namespace harmonia {
namespace {

struct TcpBench {
    Engine engine;
    Clock *clk;
    NetworkRbb a;
    NetworkRbb b;

    TcpBench()
        : clk(engine.addClock("clk", MacIp::clockMhzFor(100))),
          a(engine, clk, Vendor::Xilinx, 100, 0),
          b(engine, clk, Vendor::Xilinx, 100, 1)
    {
        a.mac().connectPeer(&b.mac());
        b.mac().connectPeer(&a.mac());
    }
};

TEST(TcpModel, DeliversAllSegments)
{
    TcpBench bench;
    TcpConfig cfg;
    cfg.segmentBytes = 512;
    cfg.totalSegments = 500;
    TcpSession session(bench.engine, bench.a, bench.b, cfg);
    const TcpResult r = session.run();
    EXPECT_EQ(r.segmentsDelivered, 500u);
    EXPECT_GT(r.throughputBps, 0.0);
    EXPECT_GT(r.avgRttUs, 0.0);
}

TEST(TcpModel, ThroughputGrowsWithSegmentSize)
{
    // Fig 18d shape: bigger packets amortize per-packet overheads.
    double last = 0;
    for (std::uint32_t size : {64u, 512u, 1500u}) {
        TcpBench bench;
        TcpConfig cfg;
        cfg.segmentBytes = size;
        cfg.totalSegments = 400;
        const TcpResult r =
            TcpSession(bench.engine, bench.a, bench.b, cfg).run();
        EXPECT_GT(r.throughputBps, last) << size;
        last = r.throughputBps;
    }
}

TEST(TcpModel, WindowLimitsThroughput)
{
    TcpBench bench;
    TcpConfig small;
    small.windowSegments = 1;
    small.totalSegments = 200;
    const TcpResult one =
        TcpSession(bench.engine, bench.a, bench.b, small).run();

    TcpBench bench2;
    TcpConfig big = small;
    big.windowSegments = 32;
    const TcpResult many =
        TcpSession(bench2.engine, bench2.a, bench2.b, big).run();
    EXPECT_GT(many.throughputBps, 2 * one.throughputBps);
}

TEST(TcpModel, RttIncludesWireAndShellLatency)
{
    TcpBench bench;
    TcpConfig cfg;
    cfg.windowSegments = 1;  // clean per-segment RTT
    cfg.totalSegments = 50;
    const TcpResult r =
        TcpSession(bench.engine, bench.a, bench.b, cfg).run();
    // Two wire crossings + two full shell traversals: order 1 us in
    // the model; must be non-trivial and bounded.
    EXPECT_GT(r.avgRttUs, 0.05);
    EXPECT_LT(r.avgRttUs, 50.0);
}

TEST(TcpModel, ValidatesConfig)
{
    TcpBench bench;
    TcpConfig bad;
    bad.segmentBytes = 32;
    EXPECT_THROW(TcpSession(bench.engine, bench.a, bench.b, bad),
                 FatalError);
    bad = {};
    bad.windowSegments = 0;
    EXPECT_THROW(TcpSession(bench.engine, bench.a, bench.b, bad),
                 FatalError);
}

} // namespace
} // namespace harmonia
