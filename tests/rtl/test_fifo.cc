#include <gtest/gtest.h>

#include "common/logging.h"
#include "rtl/fifo.h"

namespace harmonia {
namespace {

TEST(Fifo, FifoOrder)
{
    Fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, BackPressure)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.canPush());
    f.push(1);
    f.push(2);
    EXPECT_FALSE(f.canPush());
    EXPECT_TRUE(f.full());
    f.pop();
    EXPECT_TRUE(f.canPush());
}

TEST(Fifo, OverflowIsPanic)
{
    Fifo<int> f(1);
    f.push(1);
    EXPECT_THROW(f.push(2), PanicError);
}

TEST(Fifo, UnderflowIsPanic)
{
    Fifo<int> f(1);
    EXPECT_THROW(f.pop(), PanicError);
    EXPECT_THROW(f.front(), PanicError);
}

TEST(Fifo, ZeroCapacityRejected)
{
    EXPECT_THROW(Fifo<int>(0), FatalError);
}

TEST(Fifo, FrontDoesNotConsume)
{
    Fifo<int> f(2);
    f.push(9);
    EXPECT_EQ(f.front(), 9);
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.pop(), 9);
}

TEST(Fifo, MoveOnlyPayloads)
{
    Fifo<std::unique_ptr<int>> f(2);
    f.push(std::make_unique<int>(5));
    auto p = f.pop();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 5);
}

TEST(Fifo, Clear)
{
    Fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.clear();
    EXPECT_TRUE(f.empty());
    EXPECT_TRUE(f.canPush());
}

} // namespace
} // namespace harmonia
