#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.h"
#include "rtl/arbiter.h"

namespace harmonia {
namespace {

TEST(RoundRobinArbiter, CyclesThroughRequestors)
{
    RoundRobinArbiter arb(4);
    auto all = [](std::size_t) { return true; };
    EXPECT_EQ(*arb.grant(all), 0u);
    EXPECT_EQ(*arb.grant(all), 1u);
    EXPECT_EQ(*arb.grant(all), 2u);
    EXPECT_EQ(*arb.grant(all), 3u);
    EXPECT_EQ(*arb.grant(all), 0u);
}

TEST(RoundRobinArbiter, SkipsIdleSlots)
{
    RoundRobinArbiter arb(4);
    auto only2 = [](std::size_t s) { return s == 2; };
    EXPECT_EQ(*arb.grant(only2), 2u);
    EXPECT_EQ(*arb.grant(only2), 2u);
}

TEST(RoundRobinArbiter, NoRequestsNoGrant)
{
    RoundRobinArbiter arb(4);
    EXPECT_FALSE(
        arb.grant([](std::size_t) { return false; }).has_value());
}

TEST(RoundRobinArbiter, WorkConservingFairness)
{
    RoundRobinArbiter arb(3);
    std::vector<int> grants(3, 0);
    for (int i = 0; i < 300; ++i) {
        auto g = arb.grant([](std::size_t) { return true; });
        ++grants[*g];
    }
    EXPECT_EQ(grants[0], 100);
    EXPECT_EQ(grants[1], 100);
    EXPECT_EQ(grants[2], 100);
}

TEST(ActiveListArbiter, OnlyActiveSlotsGranted)
{
    ActiveListArbiter arb(1024);
    arb.activate(5);
    arb.activate(900);
    auto all = [](std::size_t) { return true; };

    std::set<std::size_t> seen;
    for (int i = 0; i < 10; ++i)
        seen.insert(*arb.grant(all));
    EXPECT_EQ(seen, (std::set<std::size_t>{5, 900}));
}

TEST(ActiveListArbiter, ActivateIsIdempotent)
{
    ActiveListArbiter arb(16);
    arb.activate(3);
    arb.activate(3);
    EXPECT_EQ(arb.activeCount(), 1u);
    arb.deactivate(3);
    arb.deactivate(3);
    EXPECT_EQ(arb.activeCount(), 0u);
}

TEST(ActiveListArbiter, DeactivatedSlotStopsGranting)
{
    ActiveListArbiter arb(8);
    arb.activate(1);
    arb.activate(2);
    arb.deactivate(1);
    auto all = [](std::size_t) { return true; };
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(*arb.grant(all), 2u);
}

TEST(ActiveListArbiter, FairAcrossActiveSet)
{
    ActiveListArbiter arb(1024);
    for (std::size_t s : {10u, 20u, 30u, 40u})
        arb.activate(s);
    std::map<std::size_t, int> grants;
    for (int i = 0; i < 400; ++i)
        ++grants[*arb.grant([](std::size_t) { return true; })];
    for (std::size_t s : {10u, 20u, 30u, 40u})
        EXPECT_EQ(grants[s], 100) << "slot " << s;
}

TEST(ActiveListArbiter, OutOfRangeRejected)
{
    ActiveListArbiter arb(4);
    EXPECT_THROW(arb.activate(4), FatalError);
    EXPECT_THROW(arb.deactivate(9), FatalError);
}

TEST(ActiveListArbiter, EmptyActiveSetNoGrant)
{
    ActiveListArbiter arb(4);
    EXPECT_FALSE(
        arb.grant([](std::size_t) { return true; }).has_value());
}

TEST(ActiveListArbiter, SurvivesChurn)
{
    // Activate/deactivate aggressively; membership invariants hold.
    ActiveListArbiter arb(64);
    std::uint64_t seed = 99;
    auto rand = [&] {
        seed = seed * 6364136223846793005ULL + 1;
        return seed >> 33;
    };
    std::set<std::size_t> active;
    for (int i = 0; i < 5000; ++i) {
        const std::size_t slot = rand() % 64;
        if (rand() % 2) {
            arb.activate(slot);
            active.insert(slot);
        } else {
            arb.deactivate(slot);
            active.erase(slot);
        }
        ASSERT_EQ(arb.activeCount(), active.size());
        auto g = arb.grant([](std::size_t) { return true; });
        if (active.empty()) {
            ASSERT_FALSE(g.has_value());
        } else {
            ASSERT_TRUE(g.has_value());
            ASSERT_TRUE(active.count(*g));
        }
    }
}

} // namespace
} // namespace harmonia
