#include <gtest/gtest.h>

#include "common/logging.h"
#include "rtl/pipeline.h"

namespace harmonia {
namespace {

TEST(PipelineReg, FixedLatency)
{
    PipelineReg<int> pipe(3);
    EXPECT_FALSE(pipe.shift(1).has_value());
    EXPECT_FALSE(pipe.shift(2).has_value());
    EXPECT_FALSE(pipe.shift(3).has_value());
    auto out = pipe.shift(4);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, 1);
    EXPECT_EQ(*pipe.shift(std::nullopt), 2);
}

TEST(PipelineReg, NoBubblesAtFullRate)
{
    // One item in, one item out, every cycle: full throughput.
    PipelineReg<int> pipe(4);
    int received = 0;
    for (int i = 0; i < 1000; ++i) {
        auto out = pipe.shift(i);
        if (i >= 4) {
            ASSERT_TRUE(out.has_value());
            EXPECT_EQ(*out, i - 4);
            ++received;
        } else {
            EXPECT_FALSE(out.has_value());
        }
    }
    EXPECT_EQ(received, 996);
}

TEST(PipelineReg, GapsPropagate)
{
    PipelineReg<int> pipe(2);
    pipe.shift(1);
    pipe.shift(std::nullopt);
    EXPECT_EQ(*pipe.shift(std::nullopt), 1);
    EXPECT_FALSE(pipe.shift(std::nullopt).has_value());
}

TEST(PipelineReg, OccupancyAndDrain)
{
    PipelineReg<int> pipe(3);
    EXPECT_TRUE(pipe.empty());
    pipe.shift(1);
    pipe.shift(2);
    EXPECT_EQ(pipe.occupancy(), 2u);
    pipe.shift(std::nullopt);
    pipe.shift(std::nullopt);
    pipe.shift(std::nullopt);
    EXPECT_TRUE(pipe.empty());
}

TEST(PipelineReg, ZeroDepthRejected)
{
    EXPECT_THROW(PipelineReg<int>(0), FatalError);
}

TEST(DelayLine, ReleasesAtTimestamp)
{
    DelayLine<int> dl;
    dl.push(1, 100);
    dl.push(2, 200);
    EXPECT_FALSE(dl.ready(99));
    EXPECT_TRUE(dl.ready(100));
    EXPECT_EQ(dl.pop(100), 1);
    EXPECT_FALSE(dl.ready(150));
    EXPECT_EQ(dl.pop(200), 2);
    EXPECT_TRUE(dl.empty());
}

TEST(DelayLine, PreservesFifoOrderForOutOfOrderDeadlines)
{
    DelayLine<int> dl;
    dl.push(1, 300);
    dl.push(2, 100);  // earlier deadline still leaves after item 1
    EXPECT_FALSE(dl.ready(200));
    EXPECT_TRUE(dl.ready(300));
    EXPECT_EQ(dl.pop(300), 1);
    EXPECT_EQ(dl.pop(300), 2);
}

TEST(DelayLine, PopBeforeReadyPanics)
{
    DelayLine<int> dl;
    dl.push(1, 50);
    EXPECT_THROW(dl.pop(10), PanicError);
}

} // namespace
} // namespace harmonia
