#include <gtest/gtest.h>

#include "common/logging.h"
#include "rtl/width_converter.h"

namespace harmonia {
namespace {

std::vector<std::uint8_t>
pattern(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 31 + 7);
    return out;
}

std::vector<std::uint8_t>
drain(ByteRepacker &rp)
{
    std::vector<std::uint8_t> out;
    while (rp.hasOutput()) {
        const Beat b = rp.pop();
        out.insert(out.end(), b.data.begin(), b.data.end());
    }
    return out;
}

TEST(ByteRepacker, WideToNarrow)
{
    ByteRepacker rp(4);
    Beat in;
    in.data = pattern(16);
    in.last = true;
    rp.feed(in);

    std::size_t beats = 0;
    std::vector<std::uint8_t> got;
    while (rp.hasOutput()) {
        const Beat b = rp.pop();
        EXPECT_EQ(b.data.size(), 4u);
        EXPECT_EQ(b.last, !rp.hasOutput());
        got.insert(got.end(), b.data.begin(), b.data.end());
        ++beats;
    }
    EXPECT_EQ(beats, 4u);
    EXPECT_EQ(got, pattern(16));
}

TEST(ByteRepacker, NarrowToWide)
{
    ByteRepacker rp(16);
    const auto payload = pattern(16);
    for (std::size_t off = 0; off < 16; off += 4) {
        Beat in;
        in.data.assign(payload.begin() + static_cast<long>(off),
                       payload.begin() + static_cast<long>(off + 4));
        in.last = off + 4 == 16;
        rp.feed(in);
        if (!in.last) {
            EXPECT_FALSE(rp.hasOutput());
        }
    }
    ASSERT_TRUE(rp.hasOutput());
    const Beat out = rp.pop();
    EXPECT_EQ(out.data, payload);
    EXPECT_TRUE(out.last);
}

TEST(ByteRepacker, ShortFinalBeatOnLast)
{
    ByteRepacker rp(8);
    Beat in;
    in.data = pattern(13);
    in.last = true;
    rp.feed(in);
    const Beat b0 = rp.pop();
    EXPECT_EQ(b0.data.size(), 8u);
    EXPECT_FALSE(b0.last);
    const Beat b1 = rp.pop();
    EXPECT_EQ(b1.data.size(), 5u);
    EXPECT_TRUE(b1.last);
    EXPECT_EQ(rp.residue(), 0u);
}

TEST(ByteRepacker, ResidueHeldWithoutLast)
{
    ByteRepacker rp(8);
    Beat in;
    in.data = pattern(5);
    in.last = false;
    rp.feed(in);
    EXPECT_FALSE(rp.hasOutput());
    EXPECT_EQ(rp.residue(), 5u);
}

TEST(ByteRepacker, PopWithoutOutputPanics)
{
    ByteRepacker rp(8);
    EXPECT_THROW(rp.pop(), PanicError);
}

TEST(ByteRepacker, ZeroWidthRejected)
{
    EXPECT_THROW(ByteRepacker(0), FatalError);
}

class RepackParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RepackParamTest, PayloadPreservedAcrossWidths)
{
    const auto [in_width, out_width] = GetParam();
    ByteRepacker rp(static_cast<std::size_t>(out_width));
    const auto payload = pattern(1500);

    for (std::size_t off = 0; off < payload.size();
         off += static_cast<std::size_t>(in_width)) {
        const std::size_t n = std::min<std::size_t>(
            static_cast<std::size_t>(in_width), payload.size() - off);
        Beat in;
        in.data.assign(payload.begin() + static_cast<long>(off),
                       payload.begin() + static_cast<long>(off + n));
        in.last = off + n == payload.size();
        rp.feed(in);
    }
    EXPECT_EQ(drain(rp), payload);
}

INSTANTIATE_TEST_SUITE_P(
    WidthPairs, RepackParamTest,
    ::testing::Values(std::pair{16, 64}, std::pair{64, 16},
                      std::pair{64, 256}, std::pair{256, 64},
                      std::pair{13, 64}, std::pair{64, 13},
                      std::pair{1, 256}));

TEST(BeatsForBytes, Rounding)
{
    EXPECT_EQ(beatsForBytes(0, 64), 0u);
    EXPECT_EQ(beatsForBytes(1, 64), 1u);
    EXPECT_EQ(beatsForBytes(64, 64), 1u);
    EXPECT_EQ(beatsForBytes(65, 64), 2u);
    EXPECT_THROW(beatsForBytes(10, 0), FatalError);
}

} // namespace
} // namespace harmonia
