#include <gtest/gtest.h>

#include "common/logging.h"
#include "rtl/async_fifo.h"

namespace harmonia {
namespace {

TEST(GraySync, DelaysByStageCount)
{
    GraySync sync(2);
    EXPECT_EQ(sync.value(), 0u);
    sync.shift(0x1);
    EXPECT_EQ(sync.value(), 0u);  // one stage in
    sync.shift(0x3);
    EXPECT_EQ(sync.value(), 0x1u);  // first value emerges
    sync.shift(0x3);
    EXPECT_EQ(sync.value(), 0x3u);
}

TEST(AsyncFifo, RequiresPowerOfTwoCapacity)
{
    EXPECT_THROW(AsyncFifo<int>(6), FatalError);
    AsyncFifo<int> ok(8);
    EXPECT_EQ(ok.capacity(), 8u);
}

TEST(AsyncFifo, DataVisibleAfterSynchronizerDelay)
{
    AsyncFifo<int> f(8, 2);
    f.writeTick();
    EXPECT_TRUE(f.canPush());
    f.push(42);
    // Reader cannot see the write until the pointer crosses the
    // 2-flop synchronizer.
    EXPECT_FALSE(f.canPop());
    f.readTick();
    EXPECT_FALSE(f.canPop());
    f.readTick();
    EXPECT_TRUE(f.canPop());
    EXPECT_EQ(f.pop(), 42);
}

TEST(AsyncFifo, WriterSeesSpaceConservatively)
{
    AsyncFifo<int> f(4, 2);
    f.writeTick();
    for (int i = 0; i < 4; ++i)
        f.push(i);
    EXPECT_FALSE(f.canPush());

    // Reader drains everything...
    for (int i = 0; i < 4; ++i)
        f.readTick();
    while (f.canPop())
        f.pop();
    EXPECT_EQ(f.trueSize(), 0u);

    // ...but the writer still sees it full until rptr synchronizes.
    EXPECT_FALSE(f.canPush());
    f.writeTick();
    f.writeTick();
    EXPECT_TRUE(f.canPush());
}

TEST(AsyncFifo, NeverOverflowsOrDropsUnderRandomTraffic)
{
    AsyncFifo<std::uint64_t> f(16, 2);
    std::uint64_t wr = 0, rd = 0;
    std::uint64_t seed = 12345;
    auto rand = [&] {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        return seed >> 33;
    };

    for (int cycle = 0; cycle < 20000; ++cycle) {
        // Interleave domain ticks at an irregular ratio.
        f.writeTick();
        if (rand() % 3 && f.canPush())
            f.push(wr++);
        if (rand() % 2) {
            f.readTick();
            while (f.canPop()) {
                const std::uint64_t v = f.pop();
                ASSERT_EQ(v, rd) << "out of order at " << cycle;
                ++rd;
            }
        }
        ASSERT_LE(f.trueSize(), f.capacity());
    }
    EXPECT_GT(rd, 1000u);
}

TEST(AsyncFifo, PushWithoutSpacePanics)
{
    AsyncFifo<int> f(2, 2);
    f.writeTick();
    f.push(1);
    f.push(2);
    EXPECT_THROW(f.push(3), PanicError);
}

TEST(AsyncFifo, PopWithoutDataPanics)
{
    AsyncFifo<int> f(2, 2);
    EXPECT_THROW(f.pop(), PanicError);
}

class SyncStagesTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SyncStagesTest, VisibilityLatencyEqualsStages)
{
    const unsigned stages = GetParam();
    AsyncFifo<int> f(8, stages);
    f.writeTick();
    f.push(7);
    unsigned ticks = 0;
    while (!f.canPop()) {
        f.readTick();
        ++ticks;
        ASSERT_LE(ticks, stages + 1);
    }
    EXPECT_EQ(ticks, stages);
}

INSTANTIATE_TEST_SUITE_P(Depths, SyncStagesTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace harmonia
