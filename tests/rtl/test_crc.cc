#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rtl/crc.h"

namespace harmonia {
namespace {

TEST(Crc32, KnownVectors)
{
    // Standard CRC-32 check value for "123456789".
    const std::string s = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(s.data()),
                    s.size()),
              0xcbf43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> data(300);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 17);

    Crc32 inc;
    inc.update(data.data(), 100);
    inc.update(data.data() + 100, 200);
    EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, ResetRestartsState)
{
    Crc32 c;
    c.update({1, 2, 3});
    c.reset();
    c.update({4, 5});
    EXPECT_EQ(c.value(), crc32({4, 5}));
}

TEST(Crc32, DetectsCorruption)
{
    std::vector<std::uint8_t> frame(64, 0xaa);
    const std::uint32_t fcs = crc32(frame);
    frame[10] ^= 0x01;
    EXPECT_NE(crc32(frame), fcs);
}

} // namespace
} // namespace harmonia
