#include <gtest/gtest.h>

#include <set>

#include "adapter/toolchain.h"
#include "cmd/command.h"
#include "common/logging.h"
#include "drc/checker.h"
#include "drc/render.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/unified_shell.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

/** No RBBs at all: isolates link/command overrides from derivation. */
ShellConfig
minimalConfig()
{
    ShellConfig cfg;
    cfg.includeHost = false;
    return cfg;
}

drc::DrcInput
minimalInput()
{
    drc::DrcInput in;
    in.device = &device("DeviceA");
    in.config = minimalConfig();
    return in;
}

// --- Diagnostics and report plumbing. ---

TEST(DrcReport, CountsAndLookups)
{
    drc::DrcReport report;
    report.add({"CDC-001", drc::Severity::Error, "s/a", "m1", "h1"});
    report.add({"RES-003", drc::Severity::Warning, "s/b", "m2", ""});
    report.add({"VEND-002", drc::Severity::Info, "s", "m3", "h3"});

    EXPECT_EQ(report.errorCount(), 1u);
    EXPECT_EQ(report.count(drc::Severity::Warning), 1u);
    EXPECT_EQ(report.count(drc::Severity::Info), 1u);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(report.hasRule("RES-003"));
    EXPECT_FALSE(report.hasRule("RES-001"));
    EXPECT_EQ(report.byRule("VEND-002").size(), 1u);
    EXPECT_EQ(report.firstError().ruleId, "CDC-001");
    EXPECT_EQ(report.summary(),
              "1 error(s), 1 warning(s), 1 info(s)");
}

TEST(DrcReport, FirstErrorOnCleanReportIsFatal)
{
    drc::DrcReport report;
    EXPECT_TRUE(report.clean());
    EXPECT_THROW(report.firstError(), FatalError);
}

TEST(DrcReport, DiagnosticToStringCarriesEverything)
{
    const drc::Diagnostic d{"CMD-002", drc::Severity::Error,
                            "shell/host0", "too big", "split it"};
    const std::string s = d.toString();
    EXPECT_NE(s.find("ERROR"), std::string::npos);
    EXPECT_NE(s.find("CMD-002"), std::string::npos);
    EXPECT_NE(s.find("shell/host0"), std::string::npos);
    EXPECT_NE(s.find("split it"), std::string::npos);
}

TEST(DrcRules, TableListsEveryRuleWithPaperRefs)
{
    const auto table = drc::ruleTable();
    EXPECT_EQ(table.size(), drc::standardRules().size());
    std::set<std::string> ids;
    for (const drc::RuleInfo &r : table) {
        ids.insert(r.id);
        EXPECT_NE(std::string(r.paperRef).find("§"),
                  std::string::npos)
            << r.id;
    }
    EXPECT_EQ(ids.size(), table.size());  // ids are unique
    EXPECT_GE(ids.size(), 8u);
}

// --- CDC coverage rules (§3.3.1). ---

TEST(DrcRules, DirectCrossingWithoutFifoIsAnError)
{
    drc::DrcInput in = minimalInput();
    drc::PlannedLink link;
    link.path = "shell/net0";
    link.sourceMhz = 402.832;
    link.sinkMhz = 250.0;
    link.viaAsyncFifo = false;
    in.links = std::vector<drc::PlannedLink>{link};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("CDC-001"));
    EXPECT_EQ(report.byRule("CDC-001")[0].severity,
              drc::Severity::Error);
    EXPECT_EQ(report.byRule("CDC-001")[0].path, "shell/net0");
}

TEST(DrcRules, UnderSynchronizedFifoIsAnError)
{
    drc::DrcInput in = minimalInput();
    drc::PlannedLink link;
    link.path = "shell/mem0";
    link.sourceMhz = 300.0;
    link.sinkMhz = 250.0;
    link.syncStages = 1;
    in.links = std::vector<drc::PlannedLink>{link};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("CDC-002"));
    EXPECT_EQ(report.byRule("CDC-002")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, SameDomainShortcutIsOnlyAWarning)
{
    drc::DrcInput in = minimalInput();
    drc::PlannedLink link;
    link.path = "shell/net0";
    link.sourceMhz = 250.0;
    link.sinkMhz = 250.0;
    link.viaAsyncFifo = false;
    in.links = std::vector<drc::PlannedLink>{link};

    const drc::DrcReport report = drc::check(in);
    EXPECT_FALSE(report.hasRule("CDC-001"));
    ASSERT_TRUE(report.hasRule("CDC-003"));
    EXPECT_EQ(report.byRule("CDC-003")[0].severity,
              drc::Severity::Warning);
    EXPECT_EQ(report.errorCount(), 0u);
}

// --- Protocol compatibility rules (§3.2). ---

TEST(DrcRules, ProtocolChangeWithoutWrapperIsAnError)
{
    drc::DrcInput in = minimalInput();
    drc::PlannedLink link;
    link.path = "shell/net0";
    link.source = Protocol::Axi4Stream;
    link.sink = Protocol::Uniform;
    link.viaWrapper = false;
    link.sourceMhz = 250.0;
    link.sinkMhz = 250.0;
    in.links = std::vector<drc::PlannedLink>{link};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("PROTO-001"));
    EXPECT_EQ(report.byRule("PROTO-001")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, NonIntegralWidthRatioIsAnError)
{
    drc::DrcInput in = minimalInput();
    drc::PlannedLink link;
    link.path = "shell/net0";
    link.sourceMhz = 250.0;
    link.sinkMhz = 250.0;
    link.sourceWidthBits = 512;
    link.sinkWidthBits = 384;
    in.links = std::vector<drc::PlannedLink>{link};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("PROTO-002"));

    // An integral ratio (4:1) passes.
    link.sinkWidthBits = 128;
    in.links = std::vector<drc::PlannedLink>{link};
    EXPECT_FALSE(drc::check(in).hasRule("PROTO-002"));
}

// --- Peripheral availability rules (§2.2). ---

TEST(DrcRules, NetworkInstanceBeyondCageIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.config.networks = {{400}};  // Device A cages are 100G

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("PERI-001"));
    EXPECT_EQ(report.byRule("PERI-001")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, UnsupportedMacRateAndCageOverflowAreErrors)
{
    drc::DrcInput in = minimalInput();
    in.config.networks = {{10}};  // no 10G MAC model
    EXPECT_TRUE(drc::check(in).hasRule("PERI-001"));

    in.config.networks.assign(10, {100});  // more than the cages
    EXPECT_TRUE(drc::check(in).hasRule("PERI-001"));
}

TEST(DrcRules, MemoryInstanceBeyondPeripheralIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.config.memories = {{PeripheralKind::Hbm, 33}};  // HBM has 32

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("PERI-002"));
    EXPECT_EQ(report.byRule("PERI-002")[0].severity,
              drc::Severity::Error);

    // A network cage is not a memory peripheral.
    in.config.memories = {{PeripheralKind::Qsfp28, 1}};
    EXPECT_TRUE(drc::check(in).hasRule("PERI-002"));
}

TEST(DrcRules, HostQueueContractViolationsAreErrors)
{
    drc::DrcInput in = minimalInput();
    in.config.includeHost = true;
    in.config.hostQueues = 4096;
    EXPECT_TRUE(drc::check(in).hasRule("PERI-003"));

    in.config.hostQueues = 0;
    EXPECT_TRUE(drc::check(in).hasRule("PERI-003"));

    in.config.hostQueues = 64;
    EXPECT_FALSE(drc::check(in).hasRule("PERI-003"));
}

// --- Resource budget rules (§4). ---

TEST(DrcRules, OverflowingPlanFailsFit)
{
    drc::DrcInput in = minimalInput();
    in.roleLogic = {10'000'000, 0, 0, 0, 0};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("RES-001"));
    EXPECT_FALSE(report.hasRule("RES-002"));  // RES-001 subsumes it
}

TEST(DrcRules, UtilizationPastTheTimingWallIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.roleLogic = device("DeviceA").chip().budget.scaled(0.92);

    const drc::DrcReport report = drc::check(in);
    EXPECT_FALSE(report.hasRule("RES-001"));  // it does fit
    ASSERT_TRUE(report.hasRule("RES-002"));
    EXPECT_EQ(report.byRule("RES-002")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, TightHeadroomIsAWarning)
{
    drc::DrcInput in = minimalInput();
    in.roleLogic = device("DeviceA").chip().budget.scaled(0.80);

    const drc::DrcReport report = drc::check(in);
    EXPECT_EQ(report.errorCount(), 0u);
    ASSERT_TRUE(report.hasRule("RES-003"));
    EXPECT_EQ(report.byRule("RES-003")[0].severity,
              drc::Severity::Warning);
}

// --- Vendor dependency rules (§3.2). ---

TEST(DrcRules, UnprovisionedEnvironmentIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.config.networks = {{100}};  // derives a CMAC module
    in.environment = VendorAdapter(Vendor::Xilinx);  // empty env

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("VEND-001"));
    EXPECT_EQ(report.byRule("VEND-001")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, DeadProvidesSurfaceAsInfo)
{
    drc::DrcInput in = minimalInput();
    VendorAdapter env(Vendor::Xilinx);
    env.provide("ip:legacy_widget", "0.9");
    in.environment = env;

    const drc::DrcReport report = drc::check(in);
    EXPECT_EQ(report.errorCount(), 0u);
    ASSERT_TRUE(report.hasRule("VEND-002"));
    const auto infos = report.byRule("VEND-002");
    EXPECT_EQ(infos[0].severity, drc::Severity::Info);
    EXPECT_NE(infos[0].message.find("ip:legacy_widget"),
              std::string::npos);
}

// --- Tailoring consistency rules (§3.3.2). ---

TEST(DrcRules, ZeroPortNetworkDemandIsAWarning)
{
    RoleRequirements role;
    role.name = "portless";
    role.needsNetwork = true;
    role.networkPorts = 0;
    const drc::DrcReport report =
        drc::check(device("DeviceA"), tailorConfigFor(
                       device("DeviceA"), role), &role);
    EXPECT_EQ(report.errorCount(), 0u);
    ASSERT_TRUE(report.hasRule("TLR-001"));
    EXPECT_EQ(report.byRule("TLR-001")[0].severity,
              drc::Severity::Warning);
}

TEST(DrcRules, UnsatisfiableNetworkDemandIsAnError)
{
    RoleRequirements role;
    role.name = "fast";
    role.needsNetwork = true;
    role.networkGbps = 400;  // Device A cages are 100G
    role.networkPorts = 1;
    const drc::DrcReport report = drc::check(
        device("DeviceA"), unifiedConfigFor(device("DeviceA")),
        &role);
    EXPECT_TRUE(report.hasRule("TLR-001"));
}

TEST(DrcRules, ExcessiveHostQueueDemandIsAnError)
{
    RoleRequirements role;
    role.name = "greedy";
    role.hostQueues = 5000;
    const drc::DrcReport report = drc::check(
        device("DeviceA"), unifiedConfigFor(device("DeviceA")),
        &role);
    ASSERT_TRUE(report.hasRule("TLR-002"));
    EXPECT_EQ(report.byRule("TLR-002")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, UnsatisfiableMemoryBandwidthIsAnError)
{
    RoleRequirements role;
    role.name = "bw";
    role.needsMemory = true;
    role.memoryBandwidthGBps = 300;  // Device B DDR peaks below that
    const drc::DrcReport report = drc::check(
        device("DeviceB"), unifiedConfigFor(device("DeviceB")),
        &role);
    ASSERT_TRUE(report.hasRule("TLR-003"));
}

TEST(DrcRules, DmaStyleMismatchIsAWarning)
{
    RoleRequirements role;
    role.name = "bulk";
    role.dmaStyle = DmaStyle::Bdma;
    ShellConfig cfg = unifiedConfigFor(device("DeviceA"));
    cfg.dmaStyle = DmaStyle::Sgdma;
    const drc::DrcReport report =
        drc::check(device("DeviceA"), cfg, &role);
    ASSERT_TRUE(report.hasRule("TLR-004"));
    EXPECT_EQ(report.byRule("TLR-004")[0].severity,
              drc::Severity::Warning);
}

TEST(DrcRules, ConfigMissingADemandedCapabilityIsAnError)
{
    RoleRequirements role;
    role.name = "two_port";
    role.needsNetwork = true;
    role.networkGbps = 100;
    role.networkPorts = 2;
    ShellConfig cfg = minimalConfig();
    cfg.networks = {{100}};  // covers only one of the two ports
    const drc::DrcReport one_port =
        drc::check(device("DeviceA"), cfg, &role);
    EXPECT_TRUE(one_port.hasRule("TLR-005"));

    RoleRequirements memful;
    memful.name = "memful";
    memful.needsMemory = true;
    const drc::DrcReport memless = drc::check(
        device("DeviceA"), minimalConfig(), &memful);
    EXPECT_TRUE(memless.hasRule("TLR-005"));
}

// --- Command-schema rules (§3.3.3). ---

TEST(DrcRules, UnresolvableCommandTargetIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.commands = std::vector<drc::CommandBinding>{
        {"shell/ghost", 0x55, 0, kCmdModuleInit, 0}};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("CMD-001"));
    EXPECT_EQ(report.byRule("CMD-001")[0].severity,
              drc::Severity::Error);
}

TEST(DrcRules, OversizedCommandPayloadIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.commands = std::vector<drc::CommandBinding>{
        {"shell/uck", kRbbSystem, 0, kCmdFlashErase, 16}};

    const drc::DrcReport report = drc::check(in);
    EXPECT_FALSE(report.hasRule("CMD-001"));  // target resolves
    ASSERT_TRUE(report.hasRule("CMD-002"));
}

TEST(DrcRules, DuplicateTargetAddressIsAnError)
{
    drc::DrcInput in = minimalInput();
    in.targets = std::vector<drc::PlannedTarget>{
        {"shell/net0", kRbbNetwork, 0},
        {"shell/net0b", kRbbNetwork, 0}};
    in.commands = std::vector<drc::CommandBinding>{};

    const drc::DrcReport report = drc::check(in);
    ASSERT_TRUE(report.hasRule("CMD-003"));
    EXPECT_EQ(report.byRule("CMD-003")[0].path, "shell/net0b");
}

// --- Shipped platforms stay lint-free. ---

TEST(DrcSweep, EveryUnifiedShellConfigIsErrorFree)
{
    for (const FpgaDevice &dev : DeviceDatabase::instance().all()) {
        const drc::DrcReport report = drc::check(
            dev, unifiedConfigFor(dev), nullptr,
            "unified_" + dev.name);
        EXPECT_EQ(report.errorCount(), 0u)
            << dev.name << ": "
            << (report.clean() ? ""
                               : report.firstError().toString());
    }
}

TEST(DrcSweep, EveryFeasibleTailoredComboIsErrorFree)
{
    const std::vector<RoleRequirements> roles = {
        SecGateway::standardRequirements(),
        Retrieval::standardRequirements(),
    };
    for (const FpgaDevice &dev : DeviceDatabase::instance().all()) {
        for (const RoleRequirements &role : roles) {
            ShellConfig cfg;
            try {
                cfg = tailorConfigFor(dev, role);
            } catch (const FatalError &) {
                // Infeasible on this board; checkRole must agree.
                EXPECT_GT(drc::checkRole(dev, role).errorCount(), 0u)
                    << role.name << " on " << dev.name;
                continue;
            }
            const drc::DrcReport report = drc::check(
                dev, cfg, &role, role.name + "_" + dev.name);
            EXPECT_EQ(report.errorCount(), 0u)
                << role.name << " on " << dev.name << ": "
                << (report.clean() ? ""
                                   : report.firstError().toString());
        }
    }
}

// --- Renderers. ---

TEST(DrcRender, TextReportCarriesSummaryFindingsAndHints)
{
    drc::DrcInput in = minimalInput();
    in.config.includeHost = true;
    in.config.hostQueues = 4096;
    const drc::DrcReport report = drc::check(in);
    ASSERT_FALSE(report.clean());

    const std::string text = drc::renderText(report);
    EXPECT_NE(text.find("platform DRC:"), std::string::npos);
    EXPECT_NE(text.find("PERI-003"), std::string::npos);
    EXPECT_NE(text.find("fix:"), std::string::npos);
}

TEST(DrcRender, JsonLinesAreOnePerDiagnostic)
{
    drc::DrcInput in = minimalInput();
    in.config.includeHost = true;
    in.config.hostQueues = 4096;
    const drc::DrcReport report = drc::check(in);

    const std::string json = drc::renderJsonLines(report);
    std::size_t lines = 0;
    for (char c : json)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, report.diagnostics().size());
    EXPECT_NE(json.find("\"rule\":\"PERI-003\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\":\"error\""),
              std::string::npos);
}

// --- Build gates. ---

TEST(DrcGate, ToolchainRefusesDrcErrorsUnlessOverridden)
{
    const FpgaDevice &dev_a = device("DeviceA");
    ShellConfig broken = minimalConfig();
    broken.includeHost = true;
    broken.hostQueues = 4096;

    Toolchain tc(VendorAdapter::standardFor(dev_a));
    CompileJob job;
    job.projectName = "gated";
    job.device = &dev_a;
    job.shellConfig = &broken;
    job.roleLogic = {1000, 1000, 1, 0, 0};

    const BuildArtifact refused = tc.compile(job);
    EXPECT_FALSE(refused.success);
    bool drc_mentioned = false;
    for (const auto &line : refused.log)
        if (line.find("PERI-003") != std::string::npos)
            drc_mentioned = true;
    EXPECT_TRUE(drc_mentioned);
    EXPECT_NE(refused.log.back().find("design-rule"),
              std::string::npos);

    tc.setDrcOverride(true);
    const BuildArtifact forced = tc.compile(job);
    EXPECT_TRUE(forced.success) << forced.log.back();
}

TEST(DrcGate, ShellCompileJobsCarryTheirConfig)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    const CompileJob job = shell->compileJob("carrying", {});
    ASSERT_NE(job.shellConfig, nullptr);
    EXPECT_EQ(job.shellConfig->networks.size(),
              shell->config().networks.size());

    Toolchain tc(VendorAdapter::standardFor(device("DeviceA")));
    const BuildArtifact art = tc.compile(job);
    EXPECT_TRUE(art.success) << art.log.back();
    bool drc_ran = false;
    for (const auto &line : art.log)
        if (line.find("[drc] clean") != std::string::npos)
            drc_ran = true;
    EXPECT_TRUE(drc_ran);
}

TEST(DrcGate, StrictShellModeRefusesBrokenConfigs)
{
    struct StrictGuard {
        StrictGuard() { Shell::setStrictDrc(true); }
        ~StrictGuard() { Shell::setStrictDrc(false); }
    } guard;
    ASSERT_TRUE(Shell::strictDrc());

    Engine engine;
    ShellConfig broken = unifiedConfigFor(device("DeviceA"));
    broken.hostQueues = 4096;
    try {
        Shell shell(engine, device("DeviceA"), broken, "strict_bad");
        FAIL() << "strict DRC did not reject the config";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("strict DRC"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("PERI-003"),
                  std::string::npos);
    }

    // Clean configurations still construct under strict mode.
    Engine engine2;
    auto shell = Shell::makeUnified(engine2, device("DeviceA"));
    EXPECT_GT(shell->rbbs().size(), 0u);
}

} // namespace
} // namespace harmonia
