/**
 * @file
 * Fleet chaos suite: cards die mid-placement under a FaultPlan
 * DeviceDeath window; every displaced role must be re-placed or
 * explicitly declared degraded, acknowledged table writes survive
 * displacement and migration, and the end-state FNV-1a fingerprint
 * is bit-identical across reruns and HARMONIA_SIM_THREADS settings.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fleet/scheduler_drill.h"
#include "fleet/tenant_role.h"

namespace harmonia {
namespace {

SchedulerDrillConfig
chaosConfig(std::uint64_t seed)
{
    SchedulerDrillConfig cfg;
    cfg.seed = seed;
    cfg.requests = 120;
    return cfg;
}

TEST(FleetChaos, DeathDisplacesAndRevivalRestores)
{
    SchedulerDrill drill(chaosConfig(20260809));
    const SchedulerDrillReport rep = drill.run();

    // The victim died mid-churn and came back.
    EXPECT_TRUE(rep.cardDied);
    EXPECT_TRUE(rep.cardRevived);
    EXPECT_GE(drill.fleet().stats().value("card_deaths"), 1u);
    EXPECT_GE(drill.fleet().stats().value("card_revivals"), 1u);

    // Every acked write on a surviving tenant is still readable.
    EXPECT_TRUE(rep.zeroLoss);
    EXPECT_EQ(rep.lostWrites, 0u);
    EXPECT_GT(rep.verifiedWrites, 0u);

    // Displacement is explicit: dead-card tenants were re-placed or
    // degraded (and after the revival settled, none stay degraded).
    const std::uint64_t displaced =
        drill.fleet().stats().value("replaced_after_death") +
        drill.fleet().stats().value("tenants_degraded");
    EXPECT_GT(displaced, 0u)
        << "the dead card held no tenants; churn too thin";
    EXPECT_EQ(rep.degradedEnd, 0u);

    // The churn exercised the advertised machinery.
    EXPECT_GT(rep.migrations, 0u);
    EXPECT_GT(rep.crossVendorMigrations, 0u);
    EXPECT_GT(rep.placements, 0u);
}

TEST(FleetChaos, RerunsProduceIdenticalFingerprint)
{
    SchedulerDrillReport first;
    {
        SchedulerDrill drill(chaosConfig(42));
        first = drill.run();
    }
    SchedulerDrill again(chaosConfig(42));
    const SchedulerDrillReport second = again.run();

    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.ackedWrites, second.ackedWrites);
    EXPECT_EQ(first.placements, second.placements);
    EXPECT_EQ(first.migrations, second.migrations);
    EXPECT_EQ(first.evictions, second.evictions);
}

TEST(FleetChaos, FingerprintInvariantAcrossThreadCounts)
{
    const char *saved = std::getenv("HARMONIA_SIM_THREADS");
    const std::string restore = saved != nullptr ? saved : "";

    setenv("HARMONIA_SIM_THREADS", "1", 1);
    SchedulerDrillReport serial;
    {
        SchedulerDrill drill(chaosConfig(7));
        serial = drill.run();
    }

    setenv("HARMONIA_SIM_THREADS", "4", 1);
    SchedulerDrillReport parallel;
    {
        SchedulerDrill drill(chaosConfig(7));
        parallel = drill.run();
    }

    if (saved != nullptr)
        setenv("HARMONIA_SIM_THREADS", restore.c_str(), 1);
    else
        unsetenv("HARMONIA_SIM_THREADS");

    EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
    EXPECT_EQ(serial.ackedWrites, parallel.ackedWrites);
    EXPECT_EQ(serial.placements, parallel.placements);
    EXPECT_TRUE(serial.zeroLoss);
    EXPECT_TRUE(parallel.zeroLoss);
}

TEST(FleetChaos, DifferentSeedsDiverge)
{
    // Sanity that the fingerprint actually depends on the schedule —
    // a constant hash would pass every invariance check above.
    SchedulerDrillConfig a = chaosConfig(1);
    SchedulerDrillConfig b = chaosConfig(2);
    a.requests = b.requests = 60;
    a.injectFault = b.injectFault = false;
    SchedulerDrillReport ra, rb;
    {
        SchedulerDrill drill(a);
        ra = drill.run();
    }
    SchedulerDrill drill(b);
    rb = drill.run();
    EXPECT_NE(ra.fingerprint, rb.fingerprint);
}

TEST(FleetChaos, DeathMidReconfigurationDegradesExplicitly)
{
    // A focused kill: one tenant on card0, the only other card is
    // killed too, so re-placement is impossible — the manager must
    // declare the tenant Degraded, never drop it silently.
    Engine engine;
    engine.setIdleFastForward(true);
    std::vector<FleetCardSpec> specs(2);
    specs[0].device = "DeviceA";
    specs[1].device = "DeviceD";
    FleetManager fleet(engine, specs);
    const RoleRequirements reqs =
        TenantRole::lightRequirements("kv", 1500);
    fleet.registerRoleKind("kv", reqs, [reqs] {
        return std::make_unique<TenantRole>("kv", reqs);
    });

    FleetRoleSpec spec;
    spec.tenant = "only";
    spec.kind = "kv";
    ASSERT_TRUE(fleet.admit(spec).placed);
    ASSERT_TRUE(
        fleet.call("only", kCmdTableWrite, {5, 99}).ok());

    FaultPlan plan(11);
    plan.addWindow(FaultKind::DeviceDeath, engine.now(),
                   engine.now() + 400'000'000, 1.0, "card0");
    plan.addWindow(FaultKind::DeviceDeath, engine.now(),
                   engine.now() + 400'000'000, 1.0, "card1");
    plan.arm();

    for (int i = 0; i < 20 && fleet.aliveCards() != 0; ++i) {
        fleet.poll();
        engine.runFor(20'000'000);
    }
    ASSERT_EQ(fleet.aliveCards(), 0u);
    EXPECT_EQ(fleet.tenantState("only"),
              FleetManager::TenantState::Degraded);
    EXPECT_EQ(fleet.degradedCount(), 1u);

    // Both cards return: the degraded tenant is re-placed with its
    // acked write intact (blob + journal-tail replay).
    plan.disarm();
    for (int i = 0; i < 50 &&
                    fleet.tenantState("only") !=
                        FleetManager::TenantState::Placed;
         ++i) {
        fleet.poll();
        engine.runFor(20'000'000);
    }
    ASSERT_EQ(fleet.tenantState("only"),
              FleetManager::TenantState::Placed);
    const auto *role =
        static_cast<const TenantRole *>(fleet.tenantRole("only"));
    ASSERT_NE(role, nullptr);
    EXPECT_EQ(role->valueOf(5), 99u);
}

} // namespace
} // namespace harmonia
