/**
 * @file
 * Placement-engine property tests: seeded random role/device matrices
 * asserting the scheduler's invariants — a placement never exceeds a
 * slot budget, never lands on a card missing a required peripheral,
 * priority eviction is monotone in the requester's priority, and a
 * full fleet rejects explicitly, never silently.
 */

#include <gtest/gtest.h>

#include "fleet/placement.h"
#include "fleet/tenant_role.h"

namespace harmonia {
namespace {

std::uint64_t
mix64(std::uint64_t seed, std::uint64_t counter)
{
    std::uint64_t z = seed + counter * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

const FpgaDevice &
device(std::uint64_t pick)
{
    static const char *kNames[] = {"DeviceA", "DeviceB", "DeviceC",
                                   "DeviceD"};
    return DeviceDatabase::instance().byName(kNames[pick % 4]);
}

/** One seeded random fleet snapshot. */
std::vector<PlacementCardView>
randomFleet(std::uint64_t seed)
{
    std::vector<PlacementCardView> cards;
    const std::size_t n_cards = 1 + mix64(seed, 1) % 5;
    for (std::size_t c = 0; c < n_cards; ++c) {
        PlacementCardView card;
        card.card = "card" + std::to_string(c);
        card.device = &device(mix64(seed, 10 + c));
        card.alive = mix64(seed, 20 + c) % 8 != 0;  // 1/8 dead
        card.placementLatencyCycles =
            static_cast<double>(mix64(seed, 30 + c) % 3'000'000);
        const std::size_t n_slots = 1 + mix64(seed, 40 + c) % 4;
        for (std::size_t s = 0; s < n_slots; ++s) {
            PlacementSlotView slot;
            const std::uint64_t lut =
                1000 + mix64(seed, 100 + 10 * c + s) % 4000;
            slot.capacity = ResourceVector{lut, lut * 2, 16, 0, 8};
            slot.free = mix64(seed, 200 + 10 * c + s) % 3 != 0;
            if (!slot.free) {
                slot.occupantTenant =
                    "occ" + std::to_string(10 * c + s);
                slot.occupantPriority = static_cast<unsigned>(
                    mix64(seed, 300 + 10 * c + s) % 4);
                if (mix64(seed, 400 + 10 * c + s) % 4 == 0)
                    card.groups.push_back(
                        "grp" +
                        std::to_string(mix64(seed, 500 + c) % 3));
            }
            card.slots.push_back(std::move(slot));
        }
        cards.push_back(std::move(card));
    }
    return cards;
}

/** One seeded random role request. */
FleetRoleSpec
randomSpec(std::uint64_t seed)
{
    FleetRoleSpec spec;
    spec.tenant = "tenant";
    spec.kind = "kv";
    const std::uint64_t lut = 500 + mix64(seed, 2) % 5000;
    spec.reqs = TenantRole::lightRequirements("kv", lut);
    spec.priority = static_cast<unsigned>(mix64(seed, 3) % 5);
    if (mix64(seed, 4) % 4 == 0) {
        spec.reqs.needsMemory = true;
        spec.reqs.memoryBandwidthGBps =
            mix64(seed, 5) % 3 == 0 ? 90.0 : 20.0;
    }
    if (mix64(seed, 6) % 3 == 0)
        spec.antiAffinity =
            "grp" + std::to_string(mix64(seed, 7) % 3);
    return spec;
}

/** Test-side replica of the peripheral filter. */
bool
cardCarries(const FleetRoleSpec &spec, const PlacementCardView &card)
{
    const RoleRequirements &r = spec.reqs;
    if (r.needsNetwork &&
        card.device->byClass(PeripheralClass::Network).size() <
            r.networkPorts)
        return false;
    if (r.needsMemory) {
        if (card.device->byClass(PeripheralClass::Memory).empty())
            return false;
        if (r.memoryBandwidthGBps > 50.0 &&
            !card.device->has(PeripheralKind::Hbm))
            return false;
    }
    if (r.needsHost &&
        card.device->byClass(PeripheralClass::Host).empty())
        return false;
    return true;
}

bool
aaBlocked(const FleetRoleSpec &spec, const PlacementCardView &card)
{
    if (spec.antiAffinity.empty())
        return false;
    for (const std::string &g : card.groups)
        if (g == spec.antiAffinity)
            return true;
    return false;
}

TEST(PlacementProperty, InvariantsHoldOverSeededMatrices)
{
    PlacementEngine engine;
    for (std::uint64_t round = 0; round < 500; ++round) {
        const std::uint64_t seed = mix64(20260809, round);
        const std::vector<PlacementCardView> fleet =
            randomFleet(seed);
        const FleetRoleSpec spec = randomSpec(seed ^ 0xabcdef);
        const PlacementDecision d = engine.decide(spec, fleet);

        if (d.placed) {
            const PlacementCardView *card = nullptr;
            for (const PlacementCardView &c : fleet)
                if (c.card == d.card)
                    card = &c;
            ASSERT_NE(card, nullptr) << "placed on unknown card";
            ASSERT_LT(d.slot, card->slots.size());
            const PlacementSlotView &slot = card->slots[d.slot];

            // Never on a dead card, never past a slot's budget,
            // never without the peripherals, never into its group.
            EXPECT_TRUE(card->alive);
            EXPECT_TRUE(spec.reqs.roleLogic.fitsIn(slot.capacity));
            EXPECT_TRUE(cardCarries(spec, *card));
            EXPECT_FALSE(aaBlocked(spec, *card));

            if (d.evictTenant.empty()) {
                EXPECT_TRUE(slot.free);
            } else {
                EXPECT_FALSE(slot.free);
                EXPECT_EQ(slot.occupantTenant, d.evictTenant);
                EXPECT_LT(slot.occupantPriority, spec.priority)
                    << "evicted a tenant of equal/higher priority";
            }
        } else {
            // Refusals are explicit, never silent.
            EXPECT_NE(d.reject, PlacementReject::None);
            if (d.reject == PlacementReject::NoCapacity) {
                for (const PlacementCardView &c : fleet) {
                    if (!c.alive || !cardCarries(spec, c) ||
                        aaBlocked(spec, c))
                        continue;
                    for (const PlacementSlotView &s : c.slots)
                        EXPECT_FALSE(spec.reqs.roleLogic.fitsIn(
                            s.capacity))
                            << "capacity existed on " << c.card;
                }
            }
            if (d.reject == PlacementReject::FleetFull) {
                for (const PlacementCardView &c : fleet) {
                    if (!c.alive || !cardCarries(spec, c) ||
                        aaBlocked(spec, c))
                        continue;
                    for (const PlacementSlotView &s : c.slots) {
                        if (!spec.reqs.roleLogic.fitsIn(s.capacity))
                            continue;
                        EXPECT_FALSE(s.free);
                        EXPECT_GE(s.occupantPriority, spec.priority);
                    }
                }
            }
        }
    }
}

TEST(PlacementProperty, DecisionsAreDeterministic)
{
    PlacementEngine engine;
    for (std::uint64_t round = 0; round < 100; ++round) {
        const std::uint64_t seed = mix64(77, round);
        const std::vector<PlacementCardView> fleet =
            randomFleet(seed);
        const FleetRoleSpec spec = randomSpec(seed ^ 0x5a5a);
        const PlacementDecision a = engine.decide(spec, fleet);
        const PlacementDecision b = engine.decide(spec, fleet);
        EXPECT_EQ(a.placed, b.placed);
        EXPECT_EQ(a.card, b.card);
        EXPECT_EQ(a.slot, b.slot);
        EXPECT_EQ(a.evictTenant, b.evictTenant);
        EXPECT_EQ(a.reject, b.reject);
    }
}

TEST(PlacementProperty, PriorityEvictionIsMonotone)
{
    // Raising the requester's priority never turns a success into a
    // refusal, on the same fleet snapshot.
    PlacementEngine engine;
    for (std::uint64_t round = 0; round < 200; ++round) {
        const std::uint64_t seed = mix64(1234, round);
        const std::vector<PlacementCardView> fleet =
            randomFleet(seed);
        FleetRoleSpec spec = randomSpec(seed ^ 0xfeed);
        bool placed_below = false;
        for (unsigned p = 0; p < 6; ++p) {
            spec.priority = p;
            const PlacementDecision d = engine.decide(spec, fleet);
            if (placed_below) {
                EXPECT_TRUE(d.placed)
                    << "priority " << p
                    << " refused where a lower priority placed";
            }
            placed_below = placed_below || d.placed;
        }
    }
}

TEST(PlacementProperty, EvictsTheWeakestOccupant)
{
    // Two occupied slots, priorities 1 and 2; a priority-3 request
    // with no free slot must displace the priority-1 tenant.
    PlacementCardView card;
    card.card = "card0";
    card.device = &device(0);
    const ResourceVector cap{3000, 6000, 16, 0, 8};
    for (unsigned s = 0; s < 2; ++s) {
        PlacementSlotView slot;
        slot.capacity = cap;
        slot.free = false;
        slot.occupantTenant = s == 0 ? "strong" : "weak";
        slot.occupantPriority = s == 0 ? 2 : 1;
        card.slots.push_back(std::move(slot));
    }
    FleetRoleSpec spec;
    spec.tenant = "vip";
    spec.reqs = TenantRole::lightRequirements("kv", 2000);
    spec.priority = 3;

    const PlacementDecision d = PlacementEngine().decide(spec, {card});
    ASSERT_TRUE(d.placed);
    EXPECT_EQ(d.evictTenant, "weak");
    EXPECT_EQ(d.slot, 1u);
}

TEST(PlacementProperty, MissingPeripheralIsExplicit)
{
    // DeviceC carries no memory peripheral: a memory-hungry role
    // must be refused with MissingPeripheral, not silently dropped.
    PlacementCardView card;
    card.card = "card0";
    card.device = &DeviceDatabase::instance().byName("DeviceC");
    PlacementSlotView slot;
    slot.capacity = ResourceVector{8000, 16000, 32, 0, 16};
    card.slots.push_back(std::move(slot));

    FleetRoleSpec spec;
    spec.reqs = TenantRole::lightRequirements("kv", 2000);
    spec.reqs.needsMemory = true;
    spec.reqs.memoryBandwidthGBps = 20.0;

    const PlacementDecision d = PlacementEngine().decide(spec, {card});
    EXPECT_FALSE(d.placed);
    EXPECT_EQ(d.reject, PlacementReject::MissingPeripheral);

    // HBM-class bandwidth additionally excludes every DDR-only card.
    spec.reqs.memoryBandwidthGBps = 90.0;
    PlacementCardView ddr = card;
    ddr.device = &DeviceDatabase::instance().byName("DeviceB");
    const PlacementDecision d2 =
        PlacementEngine().decide(spec, {ddr});
    EXPECT_FALSE(d2.placed);
    EXPECT_EQ(d2.reject, PlacementReject::MissingPeripheral);
}

TEST(PlacementProperty, FullFleetRejectsExplicitly)
{
    // Every slot taken by equal-priority tenants: the reject reason
    // must name the condition (FleetFull), not claim missing
    // capacity or peripherals.
    std::vector<PlacementCardView> fleet;
    for (unsigned c = 0; c < 3; ++c) {
        PlacementCardView card;
        card.card = "card" + std::to_string(c);
        card.device = &device(c);
        for (unsigned s = 0; s < 2; ++s) {
            PlacementSlotView slot;
            slot.capacity = ResourceVector{4000, 8000, 16, 0, 8};
            slot.free = false;
            slot.occupantTenant = "occ";
            slot.occupantPriority = 1;
            card.slots.push_back(std::move(slot));
        }
        fleet.push_back(std::move(card));
    }
    FleetRoleSpec spec;
    spec.reqs = TenantRole::lightRequirements("kv", 2000);
    spec.priority = 1;  // equal: may not evict
    const PlacementDecision d = PlacementEngine().decide(spec, fleet);
    EXPECT_FALSE(d.placed);
    EXPECT_EQ(d.reject, PlacementReject::FleetFull);

    // An all-dead fleet is FleetFull too, not a peripheral problem.
    for (PlacementCardView &c : fleet)
        c.alive = false;
    const PlacementDecision d2 = PlacementEngine().decide(spec, fleet);
    EXPECT_FALSE(d2.placed);
    EXPECT_EQ(d2.reject, PlacementReject::FleetFull);
}

TEST(PlacementProperty, LatencyHistoryDeprioritizesSlowCards)
{
    // Identical cards except recorded placement latency: the quiet
    // card wins, so the obs-plane series genuinely steers decisions.
    std::vector<PlacementCardView> fleet;
    for (unsigned c = 0; c < 2; ++c) {
        PlacementCardView card;
        card.card = "card" + std::to_string(c);
        card.device = &device(0);
        card.placementLatencyCycles = c == 0 ? 4'000'000.0 : 0.0;
        PlacementSlotView slot;
        slot.capacity = ResourceVector{3000, 6000, 16, 0, 8};
        card.slots.push_back(std::move(slot));
        fleet.push_back(std::move(card));
    }
    FleetRoleSpec spec;
    spec.reqs = TenantRole::lightRequirements("kv", 2000);
    const PlacementDecision d = PlacementEngine().decide(spec, fleet);
    ASSERT_TRUE(d.placed);
    EXPECT_EQ(d.card, "card1");
}

} // namespace
} // namespace harmonia
