/**
 * @file
 * Fleet soak: 10k sequential place/evict/migrate operations against a
 * two-card fleet. The suite asserts the manager leaks nothing — every
 * PR slot returns to Free, the control kernels hold no stale role
 * targets, the tenant map stays bounded (names recycle), and journal
 * growth stays bounded by the periodic checkpoint drain.
 */

#include <gtest/gtest.h>

#include "fleet/fleet_manager.h"
#include "fleet/tenant_role.h"

namespace harmonia {
namespace {

std::uint64_t
mix64(std::uint64_t seed, std::uint64_t counter)
{
    std::uint64_t z = seed + counter * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

TEST(FleetSoak, TenThousandOpsLeakNothing)
{
    Engine engine;
    engine.setIdleFastForward(true);
    // Small slots keep each reconfiguration cheap so 10k operations
    // stay fast; the leak checks don't depend on slot size.
    std::vector<FleetCardSpec> specs(2);
    specs[0].device = "DeviceA";
    specs[0].prSlots = 2;
    specs[0].slotCapacity = ResourceVector{1000, 2200, 8, 0, 4};
    specs[1].device = "DeviceD";
    specs[1].prSlots = 2;
    specs[1].slotCapacity = ResourceVector{1000, 2200, 8, 0, 4};
    FleetManager fleet(engine, specs);

    const RoleRequirements reqs =
        TenantRole::lightRequirements("kv", 600);
    fleet.registerRoleKind("kv", reqs, [reqs] {
        return std::make_unique<TenantRole>("kv", reqs);
    });

    const std::size_t total_slots = 4;
    std::vector<std::size_t> kernel_baseline;
    for (std::size_t c = 0; c < fleet.cardCount(); ++c)
        kernel_baseline.push_back(
            fleet.cardShell(c).kernel().targetCount());

    // Tenant names recycle through a fixed pool: re-admitting an
    // evicted name must start it from scratch, not accumulate state.
    const char *pool[] = {"s0", "s1", "s2", "s3", "s4", "s5"};
    constexpr std::size_t kPool = 6;
    std::uint64_t ops = 0;
    std::uint64_t placed_ops = 0, evict_ops = 0, migrate_ops = 0;

    for (std::uint64_t step = 0; ops < 10'000; ++step) {
        const std::uint64_t r = mix64(99, step);
        const std::string name = pool[r % kPool];
        const FleetManager::TenantState state =
            fleet.hasTenant(name)
                ? fleet.tenantState(name)
                : FleetManager::TenantState::Evicted;

        if (state != FleetManager::TenantState::Placed) {
            FleetRoleSpec spec;
            spec.tenant = name;
            spec.kind = "kv";
            spec.priority = static_cast<unsigned>((r >> 8) % 3);
            if (fleet.admit(spec).placed)
                ++placed_ops;
            ++ops;
        } else if ((r >> 16) % 3 == 0) {
            if (fleet.migrate(name).placed)
                ++migrate_ops;
            ++ops;
        } else {
            EXPECT_TRUE(fleet.evict(name));
            ++evict_ops;
            ++ops;
        }

        if ((r >> 24) % 4 == 0 &&
            fleet.hasTenant(name) &&
            fleet.tenantState(name) ==
                FleetManager::TenantState::Placed)
            fleet.call(name, kCmdTableWrite,
                       {static_cast<std::uint32_t>(r % 16),
                        static_cast<std::uint32_t>(r >> 32) | 1u});

        if (step % 16 == 0) {
            fleet.poll();
            engine.runFor(1'000'000);
        }
        // No slot is ever lost mid-churn: every slot is either free
        // or owned by a live tenant.
        if (step % 512 == 0) {
            std::size_t owned = 0;
            for (const char *t : pool)
                if (fleet.hasTenant(t) &&
                    fleet.tenantState(t) ==
                        FleetManager::TenantState::Placed)
                    ++owned;
            EXPECT_EQ(fleet.freeSlots(), total_slots - owned);
        }
    }

    EXPECT_GT(placed_ops, 1000u);
    EXPECT_GT(evict_ops, 1000u);
    EXPECT_GT(migrate_ops, 100u);

    // Journals stay bounded by the periodic checkpoint drain.
    EXPECT_LE(fleet.journalHighWater(), 256u);

    // The tenant map recycles names instead of growing.
    EXPECT_LE(fleet.tenantCount(), kPool);

    // Drain the fleet: every PR slot must return to Free and every
    // control kernel to its pre-churn target table — no stale
    // UnifiedControlKernel role targets, no leaked slots.
    for (const char *t : pool) {
        if (fleet.hasTenant(t) &&
            fleet.tenantState(t) ==
                FleetManager::TenantState::Placed) {
            EXPECT_TRUE(fleet.evict(t));
        }
    }
    EXPECT_EQ(fleet.freeSlots(), total_slots);
    EXPECT_EQ(fleet.placedCount(), 0u);
    for (std::size_t c = 0; c < fleet.cardCount(); ++c) {
        for (std::size_t s = 0;
             s < fleet.cardPr(c).slotCount(); ++s)
            EXPECT_EQ(fleet.cardPr(c).slotState(s),
                      PrSlotState::Empty);
        EXPECT_EQ(fleet.cardShell(c).kernel().targetCount(),
                  kernel_baseline[c])
            << "stale command targets on " << fleet.cardName(c);
    }
}

} // namespace
} // namespace harmonia
