#include <gtest/gtest.h>

#include "common/json.h"
#include "sim/trace.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/profiler.h"

namespace harmonia {
namespace {

struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

/** One root with two children and a grandchild, on distinct tracks. */
void
recordTree(std::uint64_t corr)
{
    Trace &t = Trace::instance();
    const SpanId root = t.beginSpan(0, "driver", "call", "command",
                                    TraceContext{0, corr});
    t.completeSpan(10, 40, "kernel", "decode", "command",
                   TraceContext{root, corr});
    t.completeSpan(50, 90, "wire", "transfer", "wire",
                   TraceContext{root, corr});
    t.endSpan(root, 100);
}

TEST(Profiler, FoldComputesSelfAndTotalPerTrack)
{
    TraceGuard guard;
    Profiler prof;
    recordTree(1);
    EXPECT_EQ(prof.fold(), 3u);

    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.size(), 3u);  // sorted by (who, cat)
    EXPECT_EQ(snap[0].who, "driver");
    EXPECT_EQ(snap[0].totalTicks, 100u);
    // Root self = 100 - (30 + 40) direct children.
    EXPECT_EQ(snap[0].selfTicks, 30u);
    EXPECT_EQ(snap[1].who, "kernel");
    EXPECT_EQ(snap[1].selfTicks, 30u);
    EXPECT_EQ(snap[2].who, "wire");
    EXPECT_EQ(snap[2].selfTicks, 40u);

    // The telescoping identity: self times sum to the root duration.
    Tick self_sum = 0;
    for (const ProfileEntry &e : snap)
        self_sum += e.selfTicks;
    EXPECT_EQ(self_sum, 100u);
    EXPECT_EQ(prof.windowBegin(), 0u);
    EXPECT_EQ(prof.windowEnd(), 100u);
}

TEST(Profiler, FoldIsIncrementalAndNeverDoubleCounts)
{
    TraceGuard guard;
    Profiler prof;
    recordTree(1);
    EXPECT_EQ(prof.fold(), 3u);
    EXPECT_EQ(prof.fold(), 0u);  // watermark: nothing new

    Trace::instance().completeSpan(200, 250, "kernel", "decode",
                                   "command");
    EXPECT_EQ(prof.fold(), 1u);
    const auto snap = prof.snapshot();
    // The kernel track accumulated exactly one more span.
    for (const ProfileEntry &e : snap)
        if (e.who == "kernel") {
            EXPECT_EQ(e.spans, 2u);
            EXPECT_EQ(e.totalTicks, 80u);
        }
}

TEST(Profiler, ResetSkipsEverythingRecordedSoFar)
{
    TraceGuard guard;
    Profiler prof;
    recordTree(1);
    prof.reset();
    EXPECT_EQ(prof.fold(), 0u);
    EXPECT_TRUE(prof.snapshot().empty());

    recordTree(2);
    EXPECT_EQ(prof.fold(), 3u);
    EXPECT_EQ(prof.snapshot().size(), 3u);
}

TEST(Profiler, OverlappingChildrenClampSelfAtZero)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const SpanId root =
        t.beginSpan(0, "p", "root", "x", TraceContext{0, 9});
    // Two children that together exceed the parent's duration.
    t.completeSpan(0, 80, "c", "a", "y", TraceContext{root, 9});
    t.completeSpan(10, 90, "c", "b", "y", TraceContext{root, 9});
    t.endSpan(root, 100);

    Profiler prof;
    prof.fold();
    for (const ProfileEntry &e : prof.snapshot())
        if (e.who == "p")
            EXPECT_EQ(e.selfTicks, 0u);  // clamped, not underflowed
}

TEST(Profiler, OccupancyIsTrackTimeOverWindow)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    t.completeSpan(0, 100, "a", "x", "cat");
    t.completeSpan(100, 200, "b", "y", "cat");
    Profiler prof;
    prof.fold();
    const auto snap = prof.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_DOUBLE_EQ(snap[0].occupancy, 0.5);
    EXPECT_DOUBLE_EQ(snap[1].occupancy, 0.5);
}

TEST(Profiler, RegisterTelemetryPublishesPerTrackGauges)
{
    TraceGuard guard;
    MetricsRegistry reg;
    Profiler prof;
    recordTree(1);
    prof.fold();
    prof.registerTelemetry(reg, "shellA/profile");

    double kernel_self = -1, driver_total = -1;
    for (const MetricSample &s : reg.snapshot()) {
        if (s.name == "shellA/profile/kernel/command/self_ticks")
            kernel_self = s.value;
        if (s.name == "shellA/profile/driver/command/total_ticks")
            driver_total = s.value;
    }
    EXPECT_DOUBLE_EQ(kernel_self, 30.0);
    EXPECT_DOUBLE_EQ(driver_total, 100.0);

    // Tracks discovered by a later fold register themselves too.
    Trace::instance().completeSpan(300, 310, "rbb0", "exec", "rbb");
    prof.fold();
    bool seen = false;
    for (const MetricSample &s : reg.snapshot())
        if (s.name == "shellA/profile/rbb0/rbb/total_ticks") {
            seen = true;
            EXPECT_DOUBLE_EQ(s.value, 10.0);
        }
    EXPECT_TRUE(seen);
}

TEST(Profiler, ToJsonIsParsableAndComplete)
{
    TraceGuard guard;
    Profiler prof;
    recordTree(1);
    prof.fold();
    // The profile JSON must survive its own parser losslessly.
    const std::string text = prof.toJson();
    std::string err;
    const JsonValue doc = JsonValue::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    ASSERT_EQ(doc.get("entries").size(), 3u);
    EXPECT_EQ(doc.get("entries").at(0).get("who").asString(),
              "driver");
    EXPECT_EQ(doc.get("entries").at(0).get("self_ticks").asU64(),
              30u);
}

TEST(SpanTree, ForCorrFiltersAndSortsByBegin)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    t.completeSpan(50, 60, "other", "noise", "x",
                   TraceContext{0, 8});
    recordTree(7);
    const auto tree = spanTreeForCorr(t, 7);
    ASSERT_EQ(tree.size(), 3u);
    EXPECT_EQ(tree[0].who, "driver");  // earliest begin first
    EXPECT_EQ(tree[1].who, "kernel");
    EXPECT_EQ(tree[2].who, "wire");
    // Correlation 0 means "untraced" and never matches anything.
    EXPECT_TRUE(spanTreeForCorr(t, 0).empty());
}

TEST(SpanTree, RenderIndentsChildrenUnderParents)
{
    TraceGuard guard;
    recordTree(3);
    const std::string text =
        renderSpanTree(spanTreeForCorr(Trace::instance(), 3));
    EXPECT_NE(text.find("driver/command"), std::string::npos);
    EXPECT_NE(text.find("\n  kernel/command"), std::string::npos);
    EXPECT_NE(text.find("\n  wire/wire"), std::string::npos);
    EXPECT_NE(text.find("(self 30)"), std::string::npos);
}

TEST(TraceGauges, ExposeLeakAndDropCounters)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    MetricsRegistry reg;
    ScopedMetrics handle(reg);
    registerTraceGauges(handle, "trace", t);

    t.beginSpan(1, "a", "open_forever");
    t.endSpan(999'999, 5);  // unmatched
    t.setMaxOpenSpans(1);
    EXPECT_EQ(t.beginSpan(2, "b", "dropped"), 0u);
    t.setMaxOpenSpans(Trace::kMaxOpenSpans);

    std::map<std::string, double> vals;
    for (const MetricSample &s : reg.snapshot())
        vals[s.name] = s.value;
    EXPECT_DOUBLE_EQ(vals["trace/open_spans"], 1.0);
    EXPECT_DOUBLE_EQ(vals["trace/unmatched_ends"], 1.0);
    EXPECT_DOUBLE_EQ(vals["trace/dropped_open_spans"], 1.0);
    EXPECT_DOUBLE_EQ(vals["trace/span_capacity"],
                     static_cast<double>(t.capacity()));
}

} // namespace
} // namespace harmonia
