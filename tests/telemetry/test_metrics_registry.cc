#include <gtest/gtest.h>

#include "common/stats.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {
namespace {

TEST(MetricsRegistry, SnapshotSortedAndTyped)
{
    MetricsRegistry reg;
    Counter c;
    c.inc(7);
    RateMeter m;
    m.record(0);
    m.record(1'000'000, 999);  // 1000 events over 1 us
    Histogram h(10, 8);
    h.sample(15);

    reg.addCounter("z/count", &c);
    reg.addRate("a/rate", &m);
    reg.addHistogram("m/lat", &h);
    reg.addGauge("b/depth", [] { return 3.5; });

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].name, "a/rate");
    EXPECT_EQ(snap[0].kind, MetricKind::Rate);
    EXPECT_DOUBLE_EQ(snap[0].value, 1e9);
    EXPECT_EQ(snap[1].name, "b/depth");
    EXPECT_DOUBLE_EQ(snap[1].value, 3.5);
    EXPECT_EQ(snap[2].name, "m/lat");
    EXPECT_EQ(snap[2].kind, MetricKind::Histogram);
    EXPECT_EQ(snap[2].count, 1u);
    EXPECT_EQ(snap[2].max, 15u);
    EXPECT_EQ(snap[3].name, "z/count");
    EXPECT_DOUBLE_EQ(snap[3].value, 7.0);
}

TEST(MetricsRegistry, GroupExpandsLazilyCreatedCounters)
{
    MetricsRegistry reg;
    StatGroup g("mod");
    g.counter("early").inc();
    reg.addGroup("shell/net0", &g);
    // Counters created after registration still export: groups are
    // enumerated at snapshot time.
    g.counter("late").inc(2);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "shell/net0/early");
    EXPECT_EQ(snap[1].name, "shell/net0/late");
    EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
}

TEST(MetricsRegistry, NameCollisionsGetSuffixes)
{
    MetricsRegistry reg;
    Counter a, b, c;
    reg.addCounter("shell/ctr", &a);
    reg.addCounter("shell/ctr", &b);
    reg.addCounter("shell/ctr", &c);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "shell/ctr");
    EXPECT_EQ(snap[1].name, "shell/ctr~2");
    EXPECT_EQ(snap[2].name, "shell/ctr~3");
}

TEST(MetricsRegistry, RemoveIsIdempotent)
{
    MetricsRegistry reg;
    Counter c;
    const MetricId id = reg.addCounter("x", &c);
    EXPECT_EQ(reg.size(), 1u);
    reg.remove(id);
    EXPECT_EQ(reg.size(), 0u);
    reg.remove(id);  // stale id: no-op
    EXPECT_EQ(reg.size(), 0u);
}

TEST(ScopedMetrics, UnregistersOnDestruction)
{
    MetricsRegistry reg;
    Counter c;
    Histogram h(10, 4);
    {
        ScopedMetrics scoped(reg);
        scoped.addCounter("tmp/count", &c);
        scoped.addHistogram("tmp/lat", &h);
        EXPECT_EQ(reg.size(), 2u);
    }
    // A destroyed component leaves no dangling metric pointers.
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(ScopedMetrics, ResetRetargetsToAnotherRegistry)
{
    MetricsRegistry first, second;
    Counter c;
    ScopedMetrics scoped(first);
    scoped.addCounter("x", &c);
    EXPECT_EQ(first.size(), 1u);

    scoped.reset(second);
    EXPECT_EQ(first.size(), 0u);
    scoped.addCounter("x", &c);
    EXPECT_EQ(second.size(), 1u);
    scoped.release();
    EXPECT_EQ(second.size(), 0u);
}

TEST(MetricsRegistry, ManyShellsComeAndGo)
{
    // Teardown stress: interleaved registration scopes must leave the
    // registry empty and usable, mimicking tests that construct dozens
    // of shells against the global instance.
    MetricsRegistry reg;
    Counter c;
    for (int round = 0; round < 50; ++round) {
        ScopedMetrics a(reg), b(reg);
        a.addCounter("shell/ctr", &c);
        b.addCounter("shell/ctr", &c);  // collides -> ~2
        EXPECT_EQ(reg.size(), 2u);
        a.release();
        EXPECT_EQ(reg.size(), 1u);
        // The released base name is reusable immediately.
        b.addCounter("shell/ctr", &c);
        EXPECT_EQ(reg.size(), 2u);
    }
    EXPECT_EQ(reg.size(), 0u);
}

} // namespace
} // namespace harmonia
