#include <gtest/gtest.h>

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "sim/trace.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry_target.h"

namespace harmonia {
namespace {

/** Walk the List command until every metric has been enumerated. */
std::vector<std::pair<std::string, MetricKind>>
listAll(TelemetryTarget &target)
{
    std::vector<std::pair<std::string, MetricKind>> out;
    std::uint32_t start = 0;
    for (;;) {
        const CommandResult res =
            target.executeCommand(kCmdTelemetryList, {start});
        EXPECT_EQ(res.status, kCmdOk);
        const std::uint32_t total = res.data[0];
        const std::uint32_t k = res.data[1];
        std::size_t off = 2;
        for (std::uint32_t i = 0; i < k; ++i) {
            const auto kind =
                static_cast<MetricKind>(res.data[off + 1]);
            out.emplace_back(
                TelemetryTarget::unpackName(&res.data[off + 2]),
                kind);
            off += 2 + TelemetryTarget::kNameWords;
        }
        start += k;
        if (start >= total || k == 0)
            break;
    }
    return out;
}

std::uint64_t
u64At(const std::vector<std::uint32_t> &d, std::size_t i)
{
    return (static_cast<std::uint64_t>(d[i]) << 32) | d[i + 1];
}

TEST(TelemetryTarget, ListWalksWholeRegistryInBatches)
{
    MetricsRegistry reg;
    std::vector<Counter> counters(TelemetryTarget::kListBatch * 2 + 3);
    for (std::size_t i = 0; i < counters.size(); ++i)
        reg.addCounter(format("m/%02zu", i), &counters[i]);

    TelemetryTarget target(reg);
    const auto all = listAll(target);
    ASSERT_EQ(all.size(), counters.size());
    // List order is the registry's name-sorted snapshot order.
    EXPECT_EQ(all.front().first, "m/00");
    EXPECT_EQ(all.back().first,
              format("m/%02zu", counters.size() - 1));
}

TEST(TelemetryTarget, SnapshotMatchesInProcessRegistry)
{
    MetricsRegistry reg;
    Counter c;
    c.inc(123456789);
    Histogram h(1000, 64);
    for (std::uint64_t v : {1'000ull, 5'000ull, 60'000ull})
        h.sample(v);
    reg.addCounter("a/count", &c);
    reg.addGauge("b/depth", [] { return 2.25; });
    reg.addHistogram("c/lat", &h);

    TelemetryTarget target(reg);
    const std::vector<MetricSample> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);

    // Counter: exact 64-bit value.
    CommandResult r = target.executeCommand(kCmdTelemetrySnapshot, {0});
    ASSERT_EQ(r.status, kCmdOk);
    EXPECT_EQ(r.data[0],
              static_cast<std::uint32_t>(MetricKind::Counter));
    EXPECT_EQ(u64At(r.data, 1), 123456789u);

    // Gauge: milli fixed-point.
    r = target.executeCommand(kCmdTelemetrySnapshot, {1});
    ASSERT_EQ(r.status, kCmdOk);
    EXPECT_EQ(r.data[0],
              static_cast<std::uint32_t>(MetricKind::Gauge));
    EXPECT_EQ(u64At(r.data, 1), 2250u);

    // Histogram: count/min/max exact, mean/p50/p99 in millis.
    r = target.executeCommand(kCmdTelemetrySnapshot, {2});
    ASSERT_EQ(r.status, kCmdOk);
    EXPECT_EQ(r.data[0],
              static_cast<std::uint32_t>(MetricKind::Histogram));
    EXPECT_EQ(u64At(r.data, 1), snap[2].count);
    EXPECT_EQ(u64At(r.data, 3), snap[2].min);
    EXPECT_EQ(u64At(r.data, 5), snap[2].max);
    EXPECT_EQ(u64At(r.data, 7),
              static_cast<std::uint64_t>(snap[2].mean * 1000 + 0.5));
    EXPECT_EQ(u64At(r.data, 9),
              static_cast<std::uint64_t>(snap[2].p50 * 1000 + 0.5));
    EXPECT_EQ(u64At(r.data, 11),
              static_cast<std::uint64_t>(snap[2].p99 * 1000 + 0.5));
}

TEST(TelemetryTarget, BadIndexAndUnknownCodeAreRejected)
{
    MetricsRegistry reg;
    TelemetryTarget target(reg);
    EXPECT_EQ(target.executeCommand(kCmdTelemetrySnapshot, {}).status,
              kCmdBadArgument);
    EXPECT_EQ(target.executeCommand(kCmdTelemetrySnapshot, {0}).status,
              kCmdBadArgument);
    EXPECT_EQ(target.executeCommand(kCmdTableWrite, {}).status,
              kCmdUnknownCode);
}

TEST(TelemetryTarget, StatusReadReportsRegistrySize)
{
    MetricsRegistry reg;
    Counter c;
    reg.addCounter("x", &c);
    reg.addCounter("y", &c);
    TelemetryTarget target(reg);
    const CommandResult r =
        target.executeCommand(kCmdModuleStatusRead, {});
    ASSERT_EQ(r.status, kCmdOk);
    EXPECT_EQ(r.data[0], 2u);
}

TEST(TelemetryTarget, LongNamesTruncateCleanly)
{
    MetricsRegistry reg;
    Counter c;
    const std::string long_name(TelemetryTarget::kNameWords * 4 + 20,
                                'x');
    reg.addCounter(long_name, &c);
    TelemetryTarget target(reg);
    const auto all = listAll(target);
    ASSERT_EQ(all.size(), 1u);
    // Truncated to the packed width, never garbled.
    EXPECT_EQ(all[0].first,
              std::string(TelemetryTarget::kNameWords * 4, 'x'));
}

struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST(TelemetryTarget, ProfileCommandsNeedAnAttachedProfiler)
{
    MetricsRegistry reg;
    TelemetryTarget target(reg);
    EXPECT_EQ(target.executeCommand(kCmdProfileSnapshot, {}).status,
              kCmdInternalError);
    EXPECT_EQ(target.executeCommand(kCmdProfileReset, {}).status,
              kCmdInternalError);
}

TEST(TelemetryTarget, ProfileSnapshotWalksTracksInBatches)
{
    TraceGuard guard;
    // More tracks than one batch, so the walk must paginate.
    const std::size_t tracks = TelemetryTarget::kProfileBatch + 2;
    for (std::size_t i = 0; i < tracks; ++i)
        Trace::instance().completeSpan(
            i * 100, i * 100 + 10 + i, format("mod%zu", i), "work",
            "cat");

    MetricsRegistry reg;
    Profiler prof;
    TelemetryTarget target(reg);
    target.attachProfiler(&prof);

    std::vector<std::pair<std::string, std::uint64_t>> seen;
    std::uint32_t start = 0;
    for (;;) {
        // ProfileSnapshot folds the trace itself: no prior fold().
        const CommandResult res =
            target.executeCommand(kCmdProfileSnapshot, {start});
        ASSERT_EQ(res.status, kCmdOk);
        const std::uint32_t total = res.data[0];
        const std::uint32_t k = res.data[1];
        EXPECT_EQ(total, tracks);
        EXPECT_LE(k, TelemetryTarget::kProfileBatch);
        std::size_t off = 2;
        for (std::uint32_t i = 0; i < k; ++i) {
            EXPECT_EQ(res.data[off], start + i);  // index echo
            const std::uint64_t spans = u64At(res.data, off + 1);
            const std::uint64_t self = u64At(res.data, off + 5);
            EXPECT_EQ(spans, 1u);
            EXPECT_EQ(u64At(res.data, off + 3), self);  // no children
            seen.emplace_back(
                TelemetryTarget::unpackName(&res.data[off + 7]),
                self);
            off += 7 + TelemetryTarget::kNameWords;
        }
        start += k;
        if (start >= total || k == 0)
            break;
    }

    ASSERT_EQ(seen.size(), tracks);
    // Names are "who|cat"; self times match what was recorded.
    EXPECT_EQ(seen[0].first, "mod0|cat");
    EXPECT_EQ(seen[0].second, 10u);
    EXPECT_EQ(seen[tracks - 1].first,
              format("mod%zu|cat", tracks - 1));
    EXPECT_EQ(seen[tracks - 1].second, 10u + tracks - 1);
}

TEST(TelemetryTarget, ProfileResetDropsAggregatesOverTheWire)
{
    TraceGuard guard;
    Trace::instance().completeSpan(0, 50, "mod", "work", "cat");

    MetricsRegistry reg;
    Profiler prof;
    TelemetryTarget target(reg);
    target.attachProfiler(&prof);

    CommandResult res =
        target.executeCommand(kCmdProfileSnapshot, {0});
    ASSERT_EQ(res.status, kCmdOk);
    EXPECT_EQ(res.data[0], 1u);

    EXPECT_EQ(target.executeCommand(kCmdProfileReset, {}).status,
              kCmdOk);
    res = target.executeCommand(kCmdProfileSnapshot, {0});
    ASSERT_EQ(res.status, kCmdOk);
    EXPECT_EQ(res.data[0], 0u);  // aggregates gone, spans skipped
}

} // namespace
} // namespace harmonia
