#include <gtest/gtest.h>

#include "sim/trace.h"
#include "telemetry/exporter.h"

namespace harmonia {
namespace {

struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST(ChromeTraceExport, GoldenShapeForSpansAndEvents)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const SpanId s = t.beginSpan(2'000'000, "wrap0", "ingress",
                                 "wrapper");
    t.endSpan(s, 5'000'000);
    t.record(3'000'000, "uck", "executed ModuleInit");

    const std::string json = toChromeTraceJson(t);

    // Structural envelope.
    EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\","
                        "\"traceEvents\":[\n"),
              0u);
    EXPECT_NE(json.find("\n]}\n"), std::string::npos);
    // The completed span: "X" phase, ts in us (2 us), dur 3 us.
    EXPECT_NE(json.find("\"name\":\"ingress\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"wrapper\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":2.000000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":3.000000"), std::string::npos);
    // The instant event.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("executed ModuleInit"), std::string::npos);
    // Thread-name metadata for both tracks.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"wrap0\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"uck\"}"),
              std::string::npos);
}

TEST(ChromeTraceExport, OpenSpansAreOmittedNotCorrupting)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    t.beginSpan(1'000, "wrap", "never_closed", "wrapper");
    const SpanId s = t.beginSpan(2'000, "wrap", "closed", "wrapper");
    t.endSpan(s, 3'000);
    t.endSpan(999'999, 4'000);  // unbalanced end

    const std::string json = toChromeTraceJson(t);
    EXPECT_EQ(json.find("never_closed"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"closed\""), std::string::npos);
    EXPECT_EQ(t.openSpanCount(), 1u);
    EXPECT_EQ(t.unmatchedEnds(), 1u);
}

TEST(ChromeTraceExport, EscapesQuotesInNames)
{
    TraceGuard guard;
    Trace::instance().record(1, "who", "said \"hi\"");
    const std::string json = toChromeTraceJson(Trace::instance());
    EXPECT_NE(json.find("said \\\"hi\\\""), std::string::npos);
}

TEST(MetricsTextExport, CountersGaugesAndSummaries)
{
    std::vector<MetricSample> samples;
    MetricSample c;
    c.name = "shell/net0/rx_packets";
    c.kind = MetricKind::Counter;
    c.value = 42;
    samples.push_back(c);

    MetricSample r;
    r.name = "shell/net0/rx_pps";
    r.kind = MetricKind::Rate;
    r.value = 1.5e6;
    samples.push_back(r);

    MetricSample h;
    h.name = "shell/net0/wrapper/ingress_latency_ps";
    h.kind = MetricKind::Histogram;
    h.count = 10;
    h.min = 1000;
    h.max = 9000;
    h.mean = 4500.0;
    h.p50 = 4000.0;
    h.p99 = 9000.0;
    samples.push_back(h);

    const std::string text = toMetricsText(samples);
    EXPECT_NE(text.find("# TYPE harmonia_shell_net0_rx_packets "
                        "counter"),
              std::string::npos);
    EXPECT_NE(text.find("harmonia_shell_net0_rx_packets 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE harmonia_shell_net0_rx_pps gauge"),
              std::string::npos);
    const std::string hn =
        "harmonia_shell_net0_wrapper_ingress_latency_ps";
    EXPECT_NE(text.find("# TYPE " + hn + " summary"),
              std::string::npos);
    EXPECT_NE(text.find(hn + "_count 10"), std::string::npos);
    EXPECT_NE(text.find(hn + "_min 1000"), std::string::npos);
    EXPECT_NE(text.find(hn + "_max 9000"), std::string::npos);
    EXPECT_NE(text.find(hn + "{quantile=\"0.5\"} 4000"),
              std::string::npos);
    EXPECT_NE(text.find(hn + "{quantile=\"0.99\"} 9000"),
              std::string::npos);
}

TEST(MetricsJsonLinesExport, OneObjectPerLine)
{
    std::vector<MetricSample> samples;
    MetricSample g;
    g.name = "shell/host0/active_queues";
    g.kind = MetricKind::Gauge;
    g.value = 64;
    samples.push_back(g);
    MetricSample h;
    h.name = "shell/uck/service_time_ps";
    h.kind = MetricKind::Histogram;
    h.count = 3;
    samples.push_back(h);

    const std::string out = toMetricsJsonLines(samples);
    EXPECT_NE(out.find("{\"name\":\"shell/host0/active_queues\","
                       "\"kind\":\"gauge\",\"value\":64}"),
              std::string::npos);
    EXPECT_NE(out.find("\"kind\":\"histogram\",\"count\":3"),
              std::string::npos);
    // Exactly one line per sample.
    std::size_t lines = 0;
    for (char ch : out)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, samples.size());
}

} // namespace
} // namespace harmonia
