#include <gtest/gtest.h>

#include "common/json.h"
#include "sim/trace.h"
#include "telemetry/exporter.h"

namespace harmonia {
namespace {

struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST(ChromeTraceExport, GoldenShapeForSpansAndEvents)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const SpanId s = t.beginSpan(2'000'000, "wrap0", "ingress",
                                 "wrapper");
    t.endSpan(s, 5'000'000);
    t.record(3'000'000, "uck", "executed ModuleInit");

    const std::string json = toChromeTraceJson(t);

    // Structural envelope.
    EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\","
                        "\"traceEvents\":[\n"),
              0u);
    EXPECT_NE(json.find("\n]}\n"), std::string::npos);
    // The completed span: "X" phase, ts in us (2 us), dur 3 us.
    EXPECT_NE(json.find("\"name\":\"ingress\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"wrapper\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":2.000000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":3.000000"), std::string::npos);
    // The instant event.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("executed ModuleInit"), std::string::npos);
    // Thread-name metadata for both tracks.
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"wrap0\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"name\":\"uck\"}"),
              std::string::npos);
}

TEST(ChromeTraceExport, OpenSpansAreOmittedNotCorrupting)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    t.beginSpan(1'000, "wrap", "never_closed", "wrapper");
    const SpanId s = t.beginSpan(2'000, "wrap", "closed", "wrapper");
    t.endSpan(s, 3'000);
    t.endSpan(999'999, 4'000);  // unbalanced end

    const std::string json = toChromeTraceJson(t);
    EXPECT_EQ(json.find("never_closed"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"closed\""), std::string::npos);
    EXPECT_EQ(t.openSpanCount(), 1u);
    EXPECT_EQ(t.unmatchedEnds(), 1u);
}

TEST(ChromeTraceExport, EscapesQuotesInNames)
{
    TraceGuard guard;
    Trace::instance().record(1, "who", "said \"hi\"");
    const std::string json = toChromeTraceJson(Trace::instance());
    EXPECT_NE(json.find("said \\\"hi\\\""), std::string::npos);
}

TEST(ChromeTraceExport, CarriesCausalArgsAndParsesAsJson)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const std::uint64_t corr = t.newCorrelation();
    const SpanId root = t.beginSpan(1'000, "drv", "call", "command",
                                    TraceContext{0, corr});
    t.completeSpan(1'200, 1'800, "uck", "decode", "command",
                   TraceContext{root, corr});
    t.endSpan(root, 2'000);
    t.record(1'500, "uck", "note");

    const std::string json = toChromeTraceJson(t);
    // The whole export must be one valid JSON document.
    std::string err;
    const JsonValue doc = JsonValue::parse(json, &err);
    ASSERT_TRUE(err.empty()) << err;
    const JsonValue &events = doc.get("traceEvents");
    ASSERT_TRUE(events.isArray());

    // Every "X" span event carries span_id/parent/corr args; the
    // child points at the root and both share the correlation.
    bool saw_root = false, saw_child = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const JsonValue &e = events.at(i);
        if (e.get("ph").asString() != "X")
            continue;
        const JsonValue &args = e.get("args");
        EXPECT_EQ(args.get("corr").asU64(), corr);
        if (e.get("name").asString() == "call") {
            saw_root = true;
            EXPECT_EQ(args.get("span_id").asU64(), root);
            EXPECT_EQ(args.get("parent").asU64(), 0u);
        }
        if (e.get("name").asString() == "decode") {
            saw_child = true;
            EXPECT_EQ(args.get("parent").asU64(), root);
        }
    }
    EXPECT_TRUE(saw_root);
    EXPECT_TRUE(saw_child);
}

TEST(SpanJsonLines, RoundTripIsLossless)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const SpanId root = t.beginSpan(10, "drv \"A\"", "call", "command",
                                    TraceContext{0, 99});
    t.completeSpan(20, 30, "uck", "decode\nfast", "command",
                   TraceContext{root, 99});
    t.endSpan(root, 50);

    const std::string text = toSpanJsonLines(t);
    const std::vector<Trace::Span> back = spansFromJsonLines(text);
    const std::vector<Trace::Span> orig = t.spans();
    ASSERT_EQ(back.size(), orig.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].id, orig[i].id);
        EXPECT_EQ(back[i].parent, orig[i].parent);
        EXPECT_EQ(back[i].corr, orig[i].corr);
        EXPECT_EQ(back[i].begin, orig[i].begin);
        EXPECT_EQ(back[i].end, orig[i].end);
        EXPECT_EQ(back[i].who, orig[i].who);
        EXPECT_EQ(back[i].what, orig[i].what);
        EXPECT_EQ(back[i].cat, orig[i].cat);
    }
}

TEST(SpanJsonLines, MalformedLinesAreSkippedNotFatal)
{
    TraceGuard guard;
    Trace::instance().completeSpan(1, 2, "a", "b", "c");
    std::string text = toSpanJsonLines(Trace::instance());
    text += "this is not json\n{\"id\":\n\n";
    const auto back = spansFromJsonLines(text);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].who, "a");
}

TEST(MetricsTextExport, CountersGaugesAndSummaries)
{
    std::vector<MetricSample> samples;
    MetricSample c;
    c.name = "shell/net0/rx_packets";
    c.kind = MetricKind::Counter;
    c.value = 42;
    samples.push_back(c);

    MetricSample r;
    r.name = "shell/net0/rx_pps";
    r.kind = MetricKind::Rate;
    r.value = 1.5e6;
    samples.push_back(r);

    MetricSample h;
    h.name = "shell/net0/wrapper/ingress_latency_ps";
    h.kind = MetricKind::Histogram;
    h.count = 10;
    h.min = 1000;
    h.max = 9000;
    h.mean = 4500.0;
    h.p50 = 4000.0;
    h.p99 = 9000.0;
    samples.push_back(h);

    const std::string text = toMetricsText(samples);
    EXPECT_NE(text.find("# TYPE harmonia_shell_net0_rx_packets "
                        "counter"),
              std::string::npos);
    EXPECT_NE(text.find("harmonia_shell_net0_rx_packets 42"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE harmonia_shell_net0_rx_pps gauge"),
              std::string::npos);
    const std::string hn =
        "harmonia_shell_net0_wrapper_ingress_latency_ps";
    EXPECT_NE(text.find("# TYPE " + hn + " summary"),
              std::string::npos);
    EXPECT_NE(text.find(hn + "_count 10"), std::string::npos);
    EXPECT_NE(text.find(hn + "_min 1000"), std::string::npos);
    EXPECT_NE(text.find(hn + "_max 9000"), std::string::npos);
    EXPECT_NE(text.find(hn + "{quantile=\"0.5\"} 4000"),
              std::string::npos);
    EXPECT_NE(text.find(hn + "{quantile=\"0.99\"} 9000"),
              std::string::npos);
}

TEST(MetricsTextExport, NamesAreSanitizedToPrometheusCharset)
{
    // Slashes, dots, dashes, spaces and quotes are all outside the
    // Prometheus metric-name charset: each byte maps to '_', nothing
    // is dropped, and the harmonia_ prefix guards a leading digit.
    std::vector<MetricSample> samples;
    MetricSample c;
    c.name = "shell/net-0.rx \"pkts\"";
    c.kind = MetricKind::Counter;
    c.value = 7;
    samples.push_back(c);
    MetricSample d;
    d.name = "0weird";
    d.kind = MetricKind::Counter;
    d.value = 1;
    samples.push_back(d);

    const std::string text = toMetricsText(samples);
    EXPECT_NE(text.find("harmonia_shell_net_0_rx__pkts_ 7"),
              std::string::npos);
    EXPECT_NE(text.find("harmonia_0weird 1"), std::string::npos);
    // No raw separator characters survive into the exposition.
    EXPECT_EQ(text.find('/'), std::string::npos);
    EXPECT_EQ(text.find('"'), std::string::npos);
}

TEST(MetricsTextExport, EmptyAndSingleSampleHistograms)
{
    // Empty window: all summary fields render as zeros, and the
    // percentile lines still parse (quantile labels intact).
    std::vector<MetricSample> samples;
    MetricSample h;
    h.name = "lat";
    h.kind = MetricKind::Histogram;
    samples.push_back(h);

    std::string text = toMetricsText(samples);
    EXPECT_NE(text.find("harmonia_lat_count 0"), std::string::npos);
    EXPECT_NE(text.find("harmonia_lat{quantile=\"0.99\"} 0"),
              std::string::npos);

    // One sample: min == max, and both quantiles agree.
    Histogram one(1000, 16);
    one.sample(4'321);
    MetricSample s;
    s.name = "lat";
    s.kind = MetricKind::Histogram;
    s.count = one.count();
    s.min = one.min();
    s.max = one.max();
    s.mean = one.mean();
    s.p50 = one.percentile(50.0);
    s.p99 = one.percentile(99.0);
    text = toMetricsText({s});
    EXPECT_NE(text.find("harmonia_lat_count 1"), std::string::npos);
    EXPECT_NE(text.find("harmonia_lat_min 4321"), std::string::npos);
    EXPECT_NE(text.find("harmonia_lat_max 4321"), std::string::npos);
    EXPECT_EQ(s.p50, s.p99);
}

TEST(MetricsTextExport, ShellPrefixBecomesDeviceLabel)
{
    std::vector<MetricSample> samples;
    MetricSample a;
    a.name = "unified_DeviceA/uck/commands_executed";
    a.kind = MetricKind::Counter;
    a.value = 7;
    samples.push_back(a);
    MetricSample b = a;
    b.name = "unified_DeviceB/uck/commands_executed";
    b.value = 9;
    samples.push_back(b);
    MetricSample h;
    h.name = "unified_DeviceB/uck/service_time_ps";
    h.kind = MetricKind::Histogram;
    h.count = 4;
    h.min = 100;
    h.max = 900;
    h.mean = 400.0;
    h.p50 = 300.0;
    h.p99 = 900.0;
    samples.push_back(h);
    MetricSample fleet;
    fleet.name = "fleet/devices/alive";
    fleet.kind = MetricKind::Gauge;
    fleet.value = 4;
    samples.push_back(fleet);

    const std::string text = toMetricsText(samples);
    // Both cards land in one family: TYPE once, one series per card.
    const std::string family = "harmonia_uck_commands_executed";
    std::size_t types = 0;
    for (std::size_t at = text.find("# TYPE " + family + " counter");
         at != std::string::npos;
         at = text.find("# TYPE " + family + " counter", at + 1))
        ++types;
    EXPECT_EQ(types, 1u);
    EXPECT_NE(text.find(family + "{device=\"DeviceA\"} 7"),
              std::string::npos);
    EXPECT_NE(text.find(family + "{device=\"DeviceB\"} 9"),
              std::string::npos);
    // The flat spelling is gone entirely.
    EXPECT_EQ(text.find("harmonia_unified_"), std::string::npos);

    // Summary sub-series carry the label; quantile lines merge it
    // with the quantile label.
    const std::string hn = "harmonia_uck_service_time_ps";
    EXPECT_NE(text.find(hn + "_count{device=\"DeviceB\"} 4"),
              std::string::npos);
    EXPECT_NE(
        text.find(hn + "{device=\"DeviceB\",quantile=\"0.99\"} 900"),
        std::string::npos);

    // Fleet-scoped (non-shell) series stay unlabelled.
    EXPECT_NE(text.find("harmonia_fleet_devices_alive 4"),
              std::string::npos);
}

TEST(MetricsTextExport, FlatNamesOptionRestoresLegacyForm)
{
    std::vector<MetricSample> samples;
    MetricSample a;
    a.name = "unified_DeviceA/uck/commands_executed";
    a.kind = MetricKind::Counter;
    a.value = 7;
    samples.push_back(a);

    MetricsTextOptions opts;
    opts.flatNames = true;
    const std::string text = toMetricsText(samples, opts);
    EXPECT_NE(
        text.find(
            "harmonia_unified_DeviceA_uck_commands_executed 7"),
        std::string::npos);
    EXPECT_EQ(text.find("device=\""), std::string::npos);
}

TEST(MetricsTextExport, MalformedShellPrefixesStayFlat)
{
    // No slash, an empty device, and a prefix with nothing after the
    // slash are all left as plain (sanitized) names, never labelled.
    const char *names[] = {"unified_DeviceA", "unified_/x",
                           "unified_DeviceA/"};
    std::vector<MetricSample> samples;
    for (const char *n : names) {
        MetricSample s;
        s.name = n;
        s.kind = MetricKind::Counter;
        s.value = 1;
        samples.push_back(s);
    }
    const std::string text = toMetricsText(samples);
    EXPECT_EQ(text.find("device=\""), std::string::npos);
    EXPECT_NE(text.find("harmonia_unified_DeviceA 1"),
              std::string::npos);
    EXPECT_NE(text.find("harmonia_unified__x 1"), std::string::npos);
    EXPECT_NE(text.find("harmonia_unified_DeviceA_ 1"),
              std::string::npos);
}

TEST(MetricsJsonLinesExport, EscapesNamesIntoValidJson)
{
    std::vector<MetricSample> samples;
    MetricSample g;
    g.name = "odd\"name\\with\tctrl";
    g.kind = MetricKind::Gauge;
    g.value = 1.0;
    samples.push_back(g);

    const std::string out = toMetricsJsonLines(samples);
    std::string err;
    const JsonValue doc = JsonValue::parse(out, &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.get("name").asString(), "odd\"name\\with\tctrl");
}

TEST(MetricsJsonLinesExport, OneObjectPerLine)
{
    std::vector<MetricSample> samples;
    MetricSample g;
    g.name = "shell/host0/active_queues";
    g.kind = MetricKind::Gauge;
    g.value = 64;
    samples.push_back(g);
    MetricSample h;
    h.name = "shell/uck/service_time_ps";
    h.kind = MetricKind::Histogram;
    h.count = 3;
    samples.push_back(h);

    const std::string out = toMetricsJsonLines(samples);
    EXPECT_NE(out.find("{\"name\":\"shell/host0/active_queues\","
                       "\"kind\":\"gauge\",\"value\":64}"),
              std::string::npos);
    EXPECT_NE(out.find("\"kind\":\"histogram\",\"count\":3"),
              std::string::npos);
    // Exactly one line per sample.
    std::size_t lines = 0;
    for (char ch : out)
        if (ch == '\n')
            ++lines;
    EXPECT_EQ(lines, samples.size());
}

} // namespace
} // namespace harmonia
