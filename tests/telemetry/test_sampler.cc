#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"
#include "telemetry/sampler.h"

namespace harmonia {
namespace {

TEST(Sampler, PeriodHoldsInSimulatedTime)
{
    MetricsRegistry reg;
    Counter c;
    reg.addCounter("ctr", &c);

    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);  // 10 ns period
    Sampler sampler("sampler", reg, 50'000);     // scrape every 50 ns
    engine.add(&sampler, clk);

    engine.runCycles(clk, 100);  // 1 us
    // First edge at 10 ns scrapes immediately, then every 50 ns:
    // 10, 60, 110, ... 960 -> 20 snapshots over the run.
    EXPECT_EQ(sampler.sampleCount(), 20u);
    const auto &hist = sampler.history();
    EXPECT_EQ(hist[1].tick - hist[0].tick, 50'000u);
}

TEST(Sampler, PeriodIndependentOfClockDomain)
{
    // The same 100 ns period scrapes at the same simulated-time rate
    // whether the sampler ticks on a fast or a slow clock.
    MetricsRegistry reg;
    Engine engine;
    Clock *fast = engine.addClock("fast", 500.0);  // 2 ns
    Clock *slow = engine.addClock("slow", 50.0);   // 20 ns
    Sampler a("a", reg, 100'000);
    Sampler b("b", reg, 100'000);
    engine.add(&a, fast);
    engine.add(&b, slow);

    engine.runFor(1'000'000);  // 1 us
    EXPECT_EQ(a.sampleCount(), b.sampleCount());
    ASSERT_GE(a.sampleCount(), 2u);
    EXPECT_EQ(a.history()[1].tick - a.history()[0].tick, 100'000u);
    EXPECT_EQ(b.history()[1].tick - b.history()[0].tick, 100'000u);
}

TEST(Sampler, SlowClockDegradesToEveryEdge)
{
    // Period shorter than the clock: one scrape per edge, no bursts.
    MetricsRegistry reg;
    Engine engine;
    Clock *clk = engine.addClock("clk", 10.0);  // 100 ns period
    Sampler sampler("s", reg, 1'000);           // 1 ns "period"
    engine.add(&sampler, clk);
    engine.runCycles(clk, 10);
    EXPECT_EQ(sampler.sampleCount(), 10u);
}

TEST(Sampler, HistoryRingEvictsOldest)
{
    MetricsRegistry reg;
    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);
    Sampler sampler("s", reg, 10'000, 4);  // every edge, 4 retained
    engine.add(&sampler, clk);
    engine.runCycles(clk, 10);
    EXPECT_EQ(sampler.sampleCount(), 4u);
    EXPECT_EQ(sampler.latest().tick, 100'000u);  // 10th edge
    EXPECT_EQ(sampler.history().front().tick, 70'000u);
}

TEST(Sampler, SnapshotsSeeLiveValues)
{
    MetricsRegistry reg;
    Counter c;
    reg.addCounter("ctr", &c);

    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);
    FunctionComponent *wp = nullptr;
    FunctionComponent worker("worker", [&] { c.inc(); });
    wp = &worker;
    (void)wp;
    Sampler sampler("s", reg, 10'000);  // every edge
    engine.add(&worker, clk);
    engine.add(&sampler, clk);

    engine.runCycles(clk, 5);
    ASSERT_EQ(sampler.sampleCount(), 5u);
    // Later scrapes observe strictly more increments than earlier.
    const double first = sampler.history().front().samples[0].value;
    const double last = sampler.latest().samples[0].value;
    EXPECT_GT(last, first);
    EXPECT_EQ(sampler.latest().samples[0].name, "ctr");
}

TEST(Sampler, RejectsZeroPeriodAndHistory)
{
    MetricsRegistry reg;
    EXPECT_THROW(Sampler("s", reg, 0), FatalError);
    EXPECT_THROW(Sampler("s", reg, 1000, 0), FatalError);
    Sampler ok("s", reg, 1000);
    EXPECT_THROW(ok.setPeriod(0), FatalError);
    EXPECT_THROW(ok.latest(), FatalError);
}

} // namespace
} // namespace harmonia
