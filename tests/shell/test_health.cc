#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/cmd_driver.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

TEST(HealthMonitor, SensorsTrackUtilization)
{
    IrqHub irqs;
    HealthMonitor cool("cool", irqs);
    cool.setUtilization(0.1);
    IrqHub irqs2;
    HealthMonitor hot("hot", irqs2);
    hot.setUtilization(0.9);

    // Force a refresh outside an engine (cycle() == 0 path).
    Engine e1, e2;
    Clock *c1 = e1.addClock("c1", 250.0);
    Clock *c2 = e2.addClock("c2", 250.0);
    e1.add(&cool, c1);
    e2.add(&hot, c2);
    e1.runFor(1'000'000);
    e2.runFor(1'000'000);

    EXPECT_GT(hot.temperatureMilliC(), cool.temperatureMilliC());
    EXPECT_GT(hot.powerMilliW(), cool.powerMilliW());
    EXPECT_LT(hot.vccIntMilliV(), cool.vccIntMilliV());
    EXPECT_EQ(cool.alarms(), 0u);
}

TEST(HealthMonitor, OverTempLatchesAlarmAndRaisesIrq)
{
    IrqHub irqs;
    HealthMonitor mon("mon", irqs);
    bool fired = false;
    irqs.line("health_alarm").subscribe([&] { fired = true; });

    Engine engine;
    Clock *clk = engine.addClock("clk", 250.0);
    engine.add(&mon, clk);

    mon.setUtilization(0.5);
    mon.setAmbientMilliC(80'000);  // thermal stress injection
    engine.runFor(1'000'000);
    ASSERT_TRUE(fired);
    EXPECT_TRUE(mon.alarms() & kAlarmOverTemp);

    // Alarm stays latched after the stress goes away...
    mon.setAmbientMilliC(35'000);
    engine.runFor(1'000'000);
    EXPECT_TRUE(mon.alarms() & kAlarmOverTemp);

    // ...until management clears it.
    const auto res = mon.executeCommand(kCmdModuleReset, {});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_EQ(mon.alarms(), 0u);
}

TEST(HealthMonitor, AlarmLifecycleRelatchesAfterClear)
{
    // Full latch lifecycle: stress latches the alarm and fires the
    // irq edge; ModuleReset clears the latch AND the line; crossing
    // the threshold again re-latches and fires a second edge — the
    // monitor does not stay wedged after its first alarm.
    IrqHub irqs;
    HealthMonitor mon("mon", irqs);
    Engine engine;
    Clock *clk = engine.addClock("clk", 250.0);
    engine.add(&mon, clk);

    mon.setUtilization(0.5);
    mon.setAmbientMilliC(80'000);
    engine.runFor(1'000'000);
    ASSERT_TRUE(mon.alarms() & kAlarmOverTemp);
    EXPECT_EQ(mon.alarmLine().edgeCount(), 1u);
    EXPECT_TRUE(mon.alarmLine().level());

    // Cool down, then clear: latch and irq line both drop.
    mon.setAmbientMilliC(35'000);
    engine.runFor(1'000'000);
    ASSERT_EQ(mon.executeCommand(kCmdModuleReset, {}).status, kCmdOk);
    EXPECT_EQ(mon.alarms(), 0u);
    EXPECT_FALSE(mon.alarmLine().level());
    engine.runFor(1'000'000);
    EXPECT_EQ(mon.alarms(), 0u);  // stays clear while cool

    // Second excursion: latches and edges again.
    mon.setAmbientMilliC(80'000);
    engine.runFor(1'000'000);
    EXPECT_TRUE(mon.alarms() & kAlarmOverTemp);
    EXPECT_EQ(mon.alarmLine().edgeCount(), 2u);
}

TEST(HealthMonitor, SensorReadCommand)
{
    IrqHub irqs;
    HealthMonitor mon("mon", irqs);
    const auto all = mon.executeCommand(kCmdSensorRead, {});
    ASSERT_EQ(all.status, kCmdOk);
    ASSERT_EQ(all.data.size(), 5u);
    EXPECT_EQ(all.data[0], mon.temperatureMilliC());
    EXPECT_EQ(all.data[4], mon.alarms());

    const auto temp =
        mon.executeCommand(kCmdSensorRead, {kSensorTempMilliC});
    ASSERT_EQ(temp.data.size(), 1u);
    EXPECT_EQ(temp.data[0], mon.temperatureMilliC());

    EXPECT_EQ(mon.executeCommand(kCmdSensorRead, {99}).status,
              kCmdBadArgument);
    EXPECT_EQ(mon.executeCommand(0x4444, {}).status,
              kCmdUnknownCode);
}

TEST(HealthMonitor, IntegratedIntoEveryShell)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    engine.runFor(1'000'000);
    EXPECT_GT(shell->health().temperatureMilliC(), 35'000u);

    // Reachable through the command interface like any module (the
    // BMC's path).
    CmdDriver bmc(engine, *shell, kCtrlBmc);
    const CommandPacket resp =
        bmc.call(kRbbHealth, 0, kCmdSensorRead, {});
    EXPECT_EQ(resp.status, kCmdOk);
    ASSERT_EQ(resp.data.size(), 5u);
    EXPECT_GT(resp.data[3], 0u);  // power draw
}

TEST(HealthMonitor, UtilizationDerivedFromShellSize)
{
    Engine e1, e2;
    auto unified = Shell::makeUnified(e1, deviceA());
    ShellConfig tiny_cfg;
    Shell tiny(e2, deviceA(), tiny_cfg, "tiny");
    e1.runFor(1'000'000);
    e2.runFor(1'000'000);
    // A bigger shell runs hotter.
    EXPECT_GT(unified->health().temperatureMilliC(),
              tiny.health().temperatureMilliC());
}

TEST(HealthMonitor, RejectsBadUtilization)
{
    IrqHub irqs;
    HealthMonitor mon("mon", irqs);
    EXPECT_THROW(mon.setUtilization(-0.1), FatalError);
    EXPECT_THROW(mon.setUtilization(1.5), FatalError);
}

} // namespace
} // namespace harmonia
