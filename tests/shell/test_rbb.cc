#include <gtest/gtest.h>

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "shell/network_rbb.h"

namespace harmonia {
namespace {

// Base-class behaviour is exercised through NetworkRbb, the smallest
// concrete RBB.
struct RbbBench {
    Engine engine;
    Clock *clk;
    NetworkRbb rbb;

    RbbBench()
        : clk(engine.addClock("clk", 322.0)),
          rbb(engine, clk, Vendor::Xilinx, 100)
    {
    }
};

TEST(Rbb, IdentityAndRouting)
{
    RbbBench b;
    EXPECT_EQ(b.rbb.kind(), RbbKind::Network);
    EXPECT_EQ(b.rbb.rbbId(), kRbbNetwork);
    EXPECT_EQ(b.rbb.instanceId(), 0);
    EXPECT_STREQ(toString(RbbKind::Memory), "Memory");
    EXPECT_EQ(rbbIdFor(RbbKind::Host), kRbbHost);
}

TEST(Rbb, TotalResourcesSumParts)
{
    RbbBench b;
    const ResourceVector total = b.rbb.totalResources();
    const ResourceVector parts = b.rbb.instance().resources() +
                                 b.rbb.exFunctionResources() +
                                 b.rbb.controlMonitorResources();
    EXPECT_EQ(total, parts);
    EXPECT_GT(b.rbb.wrapperResources().lut, 0u);
}

TEST(Rbb, StatusReadWriteBankSelection)
{
    RbbBench b;
    // Bank 1 = instance registers: GT_LOOPBACK_REG is at 0x20.
    const Addr loopback =
        b.rbb.instance().regs().addrOf("GT_LOOPBACK_REG");
    auto res = b.rbb.executeCommand(
        kCmdModuleStatusWrite,
        {static_cast<std::uint32_t>((1u << 16) | loopback), 0x3});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_EQ(b.rbb.instance().regs().read(loopback), 0x3u);

    res = b.rbb.executeCommand(
        kCmdModuleStatusRead,
        {static_cast<std::uint32_t>((1u << 16) | loopback)});
    EXPECT_EQ(res.status, kCmdOk);
    ASSERT_EQ(res.data.size(), 1u);
    EXPECT_EQ(res.data[0], 0x3u);
}

TEST(Rbb, StatusCommandsValidateArguments)
{
    RbbBench b;
    EXPECT_EQ(b.rbb.executeCommand(kCmdModuleStatusRead, {}).status,
              kCmdBadArgument);
    EXPECT_EQ(
        b.rbb.executeCommand(kCmdModuleStatusRead, {0xfff0}).status,
        kCmdBadArgument);
    EXPECT_EQ(
        b.rbb.executeCommand(kCmdModuleStatusWrite, {0x0}).status,
        kCmdBadArgument);
}

TEST(Rbb, ConfigSurfaceIncludesInstanceSelect)
{
    RbbBench b;
    const auto all = b.rbb.allConfigItems();
    const auto role = b.rbb.roleConfigItems();
    EXPECT_GT(all.size(), role.size());
    bool has_select = false;
    for (const auto &c : role)
        if (c.name == "Network.INSTANCE_SELECT")
            has_select = true;
    EXPECT_TRUE(has_select);
    // Property-level tailoring: roles see a small fraction.
    EXPECT_GE(all.size(), 3 * role.size());
}

TEST(Rbb, MonitoringRegCountCoversStatsAndRoRegs)
{
    RbbBench b;
    // Generate some stats so the monitor group is populated.
    b.rbb.monitor().counter("rx_packets").inc();
    const std::size_t n = b.rbb.monitoringRegCount();
    EXPECT_GT(n, 5u);
    EXPECT_GE(n, b.rbb.monitoringCommandCount() * 5);
}

TEST(Rbb, StatsSnapshotPaginates)
{
    RbbBench b;
    for (int i = 0; i < 20; ++i)
        b.rbb.monitor().counter(format("stat_%02d", i)).inc(i);
    const auto first = b.rbb.executeCommand(kCmdStatsSnapshot, {0});
    EXPECT_EQ(first.status, kCmdOk);
    EXPECT_EQ(first.data[0], 20u);
    EXPECT_EQ(first.data.size(), 16u);  // capped page
    const auto second =
        b.rbb.executeCommand(kCmdStatsSnapshot, {15});
    EXPECT_EQ(second.data.size(), 1u + 5u);
}

} // namespace
} // namespace harmonia
