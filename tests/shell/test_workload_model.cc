#include <gtest/gtest.h>

#include "common/logging.h"
#include "roles/host_network.h"
#include "roles/l4lb.h"
#include "roles/retrieval.h"
#include "roles/sec_gateway.h"
#include "shell/workload_model.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

TEST(WorkloadModel, RbbReuseBandsMatchFig14)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());

    for (const Rbb *rbb : shell->rbbs()) {
        const double vendor =
            rbbReuseFraction(*rbb, MigrationKind::CrossVendor);
        const double chip =
            rbbReuseFraction(*rbb, MigrationKind::CrossChip);
        // Paper: 69-76% cross-vendor (memory RBB reaches 78%),
        // 84-93% cross-chip.
        EXPECT_GE(vendor, 0.67) << rbb->name();
        EXPECT_LE(vendor, 0.80) << rbb->name();
        EXPECT_GE(chip, 0.82) << rbb->name();
        EXPECT_LE(chip, 0.95) << rbb->name();
        EXPECT_GT(chip, vendor) << rbb->name();
    }
}

TEST(WorkloadModel, ReuseBreakdownConserves)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    const Rbb *rbb = shell->rbbs().front();
    const ReuseBreakdown vendor =
        rbbReuse(*rbb, MigrationKind::CrossVendor);
    const ReuseBreakdown chip =
        rbbReuse(*rbb, MigrationKind::CrossChip);
    EXPECT_EQ(vendor.reusedLoc + vendor.redevelopedLoc,
              rbb->devWorkload().total());
    EXPECT_EQ(chip.reusedLoc + chip.redevelopedLoc,
              rbb->devWorkload().total());
}

TEST(WorkloadModel, ShellFractionsMatchFig3a)
{
    // Fig 3a: shells occupy 66-87% of handcraft workloads.
    struct Case {
        RoleRequirements reqs;
        double expect_shell;
    };
    const std::vector<Case> cases = {
        {SecGateway::standardRequirements(), 0.87},
        {Layer4Lb::standardRequirements(), 0.79},
        {Retrieval::standardRequirements(), 0.79},
        {HostNetwork::standardRequirements(), 0.66},
    };
    for (const Case &c : cases) {
        Engine engine;
        auto shell = Shell::makeTailored(engine, deviceA(), c.reqs);
        const WorkloadSplit split =
            appWorkloadSplit(*shell, c.reqs.roleLoc);
        EXPECT_NEAR(split.shellFraction(), c.expect_shell, 0.04)
            << c.reqs.name;
    }
}

TEST(WorkloadModel, AppShellReuseInFig15Band)
{
    // Fig 15: 70-80% shell reuse across applications.
    const std::vector<RoleRequirements> roles = {
        SecGateway::standardRequirements(),
        Layer4Lb::standardRequirements(),
        Retrieval::standardRequirements(),
        HostNetwork::standardRequirements(),
    };
    for (const auto &reqs : roles) {
        Engine engine;
        auto shell = Shell::makeTailored(engine, deviceA(), reqs);
        const double reuse =
            appShellReuse(*shell, MigrationKind::CrossVendor);
        EXPECT_GE(reuse, 0.70) << reqs.name;
        EXPECT_LE(reuse, 0.80) << reqs.name;
    }
}

TEST(WorkloadModel, MigrationKindNames)
{
    EXPECT_STREQ(toString(MigrationKind::CrossVendor),
                 "cross-vendor");
    EXPECT_STREQ(toString(MigrationKind::CrossChip), "cross-chip");
}

} // namespace
} // namespace harmonia
