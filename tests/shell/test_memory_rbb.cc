#include <gtest/gtest.h>

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "shell/memory_rbb.h"

namespace harmonia {
namespace {

struct MemRbbBench {
    Engine engine;
    Clock *clk;
    MemoryRbb rbb;

    explicit MemRbbBench(PeripheralKind kind = PeripheralKind::Ddr4,
                         unsigned channels = 2)
        : clk(engine.addClock("clk", 300.0)),
          rbb(engine, clk, Vendor::Xilinx, kind, channels)
    {
    }

    MemCompletion
    readAndWait(Addr addr, std::uint32_t bytes)
    {
        EXPECT_TRUE(rbb.read(addr, bytes));
        EXPECT_TRUE(engine.runUntilDone(
            [&] { return rbb.hasCompletion(); }, 100'000'000));
        return rbb.popCompletion();
    }
};

TEST(MemoryRbb, ReadWriteCompletions)
{
    MemRbbBench b;
    const MemCompletion c = b.readAndWait(0x1000, 64);
    EXPECT_EQ(c.request.addr, 0x1000u);
    EXPECT_GT(c.latency(), 0u);
    EXPECT_EQ(b.rbb.monitor().value("reads"), 1u);

    EXPECT_TRUE(b.rbb.write(0x2000, 128));
    b.engine.runUntilDone([&] { return b.rbb.hasCompletion(); },
                          100'000'000);
    EXPECT_TRUE(b.rbb.popCompletion().request.write);
}

TEST(MemoryRbb, HotCacheAcceleratesRepeatedReads)
{
    MemRbbBench b;
    const Tick cold = b.readAndWait(0x4000, 64).latency();
    const Tick hot = b.readAndWait(0x4000, 64).latency();
    EXPECT_LT(hot * 2, cold);
    EXPECT_EQ(b.rbb.monitor().value("cache_hits"), 1u);
    EXPECT_EQ(b.rbb.monitor().value("cache_misses"), 1u);
}

TEST(MemoryRbb, WritesInvalidateCache)
{
    MemRbbBench b;
    b.readAndWait(0x4000, 64);            // fill
    EXPECT_TRUE(b.rbb.write(0x4000, 64)); // invalidate
    b.engine.runUntilDone([&] { return b.rbb.hasCompletion(); },
                          100'000'000);
    b.rbb.popCompletion();
    b.readAndWait(0x4000, 64);
    EXPECT_EQ(b.rbb.monitor().value("cache_misses"), 2u);
}

TEST(MemoryRbb, HotCacheCanBeDisabled)
{
    MemRbbBench b;
    b.rbb.setHotCacheEnabled(false);
    b.readAndWait(0x4000, 64);
    b.readAndWait(0x4000, 64);
    EXPECT_EQ(b.rbb.monitor().value("cache_hits"), 0u);
}

TEST(MemoryRbb, InterleavingSpreadsStripes)
{
    MemRbbBench b(PeripheralKind::Ddr4, 2);
    EXPECT_TRUE(b.rbb.interleaveEnabled());
    EXPECT_EQ(b.rbb.channelFor(0), 0u);
    EXPECT_EQ(b.rbb.channelFor(256), 1u);
    EXPECT_EQ(b.rbb.channelFor(512), 0u);

    b.rbb.setInterleaveEnabled(false);
    // Linear carving: low addresses land on one channel.
    EXPECT_EQ(b.rbb.channelFor(0), b.rbb.channelFor(512));
}

TEST(MemoryRbb, HbmInstanceHas32Channels)
{
    MemRbbBench b(PeripheralKind::Hbm, 32);
    EXPECT_EQ(b.rbb.controller().channels(), 32u);
    // Stripes cover all 32 channels.
    std::set<unsigned> seen;
    for (Addr a = 0; a < 32 * 256; a += 256)
        seen.insert(b.rbb.channelFor(a));
    EXPECT_EQ(seen.size(), 32u);
}

TEST(MemoryRbb, FunctionalStoreThroughRbb)
{
    MemRbbBench b;
    const std::vector<std::uint8_t> data = {9, 8, 7, 6};
    b.rbb.storeWrite(0x100, data);
    EXPECT_EQ(b.rbb.storeRead(0x100, 4), data);
}

TEST(MemoryRbb, CommandInterfaceControlsExFunctions)
{
    MemRbbBench b;
    // StatusWrite bank 0 offset of HOTCACHE_EN (0x4).
    const auto res =
        b.rbb.executeCommand(kCmdModuleStatusWrite, {0x4, 0});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_FALSE(b.rbb.hotCacheEnabled());

    const auto read =
        b.rbb.executeCommand(kCmdModuleStatusRead, {0x4});
    EXPECT_EQ(read.status, kCmdOk);
    ASSERT_EQ(read.data.size(), 1u);
    EXPECT_EQ(read.data[0], 0u);
}

TEST(MemoryRbb, StatsSnapshotCommand)
{
    MemRbbBench b;
    b.readAndWait(0, 64);
    const auto res = b.rbb.executeCommand(kCmdStatsSnapshot, {});
    EXPECT_EQ(res.status, kCmdOk);
    ASSERT_GE(res.data.size(), 2u);
    EXPECT_GT(res.data[0], 0u);  // number of stats
}

TEST(MemoryRbb, ResetRestoresDefaults)
{
    MemRbbBench b;
    b.rbb.setHotCacheEnabled(false);
    b.rbb.setInterleaveEnabled(false);
    b.rbb.executeCommand(kCmdModuleReset, {});
    EXPECT_TRUE(b.rbb.hotCacheEnabled());
    EXPECT_TRUE(b.rbb.interleaveEnabled());
}

TEST(MemoryRbb, WorkloadCalibrationMatchesPaperRatios)
{
    MemRbbBench b;
    const DevWorkload w = b.rbb.devWorkload();
    const double total = w.total();
    EXPECT_NEAR(w.reusableLoc / total, 0.78, 0.02);
    EXPECT_NEAR((total - w.instanceLoc) / total, 0.93, 0.02);
}

} // namespace
} // namespace harmonia
