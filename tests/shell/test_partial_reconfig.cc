#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/cmd_driver.h"
#include "roles/sec_gateway.h"
#include "shell/partial_reconfig.h"

namespace harmonia {
namespace {

struct PrBench {
    Engine engine;
    std::unique_ptr<Shell> shell;
    PrController pr;

    PrBench()
        : shell(Shell::makeTailored(
              engine,
              DeviceDatabase::instance().byName("DeviceA"),
              SecGateway::standardRequirements())),
          pr("pr", engine, *shell,
             {ResourceVector{120000, 160000, 200, 0, 100},
              ResourceVector{60000, 80000, 100, 0, 50}})
    {
    }
};

TEST(PartialReconfig, LoadActivatesAfterReconfigTime)
{
    PrBench b;
    SecGateway role;
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Empty);

    ASSERT_TRUE(b.pr.load(0, role));
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Reconfiguring);
    EXPECT_FALSE(role.active());

    const Tick t = b.pr.reconfigTime(0);
    EXPECT_GT(t, 100'000u);  // a real partial bitstream takes time
    b.engine.runFor(t + 10'000'000);
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Active);
    EXPECT_TRUE(role.active());
    EXPECT_EQ(b.pr.occupant(0), &role);
}

TEST(PartialReconfig, InactiveRoleDoesNotProcessTraffic)
{
    PrBench b;
    SecGateway role;
    ASSERT_TRUE(b.pr.load(0, role));

    // Traffic arrives while the slot is still being rewritten.
    PacketDesc pkt;
    pkt.bytes = 256;
    b.shell->network().mac().injectRx(pkt, b.engine.now());
    b.engine.runFor(2'000'000);
    EXPECT_EQ(role.stats().value("forwarded_packets"), 0u);

    // After activation the backlog drains.
    b.engine.runFor(b.pr.reconfigTime(0) + 10'000'000);
    EXPECT_EQ(role.stats().value("forwarded_packets"), 1u);
}

TEST(PartialReconfig, SlotCapacityEnforced)
{
    PrBench b;
    SecGateway fits;  // 38k LUT role vs 60k slot: fits slot 1
    ASSERT_TRUE(b.pr.load(1, fits));

    // A dedicated shell with one tiny slot rejects the same role.
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, DeviceDatabase::instance().byName("DeviceA"),
        SecGateway::standardRequirements());
    PrController tight("tight", engine, *shell,
                       {ResourceVector{1000, 1000, 1, 0, 0}});
    SecGateway too_big;
    EXPECT_FALSE(tight.load(0, too_big));
    EXPECT_EQ(tight.stats().value("load_too_big"), 1u);
}

TEST(PartialReconfig, BusySlotRejectsSecondLoad)
{
    PrBench b;
    SecGateway a;
    SecGateway c;
    ASSERT_TRUE(b.pr.load(0, a));
    EXPECT_FALSE(b.pr.load(0, c));
    EXPECT_EQ(b.pr.stats().value("load_rejected"), 1u);
}

TEST(PartialReconfig, MultiTenantSlotsAreIndependent)
{
    PrBench b;
    SecGateway tenant_a;
    SecGateway tenant_b;
    ASSERT_TRUE(b.pr.load(0, tenant_a));
    b.engine.runFor(b.pr.reconfigTime(0) + 10'000'000);
    ASSERT_TRUE(tenant_a.active());

    // Loading tenant B does not disturb tenant A.
    ASSERT_TRUE(b.pr.load(1, tenant_b));
    EXPECT_TRUE(tenant_a.active());
    EXPECT_EQ(b.pr.slotState(1), PrSlotState::Reconfiguring);
    b.engine.runFor(b.pr.reconfigTime(1) + 10'000'000);
    EXPECT_TRUE(tenant_b.active());

    // Tenants answer commands at distinct instance ids.
    CmdDriver driver(b.engine, *b.shell);
    EXPECT_EQ(driver.call(kRoleRbbIdBase, 0, kCmdStatsSnapshot)
                  .status,
              kCmdOk);
    EXPECT_EQ(driver.call(kRoleRbbIdBase, 1, kCmdStatsSnapshot)
                  .status,
              kCmdOk);
}

TEST(PartialReconfig, UnloadFreesSlotAndDeactivates)
{
    PrBench b;
    SecGateway role;
    ASSERT_TRUE(b.pr.load(0, role));
    b.engine.runFor(b.pr.reconfigTime(0) + 10'000'000);
    ASSERT_TRUE(role.active());

    ASSERT_TRUE(b.pr.unload(0));
    EXPECT_FALSE(role.active());
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Empty);
    EXPECT_EQ(b.pr.occupant(0), nullptr);
    EXPECT_FALSE(b.pr.unload(0));  // already empty
}

TEST(PartialReconfig, ManagedOverCommands)
{
    PrBench b;
    SecGateway role;
    b.pr.load(0, role);
    CmdDriver driver(b.engine, *b.shell);

    const CommandPacket status =
        driver.call(kRbbPrCtrl, 0, kCmdPrStatus, {0});
    EXPECT_EQ(status.status, kCmdOk);
    EXPECT_EQ(status.data[0],
              static_cast<std::uint32_t>(
                  PrSlotState::Reconfiguring));

    b.engine.runFor(b.pr.reconfigTime(0) + 10'000'000);
    const CommandPacket overview =
        driver.call(kRbbPrCtrl, 0, kCmdModuleStatusRead);
    ASSERT_EQ(overview.data.size(), 2u);
    EXPECT_EQ(overview.data[0], 2u);  // slots
    EXPECT_EQ(overview.data[1], 1u);  // active

    const CommandPacket unload =
        driver.call(kRbbPrCtrl, 0, kCmdPrUnload, {0});
    EXPECT_EQ(unload.status, kCmdOk);
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Empty);

    EXPECT_EQ(driver.call(kRbbPrCtrl, 0, kCmdPrStatus, {9}).status,
              kCmdBadArgument);
}

TEST(PartialReconfig, ReconfigTimeScalesWithSlotSize)
{
    PrBench b;
    // Slot 0 (120k LUT) takes longer to rewrite than slot 1 (60k).
    EXPECT_GT(b.pr.reconfigTime(0), b.pr.reconfigTime(1));
}

TEST(PartialReconfig, NeedsAtLeastOneSlot)
{
    PrBench b;
    EXPECT_THROW(
        PrController("bad", b.engine, *b.shell, {}), FatalError);
}

} // namespace
} // namespace harmonia
