#include <gtest/gtest.h>

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "shell/host_rbb.h"

namespace harmonia {
namespace {

struct HostBench {
    Engine engine;
    Clock *clk;
    HostRbb rbb;

    explicit HostBench(unsigned queues = 1024)
        : clk(engine.addClock("clk", DmaIp::clockMhzFor(4))),
          rbb(engine, clk, Vendor::Xilinx, 4, 16, queues)
    {
    }
};

TEST(HostRbb, DefaultsToThousandQueues)
{
    HostBench b;
    EXPECT_EQ(b.rbb.numQueues(), 1024u);
    EXPECT_EQ(b.rbb.activeQueueCount(), 0u);
}

TEST(HostRbb, InactiveQueuesRejectTraffic)
{
    HostBench b;
    EXPECT_FALSE(b.rbb.submit(DmaDir::H2C, 7, 4096));
    EXPECT_EQ(b.rbb.monitor().value("rejected"), 1u);
    b.rbb.setQueueActive(7, true);
    EXPECT_TRUE(b.rbb.submit(DmaDir::H2C, 7, 4096));
    EXPECT_EQ(b.rbb.monitor().value("submitted"), 1u);
}

TEST(HostRbb, CompletionsFlowPerQueue)
{
    HostBench b;
    b.rbb.setQueueActive(3, true);
    ASSERT_TRUE(b.rbb.submit(DmaDir::C2H, 3, 8192, 55));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.rbb.hasCompletion(); }, 100'000'000));
    const DmaCompletion c = b.rbb.popCompletion();
    EXPECT_EQ(c.request.queue, 3);
    EXPECT_EQ(c.request.id, 55u);
    EXPECT_GE(c.latency(), b.rbb.dma().baseLatency());
}

TEST(HostRbb, IsolationAcrossTenantQueues)
{
    HostBench b;
    b.rbb.setQueueActive(1, true);
    b.rbb.setQueueActive(2, true);
    // Tenant 1 floods its queue; tenant 2 still gets service.
    for (int i = 0; i < 16; ++i)
        b.rbb.submit(DmaDir::H2C, 1, 1 << 20);
    ASSERT_TRUE(b.rbb.submit(DmaDir::H2C, 2, 4096, 99));

    bool tenant2_done = false;
    std::uint64_t tenant2_latency = 0;
    b.engine.runUntilDone(
        [&] {
            while (b.rbb.hasCompletion()) {
                const DmaCompletion c = b.rbb.popCompletion();
                if (c.request.queue == 2) {
                    tenant2_done = true;
                    tenant2_latency = c.latency();
                }
            }
            return tenant2_done;
        },
        500'000'000);
    ASSERT_TRUE(tenant2_done);
    // Round-robin keeps tenant 2 from waiting behind all 16 MB.
    EXPECT_LT(tenant2_latency, 200'000'000u);
}

TEST(HostRbb, ActiveListScalesSchedulingToActiveSet)
{
    HostBench b;
    // Activate only two of 1024 queues: grants must only touch them.
    b.rbb.setQueueActive(100, true);
    b.rbb.setQueueActive(900, true);
    EXPECT_EQ(b.rbb.activeQueueCount(), 2u);
    b.rbb.submit(DmaDir::H2C, 100, 64);
    b.rbb.submit(DmaDir::H2C, 900, 64);
    unsigned seen = 0;
    b.engine.runUntilDone(
        [&] {
            while (b.rbb.hasCompletion()) {
                const auto c = b.rbb.popCompletion();
                EXPECT_TRUE(c.request.queue == 100 ||
                            c.request.queue == 900);
                ++seen;
            }
            return seen == 2;
        },
        100'000'000);
    EXPECT_EQ(seen, 2u);
}

TEST(HostRbb, ControlChannelPassThrough)
{
    HostBench b;
    EXPECT_TRUE(b.rbb.submitControl(64, 1));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.rbb.hasCompletion(); }, 100'000'000));
    EXPECT_TRUE(b.rbb.popCompletion().request.control);
}

TEST(HostRbb, QueueConfigCommandActivatesRanges)
{
    HostBench b;
    const auto res =
        b.rbb.executeCommand(kCmdQueueConfig, {10, 20, 1});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_EQ(b.rbb.activeQueueCount(), 20u);
    EXPECT_TRUE(b.rbb.queueActive(10));
    EXPECT_TRUE(b.rbb.queueActive(29));
    EXPECT_FALSE(b.rbb.queueActive(30));

    // Deactivate the range again.
    b.rbb.executeCommand(kCmdQueueConfig, {10, 20, 0});
    EXPECT_EQ(b.rbb.activeQueueCount(), 0u);

    EXPECT_EQ(
        b.rbb.executeCommand(kCmdQueueConfig, {1020, 10, 1}).status,
        kCmdBadArgument);
}

TEST(HostRbb, QueueControlRegisters)
{
    HostBench b;
    b.rbb.ctrlRegs().writeByName("QUEUE_SEL", 5);
    b.rbb.ctrlRegs().writeByName("QUEUE_CTRL", 1);
    EXPECT_TRUE(b.rbb.queueActive(5));
    EXPECT_EQ(b.rbb.ctrlRegs().readByName("MON_ACTIVE_QUEUES"), 1u);
}

TEST(HostRbb, DepthMonitoring)
{
    HostBench b;
    b.rbb.setQueueActive(0, true);
    for (int i = 0; i < 5; ++i)
        b.rbb.submit(DmaDir::H2C, 0, 1 << 20);
    EXPECT_GT(b.rbb.queueDepth(0), 0u);
    EXPECT_THROW(b.rbb.queueDepth(5000), FatalError);
}

TEST(HostRbb, WorkloadCalibrationMatchesPaperRatios)
{
    HostBench b;
    const DevWorkload w = b.rbb.devWorkload();
    const double total = w.total();
    EXPECT_NEAR(w.reusableLoc / total, 0.76, 0.02);
    EXPECT_NEAR((total - w.instanceLoc) / total, 0.91, 0.02);
}

TEST(HostRbb, ResetClearsQueuesAndState)
{
    HostBench b;
    b.rbb.setQueueActive(4, true);
    b.rbb.submit(DmaDir::H2C, 4, 64);
    b.rbb.executeCommand(kCmdModuleReset, {});
    EXPECT_EQ(b.rbb.activeQueueCount(), 0u);
    EXPECT_FALSE(b.rbb.hasCompletion());
}

} // namespace
} // namespace harmonia
