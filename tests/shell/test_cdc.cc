#include <gtest/gtest.h>

#include "common/logging.h"
#include "shell/cdc.h"

namespace harmonia {
namespace {

TEST(ParamCdc, CrossesDomainsInOrder)
{
    Engine engine;
    Clock *fast = engine.addClock("fast", 322.0);
    Clock *slow = engine.addClock("slow", 250.0);
    ParamCdc cdc(engine, "cdc", fast, slow, 512, 512);

    std::uint64_t pushed = 0, popped = 0;
    while (popped < 200) {
        while (pushed < 200 && cdc.canPush()) {
            PacketDesc pkt;
            pkt.id = pushed++;
            pkt.bytes = 64;
            cdc.push(pkt);
        }
        engine.step();
        while (cdc.canPop()) {
            ASSERT_EQ(cdc.pop().id, popped);
            ++popped;
        }
        ASSERT_LT(engine.now(), 10'000'000u) << "stalled";
    }
}

TEST(ParamCdc, BandwidthMath)
{
    Engine engine;
    Clock *rbb = engine.addClock("rbb", 322.265625);  // S
    Clock *user = engine.addClock("user", 250.0);     // R
    // S*M vs R*U: 322*512 > 250*512 -> lossy; 250*1024 > 322*512 -> ok.
    ParamCdc narrow(engine, "n", rbb, user, 512, 512);
    EXPECT_FALSE(narrow.lossless());
    ParamCdc wide(engine, "w", rbb, user, 512, 1024);
    EXPECT_TRUE(wide.lossless());
    EXPECT_NEAR(wide.writeBandwidthBps(), 322.265625e6 * 512, 1e6);
    EXPECT_NEAR(wide.readBandwidthBps(), 250e6 * 1024, 1e6);
}

TEST(ParamCdc, WidthConversionThrottlesNarrowSide)
{
    Engine engine;
    Clock *clk_a = engine.addClock("a", 250.0);
    Clock *clk_b = engine.addClock("b", 250.0);
    // 512b write side, 128b read side: a 64B packet takes 1 write
    // beat but 4 read beats, so the reader drains at 1/4 rate.
    ParamCdc cdc(engine, "cdc", clk_a, clk_b, 512, 128);

    std::uint64_t pushed = 0, popped = 0;
    const Cycles start_rd = clk_b->cycle();
    for (int i = 0; i < 400; ++i) {
        if (cdc.canPush() && pushed < 64) {
            PacketDesc pkt;
            pkt.bytes = 64;
            pkt.id = pushed++;
            cdc.push(pkt);
        }
        engine.step();
        if (cdc.canPop()) {
            cdc.pop();
            ++popped;
        }
    }
    const Cycles rd_cycles = clk_b->cycle() - start_rd;
    // Popping 64 packets x 4 beats needs >= 256 read cycles.
    EXPECT_EQ(popped, 64u);
    EXPECT_GE(rd_cycles, 256u);
}

TEST(ParamCdc, SynchronizerLatencyVisible)
{
    Engine engine;
    Clock *a = engine.addClock("a", 100.0);
    Clock *b = engine.addClock("b", 100.0);
    ParamCdc cdc(engine, "cdc", a, b, 64, 64, 16, 3);
    EXPECT_EQ(cdc.syncStages(), 3u);

    PacketDesc pkt;
    pkt.bytes = 8;
    cdc.push(pkt);
    unsigned read_ticks = 0;
    while (!cdc.canPop()) {
        engine.step();
        ++read_ticks;
        ASSERT_LT(read_ticks, 10u);
    }
    EXPECT_GE(read_ticks, 3u);  // at least the synchronizer depth
}

TEST(ParamCdc, MisuseIsPanic)
{
    Engine engine;
    Clock *a = engine.addClock("a", 100.0);
    Clock *b = engine.addClock("b", 100.0);
    ParamCdc cdc(engine, "cdc", a, b, 64, 64);
    EXPECT_THROW(cdc.pop(), PanicError);
}

TEST(ParamCdc, RejectsNonByteWidths)
{
    Engine engine;
    Clock *a = engine.addClock("a", 100.0);
    Clock *b = engine.addClock("b", 100.0);
    EXPECT_THROW(ParamCdc(engine, "bad", a, b, 7, 64), FatalError);
}

} // namespace
} // namespace harmonia
