#include <gtest/gtest.h>

#include "cmd/command_codes.h"
#include "common/logging.h"
#include "shell/network_rbb.h"

namespace harmonia {
namespace {

struct NetBench {
    Engine engine;
    Clock *clk;
    NetworkRbb rbb;

    NetBench()
        : clk(engine.addClock("clk", MacIp::clockMhzFor(100))),
          rbb(engine, clk, Vendor::Xilinx, 100)
    {
        rbb.setLoopback(true);
    }

    void
    sendAndSettle(const PacketDesc &pkt)
    {
        ASSERT_TRUE(rbb.txReady());
        rbb.txPush(pkt);
        engine.runFor(5'000'000);
    }
};

TEST(NetworkRbb, LoopbackPassesThroughWrapperAndFilters)
{
    NetBench b;
    PacketDesc pkt;
    pkt.id = 9;
    pkt.bytes = 512;
    b.sendAndSettle(pkt);
    ASSERT_TRUE(b.rbb.rxAvailable());
    EXPECT_EQ(b.rbb.rxPop().id, 9u);
    EXPECT_EQ(b.rbb.monitor().value("rx_packets"), 1u);
    EXPECT_EQ(b.rbb.monitor().value("tx_packets"), 1u);
}

TEST(NetworkRbb, PacketFilterDropsForeignUnicast)
{
    NetBench b;
    b.rbb.setLocalMac(0xaabbccddeeffULL);
    b.rbb.setFilterEnabled(true);

    PacketDesc local;
    local.dstMac = 0xaabbccddeeffULL;
    local.bytes = 128;
    b.sendAndSettle(local);
    EXPECT_TRUE(b.rbb.rxAvailable());
    b.rbb.rxPop();

    PacketDesc foreign;
    foreign.dstMac = 0x112233445566ULL;
    foreign.bytes = 128;
    b.sendAndSettle(foreign);
    EXPECT_FALSE(b.rbb.rxAvailable());
    EXPECT_EQ(b.rbb.monitor().value("filtered_packets"), 1u);
}

TEST(NetworkRbb, MulticastGroupsPassTheFilter)
{
    NetBench b;
    b.rbb.setLocalMac(0x1);
    b.rbb.setFilterEnabled(true);
    b.rbb.addMulticastGroup(0x01005e000001ULL);

    PacketDesc mc;
    mc.dstMac = 0x01005e000001ULL;
    mc.multicast = true;
    mc.bytes = 128;
    b.sendAndSettle(mc);
    EXPECT_TRUE(b.rbb.rxAvailable());

    PacketDesc other_mc;
    other_mc.dstMac = 0x01005e000002ULL;  // group not joined
    other_mc.multicast = true;
    other_mc.bytes = 128;
    b.sendAndSettle(other_mc);
    // Only the first multicast came through.
    b.rbb.rxPop();
    EXPECT_FALSE(b.rbb.rxAvailable());
}

TEST(NetworkRbb, FlowDirectorHashMode)
{
    NetBench b;
    b.rbb.setDirectorQueues(8);
    for (std::uint64_t flow = 0; flow < 32; ++flow)
        EXPECT_EQ(b.rbb.directQueue(flow), flow % 8);
}

TEST(NetworkRbb, FlowDirectorTableMode)
{
    NetBench b;
    b.rbb.setDirectorMode(DirectorMode::Table);
    b.rbb.setFlowTableEntry(5, 42);
    EXPECT_EQ(b.rbb.directQueue(5), 42);
    EXPECT_EQ(b.rbb.flowTableEntry(5), 42);

    PacketDesc pkt;
    pkt.flowHash = 5;
    pkt.bytes = 128;
    b.sendAndSettle(pkt);
    ASSERT_TRUE(b.rbb.rxAvailable());
    EXPECT_EQ(b.rbb.rxPop().queue, 42);
}

TEST(NetworkRbb, ControlRegsDriveExFunctions)
{
    NetBench b;
    b.rbb.ctrlRegs().writeByName("FILTER_ENABLE", 1);
    EXPECT_TRUE(b.rbb.filterEnabled());
    b.rbb.ctrlRegs().writeByName("LOCAL_MAC_LO", 0xddeeff00);
    b.rbb.ctrlRegs().writeByName("LOCAL_MAC_HI", 0xaabb);
    EXPECT_EQ(b.rbb.localMac(), 0xaabbddeeff00ULL);
    b.rbb.ctrlRegs().writeByName("FLOW_TBL_IDX", 3);
    b.rbb.ctrlRegs().writeByName("FLOW_TBL_DATA", 17);
    EXPECT_EQ(b.rbb.flowTableEntry(3), 17);
}

TEST(NetworkRbb, MonitoringRegsReadCounters)
{
    NetBench b;
    PacketDesc pkt;
    pkt.bytes = 256;
    b.sendAndSettle(pkt);
    b.rbb.rxPop();
    EXPECT_EQ(b.rbb.ctrlRegs().readByName("MON_RX_PACKETS"), 1u);
    EXPECT_EQ(b.rbb.ctrlRegs().readByName("MON_RX_BYTES"), 256u);
}

TEST(NetworkRbb, CommandSetCoversTablesAndInit)
{
    NetBench b;
    // ModuleInit through the command path.
    auto res = b.rbb.executeCommand(kCmdModuleInit, {});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_TRUE(b.rbb.instance().initialized());

    // Bulk flow-table write: start index 10, 4 entries.
    res = b.rbb.executeCommand(kCmdTableWrite, {0, 10, 7, 8, 9, 10});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_EQ(b.rbb.flowTableEntry(12), 9);

    // Table read back.
    res = b.rbb.executeCommand(kCmdTableRead, {0, 12});
    EXPECT_EQ(res.status, kCmdOk);
    ASSERT_EQ(res.data.size(), 1u);
    EXPECT_EQ(res.data[0], 9u);

    // Multicast join via table 1.
    res = b.rbb.executeCommand(kCmdTableWrite, {1, 0x5e000001, 0x0100});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_TRUE(b.rbb.inMulticastGroup(0x01005e000001ULL));

    // Reset clears the Ex-function state.
    res = b.rbb.executeCommand(kCmdModuleReset, {});
    EXPECT_EQ(res.status, kCmdOk);
    EXPECT_FALSE(b.rbb.inMulticastGroup(0x01005e000001ULL));
    EXPECT_EQ(b.rbb.flowTableEntry(12), 0);
}

TEST(NetworkRbb, BadCommandsReportErrors)
{
    NetBench b;
    EXPECT_EQ(b.rbb.executeCommand(kCmdTableWrite, {0, 9999, 1}).status,
              kCmdBadArgument);
    EXPECT_EQ(b.rbb.executeCommand(kCmdTableRead, {7, 0}).status,
              kCmdBadArgument);
    EXPECT_EQ(b.rbb.executeCommand(0x7777, {}).status,
              kCmdUnknownCode);
}

TEST(NetworkRbb, InitCountsReflectCommandAdvantage)
{
    NetBench b;
    for (std::uint32_t i = 0; i < 64; ++i)
        b.rbb.setFlowTableEntry(i, static_cast<std::uint16_t>(i + 1));
    // Register path: per-entry programming; command path: bulk.
    EXPECT_GT(b.rbb.registerInitOpCount(),
              10 * b.rbb.commandInitCount());
}

TEST(NetworkRbb, WorkloadCalibrationMatchesPaperRatios)
{
    NetBench b;
    const DevWorkload w = b.rbb.devWorkload();
    const double total = w.total();
    // Fig 14: Network RBB cross-vendor reuse ~0.69.
    EXPECT_NEAR(w.reusableLoc / total, 0.69, 0.02);
    // Cross-chip reuse ~0.84.
    EXPECT_NEAR((total - w.instanceLoc) / total, 0.84, 0.02);
}

} // namespace
} // namespace harmonia
