#include <gtest/gtest.h>

#include "common/logging.h"
#include "roles/sec_gateway.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

TEST(Shell, UnifiedShellBuildsEveryRbbTheBoardSupports)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    EXPECT_EQ(shell->networkCount(), 2u);
    EXPECT_EQ(shell->memoryCount(), 2u);
    EXPECT_TRUE(shell->hasHost());
    EXPECT_EQ(shell->rbbs().size(), 5u);
}

TEST(Shell, TailoredShellIsSmaller)
{
    Engine engine;
    auto unified = Shell::makeUnified(engine, device("DeviceA"));
    auto tailored = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    const ResourceVector u = unified->shellResources();
    const ResourceVector t = tailored->shellResources();
    EXPECT_LT(t.lut, u.lut);
    EXPECT_LT(t.bram, u.bram);
    // Fig 11: tailoring saves a meaningful fraction.
    EXPECT_LT(t.lut * 100, u.lut * 97);
}

TEST(Shell, CrossVendorConstruction)
{
    // The same code builds shells on all four boards — the paper's
    // central claim.
    for (const char *name :
         {"DeviceA", "DeviceB", "DeviceC", "DeviceD"}) {
        Engine engine;
        auto shell = Shell::makeUnified(engine, device(name));
        EXPECT_TRUE(shell->hasHost()) << name;
        EXPECT_GT(shell->shellResources().lut, 0u) << name;
    }
}

TEST(Shell, ChipVendorSelectsIpFamilies)
{
    Engine engine;
    auto xilinx = Shell::makeUnified(engine, device("DeviceA"));
    EXPECT_EQ(xilinx->network().instance().dataProtocol(),
              Protocol::Axi4Stream);
    Engine engine2;
    auto intel = Shell::makeUnified(engine2, device("DeviceD"));
    EXPECT_EQ(intel->network().instance().dataProtocol(),
              Protocol::AvalonStream);
}

TEST(Shell, RegInterconnectReachesAllModules)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    // Both RBB ctrl windows and instance windows are attached.
    EXPECT_EQ(shell->regs().moduleCount(), 2 * shell->rbbs().size());
    // A write through the interconnect reaches the module.
    const Addr a =
        shell->regs().addrOf("net_rbb0", "DIRECTOR_QUEUES");
    shell->regs().write(a, 32);
    EXPECT_EQ(
        shell->network().ctrlRegs().readByName("DIRECTOR_QUEUES"),
        32u);
}

TEST(Shell, KernelRoutesCommandsToRbbs)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    CommandPacket cmd;
    cmd.rbbId = kRbbNetwork;
    cmd.instanceId = 0;
    cmd.commandCode = kCmdModuleInit;
    ASSERT_TRUE(shell->kernel().submit(cmd));
    ASSERT_TRUE(engine.runUntilDone(
        [&] { return shell->kernel().hasResponse(); }, 10'000'000));
    const CommandPacket resp = shell->kernel().popResponse();
    EXPECT_EQ(resp.status, kCmdOk);
    EXPECT_TRUE(shell->network().instance().initialized());
}

TEST(Shell, ConfigSurfacesForPropertyTailoring)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    const auto native = shell->allConfigItems();
    const auto role = shell->roleConfigItems();
    EXPECT_GT(native.size(), role.size() * 4);
}

TEST(Shell, CompileJobIntegratesWithToolchain)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    const CompileJob job = shell->compileJob(
        "secgw", SecGateway::standardRequirements().roleLogic);
    Toolchain tc(VendorAdapter::standardFor(device("DeviceA")));
    const BuildArtifact art = tc.compile(job);
    EXPECT_TRUE(art.success) << (art.log.empty() ? "" : art.log.back());
}

TEST(Shell, PinFeasibilityEnforcedThroughAdapter)
{
    // Asking for more network RBBs than cages must fail at
    // construction, via the device adapter.
    Engine engine;
    ShellConfig cfg = unifiedConfigFor(device("DeviceA"));
    cfg.networks.push_back({100});  // a third MAC on a 2-cage board
    EXPECT_THROW(Shell(engine, device("DeviceA"), cfg, "bad"),
                 FatalError);
}

TEST(Shell, CageRateEnforced)
{
    Engine engine;
    ShellConfig cfg;
    cfg.networks.push_back({400});  // 400G MAC on a 100G cage
    EXPECT_THROW(Shell(engine, device("DeviceA"), cfg, "toofast"),
                 FatalError);
}

TEST(Shell, AccessorsValidate)
{
    Engine engine;
    ShellConfig cfg;  // host only
    Shell shell(engine, device("DeviceC"), cfg, "minimal");
    EXPECT_THROW(shell.network(), FatalError);
    EXPECT_THROW(shell.memory(), FatalError);
    EXPECT_NO_THROW(shell.host());
}

TEST(Shell, InitAndMonitoringOpCountsAggregate)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    EXPECT_GT(shell->registerInitOps(), shell->commandInitOps() * 3);
    EXPECT_GT(shell->monitoringRegOps(),
              shell->monitoringCommandOps() * 5);
}

} // namespace
} // namespace harmonia
