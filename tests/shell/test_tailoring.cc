#include <gtest/gtest.h>

#include "common/logging.h"
#include "drc/checker.h"
#include "shell/tailoring.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

TEST(Tailoring, UnifiedConfigCoversEveryPeripheral)
{
    const ShellConfig cfg = unifiedConfigFor(device("DeviceA"));
    EXPECT_EQ(cfg.networks.size(), 2u);   // QSFPx2
    EXPECT_EQ(cfg.memories.size(), 2u);   // HBM + DDR
    EXPECT_TRUE(cfg.includeHost);
    EXPECT_EQ(cfg.hostQueues, 1024u);
}

TEST(Tailoring, ModuleLevelDropsUnneededRbbs)
{
    RoleRequirements role;
    role.name = "netonly";
    role.needsNetwork = true;
    role.networkGbps = 100;
    role.networkPorts = 1;
    role.needsMemory = false;
    role.needsHost = true;
    role.hostQueues = 16;

    const ShellConfig cfg = tailorConfigFor(device("DeviceA"), role);
    EXPECT_EQ(cfg.networks.size(), 1u);
    EXPECT_TRUE(cfg.memories.empty());  // dropped
    EXPECT_EQ(cfg.hostQueues, 16u);
}

TEST(Tailoring, InstanceSelectionMatchesDemand)
{
    RoleRequirements role;
    role.name = "slow";
    role.needsNetwork = true;
    role.networkGbps = 25;  // 25G is enough
    role.networkPorts = 1;
    const ShellConfig cfg = tailorConfigFor(device("DeviceA"), role);
    ASSERT_EQ(cfg.networks.size(), 1u);
    EXPECT_EQ(cfg.networks[0].gbps, 25u);  // smallest fitting instance
}

TEST(Tailoring, MemorySelectionPrefersSufficientDdr)
{
    RoleRequirements small;
    small.name = "small";
    small.needsMemory = true;
    small.memoryBandwidthGBps = 10;
    const ShellConfig cfg = tailorConfigFor(device("DeviceA"), small);
    ASSERT_EQ(cfg.memories.size(), 1u);
    EXPECT_EQ(cfg.memories[0].kind, PeripheralKind::Ddr4);

    RoleRequirements big;
    big.name = "big";
    big.needsMemory = true;
    big.memoryBandwidthGBps = 200;  // beyond DDR
    const ShellConfig cfg2 = tailorConfigFor(device("DeviceA"), big);
    ASSERT_EQ(cfg2.memories.size(), 1u);
    EXPECT_EQ(cfg2.memories[0].kind, PeripheralKind::Hbm);
    EXPECT_EQ(cfg2.memories[0].channels, 32u);
}

TEST(Tailoring, InfeasibleDemandsAreFatal)
{
    RoleRequirements role;
    role.name = "impossible";
    role.needsNetwork = true;
    role.networkGbps = 400;  // Device A cages are 100G
    EXPECT_THROW(tailorConfigFor(device("DeviceA"), role), FatalError);

    RoleRequirements mem_role;
    mem_role.name = "memless";
    mem_role.needsMemory = true;
    mem_role.memoryBandwidthGBps = 1;
    // Device C has no external memory at all.
    EXPECT_THROW(tailorConfigFor(device("DeviceC"), mem_role),
                 FatalError);

    RoleRequirements q_role;
    q_role.name = "greedy";
    q_role.hostQueues = 5000;
    EXPECT_THROW(tailorConfigFor(device("DeviceA"), q_role),
                 FatalError);
}

TEST(Tailoring, TooMuchBandwidthForDdrOnlyBoardIsFatal)
{
    RoleRequirements role;
    role.name = "bw";
    role.needsMemory = true;
    role.memoryBandwidthGBps = 300;
    // Device B has DDR only (2 channels, ~38 GB/s).
    EXPECT_THROW(tailorConfigFor(device("DeviceB"), role), FatalError);
}

TEST(Tailoring, CageRates)
{
    EXPECT_EQ(cageGbps(PeripheralKind::Qsfp28), 100u);
    EXPECT_EQ(cageGbps(PeripheralKind::Qsfp112), 400u);
    EXPECT_THROW(cageGbps(PeripheralKind::Ddr4), FatalError);
}

TEST(Tailoring, DmaStylePropagatesToTheEngine)
{
    RoleRequirements bulk_role;
    bulk_role.name = "bulk";
    bulk_role.dmaStyle = DmaStyle::Bdma;
    const ShellConfig cfg =
        tailorConfigFor(device("DeviceA"), bulk_role);
    EXPECT_EQ(cfg.dmaStyle, DmaStyle::Bdma);

    Engine engine;
    Shell shell(engine, device("DeviceA"), cfg, "bulk_shell");
    EXPECT_EQ(shell.host().dma().style(), DmaEngineStyle::Bulk);

    Engine engine2;
    Shell sg_shell(engine2, device("DeviceA"),
                   tailorConfigFor(device("DeviceA"),
                                   RoleRequirements{.name = "sg",
                                                    .roleLogic = {}}),
                   "sg_shell");
    EXPECT_EQ(sg_shell.host().dma().style(),
              DmaEngineStyle::ScatterGather);
}

// --- Edge cases where tailoring and the DRC must agree. ---

TEST(Tailoring, ZeroPortNetworkDemandTailorsAwayAndDrcOnlyWarns)
{
    RoleRequirements role;
    role.name = "portless";
    role.needsNetwork = true;
    role.networkPorts = 0;

    // Tailoring accepts the demand and simply places no network RBB.
    const ShellConfig cfg = tailorConfigFor(device("DeviceA"), role);
    EXPECT_TRUE(cfg.networks.empty());

    // The DRC flags the odd demand, but agrees it is buildable.
    const drc::DrcReport report =
        drc::check(device("DeviceA"), cfg, &role);
    EXPECT_EQ(report.errorCount(), 0u);
    EXPECT_TRUE(report.hasRule("TLR-001"));
}

TEST(Tailoring, ChannelsBeyondPeripheralNeverTailoredAndDrcErrors)
{
    // Tailoring never emits more channels than the peripheral has...
    RoleRequirements role;
    role.name = "big";
    role.needsMemory = true;
    role.memoryBandwidthGBps = 200;
    const ShellConfig cfg = tailorConfigFor(device("DeviceA"), role);
    ASSERT_EQ(cfg.memories.size(), 1u);
    EXPECT_LE(cfg.memories[0].channels, 32u);
    EXPECT_EQ(drc::check(device("DeviceA"), cfg, &role).errorCount(),
              0u);

    // ...and a hand-built config that does is a DRC error.
    ShellConfig over = cfg;
    over.memories[0].channels = 33;
    const drc::DrcReport report =
        drc::check(device("DeviceA"), over, &role);
    EXPECT_TRUE(report.hasRule("PERI-002"));
    EXPECT_GT(report.errorCount(), 0u);
}

TEST(Tailoring, ExcessiveHostQueuesRefusedByBothTailoringAndDrc)
{
    RoleRequirements role;
    role.name = "greedy";
    role.hostQueues = 5000;
    EXPECT_THROW(tailorConfigFor(device("DeviceA"), role),
                 FatalError);

    // checkRole never throws; the same refusal surfaces as TLR-002.
    const drc::DrcReport report =
        drc::checkRole(device("DeviceA"), role);
    EXPECT_GT(report.errorCount(), 0u);
    EXPECT_TRUE(report.hasRule("TLR-002"));
}

TEST(Tailoring, HostlessRolesDropTheHostRbb)
{
    RoleRequirements role;
    role.name = "wire_only";
    role.needsNetwork = true;
    role.networkGbps = 100;
    role.networkPorts = 2;
    role.needsHost = false;
    const ShellConfig cfg = tailorConfigFor(device("DeviceB"), role);
    EXPECT_FALSE(cfg.includeHost);
    EXPECT_EQ(cfg.networks.size(), 2u);
}

} // namespace
} // namespace harmonia
