/**
 * @file
 * Self-test for harmonia-analyze: the committed fixture repo trips
 * every rule family, suppression annotations silence exactly the
 * annotated line, and — the CI-blocking acceptance criterion — the
 * real source tree is Error-free.
 */

#include <string>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"

#ifndef HARMONIA_SOURCE_ROOT
#error "HARMONIA_SOURCE_ROOT must point at the repository root"
#endif

namespace harmonia {
namespace {

const std::string kRoot = HARMONIA_SOURCE_ROOT;
const std::string kBadRepo =
    kRoot + "/tests/analysis/fixtures/badrepo";

TEST(Analyze, CleanTreeHasZeroErrors)
{
    const drc::DrcReport report = analysis::analyzeTree(kRoot);
    for (const drc::Diagnostic &d : report.diagnostics())
        if (d.severity == drc::Severity::Error)
            ADD_FAILURE() << d.toString();
    EXPECT_TRUE(report.clean());
}

TEST(Analyze, FixtureTripsEveryRuleFamily)
{
    const drc::DrcReport report = analysis::analyzeTree(kBadRepo);
    EXPECT_FALSE(report.clean());
    for (const char *rule :
         {"LAYER-001", "LAYER-002", "LAYER-003", "DET-001", "DET-002",
          "DET-003", "CMD-W1", "CMD-W2", "TRACE-001", "TRACE-002",
          "TEL-001"})
        EXPECT_TRUE(report.hasRule(rule)) << rule;
}

TEST(Analyze, SuppressionSilencesAnnotatedLine)
{
    const drc::DrcReport report = analysis::analyzeTree(kBadRepo);
    // suppressed.h carries a rand() under an allow(DET-001): the rule
    // still fires elsewhere in the fixture, never in that file.
    EXPECT_TRUE(report.hasRule("DET-001"));
    for (const drc::Diagnostic &d : report.byRule("DET-001"))
        EXPECT_EQ(d.path.find("suppressed"), std::string::npos)
            << d.toString();
}

TEST(Analyze, MissingRootReportsAnalyze000)
{
    const drc::DrcReport report =
        analysis::analyzeTree("/nonexistent/harmonia-tree");
    EXPECT_TRUE(report.hasRule("ANALYZE-000"));
    EXPECT_FALSE(report.clean());
}

TEST(Analyze, RuleFamiliesAreListed)
{
    EXPECT_GE(analysis::ruleFamilies().size(), 4u);
}

} // namespace
} // namespace harmonia
