// Fixture: a directory absent from the layer manifest (LAYER-003).
#ifndef BADREPO_EXTRAS_STRAY_H_
#define BADREPO_EXTRAS_STRAY_H_

inline int
stray()
{
    return 0;
}

#endif // BADREPO_EXTRAS_STRAY_H_
