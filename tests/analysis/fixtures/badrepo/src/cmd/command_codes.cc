// Fixture: toString() switch missing the kCmdOrphan case.
#include "cmd/command_codes.h"

const char *
toString(CommandCode code)
{
    switch (code) {
    default:
        return "unknown";
    }
}
