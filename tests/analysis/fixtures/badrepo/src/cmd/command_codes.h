// Fixture: a command code with no toString() case (CMD-W1) and no
// handler reference anywhere (CMD-W2).
#ifndef BADREPO_CMD_COMMAND_CODES_H_
#define BADREPO_CMD_COMMAND_CODES_H_

enum CommandCode {
    kCmdOrphan = 0x0042,
};

#endif // BADREPO_CMD_COMMAND_CODES_H_
