// Fixture: ticked component declaring an unordered member (DET-003).
#ifndef BADREPO_SIM_TICKER_H_
#define BADREPO_SIM_TICKER_H_

#include <unordered_map>

class Ticker {
  public:
    void tick();

  private:
    std::unordered_map<int, int> table_;
};

#endif // BADREPO_SIM_TICKER_H_
