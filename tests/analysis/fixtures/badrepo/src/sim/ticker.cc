// Fixture: RNG in ticked code (DET-001) and unordered iteration in
// ticked code (DET-002).
#include "sim/ticker.h"

#include <cstdlib>

void
Ticker::tick()
{
    const int jitter = rand();
    for (auto &kv : table_)
        kv.second += jitter;
}
