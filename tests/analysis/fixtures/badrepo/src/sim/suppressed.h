// Fixture: a violation silenced by an allow() annotation — the
// self-test asserts no DET-001 finding lands in this file.
#ifndef BADREPO_SIM_SUPPRESSED_H_
#define BADREPO_SIM_SUPPRESSED_H_

#include <cstdlib>

inline unsigned
fixtureSeed()
{
    // harmonia-lint: allow(DET-001) fixture proves suppression works
    return static_cast<unsigned>(rand());
}

#endif // BADREPO_SIM_SUPPRESSED_H_
