// Fixture: discarded beginSpan() result (TRACE-001), begin with no
// end in the file (TRACE-002), and an out-of-convention metric name
// (TEL-001).
#ifndef BADREPO_TELEMETRY_SPANS_H_
#define BADREPO_TELEMETRY_SPANS_H_

template <typename Tracer, typename Stats>
void
fixtureTouch(Tracer &tracer, Stats &stats)
{
    stats.flush();
    tracer.beginSpan("fixture.span");
    stats.counter("BadMetricName").inc();
}

#endif // BADREPO_TELEMETRY_SPANS_H_
