// Fixture: half of a file-level include cycle (LAYER-001).
#ifndef BADREPO_COMMON_RINGLINK_A_H_
#define BADREPO_COMMON_RINGLINK_A_H_

#include "common/ringlink_b.h"

inline int
ringA()
{
    return 1;
}

#endif // BADREPO_COMMON_RINGLINK_A_H_
