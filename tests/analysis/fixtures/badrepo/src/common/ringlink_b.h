// Fixture: the other half of the include cycle (LAYER-001).
#ifndef BADREPO_COMMON_RINGLINK_B_H_
#define BADREPO_COMMON_RINGLINK_B_H_

#include "common/ringlink_a.h"

inline int
ringB()
{
    return 2;
}

#endif // BADREPO_COMMON_RINGLINK_B_H_
