// Fixture: a lower layer (common) reaching up into sim (LAYER-002).
#ifndef BADREPO_COMMON_BAD_UPWARD_H_
#define BADREPO_COMMON_BAD_UPWARD_H_

#include "sim/ticker.h"

#endif // BADREPO_COMMON_BAD_UPWARD_H_
