#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>

#include "fault/fault_plan.h"
#include "fault/recovery.h"
#include "host/cmd_driver.h"
#include "host/dma_engine.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

/**
 * Chaos seed: fixed by default so CI is reproducible; override with
 * HARMONIA_CHAOS_SEED to sweep other schedules (CI runs one off-seed
 * job exactly for that).
 */
std::uint64_t
chaosSeed()
{
    const char *env = std::getenv("HARMONIA_CHAOS_SEED");
    return env != nullptr ? std::strtoull(env, nullptr, 0)
                          : 20240806ull;
}

/** End state of one chaos run, for accounting and determinism. */
struct ChaosCounters {
    std::uint64_t fingerprint = 0;
    std::uint64_t injected = 0;
    std::uint64_t callsOk = 0;
    std::uint64_t callsFailed = 0;
    std::uint64_t dmaAccepted = 0;
    std::uint64_t dmaRejected = 0;
    std::uint64_t dmaDelivered = 0;
    std::uint64_t dmaLost = 0;
    std::uint64_t dmaOutstanding = 0;
    std::uint64_t degradeEvents = 0;

    bool operator==(const ChaosCounters &) const = default;
};

/**
 * One chaos run: a unified shell with loopback network traffic, DMA
 * traffic on four queues and periodic control commands, all under the
 * scenario's fault schedule. Returns the end-state counters; the run
 * itself must never crash, whatever the schedule injects.
 */
ChaosCounters
runScenario(std::uint64_t seed,
            const std::function<void(FaultPlan &)> &configure)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    shell->network(0).setLoopback(true);

    CmdDriver driver(engine, *shell);
    RetryPolicy retry;
    retry.maxAttempts = 3;
    retry.initialBackoff = 1'000'000;
    retry.maxBackoff = 4'000'000;
    driver.setRetryPolicy(retry);

    HostDma dma(shell->host());
    DmaRecoveryPolicy dma_policy;
    dma_policy.timeout = 20'000'000;
    dma.setRecoveryPolicy(dma_policy);
    for (std::uint16_t q = 1; q <= 4; ++q)
        shell->host().setQueueActive(q, true);

    RecoveryManager recovery(engine, *shell);

    FaultPlan plan(seed);
    configure(plan);
    plan.arm();

    ChaosCounters c;
    std::uint64_t next_id = 1;
    const auto drain = [&] {
        while (shell->network(0).rxAvailable())
            shell->network(0).rxPop();
        for (std::uint16_t q = 1; q <= 4; ++q) {
            while (dma.hasCompletion(q)) {
                dma.popCompletion(q);
                ++c.dmaDelivered;
            }
        }
    };

    for (int round = 0; round < 40; ++round) {
        if (shell->network(0).txReady()) {
            PacketDesc pkt;
            pkt.bytes = 256 + (round % 4) * 64;
            shell->network(0).txPush(pkt);
        }
        const std::uint16_t q =
            static_cast<std::uint16_t>(1 + round % 4);
        if (dma.submit(round % 2 ? DmaDir::H2C : DmaDir::C2H, q, 1024,
                       next_id++))
            ++c.dmaAccepted;
        else
            ++c.dmaRejected;
        if (round % 8 == 0) {
            const CallOutcome out = driver.callChecked(
                kRbbSystem, 0, kCmdTimeCount, {}, 5'000'000);
            if (out.ok())
                ++c.callsOk;
            else
                ++c.callsFailed;
        }
        engine.runFor(2'000'000);
        dma.poll();
        drain();
    }

    // Settle: run past the DMA timeout horizon so every outstanding
    // transfer resolves to delivered, lost or quarantined.
    for (int i = 0; i < 30; ++i) {
        engine.runFor(10'000'000);
        dma.poll();
        drain();
    }

    for (std::uint16_t q = 1; q <= 4; ++q)
        c.dmaOutstanding += dma.outstanding(q);
    c.dmaLost = dma.stats().value("lost_transfers");
    c.fingerprint = plan.fingerprint();
    c.injected = plan.injectedTotal();
    c.degradeEvents = recovery.stats().value("degrade_events");
    return c;
}

/**
 * The invariant every scenario must satisfy: nothing disappears
 * silently. Accepted DMA work is delivered, declared lost, or still
 * tracked; every command call has a verdict.
 */
void
expectAccounted(const ChaosCounters &c)
{
    EXPECT_EQ(c.dmaAccepted,
              c.dmaDelivered + c.dmaLost + c.dmaOutstanding);
    EXPECT_EQ(c.callsOk + c.callsFailed, 5u);
}

TEST(Chaos, BaselineWithoutFaultsIsLossless)
{
    const ChaosCounters c = runScenario(chaosSeed(), [](FaultPlan &) {
    });
    expectAccounted(c);
    EXPECT_EQ(c.injected, 0u);
    EXPECT_EQ(c.callsFailed, 0u);
    EXPECT_EQ(c.dmaLost, 0u);
    EXPECT_EQ(c.dmaOutstanding, 0u);
    EXPECT_EQ(c.dmaDelivered, c.dmaAccepted);
}

TEST(Chaos, CommandPlaneChaosFullyRecovers)
{
    const ChaosCounters c =
        runScenario(chaosSeed(), [](FaultPlan &plan) {
            plan.addWindow(FaultKind::CmdCorrupt, 0, 400'000'000, 0.2,
                           "cmd01");
            plan.addWindow(FaultKind::CmdDrop, 0, 400'000'000, 0.2,
                           "cmd01");
            plan.addWindow(FaultKind::RespDrop, 0, 400'000'000, 0.1,
                           "cmd01");
        });
    expectAccounted(c);
    EXPECT_GT(c.injected, 0u);
    // Command faults never touch the data plane.
    EXPECT_EQ(c.dmaLost, 0u);
    EXPECT_EQ(c.dmaDelivered, c.dmaAccepted);
}

TEST(Chaos, HostPlaneChaosIsAccountedFor)
{
    const ChaosCounters c =
        runScenario(chaosSeed(), [](FaultPlan &plan) {
            // A stalled DMA data path for 30 us, plus a 5% chance of
            // losing any given completion.
            plan.addWindow(FaultKind::DmaStall, 20'000'000,
                           50'000'000, 1.0);
            plan.addWindow(FaultKind::DmaCompletionLoss, 0,
                           400'000'000, 0.05);
        });
    expectAccounted(c);
    EXPECT_GT(c.injected, 0u);
    // Losses are possible but must be declared, never silent; most
    // transfers still make it through the requeue path.
    EXPECT_GT(c.dmaDelivered, 0u);
}

TEST(Chaos, StreamChaosKeepsControlAndHostPlanesClean)
{
    const ChaosCounters c =
        runScenario(chaosSeed(), [](FaultPlan &plan) {
            plan.addWindow(FaultKind::StreamBitFlip, 0, 400'000'000,
                           0.2);
            plan.addWindow(FaultKind::StreamBeatDrop, 0, 400'000'000,
                           0.1);
            plan.addWindow(FaultKind::CdcBeatDrop, 0, 400'000'000,
                           0.05);
            plan.addWindow(FaultKind::LinkFlap, 30'000'000,
                           45'000'000, 1.0);
        });
    expectAccounted(c);
    EXPECT_GT(c.injected, 0u);
    // Stream-layer chaos is isolated: commands and DMA are perfect.
    EXPECT_EQ(c.callsFailed, 0u);
    EXPECT_EQ(c.dmaLost, 0u);
    EXPECT_EQ(c.dmaDelivered, c.dmaAccepted);
}

TEST(Chaos, ThermalChaosDegradesDeclaredly)
{
    const ChaosCounters c =
        runScenario(chaosSeed(), [](FaultPlan &plan) {
            plan.addWindow(FaultKind::ThermalExcursion, 0,
                           60'000'000, 1.0, "", 60'000);
        });
    expectAccounted(c);
    // The excursion trips the alarm and the manager degrades — the
    // declared response, not an outage.
    EXPECT_GE(c.degradeEvents, 1u);
    EXPECT_EQ(c.dmaLost, 0u);
}

TEST(Chaos, EverythingEverywhereStillAccounted)
{
    const ChaosCounters c =
        runScenario(chaosSeed(), [](FaultPlan &plan) {
            plan.addWindow(FaultKind::StreamBitFlip, 0, 400'000'000,
                           0.1);
            plan.addWindow(FaultKind::StreamBeatDrop, 0, 400'000'000,
                           0.05);
            plan.addWindow(FaultKind::CdcBeatDrop, 0, 400'000'000,
                           0.02);
            plan.addWindow(FaultKind::CmdCorrupt, 0, 400'000'000, 0.1,
                           "cmd01");
            plan.addWindow(FaultKind::CmdDrop, 0, 400'000'000, 0.1,
                           "cmd01");
            plan.addWindow(FaultKind::RespDrop, 0, 400'000'000, 0.05,
                           "cmd01");
            plan.addWindow(FaultKind::DmaCompletionLoss, 0,
                           400'000'000, 0.03);
            plan.addWindow(FaultKind::DmaStall, 60'000'000,
                           80'000'000, 1.0);
            plan.addWindow(FaultKind::LinkFlap, 100'000'000,
                           115'000'000, 1.0);
            plan.addOneShot(FaultKind::ThermalExcursion, 150'000'000,
                            "", 60'000);
        });
    expectAccounted(c);
    EXPECT_GT(c.injected, 0u);
}

TEST(Chaos, IdenticalSeedGivesIdenticalEndState)
{
    const auto configure = [](FaultPlan &plan) {
        plan.addWindow(FaultKind::StreamBitFlip, 0, 400'000'000, 0.15);
        plan.addWindow(FaultKind::CmdDrop, 0, 400'000'000, 0.15,
                       "cmd01");
        plan.addWindow(FaultKind::DmaCompletionLoss, 0, 400'000'000,
                       0.05);
    };
    const ChaosCounters a = runScenario(1337, configure);
    const ChaosCounters b = runScenario(1337, configure);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.injected, 0u);

    // And the schedule actually depends on the seed.
    const ChaosCounters other = runScenario(7331, configure);
    EXPECT_NE(a.fingerprint, other.fingerprint);
}

} // namespace
} // namespace harmonia
