#include <gtest/gtest.h>

#include "fault/fault_plan.h"

namespace harmonia {
namespace {

TEST(FaultPlan, WindowFiresOnlyInsideItsSpan)
{
    FaultPlan plan(7);
    plan.addWindow(FaultKind::StreamBitFlip, 100, 200, 1.0);

    EXPECT_FALSE(plan.shouldInject(FaultKind::StreamBitFlip, "x", 99));
    EXPECT_TRUE(plan.shouldInject(FaultKind::StreamBitFlip, "x", 100));
    EXPECT_TRUE(plan.shouldInject(FaultKind::StreamBitFlip, "x", 199));
    EXPECT_FALSE(
        plan.shouldInject(FaultKind::StreamBitFlip, "x", 200));
    EXPECT_EQ(plan.injected(FaultKind::StreamBitFlip), 2u);
    EXPECT_EQ(plan.injectedTotal(), 2u);
}

TEST(FaultPlan, KindAndFilterSelectTheRule)
{
    FaultPlan plan(7);
    plan.addWindow(FaultKind::CmdDrop, 0, 1000, 1.0, "cmd01");

    // Wrong kind, then wrong target, then a hit (substring match).
    EXPECT_FALSE(plan.shouldInject(FaultKind::CmdCorrupt, "cmd01", 5));
    EXPECT_FALSE(plan.shouldInject(FaultKind::CmdDrop, "cmd02", 5));
    EXPECT_TRUE(
        plan.shouldInject(FaultKind::CmdDrop, "shell_cmd01_x", 5));
}

TEST(FaultPlan, OneShotFiresExactlyOnce)
{
    FaultPlan plan(7);
    plan.addOneShot(FaultKind::ThermalExcursion, 500, "", 12'000);

    std::uint64_t param = 0;
    EXPECT_FALSE(plan.shouldInject(FaultKind::ThermalExcursion,
                                   "health", 499, &param));
    // First matching query at/after the scheduled tick fires...
    EXPECT_TRUE(plan.shouldInject(FaultKind::ThermalExcursion,
                                  "health", 640, &param));
    EXPECT_EQ(param, 12'000u);
    // ...and never again.
    EXPECT_FALSE(plan.shouldInject(FaultKind::ThermalExcursion,
                                   "health", 656, &param));
    EXPECT_EQ(plan.injected(FaultKind::ThermalExcursion), 1u);
}

TEST(FaultPlan, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultPlan plan(7);
    plan.addWindow(FaultKind::CdcBeatDrop, 0, 1000, 0.0);
    plan.addWindow(FaultKind::StreamBeatDrop, 0, 1000, 1.0);
    for (Tick t = 0; t < 1000; t += 10) {
        EXPECT_FALSE(plan.shouldInject(FaultKind::CdcBeatDrop, "c", t));
        EXPECT_TRUE(
            plan.shouldInject(FaultKind::StreamBeatDrop, "s", t));
    }
    EXPECT_EQ(plan.injected(FaultKind::CdcBeatDrop), 0u);
    EXPECT_EQ(plan.injected(FaultKind::StreamBeatDrop), 100u);
}

TEST(FaultPlan, FractionalRateLandsNearExpectation)
{
    FaultPlan plan(42);
    plan.addWindow(FaultKind::DmaCompletionLoss, 0, 1'000'000, 0.1);
    for (Tick t = 0; t < 10'000; ++t)
        plan.shouldInject(FaultKind::DmaCompletionLoss, "dma", t);
    const std::uint64_t hits =
        plan.injected(FaultKind::DmaCompletionLoss);
    EXPECT_GT(hits, 700u);
    EXPECT_LT(hits, 1300u);
}

TEST(FaultPlan, IdenticalSeedAndScheduleGiveIdenticalFingerprints)
{
    auto run = [](std::uint64_t seed) {
        FaultPlan plan(seed);
        plan.addWindow(FaultKind::StreamBitFlip, 0, 5000, 0.3, "net");
        plan.addWindow(FaultKind::CmdCorrupt, 100, 4000, 0.2);
        plan.addOneShot(FaultKind::PrLoadFail, 2500);
        for (Tick t = 0; t < 5000; t += 7) {
            plan.shouldInject(FaultKind::StreamBitFlip, "net0", t);
            plan.shouldInject(FaultKind::CmdCorrupt, "cmd01", t);
            plan.shouldInject(FaultKind::PrLoadFail, "pr", t);
        }
        return std::make_pair(plan.fingerprint(),
                              plan.injectedTotal());
    };

    const auto a = run(1234), b = run(1234), c = run(99);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_GT(a.second, 0u);
    // A different seed draws a different schedule.
    EXPECT_NE(a.first, c.first);
}

TEST(FaultPlan, AddingARuleDoesNotPerturbEarlierRuleDraws)
{
    // Each rule owns an independent RNG stream, so extending a plan
    // leaves the faults of existing rules untouched.
    auto run = [](bool extra) {
        FaultPlan plan(77);
        plan.addWindow(FaultKind::StreamBitFlip, 0, 10'000, 0.25);
        if (extra)
            plan.addWindow(FaultKind::RespDrop, 0, 10'000, 0.25);
        for (Tick t = 0; t < 10'000; t += 3)
            plan.shouldInject(FaultKind::StreamBitFlip, "n", t);
        return plan.injected(FaultKind::StreamBitFlip);
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(FaultPlan, LogRecordsEventsInOrderAndStaysBounded)
{
    FaultPlan plan(7);
    plan.addWindow(FaultKind::LinkFlap, 0,
                   static_cast<Tick>(FaultPlan::kMaxLogEntries) * 4,
                   1.0);
    for (Tick t = 0; t < static_cast<Tick>(FaultPlan::kMaxLogEntries) +
                             100;
         ++t)
        plan.shouldInject(FaultKind::LinkFlap, "mac", t);

    EXPECT_EQ(plan.log().size(), FaultPlan::kMaxLogEntries);
    EXPECT_EQ(plan.injectedTotal(), FaultPlan::kMaxLogEntries + 100);
    EXPECT_EQ(plan.log().front().at, 0u);
    EXPECT_EQ(plan.log().front().target, "mac");
    EXPECT_EQ(plan.log()[1].at, 1u);
}

TEST(FaultPlan, ArmGatesTheHookHelper)
{
    EXPECT_EQ(FaultPlan::active(), nullptr);
    EXPECT_FALSE(injectFault(FaultKind::StreamBitFlip, "x", 0));

    {
        FaultPlan plan(7);
        plan.addWindow(FaultKind::StreamBitFlip, 0, 100, 1.0);
        EXPECT_FALSE(injectFault(FaultKind::StreamBitFlip, "x", 0));
        plan.arm();
        EXPECT_EQ(FaultPlan::active(), &plan);
        EXPECT_TRUE(injectFault(FaultKind::StreamBitFlip, "x", 0));
        plan.disarm();
        EXPECT_FALSE(injectFault(FaultKind::StreamBitFlip, "x", 1));
        plan.arm();  // destructor must disarm on scope exit
    }
    EXPECT_EQ(FaultPlan::active(), nullptr);
}

TEST(FaultPlan, EveryKindHasAName)
{
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(FaultKind::kCount); ++k) {
        const char *name = toString(static_cast<FaultKind>(k));
        EXPECT_NE(std::string(name), "?");
    }
}

} // namespace
} // namespace harmonia
