#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "fault/recovery.h"
#include "host/cmd_driver.h"
#include "host/dma_engine.h"
#include "roles/sec_gateway.h"
#include "shell/partial_reconfig.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

/** A unified shell plus an application command driver. */
struct ShellBench {
    Engine engine;
    std::unique_ptr<Shell> shell;
    CmdDriver driver;

    ShellBench()
        : shell(Shell::makeUnified(engine, deviceA())),
          driver(engine, *shell)
    {
    }
};

TEST(CmdRecovery, DroppedCommandIsRetriedToSuccess)
{
    ShellBench b;
    FaultPlan plan(11);
    // The application driver is cmd01; lose its first command.
    plan.addOneShot(FaultKind::CmdDrop, 0, "cmd01");
    plan.arm();

    const CallOutcome out =
        b.driver.callChecked(kRbbSystem, 0, kCmdTimeCount);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.attempts, 2u);
    EXPECT_EQ(b.driver.stats().value("commands_dropped"), 1u);
    EXPECT_EQ(b.driver.stats().value("timeouts"), 1u);
    EXPECT_EQ(b.driver.stats().value("retries"), 1u);
    EXPECT_EQ(plan.injected(FaultKind::CmdDrop), 1u);
}

TEST(CmdRecovery, CorruptedCommandNackedThenRetried)
{
    ShellBench b;
    FaultPlan plan(11);
    plan.addOneShot(FaultKind::CmdCorrupt, 0, "cmd01", 10);
    plan.arm();

    const CallOutcome out =
        b.driver.callChecked(kRbbSystem, 0, kCmdTimeCount);
    ASSERT_TRUE(out.ok());
    EXPECT_GE(out.attempts, 2u);
    EXPECT_EQ(b.driver.stats().value("commands_corrupted"), 1u);
    EXPECT_GE(b.driver.stats().value("nacks"), 1u);
    // The corruption really exercised the kernel's decode counters.
    EXPECT_GE(b.shell->kernel().stats().value("decode_bad_checksum"),
              1u);
}

TEST(CmdRecovery, TruncatedCommandEventuallySucceeds)
{
    ShellBench b;
    FaultPlan plan(11);
    plan.addOneShot(FaultKind::CmdTruncate, 0, "cmd01");
    plan.arm();

    const CallOutcome out =
        b.driver.callChecked(kRbbSystem, 0, kCmdTimeCount);
    ASSERT_TRUE(out.ok());
    EXPECT_GE(out.attempts, 2u);
    EXPECT_EQ(b.driver.stats().value("commands_truncated"), 1u);
    // The half packet stalled the decoder before resync.
    EXPECT_GE(b.shell->kernel().stats().value("decode_truncated"),
              1u);
}

TEST(CmdRecovery, LostResponseIsRetriedToSuccess)
{
    ShellBench b;
    FaultPlan plan(11);
    plan.addOneShot(FaultKind::RespDrop, 0, "cmd01");
    plan.arm();

    const CallOutcome out =
        b.driver.callChecked(kRbbSystem, 0, kCmdTimeCount);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(b.driver.stats().value("responses_dropped"), 1u);
    EXPECT_GE(out.attempts, 2u);
}

TEST(CmdRecovery, CorruptedResponseIsRetriedToSuccess)
{
    ShellBench b;
    FaultPlan plan(11);
    plan.addOneShot(FaultKind::RespCorrupt, 0, "cmd01");
    plan.arm();

    const CallOutcome out =
        b.driver.callChecked(kRbbSystem, 0, kCmdTimeCount);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(b.driver.stats().value("responses_corrupted"), 1u);
    EXPECT_EQ(b.driver.stats().value("bad_responses"), 1u);
}

TEST(CmdRecovery, ExhaustedTransportReportsInsteadOfAborting)
{
    ShellBench b;
    FaultPlan plan(11);
    // Nothing ever gets through.
    plan.addWindow(FaultKind::CmdDrop, 0, 1'000'000'000'000, 1.0);
    plan.arm();

    RetryPolicy fast;
    fast.maxAttempts = 3;
    fast.initialBackoff = 1'000'000;
    b.driver.setRetryPolicy(fast);

    const CallOutcome out = b.driver.callChecked(
        kRbbSystem, 0, kCmdTimeCount, {}, 5'000'000);
    EXPECT_FALSE(out.ok());
    EXPECT_EQ(out.status, CallStatus::Timeout);
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(b.driver.stats().value("exhausted"), 1u);

    // The legacy interface degrades to a synthesized status.
    const CommandPacket resp = b.driver.call(
        kRbbSystem, 0, kCmdTimeCount, {}, 5'000'000);
    EXPECT_EQ(resp.status, kCmdNoResponse);
}

TEST(CmdRecovery, CleanCallStillCountsOneCommand)
{
    ShellBench b;
    const CallOutcome out =
        b.driver.callChecked(kRbbSystem, 0, kCmdTimeCount);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(b.driver.commandCount(), 1u);
    EXPECT_EQ(b.driver.stats().value("retries"), 0u);
}

struct HostDmaBench {
    Engine engine;
    Clock *clk;
    HostRbb rbb;
    HostDma dma;

    HostDmaBench()
        : clk(engine.addClock("clk", 250.0)),
          rbb(engine, clk, Vendor::Xilinx, 4, 16, 64), dma(rbb)
    {
        rbb.setQueueActive(1, true);
        rbb.setQueueActive(2, true);
    }
};

TEST(DmaRecovery, SubmitRejectsAreCountedByCause)
{
    HostDmaBench b;
    // The driver layer rejects inactive queues before the hardware
    // model ever sees the request.
    EXPECT_FALSE(b.dma.submit(DmaDir::H2C, 5, 64));  // inactive
    EXPECT_EQ(b.dma.stats().value("rejected_inactive"), 1u);
    // The hardware model classifies its own rejects the same way.
    EXPECT_FALSE(b.rbb.submit(DmaDir::H2C, 5, 64, 99));
    EXPECT_EQ(b.rbb.monitor().value("rejected_inactive"), 1u);

    // Fill queue 1's staging FIFO (16 deep) until it pushes back.
    int accepted = 0;
    while (b.dma.submit(DmaDir::H2C, 1, 64,
                        static_cast<std::uint64_t>(accepted + 1)))
        ++accepted;
    EXPECT_EQ(accepted, 16);
    EXPECT_EQ(b.dma.stats().value("rejected_backpressure"), 1u);
    EXPECT_EQ(b.rbb.monitor().value("rejected_backpressure"), 1u);
    EXPECT_EQ(b.rbb.monitor().value("rejected"), 2u);
}

TEST(DmaRecovery, LostCompletionTimesOutAndRequeues)
{
    HostDmaBench b;
    FaultPlan plan(5);
    plan.addOneShot(FaultKind::DmaCompletionLoss, 0);
    plan.arm();

    ASSERT_TRUE(b.dma.submit(DmaDir::H2C, 1, 4096, 42));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] {
            b.dma.poll();
            return b.dma.hasCompletion(1);
        },
        500'000'000));

    EXPECT_EQ(b.dma.popCompletion(1).request.id, 42u);
    EXPECT_EQ(b.dma.stats().value("timeouts"), 1u);
    EXPECT_EQ(b.dma.stats().value("requeues"), 1u);
    EXPECT_EQ(b.dma.outstanding(1), 0u);
    EXPECT_EQ(plan.injected(FaultKind::DmaCompletionLoss), 1u);
}

TEST(DmaRecovery, PoisonedQueueIsQuarantinedThenReleased)
{
    HostDmaBench b;
    FaultPlan plan(5);
    // Queue 1 never completes anything.
    plan.addWindow(FaultKind::DmaCompletionLoss, 0,
                   1'000'000'000'000, 1.0);
    plan.arm();

    DmaRecoveryPolicy policy;
    policy.timeout = 10'000'000;
    policy.maxAttempts = 2;
    policy.quarantineStrikes = 1;
    b.dma.setRecoveryPolicy(policy);

    ASSERT_TRUE(b.dma.submit(DmaDir::H2C, 1, 4096, 7));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] {
            b.dma.poll();
            return b.dma.queueQuarantined(1);
        },
        2'000'000'000));

    EXPECT_GE(b.dma.stats().value("lost_transfers"), 1u);
    EXPECT_EQ(b.dma.stats().value("quarantines"), 1u);
    EXPECT_FALSE(b.rbb.queueActive(1));
    EXPECT_FALSE(b.dma.submit(DmaDir::H2C, 1, 64));
    EXPECT_EQ(b.dma.stats().value("rejected_quarantined"), 1u);

    // A healthy queue is unaffected by its neighbor's quarantine.
    plan.disarm();
    ASSERT_TRUE(b.dma.submit(DmaDir::C2H, 2, 512, 8));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] {
            b.dma.poll();
            return b.dma.hasCompletion(2);
        },
        500'000'000));

    // Operator lifts the quarantine; the queue serves again.
    b.dma.releaseQuarantine(1);
    EXPECT_TRUE(b.rbb.queueActive(1));
    ASSERT_TRUE(b.dma.submit(DmaDir::H2C, 1, 512, 9));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] {
            b.dma.poll();
            return b.dma.hasCompletion(1);
        },
        500'000'000));
}

struct PrBench {
    Engine engine;
    std::unique_ptr<Shell> shell;
    PrController pr;

    PrBench()
        : shell(Shell::makeTailored(
              engine, deviceA(), SecGateway::standardRequirements())),
          pr("pr", engine, *shell,
             {ResourceVector{120000, 160000, 200, 0, 100}})
    {
    }
};

TEST(PrRecovery, FailedLoadRetriesThenActivates)
{
    PrBench b;
    FaultPlan plan(3);
    plan.addOneShot(FaultKind::PrLoadFail, 0, "pr");
    plan.arm();

    SecGateway role;
    ASSERT_TRUE(b.pr.load(0, role));
    b.engine.runFor(3 * b.pr.reconfigTime(0) + 10'000'000);

    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Active);
    EXPECT_TRUE(role.active());
    EXPECT_EQ(b.pr.stats().value("load_retries"), 1u);
    EXPECT_EQ(b.pr.stats().value("load_aborted"), 0u);
}

TEST(PrRecovery, PersistentLoadFailureScrubsSlotInsteadOfWedging)
{
    PrBench b;
    FaultPlan plan(3);
    plan.addWindow(FaultKind::PrLoadFail, 0, 1'000'000'000'000, 1.0,
                   "pr");
    plan.arm();

    SecGateway role;
    ASSERT_TRUE(b.pr.load(0, role));
    b.engine.runFor((PrController::kMaxLoadAttempts + 1) *
                        b.pr.reconfigTime(0) +
                    20'000'000);

    // Scrubbed back to Empty — never wedged in Reconfiguring.
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Empty);
    EXPECT_FALSE(role.active());
    EXPECT_EQ(b.pr.stats().value("load_retries"),
              PrController::kMaxLoadAttempts - 1);
    EXPECT_EQ(b.pr.stats().value("load_aborted"), 1u);

    // The slot is usable again once the fault clears.
    plan.disarm();
    SecGateway second;
    ASSERT_TRUE(b.pr.load(0, second));
    b.engine.runFor(b.pr.reconfigTime(0) + 10'000'000);
    EXPECT_EQ(b.pr.slotState(0), PrSlotState::Active);
}

TEST(DegradedMode, OverTempShedsLoadThenRestoresWithHysteresis)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    RecoveryManager recovery(engine, *shell);

    FaultPlan plan(9);
    // A 100 us thermal excursion hot enough to trip the alarm.
    plan.addWindow(FaultKind::ThermalExcursion, 0, 100'000'000, 1.0,
                   "", 60'000);
    plan.arm();

    ASSERT_TRUE(engine.runUntilDone(
        [&] { return recovery.degraded(); }, 200'000'000));
    EXPECT_EQ(recovery.stats().value("degrade_events"), 1u);
    EXPECT_TRUE(shell->health().alarms() & kAlarmOverTemp);
    for (std::size_t i = 0; i < shell->networkCount(); ++i)
        EXPECT_TRUE(shell->network(i).rxShedding());
    // Host queues above the floor were shed.
    EXPECT_GE(recovery.stats().value("queues_shed"), 0u);

    // The excursion ends; the die cools; service is restored after
    // the hysteresis-stable window and the alarm latch is cleared.
    ASSERT_TRUE(engine.runUntilDone(
        [&] { return !recovery.degraded(); }, 500'000'000));
    EXPECT_EQ(recovery.stats().value("restore_events"), 1u);
    EXPECT_EQ(shell->health().alarms(), 0u);
    for (std::size_t i = 0; i < shell->networkCount(); ++i)
        EXPECT_FALSE(shell->network(i).rxShedding());
    EXPECT_EQ(recovery.stats().value("queues_restored"),
              recovery.stats().value("queues_shed"));

    // Hysteresis means no flapping: exactly one cycle of each.
    engine.runFor(100'000'000);
    EXPECT_EQ(recovery.stats().value("degrade_events"), 1u);
    EXPECT_EQ(recovery.stats().value("restore_events"), 1u);
}

TEST(DegradedMode, ExactHysteresisBoundaryDoesNotOscillate)
{
    // The die settles EXACTLY at limit - hysteresis (the restore
    // boundary is `temp + hysteresis <= limit`, so this is the
    // hottest temperature that still counts as cool). One excursion
    // trips the alarm; afterwards the manager must restore exactly
    // once and never flap, because the hysteresis margin guarantees
    // a restorable die cannot immediately re-alarm.
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    RecoveryManager recovery(engine, *shell);

    // Thermal model: temp = ambient + utilization rise + ripple,
    // ripple in [0, 1875]. Zero the utilization so temperature is
    // exactly ambient + ripple, then put the ripple CEILING on the
    // boundary so every sample is at or below it — the worst legal
    // hovering card.
    shell->health().setUtilization(0.0);
    const std::uint32_t limit = shell->health().tempLimitMilliC();
    const std::uint32_t hysteresis =
        recovery.config().hysteresisMilliC;
    shell->health().setAmbientMilliC(limit - hysteresis - 1'875);

    FaultPlan plan(13);
    plan.addOneShot(FaultKind::ThermalExcursion, 0, "", 60'000);
    plan.arm();

    ASSERT_TRUE(engine.runUntilDone(
        [&] { return recovery.degraded(); }, 200'000'000));
    ASSERT_TRUE(engine.runUntilDone(
        [&] { return !recovery.degraded(); }, 500'000'000));

    // Many hysteresis windows later: still exactly one cycle.
    engine.runFor(500'000'000);
    EXPECT_EQ(recovery.stats().value("degrade_events"), 1u);
    EXPECT_EQ(recovery.stats().value("restore_events"), 1u);
    EXPECT_FALSE(recovery.degraded());
    plan.disarm();
}

TEST(DegradedMode, InsideHysteresisBandStaysLatchedDegraded)
{
    // One ripple step past the boundary: the die hovers strictly
    // inside (limit - hysteresis, limit). Not cool enough to
    // restore, not hot enough to re-alarm — the manager must stay
    // latched degraded rather than flap.
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    RecoveryManager recovery(engine, *shell);

    shell->health().setUtilization(0.0);
    const std::uint32_t limit = shell->health().tempLimitMilliC();
    const std::uint32_t hysteresis =
        recovery.config().hysteresisMilliC;
    // Coolest sample (ripple 0) is one step above the boundary;
    // hottest (ripple 1875) stays below the limit.
    shell->health().setAmbientMilliC(limit - hysteresis + 125);

    FaultPlan plan(13);
    plan.addOneShot(FaultKind::ThermalExcursion, 0, "", 60'000);
    plan.arm();

    ASSERT_TRUE(engine.runUntilDone(
        [&] { return recovery.degraded(); }, 200'000'000));
    engine.runFor(1'000'000'000);
    EXPECT_TRUE(recovery.degraded());
    EXPECT_EQ(recovery.stats().value("degrade_events"), 1u);
    EXPECT_EQ(recovery.stats().value("restore_events"), 0u);
    plan.disarm();
}

TEST(DegradedMode, LinkFlapPausesMacAndCountsDownTicks)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, deviceA());
    shell->network(0).setLoopback(true);

    FaultPlan plan(9);
    plan.addWindow(FaultKind::LinkFlap, 0, 10'000'000, 1.0);
    plan.arm();

    PacketDesc pkt;
    pkt.bytes = 256;
    shell->network(0).txPush(pkt);
    engine.runFor(20'000'000);

    MacIp &mac = shell->network(0).mac();
    EXPECT_GT(mac.stats().value("link_down_ticks"), 0u);
    EXPECT_GE(plan.injected(FaultKind::LinkFlap),
              mac.stats().value("link_down_ticks"));
}

} // namespace
} // namespace harmonia
