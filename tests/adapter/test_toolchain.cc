#include <gtest/gtest.h>

#include "adapter/toolchain.h"
#include "common/logging.h"
#include "ip/dma_ip.h"
#include "ip/mac_ip.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

TEST(Toolchain, SuccessfulFlowProducesArtifact)
{
    XilinxCmac mac(100);
    auto dma = makeDma(Vendor::Xilinx, 4, 8, 64);

    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    CompileJob job;
    job.projectName = "demo";
    job.device = &deviceA();
    job.modules = {&mac, dma.get()};
    job.shellLogic = {20000, 30000, 40, 0, 0};
    job.roleLogic = {50000, 60000, 50, 0, 10};

    const BuildArtifact art = tc.compile(job);
    EXPECT_TRUE(art.success) << art.log.back();
    EXPECT_FALSE(art.bitstreamId.empty());
    EXPECT_GT(art.timingSlackNs, 0.0);
    EXPECT_GT(art.total.lut, job.roleLogic.lut);
    EXPECT_LT(art.maxUtilization, 0.5);
}

TEST(Toolchain, DependencyIssueAbortsBeforeSynthesis)
{
    IntelEtileMac mac(100);  // wrong vendor for a Vivado environment
    Toolchain tc(VendorAdapter::standardFor(Vendor::Xilinx));
    CompileJob job;
    job.projectName = "bad";
    job.device = &deviceA();
    job.modules = {&mac};

    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
    bool mentions_dependency = false;
    for (const auto &line : art.log)
        if (line.find("dependency") != std::string::npos)
            mentions_dependency = true;
    EXPECT_TRUE(mentions_dependency);
    EXPECT_EQ(art.total, ResourceVector{});  // never synthesized
}

TEST(Toolchain, OverflowingDesignFailsFit)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    CompileJob job;
    job.projectName = "huge";
    job.device = &deviceA();
    job.roleLogic = {10'000'000, 0, 0, 0, 0};  // > any chip

    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
    bool mentions_fit = false;
    for (const auto &line : art.log)
        if (line.find("does not fit") != std::string::npos)
            mentions_fit = true;
    EXPECT_TRUE(mentions_fit);
}

TEST(Toolchain, CongestedDesignFailsTiming)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    const ResourceVector budget = deviceA().chip().budget;
    CompileJob job;
    job.projectName = "congested";
    job.device = &deviceA();
    job.roleLogic = budget.scaled(0.95);  // fits, but past the wall

    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
    EXPECT_LT(art.timingSlackNs, 0.0);
}

TEST(Toolchain, DeterministicBitstreamIds)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    CompileJob job;
    job.projectName = "stable";
    job.device = &deviceA();
    job.roleLogic = {1000, 1000, 1, 0, 0};
    const BuildArtifact a = tc.compile(job);
    const BuildArtifact b = tc.compile(job);
    EXPECT_EQ(a.bitstreamId, b.bitstreamId);

    job.projectName = "different";
    const BuildArtifact c = tc.compile(job);
    EXPECT_NE(a.bitstreamId, c.bitstreamId);
}

TEST(Toolchain, MissingDeviceIsReported)
{
    Toolchain tc(VendorAdapter::standardFor(Vendor::Xilinx));
    CompileJob job;
    job.projectName = "nodevice";
    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
}

} // namespace
} // namespace harmonia
