#include <gtest/gtest.h>

#include "adapter/toolchain.h"
#include "common/logging.h"
#include "ip/dma_ip.h"
#include "ip/mac_ip.h"
#include "shell/unified_shell.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

TEST(Toolchain, SuccessfulFlowProducesArtifact)
{
    XilinxCmac mac(100);
    auto dma = makeDma(Vendor::Xilinx, 4, 8, 64);

    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    CompileJob job;
    job.projectName = "demo";
    job.device = &deviceA();
    job.modules = {&mac, dma.get()};
    job.shellLogic = {20000, 30000, 40, 0, 0};
    job.roleLogic = {50000, 60000, 50, 0, 10};

    const BuildArtifact art = tc.compile(job);
    EXPECT_TRUE(art.success) << art.log.back();
    EXPECT_FALSE(art.bitstreamId.empty());
    EXPECT_GT(art.timingSlackNs, 0.0);
    EXPECT_GT(art.total.lut, job.roleLogic.lut);
    EXPECT_LT(art.maxUtilization, 0.5);
}

TEST(Toolchain, DependencyIssueAbortsBeforeSynthesis)
{
    IntelEtileMac mac(100);  // wrong vendor for a Vivado environment
    Toolchain tc(VendorAdapter::standardFor(Vendor::Xilinx));
    CompileJob job;
    job.projectName = "bad";
    job.device = &deviceA();
    job.modules = {&mac};

    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
    bool mentions_dependency = false;
    for (const auto &line : art.log)
        if (line.find("dependency") != std::string::npos)
            mentions_dependency = true;
    EXPECT_TRUE(mentions_dependency);
    EXPECT_EQ(art.total, ResourceVector{});  // never synthesized
}

TEST(Toolchain, OverflowingDesignFailsFit)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    CompileJob job;
    job.projectName = "huge";
    job.device = &deviceA();
    job.roleLogic = {10'000'000, 0, 0, 0, 0};  // > any chip

    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
    bool mentions_fit = false;
    for (const auto &line : art.log)
        if (line.find("does not fit") != std::string::npos)
            mentions_fit = true;
    EXPECT_TRUE(mentions_fit);
}

TEST(Toolchain, CongestedDesignFailsTiming)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    const ResourceVector budget = deviceA().chip().budget;
    CompileJob job;
    job.projectName = "congested";
    job.device = &deviceA();
    job.roleLogic = budget.scaled(0.95);  // fits, but past the wall

    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
    EXPECT_LT(art.timingSlackNs, 0.0);
}

TEST(Toolchain, DeterministicBitstreamIds)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    CompileJob job;
    job.projectName = "stable";
    job.device = &deviceA();
    job.roleLogic = {1000, 1000, 1, 0, 0};
    const BuildArtifact a = tc.compile(job);
    const BuildArtifact b = tc.compile(job);
    EXPECT_EQ(a.bitstreamId, b.bitstreamId);

    job.projectName = "different";
    const BuildArtifact c = tc.compile(job);
    EXPECT_NE(a.bitstreamId, c.bitstreamId);
}

TEST(Toolchain, MissingDeviceIsReported)
{
    Toolchain tc(VendorAdapter::standardFor(Vendor::Xilinx));
    CompileJob job;
    job.projectName = "nodevice";
    const BuildArtifact art = tc.compile(job);
    EXPECT_FALSE(art.success);
}

// --- DRC override semantics. ---

/** A shell plan the platform DRC rejects (PERI-003: host queues
 *  beyond the HostRbb ceiling). */
ShellConfig
brokenConfig()
{
    ShellConfig cfg;
    cfg.includeHost = true;
    cfg.hostQueues = 4096;
    return cfg;
}

TEST(Toolchain, DrcOverrideDefaultsOffAndToggles)
{
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    EXPECT_FALSE(tc.drcOverride());
    tc.setDrcOverride(true);
    EXPECT_TRUE(tc.drcOverride());
    tc.setDrcOverride(false);
    EXPECT_FALSE(tc.drcOverride());
}

TEST(Toolchain, DrcOverrideStillLogsEveryFinding)
{
    const ShellConfig broken = brokenConfig();
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    tc.setDrcOverride(true);

    CompileJob job;
    job.projectName = "forced";
    job.device = &deviceA();
    job.shellConfig = &broken;
    job.roleLogic = {1000, 1000, 1, 0, 0};

    const BuildArtifact art = tc.compile(job);
    EXPECT_TRUE(art.success) << art.log.back();
    // The escape hatch is never silent: findings appear in the log
    // and the override is announced before the flow proceeds.
    bool finding_logged = false;
    bool override_logged = false;
    for (const auto &line : art.log) {
        if (line.find("PERI-003") != std::string::npos)
            finding_logged = true;
        if (line.find("[drc] override:") != std::string::npos)
            override_logged = true;
    }
    EXPECT_TRUE(finding_logged);
    EXPECT_TRUE(override_logged);
}

TEST(Toolchain, DrcOverrideDoesNotRelaxStrictShellMode)
{
    // The toolchain override gates only the compile flow; strict
    // shell construction (Shell::setStrictDrc) is an independent
    // process-wide switch and must stay untouched.
    Toolchain tc(VendorAdapter::standardFor(deviceA()));
    tc.setDrcOverride(true);
    EXPECT_FALSE(Shell::strictDrc());

    struct StrictGuard {
        StrictGuard() { Shell::setStrictDrc(true); }
        ~StrictGuard() { Shell::setStrictDrc(false); }
    } guard;

    Engine engine;
    const ShellConfig broken = brokenConfig();
    EXPECT_THROW(
        Shell(engine, deviceA(), broken, "strict_vs_override"),
        FatalError);
}

} // namespace
} // namespace harmonia
