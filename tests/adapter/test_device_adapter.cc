#include <gtest/gtest.h>

#include "adapter/device_adapter.h"
#include "common/logging.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

TEST(DeviceAdapter, StaticGroupDerivedFromDatabase)
{
    DeviceAdapter adapter(deviceA());
    const auto &cfg = adapter.staticConfig();
    EXPECT_EQ(cfg.at("chip.name"), "XCVU35P");
    EXPECT_EQ(cfg.at("chip.vendor"), "Xilinx");
    EXPECT_EQ(cfg.at("chip.process_nm"), "16");
    EXPECT_EQ(cfg.at("peripheral.count"), "4");
    // Channel numbers are inherent static properties (§3.2).
    EXPECT_EQ(cfg.at("peripheral.0.kind"), "HBM");
    EXPECT_EQ(cfg.at("peripheral.0.channels"), "32");
}

TEST(DeviceAdapter, DynamicClockMapping)
{
    DeviceAdapter adapter(deviceA());
    const ClockMapping &m = adapter.mapClock("user_clk", 250.0);
    EXPECT_EQ(m.pllIndex, 0u);
    const ClockMapping &m2 = adapter.mapClock("net_clk", 322.0);
    EXPECT_EQ(m2.pllIndex, 1u);
    EXPECT_EQ(adapter.clockMappings().size(), 2u);
}

TEST(DeviceAdapter, ClockBudgetAndDuplicatesEnforced)
{
    DeviceAdapter adapter(deviceA());
    adapter.mapClock("a", 100);
    EXPECT_THROW(adapter.mapClock("a", 200), FatalError);
    EXPECT_THROW(adapter.mapClock("bad", 0), FatalError);
    for (unsigned i = 1; i < DeviceAdapter::kPllBudget; ++i)
        adapter.mapClock(format("c%u", i), 100 + i);
    EXPECT_THROW(adapter.mapClock("overflow", 100), FatalError);
}

TEST(DeviceAdapter, PinMappingValidatesHardware)
{
    DeviceAdapter adapter(deviceA());
    adapter.mapPins("net0", PeripheralKind::Qsfp28, 0);
    adapter.mapPins("net1", PeripheralKind::Qsfp28, 1);
    // Device A has 2 QSFP cages; a third is a user error.
    EXPECT_THROW(adapter.mapPins("net2", PeripheralKind::Qsfp28, 2),
                 FatalError);
    // Device A has no DSFP at all.
    EXPECT_THROW(adapter.mapPins("x", PeripheralKind::Dsfp, 0),
                 FatalError);
    // Double-claiming an instance is a user error.
    EXPECT_THROW(adapter.mapPins("dup", PeripheralKind::Qsfp28, 0),
                 FatalError);
}

TEST(DeviceAdapter, ConstraintScriptCoversMappings)
{
    DeviceAdapter adapter(deviceA());
    adapter.mapClock("user_clk", 250.0);
    adapter.mapPins("net0", PeripheralKind::Qsfp28, 0);
    const auto lines = adapter.emitConstraintScript();
    ASSERT_EQ(lines.size(), 3u);  // header + clock + pins
    EXPECT_NE(lines[1].find("create_clock"), std::string::npos);
    EXPECT_NE(lines[1].find("user_clk"), std::string::npos);
    EXPECT_NE(lines[2].find("QSFP28_0"), std::string::npos);
}

TEST(DeviceAdapter, PcieStaticGroupHasLanesAndVfs)
{
    DeviceAdapter adapter(deviceA());
    const auto &cfg = adapter.staticConfig();
    // Peripheral 3 is the PCIe attachment on device A.
    EXPECT_EQ(cfg.at("peripheral.3.kind"), "PCIe-Gen4");
    EXPECT_EQ(cfg.at("peripheral.3.lanes"), "8");
    EXPECT_EQ(cfg.at("peripheral.3.virtual_functions"), "4");
}

} // namespace
} // namespace harmonia
