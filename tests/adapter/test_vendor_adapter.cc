#include <gtest/gtest.h>

#include "adapter/vendor_adapter.h"
#include "common/logging.h"
#include "ip/dma_ip.h"
#include "ip/mac_ip.h"
#include "ip/memory_ip.h"

namespace harmonia {
namespace {

TEST(VendorAdapter, StandardEnvironmentSatisfiesMatchingIps)
{
    const VendorAdapter xenv =
        VendorAdapter::standardFor(Vendor::Xilinx);
    XilinxCmac mac(100);
    XilinxMigDdr4 ddr(1);
    EXPECT_TRUE(xenv.compatible({&mac, &ddr}));

    const VendorAdapter ienv =
        VendorAdapter::standardFor(Vendor::Intel);
    IntelEtileMac imac(100);
    EXPECT_TRUE(ienv.compatible({&imac}));
}

TEST(VendorAdapter, CrossVendorModulesAreFlagged)
{
    const VendorAdapter ienv =
        VendorAdapter::standardFor(Vendor::Intel);
    XilinxCmac mac(100);
    const auto issues = ienv.inspect({&mac});
    ASSERT_FALSE(issues.empty());
    // Wrong CAD tool is among the mismatches.
    bool cad_flagged = false;
    for (const auto &i : issues)
        if (i.key == "cad_tool")
            cad_flagged = true;
    EXPECT_TRUE(cad_flagged);
}

TEST(VendorAdapter, MissingVsMismatchedDistinguished)
{
    VendorAdapter env(Vendor::Xilinx);
    env.provide("cad_tool", "vivado-2021.1");  // stale version
    XilinxCmac mac(100);
    const auto issues = env.inspect({&mac});
    bool saw_mismatch = false, saw_missing = false;
    for (const auto &i : issues) {
        if (i.key == "cad_tool") {
            EXPECT_EQ(i.found, "vivado-2021.1");
            saw_mismatch = true;
        }
        if (i.key == "ip:cmac_usplus") {
            EXPECT_TRUE(i.found.empty());
            saw_missing = true;
        }
    }
    EXPECT_TRUE(saw_mismatch);
    EXPECT_TRUE(saw_missing);
}

TEST(VendorAdapter, IssueToStringIsActionable)
{
    DependencyIssue missing{"modA", "ip:foo", "1.0", ""};
    EXPECT_NE(missing.toString().find("missing"), std::string::npos);
    DependencyIssue mismatch{"modA", "cad_tool", "a", "b"};
    EXPECT_NE(mismatch.toString().find("mismatch"),
              std::string::npos);
}

TEST(VendorAdapter, DeadProvidesAreVisibleButNotBlocking)
{
    VendorAdapter env(Vendor::Xilinx);
    env.provide("cad_tool", "vivado-2023.2");
    env.provide("ip:cmac_usplus", "3.1");
    env.provide("gt_type", "GTY");
    env.provide("ip:retired_widget", "0.1");  // nothing wants this
    XilinxCmac mac(100);

    // compatible() semantics are unchanged by the dead provide.
    EXPECT_TRUE(env.compatible({&mac}));

    const auto issues = env.inspect({&mac});
    std::size_t dead = 0;
    for (const auto &i : issues) {
        if (i.kind != DependencyIssue::Kind::DeadProvide)
            continue;
        ++dead;
        EXPECT_FALSE(i.blocking());
        EXPECT_EQ(i.key, "ip:retired_widget");
        EXPECT_NE(i.toString().find("no module consumes"),
                  std::string::npos);
    }
    EXPECT_EQ(dead, 1u);
}

TEST(VendorAdapter, IssueKindsClassifyInspectionFindings)
{
    VendorAdapter env(Vendor::Xilinx);
    env.provide("cad_tool", "vivado-2021.1");  // stale
    XilinxCmac mac(100);
    bool saw_missing = false, saw_mismatch = false;
    for (const auto &i : env.inspect({&mac})) {
        if (i.kind == DependencyIssue::Kind::Missing) {
            saw_missing = true;
            EXPECT_TRUE(i.blocking());
        }
        if (i.kind == DependencyIssue::Kind::Mismatch) {
            saw_mismatch = true;
            EXPECT_TRUE(i.blocking());
        }
    }
    EXPECT_TRUE(saw_missing);
    EXPECT_TRUE(saw_mismatch);
    EXPECT_FALSE(env.compatible({&mac}));
}

TEST(VendorAdapter, DeviceEnvironmentPinsPcieHardIp)
{
    const auto &db = DeviceDatabase::instance();
    const VendorAdapter env_a =
        VendorAdapter::standardFor(db.byName("DeviceA"));
    // Device A: Xilinx chip, Gen4 x8.
    EXPECT_EQ(env_a.environment().at("pcie_hard_ip"),
              "pcie4_uscale_plus:gen4_x8");

    const VendorAdapter env_d =
        VendorAdapter::standardFor(db.byName("DeviceD"));
    EXPECT_EQ(env_d.environment().at("pcie_hard_ip"),
              "ptile:gen4_x16");

    // The right DMA model passes inspection against its board env.
    auto dma = makeDma(Vendor::Intel, 4, 16, 64);
    EXPECT_TRUE(env_d.compatible({dma.get()}));
    // A Gen4 x8 build fails on a x16 board environment (wrong hard
    // IP variant) — caught before compilation, not during.
    auto dma_x8 = makeDma(Vendor::Intel, 4, 16, 64);
    const VendorAdapter env_a_intel =
        VendorAdapter::standardFor(db.byName("DeviceA"));
    EXPECT_FALSE(env_a_intel.compatible({dma_x8.get()}));
}

TEST(VendorAdapter, NullModulePanics)
{
    const VendorAdapter env =
        VendorAdapter::standardFor(Vendor::Xilinx);
    EXPECT_THROW(env.inspect({nullptr}), PanicError);
}

TEST(VendorAdapter, InHouseBoardsUseChipVendorToolchain)
{
    const auto &db = DeviceDatabase::instance();
    // Device C: in-house board, Intel chip -> Quartus environment.
    const VendorAdapter env =
        VendorAdapter::standardFor(db.byName("DeviceC"));
    EXPECT_EQ(env.environment().at("cad_tool"), "quartus-23.4");
}

} // namespace
} // namespace harmonia
