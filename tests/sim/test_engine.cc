#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

TEST(Engine, SingleDomainTickCount)
{
    Engine e;
    Clock *clk = e.addClock("clk", 250.0);
    int ticks = 0;
    FunctionComponent c("c", [&] { ++ticks; });
    e.add(&c, clk);

    e.runFor(40'000);  // 10 cycles at 4 ns
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(clk->cycle(), 10u);
    EXPECT_EQ(e.now(), 40'000u);
}

TEST(Engine, TwoDomainsRatio)
{
    Engine e;
    Clock *fast = e.addClock("fast", 500.0);  // 2 ns
    Clock *slow = e.addClock("slow", 125.0);  // 8 ns
    int fast_ticks = 0, slow_ticks = 0;
    FunctionComponent cf("f", [&] { ++fast_ticks; });
    FunctionComponent cs("s", [&] { ++slow_ticks; });
    e.add(&cf, fast);
    e.add(&cs, slow);

    e.runFor(80'000);  // 80 ns
    EXPECT_EQ(fast_ticks, 40);
    EXPECT_EQ(slow_ticks, 10);
}

TEST(Engine, RegistrationOrderWithinDomain)
{
    Engine e;
    Clock *clk = e.addClock("clk", 100.0);
    std::vector<int> order;
    FunctionComponent a("a", [&] { order.push_back(1); });
    FunctionComponent b("b", [&] { order.push_back(2); });
    e.add(&a, clk);
    e.add(&b, clk);

    e.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Engine, RunCycles)
{
    Engine e;
    Clock *a = e.addClock("a", 300.0);
    Clock *b = e.addClock("b", 100.0);
    (void)b;
    e.runCycles(a, 7);
    EXPECT_EQ(a->cycle(), 7u);
}

TEST(Engine, RunUntilDone)
{
    Engine e;
    Clock *clk = e.addClock("clk", 100.0);
    int ticks = 0;
    FunctionComponent c("c", [&] { ++ticks; });
    e.add(&c, clk);

    EXPECT_TRUE(e.runUntilDone([&] { return ticks >= 5; }, 1'000'000));
    EXPECT_EQ(ticks, 5);

    EXPECT_FALSE(
        e.runUntilDone([&] { return ticks >= 1000; }, 50'000));
}

TEST(Engine, ComponentNowAndCycle)
{
    Engine e;
    Clock *clk = e.addClock("clk", 250.0);
    Tick seen_now = 0;
    Cycles seen_cycle = 0;
    FunctionComponent *cp = nullptr;
    FunctionComponent c("c", [&] {
        seen_now = cp->now();
        seen_cycle = cp->cycle();
    });
    cp = &c;
    e.add(&c, clk);
    e.step();
    EXPECT_EQ(seen_now, 4000u);
    EXPECT_EQ(seen_cycle, 1u);
}

TEST(Engine, DoubleRegistrationRejected)
{
    Engine e;
    Clock *clk = e.addClock("clk", 100.0);
    FunctionComponent c("c", [] {});
    e.add(&c, clk);
    EXPECT_THROW(e.add(&c, clk), FatalError);
}

TEST(Engine, ForeignClockRejected)
{
    Engine e1, e2;
    Clock *clk2 = e2.addClock("clk", 100.0);
    FunctionComponent c("c", [] {});
    EXPECT_THROW(e1.add(&c, clk2), FatalError);
}

TEST(Engine, StepWithNoClocksRejected)
{
    Engine e;
    EXPECT_THROW(e.step(), FatalError);
}

TEST(Engine, RunUntilSetsExactTime)
{
    Engine e;
    e.addClock("clk", 100.0);
    e.runUntil(12'345);
    EXPECT_EQ(e.now(), 12'345u);
}

} // namespace
} // namespace harmonia
