#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

TEST(Engine, SingleDomainTickCount)
{
    Engine e;
    Clock *clk = e.addClock("clk", 250.0);
    int ticks = 0;
    FunctionComponent c("c", [&] { ++ticks; });
    e.add(&c, clk);

    e.runFor(40'000);  // 10 cycles at 4 ns
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(clk->cycle(), 10u);
    EXPECT_EQ(e.now(), 40'000u);
}

TEST(Engine, TwoDomainsRatio)
{
    Engine e;
    Clock *fast = e.addClock("fast", 500.0);  // 2 ns
    Clock *slow = e.addClock("slow", 125.0);  // 8 ns
    int fast_ticks = 0, slow_ticks = 0;
    FunctionComponent cf("f", [&] { ++fast_ticks; });
    FunctionComponent cs("s", [&] { ++slow_ticks; });
    e.add(&cf, fast);
    e.add(&cs, slow);

    e.runFor(80'000);  // 80 ns
    EXPECT_EQ(fast_ticks, 40);
    EXPECT_EQ(slow_ticks, 10);
}

TEST(Engine, RegistrationOrderWithinDomain)
{
    Engine e;
    Clock *clk = e.addClock("clk", 100.0);
    std::vector<int> order;
    FunctionComponent a("a", [&] { order.push_back(1); });
    FunctionComponent b("b", [&] { order.push_back(2); });
    e.add(&a, clk);
    e.add(&b, clk);

    e.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Engine, RunCycles)
{
    Engine e;
    Clock *a = e.addClock("a", 300.0);
    Clock *b = e.addClock("b", 100.0);
    (void)b;
    e.runCycles(a, 7);
    EXPECT_EQ(a->cycle(), 7u);
}

TEST(Engine, RunUntilDone)
{
    Engine e;
    Clock *clk = e.addClock("clk", 100.0);
    int ticks = 0;
    FunctionComponent c("c", [&] { ++ticks; });
    e.add(&c, clk);

    EXPECT_TRUE(e.runUntilDone([&] { return ticks >= 5; }, 1'000'000));
    EXPECT_EQ(ticks, 5);

    EXPECT_FALSE(
        e.runUntilDone([&] { return ticks >= 1000; }, 50'000));
}

TEST(Engine, ComponentNowAndCycle)
{
    Engine e;
    Clock *clk = e.addClock("clk", 250.0);
    Tick seen_now = 0;
    Cycles seen_cycle = 0;
    FunctionComponent *cp = nullptr;
    FunctionComponent c("c", [&] {
        seen_now = cp->now();
        seen_cycle = cp->cycle();
    });
    cp = &c;
    e.add(&c, clk);
    e.step();
    EXPECT_EQ(seen_now, 4000u);
    EXPECT_EQ(seen_cycle, 1u);
}

TEST(Engine, DoubleRegistrationRejected)
{
    Engine e;
    Clock *clk = e.addClock("clk", 100.0);
    FunctionComponent c("c", [] {});
    e.add(&c, clk);
    EXPECT_THROW(e.add(&c, clk), FatalError);
}

TEST(Engine, ForeignClockRejected)
{
    Engine e1, e2;
    Clock *clk2 = e2.addClock("clk", 100.0);
    FunctionComponent c("c", [] {});
    EXPECT_THROW(e1.add(&c, clk2), FatalError);
}

TEST(Engine, StepWithNoClocksRejected)
{
    Engine e;
    EXPECT_THROW(e.step(), FatalError);
}

TEST(Engine, RunUntilSetsExactTime)
{
    Engine e;
    e.addClock("clk", 100.0);
    e.runUntil(12'345);
    EXPECT_EQ(e.now(), 12'345u);
}

TEST(Engine, RunUntilNeverRewindsTime)
{
    Engine e;
    Clock *clk = e.addClock("clk", 250.0);
    e.runFor(40'000);
    ASSERT_EQ(e.now(), 40'000u);

    // A target already in the past must clamp, not rewind: rewinding
    // now_ (and the clock cycles with it) would replay edges.
    e.runUntil(5'000);
    EXPECT_EQ(e.now(), 40'000u);
    EXPECT_EQ(clk->cycle(), 10u);
}

// --- Idle fast-forward: parity with the tick-by-tick engine. ---

/**
 * Does observable work every @p interval cycles and reports itself
 * idle (with an exact wake) in between — the HealthMonitor shape.
 */
class PeriodicCounter : public Component {
  public:
    PeriodicCounter(std::string name, Cycles interval)
        : Component(std::move(name)), interval_(interval)
    {
    }

    void tick() override
    {
        if (cycle() % interval_ == 0) {
            ++count_;
            at_.push_back(now());
        }
    }
    bool idle() const override { return cycle() % interval_ != 0; }
    Tick wakeTime() const override
    {
        return clock()->cyclesToTicks(
            (cycle() / interval_ + 1) * interval_);
    }

    std::uint64_t count_ = 0;
    std::vector<Tick> at_;

  private:
    Cycles interval_;
};

/** Fires once at the first edge at or after @p when, then sleeps. */
class OneShotAlarm : public Component {
  public:
    OneShotAlarm(std::string name, Tick when)
        : Component(std::move(name)), when_(when)
    {
    }

    void tick() override
    {
        if (!fired_ && now() >= when_) {
            fired_ = true;
            firedAt_ = now();
        }
    }
    bool idle() const override { return fired_ || now() < when_; }
    Tick wakeTime() const override
    {
        return fired_ ? kTickMax : when_;
    }

    Tick when_;
    bool fired_ = false;
    Tick firedAt_ = 0;
};

/**
 * One fixture's worth of state: two multi-ratio domains (the shell's
 * 250 MHz kernel clock against a 322.27 MHz line clock), periodic
 * work on both and a one-shot alarm in the middle of a long gap.
 */
struct FfScenario {
    Engine engine;
    Clock *kernel;
    Clock *line;
    PeriodicCounter slow{"slow", 64};
    PeriodicCounter fast{"fast", 48};
    OneShotAlarm alarm{"alarm", 777'777};

    explicit FfScenario(bool fast_forward)
        : kernel(engine.addClock("kernel", 250.0)),
          line(engine.addClock("line", 322.27))
    {
        engine.setIdleFastForward(fast_forward);
        engine.add(&slow, kernel);
        engine.add(&fast, line);
        engine.add(&alarm, line);
    }
};

TEST(Engine, FastForwardMatchesTickByTick)
{
    FfScenario serial(false);
    FfScenario ff(true);

    // Cross several intermediate deadlines so clamping at arbitrary
    // (non-edge) stop times is exercised too, not just the end state.
    for (const Tick t :
         {100'000u, 777'000u, 800'001u, 2'000'000u, 5'000'003u}) {
        serial.engine.runUntil(t);
        ff.engine.runUntil(t);
        ASSERT_EQ(serial.engine.now(), ff.engine.now()) << t;
        ASSERT_EQ(serial.kernel->cycle(), ff.kernel->cycle()) << t;
        ASSERT_EQ(serial.line->cycle(), ff.line->cycle()) << t;
    }

    EXPECT_EQ(serial.slow.count_, ff.slow.count_);
    EXPECT_EQ(serial.slow.at_, ff.slow.at_);
    EXPECT_EQ(serial.fast.count_, ff.fast.count_);
    EXPECT_EQ(serial.fast.at_, ff.fast.at_);
    EXPECT_GT(ff.slow.count_, 10u);
}

TEST(Engine, MidGapWakeNeverSkipped)
{
    FfScenario serial(false);
    FfScenario ff(true);
    serial.engine.runUntil(5'000'000);
    ff.engine.runUntil(5'000'000);

    // The alarm sits mid-gap between the periodic counters' wakes; a
    // fast-forward that trusted only the active components would jump
    // straight over it.
    ASSERT_TRUE(serial.alarm.fired_);
    ASSERT_TRUE(ff.alarm.fired_);
    EXPECT_EQ(serial.alarm.firedAt_, ff.alarm.firedAt_);
    EXPECT_GE(ff.alarm.firedAt_, ff.alarm.when_);
    // ...and it fired at the *first* line-clock edge past the wake.
    EXPECT_LT(ff.alarm.firedAt_ - ff.alarm.when_,
              ff.line->cyclesToTicks(1));
}

TEST(Engine, RunUntilDoneOvershootMatchesSerial)
{
    const auto run = [](bool fast_forward) {
        Engine e;
        e.setIdleFastForward(fast_forward);
        Clock *clk = e.addClock("clk", 322.27);
        OneShotAlarm alarm("alarm", 9'999'999);  // beyond deadline
        e.add(&alarm, clk);
        // done() is time-dependent: the engine must stop on exactly
        // the first edge at or after the deadline, not at the far
        // wake point.
        EXPECT_FALSE(
            e.runUntilDone([&] { return false; }, 123'456));
        return e.now();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(Engine, ScheduledEventWakesIdleEngine)
{
    const auto run = [](bool fast_forward) {
        Engine e;
        e.setIdleFastForward(fast_forward);
        Clock *clk = e.addClock("clk", 250.0);
        OneShotAlarm sleeper("sleeper", kTickMax);  // idle forever
        e.add(&sleeper, clk);
        e.scheduleEvent(1'000'001);  // host-side deadline hint
        EXPECT_TRUE(e.runUntilDone(
            [&] { return e.now() > 1'000'000; }, 100'000'000));
        return e.now();
    };
    const Tick serial = run(false);
    EXPECT_EQ(serial, run(true));
    EXPECT_GT(serial, 1'000'000u);
    // First edge past the hint, not some later wake.
    EXPECT_LE(serial, 1'004'000u);
}

TEST(Engine, StepSkipsIdleWorkWhenFastForwarding)
{
    Engine e;
    e.setIdleFastForward(true);
    Clock *clk = e.addClock("clk", 250.0);
    PeriodicCounter counter("c", 4);
    int raw_ticks = 0;
    FunctionComponent probe("probe", [&] { ++raw_ticks; });
    e.add(&counter, clk);
    e.add(&probe, clk);

    // step() still commits one edge at a time (benches drive it), but
    // idle components are skipped on the edges where they report idle.
    for (int i = 0; i < 8; ++i)
        e.step();
    EXPECT_EQ(raw_ticks, 8);          // default components never skip
    EXPECT_EQ(counter.count_, 2u);    // cycles 4 and 8
    EXPECT_EQ(counter.at_.size(), 2u);
}

} // namespace
} // namespace harmonia
