#include <gtest/gtest.h>

#include <cstdlib>

#include "cmd/control_kernel.h"
#include "common/logging.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace harmonia {
namespace {

/** RAII guard: enable tracing for one test, restore after. */
struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST(Trace, DisabledByDefaultAndFreeWhenOff)
{
    Trace::instance().clear();
    ASSERT_FALSE(Trace::instance().enabled());
    Trace::instance().record(100, "x", "y");
    EXPECT_EQ(Trace::instance().size(), 0u);
}

TEST(Trace, RecordsComponentEvents)
{
    TraceGuard guard;
    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);
    FunctionComponent *cp = nullptr;
    FunctionComponent c("worker", [&] {
        trace(*cp, "tick %llu",
              static_cast<unsigned long long>(cp->cycle()));
    });
    cp = &c;
    engine.add(&c, clk);
    engine.runCycles(clk, 3);

    ASSERT_EQ(Trace::instance().size(), 3u);
    const auto &entries = Trace::instance().entries();
    EXPECT_EQ(entries[0].who, "worker");
    EXPECT_EQ(entries[0].what, "tick 1");
    EXPECT_EQ(entries[2].tick, 30'000u);  // 3rd edge of 100 MHz
}

TEST(Trace, RingBounded)
{
    TraceGuard guard;
    for (std::size_t i = 0; i < Trace::kCapacity + 50; ++i)
        Trace::instance().record(i, "a", "b");
    EXPECT_EQ(Trace::instance().size(), Trace::kCapacity);
    EXPECT_EQ(Trace::instance().entries().front().tick, 50u);
}

TEST(Trace, DumpRendersReadableLines)
{
    TraceGuard guard;
    Trace::instance().record(1'500'000, "uck", "executed ModuleInit");
    const std::string out = Trace::instance().dump();
    EXPECT_NE(out.find("uck"), std::string::npos);
    EXPECT_NE(out.find("ModuleInit"), std::string::npos);
    EXPECT_NE(out.find("us"), std::string::npos);  // human time
}

TEST(Trace, SetCapacityPreservesNewestEntries)
{
    TraceGuard guard;
    for (Tick t = 0; t < 100; ++t)
        Trace::instance().record(t, "a", "b");
    Trace::instance().setCapacity(10);
    ASSERT_EQ(Trace::instance().size(), 10u);
    const auto entries = Trace::instance().entries();
    EXPECT_EQ(entries.front().tick, 90u);
    EXPECT_EQ(entries.back().tick, 99u);
    // Capacity 0 clamps to 1 rather than wedging the ring.
    Trace::instance().setCapacity(0);
    EXPECT_EQ(Trace::instance().capacity(), 1u);
    Trace::instance().record(123, "a", "b");
    EXPECT_EQ(Trace::instance().size(), 1u);
    Trace::instance().setCapacity(Trace::kCapacity);
}

TEST(Trace, SpanPairingMeasuresDuration)
{
    TraceGuard guard;
    const SpanId id =
        Trace::instance().beginSpan(1000, "wrap", "ingress", "wrapper");
    ASSERT_NE(id, 0u);
    EXPECT_EQ(Trace::instance().openSpanCount(), 1u);
    EXPECT_EQ(Trace::instance().endSpan(id, 4000), 3000u);
    EXPECT_EQ(Trace::instance().openSpanCount(), 0u);
    ASSERT_EQ(Trace::instance().spanCount(), 1u);
    const auto spans = Trace::instance().spans();
    EXPECT_EQ(spans[0].begin, 1000u);
    EXPECT_EQ(spans[0].end, 4000u);
    EXPECT_EQ(spans[0].who, "wrap");
    EXPECT_EQ(spans[0].cat, "wrapper");
}

TEST(Trace, UnmatchedSpanEndsAreCountedNotRecorded)
{
    TraceGuard guard;
    EXPECT_EQ(Trace::instance().endSpan(0, 100), 0u);  // "no span" id
    EXPECT_EQ(Trace::instance().endSpan(777, 100), 0u);
    EXPECT_EQ(Trace::instance().spanCount(), 0u);
    // endSpan(0) is the documented no-op for disabled begins; only the
    // genuinely unknown id counts as unmatched.
    EXPECT_EQ(Trace::instance().unmatchedEnds(), 1u);
}

TEST(Trace, SpansFreeWhenDisabled)
{
    Trace::instance().clear();
    ASSERT_FALSE(Trace::instance().enabled());
    EXPECT_EQ(Trace::instance().beginSpan(1, "a", "b"), 0u);
    Trace::instance().completeSpan(1, 2, "a", "b");
    EXPECT_EQ(Trace::instance().spanCount(), 0u);
    EXPECT_EQ(Trace::instance().openSpanCount(), 0u);
}

TEST(Trace, CompleteSpanRecordsPreMeasuredInterval)
{
    TraceGuard guard;
    Trace::instance().completeSpan(500, 900, "mem", "mem_read",
                                   "wrapper");
    ASSERT_EQ(Trace::instance().spanCount(), 1u);
    const auto spans = Trace::instance().spans();
    EXPECT_EQ(spans[0].end - spans[0].begin, 400u);
}

TEST(Trace, AmbientContextStampsNewSpans)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const std::uint64_t corr = t.newCorrelation();
    const SpanId root = t.beginSpan(0, "drv", "call", "command",
                                    TraceContext{0, corr});
    {
        ScopedTraceContext scope(TraceContext{root, corr});
        const SpanId child = t.beginSpan(10, "uck", "decode");
        t.endSpan(child, 20);
        t.completeSpan(12, 18, "rbb", "exec");
    }
    // Scope popped: back to the unarmed default.
    EXPECT_FALSE(t.context().armed());
    t.endSpan(root, 30);

    const auto spans = t.spans();
    ASSERT_EQ(spans.size(), 3u);
    for (const Trace::Span &s : spans)
        EXPECT_EQ(s.corr, corr) << s.who;
    EXPECT_EQ(spans[0].parent, root);  // child closed first
    EXPECT_EQ(spans[1].parent, root);
    EXPECT_EQ(spans[2].parent, 0u);    // the root itself
}

TEST(Trace, ScopedContextsNest)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    ScopedTraceContext outer(TraceContext{11, 1});
    {
        ScopedTraceContext inner(TraceContext{22, 1});
        EXPECT_EQ(t.context().parent, 22u);
    }
    EXPECT_EQ(t.context().parent, 11u);
}

TEST(Trace, WireTagsRoundTripContexts)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const TraceContext ctx{42, 7};
    const std::uint16_t tag = t.armTag(ctx);
    ASSERT_NE(tag, 0);
    EXPECT_EQ(t.armedTagCount(), 1u);

    const TraceContext back = t.taggedContext(tag);
    EXPECT_EQ(back.parent, 42u);
    EXPECT_EQ(back.corr, 7u);

    // Unknown and zero tags resolve to the unarmed context.
    EXPECT_FALSE(t.taggedContext(0).armed());
    EXPECT_FALSE(
        t.taggedContext(static_cast<std::uint16_t>(tag + 1)).armed());

    t.disarmTag(tag);
    EXPECT_EQ(t.armedTagCount(), 0u);
    EXPECT_FALSE(t.taggedContext(tag).armed());
    t.disarmTag(tag);  // idempotent
}

TEST(Trace, TagAllocationSkipsLiveTags)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const std::uint16_t a = t.armTag({1, 1});
    const std::uint16_t b = t.armTag({2, 2});
    EXPECT_NE(a, b);
    EXPECT_EQ(t.taggedContext(a).parent, 1u);
    EXPECT_EQ(t.taggedContext(b).parent, 2u);
    t.disarmTag(a);
    t.disarmTag(b);
    // Disabled tracing never hands out tags.
    t.setEnabled(false);
    EXPECT_EQ(t.armTag({3, 3}), 0);
    t.setEnabled(true);
}

TEST(Trace, OpenSpanTableBoundDropsNotLeaks)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    t.setMaxOpenSpans(2);
    const SpanId a = t.beginSpan(1, "x", "a");
    const SpanId b = t.beginSpan(2, "x", "b");
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_EQ(t.beginSpan(3, "x", "c"), 0u);  // table full
    EXPECT_EQ(t.droppedOpens(), 1u);
    t.endSpan(a, 5);
    EXPECT_NE(t.beginSpan(6, "x", "d"), 0u);  // slot freed
    t.setMaxOpenSpans(Trace::kMaxOpenSpans);
}

TEST(Trace, OpenSpanBeginQueriesLiveSpans)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const SpanId s = t.beginSpan(1234, "x", "live");
    EXPECT_EQ(t.openSpanBegin(s), 1234u);
    EXPECT_EQ(t.openSpanBegin(0), 0u);
    t.endSpan(s, 2000);
    EXPECT_EQ(t.openSpanBegin(s), 0u);  // completed: no longer open
}

TEST(Trace, EnvCapacityOverrideAppliesAndValidates)
{
    TraceGuard guard;
    Trace &t = Trace::instance();
    const std::size_t before = t.capacity();

    ::setenv("HARMONIA_TRACE_CAP", "512", 1);
    t.applyEnvCapacity();
    EXPECT_EQ(t.capacity(), 512u);
    EXPECT_EQ(t.maxOpenSpans(), 512u);

    // Malformed values are ignored, not fatal.
    ::setenv("HARMONIA_TRACE_CAP", "12abc", 1);
    t.applyEnvCapacity();
    EXPECT_EQ(t.capacity(), 512u);
    ::setenv("HARMONIA_TRACE_CAP", "0", 1);
    t.applyEnvCapacity();
    EXPECT_EQ(t.capacity(), 512u);

    ::unsetenv("HARMONIA_TRACE_CAP");
    t.applyEnvCapacity();  // absent: no change
    EXPECT_EQ(t.capacity(), 512u);

    t.setCapacity(before);
    t.setMaxOpenSpans(Trace::kMaxOpenSpans);
}

TEST(Trace, ControlKernelEmitsExecutionEvents)
{
    TraceGuard guard;
    Engine engine;
    Clock *clk = engine.addClock("clk", 250.0);
    UnifiedControlKernel kernel("uck");
    engine.add(&kernel, clk);

    CommandPacket cmd;
    cmd.rbbId = kRbbSystem;
    cmd.commandCode = kCmdTimeCount;
    ASSERT_TRUE(kernel.submit(cmd));
    ASSERT_TRUE(engine.runUntilDone(
        [&] { return kernel.hasResponse(); }, 10'000'000));

    bool seen = false;
    for (const auto &e : Trace::instance().entries())
        if (e.who == "uck" &&
            e.what.find("TimeCount") != std::string::npos)
            seen = true;
    EXPECT_TRUE(seen);
}

} // namespace
} // namespace harmonia
