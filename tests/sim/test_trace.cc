#include <gtest/gtest.h>

#include "cmd/control_kernel.h"
#include "common/logging.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace harmonia {
namespace {

/** RAII guard: enable tracing for one test, restore after. */
struct TraceGuard {
    TraceGuard()
    {
        Trace::instance().clear();
        Trace::instance().setEnabled(true);
    }
    ~TraceGuard()
    {
        Trace::instance().setEnabled(false);
        Trace::instance().clear();
    }
};

TEST(Trace, DisabledByDefaultAndFreeWhenOff)
{
    Trace::instance().clear();
    ASSERT_FALSE(Trace::instance().enabled());
    Trace::instance().record(100, "x", "y");
    EXPECT_EQ(Trace::instance().size(), 0u);
}

TEST(Trace, RecordsComponentEvents)
{
    TraceGuard guard;
    Engine engine;
    Clock *clk = engine.addClock("clk", 100.0);
    FunctionComponent *cp = nullptr;
    FunctionComponent c("worker", [&] {
        trace(*cp, "tick %llu",
              static_cast<unsigned long long>(cp->cycle()));
    });
    cp = &c;
    engine.add(&c, clk);
    engine.runCycles(clk, 3);

    ASSERT_EQ(Trace::instance().size(), 3u);
    const auto &entries = Trace::instance().entries();
    EXPECT_EQ(entries[0].who, "worker");
    EXPECT_EQ(entries[0].what, "tick 1");
    EXPECT_EQ(entries[2].tick, 30'000u);  // 3rd edge of 100 MHz
}

TEST(Trace, RingBounded)
{
    TraceGuard guard;
    for (std::size_t i = 0; i < Trace::kCapacity + 50; ++i)
        Trace::instance().record(i, "a", "b");
    EXPECT_EQ(Trace::instance().size(), Trace::kCapacity);
    EXPECT_EQ(Trace::instance().entries().front().tick, 50u);
}

TEST(Trace, DumpRendersReadableLines)
{
    TraceGuard guard;
    Trace::instance().record(1'500'000, "uck", "executed ModuleInit");
    const std::string out = Trace::instance().dump();
    EXPECT_NE(out.find("uck"), std::string::npos);
    EXPECT_NE(out.find("ModuleInit"), std::string::npos);
    EXPECT_NE(out.find("us"), std::string::npos);  // human time
}

TEST(Trace, ControlKernelEmitsExecutionEvents)
{
    TraceGuard guard;
    Engine engine;
    Clock *clk = engine.addClock("clk", 250.0);
    UnifiedControlKernel kernel("uck");
    engine.add(&kernel, clk);

    CommandPacket cmd;
    cmd.rbbId = kRbbSystem;
    cmd.commandCode = kCmdTimeCount;
    ASSERT_TRUE(kernel.submit(cmd));
    ASSERT_TRUE(engine.runUntilDone(
        [&] { return kernel.hasResponse(); }, 10'000'000));

    bool seen = false;
    for (const auto &e : Trace::instance().entries())
        if (e.who == "uck" &&
            e.what.find("TimeCount") != std::string::npos)
            seen = true;
    EXPECT_TRUE(seen);
}

} // namespace
} // namespace harmonia
