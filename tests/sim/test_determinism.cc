/**
 * @file
 * The determinism golden harness: the headline guarantee of the
 * parallel engine is that a parallel run (any thread count, idle
 * fast-forward on) is bit-identical to the serial tick-by-tick run.
 * "Bit-identical" is checked the strong way — full telemetry
 * snapshots, trace span trees, fault-plan fingerprints and the wire
 * bytes a scenario moved, not a handful of summary counters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "fault/fault_plan.h"
#include "host/cmd_driver.h"
#include "host/dma_engine.h"
#include "shell/cdc.h"
#include "shell/unified_shell.h"
#include "sim/trace.h"
#include "workload/packet_gen.h"

namespace harmonia {
namespace {

const FpgaDevice &
deviceA()
{
    return DeviceDatabase::instance().byName("DeviceA");
}

/** Engine execution mode under test. */
struct Mode {
    unsigned threads = 1;
    bool parallel = false;
    bool fastForward = false;
};

void
apply(Engine &engine, const Mode &m)
{
    engine.setThreads(m.threads);
    engine.setParallel(m.parallel);
    engine.setIdleFastForward(m.fastForward);
}

/**
 * Everything observable at the end of a run, rendered to strings so a
 * mismatch prints the first differing line instead of "false".
 */
struct RunImage {
    std::vector<std::string> metrics;
    std::vector<std::string> spans;
    std::uint64_t faultFingerprint = 0;
    std::uint64_t faultInjected = 0;
    std::uint64_t wireBytes = 0;
    std::uint64_t wirePackets = 0;
    Tick endNow = 0;

    bool operator==(const RunImage &) const = default;
};

std::vector<std::string>
renderMetrics(const MetricsRegistry &reg)
{
    std::vector<std::string> out;
    for (const MetricSample &s : reg.snapshot())
        out.push_back(format(
            "%s k=%u v=%.17g n=%llu min=%llu max=%llu mean=%.17g "
            "p50=%.17g p99=%.17g",
            s.name.c_str(), static_cast<unsigned>(s.kind), s.value,
            static_cast<unsigned long long>(s.count),
            static_cast<unsigned long long>(s.min),
            static_cast<unsigned long long>(s.max), s.mean, s.p50,
            s.p99));
    return out;
}

std::vector<std::string>
renderSpans()
{
    // Span ids come from a process-global counter that survives
    // Trace::clear(), so remap them (and the parent links) to dense
    // first-appearance order — the tree shape is what must match.
    std::map<SpanId, std::uint64_t> dense;
    std::map<std::uint64_t, std::uint64_t> denseCorr;
    dense[0] = 0;
    denseCorr[0] = 0;
    const auto idOf = [&dense](SpanId id) {
        const auto [it, fresh] = dense.emplace(id, dense.size());
        (void)fresh;
        return it->second;
    };
    const auto corrOf = [&denseCorr](std::uint64_t corr) {
        const auto [it, fresh] =
            denseCorr.emplace(corr, denseCorr.size());
        (void)fresh;
        return it->second;
    };
    std::vector<std::string> out;
    for (const Trace::Span &s : Trace::instance().spans())
        out.push_back(format(
            "id=%llu parent=%llu corr=%llu [%llu,%llu] %s/%s/%s",
            static_cast<unsigned long long>(idOf(s.id)),
            static_cast<unsigned long long>(idOf(s.parent)),
            static_cast<unsigned long long>(corrOf(s.corr)),
            static_cast<unsigned long long>(s.begin),
            static_cast<unsigned long long>(s.end), s.who.c_str(),
            s.what.c_str(), s.cat.c_str()));
    return out;
}

void
expectIdentical(const RunImage &golden, const RunImage &run,
                const std::string &label)
{
    EXPECT_EQ(golden.endNow, run.endNow) << label;
    EXPECT_EQ(golden.wireBytes, run.wireBytes) << label;
    EXPECT_EQ(golden.wirePackets, run.wirePackets) << label;
    EXPECT_EQ(golden.faultFingerprint, run.faultFingerprint) << label;
    EXPECT_EQ(golden.faultInjected, run.faultInjected) << label;
    ASSERT_EQ(golden.metrics.size(), run.metrics.size()) << label;
    for (std::size_t i = 0; i < golden.metrics.size(); ++i)
        EXPECT_EQ(golden.metrics[i], run.metrics[i])
            << label << " metric " << i;
    ASSERT_EQ(golden.spans.size(), run.spans.size()) << label;
    for (std::size_t i = 0; i < golden.spans.size(); ++i)
        EXPECT_EQ(golden.spans[i], run.spans[i])
            << label << " span " << i;
}

/**
 * Fig-10-style end-to-end scenario on a unified shell: loopback
 * network traffic, DMA on four tenant queues, periodic control
 * commands, then a long settle window (where idle fast-forward earns
 * its keep). Optionally under a chaos schedule and with tracing on.
 */
RunImage
runEndToEnd(const Mode &mode, bool with_trace, bool with_chaos)
{
    Trace::instance().clear();
    Trace::instance().setEnabled(with_trace);

    RunImage img;
    {
        // Declared before the shell: its ScopedMetrics unregister on
        // destruction, so the registry must outlive it.
        MetricsRegistry reg;
        Engine engine;
        apply(engine, mode);
        auto shell = Shell::makeUnified(engine, deviceA());
        shell->network(0).setLoopback(true);

        shell->registerTelemetry(reg);

        CmdDriver driver(engine, *shell);
        HostDma dma(shell->host());
        DmaRecoveryPolicy dma_policy;
        dma_policy.timeout = 20'000'000;
        dma.setRecoveryPolicy(dma_policy);
        for (std::uint16_t q = 1; q <= 4; ++q)
            shell->host().setQueueActive(q, true);
        dma.registerTelemetry(reg, "host_dma");

        FaultPlan plan(20260806);
        if (with_chaos) {
            plan.addWindow(FaultKind::StreamBitFlip, 0, 200'000'000,
                           0.1);
            plan.addWindow(FaultKind::CmdDrop, 0, 200'000'000, 0.1,
                           "cmd01");
            plan.addWindow(FaultKind::DmaCompletionLoss, 0,
                           200'000'000, 0.05);
            plan.arm();
        }

        std::uint64_t next_id = 1;
        for (int round = 0; round < 24; ++round) {
            if (shell->network(0).txReady()) {
                PacketDesc pkt;
                pkt.bytes = 256 + (round % 4) * 64;
                shell->network(0).txPush(pkt);
            }
            const auto q =
                static_cast<std::uint16_t>(1 + round % 4);
            dma.submit(round % 2 ? DmaDir::H2C : DmaDir::C2H, q,
                       1024, next_id++);
            if (round % 8 == 0)
                driver.call(kRbbSystem, 0, kCmdTimeCount);
            engine.runFor(2'000'000);
            dma.poll();
            while (shell->network(0).rxAvailable()) {
                const PacketDesc pkt = shell->network(0).rxPop();
                img.wireBytes += pkt.bytes;
                ++img.wirePackets;
            }
            for (std::uint16_t dq = 1; dq <= 4; ++dq)
                while (dma.hasCompletion(dq))
                    dma.popCompletion(dq);
        }

        // Mostly-idle settle: the serial engine grinds every edge,
        // the fast-forward engine jumps between sparse wake points.
        // Both must land in the same place.
        for (int i = 0; i < 10; ++i) {
            engine.runFor(10'000'000);
            dma.poll();
        }

        img.endNow = engine.now();
        img.metrics = renderMetrics(reg);
        img.faultFingerprint = plan.fingerprint();
        img.faultInjected = plan.injectedTotal();
    }
    img.spans = renderSpans();
    Trace::instance().setEnabled(false);
    Trace::instance().clear();
    return img;
}

/**
 * Four fully independent CDC pipelines, each its own pair of fused
 * clocks — four concurrency groups, so parallel dispatch actually
 * fans out across the worker pool (the unified shell is one group by
 * design). Producers serialize packets into the crossing, consumers
 * checksum what comes out.
 */
RunImage
runGroups(const Mode &mode)
{
    constexpr int kPipes = 4;
    const double write_mhz[kPipes] = {250.0, 322.27, 450.0, 100.0};
    const double read_mhz[kPipes] = {322.27, 250.0, 300.0, 500.0};

    RunImage img;
    Engine engine;
    apply(engine, mode);

    std::vector<std::unique_ptr<ParamCdc>> cdcs;
    std::vector<std::unique_ptr<FunctionComponent>> comps;
    std::vector<std::uint64_t> pushed(kPipes, 0);
    std::vector<std::uint64_t> checksum(kPipes, 0);

    for (int p = 0; p < kPipes; ++p) {
        Clock *w = engine.addClock(format("pipe%d.w", p),
                                   write_mhz[p]);
        Clock *r = engine.addClock(format("pipe%d.r", p),
                                   read_mhz[p]);
        auto cdc = std::make_unique<ParamCdc>(
            engine, format("pipe%d.cdc", p), w, r, 512, 512, 16);
        ParamCdc *c = cdc.get();
        auto producer = std::make_unique<FunctionComponent>(
            format("pipe%d.prod", p), [c, p, &pushed] {
                if (pushed[p] < 200 && c->canPush()) {
                    PacketDesc pkt;
                    pkt.bytes = 64 + (pushed[p] % 7) * 64;
                    pkt.flowHash = pushed[p] * 2654435761u + p;
                    c->push(pkt);
                    ++pushed[p];
                }
            });
        auto consumer = std::make_unique<FunctionComponent>(
            format("pipe%d.cons", p), [c, p, &checksum] {
                while (c->canPop()) {
                    const PacketDesc pkt = c->pop();
                    checksum[p] =
                        checksum[p] * 1099511628211ull ^
                        (pkt.flowHash + pkt.bytes);
                }
            });
        engine.add(consumer.get(), r);
        engine.add(producer.get(), w);
        cdcs.push_back(std::move(cdc));
        comps.push_back(std::move(producer));
        comps.push_back(std::move(consumer));
    }

    engine.runFor(20'000'000);

    img.endNow = engine.now();
    for (int p = 0; p < kPipes; ++p) {
        img.wirePackets += pushed[p];
        img.metrics.push_back(format("pipe%d pushed=%llu sum=%llu "
                                     "occ=%zu",
                                     p,
                                     static_cast<unsigned long long>(
                                         pushed[p]),
                                     static_cast<unsigned long long>(
                                         checksum[p]),
                                     cdcs[p]->occupancy()));
    }
    return img;
}

TEST(Determinism, EndToEndParallelMatchesSerial)
{
    const RunImage golden =
        runEndToEnd(Mode{1, false, false}, false, false);
    EXPECT_GT(golden.wirePackets, 0u);

    for (unsigned threads : {1u, 2u, 4u}) {
        const RunImage run = runEndToEnd(
            Mode{threads, threads > 1, true}, false, false);
        expectIdentical(golden, run,
                        format("threads=%u", threads));
    }
}

TEST(Determinism, EndToEndSpanTreesMatchUnderTracing)
{
    const RunImage golden =
        runEndToEnd(Mode{1, false, false}, true, false);
    EXPECT_GT(golden.spans.size(), 0u);

    const RunImage run =
        runEndToEnd(Mode{4, true, true}, true, false);
    expectIdentical(golden, run, "traced threads=4");
}

TEST(Determinism, ChaosRunsMatchSerial)
{
    const RunImage golden =
        runEndToEnd(Mode{1, false, false}, false, true);
    EXPECT_GT(golden.faultInjected, 0u);

    for (unsigned threads : {2u, 4u}) {
        const RunImage run = runEndToEnd(
            Mode{threads, true, true}, false, true);
        expectIdentical(golden, run,
                        format("chaos threads=%u", threads));
    }
}

TEST(Determinism, IndependentGroupsMatchAcrossThreadCounts)
{
    const RunImage golden = runGroups(Mode{1, false, false});
    EXPECT_EQ(golden.wirePackets, 4u * 200u);

    for (unsigned threads : {2u, 4u}) {
        const RunImage run =
            runGroups(Mode{threads, true, true});
        expectIdentical(golden, run,
                        format("groups threads=%u", threads));
    }
}

TEST(Determinism, EnvVarSelectsThreadsAndFastForward)
{
    setenv("HARMONIA_SIM_THREADS", "4", 1);
    {
        Engine engine;
        EXPECT_EQ(engine.threads(), 4u);
        EXPECT_TRUE(engine.parallel());
        EXPECT_TRUE(engine.idleFastForward());
    }
    setenv("HARMONIA_SIM_THREADS", "1", 1);
    {
        Engine engine;
        EXPECT_EQ(engine.threads(), 1u);
        EXPECT_FALSE(engine.parallel());
        EXPECT_TRUE(engine.idleFastForward());
    }
    unsetenv("HARMONIA_SIM_THREADS");
    {
        Engine engine;
        EXPECT_EQ(engine.threads(), 1u);
        EXPECT_FALSE(engine.parallel());
        EXPECT_FALSE(engine.idleFastForward());
    }
}

} // namespace
} // namespace harmonia
