#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/clock.h"

namespace harmonia {
namespace {

TEST(Clock, PeriodFromFrequency)
{
    Clock c("c", 250.0);
    EXPECT_EQ(c.period(), 4000u);  // 250 MHz = 4 ns = 4000 ps
    EXPECT_DOUBLE_EQ(c.mhz(), 250.0);
}

TEST(Clock, NextEdgeStrictlyAfterNow)
{
    Clock c("c", 250.0);
    EXPECT_EQ(c.nextEdge(0), 4000u);
    EXPECT_EQ(c.nextEdge(3999), 4000u);
    EXPECT_EQ(c.nextEdge(4000), 8000u);
    EXPECT_EQ(c.nextEdge(4001), 8000u);
}

TEST(Clock, CycleTickConversions)
{
    Clock c("c", 100.0);  // 10 ns period
    EXPECT_EQ(c.cyclesToTicks(3), 30000u);
    EXPECT_EQ(c.ticksToCycles(35000), 3u);
}

TEST(Clock, RejectsBadFrequency)
{
    EXPECT_THROW(Clock("bad", 0.0), FatalError);
    EXPECT_THROW(Clock("bad", -5.0), FatalError);
    // Beyond the picosecond time base (>1 THz).
    EXPECT_THROW(Clock("bad", 2'000'000.0), FatalError);
}

TEST(Clock, NonIntegerPeriodTruncates)
{
    Clock c("c", 322.265625);  // CMAC core clock
    EXPECT_EQ(c.period(), periodFromMhz(322.265625));
    EXPECT_GT(c.period(), 3000u);
    EXPECT_LT(c.period(), 3200u);
}

} // namespace
} // namespace harmonia
