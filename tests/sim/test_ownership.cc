/**
 * @file
 * The dynamic ownership auditor (sim/ownership.h): proves it trips on
 * a cross-group mutation during a parallel edge, stays silent for
 * correctly grouped work, and that fuseClocks() is the fix it points
 * at. Runs green under tsan with HARMONIA_SIM_THREADS=4 and
 * HARMONIA_SIM_AUDIT=1 — the trip cases use trap mode so no fatal
 * tears the engine down mid-test.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/engine.h"
#include "sim/ownership.h"

namespace harmonia {
namespace {

/** Owns a counter; tick never touches it (only bump() does). */
class Counter : public Component {
  public:
    using Component::Component;
    void tick() override {}
    void bump()
    {
        noteMutation();
        ++value_;
    }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** On every tick, mutates @p target — possibly across domains. */
class Mutator : public Component {
  public:
    Mutator(std::string name, Counter &target)
        : Component(std::move(name)), target_(target)
    {
    }
    void tick() override { target_.bump(); }

  private:
    Counter &target_;
};

/** Trap-mode guard: arms trap, restores + clears on scope exit. */
class TrapScope {
  public:
    TrapScope()
    {
        OwnershipAuditor::instance().clearViolations();
        OwnershipAuditor::instance().setTrap(true);
    }
    ~TrapScope()
    {
        OwnershipAuditor::instance().setTrap(false);
        OwnershipAuditor::instance().clearViolations();
    }
    std::uint64_t violations() const
    {
        return OwnershipAuditor::instance().violations();
    }
};

/** Two same-frequency domains so every edge fires both. */
struct TwoDomainRig {
    Engine eng;
    Clock *a = nullptr;
    Clock *b = nullptr;

    TwoDomainRig()
    {
        eng.setParallel(true);
        eng.setThreads(2);
        eng.setOwnershipAudit(true);
        a = eng.addClock("dom_a", 250.0);
        b = eng.addClock("dom_b", 250.0);
    }
};

TEST(OwnershipAudit, TripsOnCrossGroupMutation)
{
    TwoDomainRig rig;
    Counter counter("counter");
    Mutator mutator("mutator", counter);
    rig.eng.add(&counter, rig.a);
    rig.eng.add(&mutator, rig.b);  // mis-grouped: mutates across

    TrapScope trap;
    rig.eng.runCycles(rig.a, 8);
    EXPECT_GT(trap.violations(), 0u);
    // The mutations themselves still land; the auditor only reports.
    EXPECT_EQ(counter.value(), 8u);
}

TEST(OwnershipAudit, FusedDomainsAreClean)
{
    TwoDomainRig rig;
    Counter counter("counter");
    Mutator mutator("mutator", counter);
    rig.eng.add(&counter, rig.a);
    rig.eng.add(&mutator, rig.b);
    // The fix the auditor's message prescribes: one concurrency
    // group, so the pair ticks serially in the reference order.
    rig.eng.fuseClocks(rig.a, rig.b);

    TrapScope trap;
    rig.eng.runCycles(rig.a, 8);
    EXPECT_EQ(trap.violations(), 0u);
    EXPECT_EQ(counter.value(), 8u);
}

TEST(OwnershipAudit, SelfMutationInParallelIsClean)
{
    TwoDomainRig rig;
    // Each domain mutates only its own counter: a legal parallel
    // schedule, and the auditor must not cry wolf.
    Counter ca("counter_a");
    Counter cb("counter_b");
    Mutator ma("mutator_a", ca);
    Mutator mb("mutator_b", cb);
    rig.eng.add(&ca, rig.a);
    rig.eng.add(&ma, rig.a);
    rig.eng.add(&cb, rig.b);
    rig.eng.add(&mb, rig.b);

    TrapScope trap;
    rig.eng.runCycles(rig.a, 16);
    EXPECT_EQ(trap.violations(), 0u);
    EXPECT_EQ(ca.value(), 16u);
    EXPECT_EQ(cb.value(), 16u);
}

TEST(OwnershipAudit, FatalByDefault)
{
    TwoDomainRig rig;
    Counter counter("counter");
    Mutator mutator("mutator", counter);
    rig.eng.add(&counter, rig.a);
    rig.eng.add(&mutator, rig.b);

    ASSERT_FALSE(OwnershipAuditor::instance().trap());
    EXPECT_THROW(rig.eng.runCycles(rig.a, 4), FatalError);
}

TEST(OwnershipAudit, MutationOutsideEngineThreadsIgnored)
{
    TwoDomainRig rig;
    Counter counter("counter");
    rig.eng.add(&counter, rig.a);

    TrapScope trap;
    rig.eng.runCycles(rig.a, 4);
    // Host-side mutation between edges: no task group, no report.
    counter.bump();
    EXPECT_EQ(trap.violations(), 0u);
}

TEST(OwnershipAudit, DisabledAuditNeverArms)
{
    TwoDomainRig rig;
    rig.eng.setOwnershipAudit(false);
    Counter counter("counter");
    Mutator mutator("mutator", counter);
    rig.eng.add(&counter, rig.a);
    rig.eng.add(&mutator, rig.b);

    TrapScope trap;
    rig.eng.runCycles(rig.a, 8);
    EXPECT_EQ(trap.violations(), 0u);
    EXPECT_EQ(counter.value(), 8u);
}

TEST(OwnershipAudit, EnvSwitchEnablesAudit)
{
    const char *orig = std::getenv("HARMONIA_SIM_AUDIT");
    const std::string saved = orig != nullptr ? orig : "";

    ASSERT_EQ(setenv("HARMONIA_SIM_AUDIT", "1", 1), 0);
    EXPECT_TRUE(OwnershipAuditor::envEnabled());
    {
        Engine eng;
        EXPECT_TRUE(eng.ownershipAudit());
    }
    ASSERT_EQ(setenv("HARMONIA_SIM_AUDIT", "0", 1), 0);
    EXPECT_FALSE(OwnershipAuditor::envEnabled());

    if (orig != nullptr)
        ASSERT_EQ(setenv("HARMONIA_SIM_AUDIT", saved.c_str(), 1), 0);
    else
        ASSERT_EQ(unsetenv("HARMONIA_SIM_AUDIT"), 0);
}

} // namespace
} // namespace harmonia
