#include <gtest/gtest.h>

#include "cmd/control_kernel.h"
#include "common/logging.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

/** A scriptable command target. */
class EchoTarget : public CommandTarget {
  public:
    CommandResult
    executeCommand(std::uint16_t code,
                   const std::vector<std::uint32_t> &data) override
    {
        ++calls;
        lastCode = code;
        CommandResult res;
        res.data = data;  // echo
        return res;
    }

    int calls = 0;
    std::uint16_t lastCode = 0;
};

struct KernelBench {
    Engine engine;
    Clock *clk;
    UnifiedControlKernel kernel{"uck"};
    EchoTarget net;

    KernelBench()
    {
        clk = engine.addClock("clk", 250.0);
        engine.add(&kernel, clk);
        kernel.registerTarget(kRbbNetwork, 0, &net);
    }

    CommandPacket
    roundTrip(const CommandPacket &pkt)
    {
        EXPECT_TRUE(kernel.submit(pkt));
        EXPECT_TRUE(engine.runUntilDone(
            [&] { return kernel.hasResponse(); }, 10'000'000));
        return kernel.popResponse();
    }
};

TEST(ControlKernel, ExecutesAndResponds)
{
    KernelBench b;
    CommandPacket cmd;
    cmd.srcId = kCtrlApplication;
    cmd.rbbId = kRbbNetwork;
    cmd.commandCode = kCmdTableWrite;
    cmd.data = {5, 6};

    const CommandPacket resp = b.roundTrip(cmd);
    EXPECT_EQ(b.net.calls, 1);
    EXPECT_EQ(b.net.lastCode, kCmdTableWrite);
    EXPECT_EQ(resp.status, kCmdOk);
    EXPECT_EQ(resp.data, (std::vector<std::uint32_t>{5, 6}));
    EXPECT_EQ(resp.dstId, kCtrlApplication);  // routed by SrcID
}

TEST(ControlKernel, UnknownTargetReported)
{
    KernelBench b;
    CommandPacket cmd;
    cmd.rbbId = kRbbMemory;  // nothing registered there
    const CommandPacket resp = b.roundTrip(cmd);
    EXPECT_EQ(resp.status, kCmdUnknownTarget);
    EXPECT_EQ(b.kernel.stats().value("unknown_target"), 1u);
}

TEST(ControlKernel, SystemServicesBuiltIn)
{
    KernelBench b;
    CommandPacket time_cmd;
    time_cmd.rbbId = kRbbSystem;
    time_cmd.commandCode = kCmdTimeCount;
    const CommandPacket time_resp = b.roundTrip(time_cmd);
    EXPECT_EQ(time_resp.status, kCmdOk);
    ASSERT_EQ(time_resp.data.size(), 2u);

    CommandPacket flash;
    flash.rbbId = kRbbSystem;
    flash.commandCode = kCmdFlashErase;
    flash.data = {3};
    const CommandPacket flash_resp = b.roundTrip(flash);
    EXPECT_EQ(flash_resp.status, kCmdOk);
    EXPECT_EQ(b.kernel.stats().value("flash_erases"), 1u);
}

TEST(ControlKernel, SequentialExecutionPacing)
{
    // The soft core retires at most one command per
    // kCyclesPerCommand cycles.
    KernelBench b;
    CommandPacket cmd;
    cmd.rbbId = kRbbNetwork;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(b.kernel.submit(cmd));
    const Cycles start = b.clk->cycle();
    b.engine.runUntilDone(
        [&] {
            return b.kernel.stats().value("commands_executed") == 4;
        },
        100'000'000);
    const Cycles elapsed = b.clk->cycle() - start;
    EXPECT_GE(elapsed,
              3 * UnifiedControlKernel::kCyclesPerCommand);
}

TEST(ControlKernel, PartialPacketWaitsForRest)
{
    KernelBench b;
    CommandPacket cmd;
    cmd.rbbId = kRbbNetwork;
    const auto bytes = cmd.encode();
    const std::vector<std::uint8_t> head(bytes.begin(),
                                         bytes.begin() + 6);
    const std::vector<std::uint8_t> tail(bytes.begin() + 6,
                                         bytes.end());
    ASSERT_TRUE(b.kernel.submitBytes(head));
    b.engine.runFor(2'000'000);
    EXPECT_FALSE(b.kernel.hasResponse());
    ASSERT_TRUE(b.kernel.submitBytes(tail));
    EXPECT_TRUE(b.engine.runUntilDone(
        [&] { return b.kernel.hasResponse(); }, 10'000'000));
}

TEST(ControlKernel, ChecksumErrorAnsweredAndSkipped)
{
    KernelBench b;
    CommandPacket cmd;
    cmd.srcId = kCtrlBmc;
    cmd.rbbId = kRbbNetwork;
    auto bytes = cmd.encode();
    bytes[10] ^= 0x55;  // corrupt
    ASSERT_TRUE(b.kernel.submitBytes(bytes));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.kernel.hasResponse(); }, 10'000'000));
    const CommandPacket resp = b.kernel.popResponse();
    EXPECT_EQ(resp.status, kCmdChecksumError);
    EXPECT_EQ(resp.dstId, kCtrlBmc);
    EXPECT_EQ(b.net.calls, 0);  // never executed
    EXPECT_EQ(b.kernel.stats().value("checksum_errors"), 1u);

    // The kernel recovers: a good command still goes through.
    ASSERT_TRUE(b.kernel.submit(cmd));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.kernel.hasResponse(); }, 10'000'000));
    EXPECT_EQ(b.kernel.popResponse().status, kCmdOk);
}

TEST(ControlKernel, GarbageBufferFlushedWithNack)
{
    KernelBench b;
    ASSERT_TRUE(b.kernel.submitBytes({0xff, 0xff, 0xff, 0xff, 0xff,
                                      0xff, 0xff, 0xff}));
    b.engine.runFor(2'000'000);
    EXPECT_EQ(b.kernel.stats().value("parse_errors"), 1u);
    // The flush is no longer silent: an explicit NACK tells the
    // requester to retry now instead of waiting out its timeout.
    ASSERT_TRUE(b.kernel.hasResponse());
    const CommandPacket nack = b.kernel.popResponse();
    EXPECT_EQ(nack.status, kCmdMalformed);
    EXPECT_EQ(b.kernel.stats().value("nacks_sent"), 1u);
    EXPECT_FALSE(b.kernel.hasResponse());

    // The kernel resynchronized: a good command still goes through.
    CommandPacket cmd;
    cmd.rbbId = kRbbNetwork;
    EXPECT_EQ(b.roundTrip(cmd).status, kCmdOk);
}

TEST(ControlKernel, MalformedPacketStatsAreDistinct)
{
    KernelBench b;
    CommandPacket cmd;
    cmd.rbbId = kRbbNetwork;

    // A corrupted packet: exactly one decode_bad_checksum.
    auto corrupt = cmd.encode();
    corrupt[10] ^= 0x55;
    ASSERT_TRUE(b.kernel.submitBytes(corrupt));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.kernel.hasResponse(); }, 10'000'000));
    EXPECT_EQ(b.kernel.popResponse().status, kCmdChecksumError);
    EXPECT_EQ(b.kernel.stats().value("decode_bad_checksum"), 1u);
    EXPECT_EQ(b.kernel.stats().value("decode_truncated"), 0u);

    // A stalled partial packet: one decode_truncated per buffer
    // state, no matter how many ticks stare at it.
    const auto bytes = cmd.encode();
    const std::vector<std::uint8_t> head(bytes.begin(),
                                         bytes.begin() + 6);
    const std::vector<std::uint8_t> tail(bytes.begin() + 6,
                                         bytes.end());
    ASSERT_TRUE(b.kernel.submitBytes(head));
    b.engine.runFor(5'000'000);
    EXPECT_EQ(b.kernel.stats().value("decode_truncated"), 1u);
    b.engine.runFor(5'000'000);
    EXPECT_EQ(b.kernel.stats().value("decode_truncated"), 1u);
    ASSERT_TRUE(b.kernel.submitBytes(tail));
    ASSERT_TRUE(b.engine.runUntilDone(
        [&] { return b.kernel.hasResponse(); }, 10'000'000));
    EXPECT_EQ(b.kernel.popResponse().status, kCmdOk);
    EXPECT_EQ(b.kernel.stats().value("decode_truncated"), 1u);

    // An executed-but-unknown command code: exactly one unknown_code.
    CommandPacket odd;
    odd.rbbId = kRbbSystem;
    odd.commandCode = 0x0fff;
    EXPECT_EQ(b.roundTrip(odd).status, kCmdUnknownCode);
    EXPECT_EQ(b.kernel.stats().value("unknown_code"), 1u);
    EXPECT_EQ(b.kernel.stats().value("decode_bad_checksum"), 1u);
    EXPECT_EQ(b.kernel.stats().value("decode_truncated"), 1u);
}

TEST(ControlKernel, GarbageCountsItsDecodeErrorKind)
{
    KernelBench b;
    ASSERT_TRUE(b.kernel.submitBytes({0xff, 0xff, 0xff, 0xff, 0xff,
                                      0xff, 0xff, 0xff}));
    b.engine.runFor(2'000'000);
    EXPECT_EQ(b.kernel.stats().value("parse_errors"), 1u);
    // The garbage's version nibble is bad, and the named stat says so.
    EXPECT_EQ(b.kernel.stats().value("decode_bad_version"), 1u);
    EXPECT_EQ(b.kernel.stats().value("decode_bad_checksum"), 0u);
}

namespace {
/** Mirror of the kernel's per-error stat naming. */
const char *
decodeCounterName(DecodeError error)
{
    switch (error) {
      case DecodeError::Truncated:
        return "decode_truncated";
      case DecodeError::BadVersion:
        return "decode_bad_version";
      case DecodeError::BadHeaderLen:
        return "decode_bad_header_len";
      case DecodeError::LengthMismatch:
        return "decode_length_mismatch";
      case DecodeError::BadChecksum:
        return "decode_bad_checksum";
    }
    return "?";
}
} // namespace

TEST(ControlKernel, EverySingleBitFlipDetectedAndClassified)
{
    // The integrity claim behind the command plane: the checksum (or
    // an earlier header check) catches EVERY single-bit corruption of
    // a command packet, each flip lands in exactly one decode_*
    // counter, and a corrupted command is never executed. The only
    // uncovered bytes are the two trailer status bytes — the checksum
    // is computed over everything before the trailer, and a request's
    // status field carries no meaning.
    CommandPacket cmd;
    cmd.srcId = kCtrlApplication;
    cmd.rbbId = kRbbNetwork;
    cmd.commandCode = kCmdTableWrite;
    cmd.data = {0xdeadbeef, 0x12345678};
    const std::vector<std::uint8_t> clean = cmd.encode();

    static const char *const kDecodeCounters[] = {
        "decode_truncated",      "decode_bad_version",
        "decode_bad_header_len", "decode_length_mismatch",
        "decode_bad_checksum",
    };

    for (std::size_t byte = 0; byte + 2 < clean.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> flipped = clean;
            flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);

            const DecodeOutcome expect = decodeCommand(flipped);
            ASSERT_FALSE(expect.ok())
                << "flip byte " << byte << " bit " << bit
                << " went undetected";

            KernelBench b;
            ASSERT_TRUE(b.kernel.submitBytes(flipped));
            // 25 kernel cycles: enough for the first decode attempt,
            // below the 50-cycle command pacing, so a partial consume
            // (e.g. a shrunk PayloadLen) hasn't re-parsed its residue
            // as a second packet yet.
            b.engine.runFor(100'000);

            std::uint64_t total = 0;
            for (const char *name : kDecodeCounters)
                total += b.kernel.stats().value(name);
            EXPECT_EQ(total, 1u)
                << "flip byte " << byte << " bit " << bit;
            EXPECT_EQ(b.kernel.stats().value(
                          decodeCounterName(*expect.error)),
                      1u)
                << "flip byte " << byte << " bit " << bit;
            EXPECT_EQ(b.net.calls, 0)
                << "corrupted command executed (byte " << byte
                << " bit " << bit << ")";
        }
    }

    // Control: the status bytes really are the only uncovered ones.
    for (std::size_t byte = clean.size() - 2; byte < clean.size();
         ++byte) {
        std::vector<std::uint8_t> flipped = clean;
        flipped[byte] ^= 0x01;
        EXPECT_TRUE(decodeCommand(flipped).ok());
    }
}

TEST(ControlKernel, BufferOverflowRejected)
{
    Engine engine;
    Clock *clk = engine.addClock("clk", 250.0);
    UnifiedControlKernel kernel("small", 64);
    engine.add(&kernel, clk);
    const std::vector<std::uint8_t> blob(65, 0);
    EXPECT_FALSE(kernel.submitBytes(blob));
    EXPECT_EQ(kernel.stats().value("buffer_overflow"), 1u);
}

TEST(ControlKernel, MultipleControllersShareTheKernel)
{
    // Applications, BMC and standalone tools all target the same
    // kernel; responses route back by SrcID.
    KernelBench b;
    CommandPacket app, bmc;
    app.srcId = kCtrlApplication;
    app.rbbId = kRbbNetwork;
    bmc.srcId = kCtrlBmc;
    bmc.rbbId = kRbbSystem;
    bmc.commandCode = kCmdTimeCount;
    ASSERT_TRUE(b.kernel.submit(app));
    ASSERT_TRUE(b.kernel.submit(bmc));
    b.engine.runUntilDone(
        [&] {
            return b.kernel.stats().value("commands_executed") == 2;
        },
        50'000'000);
    const CommandPacket r1 = b.kernel.popResponse();
    const CommandPacket r2 = b.kernel.popResponse();
    EXPECT_EQ(r1.dstId, kCtrlApplication);
    EXPECT_EQ(r2.dstId, kCtrlBmc);
}

TEST(ControlKernel, DuplicateTargetRegistrationFatal)
{
    KernelBench b;
    EchoTarget other;
    EXPECT_THROW(b.kernel.registerTarget(kRbbNetwork, 0, &other),
                 FatalError);
    EXPECT_THROW(b.kernel.registerTarget(kRbbMemory, 0, nullptr),
                 FatalError);
}

TEST(ControlKernel, FootprintWithinFig16Band)
{
    UnifiedControlKernel kernel("uck2");
    const ResourceVector budget{872160, 1744320, 1344, 640, 5952};
    EXPECT_LT(kernel.resources().maxUtilization(budget), 0.0067);
}

} // namespace
} // namespace harmonia
