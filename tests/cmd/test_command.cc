#include <gtest/gtest.h>

#include "cmd/command.h"
#include "common/logging.h"

namespace harmonia {
namespace {

CommandPacket
samplePacket()
{
    CommandPacket pkt;
    pkt.srcId = kCtrlApplication;
    pkt.dstId = kRbbNetwork;
    pkt.rbbId = kRbbNetwork;
    pkt.instanceId = 1;
    pkt.commandCode = kCmdTableWrite;
    pkt.options = 0xdead;
    pkt.data = {1, 2, 3};
    return pkt;
}

TEST(Command, EncodeDecodeRoundTrip)
{
    const CommandPacket pkt = samplePacket();
    const auto bytes = pkt.encode();
    EXPECT_EQ(bytes.size(), pkt.encodedSize());
    EXPECT_EQ(bytes.size() % 4, 0u);  // 4-byte alignment (Fig 9)

    std::size_t consumed = 0;
    const DecodeOutcome out = decodeCommand(bytes, &consumed);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(consumed, bytes.size());
    const CommandPacket &d = *out.packet;
    EXPECT_EQ(d.srcId, pkt.srcId);
    EXPECT_EQ(d.dstId, pkt.dstId);
    EXPECT_EQ(d.rbbId, pkt.rbbId);
    EXPECT_EQ(d.instanceId, pkt.instanceId);
    EXPECT_EQ(d.commandCode, pkt.commandCode);
    EXPECT_EQ(d.options, pkt.options);
    EXPECT_EQ(d.data, pkt.data);
    EXPECT_EQ(d.status, kCmdOk);
}

TEST(Command, EmptyDataRoundTrip)
{
    CommandPacket pkt;
    pkt.commandCode = kCmdModuleReset;
    const auto out = decodeCommand(pkt.encode());
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.packet->data.empty());
}

TEST(Command, BoundaryDetectionInByteStream)
{
    // Two back-to-back packets in one buffer: HdLen/PayloadLen find
    // the boundary (walkthrough step 3).
    CommandPacket a = samplePacket();
    CommandPacket b;
    b.commandCode = kCmdModuleStatusRead;
    b.data = {42};
    auto stream = a.encode();
    const auto second = b.encode();
    stream.insert(stream.end(), second.begin(), second.end());

    std::size_t consumed = 0;
    const auto first = decodeCommand(stream, &consumed);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.packet->commandCode, kCmdTableWrite);

    std::vector<std::uint8_t> rest(stream.begin() +
                                       static_cast<long>(consumed),
                                   stream.end());
    const auto next = decodeCommand(rest, &consumed);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.packet->commandCode, kCmdModuleStatusRead);
    EXPECT_EQ(next.packet->data[0], 42u);
}

TEST(Command, TruncationDetected)
{
    auto bytes = samplePacket().encode();
    bytes.resize(bytes.size() - 1);
    const auto out = decodeCommand(bytes);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(*out.error, DecodeError::Truncated);

    const auto tiny = decodeCommand({0x10});
    EXPECT_EQ(*tiny.error, DecodeError::Truncated);
}

TEST(Command, ChecksumCorruptionDetected)
{
    auto bytes = samplePacket().encode();
    bytes[13] ^= 0xff;  // corrupt a data byte
    const auto out = decodeCommand(bytes);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(*out.error, DecodeError::BadChecksum);
}

TEST(Command, VersionAndHeaderValidation)
{
    auto bytes = samplePacket().encode();
    bytes[0] = (bytes[0] & 0x0f) | 0x20;  // version 2
    EXPECT_EQ(*decodeCommand(bytes).error, DecodeError::BadVersion);

    bytes = samplePacket().encode();
    bytes[0] = (bytes[0] & 0xf0) | 0x05;  // HdLen 5
    EXPECT_EQ(*decodeCommand(bytes).error, DecodeError::BadHeaderLen);
}

TEST(Command, OversizedDataRejectedAtEncode)
{
    CommandPacket pkt;
    pkt.data.assign(300, 0);  // > 8-bit PayloadLen
    EXPECT_THROW(pkt.encode(), FatalError);
}

TEST(Command, ResponseSwapsSrcAndDst)
{
    const CommandPacket req = samplePacket();
    CommandResult result;
    result.status = kCmdOk;
    result.data = {7};
    const CommandPacket resp = makeResponse(req, result);
    EXPECT_EQ(resp.srcId, req.dstId);
    EXPECT_EQ(resp.dstId, req.srcId);  // routed home by SrcID
    EXPECT_EQ(resp.commandCode, req.commandCode);
    EXPECT_EQ(resp.data, result.data);

    // Response survives the wire.
    const auto out = decodeCommand(resp.encode());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.packet->status, kCmdOk);
}

TEST(Command, CodeAndStatusNames)
{
    EXPECT_STREQ(toString(kCmdModuleInit), "ModuleInit");
    EXPECT_STREQ(toString(kCmdTableWrite), "TableWrite");
    EXPECT_STREQ(toString(kCmdChecksumError), "checksum error");
    EXPECT_STREQ(toString(DecodeError::BadChecksum), "bad checksum");
}

TEST(Command, ToStringMentionsRouting)
{
    const std::string s = samplePacket().toString();
    EXPECT_NE(s.find("rbb=01"), std::string::npos);
    EXPECT_NE(s.find("0x0004"), std::string::npos);
}

class CommandFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CommandFuzzTest, RandomCorruptionNeverDecodesSilently)
{
    // Flip one random byte: decode must either fail or (for the
    // status field, which sits outside the checksum) still verify.
    const CommandPacket pkt = samplePacket();
    const auto good = pkt.encode();
    std::uint64_t seed = GetParam() * 2654435761u + 1;
    for (int trial = 0; trial < 200; ++trial) {
        seed = seed * 6364136223846793005ULL + 1;
        auto bytes = good;
        const std::size_t pos = (seed >> 33) % (bytes.size() - 2);
        const std::uint8_t flip =
            static_cast<std::uint8_t>(seed >> 13) | 1;
        bytes[pos] ^= flip;
        const auto out = decodeCommand(bytes);
        if (out.ok()) {
            // Only a same-sum aliasing within the checksum's known
            // word-swap blind spot could decode; payload length and
            // header fields must still be coherent.
            EXPECT_EQ(out.packet->data.size(), pkt.data.size());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommandFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

} // namespace
} // namespace harmonia
