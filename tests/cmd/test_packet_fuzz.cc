/**
 * @file
 * Seeded fuzz harness for the command-packet codec and the control
 * kernel's byte-stream parser. Two layers: pure encode/decode
 * round-trips over every command code, and a byte-mutation corpus fed
 * through a live kernel asserting that every malformed packet is
 * classified exactly once (the matching decode_* / unknown_code
 * counter) and NACKed — never crashing, never silently swallowed.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "cmd/command.h"
#include "cmd/control_kernel.h"
#include "sim/engine.h"

namespace harmonia {
namespace {

constexpr std::uint64_t kFuzzSeed = 0x48a7201e20260806ull;

/** All published + extension command codes (round-trip coverage). */
const std::vector<std::uint16_t> &
allCodes()
{
    static const std::vector<std::uint16_t> codes = {
        kCmdModuleStatusRead, kCmdModuleStatusWrite, kCmdModuleInit,
        kCmdModuleReset,      kCmdTableWrite,        kCmdTableRead,
        kCmdStatsSnapshot,    kCmdQueueConfig,       kCmdSensorRead,
        kCmdFlashErase,       kCmdTimeCount,         kCmdPrLoad,
        kCmdPrUnload,         kCmdPrStatus,          kCmdTelemetryList,
        kCmdTelemetrySnapshot, kCmdProfileSnapshot,  kCmdProfileReset,
        kCmdSloStatus,        kCmdAlertSnapshot,     kCmdFlightDump,
        kCmdCheckpoint,       kCmdRestore,           kCmdObsSubscribe,
        kCmdObsDelta,
    };
    return codes;
}

CommandPacket
randomPacket(std::mt19937_64 &rng, std::uint16_t code)
{
    CommandPacket pkt;
    pkt.srcId = static_cast<std::uint8_t>(rng());
    pkt.dstId = static_cast<std::uint8_t>(rng());
    pkt.rbbId = static_cast<std::uint8_t>(rng());
    pkt.instanceId = static_cast<std::uint8_t>(rng());
    pkt.commandCode = code;
    pkt.options = static_cast<std::uint32_t>(rng());
    pkt.data.resize(rng() % 32);
    for (auto &w : pkt.data)
        w = static_cast<std::uint32_t>(rng());
    return pkt;
}

void
expectEqual(const CommandPacket &a, const CommandPacket &b)
{
    EXPECT_EQ(a.version, b.version);
    EXPECT_EQ(a.srcId, b.srcId);
    EXPECT_EQ(a.dstId, b.dstId);
    EXPECT_EQ(a.rbbId, b.rbbId);
    EXPECT_EQ(a.instanceId, b.instanceId);
    EXPECT_EQ(a.commandCode, b.commandCode);
    EXPECT_EQ(a.options, b.options);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.data, b.data);
}

/** A live kernel on a fresh engine, one per fuzz case. */
struct KernelRig {
    Engine engine;
    Clock *clk;
    UnifiedControlKernel kernel{"fuzz.uck"};

    KernelRig() : clk(engine.addClock("kclk", 250.0))
    {
        engine.add(&kernel, clk);
    }

    /** Run long enough to chew through any single packet. */
    void settle() { engine.runCycles(clk, 256); }

    std::uint64_t count(const char *name)
    {
        return kernel.stats().value(name);
    }

    /** Sum of every malformed-classification counter. */
    std::uint64_t errorTotal()
    {
        return count("decode_truncated") +
               count("decode_bad_version") +
               count("decode_bad_header_len") +
               count("decode_length_mismatch") +
               count("decode_bad_checksum") + count("unknown_code");
    }
};

TEST(PacketFuzz, RoundTripEveryCommandCode)
{
    std::mt19937_64 rng(kFuzzSeed);
    for (const std::uint16_t code : allCodes()) {
        const CommandPacket pkt = randomPacket(rng, code);
        std::size_t consumed = 0;
        const std::vector<std::uint8_t> bytes = pkt.encode();
        const DecodeOutcome out = decodeCommand(bytes, &consumed);
        ASSERT_TRUE(out.ok())
            << "code 0x" << std::hex << code << ": "
            << toString(*out.error);
        EXPECT_EQ(consumed, bytes.size());
        expectEqual(pkt, *out.packet);
        // Re-encoding the decode reproduces the exact wire bytes.
        EXPECT_EQ(out.packet->encode(), bytes);
    }
}

TEST(PacketFuzz, RoundTripRandomStreams)
{
    std::mt19937_64 rng(kFuzzSeed ^ 1);
    // Back-to-back packets in one buffer, walked by consumed offsets
    // exactly as the kernel's parser does.
    for (int iter = 0; iter < 50; ++iter) {
        std::vector<CommandPacket> pkts;
        std::vector<std::uint8_t> stream;
        const std::size_t n = 1 + rng() % 5;
        for (std::size_t i = 0; i < n; ++i) {
            pkts.push_back(randomPacket(
                rng, allCodes()[rng() % allCodes().size()]));
            const auto bytes = pkts.back().encode();
            stream.insert(stream.end(), bytes.begin(), bytes.end());
        }
        std::size_t off = 0;
        for (const CommandPacket &expect : pkts) {
            std::vector<std::uint8_t> rest(stream.begin() +
                                               static_cast<long>(off),
                                           stream.end());
            std::size_t consumed = 0;
            const DecodeOutcome out = decodeCommand(rest, &consumed);
            ASSERT_TRUE(out.ok());
            expectEqual(expect, *out.packet);
            off += consumed;
        }
        EXPECT_EQ(off, stream.size());
    }
}

TEST(PacketFuzz, BodyBitFlipIsBadChecksumExactlyOnce)
{
    std::mt19937_64 rng(kFuzzSeed ^ 2);
    for (int iter = 0; iter < 40; ++iter) {
        KernelRig rig;
        CommandPacket pkt = randomPacket(rng, kCmdTimeCount);
        pkt.rbbId = kRbbSystem;
        std::vector<std::uint8_t> bytes = pkt.encode();
        // Flip one bit below the trailer but past word0, so framing
        // fields stay intact and the checksum must catch it.
        const std::size_t pos = 4 + rng() % (bytes.size() - 8);
        bytes[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));

        ASSERT_TRUE(rig.kernel.submitBytes(bytes));
        rig.settle();
        EXPECT_EQ(rig.count("decode_bad_checksum"), 1u);
        EXPECT_EQ(rig.count("checksum_errors"), 1u);
        EXPECT_EQ(rig.errorTotal(), 1u);
        EXPECT_EQ(rig.count("commands_executed"), 0u);
        ASSERT_TRUE(rig.kernel.hasResponse());
        EXPECT_EQ(rig.kernel.popResponse().status, kCmdChecksumError);
        EXPECT_FALSE(rig.kernel.hasResponse());
    }
}

TEST(PacketFuzz, BadFramingIsNackedMalformedExactlyOnce)
{
    std::mt19937_64 rng(kFuzzSeed ^ 3);
    for (int iter = 0; iter < 40; ++iter) {
        KernelRig rig;
        CommandPacket pkt = randomPacket(rng, kCmdTimeCount);
        std::vector<std::uint8_t> bytes = pkt.encode();
        if (iter % 2 == 0) {
            // Unsupported version nibble (checked before checksum).
            const auto v =
                static_cast<std::uint8_t>(2 + rng() % 14);
            bytes[0] = static_cast<std::uint8_t>(
                (v << 4) | (bytes[0] & 0x0f));
        } else {
            // HdLen nibble that does not match the fixed layout.
            auto hd = static_cast<std::uint8_t>(rng() % 16);
            if (hd == CommandPacket::kHdLenWords)
                hd = 0;
            bytes[0] = static_cast<std::uint8_t>(
                (bytes[0] & 0xf0) | hd);
        }

        ASSERT_TRUE(rig.kernel.submitBytes(bytes));
        rig.settle();
        EXPECT_EQ(rig.errorTotal(), 1u);
        EXPECT_EQ(rig.count("parse_errors"), 1u);
        EXPECT_EQ(rig.count("nacks_sent"), 1u);
        ASSERT_TRUE(rig.kernel.hasResponse());
        EXPECT_EQ(rig.kernel.popResponse().status, kCmdMalformed);
        // The buffer was flushed: nothing left to misparse.
        EXPECT_FALSE(rig.kernel.hasResponse());
        EXPECT_EQ(rig.count("commands_executed"), 0u);
    }
}

TEST(PacketFuzz, TruncationCountsOnceThenCompletes)
{
    std::mt19937_64 rng(kFuzzSeed ^ 4);
    for (int iter = 0; iter < 40; ++iter) {
        KernelRig rig;
        CommandPacket pkt = randomPacket(rng, kCmdTimeCount);
        pkt.rbbId = kRbbSystem;
        const std::vector<std::uint8_t> bytes = pkt.encode();
        const std::size_t cut = 4 + rng() % (bytes.size() - 4);

        ASSERT_TRUE(rig.kernel.submitBytes(
            {bytes.begin(), bytes.begin() + static_cast<long>(cut)}));
        // However long the head sits there, the stall counts once.
        rig.settle();
        rig.settle();
        EXPECT_EQ(rig.count("decode_truncated"), 1u);
        EXPECT_EQ(rig.errorTotal(), 1u);
        EXPECT_FALSE(rig.kernel.hasResponse());

        // The tail arrives; the reassembled packet executes cleanly.
        ASSERT_TRUE(rig.kernel.submitBytes(
            {bytes.begin() + static_cast<long>(cut), bytes.end()}));
        rig.settle();
        EXPECT_EQ(rig.errorTotal(), 1u);
        EXPECT_EQ(rig.count("commands_executed"), 1u);
        ASSERT_TRUE(rig.kernel.hasResponse());
        EXPECT_EQ(rig.kernel.popResponse().status, kCmdOk);
    }
}

TEST(PacketFuzz, UnknownCodeCountedExactlyOnce)
{
    std::mt19937_64 rng(kFuzzSeed ^ 5);
    for (int iter = 0; iter < 20; ++iter) {
        KernelRig rig;
        CommandPacket pkt = randomPacket(
            rng, static_cast<std::uint16_t>(0x4000 + rng() % 0x1000));
        pkt.rbbId = kRbbSystem;  // reaches a real executor

        ASSERT_TRUE(rig.kernel.submit(pkt));
        rig.settle();
        EXPECT_EQ(rig.count("unknown_code"), 1u);
        EXPECT_EQ(rig.errorTotal(), 1u);
        EXPECT_EQ(rig.count("commands_executed"), 1u);
        ASSERT_TRUE(rig.kernel.hasResponse());
        EXPECT_EQ(rig.kernel.popResponse().status, kCmdUnknownCode);
    }
}

TEST(PacketFuzz, ArbitraryMutationNeverCrashesAndIsClassified)
{
    std::mt19937_64 rng(kFuzzSeed ^ 6);
    for (int iter = 0; iter < 120; ++iter) {
        KernelRig rig;
        CommandPacket pkt = randomPacket(
            rng, allCodes()[rng() % allCodes().size()]);
        pkt.rbbId = kRbbSystem;
        std::vector<std::uint8_t> bytes = pkt.encode();
        // Any byte, any bit — including the framing fields the other
        // families avoid. The kernel may resynchronize through the
        // damaged tail, but it must classify, answer or stall, and
        // never crash or loop.
        const std::size_t flips = 1 + rng() % 4;
        for (std::size_t f = 0; f < flips; ++f)
            bytes[rng() % bytes.size()] ^=
                static_cast<std::uint8_t>(1u << (rng() % 8));

        const DecodeOutcome direct = decodeCommand(bytes);
        ASSERT_TRUE(rig.kernel.submitBytes(bytes));
        rig.settle();

        if (direct.ok()) {
            // The damage was confined to unchecksummed trailer bits
            // (or cancelled out): the packet simply executes.
            EXPECT_EQ(rig.count("commands_executed"), 1u);
            EXPECT_TRUE(rig.kernel.hasResponse());
        } else if (*direct.error == DecodeError::Truncated) {
            // Stalls waiting for a tail that never comes, counted
            // exactly once no matter how long it waits.
            EXPECT_EQ(rig.count("decode_truncated"), 1u);
        } else {
            // Classified as malformed at least once, answered with a
            // NACK or checksum error.
            EXPECT_GE(rig.errorTotal(), 1u);
            EXPECT_TRUE(rig.kernel.hasResponse());
        }
    }
}

TEST(PacketFuzz, PureGarbageNeverCrashes)
{
    std::mt19937_64 rng(kFuzzSeed ^ 7);
    for (int iter = 0; iter < 60; ++iter) {
        KernelRig rig;
        std::vector<std::uint8_t> bytes(rng() % 120);
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng());
        ASSERT_TRUE(rig.kernel.submitBytes(bytes));
        rig.settle();
        if (bytes.size() >= 4) {
            EXPECT_GE(rig.errorTotal() +
                          rig.count("commands_executed"),
                      1u);
        }
    }
}

} // namespace
} // namespace harmonia
