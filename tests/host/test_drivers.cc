#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "host/host_app.h"
#include "roles/host_network.h"
#include "roles/sec_gateway.h"
#include "sim/trace.h"
#include "telemetry/profiler.h"

namespace harmonia {
namespace {

const FpgaDevice &
device(const char *name)
{
    return DeviceDatabase::instance().byName(name);
}

TEST(RegDriver, InitializeAllWalksEveryRecipe)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    RegDriver driver(*shell);
    const std::size_t ops = driver.initializeAll();
    // Hundreds of register operations for a full board.
    EXPECT_GT(ops, 200u);
    EXPECT_EQ(driver.opCount(), ops);
    // The recipes landed in hardware: enables and status bits are up.
    EXPECT_EQ(shell->network(0).instance().regs().readByName(
                  "CONFIGURATION_TX_REG1"),
              1u);
    EXPECT_EQ(shell->network(0).instance().regs().readByName(
                  "STAT_RX_STATUS"),
              1u);
    EXPECT_TRUE(shell->network(0).filterEnabled());
    // Host queues were activated through the queue-context writes.
    EXPECT_EQ(shell->host().activeQueueCount(), 64u);
}

TEST(RegDriver, LogRecordsOperations)
{
    Engine engine;
    auto shell = Shell::makeTailored(
        engine, device("DeviceA"), SecGateway::standardRequirements());
    RegDriver driver(*shell);
    driver.write("net_rbb0", "FILTER_ENABLE", 1);
    driver.read("net_rbb0", "MON_RX_PACKETS");
    ASSERT_EQ(driver.log().size(), 2u);
    EXPECT_EQ(driver.log()[0].kind, RegDriverOp::Kind::Write);
    EXPECT_EQ(driver.log()[1].kind, RegDriverOp::Kind::Read);
    EXPECT_TRUE(shell->network().filterEnabled());
    driver.clearLog();
    EXPECT_EQ(driver.opCount(), 0u);
}

TEST(RegDriver, CollectAllStatsReadsEveryCounter)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    RegDriver driver(*shell);
    const std::size_t reads = driver.collectAllStats();
    EXPECT_GT(reads, 50u);
}

TEST(CmdDriver, CallRoundTripsThroughKernel)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    CmdDriver driver(engine, *shell);
    const CommandPacket resp =
        driver.call(kRbbNetwork, 0, kCmdModuleInit);
    EXPECT_EQ(resp.status, kCmdOk);
    EXPECT_TRUE(shell->network().instance().initialized());
    EXPECT_GT(driver.lastLatency(), 0u);
    EXPECT_EQ(driver.commandCount(), 1u);
}

TEST(CmdDriver, InitializeAllUsesFewCommands)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    CmdDriver driver(engine, *shell);
    const std::size_t cmds = driver.initializeAll();
    // 5 RBBs + 1 queue config.
    EXPECT_LE(cmds, 8u);
    for (Rbb *rbb : shell->rbbs())
        EXPECT_TRUE(rbb->instance().initialized()) << rbb->name();
    EXPECT_EQ(shell->host().activeQueueCount(), 64u);
}

TEST(CmdDriver, StatsViaSnapshotCommands)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    CmdDriver driver(engine, *shell);
    EXPECT_EQ(driver.collectAllStats(), shell->rbbs().size());
}

TEST(CmdDriver, I2cSidebandIsSlowButIndependent)
{
    // The BMC reaches the kernel over I2C even on a shell without a
    // host RBB (e.g. before PCIe enumerates).
    Engine engine;
    ShellConfig cfg;
    cfg.includeHost = false;
    Shell shell(engine, device("DeviceC"), cfg, "preboot");

    CmdDriver bmc(engine, shell, kCtrlBmc, CmdTransport::I2c);
    const CommandPacket resp =
        bmc.call(kRbbHealth, 0, kCmdSensorRead, {});
    EXPECT_EQ(resp.status, kCmdOk);
    EXPECT_EQ(resp.options,
              static_cast<std::uint32_t>(CmdTransport::I2c));
    const Tick i2c_latency = bmc.lastLatency();

    // The same poll over PCIe on a full shell is much faster.
    Engine engine2;
    auto full = Shell::makeUnified(engine2, device("DeviceA"));
    CmdDriver app(engine2, *full, kCtrlApplication,
                  CmdTransport::Pcie);
    app.call(kRbbHealth, 0, kCmdSensorRead, {});
    EXPECT_GT(i2c_latency, 10 * app.lastLatency());
}

TEST(CmdDriver, OneCallUnfoldsIntoASpanTree)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    CmdDriver driver(engine, *shell);
    driver.initializeAll();  // warm up untraced

    Trace &t = Trace::instance();
    t.setEnabled(true);
    t.clear();
    Profiler prof;
    prof.reset();
    const CommandPacket resp =
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    t.setEnabled(false);
    ASSERT_EQ(resp.status, kCmdOk);

    // Every span of the call shares one correlation id.
    std::uint64_t corr = 0;
    for (const Trace::Span &s : t.spans())
        if (s.corr != 0)
            corr = s.corr;
    ASSERT_NE(corr, 0u);
    const std::vector<Trace::Span> tree = spanTreeForCorr(t, corr);
    ASSERT_GE(tree.size(), 4u);

    // The expected hops: driver call (root), wire transfer, kernel
    // service, RBB execute.
    std::set<std::string> cats;
    for (const Trace::Span &s : tree)
        cats.insert(s.cat);
    EXPECT_TRUE(cats.count("command"));
    EXPECT_TRUE(cats.count("wire"));
    EXPECT_TRUE(cats.count("rbb"));

    // The root is the driver's call span and lasts exactly the
    // driver's observed latency.
    const Trace::Span &root = tree.front();
    EXPECT_EQ(root.parent, 0u);
    EXPECT_EQ(root.who, "cmd01");
    EXPECT_EQ(root.end - root.begin, driver.lastLatency());

    // Telescoping identity: per-hop self times sum exactly to the
    // end-to-end latency (the profiler's headline guarantee).
    prof.fold();
    Tick self_sum = 0;
    for (const ProfileEntry &e : prof.snapshot())
        self_sum += e.selfTicks;
    EXPECT_EQ(self_sum, driver.lastLatency());
    t.clear();
}

TEST(CmdDriver, TracingOffLeavesTheWireBitIdentical)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    CmdDriver driver(engine, *shell);
    ASSERT_FALSE(Trace::instance().enabled());

    // The kernel echoes the request's Options word into the response
    // verbatim, so the echo proves what went over the wire. Untraced:
    // exactly the transport id, no tag bits — the packet is
    // bit-identical to a build without tracing at all.
    const CommandPacket off =
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    ASSERT_EQ(off.status, kCmdOk);
    EXPECT_EQ(off.options,
              static_cast<std::uint32_t>(CmdTransport::Pcie));
    EXPECT_EQ(Trace::instance().armedTagCount(), 0u);

    // Traced: the correlation tag rides the Options high half, and
    // the driver disarms it once the call completes.
    Trace::instance().setEnabled(true);
    Trace::instance().clear();
    const CommandPacket on =
        driver.call(kRbbNetwork, 0, kCmdStatsSnapshot);
    Trace::instance().setEnabled(false);
    ASSERT_EQ(on.status, kCmdOk);
    EXPECT_NE(on.options >> 16, 0u);
    EXPECT_EQ(on.options & 0xffffu,
              static_cast<std::uint32_t>(CmdTransport::Pcie));
    EXPECT_EQ(Trace::instance().armedTagCount(), 0u);
    Trace::instance().clear();
}

TEST(HostApplication, InterfaceSelection)
{
    Engine engine;
    auto shell = Shell::makeUnified(engine, device("DeviceA"));
    HostApplication reg_app(engine, *shell, HostInterface::Register);
    const std::size_t reg_ops = reg_app.initialize();

    Engine engine2;
    auto shell2 = Shell::makeUnified(engine2, device("DeviceA"));
    HostApplication cmd_app(engine2, *shell2,
                            HostInterface::Command);
    const std::size_t cmd_ops = cmd_app.initialize();

    // The headline claim: orders of magnitude fewer control ops.
    EXPECT_GT(reg_ops, 40 * cmd_ops);
    EXPECT_EQ(reg_app.controlOps(), reg_ops);
}

TEST(HostApplication, DataPlaneRequiresHostRbb)
{
    Engine engine;
    ShellConfig cfg;
    cfg.includeHost = false;
    Shell shell(engine, device("DeviceC"), cfg, "hostless");
    HostApplication app(engine, shell, HostInterface::Command);
    EXPECT_THROW(app.dma(), FatalError);
}

TEST(Migration, RegisterPathScalesWithFullInit)
{
    // Host Network migrating C -> D (the paper's Fig 13 experiment).
    Engine ec, ed;
    const RoleRequirements reqs =
        HostNetwork::standardRequirements();
    // Device C has no memory: relax that requirement for its shell.
    RoleRequirements reqs_c = reqs;
    reqs_c.needsMemory = false;
    auto shell_c =
        Shell::makeTailored(ec, device("DeviceC"), reqs_c);
    auto shell_d = Shell::makeTailored(ed, device("DeviceD"), reqs);

    const std::size_t reg_mods = migrationModifications(
        *shell_c, *shell_d, HostInterface::Register);
    const std::size_t cmd_mods = migrationModifications(
        *shell_c, *shell_d, HostInterface::Command);
    EXPECT_GT(reg_mods, 200u);
    EXPECT_LE(cmd_mods, 5u);
    // Paper: 88-107x reduction; accept the right order of magnitude.
    EXPECT_GT(reg_mods / cmd_mods, 40u);
    EXPECT_LT(reg_mods / cmd_mods, 300u);
}

TEST(Migration, UnchangedPlatformCostsAlmostNothingWithCommands)
{
    Engine e1, e2;
    const RoleRequirements reqs = SecGateway::standardRequirements();
    auto a1 = Shell::makeTailored(e1, device("DeviceA"), reqs);
    auto a2 = Shell::makeTailored(e2, device("DeviceA"), reqs);
    EXPECT_EQ(migrationModifications(*a1, *a2,
                                     HostInterface::Command),
              1u);
}

} // namespace
} // namespace harmonia
