#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/dma_engine.h"

namespace harmonia {
namespace {

struct HostDmaBench {
    Engine engine;
    Clock *clk;
    HostRbb rbb;
    HostDma dma;

    HostDmaBench()
        : clk(engine.addClock("clk", 250.0)),
          rbb(engine, clk, Vendor::Xilinx, 4, 16, 64), dma(rbb)
    {
        rbb.setQueueActive(1, true);
        rbb.setQueueActive(2, true);
    }
};

TEST(HostDma, RoutesCompletionsPerQueue)
{
    HostDmaBench b;
    ASSERT_TRUE(b.dma.submit(DmaDir::H2C, 1, 4096, 11));
    ASSERT_TRUE(b.dma.submit(DmaDir::C2H, 2, 4096, 22));

    b.engine.runUntilDone(
        [&] {
            b.dma.poll();
            return b.dma.hasCompletion(1) && b.dma.hasCompletion(2);
        },
        100'000'000);

    EXPECT_EQ(b.dma.popCompletion(1).request.id, 11u);
    EXPECT_EQ(b.dma.popCompletion(2).request.id, 22u);
    EXPECT_EQ(b.dma.completedTransfers(), 2u);
    EXPECT_EQ(b.dma.completedBytes(), 8192u);
}

TEST(HostDma, ControlCompletionsSeparated)
{
    HostDmaBench b;
    b.rbb.submitControl(64, 7);
    b.engine.runUntilDone(
        [&] {
            b.dma.poll();
            return b.dma.hasControlCompletion();
        },
        100'000'000);
    EXPECT_FALSE(b.dma.hasCompletion(1));
    EXPECT_EQ(b.dma.popControlCompletion().request.id, 7u);
}

TEST(HostDma, InactiveQueueRejected)
{
    HostDmaBench b;
    EXPECT_FALSE(b.dma.submit(DmaDir::H2C, 50, 64));
}

TEST(HostDma, ErrorsAreFatal)
{
    HostDmaBench b;
    EXPECT_THROW(b.dma.popCompletion(1), FatalError);
    EXPECT_THROW(b.dma.hasCompletion(5000), FatalError);
    EXPECT_THROW(b.dma.popControlCompletion(), FatalError);
}

} // namespace
} // namespace harmonia
