#include "adapter/device_adapter.h"

#include "common/logging.h"
#include "common/strings.h"

namespace harmonia {

DeviceAdapter::DeviceAdapter(const FpgaDevice &device) : device_(device)
{
    const Chip &chip = device.chip();
    auto set = [&](const std::string &k, const std::string &v) {
        staticConfig_[k] = v;
    };

    set("chip.name", chip.name);
    set("chip.family", toString(chip.family));
    set("chip.vendor", toString(chip.vendor()));
    set("chip.process_nm", std::to_string(processNm(chip.family)));
    set("chip.lut", std::to_string(chip.budget.lut));
    set("chip.reg", std::to_string(chip.budget.reg));
    set("chip.bram", std::to_string(chip.budget.bram));
    set("chip.uram", std::to_string(chip.budget.uram));
    set("chip.dsp", std::to_string(chip.budget.dsp));
    set("board.vendor", toString(device.boardVendor));
    set("board.year", std::to_string(device.introducedYear));

    unsigned idx = 0;
    for (const Peripheral &p : device.peripherals) {
        const std::string prefix = format("peripheral.%u", idx++);
        set(prefix + ".kind", toString(p.kind));
        set(prefix + ".count", std::to_string(p.count));
        set(prefix + ".channels", std::to_string(p.channels()));
        if (classOf(p.kind) == PeripheralClass::Host) {
            set(prefix + ".lanes", std::to_string(p.lanes));
            set(prefix + ".virtual_functions", "4");
        }
        set(prefix + ".peak_bw", format("%.0f", p.peakBandwidth()));
    }
    set("peripheral.count", std::to_string(idx));
}

unsigned
DeviceAdapter::peripheralCount(PeripheralKind kind) const
{
    unsigned n = 0;
    for (const Peripheral &p : device_.peripherals)
        if (p.kind == kind)
            n += p.count;
    return n;
}

const ClockMapping &
DeviceAdapter::mapClock(const std::string &logical_name, double mhz)
{
    if (mhz <= 0)
        fatal("clock '%s': frequency must be positive",
              logical_name.c_str());
    for (const ClockMapping &c : clocks_)
        if (c.logicalName == logical_name)
            fatal("clock '%s' already mapped", logical_name.c_str());
    if (clocks_.size() >= kPllBudget)
        fatal("device '%s': PLL budget (%u) exhausted mapping '%s'",
              device_.name.c_str(), kPllBudget, logical_name.c_str());
    clocks_.push_back(
        {logical_name, mhz, static_cast<unsigned>(clocks_.size())});
    return clocks_.back();
}

const PinMapping &
DeviceAdapter::mapPins(const std::string &logical_name,
                       PeripheralKind kind, unsigned index)
{
    const unsigned available = peripheralCount(kind);
    if (index >= available)
        fatal("device '%s' has %u %s instance(s); cannot map '%s' to "
              "index %u",
              device_.name.c_str(), available, toString(kind),
              logical_name.c_str(), index);
    for (const PinMapping &p : pins_) {
        if (p.logicalName == logical_name)
            fatal("pin group '%s' already mapped",
                  logical_name.c_str());
        if (p.kind == kind && p.instanceIndex == index)
            fatal("%s[%u] on device '%s' already claimed by '%s'",
                  toString(kind), index, device_.name.c_str(),
                  p.logicalName.c_str());
    }
    pins_.push_back({logical_name, kind, index});
    return pins_.back();
}

std::vector<std::string>
DeviceAdapter::emitConstraintScript() const
{
    std::vector<std::string> lines;
    lines.push_back(format("# constraints for %s (%s)",
                           device_.name.c_str(),
                           device_.chipName.c_str()));
    for (const ClockMapping &c : clocks_) {
        lines.push_back(format(
            "create_clock -name %s -period %.3f [get_pins pll%u/out]",
            c.logicalName.c_str(), 1000.0 / c.mhz, c.pllIndex));
    }
    for (const PinMapping &p : pins_) {
        lines.push_back(format(
            "set_property -dict {LOC %s_%u} [get_ports %s]",
            toString(p.kind), p.instanceIndex, p.logicalName.c_str()));
    }
    return lines;
}

} // namespace harmonia
