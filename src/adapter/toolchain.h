/**
 * @file
 * The automated integration toolchain (§4, "Project implementation"):
 * loads the vendor adapter, checks module/environment dependencies,
 * completes platform configuration and runs the (simulated) CAD flow —
 * synthesis, fitting against the chip budget and timing closure —
 * producing a packaged project artifact.
 */

#ifndef HARMONIA_ADAPTER_TOOLCHAIN_H_
#define HARMONIA_ADAPTER_TOOLCHAIN_H_

#include <string>
#include <vector>

#include "adapter/device_adapter.h"
#include "adapter/vendor_adapter.h"
#include "device/database.h"
#include "ip/ip_block.h"
#include "shell/tailoring.h"

namespace harmonia {

/** Everything one compilation needs. */
struct CompileJob {
    std::string projectName;
    const FpgaDevice *device = nullptr;
    std::vector<const IpBlock *> modules;  ///< shell IP instances
    ResourceVector shellLogic;  ///< wrappers, Ex-functions, kernel
    ResourceVector roleLogic;   ///< the user's role

    /**
     * The shell plan behind this job, when known (Shell::compileJob
     * sets it). compile() then runs the platform DRC (src/drc) ahead
     * of the flow and refuses to start on Error findings.
     */
    const ShellConfig *shellConfig = nullptr;

    /** Role demands for tailoring-consistency rules (optional). */
    const RoleRequirements *role = nullptr;
};

/** The outcome of a compilation. */
struct BuildArtifact {
    bool success = false;
    std::string bitstreamId;     ///< deterministic content id
    ResourceVector total;        ///< post-synthesis usage
    double maxUtilization = 0;   ///< worst resource-class fraction
    double timingSlackNs = 0;    ///< positive = closure met
    std::vector<std::string> log;
};

/**
 * A simulated vendor CAD flow. Construction pins the environment;
 * compile() is deterministic in its inputs.
 */
class Toolchain {
  public:
    explicit Toolchain(VendorAdapter environment);

    const VendorAdapter &environment() const { return env_; }

    /** Run the full flow. Never throws for job-level failures; the
     *  artifact carries success=false and the reasons in the log. */
    BuildArtifact compile(const CompileJob &job) const;

    /** Utilization above which (modelled) timing closure fails. */
    static constexpr double kTimingWall = 0.90;

    /**
     * Proceed past DRC Error findings (they still log). An escape
     * hatch for bring-up experiments, not for production flows.
     */
    void setDrcOverride(bool on) { drcOverride_ = on; }
    bool drcOverride() const { return drcOverride_; }

  private:
    VendorAdapter env_;
    bool drcOverride_ = false;
};

} // namespace harmonia

#endif // HARMONIA_ADAPTER_TOOLCHAIN_H_
