/**
 * @file
 * The automated vendor adapter (§3.2): structures each module's vendor
 * dependencies as key-value pairs (CAD tool, IP catalogue entries,
 * hard-IP requirements — values are version strings) and performs
 * rigid inspections against the deployment environment so
 * incompatibilities surface before compilation, not during it.
 */

#ifndef HARMONIA_ADAPTER_VENDOR_ADAPTER_H_
#define HARMONIA_ADAPTER_VENDOR_ADAPTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "device/database.h"
#include "ip/ip_block.h"

namespace harmonia {

/** One dependency finding from inspection. */
struct DependencyIssue {
    /** What kind of drift this entry records. */
    enum class Kind {
        Missing,      ///< module wants a key the environment lacks
        Mismatch,     ///< version strings differ
        DeadProvide,  ///< environment key no module consumes
    };

    std::string module;    ///< IP model that declared the dependency
    std::string key;       ///< dependency attribute
    std::string expected;  ///< version the module requires
    std::string found;     ///< what the environment provides ("" = none)
    Kind kind = Kind::Missing;

    /** True for the Kinds that make an environment incompatible. */
    bool blocking() const { return kind != Kind::DeadProvide; }

    std::string toString() const;
};

/**
 * Vendor adapter for one toolchain environment. provide() declares
 * what the deployment environment offers; inspect() checks every
 * module's declared dependencies against it.
 */
class VendorAdapter {
  public:
    explicit VendorAdapter(Vendor vendor);

    Vendor vendor() const { return vendor_; }

    /** Declare an environment capability (exact-version semantics). */
    void provide(const std::string &key, const std::string &value);

    const std::map<std::string, std::string> &environment() const
    {
        return env_;
    }

    /**
     * Rigidly inspect @p modules: every missing or mismatched
     * dependency, plus (non-blocking) DeadProvide entries for
     * environment keys no module consumes — drift in deployment
     * descriptions stays visible.
     */
    std::vector<DependencyIssue>
    inspect(const std::vector<const IpBlock *> &modules) const;

    /** True when inspect() returns no blocking issues. */
    bool compatible(const std::vector<const IpBlock *> &modules) const;

    /**
     * The standard environment for a chip vendor, pre-seeded with the
     * matching CAD tool and IP catalogue versions — what a correctly
     * provisioned build host looks like.
     */
    static VendorAdapter standardFor(Vendor vendor);

    /**
     * The standard environment for a specific board: the chip vendor's
     * toolchain plus device-derived capabilities (the PCIe hard IP the
     * board actually wires up).
     */
    static VendorAdapter standardFor(const FpgaDevice &device);

  private:
    Vendor vendor_;
    std::map<std::string, std::string> env_;
};

} // namespace harmonia

#endif // HARMONIA_ADAPTER_VENDOR_ADAPTER_H_
