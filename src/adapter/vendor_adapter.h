/**
 * @file
 * The automated vendor adapter (§3.2): structures each module's vendor
 * dependencies as key-value pairs (CAD tool, IP catalogue entries,
 * hard-IP requirements — values are version strings) and performs
 * rigid inspections against the deployment environment so
 * incompatibilities surface before compilation, not during it.
 */

#ifndef HARMONIA_ADAPTER_VENDOR_ADAPTER_H_
#define HARMONIA_ADAPTER_VENDOR_ADAPTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "device/database.h"
#include "ip/ip_block.h"

namespace harmonia {

/** One dependency mismatch found during inspection. */
struct DependencyIssue {
    std::string module;    ///< IP model that declared the dependency
    std::string key;       ///< dependency attribute
    std::string expected;  ///< version the module requires
    std::string found;     ///< what the environment provides ("" = none)

    std::string toString() const;
};

/**
 * Vendor adapter for one toolchain environment. provide() declares
 * what the deployment environment offers; inspect() checks every
 * module's declared dependencies against it.
 */
class VendorAdapter {
  public:
    explicit VendorAdapter(Vendor vendor);

    Vendor vendor() const { return vendor_; }

    /** Declare an environment capability (exact-version semantics). */
    void provide(const std::string &key, const std::string &value);

    const std::map<std::string, std::string> &environment() const
    {
        return env_;
    }

    /** Rigidly inspect @p modules; returns every mismatch found. */
    std::vector<DependencyIssue>
    inspect(const std::vector<const IpBlock *> &modules) const;

    /** True when inspect() returns no issues. */
    bool compatible(const std::vector<const IpBlock *> &modules) const;

    /**
     * The standard environment for a chip vendor, pre-seeded with the
     * matching CAD tool and IP catalogue versions — what a correctly
     * provisioned build host looks like.
     */
    static VendorAdapter standardFor(Vendor vendor);

    /**
     * The standard environment for a specific board: the chip vendor's
     * toolchain plus device-derived capabilities (the PCIe hard IP the
     * board actually wires up).
     */
    static VendorAdapter standardFor(const FpgaDevice &device);

  private:
    Vendor vendor_;
    std::map<std::string, std::string> env_;
};

} // namespace harmonia

#endif // HARMONIA_ADAPTER_VENDOR_ADAPTER_H_
