#include "adapter/vendor_adapter.h"

#include <set>

#include "common/logging.h"

namespace harmonia {

std::string
DependencyIssue::toString() const
{
    if (kind == Kind::DeadProvide)
        return format("environment provides %s=%s but no module "
                      "consumes it",
                      key.c_str(), found.c_str());
    if (found.empty())
        return format("%s: missing dependency %s (wants %s)",
                      module.c_str(), key.c_str(), expected.c_str());
    return format("%s: dependency %s version mismatch (wants %s, "
                  "environment has %s)",
                  module.c_str(), key.c_str(), expected.c_str(),
                  found.c_str());
}

VendorAdapter::VendorAdapter(Vendor vendor) : vendor_(vendor)
{
}

void
VendorAdapter::provide(const std::string &key, const std::string &value)
{
    env_[key] = value;
}

std::vector<DependencyIssue>
VendorAdapter::inspect(const std::vector<const IpBlock *> &modules) const
{
    std::vector<DependencyIssue> issues;
    std::set<std::string> consumed;
    for (const IpBlock *m : modules) {
        if (m == nullptr)
            panic("null module handed to vendor adapter");
        for (const auto &[key, expected] : m->dependencies()) {
            consumed.insert(key);
            auto it = env_.find(key);
            if (it == env_.end()) {
                issues.push_back({m->name(), key, expected, "",
                                  DependencyIssue::Kind::Missing});
            } else if (it->second != expected) {
                issues.push_back({m->name(), key, expected,
                                  it->second,
                                  DependencyIssue::Kind::Mismatch});
            }
        }
    }
    // Dead provides: declared capabilities nothing consumes. Never
    // blocking, but deployment-description drift starts here.
    for (const auto &[key, value] : env_)
        if (!consumed.count(key))
            issues.push_back({"", key, "", value,
                              DependencyIssue::Kind::DeadProvide});
    return issues;
}

bool
VendorAdapter::compatible(
    const std::vector<const IpBlock *> &modules) const
{
    for (const DependencyIssue &i : inspect(modules))
        if (i.blocking())
            return false;
    return true;
}

VendorAdapter
VendorAdapter::standardFor(Vendor vendor)
{
    VendorAdapter adapter(vendor);
    switch (vendor) {
      case Vendor::Xilinx:
      case Vendor::InHouse:  // in-house boards build with Vivado flows
        adapter.provide("cad_tool", "vivado-2023.2");
        adapter.provide("ip:qdma", "5.0");
        adapter.provide("ip:cmac_usplus", "3.1");
        adapter.provide("ip:ddr4", "2.2");
        adapter.provide("ip:hbm", "1.0");
        adapter.provide("gt_type", "GTY");
        break;
      case Vendor::Intel:
        adapter.provide("cad_tool", "quartus-23.4");
        adapter.provide("ip:mcdma", "22.3");
        adapter.provide("ip:etile_hip", "22.3");
        adapter.provide("ip:emif", "22.3");
        adapter.provide("tile_type", "E-tile");
        break;
    }
    return adapter;
}

VendorAdapter
VendorAdapter::standardFor(const FpgaDevice &device)
{
    VendorAdapter adapter = standardFor(device.chip().vendor());
    const Peripheral &pcie = device.pcie();
    unsigned gen = 3;
    switch (pcie.kind) {
      case PeripheralKind::PcieGen3:
        gen = 3;
        break;
      case PeripheralKind::PcieGen4:
        gen = 4;
        break;
      case PeripheralKind::PcieGen5:
        gen = 5;
        break;
      default:
        panic("non-PCIe peripheral returned by pcie()");
    }
    const char *hard_ip =
        adapter.vendor() == Vendor::Intel ? "ptile"
                                          : "pcie4_uscale_plus";
    adapter.provide("pcie_hard_ip",
                    format("%s:gen%u_x%u", hard_ip, gen, pcie.lanes));
    return adapter;
}

} // namespace harmonia
