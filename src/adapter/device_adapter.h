/**
 * @file
 * The automated device adapter (§3.2): manages hardware-resource
 * configurations for one FPGA board. Static-group entries hold the
 * inherent properties of the chip and peripherals (configured once and
 * reused anywhere); dynamic-group entries hold on-demand mapping
 * constraints between logic and device (I/O pins, clocks).
 */

#ifndef HARMONIA_ADAPTER_DEVICE_ADAPTER_H_
#define HARMONIA_ADAPTER_DEVICE_ADAPTER_H_

#include <map>
#include <string>
#include <vector>

#include "device/database.h"

namespace harmonia {

/** A named clock request bound to a device clock resource. */
struct ClockMapping {
    std::string logicalName;
    double mhz = 0;
    unsigned pllIndex = 0;
};

/** A named pin-group request bound to a peripheral instance. */
struct PinMapping {
    std::string logicalName;
    PeripheralKind kind;
    unsigned instanceIndex = 0;
};

/**
 * Device adapter for one board. Construction derives the full static
 * group from the device database; dynamic mappings are validated
 * against what the board physically has.
 */
class DeviceAdapter {
  public:
    explicit DeviceAdapter(const FpgaDevice &device);

    const FpgaDevice &device() const { return device_; }

    /** Inherent properties: chip budget, channel counts, link widths. */
    const std::map<std::string, std::string> &staticConfig() const
    {
        return staticConfig_;
    }

    /**
     * Map a logical clock onto a PLL output. fatal() when the board's
     * PLL budget is exhausted or the name is reused.
     */
    const ClockMapping &mapClock(const std::string &logical_name,
                                 double mhz);

    /**
     * Map a logical pin group onto the @p index'th peripheral of
     * @p kind. fatal() when the board lacks that peripheral instance
     * or it is already claimed.
     */
    const PinMapping &mapPins(const std::string &logical_name,
                              PeripheralKind kind, unsigned index);

    const std::vector<ClockMapping> &clockMappings() const
    {
        return clocks_;
    }
    const std::vector<PinMapping> &pinMappings() const { return pins_; }

    /**
     * Emit the constraint script the vendor tool consumes — the
     * adapters are "generated using vendor-provided tcl and ruby
     * scripts" in production; the model renders the equivalent lines.
     */
    std::vector<std::string> emitConstraintScript() const;

    /** PLL outputs available on the modelled boards. */
    static constexpr unsigned kPllBudget = 8;

  private:
    unsigned peripheralCount(PeripheralKind kind) const;

    const FpgaDevice &device_;
    std::map<std::string, std::string> staticConfig_;
    std::vector<ClockMapping> clocks_;
    std::vector<PinMapping> pins_;
};

} // namespace harmonia

#endif // HARMONIA_ADAPTER_DEVICE_ADAPTER_H_
