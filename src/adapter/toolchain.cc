#include "adapter/toolchain.h"

#include "common/checksum.h"
#include "common/logging.h"
#include "common/strings.h"
#include "drc/checker.h"  // harmonia-lint: allow(LAYER-002) compile gate consumes DRC reports

namespace harmonia {

Toolchain::Toolchain(VendorAdapter environment)
    : env_(std::move(environment))
{
}

BuildArtifact
Toolchain::compile(const CompileJob &job) const
{
    BuildArtifact art;
    auto log = [&](std::string line) {
        art.log.push_back(std::move(line));
    };

    if (job.device == nullptr) {
        log("error: compile job has no target device");
        return art;
    }
    const FpgaDevice &device = *job.device;
    log(format("[flow] project '%s' targeting %s (%s)",
               job.projectName.c_str(), device.name.c_str(),
               device.chipName.c_str()));

    // Step 0: static design-rule check over the shell plan, when the
    // job carries one. This catches composition hazards the flow
    // below would hit mid-compile, plus hazards it would never see
    // at all (CDC coverage, command-schema breakage).
    if (job.shellConfig != nullptr) {
        drc::DrcInput in;
        in.device = job.device;
        in.config = *job.shellConfig;
        in.role = job.role;
        in.roleLogic = job.roleLogic;
        in.shellName = job.projectName;
        in.environment = env_;
        const drc::DrcReport report = drc::check(in);
        for (const drc::Diagnostic &d : report.diagnostics())
            log("[drc] " + d.toString());
        if (!report.clean() && !drcOverride_) {
            log(format("[flow] aborted: design-rule check reported "
                       "%zu error(s)",
                       report.errorCount()));
            return art;
        }
        if (!report.clean())
            log(format("[drc] override: proceeding past %zu "
                       "error(s)",
                       report.errorCount()));
        else
            log(format("[drc] clean (%s)",
                       report.summary().c_str()));
    }

    // Step 1: rigid dependency inspection via the vendor adapter.
    std::size_t hard_issues = 0;
    for (const DependencyIssue &i : env_.inspect(job.modules)) {
        if (!i.blocking()) {
            log("info: " + i.toString());
            continue;
        }
        log("error: " + i.toString());
        ++hard_issues;
    }
    if (hard_issues > 0) {
        log(format("[flow] aborted: %zu dependency issue(s)",
                   hard_issues));
        return art;
    }
    log(format("[flow] dependency inspection passed (%zu modules)",
               job.modules.size()));

    // Step 2: synthesis — aggregate resources.
    ResourceVector total = job.shellLogic + job.roleLogic;
    for (const IpBlock *m : job.modules)
        total += m->resources();
    art.total = total;
    log(format("[synth] %s", total.toString().c_str()));

    // Step 3: fitting against the chip budget.
    const ResourceVector &budget = device.chip().budget;
    if (!total.fitsIn(budget)) {
        log(format("error: design %s does not fit %s budget %s",
                   total.toString().c_str(), device.chipName.c_str(),
                   budget.toString().c_str()));
        return art;
    }
    art.maxUtilization = total.maxUtilization(budget);
    log(format("[fit] max utilization %.1f%%",
               art.maxUtilization * 100));

    // Step 4: timing closure. The model degrades slack linearly with
    // utilization — congested designs fail past the timing wall.
    art.timingSlackNs = (kTimingWall - art.maxUtilization) * 1.2;
    if (art.timingSlackNs < 0) {
        log(format("error: timing closure failed (slack %.3f ns)",
                   art.timingSlackNs));
        return art;
    }
    log(format("[timing] closed with %.3f ns slack",
               art.timingSlackNs));

    // Step 5: package the artifact with a deterministic content id.
    std::vector<std::uint8_t> ident(job.projectName.begin(),
                                    job.projectName.end());
    for (const IpBlock *m : job.modules)
        ident.insert(ident.end(), m->name().begin(), m->name().end());
    ident.insert(ident.end(), device.name.begin(), device.name.end());
    art.bitstreamId = format("bit_%04x_%s", checksum16(ident),
                             device.chipName.c_str());
    art.success = true;
    log(format("[flow] packaged %s", art.bitstreamId.c_str()));
    return art;
}

} // namespace harmonia
