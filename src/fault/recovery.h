/**
 * @file
 * Degraded-mode orchestration: the piece of management software that
 * turns health alarms into load shedding instead of outages. When the
 * board trips its over-temperature alarm the manager down-shifts the
 * ingress planes (network RX shedding, host queue deactivation); once
 * the die has cooled past a hysteresis margin for several consecutive
 * checks it clears the latch and restores full service.
 *
 * Every transition is counted, so a fleet operator can tell a card
 * that ran degraded for an afternoon from one that flapped.
 */

#ifndef HARMONIA_FAULT_RECOVERY_H_
#define HARMONIA_FAULT_RECOVERY_H_

#include <vector>

#include "shell/unified_shell.h"  // harmonia-lint: allow(LAYER-002) recovery drives shell health state
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** Degrade/restore thresholds and pacing. */
struct RecoveryConfig {
    /** Temperature must fall this far below the limit to restore. */
    std::uint32_t hysteresisMilliC = 5'000;
    /** Kernel-clock cycles between health checks. */
    std::uint64_t checkIntervalCycles = 64;
    /** Host queues kept active even in degraded mode. */
    std::uint16_t hostQueueFloor = 8;
    /** Consecutive cool checks required before restoring. */
    unsigned stableChecksToRestore = 4;
};

/**
 * Watches one shell's health monitor and drives its degraded modes.
 * Subscribes to the alarm irq for immediate notification and degrades
 * at the next check; restores with hysteresis so a card hovering at
 * the limit does not flap between modes.
 */
class RecoveryManager : public Component {
  public:
    RecoveryManager(Engine &engine, Shell &shell,
                    RecoveryConfig config = {});

    bool degraded() const { return degraded_; }
    const RecoveryConfig &config() const { return config_; }

    void tick() override;

    /** Quiescent (healthy, not degraded), or between check cycles. */
    bool idle() const override;

    /** The next check cycle, when a transition may be pending. */
    Tick wakeTime() const override;

    /** Transition counters: degrade/restore events, queues shed. */
    StatGroup &stats() { return stats_; }

    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    void enterDegraded();
    void restore();

    Shell &shell_;
    RecoveryConfig config_;
    bool degraded_ = false;
    bool alarmPending_ = false;
    unsigned stableChecks_ = 0;
    std::vector<std::uint16_t> shedQueues_;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_FAULT_RECOVERY_H_
