#include "fault/recovery.h"

#include "obs/flight_recorder.h"  // harmonia-lint: allow(LAYER-002) recovery edges feed the black box
#include "sim/trace.h"

namespace harmonia {

RecoveryManager::RecoveryManager(Engine &engine, Shell &shell,
                                 RecoveryConfig config)
    : Component(shell.name() + "_recovery"), shell_(shell),
      config_(config), stats_(this->name())
{
    engine.add(this, shell.kernelClock());
    // The alarm irq is the latency-critical signal: note it the
    // instant it fires so the next check degrades even if the sensor
    // has already drifted back under the limit.
    shell_.health().alarmLine().subscribe([this] {
        alarmPending_ = true;
        stats_.counter("alarm_edges").inc();
    });
}

bool
RecoveryManager::idle() const
{
    if (config_.checkIntervalCycles == 0)
        return false;  // checks every cycle
    // Healthy and at rest: a check would observe nothing and change
    // nothing, at this cycle or any later one — only an alarm edge
    // (driven by a health sample the engine never skips) wakes us.
    if (!degraded_ && !alarmPending_ &&
        (shell_.health().alarms() & kAlarmOverTemp) == 0)
        return true;
    return cycle() % config_.checkIntervalCycles != 0;
}

Tick
RecoveryManager::wakeTime() const
{
    if (config_.checkIntervalCycles == 0)
        return kTickMax;
    if (!degraded_ && !alarmPending_ &&
        (shell_.health().alarms() & kAlarmOverTemp) == 0)
        return kTickMax;
    const Cycles next = (cycle() / config_.checkIntervalCycles + 1) *
                        config_.checkIntervalCycles;
    return clock()->cyclesToTicks(next);
}

void
RecoveryManager::tick()
{
    if (config_.checkIntervalCycles != 0 &&
        cycle() % config_.checkIntervalCycles != 0)
        return;

    HealthMonitor &health = shell_.health();
    if (!degraded_) {
        if (alarmPending_ || (health.alarms() & kAlarmOverTemp) != 0)
            enterDegraded();
        return;
    }

    // Restoring needs the die comfortably below the limit — the
    // hysteresis margin — for several consecutive checks, so a card
    // hovering at the threshold does not flap.
    const bool cool = health.temperatureMilliC() +
                          config_.hysteresisMilliC <=
                      health.tempLimitMilliC();
    if (!cool) {
        stableChecks_ = 0;
        return;
    }
    if (++stableChecks_ >= config_.stableChecksToRestore)
        restore();
}

void
RecoveryManager::enterDegraded()
{
    degraded_ = true;
    alarmPending_ = false;
    stableChecks_ = 0;
    stats_.counter("degrade_events").inc();
    trace(*this, "over-temp: entering degraded mode");
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteRecovery(name(), "enter-degraded", now());

    for (std::size_t i = 0; i < shell_.networkCount(); ++i)
        shell_.network(i).setRxShed(true);

    if (shell_.hasHost()) {
        HostRbb &host = shell_.host();
        shedQueues_.clear();
        for (std::uint16_t q = config_.hostQueueFloor;
             q < host.numQueues(); ++q) {
            if (!host.queueActive(q))
                continue;
            host.setQueueActive(q, false);
            shedQueues_.push_back(q);
            stats_.counter("queues_shed").inc();
        }
    }
}

void
RecoveryManager::restore()
{
    degraded_ = false;
    alarmPending_ = false;
    stableChecks_ = 0;
    stats_.counter("restore_events").inc();
    trace(*this, "cooled past hysteresis: restoring full service");
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteRecovery(name(), "restore", now());

    // Clear the latched alarm (and drop the irq line) the same way
    // management software does: a ModuleReset at the health target.
    shell_.health().executeCommand(kCmdModuleReset, {});

    for (std::size_t i = 0; i < shell_.networkCount(); ++i)
        shell_.network(i).setRxShed(false);

    if (shell_.hasHost()) {
        HostRbb &host = shell_.host();
        for (std::uint16_t q : shedQueues_) {
            host.setQueueActive(q, true);
            stats_.counter("queues_restored").inc();
        }
        shedQueues_.clear();
    }
}

void
RecoveryManager::registerTelemetry(MetricsRegistry &reg,
                                   const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addGauge(prefix + "/degraded",
                        [this] { return degraded_ ? 1.0 : 0.0; });
}

} // namespace harmonia
