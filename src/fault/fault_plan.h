/**
 * @file
 * The fault-injection plane: a deterministic, seedable schedule of
 * failures a cloud card actually sees — corrupted beats, flapping
 * links, stuck DMA queues, mangled command packets, thermal
 * excursions, failed partial-bitstream loads. Hook points across the
 * wrapper/cmd/host/shell layers query the armed plan and inject the
 * faults it schedules; the recovery machinery (driver retries,
 * degraded modes, quarantine) is what the chaos suite then proves out.
 *
 * Determinism contract: a plan is driven by its seed and its schedule
 * alone. Hook sites query in simulated-time order (the engine is
 * single-threaded), every rate draw comes from a per-rule counter-based
 * generator, and `fingerprint()` hashes the injected-event log — so
 * identical seed + schedule + workload ⇒ identical faults and an
 * identical fingerprint across runs.
 */

#ifndef HARMONIA_FAULT_FAULT_PLAN_H_
#define HARMONIA_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** Every fault class the plane can inject. */
enum class FaultKind : std::uint8_t {
    // sim/rtl/wrapper layer: stream + CDC links.
    StreamBitFlip = 0,  ///< corrupt a packet on a stream link (bad FCS)
    StreamBeatDrop,     ///< lose a packet at a stream wrapper port
    CdcBeatDrop,        ///< lose a beat crossing an async-FIFO CDC
    // Command plane: the control queue.
    CmdCorrupt,   ///< flip a bit in an encoded command packet
    CmdTruncate,  ///< cut the tail off a command packet
    CmdDrop,      ///< lose a command packet outright
    RespCorrupt,  ///< flip a bit in a response packet
    RespDrop,     ///< lose a response packet
    // Host plane: DMA.
    DmaStall,           ///< wedge the DMA data path (level-triggered)
    DmaCompletionLoss,  ///< drop a finished transfer's completion
    // Shell plane.
    ThermalExcursion,  ///< add param milli-degC to the die temperature
    PrLoadFail,        ///< a partial-bitstream load comes back corrupt
    LinkFlap,          ///< network link down (level-triggered)
    // Card-level failure domains (HA plane).
    DeviceDeath,    ///< card gone: commands lost, responses too
    KernelWedge,    ///< control kernel wedged: acks never escape
    PrSlotCorrupt,  ///< an Active PR slot loses its configuration
    kCount,
};

const char *toString(FaultKind kind);

/**
 * A fault schedule. Rules are rate windows (inject with probability
 * `rate` per hook-site query inside [from, until)) or one-shots (fire
 * at the first matching query at or after `at`). An optional target
 * filter restricts a rule to hook sites whose name contains the
 * filter substring. Arm a plan to make the hook points live; at most
 * one plan is armed per process, and an unarmed plane costs one null
 * check per hook site.
 */
class FaultPlan {
  public:
    /** Injected-event log bound; counters keep counting past it. */
    static constexpr std::size_t kMaxLogEntries = 4096;

    explicit FaultPlan(std::uint64_t seed = 1);
    ~FaultPlan();

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    std::uint64_t seed() const { return seed_; }

    /**
     * Schedule @p kind over [@p from, @p until) ticks: each matching
     * hook-site query injects with probability @p rate (>= 1.0 means
     * every query — how level faults like LinkFlap model "down").
     * @p param rides along to the hook site (e.g. milli-degC for
     * ThermalExcursion).
     */
    void addWindow(FaultKind kind, Tick from, Tick until, double rate,
                   std::string target_filter = "",
                   std::uint64_t param = 0);

    /** Schedule one injection at the first matching query >= @p at. */
    void addOneShot(FaultKind kind, Tick at,
                    std::string target_filter = "",
                    std::uint64_t param = 0);

    /**
     * Hook-site query: should @p kind fire at @p target now? On true
     * the event is logged/counted and @p param (when non-null) gets
     * the matching rule's parameter.
     */
    bool shouldInject(FaultKind kind, const std::string &target,
                      Tick now, std::uint64_t *param = nullptr);

    /** One injected fault. */
    struct Event {
        FaultKind kind = FaultKind::kCount;
        Tick at = 0;
        std::string target;
    };

    /** The (bounded) injected-event log, in injection order. */
    const std::vector<Event> &log() const { return log_; }

    std::uint64_t injected(FaultKind kind) const;
    std::uint64_t injectedTotal() const { return total_; }

    /**
     * Order-sensitive hash of every injected event (beyond-the-log
     * events included). Equal seeds + schedules + workloads produce
     * equal fingerprints; the chaos suite asserts exactly that.
     */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Per-kind injection counters ("injected_<kind>"). */
    StatGroup &stats() { return stats_; }

    /** Publish the injection counters under @p prefix. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

    /** Make this the process-armed plan (replaces any previous). */
    void arm();

    /** Disarm if this plan is the armed one. */
    void disarm();

    /** The armed plan, or nullptr. */
    static FaultPlan *active();

  private:
    struct Rule {
        FaultKind kind = FaultKind::kCount;
        Tick from = 0;
        Tick until = 0;
        double rate = 0.0;
        std::string filter;
        std::uint64_t param = 0;
        bool oneShot = false;
        bool fired = false;
        std::uint64_t rng = 0;  ///< per-rule generator state
    };

    void record(FaultKind kind, const std::string &target, Tick now);

    std::uint64_t seed_;
    std::uint64_t seedSequence_;  ///< stream allocator for rule RNGs
    std::vector<Rule> rules_;
    std::vector<Event> log_;
    std::uint64_t counts_[static_cast<std::size_t>(FaultKind::kCount)] =
        {};
    std::uint64_t total_ = 0;
    std::uint64_t fingerprint_;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

/**
 * The hook-point helper every instrumented layer calls: false (and
 * nearly free) when no plan is armed.
 */
inline bool
injectFault(FaultKind kind, const std::string &target, Tick now,
            std::uint64_t *param = nullptr)
{
    FaultPlan *plan = FaultPlan::active();
    return plan != nullptr &&
           plan->shouldInject(kind, target, now, param);
}

} // namespace harmonia

#endif // HARMONIA_FAULT_FAULT_PLAN_H_
