#include "fault/fault_plan.h"

#include "obs/flight_recorder.h"  // harmonia-lint: allow(LAYER-002) flight-recorder arm/notify hooks

namespace harmonia {

namespace {

FaultPlan *gArmed = nullptr;

// splitmix64: seeds the per-rule streams so adding a rule never
// perturbs the draws of the rules before it.
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// xorshift64*: one self-contained stream per rule, identical on every
// platform (no <random> distribution variance).
std::uint64_t
xorshift64star(std::uint64_t &s)
{
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545f4914f6cdd1dULL;
}

double
uniform01(std::uint64_t &s)
{
    return static_cast<double>(xorshift64star(s) >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::StreamBitFlip:
        return "stream_bit_flip";
      case FaultKind::StreamBeatDrop:
        return "stream_beat_drop";
      case FaultKind::CdcBeatDrop:
        return "cdc_beat_drop";
      case FaultKind::CmdCorrupt:
        return "cmd_corrupt";
      case FaultKind::CmdTruncate:
        return "cmd_truncate";
      case FaultKind::CmdDrop:
        return "cmd_drop";
      case FaultKind::RespCorrupt:
        return "resp_corrupt";
      case FaultKind::RespDrop:
        return "resp_drop";
      case FaultKind::DmaStall:
        return "dma_stall";
      case FaultKind::DmaCompletionLoss:
        return "dma_completion_loss";
      case FaultKind::ThermalExcursion:
        return "thermal_excursion";
      case FaultKind::PrLoadFail:
        return "pr_load_fail";
      case FaultKind::LinkFlap:
        return "link_flap";
      case FaultKind::DeviceDeath:
        return "device_death";
      case FaultKind::KernelWedge:
        return "kernel_wedge";
      case FaultKind::PrSlotCorrupt:
        return "pr_slot_corrupt";
      case FaultKind::kCount:
        break;
    }
    return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed)
    : seed_(seed), seedSequence_(seed), fingerprint_(kFnvOffset),
      stats_("fault_plan")
{
}

FaultPlan::~FaultPlan()
{
    disarm();
}

void
FaultPlan::addWindow(FaultKind kind, Tick from, Tick until, double rate,
                     std::string target_filter, std::uint64_t param)
{
    Rule r;
    r.kind = kind;
    r.from = from;
    r.until = until;
    r.rate = rate;
    r.filter = std::move(target_filter);
    r.param = param;
    r.rng = splitmix64(seedSequence_);
    rules_.push_back(std::move(r));
}

void
FaultPlan::addOneShot(FaultKind kind, Tick at,
                      std::string target_filter, std::uint64_t param)
{
    Rule r;
    r.kind = kind;
    r.from = at;
    r.oneShot = true;
    r.filter = std::move(target_filter);
    r.param = param;
    r.rng = splitmix64(seedSequence_);
    rules_.push_back(std::move(r));
}

bool
FaultPlan::shouldInject(FaultKind kind, const std::string &target,
                        Tick now, std::uint64_t *param)
{
    for (Rule &r : rules_) {
        if (r.kind != kind)
            continue;
        if (!r.filter.empty() &&
            target.find(r.filter) == std::string::npos)
            continue;
        if (r.oneShot) {
            if (r.fired || now < r.from)
                continue;
            r.fired = true;
        } else {
            if (now < r.from || now >= r.until)
                continue;
            if (r.rate < 1.0 && uniform01(r.rng) >= r.rate)
                continue;
        }
        if (param != nullptr)
            *param = r.param;
        record(kind, target, now);
        return true;
    }
    return false;
}

void
FaultPlan::record(FaultKind kind, const std::string &target, Tick now)
{
    ++counts_[static_cast<std::size_t>(kind)];
    ++total_;
    stats_.counter(std::string("injected_") + toString(kind)).inc();
    fingerprint_ =
        fnvMix(fingerprint_, static_cast<std::uint64_t>(kind));
    fingerprint_ = fnvMix(fingerprint_, now);
    for (char c : target) {
        fingerprint_ ^= static_cast<std::uint8_t>(c);
        fingerprint_ *= kFnvPrime;
    }
    if (log_.size() < kMaxLogEntries)
        log_.push_back(Event{kind, now, target});
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteFault(toString(kind), target, now);
}

std::uint64_t
FaultPlan::injected(FaultKind kind) const
{
    if (kind >= FaultKind::kCount)
        return 0;
    return counts_[static_cast<std::size_t>(kind)];
}

void
FaultPlan::registerTelemetry(MetricsRegistry &reg,
                             const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addGauge(prefix + "/injected_total", [this] {
        return static_cast<double>(total_);
    });
}

void
FaultPlan::arm()
{
    gArmed = this;
}

void
FaultPlan::disarm()
{
    if (gArmed == this)
        gArmed = nullptr;
}

FaultPlan *
FaultPlan::active()
{
    return gArmed;
}

} // namespace harmonia
