#include <algorithm>
#include <map>

#include "cmd/command_codes.h"
#include "cmd/control_kernel.h"
#include "common/logging.h"
#include "drc/rule.h"
#include "ip/dma_ip.h"
#include "ip/mac_ip.h"
#include "ip/memory_ip.h"
#include "shell/host_rbb.h"
#include "shell/memory_rbb.h"
#include "shell/network_rbb.h"

namespace harmonia {
namespace drc {

namespace {

/** PCIe generation for a host peripheral kind. */
unsigned
pcieGenOf(PeripheralKind kind)
{
    switch (kind) {
      case PeripheralKind::PcieGen3:
        return 3;
      case PeripheralKind::PcieGen4:
        return 4;
      case PeripheralKind::PcieGen5:
        return 5;
      default:
        return 0;
    }
}

bool
supportedRate(unsigned gbps)
{
    const auto rates = supportedMacRates();
    return std::find(rates.begin(), rates.end(), gbps) != rates.end();
}

} // namespace

DrcContext::DrcContext(const DrcInput &input)
    : input_(input),
      env_(input.environment
               ? *input.environment
               : (input.device != nullptr &&
                          !input.device->byClass(PeripheralClass::Host)
                               .empty()
                      ? VendorAdapter::standardFor(*input.device)
                      : VendorAdapter::standardFor(
                            input.device != nullptr
                                ? input.device->chip().vendor()
                                : Vendor::Xilinx)))
{
    if (input_.device == nullptr)
        fatal("DRC input has no target device");
    roleLogic_ = input_.role != nullptr ? input_.role->roleLogic
                                        : input_.roleLogic;
    deriveModulesAndLinks();
    deriveCommandPlane();
    if (input_.links)
        links_ = *input_.links;
    if (input_.targets)
        targets_ = *input_.targets;
    if (input_.commands)
        commands_ = *input_.commands;
}

void
DrcContext::deriveModulesAndLinks()
{
    const FpgaDevice &dev = device();
    const ShellConfig &cfg = config();
    const Vendor chip_vendor = dev.chip().vendor();

    auto place = [&](std::unique_ptr<IpBlock> mod,
                     const std::string &leaf) {
        PlannedLink link;
        link.path = path(leaf);
        link.source = mod->dataProtocol();
        link.sink = Protocol::Uniform;
        link.viaWrapper = true;
        link.sourceMhz = mod->clockMhz();
        link.sinkMhz = cfg.userClockMhz;
        link.sourceWidthBits = mod->dataWidthBits();
        link.sinkWidthBits = kUniformDataWidthBits;
        link.viaAsyncFifo = true;
        link.syncStages = kMinSyncStages;
        links_.push_back(std::move(link));
        moduleViews_.push_back(mod.get());
        ownedModules_.push_back(std::move(mod));
    };

    for (std::size_t i = 0; i < cfg.networks.size(); ++i) {
        if (!supportedRate(cfg.networks[i].gbps))
            continue;  // PeripheralAvailabilityRule reports this
        place(makeMac(chip_vendor, cfg.networks[i].gbps,
                      format("n%zu", i)),
              format("net%zu", i));
    }

    for (std::size_t i = 0; i < cfg.memories.size(); ++i) {
        const MemoryInstanceCfg &m = cfg.memories[i];
        if (classOf(m.kind) != PeripheralClass::Memory ||
            !dev.has(m.kind) || m.channels == 0 || m.channels > 64)
            continue;  // likewise diagnosed from the raw config
        place(makeMemory(chip_vendor, m.kind, m.channels,
                         format("m%zu", i)),
              format("mem%zu", i));
    }

    if (cfg.includeHost) {
        const auto hosts = dev.byClass(PeripheralClass::Host);
        if (!hosts.empty() && cfg.hostQueues >= 1 &&
            cfg.hostQueues <= 1024) {
            hostModules_ = 1;
            place(makeDma(chip_vendor, pcieGenOf(hosts[0].kind),
                          hosts[0].lanes, cfg.hostQueues, "h0",
                          cfg.dmaStyle == DmaStyle::Bdma
                              ? DmaEngineStyle::Bulk
                              : DmaEngineStyle::ScatterGather),
                  "host0");
        }
    }

    // The control kernel's reg plane crosses from the fixed 250 MHz
    // kernel domain into the user domain (no wrapper: both sides
    // already speak the uniform reg format).
    PlannedLink uck;
    uck.path = path("uck");
    uck.source = Protocol::Uniform;
    uck.sink = Protocol::Uniform;
    uck.viaWrapper = false;
    uck.sourceMhz = 250.0;
    uck.sinkMhz = cfg.userClockMhz;
    uck.sourceWidthBits = 32;
    uck.sinkWidthBits = 32;
    uck.viaAsyncFifo = true;
    uck.syncStages = kMinSyncStages;
    links_.push_back(std::move(uck));
}

void
DrcContext::deriveCommandPlane()
{
    const ShellConfig &cfg = config();

    auto target = [&](const std::string &leaf, std::uint8_t rbb,
                      std::uint8_t inst) {
        targets_.push_back({path(leaf), rbb, inst});
    };
    auto bind = [&](const std::string &leaf, std::uint8_t rbb,
                    std::uint8_t inst, std::uint16_t code,
                    unsigned words) {
        commands_.push_back({path(leaf), rbb, inst, code, words});
    };
    // The common command set every RBB answers (§3.3.3, Figure 9).
    auto common = [&](const std::string &leaf, std::uint8_t rbb,
                      std::uint8_t inst) {
        bind(leaf, rbb, inst, kCmdModuleInit, 0);
        bind(leaf, rbb, inst, kCmdModuleReset, 0);
        bind(leaf, rbb, inst, kCmdModuleStatusRead, 1);
        bind(leaf, rbb, inst, kCmdModuleStatusWrite, 2);
        bind(leaf, rbb, inst, kCmdStatsSnapshot, 1);
    };

    for (std::size_t i = 0; i < cfg.networks.size(); ++i) {
        const auto inst = static_cast<std::uint8_t>(i);
        const std::string leaf = format("net%zu", i);
        target(leaf, kRbbNetwork, inst);
        common(leaf, kRbbNetwork, inst);
        // Bulk flow-table write: table id + start + 10 entries fills
        // the 12-word slot exactly.
        bind(leaf, kRbbNetwork, inst, kCmdTableWrite, 12);
        bind(leaf, kRbbNetwork, inst, kCmdTableRead, 2);
    }
    for (std::size_t i = 0; i < cfg.memories.size(); ++i) {
        const auto inst = static_cast<std::uint8_t>(i);
        const std::string leaf = format("mem%zu", i);
        target(leaf, kRbbMemory, inst);
        common(leaf, kRbbMemory, inst);
    }
    if (cfg.includeHost) {
        target("host0", kRbbHost, 0);
        common("host0", kRbbHost, 0);
        bind("host0", kRbbHost, 0, kCmdQueueConfig, 2);
    }

    target("health", kRbbHealth, 0);
    bind("health", kRbbHealth, 0, kCmdSensorRead, 1);
    target("telemetry", kRbbTelemetry, 0);
    bind("telemetry", kRbbTelemetry, 0, kCmdTelemetryList, 1);
    bind("telemetry", kRbbTelemetry, 0, kCmdTelemetrySnapshot, 2);
    target("uck", kRbbSystem, 0);
    bind("uck", kRbbSystem, 0, kCmdFlashErase, 1);
    bind("uck", kRbbSystem, 0, kCmdTimeCount, 0);
}

ResourceVector
DrcContext::plannedShellLogic() const
{
    const ShellConfig &cfg = config();
    ResourceVector soft = UnifiedControlKernel::plannedResources();
    for (std::size_t i = 0; i < cfg.networks.size(); ++i)
        soft += NetworkRbb::plannedSoftLogic();
    for (std::size_t i = 0; i < cfg.memories.size(); ++i)
        soft += MemoryRbb::plannedSoftLogic();
    if (cfg.includeHost)
        soft += HostRbb::plannedSoftLogic();
    return soft;
}

ResourceVector
DrcContext::plannedTotal() const
{
    ResourceVector total = plannedShellLogic() + roleLogic_;
    for (const IpBlock *m : moduleViews_)
        total += m->resources();
    return total;
}

std::string
DrcContext::path(const std::string &leaf) const
{
    return input_.shellName + "/" + leaf;
}

} // namespace drc
} // namespace harmonia
