/**
 * @file
 * The platform design-rule checker entry points. check() lints a
 * (device, shell config, role, environment) tuple with the standard
 * rule set and returns a structured report — no simulator, no
 * side effects, never throws for broken inputs. Toolchain::compile
 * and strict-mode Shell construction gate on the result.
 */

#ifndef HARMONIA_DRC_CHECKER_H_
#define HARMONIA_DRC_CHECKER_H_

#include <string>
#include <vector>

#include "drc/diagnostic.h"
#include "drc/rule.h"

namespace harmonia {
namespace drc {

/** The shipped rule set, in evaluation order. */
const std::vector<const Rule *> &standardRules();

/** One row of the documentation/rule-listing table. */
struct RuleInfo {
    const char *id;
    const char *description;
    const char *paperRef;
};

/** (id, description, paper section) for every standard rule. */
std::vector<RuleInfo> ruleTable();

/** Run every standard rule over @p input. */
DrcReport check(const DrcInput &input);

/** Convenience: lint a config (and optional role) on a device. */
DrcReport check(const FpgaDevice &device, const ShellConfig &config,
                const RoleRequirements *role = nullptr,
                const std::string &shell_name = "shell");

/**
 * Lint a role deployment. Tailors the config when the demands are
 * feasible; when tailoring itself refuses (fatal), lints the demands
 * against the board's unified configuration instead so the reasons
 * surface as Error diagnostics rather than an exception.
 */
DrcReport checkRole(const FpgaDevice &device,
                    const RoleRequirements &role);

} // namespace drc
} // namespace harmonia

#endif // HARMONIA_DRC_CHECKER_H_
