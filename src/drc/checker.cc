#include "drc/checker.h"

#include "common/logging.h"

namespace harmonia {
namespace drc {

DrcReport
check(const DrcInput &input)
{
    DrcContext ctx(input);
    DrcReport report;
    for (const Rule *rule : standardRules())
        rule->check(ctx, report);
    return report;
}

DrcReport
check(const FpgaDevice &device, const ShellConfig &config,
      const RoleRequirements *role, const std::string &shell_name)
{
    DrcInput input;
    input.device = &device;
    input.config = config;
    input.role = role;
    input.shellName = shell_name;
    return check(input);
}

DrcReport
checkRole(const FpgaDevice &device, const RoleRequirements &role)
{
    try {
        return check(device, tailorConfigFor(device, role), &role,
                     role.name + "_" + device.name);
    } catch (const FatalError &) {
        // Tailoring refused the demands outright. Lint them against
        // the unified configuration so every reason becomes a
        // diagnostic instead of an exception.
        return check(device, unifiedConfigFor(device), &role,
                     role.name + "_" + device.name);
    }
}

} // namespace drc
} // namespace harmonia
