/**
 * @file
 * Structured diagnostics for the platform design-rule checker. A
 * Diagnostic carries the rule that fired, a severity, the hierarchical
 * path of the offending element (e.g. "unified_DeviceA/net0/wrapper"),
 * a message and a fix hint; a DrcReport aggregates them and answers
 * the one question gates care about: any Errors?
 */

#ifndef HARMONIA_DRC_DIAGNOSTIC_H_
#define HARMONIA_DRC_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

namespace harmonia {
namespace drc {

/** How bad a finding is. Only Error findings gate builds. */
enum class Severity {
    Info,     ///< worth knowing, never blocks anything
    Warning,  ///< suspicious but buildable
    Error,    ///< the platform tuple is broken; builds must not start
};

const char *toString(Severity s);

/** One finding from one rule. */
struct Diagnostic {
    std::string ruleId;    ///< e.g. "CDC-001"
    Severity severity = Severity::Info;
    std::string path;      ///< hierarchical element path
    std::string message;   ///< what is wrong
    std::string hint;      ///< how to fix it ("" = no suggestion)

    /** "[ERROR] CDC-001 shell/net0: message (fix: hint)". */
    std::string toString() const;
};

/** Every finding of one checker run. */
class DrcReport {
  public:
    void add(Diagnostic d);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }

    std::size_t count(Severity s) const;
    std::size_t errorCount() const { return count(Severity::Error); }

    /** True when no rule reported an Error. */
    bool clean() const { return errorCount() == 0; }

    /** Did @p rule_id fire at all? */
    bool hasRule(const std::string &rule_id) const;

    /** All findings of one rule. */
    std::vector<Diagnostic> byRule(const std::string &rule_id) const;

    /** The first Error finding; fatal() when the report is clean. */
    const Diagnostic &firstError() const;

    /** "2 error(s), 1 warning(s), 3 info(s)". */
    std::string summary() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace drc
} // namespace harmonia

#endif // HARMONIA_DRC_DIAGNOSTIC_H_
