/**
 * @file
 * Report renderers for the design-rule checker, following the
 * telemetry exporter style: a human-readable text form and one JSON
 * object per finding per line (jq-friendly). Pure formatting.
 */

#ifndef HARMONIA_DRC_RENDER_H_
#define HARMONIA_DRC_RENDER_H_

#include <string>

#include "drc/diagnostic.h"

namespace harmonia {
namespace drc {

/**
 * Multi-line text report: a summary header followed by one indented
 * line per finding (severity, rule, path, message, fix hint).
 */
std::string renderText(const DrcReport &report);

/**
 * One JSON object per finding per line:
 * {"rule":"CDC-001","severity":"error","path":...,"message":...,
 *  "hint":...}.
 */
std::string renderJsonLines(const DrcReport &report);

} // namespace drc
} // namespace harmonia

#endif // HARMONIA_DRC_RENDER_H_
