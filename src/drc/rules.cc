/**
 * @file
 * The concrete design rules. Each rule is grounded in a paper
 * mechanism: the parameterized CDC and uniform wrappers of §3.3.1,
 * the vendor adapter's rigid inspection of §3.2, hierarchical
 * tailoring of §3.3.2, the command-based interface of §3.3.3 and the
 * CAD-flow budget/timing model of §4. Rules only read the DrcContext;
 * nothing here touches the simulator.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "adapter/toolchain.h"
#include "common/logging.h"
#include "drc/checker.h"
#include "drc/rule.h"

namespace harmonia {
namespace drc {

namespace {

bool
sameClock(const PlannedLink &l)
{
    return std::abs(l.sourceMhz - l.sinkMhz) < 1e-9;
}

// --- CDC coverage (§3.3.1, Figure 6). ---

class CdcAsyncFifoRule : public Rule {
  public:
    const char *id() const override { return "CDC-001"; }
    const char *description() const override
    {
        return "cross-clock links must pass through an async FIFO";
    }
    const char *paperRef() const override { return "§3.3.1"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const PlannedLink &l : ctx.links()) {
            if (sameClock(l) || l.viaAsyncFifo)
                continue;
            out.add({id(), Severity::Error, l.path,
                     format("direct crossing from %.3f MHz into "
                            "%.3f MHz without an async FIFO",
                            l.sourceMhz, l.sinkMhz),
                     "route the link through a ParamCdc (Gray-coded "
                     "async FIFO)"});
        }
    }
};

class CdcSyncStagesRule : public Rule {
  public:
    const char *id() const override { return "CDC-002"; }
    const char *description() const override
    {
        return "async FIFOs need >= 2 Gray synchronizer stages";
    }
    const char *paperRef() const override { return "§3.3.1"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const PlannedLink &l : ctx.links()) {
            if (!l.viaAsyncFifo || l.syncStages >= kMinSyncStages)
                continue;
            out.add({id(), Severity::Error, l.path,
                     format("async FIFO with %u Gray sync stage(s); "
                            "metastability needs at least %u",
                            l.syncStages, kMinSyncStages),
                     format("raise sync_stages to %u",
                            kMinSyncStages)});
        }
    }
};

class CdcShortcutRule : public Rule {
  public:
    const char *id() const override { return "CDC-003"; }
    const char *description() const override
    {
        return "same-domain shortcuts silently break under retuning";
    }
    const char *paperRef() const override { return "§3.3.1"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const PlannedLink &l : ctx.links()) {
            if (!sameClock(l) || l.viaAsyncFifo)
                continue;
            out.add({id(), Severity::Warning, l.path,
                     format("direct same-domain connection at %.3f "
                            "MHz; retuning either clock turns it "
                            "into an unsynchronized crossing",
                            l.sourceMhz),
                     "keep the async FIFO even when both domains "
                     "currently share a clock"});
        }
    }
};

// --- Protocol compatibility (§3.2, uniform interface format). ---

class ProtocolWrapperRule : public Rule {
  public:
    const char *id() const override { return "PROTO-001"; }
    const char *description() const override
    {
        return "protocol changes on a link require a wrapper";
    }
    const char *paperRef() const override { return "§3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const PlannedLink &l : ctx.links()) {
            if (l.source == l.sink || l.viaWrapper)
                continue;
            out.add({id(), Severity::Error, l.path,
                     format("%s source bound directly to %s sink",
                            toString(l.source), toString(l.sink)),
                     "insert the uniform interface wrapper between "
                     "the instance and the role"});
        }
    }
};

class WidthRatioRule : public Rule {
  public:
    const char *id() const override { return "PROTO-002"; }
    const char *description() const override
    {
        return "width-conversion ratios must be integral";
    }
    const char *paperRef() const override { return "§3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const PlannedLink &l : ctx.links()) {
            if (l.sourceWidthBits == 0 || l.sinkWidthBits == 0)
                continue;
            const unsigned wide =
                std::max(l.sourceWidthBits, l.sinkWidthBits);
            const unsigned narrow =
                std::min(l.sourceWidthBits, l.sinkWidthBits);
            if (wide % narrow == 0)
                continue;
            out.add({id(), Severity::Error, l.path,
                     format("width conversion %u -> %u bits is not "
                            "an integral ratio",
                            l.sourceWidthBits, l.sinkWidthBits),
                     "pick datapath widths with an integral wide/"
                     "narrow ratio so the converter stays lossless"});
        }
    }
};

// --- Peripheral availability (§2.2, §3.3.2). ---

class NetworkCageRule : public Rule {
  public:
    const char *id() const override { return "PERI-001"; }
    const char *description() const override
    {
        return "network instances must map onto real cages at "
               "supported rates";
    }
    const char *paperRef() const override { return "§2.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const FpgaDevice &dev = ctx.device();
        const ShellConfig &cfg = ctx.config();
        std::vector<PeripheralKind> cages;
        for (const Peripheral &p : dev.peripherals)
            if (classOf(p.kind) == PeripheralClass::Network)
                for (unsigned c = 0; c < p.count; ++c)
                    cages.push_back(p.kind);

        if (cfg.networks.size() > cages.size()) {
            out.add({id(), Severity::Error, ctx.path("net"),
                     format("%zu network RBB(s) configured but "
                            "device '%s' has %zu cage(s)",
                            cfg.networks.size(), dev.name.c_str(),
                            cages.size()),
                     "drop network instances or target a board with "
                     "more cages"});
            return;
        }
        const auto rates = supportedMacRates();
        for (std::size_t i = 0; i < cfg.networks.size(); ++i) {
            const unsigned gbps = cfg.networks[i].gbps;
            if (std::find(rates.begin(), rates.end(), gbps) ==
                rates.end()) {
                out.add({id(), Severity::Error,
                         ctx.path(format("net%zu", i)),
                         format("no MAC instance model for %uG",
                                gbps),
                         "use a supported line rate (25/100/400G)"});
                continue;
            }
            if (gbps > cageGbps(cages[i]))
                out.add({id(), Severity::Error,
                         ctx.path(format("net%zu", i)),
                         format("%uG MAC exceeds the %s cage rate "
                                "(%uG)",
                                gbps, toString(cages[i]),
                                cageGbps(cages[i])),
                         "lower the instance rate to the cage rate"});
        }
    }
};

class MemoryAvailabilityRule : public Rule {
  public:
    const char *id() const override { return "PERI-002"; }
    const char *description() const override
    {
        return "memory instances need the matching on-board "
               "peripheral and channel budget";
    }
    const char *paperRef() const override { return "§2.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const FpgaDevice &dev = ctx.device();
        const ShellConfig &cfg = ctx.config();
        std::map<PeripheralKind, unsigned> placed;
        for (std::size_t i = 0; i < cfg.memories.size(); ++i) {
            const MemoryInstanceCfg &m = cfg.memories[i];
            const std::string p = ctx.path(format("mem%zu", i));
            if (classOf(m.kind) != PeripheralClass::Memory) {
                out.add({id(), Severity::Error, p,
                         format("%s is not a memory peripheral",
                                toString(m.kind)),
                         "use DDR3/DDR4/HBM in memory instances"});
                continue;
            }
            if (!dev.has(m.kind)) {
                out.add({id(), Severity::Error, p,
                         format("%s instance but device '%s' has no "
                                "%s peripheral",
                                toString(m.kind), dev.name.c_str(),
                                toString(m.kind)),
                         "select a memory kind the board carries or "
                         "migrate to a board that has it"});
                continue;
            }
            unsigned attachments = 0;
            unsigned channels = 0;
            for (const Peripheral &per : dev.peripherals) {
                if (per.kind != m.kind)
                    continue;
                attachments += per.count;
                channels += per.channels();
            }
            if (++placed[m.kind] > attachments)
                out.add({id(), Severity::Error, p,
                         format("instance %u of %s but the board "
                                "only has %u attachment(s)",
                                placed[m.kind], toString(m.kind),
                                attachments),
                         "merge instances or reduce their count"});
            if (m.channels == 0 || m.channels > channels)
                out.add({id(), Severity::Error, p,
                         format("%u channel(s) requested; %s on "
                                "'%s' exposes %u",
                                m.channels, toString(m.kind),
                                dev.name.c_str(), channels),
                         "clamp the channel count to what the "
                         "peripheral exposes"});
        }
    }
};

class HostAvailabilityRule : public Rule {
  public:
    const char *id() const override { return "PERI-003"; }
    const char *description() const override
    {
        return "the host RBB needs a PCIe endpoint and a sane queue "
               "count";
    }
    const char *paperRef() const override { return "§2.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const ShellConfig &cfg = ctx.config();
        if (!cfg.includeHost)
            return;
        if (ctx.device().byClass(PeripheralClass::Host).empty())
            out.add({id(), Severity::Error, ctx.path("host0"),
                     format("host RBB configured but device '%s' "
                            "has no PCIe endpoint",
                            ctx.device().name.c_str()),
                     "drop the host RBB or target a PCIe-attached "
                     "board"});
        if (cfg.hostQueues == 0 || cfg.hostQueues > 1024)
            out.add({id(), Severity::Error, ctx.path("host0"),
                     format("%u host queues outside the platform "
                            "contract (1..1024)",
                            cfg.hostQueues),
                     "configure between 1 and 1024 queues"});
    }
};

// --- Resource budget and headroom (§4, Figure 16). ---

class ResourceFitRule : public Rule {
  public:
    const char *id() const override { return "RES-001"; }
    const char *description() const override
    {
        return "planned logic must fit the chip budget";
    }
    const char *paperRef() const override { return "§4"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const ResourceVector total = ctx.plannedTotal();
        const ResourceVector &budget = ctx.device().chip().budget;
        if (total.fitsIn(budget))
            return;
        out.add({id(), Severity::Error, ctx.shellName(),
                 format("planned design %s exceeds %s budget %s",
                        total.toString().c_str(),
                        ctx.device().chipName.c_str(),
                        budget.toString().c_str()),
                 "shrink the role logic or tailor away unused "
                 "RBBs"});
    }
};

class TimingWallRule : public Rule {
  public:
    const char *id() const override { return "RES-002"; }
    const char *description() const override
    {
        return "utilization at the timing wall cannot close";
    }
    const char *paperRef() const override { return "§4"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const ResourceVector total = ctx.plannedTotal();
        const ResourceVector &budget = ctx.device().chip().budget;
        if (!total.fitsIn(budget))
            return;  // RES-001 already fired
        const double util = total.maxUtilization(budget);
        if (util < Toolchain::kTimingWall)
            return;
        out.add({id(), Severity::Error, ctx.shellName(),
                 format("max utilization %.1f%% is past the timing "
                        "wall (%.0f%%); closure would fail",
                        util * 100, Toolchain::kTimingWall * 100),
                 "free resources until utilization drops below the "
                 "wall"});
    }
};

class HeadroomRule : public Rule {
  public:
    const char *id() const override { return "RES-003"; }
    const char *description() const override
    {
        return "per-class utilization headroom below 75%";
    }
    const char *paperRef() const override { return "§4"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        static const char *kClasses[] = {"lut", "reg", "bram", "uram",
                                         "dsp"};
        const ResourceVector total = ctx.plannedTotal();
        const ResourceVector &budget = ctx.device().chip().budget;
        for (const char *klass : kClasses) {
            if (resourceClass(budget, klass) == 0)
                continue;
            const double util = total.utilization(klass, budget);
            if (util < kUtilizationHeadroom ||
                util >= Toolchain::kTimingWall)
                continue;
            out.add({id(), Severity::Warning, ctx.shellName(),
                     format("%s utilization %.1f%% leaves little "
                            "headroom for role growth",
                            klass, util * 100),
                     "plan a migration target or trim the role "
                     "before the class saturates"});
        }
    }
};

// --- Vendor dependency inspection (§3.2). ---

class VendorDependencyRule : public Rule {
  public:
    const char *id() const override { return "VEND-001"; }
    const char *description() const override
    {
        return "module dependencies must match the environment";
    }
    const char *paperRef() const override { return "§3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const DependencyIssue &i :
             ctx.environment().inspect(ctx.modules())) {
            if (i.kind == DependencyIssue::Kind::DeadProvide)
                continue;
            out.add({id(), Severity::Error, ctx.path(i.module),
                     i.toString(),
                     "provision the build host with the versions "
                     "the module declares"});
        }
    }
};

class DeadProvideRule : public Rule {
  public:
    const char *id() const override { return "VEND-002"; }
    const char *description() const override
    {
        return "environment provides nothing consumes (drift "
               "signal)";
    }
    const char *paperRef() const override { return "§3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const DependencyIssue &i :
             ctx.environment().inspect(ctx.modules())) {
            if (i.kind != DependencyIssue::Kind::DeadProvide)
                continue;
            out.add({id(), Severity::Info, ctx.shellName(),
                     i.toString(),
                     "prune the stale provide from the deployment "
                     "description"});
        }
    }
};

// --- Tailoring consistency (§3.3.2, Figure 7). ---

class NetworkDemandRule : public Rule {
  public:
    const char *id() const override { return "TLR-001"; }
    const char *description() const override
    {
        return "network demands must be satisfiable by the board";
    }
    const char *paperRef() const override { return "§3.3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const RoleRequirements *role = ctx.role();
        if (role == nullptr || !role->needsNetwork)
            return;
        if (role->networkPorts == 0) {
            out.add({id(), Severity::Warning, ctx.shellName(),
                     format("role '%s' declares a network need for "
                            "0 ports; the capability tailors away",
                            role->name.c_str()),
                     "either demand at least one port or clear "
                     "needsNetwork"});
            return;
        }
        unsigned usable = 0;
        for (const Peripheral &p : ctx.device().peripherals)
            if (classOf(p.kind) == PeripheralClass::Network &&
                cageGbps(p.kind) >= role->networkGbps)
                usable += p.count;
        if (usable >= role->networkPorts)
            return;
        out.add({id(), Severity::Error, ctx.shellName(),
                 format("role '%s' needs %u port(s) at %uG; device "
                        "'%s' can provide %u",
                        role->name.c_str(), role->networkPorts,
                        role->networkGbps,
                        ctx.device().name.c_str(), usable),
                 "migrate the role to a board with enough cages at "
                 "the demanded rate"});
    }
};

class HostQueueDemandRule : public Rule {
  public:
    const char *id() const override { return "TLR-002"; }
    const char *description() const override
    {
        return "role host-queue demand within 1..1024";
    }
    const char *paperRef() const override { return "§3.3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const RoleRequirements *role = ctx.role();
        if (role == nullptr || !role->needsHost)
            return;
        if (role->hostQueues >= 1 && role->hostQueues <= 1024)
            return;
        out.add({id(), Severity::Error, ctx.shellName(),
                 format("role '%s' requests %u host queues (allowed "
                        "1..1024)",
                        role->name.c_str(), role->hostQueues),
                 "partition the workload across queues within the "
                 "limit"});
    }
};

class MemoryDemandRule : public Rule {
  public:
    const char *id() const override { return "TLR-003"; }
    const char *description() const override
    {
        return "memory bandwidth demand satisfiable by the board";
    }
    const char *paperRef() const override { return "§3.3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const RoleRequirements *role = ctx.role();
        if (role == nullptr || !role->needsMemory)
            return;
        const FpgaDevice &dev = ctx.device();
        const bool has_hbm = dev.has(PeripheralKind::Hbm);
        double ddr_bw = 0;
        bool has_ddr = false;
        for (const Peripheral &p : dev.peripherals) {
            if (p.kind == PeripheralKind::Ddr4 ||
                p.kind == PeripheralKind::Ddr3) {
                has_ddr = true;
                ddr_bw += p.peakBandwidth();
            }
        }
        const double need_bps = role->memoryBandwidthGBps * 1e9;
        if (has_hbm || (has_ddr && ddr_bw >= need_bps))
            return;
        if (has_ddr)
            out.add({id(), Severity::Error, ctx.shellName(),
                     format("role '%s' needs %.1f GB/s; device '%s' "
                            "DDR peaks at %.1f GB/s",
                            role->name.c_str(),
                            role->memoryBandwidthGBps,
                            dev.name.c_str(), ddr_bw / 1e9),
                     "migrate to an HBM-bearing board"});
        else
            out.add({id(), Severity::Error, ctx.shellName(),
                     format("role '%s' needs external memory; "
                            "device '%s' has none",
                            role->name.c_str(), dev.name.c_str()),
                     "migrate to a board with DDR or HBM"});
    }
};

class DmaStyleRule : public Rule {
  public:
    const char *id() const override { return "TLR-004"; }
    const char *description() const override
    {
        return "DMA instance style should match the transfer "
               "profile";
    }
    const char *paperRef() const override { return "§3.3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const RoleRequirements *role = ctx.role();
        const ShellConfig &cfg = ctx.config();
        if (role == nullptr || !role->needsHost || !cfg.includeHost ||
            cfg.dmaStyle == role->dmaStyle)
            return;
        auto styleName = [](DmaStyle s) {
            return s == DmaStyle::Bdma ? "BDMA (bulk)"
                                       : "SGDMA (scatter/gather)";
        };
        out.add({id(), Severity::Warning, ctx.path("host0"),
                 format("config selects %s but role '%s' profiles "
                        "as %s",
                        styleName(cfg.dmaStyle), role->name.c_str(),
                        styleName(role->dmaStyle)),
                 "re-tailor so the DMA instance matches the role's "
                 "transfer profile"});
    }
};

class RoleCoverageRule : public Rule {
  public:
    const char *id() const override { return "TLR-005"; }
    const char *description() const override
    {
        return "the tailored config must cover every role demand";
    }
    const char *paperRef() const override { return "§3.3.2"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        const RoleRequirements *role = ctx.role();
        if (role == nullptr)
            return;
        const ShellConfig &cfg = ctx.config();
        if (role->needsNetwork && role->networkPorts > 0) {
            unsigned covered = 0;
            for (const NetworkInstanceCfg &n : cfg.networks)
                if (n.gbps >= role->networkGbps)
                    ++covered;
            if (covered < role->networkPorts)
                out.add({id(), Severity::Error, ctx.path("net"),
                         format("config covers %u of the %u "
                                "port(s) role '%s' demands at %uG",
                                covered, role->networkPorts,
                                role->name.c_str(),
                                role->networkGbps),
                         "add network instances at (or above) the "
                         "demanded line rate"});
        }
        if (role->needsMemory && cfg.memories.empty())
            out.add({id(), Severity::Error, ctx.path("mem"),
                     format("role '%s' needs memory but the config "
                            "tailored every memory RBB away",
                            role->name.c_str()),
                     "keep at least one memory RBB instance"});
        if (role->needsHost && !cfg.includeHost)
            out.add({id(), Severity::Error, ctx.path("host0"),
                     format("role '%s' needs host access but the "
                            "config drops the host RBB",
                            role->name.c_str()),
                     "keep the host RBB for this role"});
        if (role->needsHost && cfg.includeHost &&
            role->hostQueues >= 1 && role->hostQueues <= 1024 &&
            cfg.hostQueues < role->hostQueues)
            out.add({id(), Severity::Error, ctx.path("host0"),
                     format("config provides %u host queue(s); role "
                            "'%s' demands %u",
                            cfg.hostQueues, role->name.c_str(),
                            role->hostQueues),
                     "raise the configured queue count to the "
                     "demand"});
    }
};

// --- Command-schema checks (§3.3.3, Figure 9). ---

class CommandTargetRule : public Rule {
  public:
    const char *id() const override { return "CMD-001"; }
    const char *description() const override
    {
        return "every planned command must resolve to a registered "
               "target";
    }
    const char *paperRef() const override { return "§3.3.3"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const CommandBinding &b : ctx.commands()) {
            bool resolved = false;
            for (const PlannedTarget &t : ctx.targets()) {
                if (t.rbbId == b.rbbId &&
                    t.instanceId == b.instanceId) {
                    resolved = true;
                    break;
                }
            }
            if (resolved)
                continue;
            out.add({id(), Severity::Error, b.path,
                     format("command 0x%04x addresses rbb=%02x "
                            "inst=%02x, which no module registers",
                            b.commandCode, b.rbbId, b.instanceId),
                     "fix the (RBB ID, Instance ID) address or add "
                     "the missing module"});
        }
    }
};

class CommandPayloadRule : public Rule {
  public:
    const char *id() const override { return "CMD-002"; }
    const char *description() const override
    {
        return "command payloads must fit the 12-word slot";
    }
    const char *paperRef() const override { return "§3.3.3"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        for (const CommandBinding &b : ctx.commands()) {
            if (b.payloadWords <= kMaxCommandPayloadWords)
                continue;
            out.add({id(), Severity::Error, b.path,
                     format("command 0x%04x carries %u data words; "
                            "a 64-byte control slot fits %u",
                            b.commandCode, b.payloadWords,
                            kMaxCommandPayloadWords),
                     "split the payload across multiple commands"});
        }
    }
};

class DuplicateTargetRule : public Rule {
  public:
    const char *id() const override { return "CMD-003"; }
    const char *description() const override
    {
        return "no two modules may claim one (RBB, instance) "
               "address";
    }
    const char *paperRef() const override { return "§3.3.3"; }

    void check(const DrcContext &ctx, DrcReport &out) const override
    {
        std::set<std::pair<std::uint8_t, std::uint8_t>> seen;
        for (const PlannedTarget &t : ctx.targets()) {
            if (seen.insert({t.rbbId, t.instanceId}).second)
                continue;
            out.add({id(), Severity::Error, t.path,
                     format("rbb=%02x inst=%02x registered more "
                            "than once; routing would be ambiguous",
                            t.rbbId, t.instanceId),
                     "give each module a unique instance id"});
        }
    }
};

std::vector<std::unique_ptr<Rule>>
makeStandardRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<CdcAsyncFifoRule>());
    rules.push_back(std::make_unique<CdcSyncStagesRule>());
    rules.push_back(std::make_unique<CdcShortcutRule>());
    rules.push_back(std::make_unique<ProtocolWrapperRule>());
    rules.push_back(std::make_unique<WidthRatioRule>());
    rules.push_back(std::make_unique<NetworkCageRule>());
    rules.push_back(std::make_unique<MemoryAvailabilityRule>());
    rules.push_back(std::make_unique<HostAvailabilityRule>());
    rules.push_back(std::make_unique<ResourceFitRule>());
    rules.push_back(std::make_unique<TimingWallRule>());
    rules.push_back(std::make_unique<HeadroomRule>());
    rules.push_back(std::make_unique<VendorDependencyRule>());
    rules.push_back(std::make_unique<DeadProvideRule>());
    rules.push_back(std::make_unique<NetworkDemandRule>());
    rules.push_back(std::make_unique<HostQueueDemandRule>());
    rules.push_back(std::make_unique<MemoryDemandRule>());
    rules.push_back(std::make_unique<DmaStyleRule>());
    rules.push_back(std::make_unique<RoleCoverageRule>());
    rules.push_back(std::make_unique<CommandTargetRule>());
    rules.push_back(std::make_unique<CommandPayloadRule>());
    rules.push_back(std::make_unique<DuplicateTargetRule>());
    return rules;
}

} // namespace

const std::vector<const Rule *> &
standardRules()
{
    static const std::vector<std::unique_ptr<Rule>> owned =
        makeStandardRules();
    static const std::vector<const Rule *> views = [] {
        std::vector<const Rule *> v;
        for (const auto &r : owned)
            v.push_back(r.get());
        return v;
    }();
    return views;
}

std::vector<RuleInfo>
ruleTable()
{
    std::vector<RuleInfo> table;
    for (const Rule *r : standardRules())
        table.push_back({r->id(), r->description(), r->paperRef()});
    return table;
}

} // namespace drc
} // namespace harmonia
