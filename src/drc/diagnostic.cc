#include "drc/diagnostic.h"

#include "common/logging.h"

namespace harmonia {
namespace drc {

const char *
toString(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "INFO";
      case Severity::Warning:
        return "WARNING";
      case Severity::Error:
        return "ERROR";
    }
    return "UNKNOWN";
}

std::string
Diagnostic::toString() const
{
    std::string out = format("[%s] %s %s: %s", drc::toString(severity),
                             ruleId.c_str(), path.c_str(),
                             message.c_str());
    if (!hint.empty())
        out += format(" (fix: %s)", hint.c_str());
    return out;
}

void
DrcReport::add(Diagnostic d)
{
    diags_.push_back(std::move(d));
}

std::size_t
DrcReport::count(Severity s) const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diags_)
        if (d.severity == s)
            ++n;
    return n;
}

bool
DrcReport::hasRule(const std::string &rule_id) const
{
    for (const Diagnostic &d : diags_)
        if (d.ruleId == rule_id)
            return true;
    return false;
}

std::vector<Diagnostic>
DrcReport::byRule(const std::string &rule_id) const
{
    std::vector<Diagnostic> out;
    for (const Diagnostic &d : diags_)
        if (d.ruleId == rule_id)
            out.push_back(d);
    return out;
}

const Diagnostic &
DrcReport::firstError() const
{
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::Error)
            return d;
    fatal("firstError() on a clean DRC report");
}

std::string
DrcReport::summary() const
{
    return format("%zu error(s), %zu warning(s), %zu info(s)",
                  count(Severity::Error), count(Severity::Warning),
                  count(Severity::Info));
}

} // namespace drc
} // namespace harmonia
