/**
 * @file
 * The design-rule checker's input model and rule interface. A DrcInput
 * names the platform tuple to lint — device, shell configuration,
 * optional role demands, deployment environment — and the DrcContext
 * derives the same composition plan Shell would build (IP instances,
 * clock-domain links, command bindings) without touching the
 * simulator. Rules read the context and append Diagnostics.
 */

#ifndef HARMONIA_DRC_RULE_H_
#define HARMONIA_DRC_RULE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adapter/vendor_adapter.h"
#include "common/types.h"
#include "device/database.h"
#include "device/resource.h"
#include "drc/diagnostic.h"
#include "ip/ip_block.h"
#include "shell/tailoring.h"

namespace harmonia {
namespace drc {

/** Gray synchronizer stages an async FIFO needs for safe crossings. */
constexpr unsigned kMinSyncStages = 2;

/**
 * Command data words that fit one 64-byte control-queue slot: 16
 * words minus the 3-word header and the 1-word trailer.
 */
constexpr unsigned kMaxCommandPayloadWords = 12;

/** Role-side datapath width of the uniform stream/mem format. */
constexpr unsigned kUniformDataWidthBits = 512;

/** Per-class utilization above which headroom warnings fire. */
constexpr double kUtilizationHeadroom = 0.75;

/**
 * One planned connection between clock domains / protocols: an RBB
 * instance into the role datapath, or the control kernel into the
 * user domain. This is what the shell would instantiate a wrapper and
 * a ParamCdc for.
 */
struct PlannedLink {
    std::string path;                ///< e.g. "shell/net0"
    Protocol source = Protocol::Uniform;
    Protocol sink = Protocol::Uniform;
    bool viaWrapper = true;          ///< interface wrapper in between
    double sourceMhz = 0;
    double sinkMhz = 0;
    unsigned sourceWidthBits = 0;
    unsigned sinkWidthBits = 0;
    bool viaAsyncFifo = true;        ///< ParamCdc between the domains
    unsigned syncStages = kMinSyncStages;
};

/** One (RBB, instance) address the control kernel would register. */
struct PlannedTarget {
    std::string path;
    std::uint8_t rbbId = 0;
    std::uint8_t instanceId = 0;
};

/** One command the host driver plans to issue at a target. */
struct CommandBinding {
    std::string path;
    std::uint8_t rbbId = 0;
    std::uint8_t instanceId = 0;
    std::uint16_t commandCode = 0;
    unsigned payloadWords = 0;  ///< data words (trailer excluded)
};

/**
 * What one checker run looks at. Only device and config are
 * mandatory; the optional members refine or override what the context
 * derives — tests use the overrides to lint deliberately broken
 * compositions that Shell itself would refuse to construct.
 */
struct DrcInput {
    const FpgaDevice *device = nullptr;
    ShellConfig config;
    const RoleRequirements *role = nullptr;  ///< tailoring checks
    std::string shellName = "shell";

    /** Deployment environment; standardFor(device) when unset. */
    std::optional<VendorAdapter> environment;

    /** Role logic footprint when no full role is supplied. */
    ResourceVector roleLogic;

    /** Overrides for the derived plan (unset = derive from config). */
    std::optional<std::vector<PlannedLink>> links;
    std::optional<std::vector<PlannedTarget>> targets;
    std::optional<std::vector<CommandBinding>> commands;
};

/**
 * The derived composition plan rules check against. Construction
 * never throws: configuration elements the shell could not build
 * (unsupported line rates, absent peripherals) are simply left out of
 * the derived module list — the matching rules diagnose them from the
 * raw config instead.
 */
class DrcContext {
  public:
    explicit DrcContext(const DrcInput &input);

    DrcContext(const DrcContext &) = delete;
    DrcContext &operator=(const DrcContext &) = delete;

    const FpgaDevice &device() const { return *input_.device; }
    const ShellConfig &config() const { return input_.config; }
    const RoleRequirements *role() const { return input_.role; }
    const std::string &shellName() const { return input_.shellName; }
    const VendorAdapter &environment() const { return env_; }

    /** Vendor IP instances the config would place (engine-free). */
    const std::vector<const IpBlock *> &modules() const
    {
        return moduleViews_;
    }

    const std::vector<PlannedLink> &links() const { return links_; }
    const std::vector<PlannedTarget> &targets() const
    {
        return targets_;
    }
    const std::vector<CommandBinding> &commands() const
    {
        return commands_;
    }

    /** Kernel + RBB soft logic, mirroring Shell::compileJob. */
    ResourceVector plannedShellLogic() const;

    /** Shell logic + IP instances + role logic — the fit total. */
    ResourceVector plannedTotal() const;

    /** The role logic applied in plannedTotal(). */
    const ResourceVector &roleLogic() const { return roleLogic_; }

    /** "<shellName>/<leaf>". */
    std::string path(const std::string &leaf) const;

  private:
    void deriveModulesAndLinks();
    void deriveCommandPlane();

    const DrcInput &input_;
    VendorAdapter env_;
    ResourceVector roleLogic_;
    std::vector<std::unique_ptr<IpBlock>> ownedModules_;
    std::vector<const IpBlock *> moduleViews_;
    std::vector<PlannedLink> links_;
    std::vector<PlannedTarget> targets_;
    std::vector<CommandBinding> commands_;
    std::size_t hostModules_ = 0;
};

/** One design rule. Implementations are stateless and reusable. */
class Rule {
  public:
    virtual ~Rule() = default;

    /** Stable identifier, e.g. "CDC-001". */
    virtual const char *id() const = 0;

    /** One-line description for the rule table. */
    virtual const char *description() const = 0;

    /** Paper section the rule is grounded in, e.g. "§3.3.1". */
    virtual const char *paperRef() const = 0;

    /** Evaluate against @p ctx, appending findings to @p out. */
    virtual void check(const DrcContext &ctx, DrcReport &out) const = 0;
};

} // namespace drc
} // namespace harmonia

#endif // HARMONIA_DRC_RULE_H_
