#include "drc/render.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"
#include "telemetry/exporter.h"

namespace harmonia {
namespace drc {

std::string
renderText(const DrcReport &report)
{
    std::string out =
        format("platform DRC: %s\n", report.summary().c_str());
    for (const Diagnostic &d : report.diagnostics()) {
        out += format("  [%-7s] %s %s: %s\n", toString(d.severity),
                      d.ruleId.c_str(), d.path.c_str(),
                      d.message.c_str());
        if (!d.hint.empty())
            out += format("            fix: %s\n", d.hint.c_str());
    }
    return out;
}

std::string
renderJsonLines(const DrcReport &report)
{
    std::string out;
    for (const Diagnostic &d : report.diagnostics()) {
        std::string sev = toString(d.severity);
        std::transform(sev.begin(), sev.end(), sev.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        out += format("{\"rule\":\"%s\",\"severity\":\"%s\","
                      "\"path\":\"%s\",\"message\":\"%s\","
                      "\"hint\":\"%s\"}\n",
                      jsonEscape(d.ruleId).c_str(), sev.c_str(),
                      jsonEscape(d.path).c_str(),
                      jsonEscape(d.message).c_str(),
                      jsonEscape(d.hint).c_str());
    }
    return out;
}

} // namespace drc
} // namespace harmonia
