#include "drc/render.h"

#include <algorithm>
#include <cctype>

#include "common/json.h"
#include "common/logging.h"

namespace harmonia {
namespace drc {

std::string
renderText(const DrcReport &report)
{
    std::string out =
        format("platform DRC: %s\n", report.summary().c_str());
    for (const Diagnostic &d : report.diagnostics()) {
        out += format("  [%-7s] %s %s: %s\n", toString(d.severity),
                      d.ruleId.c_str(), d.path.c_str(),
                      d.message.c_str());
        if (!d.hint.empty())
            out += format("            fix: %s\n", d.hint.c_str());
    }
    return out;
}

std::string
renderJsonLines(const DrcReport &report)
{
    std::string out;
    for (const Diagnostic &d : report.diagnostics()) {
        std::string sev = toString(d.severity);
        std::transform(sev.begin(), sev.end(), sev.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(
                               std::tolower(c));
                       });
        JsonValue line = JsonValue::object();
        line.set("rule", d.ruleId);
        line.set("severity", sev);
        line.set("path", d.path);
        line.set("message", d.message);
        line.set("hint", d.hint);
        out += line.dump();
        out += '\n';
    }
    return out;
}

} // namespace drc
} // namespace harmonia
