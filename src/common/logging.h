/**
 * @file
 * Status and error reporting in the gem5 style: inform()/warn() for
 * status, fatal() for user errors, panic() for internal bugs.
 */

#ifndef HARMONIA_COMMON_LOGGING_H_
#define HARMONIA_COMMON_LOGGING_H_

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace harmonia {

/** Verbosity levels, lowest first. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Set the global log threshold. Messages below the threshold are
 * suppressed. Defaults to Warn so tests and benches stay quiet.
 */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Raised by fatal(): the caller (user) supplied an invalid request. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Raised by panic(): Harmonia itself reached an impossible state. */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Debug-level status message. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative message the user should see but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something may be mis-modelled; results could be affected. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * The request cannot be honoured because of a caller error (bad
 * configuration, invalid arguments). Throws FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Harmonia reached a state that should be impossible regardless of
 * input — an internal bug. Throws PanicError.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace harmonia

#endif // HARMONIA_COMMON_LOGGING_H_
