/**
 * @file
 * Internet-style 16-bit one's-complement checksum. The command packets
 * of the command-based interface (§3.3.3) carry this in their trailer
 * for error handling.
 */

#ifndef HARMONIA_COMMON_CHECKSUM_H_
#define HARMONIA_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harmonia {

/**
 * Compute the 16-bit one's-complement checksum over @p data. A trailing
 * odd byte is padded with zero, as in RFC 1071.
 */
std::uint16_t checksum16(const std::uint8_t *data, std::size_t len);

/** Convenience overload for byte vectors. */
std::uint16_t checksum16(const std::vector<std::uint8_t> &data);

/**
 * Verify a buffer whose checksum field has been zeroed out-of-band:
 * returns true when checksum16(data) == expected.
 */
bool checksumOk(const std::vector<std::uint8_t> &data,
                std::uint16_t expected);

} // namespace harmonia

#endif // HARMONIA_COMMON_CHECKSUM_H_
