#include "common/stats.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

void
RateMeter::record(Tick now, std::uint64_t n)
{
    if (!started_) {
        first_ = now;
        started_ = true;
    }
    last_ = now;
    total_ += n;
}

double
RateMeter::ratePerSecond() const
{
    if (!started_ || last_ <= first_)
        return 0.0;
    const double seconds =
        static_cast<double>(last_ - first_) / kTicksPerSecond;
    return static_cast<double>(total_) / seconds;
}

void
RateMeter::reset()
{
    total_ = 0;
    first_ = last_ = 0;
    started_ = false;
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width == 0 || num_buckets == 0)
        fatal("Histogram requires non-zero bucket width and count");
}

void
Histogram::sample(std::uint64_t value)
{
    const std::size_t idx = value / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    sum_ += value;
    ++count_;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
}

double
Histogram::percentile(double pct) const
{
    if (count_ == 0)
        return 0.0;
    if (pct < 0.0 || pct > 100.0)
        fatal("percentile %f out of [0,100]", pct);
    const std::uint64_t target =
        static_cast<std::uint64_t>(pct / 100.0 * count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (i + 0.5) * bucketWidth_;
    }
    return static_cast<double>(max_);
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter.value());
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_)
        counter.reset();
}

} // namespace harmonia
