#include "common/stats.h"

#include <algorithm>

#include "common/logging.h"

namespace harmonia {

void
RateMeter::record(Tick now, std::uint64_t n)
{
    if (!started_) {
        first_ = now;
        started_ = true;
    }
    last_ = now;
    total_ += n;
}

double
RateMeter::ratePerSecond() const
{
    if (!started_ || last_ <= first_)
        return 0.0;
    const double seconds =
        static_cast<double>(last_ - first_) / kTicksPerSecond;
    return static_cast<double>(total_) / seconds;
}

void
RateMeter::reset()
{
    total_ = 0;
    first_ = last_ = 0;
    started_ = false;
}

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    if (bucket_width == 0 || num_buckets == 0)
        fatal("Histogram requires non-zero bucket width and count");
}

void
Histogram::sample(std::uint64_t value)
{
    const std::size_t idx = value / bucketWidth_;
    if (idx < buckets_.size())
        ++buckets_[idx];
    else
        ++overflow_;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    sum_ += value;
    ++count_;
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / count_ : 0.0;
}

double
Histogram::percentile(double pct) const
{
    if (count_ == 0)
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    // Rank of the sample we are after, 1-based. pct == 0 degenerates
    // to rank 1 — the first occupied bucket — never an empty guess.
    std::uint64_t target = static_cast<std::uint64_t>(
        pct / 100.0 * static_cast<double>(count_));
    if (target == 0)
        target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return (static_cast<double>(i) + 0.5) *
                   static_cast<double>(bucketWidth_);
    }
    return static_cast<double>(max_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.emplace_back(name, counter.value());
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[name, counter] : counters_)
        counter.reset();
}

} // namespace harmonia
