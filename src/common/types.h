/**
 * @file
 * Fundamental scalar types and enums shared by every Harmonia subsystem.
 */

#ifndef HARMONIA_COMMON_TYPES_H_
#define HARMONIA_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace harmonia {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles within one clock domain. */
using Cycles = std::uint64_t;

/** Byte address in a memory-mapped space. */
using Addr = std::uint64_t;

/** One tick per picosecond. */
constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** "Never": the far-future sentinel for wake times and deadlines. */
constexpr Tick kTickMax = ~static_cast<Tick>(0);

/** Convert a frequency in MHz to a clock period in ticks (ps). */
constexpr Tick
periodFromMhz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz);
}

/** FPGA silicon vendor. The paper's clouds mix all three. */
enum class Vendor {
    Xilinx,    ///< AMD/Xilinx devices (AXI interface family)
    Intel,     ///< Intel/Altera devices (Avalon interface family)
    InHouse,   ///< Custom in-house devices (paper §2.2(ii))
};

/** Printable vendor name. */
const char *toString(Vendor v);

/** Interface protocol families spoken by vendor IPs. */
enum class Protocol {
    Axi4Stream,
    Axi4MemoryMapped,
    Axi4Lite,
    AvalonStream,
    AvalonMemoryMapped,
    Uniform,   ///< Harmonia's unified wrapper format (§3.2)
};

/** Printable protocol name. */
const char *toString(Protocol p);

} // namespace harmonia

#endif // HARMONIA_COMMON_TYPES_H_
