/**
 * @file
 * Minimal JSON document model: parse, inspect, build, serialize. Used
 * by the bench aggregator (BENCH_*.json records), the exporter round-
 * trip tests, and anything else that must consume its own machine-
 * readable output without an external dependency. Numbers are doubles
 * (exact for integers up to 2^53 — every tick count we emit); object
 * keys keep insertion order so serialization is deterministic.
 */

#ifndef HARMONIA_COMMON_JSON_H_
#define HARMONIA_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace harmonia {

class JsonValue {
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(double n) : type_(Type::Number), num_(n) {}
    JsonValue(std::uint64_t n)
        : type_(Type::Number), num_(static_cast<double>(n))
    {
    }
    JsonValue(int n) : type_(Type::Number), num_(n) {}
    JsonValue(std::string s) : type_(Type::String), str_(std::move(s))
    {
    }
    JsonValue(const char *s) : type_(Type::String), str_(s) {}

    static JsonValue array() { return JsonValue(Type::Array); }
    static JsonValue object() { return JsonValue(Type::Object); }

    /**
     * Parse one JSON document. Returns a Null value and fills
     * @p error (when given) on malformed input; a parsed `null`
     * yields ok() == true, so check error for the distinction.
     */
    static JsonValue parse(const std::string &text,
                           std::string *error = nullptr);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asDouble() const { return num_; }
    std::uint64_t
    asU64() const
    {
        return num_ <= 0 ? 0 : static_cast<std::uint64_t>(num_ + 0.5);
    }
    const std::string &asString() const { return str_; }

    /** Array / object element count. */
    std::size_t size() const;

    /** Array element; Null value on out-of-range or non-array. */
    const JsonValue &at(std::size_t i) const;

    /** Object member; Null value when absent or non-object. */
    const JsonValue &get(const std::string &key) const;
    bool has(const std::string &key) const;

    /** Object keys in insertion order. */
    std::vector<std::string> keys() const;

    /** Append to an array (converts a Null value into an array). */
    void push(JsonValue v);

    /** Set an object member (converts Null; replaces an existing key). */
    void set(const std::string &key, JsonValue v);

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits the compact single-line form.
     */
    std::string dump(int indent = 0) const;

  private:
    explicit JsonValue(Type t) : type_(t) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

} // namespace harmonia

#endif // HARMONIA_COMMON_JSON_H_
