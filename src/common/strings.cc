#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "common/logging.h"
#include "common/types.h"

namespace harmonia {

const char *
toString(Vendor v)
{
    switch (v) {
      case Vendor::Xilinx:
        return "Xilinx";
      case Vendor::Intel:
        return "Intel";
      case Vendor::InHouse:
        return "InHouse";
    }
    return "?";
}

const char *
toString(Protocol p)
{
    switch (p) {
      case Protocol::Axi4Stream:
        return "AXI4-Stream";
      case Protocol::Axi4MemoryMapped:
        return "AXI4-MM";
      case Protocol::Axi4Lite:
        return "AXI4-Lite";
      case Protocol::AvalonStream:
        return "Avalon-ST";
      case Protocol::AvalonMemoryMapped:
        return "Avalon-MM";
      case Protocol::Uniform:
        return "Uniform";
    }
    return "?";
}

namespace {
std::string
scaled(double value, const char *const *units, int count, double step)
{
    int u = 0;
    while (value >= step && u + 1 < count) {
        value /= step;
        ++u;
    }
    return format("%.2f %s", value, units[u]);
}
} // namespace

std::string
humanRate(double bytes_per_second)
{
    static const char *units[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
    return scaled(bytes_per_second, units, 5, 1000.0);
}

std::string
humanBitRate(double bits_per_second)
{
    static const char *units[] = {"bps", "Kbps", "Mbps", "Gbps", "Tbps"};
    return scaled(bits_per_second, units, 5, 1000.0);
}

std::string
humanBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    return scaled(static_cast<double>(bytes), units, 5, 1024.0);
}

std::string
humanTime(std::uint64_t picoseconds)
{
    static const char *units[] = {"ps", "ns", "us", "ms", "s"};
    return scaled(static_cast<double>(picoseconds), units, 5, 1000.0);
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("table row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        std::string out;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out += cells[c];
            out.append(widths[c] - cells[c].size() + 2, ' ');
        }
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out.push_back('\n');
        return out;
    };

    std::string out = line(headers_);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        rule.append(c + 1 < widths.size() ? 2 : 0, ' ');
    }
    out += rule + "\n";
    for (const auto &row : rows_)
        out += line(row);
    return out;
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace harmonia
