/**
 * @file
 * The datapath currency of the timing simulation: a packet descriptor.
 * Performance models move descriptors (size + metadata) rather than
 * payload bytes; functional correctness of byte-level translation is
 * covered separately by the protocol layer.
 */

#ifndef HARMONIA_COMMON_PACKET_H_
#define HARMONIA_COMMON_PACKET_H_

#include <cstdint>

#include "common/types.h"

namespace harmonia {

/** A simulated packet (or DMA buffer) descriptor. */
struct PacketDesc {
    std::uint64_t id = 0;       ///< unique per generator
    std::uint32_t bytes = 0;    ///< payload bytes on the wire (no FCS)
    Tick injected = 0;          ///< creation time, for latency stats
    std::uint64_t flowHash = 0; ///< 5-tuple hash (flow director key)
    std::uint64_t dstMac = 0;   ///< destination MAC (packet filter key)
    std::uint16_t queue = 0;    ///< host DMA queue
    bool multicast = false;     ///< destination is not the local port
    std::uint8_t flags = 0;     ///< kFlagSyn / kFlagFin markers
    bool fcsError = false;      ///< corrupted on the wire (bad FCS)
};

/** Packet flag bits (transport markers the roles care about). */
constexpr std::uint8_t kFlagSyn = 0x1;
constexpr std::uint8_t kFlagFin = 0x2;

/** Ethernet per-packet wire overhead: preamble+SFD (8) + IFG (12). */
constexpr std::uint32_t kEthOverheadBytes = 20;

/** Ethernet FCS bytes appended by the MAC. */
constexpr std::uint32_t kEthFcsBytes = 4;

/** Time to serialize @p payload_bytes on a @p bits_per_second line. */
constexpr Tick
wireTime(std::uint32_t payload_bytes, double bits_per_second)
{
    const double bits =
        (payload_bytes + kEthOverheadBytes + kEthFcsBytes) * 8.0;
    return static_cast<Tick>(bits / bits_per_second * kTicksPerSecond);
}

} // namespace harmonia

#endif // HARMONIA_COMMON_PACKET_H_
