#include "common/checksum.h"

namespace harmonia {

std::uint16_t
checksum16(const std::uint8_t *data, std::size_t len)
{
    std::uint32_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t
checksum16(const std::vector<std::uint8_t> &data)
{
    return checksum16(data.data(), data.size());
}

bool
checksumOk(const std::vector<std::uint8_t> &data, std::uint16_t expected)
{
    return checksum16(data) == expected;
}

} // namespace harmonia
