/**
 * @file
 * Bit-manipulation helpers used by the RTL-level models: masks, Gray
 * codes for async-FIFO pointers, and integer ceiling division.
 */

#ifndef HARMONIA_COMMON_BITS_H_
#define HARMONIA_COMMON_BITS_H_

#include <cstdint>

namespace harmonia {

/** Mask with the low @p n bits set (n <= 64). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** True when @p v is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Floor of log2(v); v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOf2(v) ? 0 : 1);
}

/**
 * Binary-to-Gray conversion. Async FIFOs cross pointers between clock
 * domains in Gray code so at most one bit changes per increment
 * (Cummings, SNUG'02 — cited by the paper for its param CDC).
 */
constexpr std::uint64_t
binaryToGray(std::uint64_t b)
{
    return b ^ (b >> 1);
}

/** Gray-to-binary conversion (inverse of binaryToGray). */
constexpr std::uint64_t
grayToBinary(std::uint64_t g)
{
    std::uint64_t b = g;
    for (unsigned shift = 1; shift < 64; shift <<= 1)
        b ^= b >> shift;
    return b;
}

/** Extract bits [hi:lo] of @p v (inclusive, hi >= lo). */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & mask(hi - lo + 1);
}

/** Insert @p field into bits [hi:lo] of @p v and return the result. */
constexpr std::uint64_t
insertBits(std::uint64_t v, unsigned hi, unsigned lo, std::uint64_t field)
{
    const std::uint64_t m = mask(hi - lo + 1) << lo;
    return (v & ~m) | ((field << lo) & m);
}

} // namespace harmonia

#endif // HARMONIA_COMMON_BITS_H_
