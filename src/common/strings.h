/**
 * @file
 * String helpers: human-readable units and a small fixed-width table
 * printer used by the benchmark harnesses to render the paper's rows.
 */

#ifndef HARMONIA_COMMON_STRINGS_H_
#define HARMONIA_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace harmonia {

/** "1.50 GB/s", "640.00 MB/s", ... */
std::string humanRate(double bytes_per_second);

/** "1.5 Gbps", "640 Mbps", ... */
std::string humanBitRate(double bits_per_second);

/** "128 B", "4.0 KiB", "2.0 MiB", ... */
std::string humanBytes(std::uint64_t bytes);

/** "350 ns", "1.2 us", "3.4 ms", ... from picoseconds. */
std::string humanTime(std::uint64_t picoseconds);

/** Split on a delimiter, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Lower-case ASCII copy. */
std::string toLower(std::string s);

/**
 * Minimal fixed-width table printer. Benches use it to emit the same
 * rows/series the paper's figures report.
 */
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column alignment to a single string. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace harmonia

#endif // HARMONIA_COMMON_STRINGS_H_
