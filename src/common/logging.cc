#include "common/logging.h"

#include <cstdio>

namespace harmonia {

namespace {
LogLevel g_level = LogLevel::Warn;

void
emit(LogLevel level, const char *tag, const char *fmt, va_list ap)
{
    if (level < g_level)
        return;
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
debug(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Debug, "debug", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Info, "info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, "warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throw PanicError(msg);
}

} // namespace harmonia
