/**
 * @file
 * Statistics primitives used by RBB monitoring logic (§3.3.1): scalar
 * counters, rate meters (bps/pps over simulated time) and histograms.
 * A StatGroup collects the statistics of one hardware module so the
 * monitoring Ex-function and the host can enumerate them.
 */

#ifndef HARMONIA_COMMON_STATS_H_
#define HARMONIA_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace harmonia {

/** A monotonically increasing scalar statistic. */
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Events-per-second meter over simulated time. Network RBB monitoring
 * reports real-time throughput (bps) and packet rate (pps) with this.
 */
class RateMeter {
  public:
    /** Record @p n events at simulated time @p now. */
    void record(Tick now, std::uint64_t n = 1);

    /** Total events recorded. */
    std::uint64_t total() const { return total_; }

    /** Average events/second between first and last record. */
    double ratePerSecond() const;

    void reset();

  private:
    std::uint64_t total_ = 0;
    Tick first_ = 0;
    Tick last_ = 0;
    bool started_ = false;
};

/** Fixed-bucket histogram, e.g. for latency distributions. */
class Histogram {
  public:
    /**
     * @param bucket_width Width of each bucket in sample units.
     * @param num_buckets  Bucket count; samples beyond the last bucket
     *                     land in an overflow bucket.
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void sample(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    double mean() const;
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    /**
     * Approximate percentile using bucket midpoints. Contract: @p pct
     * is clamped into [0, 100] (no error for out-of-range input); an
     * empty histogram returns exactly 0.0; pct == 0 returns the first
     * occupied bucket's midpoint; samples past the last bucket resolve
     * to max().
     */
    double percentile(double pct) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Samples that landed beyond the last bucket. */
    std::uint64_t overflow() const { return overflow_; }

    void reset();

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of counters belonging to one module. The host
 * retrieves these via the Module Status Read command.
 */
class StatGroup {
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Get-or-create a counter by name. */
    Counter &counter(const std::string &name);

    /** Lookup; returns 0 for unknown counters. */
    std::uint64_t value(const std::string &name) const;

    const std::string &name() const { return name_; }

    /** Snapshot of all counters, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

    void resetAll();

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace harmonia

#endif // HARMONIA_COMMON_STATS_H_
