#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace harmonia {

namespace {

/** Recursive-descent parser over a bounds-checked cursor. */
class Parser {
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    JsonValue
    run()
    {
        JsonValue v = value();
        skipWs();
        if (!failed_ && pos_ != text_.size())
            fail("trailing characters after document");
        return failed_ ? JsonValue() : v;
    }

    bool failed() const { return failed_; }

  private:
    void
    fail(const std::string &why)
    {
        if (failed_)
            return;
        failed_ = true;
        if (error_ != nullptr)
            *error_ = format("json: %s at offset %zu", why.c_str(),
                             pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return {};
        }
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return JsonValue(string());
        if (literal("true"))
            return JsonValue(true);
        if (literal("false"))
            return JsonValue(false);
        if (literal("null"))
            return {};
        if (c == '-' || (c >= '0' && c <= '9'))
            return number();
        fail("unexpected character");
        return {};
    }

    JsonValue
    object()
    {
        JsonValue out = JsonValue::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        while (!failed_) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                break;
            }
            const std::string key = string();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after key");
                break;
            }
            out.set(key, value());
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            fail("expected ',' or '}'");
        }
        return out;
    }

    JsonValue
    array()
    {
        JsonValue out = JsonValue::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        while (!failed_) {
            out.push(value());
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            fail("expected ',' or ']'");
        }
        return out;
    }

    std::string
    string()
    {
        std::string out;
        consume('"');
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape digit");
                        return out;
                    }
                }
                // UTF-8 encode the BMP codepoint (we never emit
                // surrogate pairs; decode them as-is if seen).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 |
                                             ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string tok = text_.substr(start, pos_ - start);
        // JSON forbids leading zeros ("01"), which strtod accepts.
        const std::size_t digits = tok[0] == '-' ? 1 : 0;
        if (tok.size() > digits + 1 && tok[digits] == '0' &&
            std::isdigit(static_cast<unsigned char>(tok[digits + 1]))) {
            fail("leading zero in number");
            return {};
        }
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0') {
            fail("malformed number");
            return {};
        }
        return JsonValue(v);
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

const JsonValue &
nullValue()
{
    static const JsonValue v;
    return v;
}

void
escapeTo(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += format("\\u%04x", c);
            continue;
        }
        out += c;
    }
}

void
numberTo(std::string &out, double v)
{
    // Integers (the common case: ticks, counts) print exactly.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -9.0e15 && v < 9.0e15) {
        out += format("%lld", static_cast<long long>(v));
        return;
    }
    out += format("%.17g", v);
}

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    if (error != nullptr)
        error->clear();
    Parser p(text, error);
    return p.run();
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        return nullValue();
    return arr_[i];
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    if (type_ == Type::Object)
        for (const auto &[k, v] : obj_)
            if (k == key)
                return v;
    return nullValue();
}

bool
JsonValue::has(const std::string &key) const
{
    for (const auto &[k, v] : obj_)
        if (k == key)
            return true;
    return false;
}

std::vector<std::string>
JsonValue::keys() const
{
    std::vector<std::string> out;
    out.reserve(obj_.size());
    for (const auto &[k, v] : obj_)
        out.push_back(k);
    return out;
}

void
JsonValue::push(JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        fatal("JsonValue::push on a non-array");
    arr_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        fatal("JsonValue::set on a non-object");
    for (auto &[k, existing] : obj_)
        if (k == key) {
            existing = std::move(v);
            return;
        }
    obj_.emplace_back(key, std::move(v));
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string close(
        static_cast<std::size_t>(indent) *
            static_cast<std::size_t>(depth),
        ' ');
    const char *nl = indent > 0 ? "\n" : "";

    switch (type_) {
      case Type::Null:
        out += "null";
        return;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Type::Number:
        numberTo(out, num_);
        return;
      case Type::String:
        out += '"';
        escapeTo(out, str_);
        out += '"';
        return;
      case Type::Array: {
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += ']';
        return;
      }
      case Type::Object: {
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            out += '"';
            escapeTo(out, obj_[i].first);
            out += "\":";
            if (indent > 0)
                out += ' ';
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += '}';
        return;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

} // namespace harmonia
