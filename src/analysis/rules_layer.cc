/**
 * @file
 * LAYER rules: the declared layer manifest and the include graph.
 *
 * - LAYER-001 (Error): the file-level include graph must be acyclic.
 * - LAYER-002 (Error): an include must never point to a layer ranked
 *   above the including file's layer. The handful of historical
 *   back-edges in the tree carry inline allow() annotations, so any
 *   *new* upward edge fails the lint.
 * - LAYER-003 (Warning): includes into a directory the manifest does
 *   not rank (usually a new subsystem that must be added here).
 */

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/analyzer.h"
#include "common/logging.h"

namespace harmonia {
namespace analysis {

namespace {

/**
 * The layer manifest, lowest first. A file in src/<dir>/ may include
 * headers of its own layer or of any layer listed before it. This is
 * the architecture contract; changing it is a design decision, not a
 * lint tweak.
 */
const std::vector<std::string> &
layerOrder()
{
    static const std::vector<std::string> kOrder = {
        "common",    // leaf utilities, depends on nothing
        "sim",       // clocks, components, engine, trace
        "rtl",       // FIFOs, arbiters, CRC primitives
        "protocol",  // AXI/Avalon models
        "device",    // chips, resources, device DB
        "telemetry", // metrics, sampler, exporters, profiler
        "cmd",       // command packets + unified control kernel
        "ip",        // vendor IP models
        "fault",     // fault plan + recovery
        "wrapper",   // protocol wrappers
        "shell",     // RBBs, CDC, the unified shell
        "adapter",   // vendor adapters + toolchain
        "drc",       // design-rule checker
        "roles",     // application roles
        "workload",  // workload generators
        "obs",       // time-series store, SLO engine, flight recorder
        "host",      // host-side drivers and DMA
        "ha",        // watchdog + failover orchestration over drivers
        "fleet",     // rack-scale scheduler over the HA + obs planes
        "frameworks",// comparison frameworks
        "analysis",  // this subsystem: nothing may depend on it
    };
    return kOrder;
}

int
layerRank(const std::string &dir)
{
    const auto &order = layerOrder();
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i] == dir)
            return static_cast<int>(i);
    return -1;
}

/** Directory of an include target like "common/json.h". */
std::string
includeDir(const std::string &target)
{
    const std::size_t slash = target.find('/');
    return slash == std::string::npos ? "" : target.substr(0, slash);
}

// --- Cycle detection over the file-level include graph. -------------

struct Graph {
    const Corpus *corpus = nullptr;
    // adjacency: file index -> (include line, target file index)
    std::vector<std::vector<std::pair<int, std::size_t>>> edges;
};

Graph
buildGraph(const Corpus &corpus)
{
    Graph g;
    g.corpus = &corpus;
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < corpus.files().size(); ++i)
        index[corpus.files()[i].path] = i;
    g.edges.resize(corpus.files().size());
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
        for (const IncludeDirective &inc :
             corpus.files()[i].includes) {
            auto it = index.find("src/" + inc.target);
            if (it != index.end())
                g.edges[i].push_back({inc.line, it->second});
        }
    }
    return g;
}

/** DFS colors. */
enum class Mark { White, Grey, Black };

bool
findCycle(const Graph &g, std::size_t at, std::vector<Mark> &marks,
          std::vector<std::size_t> &stack,
          std::vector<std::size_t> *cycle, int *report_line)
{
    marks[at] = Mark::Grey;
    stack.push_back(at);
    for (const auto &e : g.edges[at]) {
        if (marks[e.second] == Mark::Grey) {
            // Found: slice the stack from the first occurrence.
            auto begin = std::find(stack.begin(), stack.end(),
                                   e.second);
            cycle->assign(begin, stack.end());
            *report_line = e.first;
            return true;
        }
        if (marks[e.second] == Mark::White &&
            findCycle(g, e.second, marks, stack, cycle, report_line))
            return true;
    }
    stack.pop_back();
    marks[at] = Mark::Black;
    return false;
}

} // namespace

void
checkLayerRules(const Corpus &corpus, Reporter &out)
{
    // LAYER-002 / LAYER-003: manifest-ranked includes.
    for (const SourceFile &f : corpus.files()) {
        const std::string from_dir = f.layerDir();
        const int from_rank = layerRank(from_dir);
        if (from_rank < 0) {
            out.emit(f, 1, "LAYER-003", drc::Severity::Warning,
                     format("directory 'src/%s' is not in the layer "
                            "manifest",
                            from_dir.c_str()),
                     "rank the new subsystem in "
                     "src/analysis/rules_layer.cc");
            continue;
        }
        for (const IncludeDirective &inc : f.includes) {
            const std::string to_dir = includeDir(inc.target);
            if (to_dir.empty() || to_dir == from_dir)
                continue;
            const int to_rank = layerRank(to_dir);
            if (to_rank < 0) {
                out.emit(f, inc.line, "LAYER-003",
                         drc::Severity::Warning,
                         format("include of unranked layer '%s'",
                                to_dir.c_str()),
                         "rank the directory in the layer manifest");
                continue;
            }
            if (to_rank > from_rank)
                out.emit(f, inc.line, "LAYER-002",
                         drc::Severity::Error,
                         format("upward include: layer '%s' (rank %d) "
                                "must not depend on '%s' (rank %d)",
                                from_dir.c_str(), from_rank,
                                to_dir.c_str(), to_rank),
                         "invert the dependency, or annotate a known "
                         "historical back-edge with "
                         "harmonia-lint: allow(LAYER-002)");
        }
    }

    // LAYER-001: include cycles.
    const Graph g = buildGraph(corpus);
    std::vector<Mark> marks(corpus.files().size(), Mark::White);
    for (std::size_t i = 0; i < corpus.files().size(); ++i) {
        if (marks[i] != Mark::White)
            continue;
        std::vector<std::size_t> stack, cycle;
        int line = 0;
        if (findCycle(g, i, marks, stack, &cycle, &line)) {
            std::string chain;
            for (std::size_t n : cycle)
                chain += corpus.files()[n].path + " -> ";
            chain += corpus.files()[cycle.front()].path;
            out.emit(corpus.files()[cycle.back()], line, "LAYER-001",
                     drc::Severity::Error,
                     "include cycle: " + chain,
                     "break the cycle with a forward declaration or "
                     "an interface split");
            // One cycle per component is enough signal; finish the
            // coloring so other components still get checked.
            for (auto &m : marks)
                if (m == Mark::Grey)
                    m = Mark::Black;
        }
    }
}

} // namespace analysis
} // namespace harmonia
