#include "analysis/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace harmonia {
namespace analysis {

namespace fs = std::filesystem;

namespace {

bool
isSourceName(const fs::path &p)
{
    // Checkpoint blob dumps (ckpt_*.bin and friends) land wherever a
    // drill runs from; never treat them as lintable sources.
    if (p.filename().string().rfind("ckpt_", 0) == 0)
        return false;
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc";
}

std::string
relativeTo(const fs::path &p, const fs::path &root)
{
    std::string rel = fs::relative(p, root).generic_string();
    return rel;
}

} // namespace

bool
Corpus::load(const std::string &root)
{
    root_ = root;
    files_.clear();
    design_.clear();
    hasDesign_ = false;
    hasFuzz_ = false;

    const fs::path root_path(root);
    const fs::path src = root_path / "src";
    std::error_code ec;
    if (!fs::is_directory(src, ec))
        return false;

    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(src, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it)
        if (it->is_regular_file() && isSourceName(it->path()))
            paths.push_back(it->path());
    std::sort(paths.begin(), paths.end());

    for (const fs::path &p : paths) {
        SourceFile f;
        if (loadSourceFile(p.string(), relativeTo(p, root_path), &f))
            files_.push_back(std::move(f));
    }

    const fs::path design = root_path / "DESIGN.md";
    if (fs::is_regular_file(design, ec)) {
        std::ifstream in(design.string());
        std::ostringstream buf;
        buf << in.rdbuf();
        design_ = buf.str();
        hasDesign_ = true;
    }

    const fs::path fuzz =
        root_path / "tests" / "cmd" / "test_packet_fuzz.cc";
    if (fs::is_regular_file(fuzz, ec))
        hasFuzz_ = loadSourceFile(
            fuzz.string(), "tests/cmd/test_packet_fuzz.cc", &fuzz_);

    return true;
}

const SourceFile *
Corpus::find(const std::string &rel_path) const
{
    for (const SourceFile &f : files_)
        if (f.path == rel_path)
            return &f;
    return nullptr;
}

} // namespace analysis
} // namespace harmonia
