/**
 * @file
 * TRACE / TEL rules: observability hygiene.
 *
 * - TRACE-001 (Error): a beginSpan() call whose SpanId is discarded —
 *   the span can never be ended, so it leaks an open-span slot and
 *   skews every occupancy metric derived from the trace.
 * - TRACE-002 (Warning): a file with beginSpan() call sites but no
 *   endSpan() anywhere — pairing probably crosses files; worth a
 *   human look.
 * - TEL-001 (Error): metric-name literals passed to counter() /
 *   gauge() / histogram() must match [a-z][a-z0-9_.]* — exporters
 *   key on the convention (Prometheus sanitization, dotted JSON
 *   paths).
 */

#include <string>

#include "analysis/analyzer.h"
#include "common/logging.h"

namespace harmonia {
namespace analysis {

namespace {

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/** Position of a .beginSpan( / ->beginSpan( call site, else npos. */
std::size_t
findSpanCall(const std::string &line, const std::string &method)
{
    std::size_t at = 0;
    while ((at = line.find(method + "(", at)) != std::string::npos) {
        const char before = at == 0 ? '\0' : line[at - 1];
        if (before == '.' ||
            (before == '>' && at >= 2 && line[at - 2] == '-'))
            return at;
        at += method.size();
    }
    return std::string::npos;
}

/** Is the metric name within convention? */
bool
conventionalMetricName(const std::string &name)
{
    if (name.empty() || !(name[0] >= 'a' && name[0] <= 'z'))
        return false;
    for (char c : name)
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_' || c == '.'))
            return false;
    return true;
}

} // namespace

void
checkTraceTelemetryRules(const Corpus &corpus, Reporter &out)
{
    static const char *kMetricCtors[] = {"counter", "gauge",
                                         "histogram"};

    for (const SourceFile &f : corpus.files()) {
        bool has_begin_call = false;
        bool has_end_call = false;
        int first_begin_line = 0;

        for (std::size_t i = 0; i < f.code.size(); ++i) {
            const std::string &line = f.code[i];

            const std::size_t begin_at =
                findSpanCall(line, "beginSpan");
            if (begin_at != std::string::npos) {
                has_begin_call = true;
                if (first_begin_line == 0)
                    first_begin_line = static_cast<int>(i) + 1;

                // The result is used when the call sits inside a
                // larger expression: an assignment, an argument
                // list, an initializer or a return on this line —
                // or a continuation of the previous line.
                const std::string prefix =
                    line.substr(0, begin_at);
                int open = 0;
                for (char c : prefix) {
                    if (c == '(')
                        ++open;
                    else if (c == ')')
                        --open;
                }
                bool used =
                    open > 0 ||
                    prefix.find('=') != std::string::npos ||
                    prefix.find(',') != std::string::npos ||
                    prefix.find('{') != std::string::npos ||
                    prefix.find("return") != std::string::npos;
                if (!used && i > 0) {
                    // Continuation: the previous code line left the
                    // expression open.
                    const std::string &prev = f.code[i - 1];
                    const std::size_t last =
                        prev.find_last_not_of(" \t");
                    if (last != std::string::npos &&
                        (prev[last] == '=' || prev[last] == '(' ||
                         prev[last] == ',' || prev[last] == '{'))
                        used = true;
                }
                if (!used)
                    out.emit(f, static_cast<int>(i) + 1, "TRACE-001",
                             drc::Severity::Error,
                             "beginSpan() result discarded — the "
                             "span can never be ended",
                             "keep the SpanId and endSpan() it on "
                             "every exit path");
            }

            if (findSpanCall(line, "endSpan") != std::string::npos)
                has_end_call = true;

            // TEL-001 needs the string literal: use the
            // comment-stripped (string-preserving) view.
            const std::string &lit = f.noComment[i];
            for (const char *ctor : kMetricCtors) {
                std::size_t at = 0;
                const std::string needle =
                    std::string(ctor) + "(\"";
                while ((at = lit.find(needle, at)) !=
                       std::string::npos) {
                    const char before =
                        at == 0 ? '\0' : lit[at - 1];
                    const std::size_t open =
                        at + needle.size();
                    const std::size_t close =
                        lit.find('"', open);
                    at = open;
                    if (isWordChar(before) ||
                        close == std::string::npos)
                        continue;
                    const std::string name =
                        lit.substr(open, close - open);
                    if (!conventionalMetricName(name))
                        out.emit(
                            f, static_cast<int>(i) + 1, "TEL-001",
                            drc::Severity::Error,
                            format("metric name \"%s\" violates "
                                   "the [a-z][a-z0-9_.]* "
                                   "convention",
                                   name.c_str()),
                            "snake_case segments, dots for "
                            "hierarchy; exporters key on this");
                }
            }
        }

        if (has_begin_call && !has_end_call)
            out.emit(f, first_begin_line, "TRACE-002",
                     drc::Severity::Warning,
                     "file opens trace spans but never ends one",
                     "confirm the matching endSpan() lives in a "
                     "clearly-paired file, or end the span here");
    }
}

} // namespace analysis
} // namespace harmonia
