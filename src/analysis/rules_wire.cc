/**
 * @file
 * CMD-W rules: wire-protocol completeness. Every command code in
 * src/cmd/command_codes.h must be fully wired the day it lands:
 *
 * - CMD-W1 (Error): a toString() case in command_codes.cc (statuses
 *   included — an unnameable code renders logs useless).
 * - CMD-W2 (Error): at least one handler/decode reference somewhere
 *   in src/ outside command_codes.* — a code nothing consumes is
 *   dead wire surface.
 * - CMD-W3 (Error): coverage in the command fuzz corpus
 *   (tests/cmd/test_packet_fuzz.cc) for every CommandCode.
 * - CMD-W4 (Error): a DESIGN.md mention of the code's bare name, so
 *   the protocol document cannot silently drift from the enum.
 */

#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/logging.h"

namespace harmonia {
namespace analysis {

namespace {

struct CodeDecl {
    std::string name;  ///< e.g. "kCmdTableWrite"
    int line = 0;
    bool isStatus = false;  ///< CommandStatus vs CommandCode
};

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/** Word-boundary containment of @p word in @p line. */
bool
containsWord(const std::string &line, const std::string &word)
{
    std::size_t at = 0;
    while ((at = line.find(word, at)) != std::string::npos) {
        const char before = at == 0 ? '\0' : line[at - 1];
        const std::size_t end = at + word.size();
        const char after = end < line.size() ? line[end] : '\0';
        if (!isWordChar(before) && !isWordChar(after))
            return true;
        at = end;
    }
    return false;
}

/** Parse kCmd* enumerators out of the two command enums. */
std::vector<CodeDecl>
parseCodes(const SourceFile &codes_h)
{
    std::vector<CodeDecl> out;
    bool in_code_enum = false;
    bool in_status_enum = false;
    for (std::size_t i = 0; i < codes_h.code.size(); ++i) {
        const std::string &line = codes_h.code[i];
        if (line.find("enum CommandCode") != std::string::npos) {
            in_code_enum = true;
            continue;
        }
        if (line.find("enum CommandStatus") != std::string::npos) {
            in_status_enum = true;
            continue;
        }
        if ((in_code_enum || in_status_enum) &&
            line.find("};") != std::string::npos) {
            in_code_enum = in_status_enum = false;
            continue;
        }
        if (!in_code_enum && !in_status_enum)
            continue;
        const std::size_t at = line.find("kCmd");
        if (at == std::string::npos ||
            (at > 0 && isWordChar(line[at - 1])))
            continue;
        std::size_t end = at;
        while (end < line.size() && isWordChar(line[end]))
            ++end;
        out.push_back({line.substr(at, end - at),
                       static_cast<int>(i) + 1, in_status_enum});
    }
    return out;
}

} // namespace

void
checkWireProtocolRules(const Corpus &corpus, Reporter &out)
{
    const SourceFile *codes_h =
        corpus.find("src/cmd/command_codes.h");
    if (codes_h == nullptr)
        return;  // not a harmonia tree; nothing to cross-check
    const std::vector<CodeDecl> codes = parseCodes(*codes_h);
    const SourceFile *codes_cc =
        corpus.find("src/cmd/command_codes.cc");

    for (const CodeDecl &code : codes) {
        // CMD-W1: toString coverage.
        if (codes_cc != nullptr) {
            bool named = false;
            for (const std::string &line : codes_cc->code)
                if (line.find("case " + code.name + ":") !=
                    std::string::npos)
                    named = true;
            if (!named)
                out.emit(*codes_h, code.line, "CMD-W1",
                         drc::Severity::Error,
                         format("%s has no toString() case in "
                                "command_codes.cc",
                                code.name.c_str()),
                         "add the case so logs and traces can name "
                         "the code");
        }

        // CMD-W2: some handler references the code.
        bool handled = false;
        for (const SourceFile &f : corpus.files()) {
            if (f.path == "src/cmd/command_codes.h" ||
                f.path == "src/cmd/command_codes.cc")
                continue;
            for (const std::string &line : f.code)
                if (containsWord(line, code.name)) {
                    handled = true;
                    break;
                }
            if (handled)
                break;
        }
        if (!handled)
            out.emit(*codes_h, code.line, "CMD-W2",
                     drc::Severity::Error,
                     format("%s is referenced nowhere outside the "
                            "enum — no decode or handler path",
                            code.name.c_str()),
                     "wire the code into a kernel/RBB handler (or "
                     "delete it)");

        // CMD-W3: fuzz-corpus coverage for request codes.
        const SourceFile *fuzz = corpus.fuzzCorpus();
        if (!code.isStatus && fuzz != nullptr) {
            bool fuzzed = false;
            for (const std::string &line : fuzz->code)
                if (containsWord(line, code.name))
                    fuzzed = true;
            if (!fuzzed)
                out.emit(*codes_h, code.line, "CMD-W3",
                         drc::Severity::Error,
                         format("%s is absent from the command fuzz "
                                "corpus",
                                code.name.c_str()),
                         "add the code to "
                         "tests/cmd/test_packet_fuzz.cc so framing "
                         "and NACK behaviour are fuzzed");
        }

        // CMD-W4: DESIGN.md documents the bare name. Statuses are
        // exempt — their bare names ("Ok") are too generic to match
        // meaningfully.
        if (!code.isStatus && corpus.hasDesignDoc()) {
            const std::string bare = code.name.substr(4);
            if (corpus.designDoc().find(bare) == std::string::npos)
                out.emit(*codes_h, code.line, "CMD-W4",
                         drc::Severity::Error,
                         format("%s ('%s') is not mentioned in "
                                "DESIGN.md",
                                code.name.c_str(), bare.c_str()),
                         "document the code in the DESIGN.md command "
                         "reference");
        }
    }
}

} // namespace analysis
} // namespace harmonia
