/**
 * @file
 * The analyzer's working set: every C++ source file under <root>/src
 * plus the auxiliary cross-check surfaces (DESIGN.md, the command
 * fuzz corpus). Loading is deterministic — files are visited in
 * sorted path order — so reports are byte-stable run to run.
 */

#ifndef HARMONIA_ANALYSIS_CORPUS_H_
#define HARMONIA_ANALYSIS_CORPUS_H_

#include <string>
#include <vector>

#include "analysis/source_file.h"

namespace harmonia {
namespace analysis {

/** Everything one analyzer run looks at. */
class Corpus {
  public:
    /**
     * Load every .h/.cc under @p root/src (recursively, sorted), plus
     * DESIGN.md and tests/cmd/test_packet_fuzz.cc when present.
     * Returns false when root/src does not exist.
     */
    bool load(const std::string &root);

    const std::string &root() const { return root_; }
    const std::vector<SourceFile> &files() const { return files_; }

    /** Lookup by root-relative path; null when absent. */
    const SourceFile *find(const std::string &rel_path) const;

    /** DESIGN.md text ("" when the tree has none). */
    const std::string &designDoc() const { return design_; }
    bool hasDesignDoc() const { return hasDesign_; }

    /** The command fuzz corpus; null when the tree has none. */
    const SourceFile *fuzzCorpus() const
    {
        return hasFuzz_ ? &fuzz_ : nullptr;
    }

  private:
    std::string root_;
    std::vector<SourceFile> files_;
    std::string design_;
    bool hasDesign_ = false;
    SourceFile fuzz_;
    bool hasFuzz_ = false;
};

} // namespace analysis
} // namespace harmonia

#endif // HARMONIA_ANALYSIS_CORPUS_H_
