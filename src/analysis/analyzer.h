/**
 * @file
 * The codebase-invariant analyzer (harmonia-analyze). Where src/drc
 * lints what a Shell *composition* may do, this subsystem lints what
 * the *source tree* may do: the layer DAG, determinism and hot-path
 * purity, wire-protocol completeness and trace/telemetry hygiene —
 * the unchecked contracts the parallel engine and the byte-identical
 * determinism guarantee rest on. Findings reuse the DRC Diagnostic /
 * DrcReport machinery and renderers; `// harmonia-lint: allow(<rule>)`
 * on the offending line (or the line above) suppresses a finding.
 */

#ifndef HARMONIA_ANALYSIS_ANALYZER_H_
#define HARMONIA_ANALYSIS_ANALYZER_H_

#include <string>
#include <vector>

#include "analysis/corpus.h"
// harmonia-lint: allow(LAYER-002) — analysis deliberately reuses the
// DRC diagnostics model; drc never includes analysis back.
#include "drc/diagnostic.h"

namespace harmonia {
namespace analysis {

/**
 * Collects findings, applying per-line suppressions before they reach
 * the report. Rule code hands every candidate finding here.
 */
class Reporter {
  public:
    explicit Reporter(drc::DrcReport *report) : report_(report) {}

    /**
     * Report @p rule at @p file:@p line unless an allow(<rule>)
     * annotation covers that line. Returns true when the finding was
     * recorded (i.e. not suppressed).
     */
    bool emit(const SourceFile &file, int line,
              const std::string &rule, drc::Severity severity,
              const std::string &message,
              const std::string &hint = "");

    /** Report a tree-level finding with no source anchor. */
    void emitGlobal(const std::string &rule, drc::Severity severity,
                    const std::string &path,
                    const std::string &message,
                    const std::string &hint = "");

    std::size_t suppressedCount() const { return suppressed_; }

  private:
    drc::DrcReport *report_;
    std::size_t suppressed_ = 0;
};

/** One static rule family (mirrors drc::Rule, but corpus-scoped). */
struct RuleFamilyInfo {
    const char *id;           ///< rule id prefix, e.g. "LAYER"
    const char *description;
};

/** The rule families analyze() runs, for --list-rules and docs. */
std::vector<RuleFamilyInfo> ruleFamilies();

// Rule family entry points (one translation unit each).
void checkLayerRules(const Corpus &corpus, Reporter &out);
void checkDeterminismRules(const Corpus &corpus, Reporter &out);
void checkWireProtocolRules(const Corpus &corpus, Reporter &out);
void checkTraceTelemetryRules(const Corpus &corpus, Reporter &out);

/** Run every rule family over @p corpus. */
drc::DrcReport analyze(const Corpus &corpus);

/** Convenience: load @p root and analyze. Reports a fatal Error
 *  diagnostic (rule "ANALYZE-000") when root/src cannot be read. */
drc::DrcReport analyzeTree(const std::string &root);

} // namespace analysis
} // namespace harmonia

#endif // HARMONIA_ANALYSIS_ANALYZER_H_
