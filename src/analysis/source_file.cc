#include "analysis/source_file.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace harmonia {
namespace analysis {

namespace {

/** Lexer state carried across lines. */
enum class LexState { Code, BlockComment, String, Char };

/**
 * Blank one line into the two stripped views, advancing @p state.
 * Removed characters become spaces so columns survive.
 */
void
stripLine(const std::string &line, LexState &state,
          std::string *no_comment, std::string *code)
{
    no_comment->assign(line.size(), ' ');
    code->assign(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        const char next = i + 1 < line.size() ? line[i + 1] : '\0';
        switch (state) {
          case LexState::Code:
            if (c == '/' && next == '/') {
                return;  // rest of the line is a comment
            } else if (c == '/' && next == '*') {
                state = LexState::BlockComment;
                ++i;
            } else if (c == '"') {
                (*no_comment)[i] = c;
                (*code)[i] = c;
                state = LexState::String;
            } else if (c == '\'') {
                (*no_comment)[i] = c;
                (*code)[i] = c;
                state = LexState::Char;
            } else {
                (*no_comment)[i] = c;
                (*code)[i] = c;
            }
            break;
          case LexState::BlockComment:
            if (c == '*' && next == '/') {
                state = LexState::Code;
                ++i;
            }
            break;
          case LexState::String:
            (*no_comment)[i] = c;
            if (c == '\\' && next != '\0') {
                (*no_comment)[i + 1] = next;
                ++i;
            } else if (c == '"') {
                (*code)[i] = c;
                state = LexState::Code;
            }
            break;
          case LexState::Char:
            (*no_comment)[i] = c;
            if (c == '\\' && next != '\0') {
                (*no_comment)[i + 1] = next;
                ++i;
            } else if (c == '\'') {
                (*code)[i] = c;
                state = LexState::Code;
            }
            break;
        }
    }
    // An unterminated string at end of line is not valid C++; recover
    // to Code so one bad line cannot blank the rest of the file.
    if (state == LexState::String || state == LexState::Char)
        state = LexState::Code;
}

/** Collect allow(<rule>[, <rule>...]) suppressions on one raw line. */
void
collectAllows(const std::string &raw, int line_no,
              std::vector<std::pair<int, std::string>> *out)
{
    static const std::string kMarker = "harmonia-lint:";
    std::size_t at = raw.find(kMarker);
    if (at == std::string::npos)
        return;
    at = raw.find("allow(", at);
    if (at == std::string::npos)
        return;
    const std::size_t close = raw.find(')', at);
    if (close == std::string::npos)
        return;
    std::string list = raw.substr(at + 6, close - at - 6);
    std::string rule;
    std::istringstream split(list);
    while (std::getline(split, rule, ',')) {
        std::size_t b = rule.find_first_not_of(" \t");
        std::size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        out->emplace_back(line_no, rule.substr(b, e - b + 1));
    }
}

} // namespace

std::string
SourceFile::layerDir() const
{
    if (path.rfind("src/", 0) != 0)
        return "";
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    return path.substr(4, slash - 4);
}

std::string
SourceFile::companionPath() const
{
    if (path.size() > 3 && path.rfind(".cc") == path.size() - 3)
        return path.substr(0, path.size() - 3) + ".h";
    if (path.size() > 2 && path.rfind(".h") == path.size() - 2)
        return path.substr(0, path.size() - 2) + ".cc";
    return "";
}

bool
SourceFile::suppressed(int line, const std::string &rule) const
{
    for (const auto &a : allows)
        if ((a.first == line || a.first + 1 == line) &&
            a.second == rule)
            return true;
    return false;
}

bool
loadSourceFile(const std::string &abs_path,
               const std::string &rel_path, SourceFile *out)
{
    std::ifstream in(abs_path);
    if (!in)
        return false;
    out->path = rel_path;
    out->raw.clear();
    out->noComment.clear();
    out->code.clear();
    out->includes.clear();
    out->allows.clear();

    LexState state = LexState::Code;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        ++line_no;
        collectAllows(line, line_no, &out->allows);
        std::string no_comment, code;
        stripLine(line, state, &no_comment, &code);
        // #include "x/y.h": the target lives in a string literal, so
        // read it from the comment-stripped view.
        std::size_t at = no_comment.find("#include");
        if (at != std::string::npos) {
            const std::size_t open = no_comment.find('"', at);
            if (open != std::string::npos) {
                const std::size_t close =
                    no_comment.find('"', open + 1);
                if (close != std::string::npos)
                    out->includes.push_back(
                        {line_no, no_comment.substr(
                                      open + 1, close - open - 1)});
            }
        }
        out->raw.push_back(std::move(line));
        out->noComment.push_back(std::move(no_comment));
        out->code.push_back(std::move(code));
    }
    return true;
}

} // namespace analysis
} // namespace harmonia
