/**
 * @file
 * One scanned source file for the codebase analyzer: raw lines, a
 * comment-stripped view, a comment-and-string-stripped view, the
 * project-relative #include list and `// harmonia-lint: allow(...)`
 * suppressions. The stripped views preserve line count and column
 * positions (removed characters become spaces) so every finding can
 * carry an exact file:line.
 */

#ifndef HARMONIA_ANALYSIS_SOURCE_FILE_H_
#define HARMONIA_ANALYSIS_SOURCE_FILE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace harmonia {
namespace analysis {

/** One #include "..." directive. */
struct IncludeDirective {
    int line = 0;            ///< 1-based line number
    std::string target;      ///< quoted path, e.g. "common/json.h"
};

/** A loaded and pre-lexed source file. */
struct SourceFile {
    std::string path;  ///< root-relative, '/'-separated, e.g.
                       ///< "src/sim/engine.cc"

    std::vector<std::string> raw;        ///< verbatim lines
    std::vector<std::string> noComment;  ///< comments blanked
    std::vector<std::string> code;       ///< comments + strings blanked

    std::vector<IncludeDirective> includes;

    /** allow(<rule>) suppressions, keyed by the 1-based line they
     *  appear on. A suppression covers its own line and the next. */
    std::vector<std::pair<int, std::string>> allows;

    /** Top-level directory under src/ ("sim" for "src/sim/engine.cc");
     *  empty for files outside src/. */
    std::string layerDir() const;

    /** Companion path: .h for a .cc and vice versa ("" if neither). */
    std::string companionPath() const;

    /** Is a finding of @p rule on @p line (1-based) suppressed? */
    bool suppressed(int line, const std::string &rule) const;
};

/**
 * Load and pre-lex @p abs_path, recording @p rel_path as the file's
 * project-relative identity. Returns false when the file cannot be
 * read.
 */
bool loadSourceFile(const std::string &abs_path,
                    const std::string &rel_path, SourceFile *out);

} // namespace analysis
} // namespace harmonia

#endif // HARMONIA_ANALYSIS_SOURCE_FILE_H_
