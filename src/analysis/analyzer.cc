#include "analysis/analyzer.h"

#include "common/logging.h"

namespace harmonia {
namespace analysis {

bool
Reporter::emit(const SourceFile &file, int line,
               const std::string &rule, drc::Severity severity,
               const std::string &message, const std::string &hint)
{
    if (file.suppressed(line, rule)) {
        ++suppressed_;
        return false;
    }
    report_->add({rule, severity, format("%s:%d", file.path.c_str(), line),
                  message, hint});
    return true;
}

void
Reporter::emitGlobal(const std::string &rule, drc::Severity severity,
                     const std::string &path,
                     const std::string &message,
                     const std::string &hint)
{
    report_->add({rule, severity, path, message, hint});
}

std::vector<RuleFamilyInfo>
ruleFamilies()
{
    return {
        {"LAYER", "layer DAG: include-graph cycles, upward includes "
                  "against the declared layer manifest, unknown "
                  "layers"},
        {"DET", "determinism: no RNG/wall-clock calls anywhere in "
                "src/; no unordered-container iteration in ticked or "
                "command-path code"},
        {"HOT", "hot-path purity: no heap-allocation markers in the "
                "designated hot files"},
        {"CMD-W", "wire-protocol completeness: every kCmd* code has "
                  "toString coverage, a handler, fuzz-corpus coverage "
                  "and a DESIGN.md mention"},
        {"TRACE", "trace hygiene: beginSpan results must be kept so "
                  "the span can be ended; begin/end call sites must "
                  "pair up per file"},
        {"TEL", "telemetry hygiene: metric-name literals follow the "
                "snake_case/dotted convention"},
    };
}

drc::DrcReport
analyze(const Corpus &corpus)
{
    drc::DrcReport report;
    Reporter out(&report);
    checkLayerRules(corpus, out);
    checkDeterminismRules(corpus, out);
    checkWireProtocolRules(corpus, out);
    checkTraceTelemetryRules(corpus, out);
    return report;
}

drc::DrcReport
analyzeTree(const std::string &root)
{
    Corpus corpus;
    if (!corpus.load(root)) {
        drc::DrcReport report;
        report.add({"ANALYZE-000", drc::Severity::Error, root,
                    "no src/ directory under analysis root",
                    "pass --root pointing at a harmonia tree"});
        return report;
    }
    return analyze(corpus);
}

} // namespace analysis
} // namespace harmonia
