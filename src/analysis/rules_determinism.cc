/**
 * @file
 * DET / HOT rules: the source-level invariants behind the engine's
 * byte-identical determinism contract and the zero-allocation hot
 * path.
 *
 * - DET-001 (Error): no RNG or wall-clock calls anywhere in src/.
 *   Simulated time is the only clock; seeded streams (FaultPlan) are
 *   the only randomness.
 * - DET-002 (Error): no iteration over std::unordered_* containers in
 *   tick()-reachable or command-path code — bucket order is not part
 *   of the determinism contract.
 * - DET-003 (Warning): an unordered container member declared in
 *   ticked code at all (lookups are fine, but the member invites
 *   iteration; annotate the justification).
 * - HOT-001 (Error): heap-allocation markers in the designated hot
 *   files, which the ROADMAP's zero-allocation wire path builds on.
 */

#include <map>
#include <set>
#include <vector>

#include "analysis/analyzer.h"
#include "common/logging.h"

namespace harmonia {
namespace analysis {

namespace {

bool
isWordChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/**
 * Find @p token in @p line starting at a word boundary. When
 * @p reject_member is set, a match directly after '.', '>' or ':'
 * does not count (method calls and qualified names are someone
 * else's `time()`, not libc's).
 */
std::size_t
findToken(const std::string &line, const std::string &token,
          bool reject_member = false)
{
    std::size_t at = 0;
    while ((at = line.find(token, at)) != std::string::npos) {
        const char before = at == 0 ? '\0' : line[at - 1];
        if (!isWordChar(before) &&
            !(reject_member &&
              (before == '.' || before == '>' || before == ':')))
            return at;
        at += token.size();
    }
    return std::string::npos;
}

struct BannedToken {
    const char *token;
    bool reject_member;  ///< bare-call only (see findToken)
    const char *why;
};

const BannedToken kBannedCalls[] = {
    {"rand(", false, "libc rand() is process-global state"},
    {"srand(", false, "libc srand() is process-global state"},
    {"rand_r(", false, "rand_r() is wall-entropy seeded in practice"},
    {"drand48(", false, "drand48() is process-global state"},
    {"lrand48(", false, "lrand48() is process-global state"},
    {"random_device", false,
     "std::random_device is hardware entropy"},
    {"arc4random", false, "arc4random is kernel entropy"},
    {"getrandom(", false, "getrandom() is kernel entropy"},
    {"time(", true, "wall-clock time() breaks replayability"},
    {"gettimeofday", false, "wall-clock read"},
    {"clock_gettime", false, "wall-clock read"},
    {"localtime", false, "wall-clock derived"},
    {"gmtime", false, "wall-clock derived"},
    {"system_clock", false, "std::chrono wall clock"},
    {"steady_clock", false,
     "host-monotonic clock; use simulated Tick time"},
    {"high_resolution_clock", false,
     "host clock; use simulated Tick time"},
};

/** Marker that usually means a heap allocation on the hot path. */
struct HotMarker {
    const char *token;
    bool reject_member;
};

const HotMarker kHotMarkers[] = {
    {"new", false},         {"make_unique", false},
    {"make_shared", false}, {"malloc(", true},
    {"calloc(", true},      {"push_back", false},
    {"emplace_back", false},{"resize", false},
    {"reserve", false},
};

/** Files the zero-allocation contract currently covers. */
const char *kHotFiles[] = {
    "src/common/checksum.cc", "src/common/bits.h",
    "src/common/packet.h",    "src/rtl/crc.cc",
    "src/sim/clock.cc",       "src/sim/clock.h",
    "src/cmd/command.h",
};

bool
isHotFile(const std::string &path)
{
    for (const char *f : kHotFiles)
        if (path == f)
            return true;
    return false;
}

/** Does this file (alone) define ticked or command-path code? */
bool
definesTickedCode(const SourceFile &f)
{
    for (const std::string &line : f.code) {
        if (line.find("tick() override") != std::string::npos)
            return true;
        if (line.find("void tick()") != std::string::npos)
            return true;
        if (line.find("::tick()") != std::string::npos)
            return true;
        if (line.find("executeCommand(") != std::string::npos)
            return true;
    }
    return false;
}

/** Unordered-container members declared in @p f: name -> decl line. */
std::map<std::string, int>
unorderedMembers(const SourceFile &f)
{
    static const char *kKinds[] = {
        "unordered_map<", "unordered_set<", "unordered_multimap<",
        "unordered_multiset<"};
    std::map<std::string, int> members;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string &line = f.code[i];
        bool has_kind = false;
        for (const char *k : kKinds)
            if (line.find(k) != std::string::npos)
                has_kind = true;
        if (!has_kind)
            continue;
        // Take the identifier that ends the declarator: the last
        // word before ';', '{' or '=' on this line.
        std::size_t end = line.find_last_of(";{=");
        if (end == std::string::npos)
            continue;
        std::size_t e = end;
        while (e > 0 && !isWordChar(line[e - 1]))
            --e;
        std::size_t b = e;
        while (b > 0 && isWordChar(line[b - 1]))
            --b;
        if (e > b && !(line[b] >= '0' && line[b] <= '9'))
            members[line.substr(b, e - b)] =
                static_cast<int>(i) + 1;
    }
    return members;
}

} // namespace

void
checkDeterminismRules(const Corpus &corpus, Reporter &out)
{
    // Ticked-ness is a property of the component, which spans the
    // .h/.cc pair: a tick() declared in the header makes the
    // implementation file ticked code too.
    std::set<std::string> ticked;
    for (const SourceFile &f : corpus.files())
        if (definesTickedCode(f)) {
            ticked.insert(f.path);
            const std::string companion = f.companionPath();
            if (!companion.empty())
                ticked.insert(companion);
        }

    for (const SourceFile &f : corpus.files()) {
        // DET-001 over every src file.
        for (std::size_t i = 0; i < f.code.size(); ++i) {
            for (const BannedToken &t : kBannedCalls) {
                if (findToken(f.code[i], t.token,
                              t.reject_member) == std::string::npos)
                    continue;
                out.emit(f, static_cast<int>(i) + 1, "DET-001",
                         drc::Severity::Error,
                         format("nondeterministic call '%s': %s",
                                t.token, t.why),
                         "derive randomness from a seeded stream "
                         "(fault/fault_plan.h) and time from the "
                         "simulated clock");
            }
        }

        // HOT-001 in the designated hot files.
        if (isHotFile(f.path)) {
            for (std::size_t i = 0; i < f.code.size(); ++i)
                for (const HotMarker &m : kHotMarkers)
                    if (findToken(f.code[i], m.token,
                                  m.reject_member) !=
                        std::string::npos)
                        out.emit(
                            f, static_cast<int>(i) + 1, "HOT-001",
                            drc::Severity::Error,
                            format("allocation marker '%s' in "
                                   "designated hot file",
                                   m.token),
                            "hot files are allocation-free by "
                            "contract; use fixed-size storage or "
                            "move the code out of the hot set");
        }

        // DET-002 / DET-003 in ticked code.
        if (ticked.count(f.path) == 0)
            continue;
        std::map<std::string, int> members = unorderedMembers(f);
        const SourceFile *companion =
            corpus.find(f.companionPath());
        if (companion != nullptr)
            for (const auto &m : unorderedMembers(*companion))
                members.emplace(m.first, 0);  // declared elsewhere

        for (const auto &m : members) {
            if (m.second > 0)
                out.emit(f, m.second, "DET-003",
                         drc::Severity::Warning,
                         format("unordered container member '%s' in "
                                "ticked code",
                                m.first.c_str()),
                         "lookups are fine; if iteration is never "
                         "needed, annotate with "
                         "harmonia-lint: allow(DET-003) and say why");

            for (std::size_t i = 0; i < f.code.size(); ++i) {
                const std::string &line = f.code[i];
                const bool iterates =
                    line.find(m.first + ".begin()") !=
                        std::string::npos ||
                    line.find(m.first + ".cbegin()") !=
                        std::string::npos ||
                    line.find(m.first + ".rbegin()") !=
                        std::string::npos ||
                    (line.find("for") != std::string::npos &&
                     line.find(": " + m.first) != std::string::npos);
                if (iterates)
                    out.emit(f, static_cast<int>(i) + 1, "DET-002",
                             drc::Severity::Error,
                             format("iteration over unordered "
                                    "container '%s' in ticked code",
                                    m.first.c_str()),
                             "bucket order is outside the "
                             "determinism contract; keep a sorted "
                             "or insertion-ordered structure for "
                             "traversal");
            }
        }
    }
}

} // namespace analysis
} // namespace harmonia
