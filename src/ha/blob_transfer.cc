#include "ha/blob_transfer.h"

#include <algorithm>

#include "cmd/checkpoint.h"
#include "roles/role.h"

namespace harmonia {

bool
fetchCheckpointBlob(CmdDriver &driver, std::uint8_t slot,
                    std::vector<std::uint32_t> *blob)
{
    blob->clear();
    std::size_t total = 0;
    do {
        const CallOutcome out = driver.callChecked(
            kRoleRbbIdBase, slot, kCmdCheckpoint,
            {static_cast<std::uint32_t>(blob->size())});
        if (!out.ok() || out.response.status != kCmdOk ||
            out.response.data.empty())
            return false;
        total = out.response.data[0];
        if (out.response.data.size() == 1 && blob->size() < total)
            return false;  // no progress: would spin forever
        blob->insert(blob->end(), out.response.data.begin() + 1,
                     out.response.data.end());
    } while (blob->size() < total);
    return blob->size() == total;
}

bool
pushCheckpointBlob(CmdDriver &driver, std::uint8_t slot,
                   const std::vector<std::uint32_t> &blob)
{
    const std::uint32_t total =
        static_cast<std::uint32_t>(blob.size());
    std::size_t offset = 0;
    while (offset < blob.size()) {
        const std::size_t n = std::min(CheckpointStreamer::kChunkWords,
                                       blob.size() - offset);
        std::vector<std::uint32_t> req = {
            total, static_cast<std::uint32_t>(offset)};
        req.insert(req.end(), blob.begin() + offset,
                   blob.begin() + offset + n);
        const CallOutcome out = driver.callChecked(
            kRoleRbbIdBase, slot, kCmdRestore, req);
        if (!out.ok() || out.response.status != kCmdOk)
            return false;
        offset += n;
        // Final chunk: the response carries [1, CheckpointError].
        if (offset == blob.size())
            return out.response.data.size() >= 2 &&
                   out.response.data[0] == 1 &&
                   out.response.data[1] == 0;
    }
    return false;  // empty blob: nothing to restore is a bug upstream
}

} // namespace harmonia
