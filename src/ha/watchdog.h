/**
 * @file
 * Host-side failure-domain watchdog. A card that dies takes its
 * control kernel with it, so the only trustworthy liveness signal is
 * end-to-end: a heartbeat command (kCmdTimeCount at the kernel's
 * system target) that must come back within a deadline. N consecutive
 * misses declare the device dead; a later successful beat (the fault
 * window closed) revives it. An attached SloEngine corroborates:
 * while any SLO is pending or firing, a single miss is enough —
 * burn-rate evidence plus a silent kernel is not a coincidence.
 *
 * The watchdog is deliberately NOT a Component: issuing a command
 * advances the engine (CmdDriver::call runs the simulation until the
 * kernel answers), which a tick() may never do. Hosts pace it with
 * poll() from their orchestration loop, exactly like CmdDriver use.
 */

#ifndef HARMONIA_HA_WATCHDOG_H_
#define HARMONIA_HA_WATCHDOG_H_

#include "host/cmd_driver.h"

namespace harmonia {

class SloEngine;

/** Watchdog thresholds (DESIGN.md §14). */
struct WatchdogConfig {
    Tick interval = 10'000'000;  ///< 10 us between heartbeats
    Tick timeout = 4'000'000;    ///< per-beat response deadline
    unsigned missThreshold = 3;  ///< consecutive misses => dead
};

/** Heartbeat-driven liveness detector for one shell. */
class Watchdog {
  public:
    Watchdog(Engine &engine, Shell &shell, WatchdogConfig config = {});

    const WatchdogConfig &config() const { return cfg_; }

    /** Corroborating SLO engine (may be null). */
    void attachSlo(const SloEngine *slo) { slo_ = slo; }

    /**
     * Issue one heartbeat now, regardless of pacing. Returns whether
     * the device answered. Updates the dead/alive verdict.
     */
    bool beat();

    /**
     * Beat when the interval has elapsed since the last beat (always
     * beats on the first call). Returns whether a beat was issued.
     */
    bool poll();

    bool dead() const { return dead_; }
    unsigned consecutiveMisses() const { return misses_; }

    /** Last simulated time the device answered a beat (0 = never). */
    Tick lastAliveAt() const { return lastAliveAt_; }

    /**
     * The kernel's time count from the last accepted heartbeat
     * (0 = none). A successful beat whose count fails to advance past
     * this is a stale answer — a wedged soft core replaying old state
     * — and counts as a miss. Revival resets it along with the miss
     * counter: a revived (possibly rebooted) card restarts its count,
     * and judging its first beats against the pre-death value would
     * re-declare it dead on the spot.
     */
    std::uint64_t lastHeartbeatSeq() const { return lastSeq_; }

    /**
     * Post-revival hysteresis beats left: while non-zero, SLO
     * corroboration cannot collapse the miss threshold to one —
     * the incident that killed the card usually leaves its SLOs
     * burning well past the revival.
     */
    unsigned revivalGraceLeft() const { return reviveGrace_; }

    StatGroup &stats() { return stats_; }

  private:
    Engine &engine_;
    Shell &shell_;
    WatchdogConfig cfg_;
    CmdDriver driver_;
    const SloEngine *slo_ = nullptr;
    unsigned misses_ = 0;
    Tick lastAliveAt_ = 0;
    Tick lastBeatAt_ = 0;
    std::uint64_t lastSeq_ = 0;
    unsigned reviveGrace_ = 0;
    bool everBeat_ = false;
    bool dead_ = false;
    StatGroup stats_;
};

} // namespace harmonia

#endif // HARMONIA_HA_WATCHDOG_H_
