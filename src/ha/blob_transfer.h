/**
 * @file
 * Checkpoint blob wire transfer: the chunked kCmdCheckpoint /
 * kCmdRestore conversation both HA failover and fleet migration run
 * against a role's CheckpointStreamer. Extracted from
 * FailoverCoordinator so every consumer drains and pushes blobs with
 * identical framing — offset-resumed fetches, idempotent retried
 * final chunks, and a verdict word that surfaces the target's
 * CheckpointError instead of silently succeeding.
 */

#ifndef HARMONIA_HA_BLOB_TRANSFER_H_
#define HARMONIA_HA_BLOB_TRANSFER_H_

#include <cstdint>
#include <vector>

#include "host/cmd_driver.h"

namespace harmonia {

/**
 * Drain a role's checkpoint blob over the wire from @p slot.
 * Resumable: each kCmdCheckpoint call carries the words received so
 * far, so a lost response retries without restarting the stream.
 * False on transport failure or a stream that stops making progress.
 */
bool fetchCheckpointBlob(CmdDriver &driver, std::uint8_t slot,
                         std::vector<std::uint32_t> *blob);

/**
 * Push @p blob into the role at @p slot chunk by chunk. The final
 * chunk's response carries [1, CheckpointError]; anything but a clean
 * zero verdict is a failure. An empty blob is refused — nothing to
 * restore is a bug upstream, not a no-op.
 */
bool pushCheckpointBlob(CmdDriver &driver, std::uint8_t slot,
                        const std::vector<std::uint32_t> &blob);

} // namespace harmonia

#endif // HARMONIA_HA_BLOB_TRANSFER_H_
