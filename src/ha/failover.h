/**
 * @file
 * The failover orchestrator: one primary and one standby shell —
 * possibly from different vendors — with twin roles bound to each.
 * Application commands go through the coordinator's journaled call()
 * proxy; the coordinator periodically drains checkpoint blobs off the
 * primary over the wire, and when its watchdog declares the primary
 * dead it re-seeds the standby from the last checkpoint and replays
 * the journal tail — every entry at or after the checkpoint mark,
 * acked or not, in order.
 *
 * Zero acknowledged-command loss (DESIGN.md §14): an acked call is
 * either covered by the checkpoint (it completed before the blob was
 * drained, so its effect is inside the blob) or sits at-or-after the
 * mark and is replayed onto the standby. Unacked calls in the
 * two-generals window (executed, ack lost) are replayed too —
 * at-least-once, never at-most-once.
 */

#ifndef HARMONIA_HA_FAILOVER_H_
#define HARMONIA_HA_FAILOVER_H_

#include <memory>

#include "ha/watchdog.h"
#include "roles/role.h"

namespace harmonia {

/** Failover pacing knobs (DESIGN.md §14). */
struct FailoverConfig {
    WatchdogConfig watchdog;
    Tick checkpointInterval = 50'000'000;  ///< 50 us between drains
};

/** Orchestrates checkpointing and failover across a shell pair. */
class FailoverCoordinator {
  public:
    FailoverCoordinator(Engine &engine, Shell &primary, Shell &standby,
                        FailoverConfig config = {});

    /**
     * Register a primary/standby role pair. Both must be bound (on
     * the primary and standby shell respectively), share one kind
     * (same role name) and occupy the same slot on their shell.
     */
    void manageRole(Role &primary_role, Role &standby_role);

    /**
     * Journaled command proxy: issue @p code to the managed role in
     * @p slot on the currently-active shell, recording the call so a
     * later failover can replay it.
     */
    CallOutcome call(std::uint8_t slot, std::uint16_t code,
                     const std::vector<std::uint32_t> &data = {});

    /**
     * Drain a checkpoint blob from every managed role on the primary
     * over the wire. All-or-nothing: blobs and the journal mark only
     * advance when every role's drain succeeds, so the retained cut
     * is always consistent. No-op (false) after failover.
     */
    bool checkpointNow();

    /**
     * The orchestration step hosts call from their event loop: pace
     * the watchdog, pace checkpoints, and fail over when the
     * watchdog declares the primary dead. Returns true when a
     * failover completed during this poll.
     */
    bool poll();

    /**
     * Promote the standby now: re-seed shell state, push the last
     * checkpoint blobs, replay the journal tail, and point the
     * watchdog at the standby. Returns success.
     */
    bool failover();

    bool failedOver() const { return failedOver_; }
    Shell &activeShell() { return failedOver_ ? standby_ : primary_; }
    Watchdog &watchdog() { return *watchdog_; }

    /** Calls whose kernel ack reached the host, lifetime total. */
    std::uint64_t ackedCalls() const { return acked_; }

    /**
     * Downtime of the last failover: from the primary's last
     * successful heartbeat to the standby answering after promotion.
     */
    Tick downtimeTicks() const { return downtimeTicks_; }
    Cycles downtimeCycles() const;

    /**
     * FNV-1a over the active roles' state blobs (in manageRole
     * order) — the end-state identity the chaos suite compares
     * across reruns and thread counts.
     */
    std::uint64_t fingerprint() const;

    StatGroup &stats() { return stats_; }

  private:
    struct Pair {
        Role *primary = nullptr;
        Role *standby = nullptr;
        std::uint8_t slot = 0;
        std::vector<std::uint32_t> blob;  ///< last drained checkpoint
    };

    struct JournalEntry {
        std::uint8_t slot = 0;
        std::uint16_t code = 0;
        std::vector<std::uint32_t> data;
        bool acked = false;
    };

    Engine &engine_;
    Shell &primary_;
    Shell &standby_;
    FailoverConfig cfg_;
    CmdDriver primaryDriver_;
    CmdDriver standbyDriver_;
    std::unique_ptr<Watchdog> watchdog_;
    std::vector<Pair> pairs_;
    std::vector<JournalEntry> journal_;
    std::uint64_t acked_ = 0;
    Tick lastCheckpointAt_ = 0;
    bool everCheckpointed_ = false;
    bool failedOver_ = false;
    Tick downtimeTicks_ = 0;
    StatGroup stats_;
};

} // namespace harmonia

#endif // HARMONIA_HA_FAILOVER_H_
