#include "ha/watchdog.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"

namespace harmonia {

Watchdog::Watchdog(Engine &engine, Shell &shell, WatchdogConfig config)
    : engine_(engine), shell_(shell), cfg_(config),
      driver_(engine, shell, kCtrlBmc),
      stats_(format("watchdog_%s", shell.name().c_str()))
{
    if (cfg_.missThreshold == 0)
        fatal("watchdog miss threshold must be >= 1");
    // One attempt per beat: the watchdog's own cadence IS the retry
    // loop, and per-beat backoff would smear the detection latency.
    RetryPolicy p;
    p.maxAttempts = 1;
    driver_.setRetryPolicy(p);
}

bool
Watchdog::beat()
{
    lastBeatAt_ = engine_.now();
    everBeat_ = true;
    stats_.counter("beats").inc();

    const CallOutcome out = driver_.callChecked(
        kRbbSystem, 0, kCmdTimeCount, {}, cfg_.timeout);
    if (out.ok() && out.response.status == kCmdOk) {
        misses_ = 0;
        lastAliveAt_ = engine_.now();
        if (dead_) {
            dead_ = false;
            stats_.counter("revivals").inc();
            if (FlightRecorder *fdr = FlightRecorder::active())
                fdr->noteRecovery(stats_.name(), "revived",
                                  engine_.now());
        }
        return true;
    }

    ++misses_;
    stats_.counter("missed_beats").inc();
    const bool corroborated =
        slo_ != nullptr && slo_->anyActive() && misses_ >= 1;
    if (!dead_ && (misses_ >= cfg_.missThreshold || corroborated)) {
        dead_ = true;
        stats_.counter("deaths_declared").inc();
        if (FlightRecorder *fdr = FlightRecorder::active())
            fdr->noteRecovery(stats_.name(),
                              corroborated &&
                                      misses_ < cfg_.missThreshold
                                  ? "declared_dead_slo"
                                  : "declared_dead",
                              engine_.now());
    }
    return false;
}

bool
Watchdog::poll()
{
    if (everBeat_ && engine_.now() < lastBeatAt_ + cfg_.interval)
        return false;
    beat();
    return true;
}

} // namespace harmonia
