#include "ha/watchdog.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"

namespace harmonia {

Watchdog::Watchdog(Engine &engine, Shell &shell, WatchdogConfig config)
    : engine_(engine), shell_(shell), cfg_(config),
      driver_(engine, shell, kCtrlBmc),
      stats_(format("watchdog_%s", shell.name().c_str()))
{
    if (cfg_.missThreshold == 0)
        fatal("watchdog miss threshold must be >= 1");
    // One attempt per beat: the watchdog's own cadence IS the retry
    // loop, and per-beat backoff would smear the detection latency.
    RetryPolicy p;
    p.maxAttempts = 1;
    driver_.setRetryPolicy(p);
}

bool
Watchdog::beat()
{
    lastBeatAt_ = engine_.now();
    everBeat_ = true;
    stats_.counter("beats").inc();
    if (reviveGrace_ > 0)
        --reviveGrace_;

    const CallOutcome out = driver_.callChecked(
        kRbbSystem, 0, kCmdTimeCount, {}, cfg_.timeout);
    bool answered = out.ok() && out.response.status == kCmdOk;
    std::uint64_t seq = 0;
    if (answered && out.response.data.size() >= 2)
        seq = (static_cast<std::uint64_t>(out.response.data[0])
               << 32) |
              out.response.data[1];

    if (answered && dead_) {
        // Revival resets the liveness trackers along with the
        // verdict. The pre-death heartbeat seq is stale — a revived
        // (possibly rebooted) card restarts its count, so judging
        // its first beats against the old value would re-declare it
        // dead immediately — and the hysteresis window keeps a
        // still-burning incident SLO from doing the same via the
        // corroborated single-miss path.
        dead_ = false;
        misses_ = 0;
        lastSeq_ = 0;
        reviveGrace_ = cfg_.missThreshold;
        stats_.counter("revivals").inc();
        if (FlightRecorder *fdr = FlightRecorder::active())
            fdr->noteRecovery(stats_.name(), "revived",
                              engine_.now());
    }

    if (answered && seq != 0 && lastSeq_ != 0 && seq <= lastSeq_) {
        // Answered, but the time count never advanced: a wedged soft
        // core replaying stale state is not liveness.
        answered = false;
        stats_.counter("stale_heartbeats").inc();
    }

    if (answered) {
        misses_ = 0;
        lastSeq_ = seq;
        lastAliveAt_ = engine_.now();
        return true;
    }

    ++misses_;
    stats_.counter("missed_beats").inc();
    const bool corroborated = slo_ != nullptr && slo_->anyActive() &&
                              misses_ >= 1 && reviveGrace_ == 0;
    if (!dead_ && (misses_ >= cfg_.missThreshold || corroborated)) {
        dead_ = true;
        stats_.counter("deaths_declared").inc();
        if (FlightRecorder *fdr = FlightRecorder::active())
            fdr->noteRecovery(stats_.name(),
                              corroborated &&
                                      misses_ < cfg_.missThreshold
                                  ? "declared_dead_slo"
                                  : "declared_dead",
                              engine_.now());
    }
    return false;
}

bool
Watchdog::poll()
{
    if (everBeat_ && engine_.now() < lastBeatAt_ + cfg_.interval)
        return false;
    beat();
    return true;
}

} // namespace harmonia
