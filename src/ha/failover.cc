#include "ha/failover.h"

#include "common/logging.h"
#include "ha/blob_transfer.h"
#include "obs/flight_recorder.h"
#include "sim/clock.h"

namespace harmonia {

FailoverCoordinator::FailoverCoordinator(Engine &engine,
                                         Shell &primary, Shell &standby,
                                         FailoverConfig config)
    : engine_(engine), primary_(primary), standby_(standby),
      cfg_(config), primaryDriver_(engine, primary),
      standbyDriver_(engine, standby),
      watchdog_(std::make_unique<Watchdog>(engine, primary,
                                           config.watchdog)),
      stats_("failover")
{
    if (&primary == &standby)
        fatal("failover needs two distinct shells");
}

void
FailoverCoordinator::manageRole(Role &primary_role, Role &standby_role)
{
    if (!primary_role.bound() || !standby_role.bound())
        fatal("manageRole: both roles must be bound");
    if (primary_role.name() != standby_role.name())
        fatal("manageRole: '%s' and '%s' are different kinds",
              primary_role.name().c_str(),
              standby_role.name().c_str());
    if (primary_role.slot() != standby_role.slot())
        fatal("manageRole: role '%s' occupies slot %u on the primary "
              "but %u on the standby",
              primary_role.name().c_str(), primary_role.slot(),
              standby_role.slot());
    for (const Pair &p : pairs_)
        if (p.slot == primary_role.slot())
            fatal("manageRole: slot %u is already managed",
                  primary_role.slot());
    pairs_.push_back(
        Pair{&primary_role, &standby_role, primary_role.slot(), {}});
}

CallOutcome
FailoverCoordinator::call(std::uint8_t slot, std::uint16_t code,
                          const std::vector<std::uint32_t> &data)
{
    journal_.push_back(JournalEntry{slot, code, data, false});
    CmdDriver &driver =
        failedOver_ ? standbyDriver_ : primaryDriver_;
    const CallOutcome out =
        driver.callChecked(kRoleRbbIdBase, slot, code, data);
    if (out.ok() && out.response.status == kCmdOk) {
        journal_.back().acked = true;
        ++acked_;
        stats_.counter("acked_calls").inc();
    } else {
        stats_.counter("unacked_calls").inc();
    }
    return out;
}

bool
FailoverCoordinator::checkpointNow()
{
    if (failedOver_)
        return false;
    // All-or-nothing: drain into a scratch set, commit only when
    // every managed role delivered, so blobs + mark stay a
    // consistent cut.
    std::vector<std::vector<std::uint32_t>> drained(pairs_.size());
    for (std::size_t i = 0; i < pairs_.size(); ++i) {
        if (!fetchCheckpointBlob(primaryDriver_, pairs_[i].slot,
                                 &drained[i])) {
            stats_.counter("checkpoint_failures").inc();
            return false;
        }
    }
    for (std::size_t i = 0; i < pairs_.size(); ++i)
        pairs_[i].blob = std::move(drained[i]);
    // Everything journaled so far is covered by (or definitively
    // rejected before) this cut; only later entries need replay.
    journal_.clear();
    lastCheckpointAt_ = engine_.now();
    everCheckpointed_ = true;
    stats_.counter("checkpoints").inc();
    return true;
}

bool
FailoverCoordinator::failover()
{
    if (failedOver_)
        return false;
    const Tick last_alive = watchdog_->lastAliveAt();
    stats_.counter("failovers").inc();
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteRecovery(stats_.name(), "failover_started",
                          engine_.now());

    // Re-seed shell-level RBB state (module init, host queue
    // config) so the standby's shell matches a freshly-provisioned
    // card before role state lands on it.
    standbyDriver_.initializeAll();

    for (Pair &p : pairs_) {
        if (p.blob.empty())
            continue;  // never checkpointed: replay rebuilds from 0
        if (!pushCheckpointBlob(standbyDriver_, p.slot, p.blob)) {
            stats_.counter("restore_failures").inc();
            return false;
        }
    }

    // Replay the journal tail in issue order, acked or not:
    // at-least-once delivery closes the two-generals window.
    for (JournalEntry &e : journal_) {
        const CallOutcome out = standbyDriver_.callChecked(
            kRoleRbbIdBase, e.slot, e.code, e.data);
        if (!out.ok() || out.response.status != kCmdOk) {
            stats_.counter("replay_failures").inc();
            return false;
        }
        e.acked = true;
        stats_.counter("replayed_commands").inc();
    }

    failedOver_ = true;
    watchdog_ =
        std::make_unique<Watchdog>(engine_, standby_, cfg_.watchdog);
    if (!watchdog_->beat()) {
        stats_.counter("standby_unresponsive").inc();
        return false;
    }
    downtimeTicks_ =
        last_alive != 0 ? engine_.now() - last_alive : 0;
    stats_.counter("downtime_ticks").inc(downtimeTicks_);
    if (FlightRecorder *fdr = FlightRecorder::active())
        fdr->noteRecovery(stats_.name(), "failover_complete",
                          engine_.now());
    return true;
}

bool
FailoverCoordinator::poll()
{
    watchdog_->poll();
    if (failedOver_)
        return false;
    if (watchdog_->dead())
        return failover();
    // Don't attempt a drain while the card is suspect (missed
    // beats): every chunk call would burn a full retry ladder, and
    // the last good cut already covers the acked history.
    if (watchdog_->consecutiveMisses() == 0 &&
        (!everCheckpointed_ ||
         engine_.now() >= lastCheckpointAt_ + cfg_.checkpointInterval))
        checkpointNow();
    return false;
}

Cycles
FailoverCoordinator::downtimeCycles() const
{
    const Clock *clk = standby_.kernelClock();
    return clk != nullptr ? clk->ticksToCycles(downtimeTicks_)
                          : 0;
}

std::uint64_t
FailoverCoordinator::fingerprint() const
{
    std::uint64_t hash = 14695981039346656037ULL;
    const auto mix = [&hash](std::uint32_t w) {
        for (unsigned b = 0; b < 4; ++b) {
            hash ^= (w >> (8 * b)) & 0xff;
            hash *= 1099511628211ULL;
        }
    };
    for (const Pair &p : pairs_) {
        const Role *role = failedOver_ ? p.standby : p.primary;
        for (const std::uint32_t w : role->snapshot())
            mix(w);
    }
    return hash;
}

} // namespace harmonia
