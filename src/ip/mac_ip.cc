#include "ip/mac_ip.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/fault_plan.h"  // harmonia-lint: allow(LAYER-002) fault-injection hooks in vendor IP
#include "sim/clock.h"

namespace harmonia {

MacIp::MacIp(std::string name, Vendor vendor, Protocol protocol,
             unsigned gbps)
    : IpBlock(std::move(name), vendor, protocol, widthBitsFor(gbps),
              clockMhzFor(gbps)),
      gbps_(gbps), stats_(this->name())
{
}

unsigned
MacIp::widthBitsFor(unsigned gbps)
{
    // The paper: data width scales 128/512/2048 bits with 25/100/400G.
    switch (gbps) {
      case 25:
        return 128;
      case 100:
        return 512;
      case 400:
        return 2048;
      default:
        fatal("unsupported MAC line rate %uG (25/100/400 only)", gbps);
    }
}

double
MacIp::clockMhzFor(unsigned gbps)
{
    (void)gbps;
    return 322.265625;  // CMAC-class core clock; capacity > line rate
}

void
MacIp::txPush(const PacketDesc &pkt)
{
    if (!tx_.canPush())
        fatal("MAC '%s': txPush without txReady", name().c_str());
    tx_.push(pkt);
}

PacketDesc
MacIp::rxPop()
{
    if (rx_.empty())
        fatal("MAC '%s': rxPop with empty RX queue", name().c_str());
    return rx_.pop();
}

void
MacIp::injectRx(const PacketDesc &pkt, Tick when)
{
    arrive(pkt, when);
}

void
MacIp::arrive(const PacketDesc &pkt, Tick when)
{
    auto it = std::upper_bound(
        inFlight_.begin(), inFlight_.end(), when,
        [](Tick t, const auto &e) { return t < e.first; });
    inFlight_.insert(it, {when, pkt});
}

void
MacIp::tick()
{
    const Tick t = now();

    // Fault hook: a flapped link (level-triggered while the fault
    // window is open) stops the TX serializer and loses everything
    // arriving on the line side.
    const bool link_down =
        injectFault(FaultKind::LinkFlap, name(), t);
    if (link_down) {
        stats_.counter("link_down_ticks").inc();
        while (!inFlight_.empty() && inFlight_.front().first <= t) {
            stats_.counter("link_down_drops").inc();
            inFlight_.pop_front();
        }
        return;
    }

    // TX serialization at exactly line rate: the serializer may work
    // ahead within the current cycle so pacing is not quantized to
    // clock edges.
    const Tick window = t + (clock() ? clock()->period() : 1);
    if (txBusyUntil_ < t)
        txBusyUntil_ = t;
    while (tx_.canPop() && txBusyUntil_ < window) {
        PacketDesc pkt = tx_.pop();
        const Tick wt = wireTime(pkt.bytes, lineRateBps());
        txBusyUntil_ += wt;
        stats_.counter("tx_packets").inc();
        stats_.counter("tx_bytes").inc(pkt.bytes);
        if (loopback_)
            arrive(pkt, txBusyUntil_);
        else if (peer_)
            peer_->arrive(pkt, txBusyUntil_);
        // Unconnected line side: packet leaves the model.
    }

    // RX: packets whose last bit has arrived enter the RX queue. The
    // MAC checks the FCS: wire-corrupted packets (injected here or
    // upstream) are dropped and counted, exactly like hardware.
    while (!inFlight_.empty() && inFlight_.front().first <= t) {
        PacketDesc pkt = inFlight_.front().second;
        inFlight_.pop_front();
        if (injectFault(FaultKind::StreamBitFlip, name(), t))
            pkt.fcsError = true;
        if (pkt.fcsError) {
            stats_.counter("rx_bad_fcs").inc();
            continue;
        }
        if (!rx_.canPush()) {
            stats_.counter("rx_dropped").inc();
            continue;
        }
        rx_.push(pkt);
        stats_.counter("rx_packets").inc();
        stats_.counter("rx_bytes").inc(pkt.bytes);
    }
}

void
MacIp::reset()
{
    IpBlock::reset();
    tx_.clear();
    rx_.clear();
    inFlight_.clear();
    txBusyUntil_ = 0;
    stats_.resetAll();
}

void
MacIp::bindStatReg(const std::string &reg_name,
                   const std::string &stat_name)
{
    regs().onRead(regs().addrOf(reg_name),
                  [this, stat_name](std::uint32_t) {
                      return static_cast<std::uint32_t>(
                          stats_.value(stat_name));
                  });
}

XilinxCmac::XilinxCmac(unsigned gbps, const std::string &inst)
    : MacIp("xcmac_" + inst, Vendor::Xilinx, Protocol::Axi4Stream, gbps)
{
    // --- Register map (CMAC-style names, 32-bit space). ---
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("GT_RESET_REG");
    def("RESET_REG");
    def("CONFIGURATION_TX_REG1");
    def("CONFIGURATION_RX_REG1");
    def("CONFIGURATION_TX_FLOW_CONTROL_REG1");
    def("CONFIGURATION_RX_FLOW_CONTROL_REG1");
    def("CONFIGURATION_RSFEC_REG");
    def("CONFIGURATION_AN_CONTROL_REG1");
    def("GT_LOOPBACK_REG");
    def("TICK_REG");
    def("STAT_TX_STATUS", true);
    def("STAT_RX_STATUS", true);
    def("STAT_STATUS_REG1", true);
    def("STAT_TX_TOTAL_PACKETS", true);
    def("STAT_TX_TOTAL_BYTES", true);
    def("STAT_RX_TOTAL_PACKETS", true);
    def("STAT_RX_TOTAL_BYTES", true);
    def("STAT_RX_BAD_FCS", true);
    def("STAT_RX_DROPPED", true);
    def("STAT_AN_STATUS", true);

    // Enabling a direction brings its status lanes up (aligned).
    regs().onWrite(regs().addrOf("CONFIGURATION_RX_REG1"),
                   [this](std::uint32_t v) {
                       regs().poke(regs().addrOf("STAT_RX_STATUS"),
                                   v & 1);
                   });
    regs().onWrite(regs().addrOf("CONFIGURATION_TX_REG1"),
                   [this](std::uint32_t v) {
                       regs().poke(regs().addrOf("STAT_TX_STATUS"),
                                   v & 1);
                   });
    bindStatReg("STAT_TX_TOTAL_PACKETS", "tx_packets");
    bindStatReg("STAT_TX_TOTAL_BYTES", "tx_bytes");
    bindStatReg("STAT_RX_TOTAL_PACKETS", "rx_packets");
    bindStatReg("STAT_RX_TOTAL_BYTES", "rx_bytes");
    bindStatReg("STAT_RX_DROPPED", "rx_dropped");

    // --- Init recipe: reset, enable RX, wait for alignment, enable
    // TX, then flow control — the Figure 3d "shell A" pattern. ---
    addInitOp({RegOp::Kind::Write, "GT_RESET_REG", 1});
    addInitOp({RegOp::Kind::Write, "RESET_REG", 0});
    addInitOp({RegOp::Kind::Write, "CONFIGURATION_RX_REG1", 1});
    addInitOp({RegOp::Kind::WaitBit, "STAT_RX_STATUS", 1});
    addInitOp({RegOp::Kind::Write, "CONFIGURATION_TX_REG1", 1});
    addInitOp({RegOp::Kind::WaitBit, "STAT_TX_STATUS", 1});
    addInitOp(
        {RegOp::Kind::Write, "CONFIGURATION_TX_FLOW_CONTROL_REG1",
         0x3fff});
    addInitOp(
        {RegOp::Kind::Write, "CONFIGURATION_RX_FLOW_CONTROL_REG1", 0x3});
    addInitOp({RegOp::Kind::Read, "STAT_STATUS_REG1", 0});

    // --- Ports (AXI4-Stream + GT pins + DRP). ---
    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    port("rx_axis_tdata", Protocol::Axi4Stream, w, true);
    port("rx_axis_tkeep", Protocol::Axi4Stream, w / 8, true);
    port("rx_axis_tvalid", Protocol::Axi4Stream, 1, true);
    port("rx_axis_tlast", Protocol::Axi4Stream, 1, true);
    port("rx_axis_tuser", Protocol::Axi4Stream, 1, true);
    port("tx_axis_tdata", Protocol::Axi4Stream, w, false);
    port("tx_axis_tkeep", Protocol::Axi4Stream, w / 8, false);
    port("tx_axis_tvalid", Protocol::Axi4Stream, 1, false);
    port("tx_axis_tready", Protocol::Axi4Stream, 1, true);
    port("tx_axis_tlast", Protocol::Axi4Stream, 1, false);
    port("tx_axis_tuser", Protocol::Axi4Stream, 1, false);
    port("gt_txp_out", Protocol::Axi4Stream, 4, true);
    port("gt_rxp_in", Protocol::Axi4Stream, 4, false);
    port("gt_ref_clk", Protocol::Axi4Stream, 1, false);
    port("init_clk", Protocol::Axi4Stream, 1, false);
    port("usr_rx_reset", Protocol::Axi4Stream, 1, true);
    port("usr_tx_reset", Protocol::Axi4Stream, 1, true);
    port("stat_rx_aligned", Protocol::Axi4Stream, 1, true);
    port("pm_tick", Protocol::Axi4Stream, 1, false);
    port("drp_addr", Protocol::Axi4Lite, 10, false);
    port("drp_di", Protocol::Axi4Lite, 16, false);
    port("drp_do", Protocol::Axi4Lite, 16, true);
    port("drp_en", Protocol::Axi4Lite, 1, false);

    // --- Configuration items. Role-oriented: the few a role actually
    // selects; the rest are shell-oriented deployment detail. ---
    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("INSTANCE_RATE_GBPS", ConfigScope::RoleOriented,
        std::to_string(gbps).c_str());
    cfg("TDATA_WIDTH", ConfigScope::RoleOriented,
        std::to_string(w).c_str());
    cfg("RX_MAX_FRAME_SIZE", ConfigScope::ShellOriented, "9600");
    cfg("CAUI_MODE", ConfigScope::ShellOriented, "CAUI4");
    cfg("RSFEC_ENABLE", ConfigScope::ShellOriented, "1");
    cfg("TX_FLOW_CTRL_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("RX_FLOW_CTRL_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("AUTONEG_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("GT_REF_CLK_MHZ", ConfigScope::ShellOriented, "161.13");
    cfg("GT_LOCATION", ConfigScope::ShellOriented, "X0Y4");
    cfg("GT_DRP_CLK_MHZ", ConfigScope::ShellOriented, "100");
    cfg("TX_IPG_VALUE", ConfigScope::ShellOriented, "12");
    cfg("PREAMBLE_MODE", ConfigScope::ShellOriented, "standard");
    cfg("LANE_COUNT", ConfigScope::ShellOriented, "4");
    cfg("PIPELINE_STAGES", ConfigScope::ShellOriented, "2");
    cfg("RUNT_FILTER_ENABLE", ConfigScope::ShellOriented, "1");
    cfg("PTP_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("VLAN_DETECT_MODE", ConfigScope::ShellOriented, "none");
    cfg("GT_DIFFCTRL", ConfigScope::ShellOriented, "12");
    cfg("GT_POSTCURSOR", ConfigScope::ShellOriented, "10");
    cfg("GT_PRECURSOR", ConfigScope::ShellOriented, "0");
    cfg("GT_RXOUTCLK_SEL", ConfigScope::ShellOriented, "RXOUTCLKPMA");
    cfg("GT_TXOUTCLK_SEL", ConfigScope::ShellOriented, "TXOUTCLKPMA");
    cfg("RX_EQ_MODE", ConfigScope::ShellOriented, "AUTO");
    cfg("TX_DIFF_SWING", ConfigScope::ShellOriented, "800mV");
    cfg("STAT_HIST_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("TS_CLK_PERIOD", ConfigScope::ShellOriented, "3103");
    cfg("OTN_INTERFACE", ConfigScope::ShellOriented, "0");
    cfg("RX_GT_BUFFER", ConfigScope::ShellOriented, "1");
    cfg("TX_GT_BUFFER", ConfigScope::ShellOriented, "1");
    cfg("SIM_SPEEDUP", ConfigScope::ShellOriented, "0");
    cfg("AXIS_PIPELINE_REG", ConfigScope::ShellOriented, "1");
    cfg("ULTRASCALE_PLUS_ONLY", ConfigScope::ShellOriented, "1");
    cfg("ENABLE_PIPELINE_REG", ConfigScope::ShellOriented, "1");

    addDependency("cad_tool", "vivado-2023.2");
    addDependency("ip:cmac_usplus", "3.1");
    addDependency("gt_type", "GTY");

    // Resource footprint grows with the datapath width.
    const double scale = w / 512.0;
    setResources(ResourceVector{11200, 19400, 24, 0, 0}.scaled(
        0.5 + 0.5 * scale));
    setWorkload({820, 0, 0, 0});
}

IntelEtileMac::IntelEtileMac(unsigned gbps, const std::string &inst)
    : MacIp("ietile_" + inst, Vendor::Intel, Protocol::AvalonStream,
            gbps)
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("phy_config");
    def("tx_mac_control");
    def("rx_mac_control");
    def("tx_mac_frame_size");
    def("rx_mac_frame_size");
    def("pause_quanta");
    def("fec_mode");
    def("loopback_mode");
    def("phy_status", true);
    def("mac_status", true);
    def("cntr_tx_frames", true);
    def("cntr_tx_bytes", true);
    def("cntr_rx_frames", true);
    def("cntr_rx_bytes", true);
    def("cntr_rx_fcs_err", true);
    def("cntr_rx_discard", true);

    // The E-tile hard IP self-initializes: enabling the MAC brings the
    // PHY up without a software wait loop (Figure 3d "shell B").
    regs().onWrite(regs().addrOf("phy_config"),
                   [this](std::uint32_t v) {
                       regs().poke(regs().addrOf("phy_status"), v & 1);
                       regs().poke(regs().addrOf("mac_status"), v & 1);
                   });
    bindStatReg("cntr_tx_frames", "tx_packets");
    bindStatReg("cntr_tx_bytes", "tx_bytes");
    bindStatReg("cntr_rx_frames", "rx_packets");
    bindStatReg("cntr_rx_bytes", "rx_bytes");
    bindStatReg("cntr_rx_discard", "rx_dropped");

    addInitOp({RegOp::Kind::Write, "phy_config", 1});
    addInitOp({RegOp::Kind::Write, "tx_mac_control", 1});
    addInitOp({RegOp::Kind::Write, "rx_mac_control", 1});

    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    port("rx_data", Protocol::AvalonStream, w, true);
    port("rx_valid", Protocol::AvalonStream, 1, true);
    port("rx_startofpacket", Protocol::AvalonStream, 1, true);
    port("rx_endofpacket", Protocol::AvalonStream, 1, true);
    port("rx_empty", Protocol::AvalonStream, 6, true);
    port("rx_error", Protocol::AvalonStream, 6, true);
    port("tx_data", Protocol::AvalonStream, w, false);
    port("tx_valid", Protocol::AvalonStream, 1, false);
    port("tx_ready", Protocol::AvalonStream, 1, true);
    port("tx_startofpacket", Protocol::AvalonStream, 1, false);
    port("tx_endofpacket", Protocol::AvalonStream, 1, false);
    port("tx_empty", Protocol::AvalonStream, 6, false);
    port("tx_error", Protocol::AvalonStream, 1, false);
    port("tx_serial", Protocol::AvalonStream, 4, true);
    port("rx_serial", Protocol::AvalonStream, 4, false);
    port("clk_ref", Protocol::AvalonStream, 1, false);
    port("csr_clk", Protocol::AvalonMemoryMapped, 1, false);
    port("reconfig_address", Protocol::AvalonMemoryMapped, 21, false);
    port("reconfig_read", Protocol::AvalonMemoryMapped, 1, false);
    port("reconfig_write", Protocol::AvalonMemoryMapped, 1, false);
    port("reconfig_readdata", Protocol::AvalonMemoryMapped, 32, true);
    port("reconfig_writedata", Protocol::AvalonMemoryMapped, 32, false);

    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("line_rate_gbps", ConfigScope::RoleOriented,
        std::to_string(gbps).c_str());
    cfg("data_bus_width", ConfigScope::RoleOriented,
        std::to_string(w).c_str());
    cfg("max_frame_size", ConfigScope::ShellOriented, "9600");
    cfg("ehip_mode", ConfigScope::ShellOriented, "MAC+PCS");
    cfg("etile_fec_mode", ConfigScope::ShellOriented, "RS528");
    cfg("pma_adaptation_mode", ConfigScope::ShellOriented, "full");
    cfg("flow_control_mode", ConfigScope::ShellOriented, "none");
    cfg("ready_latency", ConfigScope::ShellOriented, "0");
    cfg("ptp_accuracy_mode", ConfigScope::ShellOriented, "off");
    cfg("dr_mode_enable", ConfigScope::ShellOriented, "0");
    cfg("rx_vlan_detect", ConfigScope::ShellOriented, "0");
    cfg("clk_ref_mhz", ConfigScope::ShellOriented, "156.25");
    cfg("reconfig_if_enable", ConfigScope::ShellOriented, "1");
    cfg("stats_clear_on_read", ConfigScope::ShellOriented, "0");
    cfg("pma_output_swing", ConfigScope::ShellOriented, "80");
    cfg("pma_pre_emphasis", ConfigScope::ShellOriented, "0");
    cfg("rsfec_clocking_mode", ConfigScope::ShellOriented, "internal");
    cfg("am_interval", ConfigScope::ShellOriented, "16383");
    cfg("tx_pld_fifo_depth", ConfigScope::ShellOriented, "256");
    cfg("rx_pld_fifo_depth", ConfigScope::ShellOriented, "256");
    cfg("txmac_saddr_ins", ConfigScope::ShellOriented, "0");
    cfg("rx_pause_daddr_check", ConfigScope::ShellOriented, "1");
    cfg("uniform_holdoff", ConfigScope::ShellOriented, "8");
    cfg("ipg_removed_per_am", ConfigScope::ShellOriented, "20");
    cfg("enforce_max_frame", ConfigScope::ShellOriented, "1");
    cfg("link_fault_mode", ConfigScope::ShellOriented, "bidirectional");
    cfg("tx_vlan_detection", ConfigScope::ShellOriented, "0");
    cfg("pfc_priorities", ConfigScope::ShellOriented, "8");
    cfg("ehip_rate_adapter", ConfigScope::ShellOriented, "fifo");

    addDependency("cad_tool", "quartus-23.4");
    addDependency("ip:etile_hip", "22.3");
    addDependency("tile_type", "E-tile");

    const double scale = w / 512.0;
    setResources(ResourceVector{9800, 17600, 28, 0, 0}.scaled(
        0.5 + 0.5 * scale));
    setWorkload({860, 0, 0, 0});
}

std::unique_ptr<MacIp>
makeMac(Vendor vendor, unsigned gbps, const std::string &inst)
{
    switch (vendor) {
      case Vendor::Xilinx:
      case Vendor::InHouse:  // in-house boards reuse the AXI family
        return std::make_unique<XilinxCmac>(gbps, inst);
      case Vendor::Intel:
        return std::make_unique<IntelEtileMac>(gbps, inst);
    }
    panic("unreachable vendor");
}

} // namespace harmonia
