#include "ip/catalog.h"

#include "common/logging.h"
#include "ip/dma_ip.h"
#include "ip/mac_ip.h"
#include "ip/memory_ip.h"

namespace harmonia {

const char *
toString(IpFunction f)
{
    switch (f) {
      case IpFunction::Mac:
        return "MAC";
      case IpFunction::Dma:
        return "DMA";
      case IpFunction::Ddr:
        return "DDR";
      case IpFunction::Hbm:
        return "HBM";
      case IpFunction::Pcie:
        return "PCIe";
      case IpFunction::Tlp:
        return "TLP";
    }
    return "?";
}

std::unique_ptr<IpBlock>
makeIpFor(IpFunction function, Vendor vendor)
{
    switch (function) {
      case IpFunction::Mac:
        return makeMac(vendor, 100);
      case IpFunction::Dma:
      case IpFunction::Pcie:
      case IpFunction::Tlp:
        return makeDma(vendor, 4, 16, 128);
      case IpFunction::Ddr:
        return makeMemory(vendor, PeripheralKind::Ddr4, 1);
      case IpFunction::Hbm:
        // Intel has no modelled HBM controller; Fig 3b compares the
        // DDR-class controllers for the memory row instead.
        return makeMemory(Vendor::Xilinx, PeripheralKind::Hbm, 32);
    }
    panic("unreachable IP function");
}

PropertyDiff
crossVendorDiff(IpFunction function)
{
    auto a = makeIpFor(function, Vendor::Xilinx);
    auto b = makeIpFor(function, Vendor::Intel);
    return propertyDiff(*a, *b);
}

std::vector<IpFunction>
fig3bFunctions()
{
    return {IpFunction::Ddr, IpFunction::Tlp, IpFunction::Dma,
            IpFunction::Pcie, IpFunction::Mac};
}

} // namespace harmonia
