/**
 * @file
 * PCIe DMA engine IP models: the Xilinx QDMA-style engine (AXI,
 * descriptor-context init, up to 2K queues) and the Intel MCDMA-style
 * engine (Avalon, channel-based init). Both move buffers between host
 * and FPGA at the PCIe link rate with TLP framing efficiency, and both
 * expose a dedicated control channel used by Harmonia's command
 * transport (§3.3.3).
 */

#ifndef HARMONIA_IP_DMA_IP_H_
#define HARMONIA_IP_DMA_IP_H_

#include <deque>
#include <memory>

#include "common/packet.h"
#include "common/stats.h"
#include "ip/ip_block.h"
#include "rtl/fifo.h"

namespace harmonia {

/**
 * DMA engine instance styles (§3.3.2): a BDMA-style bulk engine
 * batches descriptors and moves big buffers with large payloads; an
 * SGDMA-style engine handles discrete scatter/gather transfers with
 * standard payloads but lower setup latency.
 */
enum class DmaEngineStyle {
    Bulk,           ///< BDMA: large payloads, batched descriptors
    ScatterGather,  ///< SGDMA: discrete transfers
};

const char *toString(DmaEngineStyle style);

/** Direction of a DMA transfer. */
enum class DmaDir {
    H2C,  ///< host to card
    C2H,  ///< card to host
};

/** One DMA transfer request. */
struct DmaRequest {
    DmaDir dir = DmaDir::H2C;
    std::uint16_t queue = 0;
    std::uint32_t bytes = 0;
    Tick issued = 0;
    std::uint64_t id = 0;
    bool control = false;  ///< command-channel traffic (isolated)
};

/** A finished DMA transfer. */
struct DmaCompletion {
    DmaRequest request;
    Tick completed = 0;

    Tick latency() const { return completed - request.issued; }
};

/**
 * Base DMA model: per-queue request FIFOs, round-robin service at
 * link bandwidth x TLP efficiency, and a strictly prioritized control
 * channel so command traffic never queues behind bulk data.
 */
class DmaIp : public IpBlock {
  public:
    DmaIp(std::string name, Vendor vendor, Protocol protocol,
          unsigned pcie_gen, unsigned lanes, unsigned num_queues,
          DmaEngineStyle style = DmaEngineStyle::ScatterGather);

    DmaEngineStyle style() const { return style_; }

    /** Payload bytes per TLP-equivalent burst for this instance. */
    std::uint32_t maxPayload() const { return maxPayload_; }

    /** Instance-aware payload efficiency (style-dependent). */
    double payloadEfficiency(std::uint32_t bytes) const;

    unsigned pcieGen() const { return gen_; }
    unsigned lanes() const { return lanes_; }
    unsigned numQueues() const { return numQueues_; }

    /** Link bandwidth in bytes/second (all lanes, after encoding). */
    double linkBandwidth() const;

    /** Payload efficiency of a transfer given TLP framing. */
    static double tlpEfficiency(std::uint32_t bytes);

    /** Base request-to-completion latency added by the link + engine. */
    Tick baseLatency() const;

    /** Post a request; false when the target queue is full. */
    bool post(const DmaRequest &req);

    bool hasCompletion() const { return !completions_.empty(); }
    DmaCompletion popCompletion();

    /** Occupancy of one queue (monitoring). */
    std::size_t queueDepth(std::uint16_t queue) const;

    void tick() override;
    void reset() override;

    /** No queued work and nothing on the link due yet. */
    bool idle() const override
    {
        return controlQueue_.empty() && pendingData_ == 0 &&
               (inFlight_.empty() || inFlight_.front().first > now());
    }

    /** Earliest in-flight transfer completion. */
    Tick wakeTime() const override
    {
        return inFlight_.empty() ? kTickMax : inFlight_.front().first;
    }

    StatGroup &stats() { return stats_; }

    /** PCIe data width in bits for a generation (doubles per gen). */
    static unsigned widthBitsFor(unsigned gen);

    /** User-clock MHz for a generation. */
    static double clockMhzFor(unsigned gen);

  protected:
    void bindStatReg(const std::string &reg_name,
                     const std::string &stat_name);

  private:
    void finish(const DmaRequest &req, Tick when);

    unsigned gen_;
    unsigned lanes_;
    unsigned numQueues_;
    DmaEngineStyle style_;
    std::uint32_t maxPayload_ = 256;
    Tick styleLatency_ = 0;
    std::vector<Fifo<DmaRequest>> queues_;
    Fifo<DmaRequest> controlQueue_{32};
    std::deque<std::pair<Tick, DmaCompletion>> inFlight_;
    Fifo<DmaCompletion> completions_{4096};
    Tick busBusyUntil_ = 0;
    std::size_t rrNext_ = 0;
    std::size_t pendingData_ = 0;  ///< requests staged in queues_
    StatGroup stats_;
};

/** Xilinx QDMA-style engine. */
class XilinxQdma : public DmaIp {
  public:
    XilinxQdma(unsigned pcie_gen, unsigned lanes, unsigned num_queues,
               const std::string &inst = "qdma0",
               DmaEngineStyle style = DmaEngineStyle::ScatterGather);
};

/** Intel MCDMA-style engine. */
class IntelMcdma : public DmaIp {
  public:
    IntelMcdma(unsigned pcie_gen, unsigned lanes, unsigned num_queues,
               const std::string &inst = "mcdma0",
               DmaEngineStyle style = DmaEngineStyle::ScatterGather);
};

/** Build the right DMA model for a chip vendor. */
std::unique_ptr<DmaIp>
makeDma(Vendor chip_vendor, unsigned pcie_gen, unsigned lanes,
        unsigned num_queues, const std::string &inst = "dma0",
        DmaEngineStyle style = DmaEngineStyle::ScatterGather);

} // namespace harmonia

#endif // HARMONIA_IP_DMA_IP_H_
