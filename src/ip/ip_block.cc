#include "ip/ip_block.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace harmonia {

void
RegisterFile::define(const RegisterDesc &desc, std::uint32_t init)
{
    if (regs_.count(desc.addr))
        fatal("register address 0x%llx already defined",
              static_cast<unsigned long long>(desc.addr));
    if (byName_.count(desc.name))
        fatal("register name '%s' already defined", desc.name.c_str());
    Slot slot;
    slot.desc = desc;
    slot.value = init;
    regs_.emplace(desc.addr, std::move(slot));
    byName_.emplace(desc.name, desc.addr);
}

const RegisterFile::Slot &
RegisterFile::slotAt(Addr addr) const
{
    auto it = regs_.find(addr);
    if (it == regs_.end())
        fatal("access to undefined register 0x%llx",
              static_cast<unsigned long long>(addr));
    return it->second;
}

RegisterFile::Slot &
RegisterFile::slotAt(Addr addr)
{
    return const_cast<Slot &>(
        static_cast<const RegisterFile *>(this)->slotAt(addr));
}

std::uint32_t
RegisterFile::read(Addr addr) const
{
    const Slot &s = slotAt(addr);
    if (s.readFn)
        return s.readFn(s.value);
    return s.value;
}

void
RegisterFile::write(Addr addr, std::uint32_t value)
{
    Slot &s = slotAt(addr);
    if (s.desc.readOnly)
        fatal("write to read-only register '%s'", s.desc.name.c_str());
    s.value = value;
    if (s.writeFn)
        s.writeFn(value);
}

std::uint32_t
RegisterFile::readByName(const std::string &name) const
{
    return read(addrOf(name));
}

void
RegisterFile::writeByName(const std::string &name, std::uint32_t value)
{
    write(addrOf(name), value);
}

void
RegisterFile::onRead(Addr addr, ReadHandler fn)
{
    slotAt(addr).readFn = std::move(fn);
}

void
RegisterFile::onWrite(Addr addr, WriteHandler fn)
{
    slotAt(addr).writeFn = std::move(fn);
}

void
RegisterFile::poke(Addr addr, std::uint32_t value)
{
    slotAt(addr).value = value;
}

std::uint32_t
RegisterFile::peek(Addr addr) const
{
    return slotAt(addr).value;
}

bool
RegisterFile::contains(Addr addr) const
{
    return regs_.count(addr) != 0;
}

Addr
RegisterFile::addrOf(const std::string &name) const
{
    auto it = byName_.find(name);
    if (it == byName_.end())
        fatal("unknown register '%s'", name.c_str());
    return it->second;
}

std::vector<RegisterDesc>
RegisterFile::descriptors() const
{
    std::vector<RegisterDesc> out;
    out.reserve(regs_.size());
    for (const auto &[addr, slot] : regs_)
        out.push_back(slot.desc);
    return out;
}

IpBlock::IpBlock(std::string name, Vendor vendor, Protocol data_protocol,
                 unsigned data_width_bits, double clock_mhz)
    : Component(std::move(name)), vendor_(vendor),
      dataProtocol_(data_protocol), dataWidthBits_(data_width_bits),
      clockMhz_(clock_mhz)
{
    if (data_width_bits == 0 || data_width_bits % 8 != 0)
        fatal("IP '%s': data width %u is not a whole number of bytes",
              this->name().c_str(), data_width_bits);
}

std::vector<std::string>
IpBlock::roleOrientedConfigs() const
{
    std::vector<std::string> out;
    for (const ConfigItem &c : configs_)
        if (c.scope == ConfigScope::RoleOriented)
            out.push_back(c.name);
    return out;
}

std::size_t
IpBlock::applyInitSequence()
{
    std::size_t ops = 0;
    for (const RegOp &op : initSeq_) {
        const Addr addr = regs_.addrOf(op.regName);
        switch (op.kind) {
          case RegOp::Kind::Write:
            regs_.write(addr, op.value);
            break;
          case RegOp::Kind::Read:
            (void)regs_.read(addr);
            break;
          case RegOp::Kind::WaitBit:
            // The model's status bits settle immediately; hardware
            // would poll here, which still counts as one software op.
            (void)regs_.read(addr);
            break;
        }
        ++ops;
    }
    initialized_ = true;
    return ops;
}

void
IpBlock::reset()
{
    initialized_ = false;
}

void
IpBlock::addConfig(ConfigItem item)
{
    configs_.push_back(std::move(item));
}

void
IpBlock::addPort(PortDesc port)
{
    ports_.push_back(std::move(port));
}

void
IpBlock::addInitOp(RegOp op)
{
    initSeq_.push_back(std::move(op));
}

void
IpBlock::addDependency(const std::string &key, const std::string &value)
{
    deps_[key] = value;
}

PropertyDiff
propertyDiff(const IpBlock &a, const IpBlock &b)
{
    auto symmetricDiff = [](const std::set<std::string> &x,
                            const std::set<std::string> &y) {
        std::size_t n = 0;
        for (const auto &e : x)
            if (!y.count(e))
                ++n;
        for (const auto &e : y)
            if (!x.count(e))
                ++n;
        return n;
    };

    std::set<std::string> pa, pb;
    for (const PortDesc &p : a.ports())
        pa.insert(p.name);
    for (const PortDesc &p : b.ports())
        pb.insert(p.name);

    std::set<std::string> ca, cb;
    for (const ConfigItem &c : a.configItems())
        ca.insert(c.name);
    for (const ConfigItem &c : b.configItems())
        cb.insert(c.name);

    return {symmetricDiff(pa, pb), symmetricDiff(ca, cb)};
}

std::size_t
migrationRegOps(const IpBlock &from, const IpBlock &to)
{
    // Ops the new device needs that the old recipe lacks must be
    // added; ops the old recipe had that no longer exist must be
    // removed; ops present in both but at a different position or with
    // a different value must be audited/changed. Computed as the ops
    // outside the longest common subsequence of the two recipes.
    const auto &f = from.initSequence();
    const auto &t = to.initSequence();
    std::vector<std::vector<std::size_t>> lcs(
        f.size() + 1, std::vector<std::size_t>(t.size() + 1, 0));
    for (std::size_t i = 1; i <= f.size(); ++i) {
        for (std::size_t j = 1; j <= t.size(); ++j) {
            if (f[i - 1] == t[j - 1])
                lcs[i][j] = lcs[i - 1][j - 1] + 1;
            else
                lcs[i][j] = std::max(lcs[i - 1][j], lcs[i][j - 1]);
        }
    }
    const std::size_t common = lcs[f.size()][t.size()];
    return (f.size() - common) + (t.size() - common);
}

} // namespace harmonia
