/**
 * @file
 * Ethernet MAC IP models. Two vendor families with genuinely different
 * interfaces, register maps, configuration inventories and init
 * recipes: the Xilinx CMAC-style core (AXI4-Stream, reset + align-wait
 * init) and the Intel E-tile-style core (Avalon-ST, self-initializing
 * — the Figure 3d "shell B" behaviour). Both serialize packets at
 * line rate with Ethernet framing overhead.
 */

#ifndef HARMONIA_IP_MAC_IP_H_
#define HARMONIA_IP_MAC_IP_H_

#include <deque>
#include <memory>

#include "common/packet.h"
#include "common/stats.h"
#include "ip/ip_block.h"
#include "rtl/fifo.h"

namespace harmonia {

/**
 * Base MAC model: a TX serializer and an RX queue at a configurable
 * line rate (25/100/400G). The link side either loops back (the
 * paper's QSFP RX-TX loop test) or connects to a peer MAC.
 */
class MacIp : public IpBlock {
  public:
    MacIp(std::string name, Vendor vendor, Protocol protocol,
          unsigned gbps);

    unsigned gbps() const { return gbps_; }
    double lineRateBps() const { return gbps_ * 1e9; }

    /** Shell-side TX: is the MAC accepting another packet? */
    bool txReady() const { return tx_.canPush(); }
    void txPush(const PacketDesc &pkt);

    /** Shell-side RX. */
    bool rxAvailable() const { return !rx_.empty(); }
    PacketDesc rxPop();

    /** Loop TX back into local RX (QSFP loopback test). */
    void setLoopback(bool on) { loopback_ = on; }

    /** Connect the line side to a peer MAC (two-server setup). */
    void connectPeer(MacIp *peer) { peer_ = peer; }

    /**
     * Line-side packet arrival: what a switch port would deliver.
     * Traffic generators and testbenches source RX traffic with this.
     */
    void injectRx(const PacketDesc &pkt, Tick when);

    void tick() override;
    void reset() override;

    /** Nothing to serialize and nothing arriving yet. (When a fault
     *  plan is armed the engine never skips ticks, so the per-tick
     *  LinkFlap hook still fires on schedule.) */
    bool idle() const override
    {
        return tx_.empty() &&
               (inFlight_.empty() || inFlight_.front().first > now());
    }

    /** Next line-side arrival. */
    Tick wakeTime() const override
    {
        return inFlight_.empty() ? kTickMax : inFlight_.front().first;
    }

    StatGroup &stats() { return stats_; }

    /** Data width in bits for a given line rate (paper §3.3.1). */
    static unsigned widthBitsFor(unsigned gbps);

    /** Core clock in MHz for a given line rate. */
    static double clockMhzFor(unsigned gbps);

  protected:
    /** Populate the stats registers common to both vendors' models. */
    void bindStatReg(const std::string &reg_name,
                     const std::string &stat_name);

  private:
    void arrive(const PacketDesc &pkt, Tick when);

    unsigned gbps_;
    Fifo<PacketDesc> tx_{64};
    Fifo<PacketDesc> rx_{64};
    std::deque<std::pair<Tick, PacketDesc>> inFlight_;
    Tick txBusyUntil_ = 0;
    bool loopback_ = false;
    MacIp *peer_ = nullptr;
    StatGroup stats_;
};

/** Xilinx CMAC-style MAC: AXI4-Stream, explicit align-wait init. */
class XilinxCmac : public MacIp {
  public:
    explicit XilinxCmac(unsigned gbps, const std::string &inst = "cmac0");
};

/** Intel E-tile-style MAC: Avalon-ST, self-initializing datapath. */
class IntelEtileMac : public MacIp {
  public:
    explicit IntelEtileMac(unsigned gbps,
                           const std::string &inst = "etile0");
};

/** Build the right MAC model for a vendor (in-house boards use the
 *  Xilinx-interface family, as the paper's devices B/C do for their
 *  respective chips). */
std::unique_ptr<MacIp> makeMac(Vendor vendor, unsigned gbps,
                               const std::string &inst = "mac0");

} // namespace harmonia

#endif // HARMONIA_IP_MAC_IP_H_
