#include "ip/memory_ip.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/clock.h"

namespace harmonia {

namespace {
// Open-row timing (DDR4-2400-class): precharge + activate on a row
// miss, CAS latency pipelined behind the data bus on hits.
constexpr Tick kRowMissPenalty = 30'000;  // tRP + tRCD, 30 ns
constexpr Tick kCasLatency = 15'000;      // tCL, 15 ns
} // namespace

MemoryIp::MemoryIp(std::string name, Vendor vendor, Protocol protocol,
                   PeripheralKind kind, unsigned channels)
    : IpBlock(std::move(name), vendor, protocol,
              kind == PeripheralKind::Hbm ? 256 : 512,
              kind == PeripheralKind::Hbm ? 450.0 : 300.0),
      kind_(kind), numChannels_(channels), stats_(this->name())
{
    if (classOf(kind) != PeripheralClass::Memory)
        fatal("MemoryIp built with non-memory peripheral kind");
    if (channels == 0 || channels > 64)
        fatal("memory channel count %u out of range (1..64)", channels);
    channels_.resize(channels);
    for (auto &ch : channels_)
        ch.openRow.assign(kBanks, -1);
}

double
MemoryIp::channelBandwidth() const
{
    if (kind_ == PeripheralKind::Hbm)
        return unitBandwidth(kind_) / 32.0;  // per pseudo-channel
    return unitBandwidth(kind_);
}

std::uint32_t
MemoryIp::burstBytes() const
{
    return kind_ == PeripheralKind::Hbm ? 32 : 64;
}

std::uint32_t
MemoryIp::rowBytes() const
{
    return kind_ == PeripheralKind::Hbm ? 2048 : 8192;
}

bool
MemoryIp::post(unsigned channel, const MemRequest &req)
{
    if (channel >= numChannels_)
        fatal("memory '%s': channel %u out of range (%u)",
              name().c_str(), channel, numChannels_);
    if (req.bytes == 0)
        fatal("memory request of zero bytes");
    if (!channels_[channel].queue.canPush()) {
        stats_.counter("rejected").inc();
        return false;
    }
    channels_[channel].queue.push(req);
    return true;
}

MemCompletion
MemoryIp::popCompletion()
{
    if (completions_.empty())
        fatal("memory '%s': popCompletion with none pending",
              name().c_str());
    return completions_.pop();
}

std::size_t
MemoryIp::queueDepth(unsigned channel) const
{
    if (channel >= numChannels_)
        fatal("queueDepth: channel %u out of range", channel);
    return channels_[channel].queue.size();
}

void
MemoryIp::tick()
{
    const Tick t = now();

    // Channels work ahead within the current cycle so service is not
    // quantized to clock edges.
    const Tick window = t + (clock() ? clock()->period() : 1);
    for (auto &ch : channels_) {
        if (ch.busBusyUntil < t)
            ch.busBusyUntil = t;
        while (ch.queue.canPop() && ch.busBusyUntil < window) {
            MemRequest req = ch.queue.pop();

            const std::uint64_t row_index = req.addr / rowBytes();
            const unsigned bank =
                static_cast<unsigned>(row_index % kBanks);
            const auto row =
                static_cast<std::int64_t>(row_index / kBanks);

            Tick occupancy = 0;
            if (ch.openRow[bank] != row) {
                occupancy += kRowMissPenalty;
                ch.openRow[bank] = row;
                stats_.counter("row_misses").inc();
            } else {
                stats_.counter("row_hits").inc();
            }
            const std::uint32_t moved =
                std::max(req.bytes, burstBytes());
            occupancy += static_cast<Tick>(
                moved / channelBandwidth() * kTicksPerSecond);
            ch.busBusyUntil += occupancy;

            MemCompletion c{req, ch.busBusyUntil + kCasLatency};
            auto it = std::upper_bound(
                inFlight_.begin(), inFlight_.end(), c.completed,
                [](Tick x, const auto &e) { return x < e.first; });
            inFlight_.insert(it, {c.completed, c});

            stats_.counter(req.write ? "writes" : "reads").inc();
            stats_.counter("bytes").inc(req.bytes);
        }
    }

    while (!inFlight_.empty() && inFlight_.front().first <= t) {
        if (!completions_.canPush())
            break;
        completions_.push(inFlight_.front().second);
        inFlight_.pop_front();
    }
}

void
MemoryIp::reset()
{
    IpBlock::reset();
    for (auto &ch : channels_) {
        ch.queue.clear();
        ch.busBusyUntil = 0;
        ch.openRow.assign(kBanks, -1);
    }
    inFlight_.clear();
    completions_.clear();
    stats_.resetAll();
}

void
MemoryIp::storeWrite(Addr addr, const std::vector<std::uint8_t> &data)
{
    for (std::size_t i = 0; i < data.size(); ++i) {
        const Addr byte = addr + i;
        const Addr page = byte / kPageSize;
        auto &store = pages_[page];
        if (store.empty())
            store.assign(kPageSize, 0);
        store[byte % kPageSize] = data[i];
    }
}

std::vector<std::uint8_t>
MemoryIp::storeRead(Addr addr, std::size_t len)
{
    std::vector<std::uint8_t> out(len, 0);
    for (std::size_t i = 0; i < len; ++i) {
        const Addr byte = addr + i;
        auto it = pages_.find(byte / kPageSize);
        if (it != pages_.end())
            out[i] = it->second[byte % kPageSize];
    }
    return out;
}

void
MemoryIp::bindStatReg(const std::string &reg_name,
                      const std::string &stat_name)
{
    regs().onRead(regs().addrOf(reg_name),
                  [this, stat_name](std::uint32_t) {
                      return static_cast<std::uint32_t>(
                          stats_.value(stat_name));
                  });
}

XilinxMigDdr4::XilinxMigDdr4(unsigned channels, const std::string &inst)
    : MemoryIp("xmig_" + inst, Vendor::Xilinx,
               Protocol::Axi4MemoryMapped, PeripheralKind::Ddr4,
               channels)
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("MIG_CTRL");
    def("ECC_EN");
    def("REF_INTERVAL");
    def("ADDR_MODE");
    def("ZQ_CAL_CTRL");
    def("INIT_CALIB_COMPLETE", true);
    def("ECC_STATUS", true);
    def("STAT_RD_OPS", true);
    def("STAT_WR_OPS", true);
    def("STAT_RD_BYTES", true);
    def("STAT_ROW_HITS", true);
    def("STAT_ROW_MISSES", true);
    def("TEMP_MON", true);

    // Calibration auto-completes in the model.
    regs().poke(regs().addrOf("INIT_CALIB_COMPLETE"), 1);
    bindStatReg("STAT_RD_OPS", "reads");
    bindStatReg("STAT_WR_OPS", "writes");
    bindStatReg("STAT_RD_BYTES", "bytes");
    bindStatReg("STAT_ROW_HITS", "row_hits");
    bindStatReg("STAT_ROW_MISSES", "row_misses");

    addInitOp({RegOp::Kind::WaitBit, "INIT_CALIB_COMPLETE", 1});
    addInitOp({RegOp::Kind::Write, "ECC_EN", 1});
    addInitOp({RegOp::Kind::Write, "REF_INTERVAL", 7800});
    addInitOp({RegOp::Kind::Write, "ADDR_MODE", 0x2});
    addInitOp({RegOp::Kind::Write, "MIG_CTRL", 1});
    addInitOp({RegOp::Kind::Read, "ECC_STATUS", 0});

    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    port("s_axi_awaddr", Protocol::Axi4MemoryMapped, 33, false);
    port("s_axi_awlen", Protocol::Axi4MemoryMapped, 8, false);
    port("s_axi_wdata", Protocol::Axi4MemoryMapped, w, false);
    port("s_axi_wstrb", Protocol::Axi4MemoryMapped, w / 8, false);
    port("s_axi_bresp", Protocol::Axi4MemoryMapped, 2, true);
    port("s_axi_araddr", Protocol::Axi4MemoryMapped, 33, false);
    port("s_axi_arlen", Protocol::Axi4MemoryMapped, 8, false);
    port("s_axi_rdata", Protocol::Axi4MemoryMapped, w, true);
    port("s_axi_rresp", Protocol::Axi4MemoryMapped, 2, true);
    port("ddr4_adr", Protocol::Axi4MemoryMapped, 17, true);
    port("ddr4_ba", Protocol::Axi4MemoryMapped, 2, true);
    port("ddr4_bg", Protocol::Axi4MemoryMapped, 2, true);
    port("ddr4_dq", Protocol::Axi4MemoryMapped, 64, true);
    port("ddr4_dqs", Protocol::Axi4MemoryMapped, 8, true);
    port("sys_clk_p", Protocol::Axi4MemoryMapped, 1, false);
    port("c0_init_calib_complete", Protocol::Axi4MemoryMapped, 1, true);

    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("CHANNEL_COUNT", ConfigScope::RoleOriented,
        std::to_string(channels).c_str());
    cfg("DATA_WIDTH", ConfigScope::RoleOriented, "512");
    cfg("MEMORY_SIZE_GB", ConfigScope::ShellOriented, "16");
    cfg("SPEED_BIN", ConfigScope::ShellOriented, "DDR4-2400");
    cfg("CAS_LATENCY", ConfigScope::ShellOriented, "17");
    cfg("ECC_MODE", ConfigScope::ShellOriented, "sideband");
    cfg("ADDR_MAPPING", ConfigScope::ShellOriented, "ROW_BANK_COL");
    cfg("REFRESH_MODE", ConfigScope::ShellOriented, "1x");
    cfg("SELF_REFRESH", ConfigScope::ShellOriented, "0");
    cfg("DQ_WIDTH", ConfigScope::ShellOriented, "72");
    cfg("CLAMSHELL", ConfigScope::ShellOriented, "0");
    cfg("DM_DBI", ConfigScope::ShellOriented, "DM_NO_DBI");
    cfg("CLKFBOUT_MULT", ConfigScope::ShellOriented, "8");
    cfg("DIVCLK_DIVIDE", ConfigScope::ShellOriented, "1");
    cfg("CLKOUT0_DIVIDE", ConfigScope::ShellOriented, "4");
    cfg("SLOT_CONFIG", ConfigScope::ShellOriented, "single");
    cfg("ODT_CONFIG", ConfigScope::ShellOriented, "RZQ6");
    cfg("OUTPUT_DRV", ConfigScope::ShellOriented, "RZQ7");
    cfg("RTT_NOM", ConfigScope::ShellOriented, "RZQ6");
    cfg("RTT_WR", ConfigScope::ShellOriented, "dynamic_off");
    cfg("CHIP_SELECT", ConfigScope::ShellOriented, "1");
    cfg("TEMP_MONITOR", ConfigScope::ShellOriented, "1");
    cfg("RESTORE_CRC", ConfigScope::ShellOriented, "0");
    cfg("SAVE_RESTORE", ConfigScope::ShellOriented, "0");
    cfg("PHY_RATIO", ConfigScope::ShellOriented, "4to1");
    cfg("AUTO_PRECHARGE", ConfigScope::ShellOriented, "0");
    cfg("USER_REFRESH", ConfigScope::ShellOriented, "0");
    cfg("MIGRATION_MODE", ConfigScope::ShellOriented, "0");

    addDependency("cad_tool", "vivado-2023.2");
    addDependency("ip:ddr4", "2.2");

    setResources(ResourceVector{18200, 24100, 25, 0, 3}.scaled(
        static_cast<double>(channels)));
    setWorkload({560, 0, 0, 0});
}

IntelEmifDdr4::IntelEmifDdr4(unsigned channels, const std::string &inst)
    : MemoryIp("iemif_" + inst, Vendor::Intel,
               Protocol::AvalonMemoryMapped, PeripheralKind::Ddr4,
               channels)
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("emif_ctrl");
    def("ecc_enable");
    def("refresh_rate");
    def("addr_order");
    def("cal_control");
    def("afi_cal_success", true);
    def("ecc_status", true);
    def("cntr_reads", true);
    def("cntr_writes", true);
    def("cntr_bytes", true);
    def("cntr_page_hits", true);
    def("emif_status", true);

    regs().onWrite(regs().addrOf("cal_control"),
                   [this](std::uint32_t v) {
                       regs().poke(regs().addrOf("afi_cal_success"),
                                   v & 1);
                   });
    bindStatReg("cntr_reads", "reads");
    bindStatReg("cntr_writes", "writes");
    bindStatReg("cntr_bytes", "bytes");
    bindStatReg("cntr_page_hits", "row_hits");

    addInitOp({RegOp::Kind::Write, "cal_control", 1});
    addInitOp({RegOp::Kind::WaitBit, "afi_cal_success", 1});
    addInitOp({RegOp::Kind::Write, "ecc_enable", 1});
    addInitOp({RegOp::Kind::Write, "addr_order", 0x1});
    addInitOp({RegOp::Kind::Write, "emif_ctrl", 1});

    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    port("amm_address", Protocol::AvalonMemoryMapped, 27, false);
    port("amm_burstcount", Protocol::AvalonMemoryMapped, 7, false);
    port("amm_writedata", Protocol::AvalonMemoryMapped, w, false);
    port("amm_byteenable", Protocol::AvalonMemoryMapped, w / 8, false);
    port("amm_readdata", Protocol::AvalonMemoryMapped, w, true);
    port("amm_readdatavalid", Protocol::AvalonMemoryMapped, 1, true);
    port("amm_waitrequest", Protocol::AvalonMemoryMapped, 1, true);
    port("mem_ck", Protocol::AvalonMemoryMapped, 1, true);
    port("mem_a", Protocol::AvalonMemoryMapped, 17, true);
    port("mem_ba", Protocol::AvalonMemoryMapped, 2, true);
    port("mem_dq", Protocol::AvalonMemoryMapped, 64, true);
    port("pll_ref_clk", Protocol::AvalonMemoryMapped, 1, false);
    port("local_cal_success", Protocol::AvalonMemoryMapped, 1, true);

    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("channel_count", ConfigScope::RoleOriented,
        std::to_string(channels).c_str());
    cfg("avmm_data_width", ConfigScope::RoleOriented, "512");
    cfg("mem_capacity_gb", ConfigScope::ShellOriented, "16");
    cfg("memory_protocol", ConfigScope::ShellOriented, "DDR4");
    cfg("speed_grade", ConfigScope::ShellOriented, "2400");
    cfg("ecc_policy", ConfigScope::ShellOriented, "inline");
    cfg("bank_interleave", ConfigScope::ShellOriented, "enabled");
    cfg("refresh_policy", ConfigScope::ShellOriented, "auto");
    cfg("io_standard", ConfigScope::ShellOriented, "SSTL-12");
    cfg("ck_width", ConfigScope::ShellOriented, "1");
    cfg("pll_ref_clk_mhz", ConfigScope::ShellOriented, "133.33");
    cfg("mem_clk_mhz", ConfigScope::ShellOriented, "1200");
    cfg("rank_count", ConfigScope::ShellOriented, "1");
    cfg("dqs_tracking", ConfigScope::ShellOriented, "1");
    cfg("periodic_recal", ConfigScope::ShellOriented, "1");
    cfg("cal_address_mode", ConfigScope::ShellOriented, "skip");
    cfg("ac_parity", ConfigScope::ShellOriented, "0");
    cfg("alert_n_use", ConfigScope::ShellOriented, "1");
    cfg("mem_odt", ConfigScope::ShellOriented, "RZQ6");
    cfg("output_drive", ConfigScope::ShellOriented, "RZQ7");
    cfg("rd_preamble", ConfigScope::ShellOriented, "1tCK");
    cfg("wr_preamble", ConfigScope::ShellOriented, "1tCK");
    cfg("fine_refresh", ConfigScope::ShellOriented, "fixed_1x");
    cfg("addr_mirroring", ConfigScope::ShellOriented, "0");
    cfg("hmc_mode", ConfigScope::ShellOriented, "hard");

    addDependency("cad_tool", "quartus-23.4");
    addDependency("ip:emif", "22.3");

    setResources(ResourceVector{16900, 22300, 28, 0, 2}.scaled(
        static_cast<double>(channels)));
    setWorkload({580, 0, 0, 0});
}

XilinxHbm::XilinxHbm(const std::string &inst)
    : MemoryIp("xhbm_" + inst, Vendor::Xilinx,
               Protocol::Axi4MemoryMapped, PeripheralKind::Hbm, 32)
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("HBM_CTRL");
    def("APB_CTRL");
    def("ADDR_INTERLEAVE");
    def("ECC_CTRL");
    def("REF_MODE");
    def("APB_COMPLETE", true);
    def("HBM_TEMP", true);
    def("STAT_RD_OPS", true);
    def("STAT_WR_OPS", true);
    def("STAT_BYTES", true);
    def("STAT_BANK_CONFLICTS", true);
    def("CATTRIP_STATUS", true);

    regs().onWrite(regs().addrOf("APB_CTRL"),
                   [this](std::uint32_t v) {
                       regs().poke(regs().addrOf("APB_COMPLETE"), v & 1);
                   });
    bindStatReg("STAT_RD_OPS", "reads");
    bindStatReg("STAT_WR_OPS", "writes");
    bindStatReg("STAT_BYTES", "bytes");
    bindStatReg("STAT_BANK_CONFLICTS", "row_misses");

    addInitOp({RegOp::Kind::Write, "APB_CTRL", 1});
    addInitOp({RegOp::Kind::WaitBit, "APB_COMPLETE", 1});
    addInitOp({RegOp::Kind::Write, "ADDR_INTERLEAVE", 1});
    addInitOp({RegOp::Kind::Write, "ECC_CTRL", 1});
    addInitOp({RegOp::Kind::Write, "HBM_CTRL", 1});
    addInitOp({RegOp::Kind::Read, "CATTRIP_STATUS", 0});

    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    // One AXI port per pseudo-channel in hardware; the inventory
    // records the port template plus the APB management port.
    port("saxi_pc_awaddr", Protocol::Axi4MemoryMapped, 33, false);
    port("saxi_pc_awlen", Protocol::Axi4MemoryMapped, 4, false);
    port("saxi_pc_wdata", Protocol::Axi4MemoryMapped, w, false);
    port("saxi_pc_wstrb", Protocol::Axi4MemoryMapped, w / 8, false);
    port("saxi_pc_araddr", Protocol::Axi4MemoryMapped, 33, false);
    port("saxi_pc_rdata", Protocol::Axi4MemoryMapped, w, true);
    port("apb_paddr", Protocol::Axi4Lite, 22, false);
    port("apb_pwdata", Protocol::Axi4Lite, 32, false);
    port("apb_prdata", Protocol::Axi4Lite, 32, true);
    port("hbm_ref_clk", Protocol::Axi4MemoryMapped, 1, false);
    port("cattrip_pin", Protocol::Axi4MemoryMapped, 1, true);

    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("PC_COUNT", ConfigScope::RoleOriented, "32");
    cfg("STACK_SIZE_GB", ConfigScope::RoleOriented, "8");
    cfg("AXI_DATA_WIDTH", ConfigScope::ShellOriented, "256");
    cfg("INTERLEAVE_MODE", ConfigScope::ShellOriented, "enabled");
    cfg("ECC_SCRUB", ConfigScope::ShellOriented, "1");
    cfg("TEMP_THROTTLE", ConfigScope::ShellOriented, "1");
    cfg("CLOCK_MHZ", ConfigScope::ShellOriented, "450");
    cfg("REORDER_EN", ConfigScope::ShellOriented, "1");
    cfg("STACK_COUNT", ConfigScope::ShellOriented, "2");
    cfg("SWITCH_ENABLE", ConfigScope::ShellOriented, "1");
    cfg("AXI_CLK_SEL", ConfigScope::ShellOriented, "independent");
    cfg("TRAFFIC_PATTERN", ConfigScope::ShellOriented, "linear");
    cfg("PAGEHIT_PCT", ConfigScope::ShellOriented, "75");
    cfg("WRITE_PCT", ConfigScope::ShellOriented, "50");
    cfg("PHY_PCLK", ConfigScope::ShellOriented, "100");
    cfg("MC_ENABLE", ConfigScope::ShellOriented, "ALL");
    cfg("REFRESH_MODE", ConfigScope::ShellOriented, "single");
    cfg("HOLDOFF_TIME", ConfigScope::ShellOriented, "auto");
    cfg("LOOKAHEAD_PCH", ConfigScope::ShellOriented, "1");
    cfg("LOOKAHEAD_ACT", ConfigScope::ShellOriented, "1");
    cfg("XSDB_MONITOR", ConfigScope::ShellOriented, "0");

    addDependency("cad_tool", "vivado-2023.2");
    addDependency("ip:hbm", "1.0");

    setResources(ResourceVector{28400, 39200, 64, 0, 0});
    setWorkload({640, 0, 0, 0});
}

std::unique_ptr<MemoryIp>
makeMemory(Vendor chip_vendor, PeripheralKind kind, unsigned channels,
           const std::string &inst)
{
    if (kind == PeripheralKind::Hbm) {
        if (chip_vendor == Vendor::Intel)
            fatal("no HBM controller model for Intel chips");
        return std::make_unique<XilinxHbm>(inst);
    }
    switch (chip_vendor) {
      case Vendor::Xilinx:
      case Vendor::InHouse:
        return std::make_unique<XilinxMigDdr4>(channels, inst);
      case Vendor::Intel:
        return std::make_unique<IntelEmifDdr4>(channels, inst);
    }
    panic("unreachable vendor");
}

} // namespace harmonia
