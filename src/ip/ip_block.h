/**
 * @file
 * Base machinery for vendor-specific IP models: register files,
 * port/configuration inventories, init sequences and development-
 * workload weights. The heterogeneity experiments (Figs 3b, 12, 13,
 * 14, Tab 4) are computed from these inventories, not hard-coded.
 */

#ifndef HARMONIA_IP_IP_BLOCK_H_
#define HARMONIA_IP_IP_BLOCK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "device/resource.h"
#include "sim/component.h"

namespace harmonia {

/** One register in an IP's control space. */
struct RegisterDesc {
    std::string name;
    Addr addr = 0;
    bool readOnly = false;
    std::string description;
};

/**
 * A 32-bit register file with optional read/write side effects.
 * Shell-specific register control logic lives here; the command-based
 * interface drives it through the unified control kernel.
 */
class RegisterFile {
  public:
    using ReadHandler = std::function<std::uint32_t(std::uint32_t)>;
    using WriteHandler = std::function<void(std::uint32_t)>;

    /** Define a register; fatal() on address or name collision. */
    void define(const RegisterDesc &desc, std::uint32_t init = 0);

    std::uint32_t read(Addr addr) const;
    void write(Addr addr, std::uint32_t value);

    /** Read/write by register name (host tooling convenience). */
    std::uint32_t readByName(const std::string &name) const;
    void writeByName(const std::string &name, std::uint32_t value);

    /** Attach side effects to a register. */
    void onRead(Addr addr, ReadHandler fn);
    void onWrite(Addr addr, WriteHandler fn);

    /** Raw store access for hardware-internal updates (no handlers). */
    void poke(Addr addr, std::uint32_t value);
    std::uint32_t peek(Addr addr) const;

    bool contains(Addr addr) const;
    Addr addrOf(const std::string &name) const;
    std::size_t count() const { return regs_.size(); }
    std::vector<RegisterDesc> descriptors() const;

  private:
    struct Slot {
        RegisterDesc desc;
        std::uint32_t value = 0;
        ReadHandler readFn;
        WriteHandler writeFn;
    };
    const Slot &slotAt(Addr addr) const;
    Slot &slotAt(Addr addr);

    std::map<Addr, Slot> regs_;
    std::map<std::string, Addr> byName_;
};

/** Scope of a configuration item under property-level tailoring. */
enum class ConfigScope {
    ShellOriented,  ///< handled by the provider's shell; hidden from roles
    RoleOriented,   ///< must be set by the role/application
};

/** One configuration item exposed by an IP (generics, params). */
struct ConfigItem {
    std::string name;
    ConfigScope scope = ConfigScope::ShellOriented;
    std::string defaultValue;
    std::string description;
};

/** One hardware port on an IP's boundary. */
struct PortDesc {
    std::string name;
    Protocol protocol;
    unsigned widthBits = 0;
    bool output = false;
};

/** One step of a module's register-level initialization recipe. */
struct RegOp {
    enum class Kind { Read, Write, WaitBit };
    Kind kind = Kind::Write;
    std::string regName;      ///< register this op touches
    std::uint32_t value = 0;  ///< write value / expected bit mask

    bool operator==(const RegOp &) const = default;
};

/**
 * Development-workload weights in handcrafted-LoC equivalents,
 * calibrated per module class (documented in shell/workload_model.cc).
 * The reuse-ratio experiments (Figs 3a, 14, 15) aggregate these.
 */
struct DevWorkload {
    std::uint32_t instanceLoc = 0;  ///< vendor-instance integration
    std::uint32_t reusableLoc = 0;  ///< common (Ex-function/datapath)
    std::uint32_t controlLoc = 0;   ///< control logic (HW-detail bound)
    std::uint32_t monitorLoc = 0;   ///< monitor logic (HW-detail bound)

    std::uint32_t total() const
    {
        return instanceLoc + reusableLoc + controlLoc + monitorLoc;
    }
};

/**
 * Base class of all vendor IP models. An IpBlock is a clocked
 * component with a register file, a port/config inventory, an init
 * recipe and a resource footprint.
 */
class IpBlock : public Component {
  public:
    IpBlock(std::string name, Vendor vendor, Protocol data_protocol,
            unsigned data_width_bits, double clock_mhz);

    Vendor vendor() const { return vendor_; }
    Protocol dataProtocol() const { return dataProtocol_; }
    unsigned dataWidthBits() const { return dataWidthBits_; }
    double clockMhz() const { return clockMhz_; }

    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }

    const std::vector<ConfigItem> &configItems() const { return configs_; }
    const std::vector<PortDesc> &ports() const { return ports_; }
    const std::vector<RegOp> &initSequence() const { return initSeq_; }
    const ResourceVector &resources() const { return resources_; }
    const DevWorkload &devWorkload() const { return workload_; }

    /**
     * Vendor-deployment dependencies as key-value pairs (§3.2): CAD
     * tool, IP catalogue entry, hard-IP requirements — each value a
     * version string. The vendor adapter inspects these rigidly.
     */
    const std::map<std::string, std::string> &dependencies() const
    {
        return deps_;
    }

    /** Names of role-oriented configuration items only. */
    std::vector<std::string> roleOrientedConfigs() const;

    /**
     * Execute this IP's init recipe against its own register file —
     * what the host software must do step by step on the register
     * interface, or what one Module Initiation command triggers.
     * @return number of register operations performed.
     */
    std::size_t applyInitSequence();

    /** Has the init recipe completed since reset? */
    bool initialized() const { return initialized_; }

    /** Return to the pre-init state. */
    virtual void reset();

  protected:
    void addConfig(ConfigItem item);
    void addPort(PortDesc port);
    void addInitOp(RegOp op);
    void addDependency(const std::string &key, const std::string &value);
    void setResources(ResourceVector r) { resources_ = r; }
    void setWorkload(DevWorkload w) { workload_ = w; }
    void markInitialized() { initialized_ = true; }

  private:
    Vendor vendor_;
    Protocol dataProtocol_;
    unsigned dataWidthBits_;
    double clockMhz_;
    RegisterFile regs_;
    std::vector<ConfigItem> configs_;
    std::vector<PortDesc> ports_;
    std::vector<RegOp> initSeq_;
    std::map<std::string, std::string> deps_;
    ResourceVector resources_;
    DevWorkload workload_;
    bool initialized_ = false;
};

/**
 * Property disparity between two IPs of the same function from
 * different vendors (Fig 3b): symmetric difference of port names and
 * configuration-item names.
 */
struct PropertyDiff {
    std::size_t interfaceDiff = 0;
    std::size_t configDiff = 0;
};
PropertyDiff propertyDiff(const IpBlock &a, const IpBlock &b);

/**
 * Register-level software-modification count when migrating host code
 * from driving @p from to driving @p to (Fig 13): init-sequence ops
 * that must be removed, added, or changed.
 */
std::size_t migrationRegOps(const IpBlock &from, const IpBlock &to);

} // namespace harmonia

#endif // HARMONIA_IP_IP_BLOCK_H_
