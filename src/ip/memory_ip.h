/**
 * @file
 * External-memory controller IP models: Xilinx MIG-style DDR4 (AXI-MM),
 * Intel EMIF-style DDR4 (Avalon-MM) and an HBM stack controller with 32
 * pseudo-channels. Timing follows an open-row model (activate/precharge
 * penalties, burst-granular transfers) so sequential, fixed and random
 * access patterns separate the way the paper's Figs 10c and 18c show.
 * A sparse backing store provides functional read/write for workloads.
 */

#ifndef HARMONIA_IP_MEMORY_IP_H_
#define HARMONIA_IP_MEMORY_IP_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "common/stats.h"
#include "device/peripheral.h"
#include "ip/ip_block.h"
#include "rtl/fifo.h"

namespace harmonia {

/** One memory access request. */
struct MemRequest {
    bool write = false;
    Addr addr = 0;
    std::uint32_t bytes = 0;
    Tick issued = 0;
    std::uint64_t id = 0;
};

/** A finished memory access. */
struct MemCompletion {
    MemRequest request;
    Tick completed = 0;

    Tick latency() const { return completed - request.issued; }
};

/**
 * Base memory controller model with per-channel open-row timing and a
 * page-sparse functional store.
 */
class MemoryIp : public IpBlock {
  public:
    MemoryIp(std::string name, Vendor vendor, Protocol protocol,
             PeripheralKind kind, unsigned channels);

    PeripheralKind memoryKind() const { return kind_; }
    unsigned channels() const { return numChannels_; }

    /** Peak bytes/second of one channel. */
    double channelBandwidth() const;

    /** Bytes moved per DRAM burst (transfer granularity floor). */
    std::uint32_t burstBytes() const;

    /** Row (page) size in bytes. */
    std::uint32_t rowBytes() const;

    /** Post a request to a channel; false when its queue is full. */
    bool post(unsigned channel, const MemRequest &req);

    bool hasCompletion() const { return !completions_.empty(); }
    MemCompletion popCompletion();

    std::size_t queueDepth(unsigned channel) const;

    void tick() override;
    void reset() override;

    /** All channel queues drained and nothing in flight due yet. */
    bool idle() const override
    {
        for (const Channel &ch : channels_)
            if (!ch.queue.empty())
                return false;
        return inFlight_.empty() || inFlight_.front().first > now();
    }

    /** Earliest in-flight access completion. */
    Tick wakeTime() const override
    {
        return inFlight_.empty() ? kTickMax : inFlight_.front().first;
    }

    StatGroup &stats() { return stats_; }

    /** Functional store access (byte-addressed, sparse pages). */
    void storeWrite(Addr addr, const std::vector<std::uint8_t> &data);
    std::vector<std::uint8_t> storeRead(Addr addr, std::size_t len);

  protected:
    void bindStatReg(const std::string &reg_name,
                     const std::string &stat_name);

  private:
    struct Channel {
        Fifo<MemRequest> queue{64};
        Tick busBusyUntil = 0;
        std::vector<std::int64_t> openRow;  ///< per bank, -1 = closed
    };

    static constexpr unsigned kBanks = 16;
    static constexpr std::size_t kPageSize = 4096;

    PeripheralKind kind_;
    unsigned numChannels_;
    std::vector<Channel> channels_;
    std::deque<std::pair<Tick, MemCompletion>> inFlight_;
    Fifo<MemCompletion> completions_{8192};
    StatGroup stats_;
    // Sparse backing store: strictly point lookups, never iterated.
    // harmonia-lint: allow(DET-003) lookup-only page table
    std::unordered_map<Addr, std::vector<std::uint8_t>> pages_;
};

/** Xilinx MIG-style DDR4 controller (AXI4-MM). */
class XilinxMigDdr4 : public MemoryIp {
  public:
    explicit XilinxMigDdr4(unsigned channels,
                           const std::string &inst = "mig0");
};

/** Intel EMIF-style DDR4 controller (Avalon-MM). */
class IntelEmifDdr4 : public MemoryIp {
  public:
    explicit IntelEmifDdr4(unsigned channels,
                           const std::string &inst = "emif0");
};

/** Xilinx HBM stack controller: 32 pseudo-channels (AXI4-MM). */
class XilinxHbm : public MemoryIp {
  public:
    explicit XilinxHbm(const std::string &inst = "hbm0");
};

/** Build the right memory model for a chip vendor and memory kind. */
std::unique_ptr<MemoryIp> makeMemory(Vendor chip_vendor,
                                     PeripheralKind kind,
                                     unsigned channels,
                                     const std::string &inst = "mem0");

} // namespace harmonia

#endif // HARMONIA_IP_MEMORY_IP_H_
