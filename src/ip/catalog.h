/**
 * @file
 * The vendor-IP catalogue: enumerates the IP pairs that provide the
 * same function on different vendors' chips, so the motivation study
 * (Fig 3b) and the platform adapters can reason about cross-vendor
 * module differences without hand-listing models everywhere.
 */

#ifndef HARMONIA_IP_CATALOG_H_
#define HARMONIA_IP_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "ip/ip_block.h"

namespace harmonia {

/** Common I/O module functions found in production shells. */
enum class IpFunction { Mac, Dma, Ddr, Hbm, Pcie, Tlp };

const char *toString(IpFunction f);

/**
 * Build a representative model of @p function for @p vendor. Functions
 * without a distinct model (Pcie, Tlp) return the module that embeds
 * them (the DMA engine carries the PCIe hard IP and TLP layer).
 */
std::unique_ptr<IpBlock> makeIpFor(IpFunction function, Vendor vendor);

/**
 * Cross-vendor property disparity for a module function (Fig 3b):
 * interface and configuration differences between the Xilinx-family
 * and Intel-family implementations.
 */
PropertyDiff crossVendorDiff(IpFunction function);

/** All functions Fig 3b reports, in the paper's order. */
std::vector<IpFunction> fig3bFunctions();

} // namespace harmonia

#endif // HARMONIA_IP_CATALOG_H_
