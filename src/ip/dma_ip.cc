#include "ip/dma_ip.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/fault_plan.h"  // harmonia-lint: allow(LAYER-002) fault-injection hooks in vendor IP
#include "sim/clock.h"

namespace harmonia {

namespace {
/** PCIe TLP framing constants for the efficiency model. */
constexpr std::uint32_t kMaxPayload = 256;  ///< bytes per TLP
constexpr std::uint32_t kTlpOverhead = 24;  ///< header + DLLP share
} // namespace

const char *
toString(DmaEngineStyle style)
{
    switch (style) {
      case DmaEngineStyle::Bulk:
        return "BDMA";
      case DmaEngineStyle::ScatterGather:
        return "SGDMA";
    }
    return "?";
}

DmaIp::DmaIp(std::string name, Vendor vendor, Protocol protocol,
             unsigned pcie_gen, unsigned lanes, unsigned num_queues,
             DmaEngineStyle style)
    : IpBlock(std::move(name), vendor, protocol,
              widthBitsFor(pcie_gen), clockMhzFor(pcie_gen)),
      gen_(pcie_gen), lanes_(lanes), numQueues_(num_queues),
      style_(style), stats_(this->name())
{
    if (style == DmaEngineStyle::Bulk) {
        // Bulk engines batch descriptors into long bursts: better
        // payload efficiency, more setup latency per transfer.
        maxPayload_ = 4096;
        styleLatency_ = 200'000;  // 200 ns descriptor batching
    } else {
        maxPayload_ = kMaxPayload;
        styleLatency_ = 0;
    }
    if (pcie_gen < 3 || pcie_gen > 5)
        fatal("PCIe generation %u not supported (3..5)", pcie_gen);
    if (lanes != 8 && lanes != 16)
        fatal("PCIe lane count %u not supported (x8/x16)", lanes);
    if (num_queues == 0 || num_queues > 2048)
        fatal("DMA queue count %u out of range (1..2048)", num_queues);
    queues_.reserve(num_queues);
    for (unsigned q = 0; q < num_queues; ++q)
        queues_.emplace_back(64);
}

unsigned
DmaIp::widthBitsFor(unsigned gen)
{
    // The paper: width and clock double with each PCIe generation.
    switch (gen) {
      case 3:
        return 256;
      case 4:
        return 512;
      case 5:
        return 1024;
      default:
        return 512;
    }
}

double
DmaIp::clockMhzFor(unsigned gen)
{
    switch (gen) {
      case 3:
        return 250.0;
      case 4:
        return 250.0;
      case 5:
        return 500.0;
      default:
        return 250.0;
    }
}

double
DmaIp::linkBandwidth() const
{
    double per_lane = 0;
    switch (gen_) {
      case 3:
        per_lane = 0.985e9;
        break;
      case 4:
        per_lane = 1.969e9;
        break;
      case 5:
        per_lane = 3.938e9;
        break;
    }
    return per_lane * lanes_;
}

double
DmaIp::tlpEfficiency(std::uint32_t bytes)
{
    if (bytes == 0)
        return 1.0;
    const std::uint32_t chunk = std::min(bytes, kMaxPayload);
    return static_cast<double>(chunk) / (chunk + kTlpOverhead);
}

Tick
DmaIp::baseLatency() const
{
    Tick base = 900'000;
    switch (gen_) {
      case 3:
        base = 900'000;  // 900 ns
        break;
      case 4:
        base = 750'000;
        break;
      case 5:
        base = 600'000;
        break;
    }
    return base + styleLatency_;
}

double
DmaIp::payloadEfficiency(std::uint32_t bytes) const
{
    if (bytes == 0)
        return 1.0;
    const std::uint32_t chunk = std::min(bytes, maxPayload_);
    return static_cast<double>(chunk) / (chunk + kTlpOverhead);
}

bool
DmaIp::post(const DmaRequest &req)
{
    if (req.control) {
        if (!controlQueue_.canPush()) {
            stats_.counter("ctrl_rejected").inc();
            return false;
        }
        controlQueue_.push(req);
        return true;
    }
    if (req.queue >= numQueues_)
        fatal("DMA '%s': queue %u out of range (%u)", name().c_str(),
              req.queue, numQueues_);
    if (!queues_[req.queue].canPush()) {
        stats_.counter("data_rejected").inc();
        return false;
    }
    queues_[req.queue].push(req);
    ++pendingData_;
    return true;
}

DmaCompletion
DmaIp::popCompletion()
{
    if (completions_.empty())
        fatal("DMA '%s': popCompletion with none pending",
              name().c_str());
    return completions_.pop();
}

std::size_t
DmaIp::queueDepth(std::uint16_t queue) const
{
    if (queue >= numQueues_)
        fatal("queueDepth: queue %u out of range", queue);
    return queues_[queue].size();
}

void
DmaIp::finish(const DmaRequest &req, Tick when)
{
    DmaCompletion c{req, when};
    auto it = std::upper_bound(
        inFlight_.begin(), inFlight_.end(), when,
        [](Tick t, const auto &e) { return t < e.first; });
    inFlight_.insert(it, {when, c});
}

void
DmaIp::tick()
{
    const Tick t = now();

    // Control channel: strict priority, negligible payload — served
    // without occupying the data bus (dedicated flow-control credits).
    while (controlQueue_.canPop()) {
        DmaRequest req = controlQueue_.pop();
        finish(req, t + baseLatency());
        stats_.counter("ctrl_transfers").inc();
    }

    // Fault hook: a stalled engine (level-triggered) stops scheduling
    // data transfers; the isolated control channel above and transfers
    // already on the link are unaffected.
    const bool stalled = injectFault(FaultKind::DmaStall, name(), t);
    if (stalled)
        stats_.counter("stall_ticks").inc();

    // Data path: round-robin over queues onto the shared link. The
    // engine works ahead within the current cycle so link pacing is
    // not quantized to clock edges.
    const Tick window = t + (clock() ? clock()->period() : 1);
    if (busBusyUntil_ < t)
        busBusyUntil_ = t;
    while (!stalled && pendingData_ > 0 && busBusyUntil_ < window) {
        bool found = false;
        for (std::size_t i = 0; i < queues_.size(); ++i) {
            const std::size_t q = (rrNext_ + i) % queues_.size();
            if (!queues_[q].canPop())
                continue;
            DmaRequest req = queues_[q].pop();
            --pendingData_;
            rrNext_ = (q + 1) % queues_.size();
            const double eff = payloadEfficiency(req.bytes);
            const double seconds =
                req.bytes / (linkBandwidth() * eff);
            const Tick xfer =
                static_cast<Tick>(seconds * kTicksPerSecond);
            busBusyUntil_ += xfer;
            finish(req, busBusyUntil_ + baseLatency());
            stats_.counter("data_transfers").inc();
            stats_.counter("data_bytes").inc(req.bytes);
            found = true;
            break;
        }
        if (!found)
            break;
    }

    // Deliver finished transfers. Fault hook: a lost completion means
    // the transfer happened but its writeback never lands — the
    // classic cause of host-side timeouts (control completions are
    // exempt; that plane is exercised by the Cmd* fault kinds).
    while (!inFlight_.empty() && inFlight_.front().first <= t) {
        if (!completions_.canPush())
            break;
        const DmaCompletion &c = inFlight_.front().second;
        if (!c.request.control &&
            injectFault(FaultKind::DmaCompletionLoss, name(), t)) {
            stats_.counter("completions_lost").inc();
            inFlight_.pop_front();
            continue;
        }
        completions_.push(c);
        inFlight_.pop_front();
    }
}

void
DmaIp::reset()
{
    IpBlock::reset();
    for (auto &q : queues_)
        q.clear();
    controlQueue_.clear();
    inFlight_.clear();
    completions_.clear();
    busBusyUntil_ = 0;
    rrNext_ = 0;
    pendingData_ = 0;
    stats_.resetAll();
}

void
DmaIp::bindStatReg(const std::string &reg_name,
                   const std::string &stat_name)
{
    regs().onRead(regs().addrOf(reg_name),
                  [this, stat_name](std::uint32_t) {
                      return static_cast<std::uint32_t>(
                          stats_.value(stat_name));
                  });
}

XilinxQdma::XilinxQdma(unsigned pcie_gen, unsigned lanes,
                       unsigned num_queues, const std::string &inst,
                       DmaEngineStyle style)
    : DmaIp("xqdma_" + inst, Vendor::Xilinx, Protocol::Axi4MemoryMapped,
            pcie_gen, lanes, num_queues, style)
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("QDMA_GLBL_RNG_SZ");
    def("QDMA_GLBL_SCRATCH");
    def("QDMA_GLBL_ERR_MASK");
    def("QDMA_IND_CTXT_CMD");
    def("QDMA_IND_CTXT_DATA_0");
    def("QDMA_IND_CTXT_DATA_1");
    def("QDMA_IND_CTXT_MASK");
    def("QDMA_PF_QMAX");
    def("QDMA_FMAP_CTXT");
    def("QDMA_C2H_TIMER_CNT");
    def("QDMA_C2H_CNT_TH");
    def("QDMA_C2H_BUF_SZ");
    def("QDMA_H2C_REQ_THROT");
    def("QDMA_DMAP_SEL_INT_SZ");
    def("QDMA_GLBL_ERR_STAT", true);
    def("QDMA_GLBL_STATUS", true);
    def("QDMA_STAT_H2C_PKTS", true);
    def("QDMA_STAT_C2H_PKTS", true);
    def("QDMA_STAT_DATA_BYTES", true);
    def("QDMA_STAT_CTRL_PKTS", true);
    def("QDMA_TRQ_SEL_FMAP", true);

    regs().onWrite(regs().addrOf("QDMA_IND_CTXT_CMD"),
                   [this](std::uint32_t) {
                       regs().poke(regs().addrOf("QDMA_GLBL_STATUS"), 1);
                   });
    bindStatReg("QDMA_STAT_DATA_BYTES", "data_bytes");
    bindStatReg("QDMA_STAT_CTRL_PKTS", "ctrl_transfers");

    // QDMA init: global rings, then an indirect-context programming
    // dance — exactly the multi-step, order-sensitive recipe the
    // command interface hides.
    addInitOp({RegOp::Kind::Write, "QDMA_GLBL_RNG_SZ", 2048});
    addInitOp({RegOp::Kind::Write, "QDMA_GLBL_ERR_MASK", 0xffffffff});
    addInitOp({RegOp::Kind::Write, "QDMA_PF_QMAX", num_queues});
    addInitOp({RegOp::Kind::Write, "QDMA_FMAP_CTXT", 0x1});
    addInitOp({RegOp::Kind::Write, "QDMA_IND_CTXT_DATA_0", 0x10});
    addInitOp({RegOp::Kind::Write, "QDMA_IND_CTXT_DATA_1", 0x0});
    addInitOp({RegOp::Kind::Write, "QDMA_IND_CTXT_MASK", 0xffffffff});
    addInitOp({RegOp::Kind::Write, "QDMA_IND_CTXT_CMD", 0x3});
    addInitOp({RegOp::Kind::WaitBit, "QDMA_GLBL_STATUS", 1});
    addInitOp({RegOp::Kind::Write, "QDMA_C2H_TIMER_CNT", 16});
    addInitOp({RegOp::Kind::Write, "QDMA_C2H_CNT_TH", 64});
    addInitOp({RegOp::Kind::Write, "QDMA_C2H_BUF_SZ", 4096});
    addInitOp({RegOp::Kind::Write, "QDMA_H2C_REQ_THROT", 0x4000});
    addInitOp({RegOp::Kind::Read, "QDMA_GLBL_ERR_STAT", 0});

    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    port("m_axis_h2c_tdata", Protocol::Axi4Stream, w, true);
    port("m_axis_h2c_tkeep", Protocol::Axi4Stream, w / 8, true);
    port("m_axis_h2c_tvalid", Protocol::Axi4Stream, 1, true);
    port("m_axis_h2c_tlast", Protocol::Axi4Stream, 1, true);
    port("s_axis_c2h_tdata", Protocol::Axi4Stream, w, false);
    port("s_axis_c2h_tkeep", Protocol::Axi4Stream, w / 8, false);
    port("s_axis_c2h_tvalid", Protocol::Axi4Stream, 1, false);
    port("s_axis_c2h_tready", Protocol::Axi4Stream, 1, true);
    port("s_axis_c2h_tlast", Protocol::Axi4Stream, 1, false);
    port("m_axi_awaddr", Protocol::Axi4MemoryMapped, 64, true);
    port("m_axi_wdata", Protocol::Axi4MemoryMapped, w, true);
    port("m_axi_araddr", Protocol::Axi4MemoryMapped, 64, true);
    port("m_axi_rdata", Protocol::Axi4MemoryMapped, w, false);
    port("s_axil_awaddr", Protocol::Axi4Lite, 32, false);
    port("s_axil_wdata", Protocol::Axi4Lite, 32, false);
    port("s_axil_araddr", Protocol::Axi4Lite, 32, false);
    port("s_axil_rdata", Protocol::Axi4Lite, 32, true);
    port("pcie_txp", Protocol::Axi4MemoryMapped, lanes, true);
    port("pcie_rxp", Protocol::Axi4MemoryMapped, lanes, false);
    port("usr_irq_req", Protocol::Axi4Lite, 16, false);
    port("usr_irq_ack", Protocol::Axi4Lite, 16, true);

    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("NUM_QUEUES", ConfigScope::RoleOriented,
        std::to_string(num_queues).c_str());
    cfg("DMA_MODE", ConfigScope::RoleOriented, "ST");
    cfg("MAX_PAYLOAD_BYTES", ConfigScope::ShellOriented, "256");
    cfg("PCIE_GEN", ConfigScope::ShellOriented,
        std::to_string(pcie_gen).c_str());
    cfg("PCIE_LANES", ConfigScope::ShellOriented,
        std::to_string(lanes).c_str());
    cfg("PF_COUNT", ConfigScope::ShellOriented, "1");
    cfg("VF_COUNT", ConfigScope::ShellOriented, "0");
    cfg("BAR0_SIZE", ConfigScope::ShellOriented, "64K");
    cfg("MSIX_VECTORS", ConfigScope::ShellOriented, "32");
    cfg("COMPLETION_RING_SZ", ConfigScope::ShellOriented, "2048");
    cfg("PREFETCH_ENABLE", ConfigScope::ShellOriented, "1");
    cfg("WRB_COALESCE", ConfigScope::ShellOriented, "16");
    cfg("DESC_BYPASS", ConfigScope::ShellOriented, "0");
    cfg("AXI_ID_WIDTH", ConfigScope::ShellOriented, "4");
    cfg("SRIOV_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("TANDEM_BOOT", ConfigScope::ShellOriented, "0");
    cfg("BAR2_SIZE", ConfigScope::ShellOriented, "4K");
    cfg("BAR4_SIZE", ConfigScope::ShellOriented, "0");
    cfg("EXPANSION_ROM", ConfigScope::ShellOriented, "0");
    cfg("MSI_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("LEGACY_INT", ConfigScope::ShellOriented, "0");
    cfg("EXT_TAG", ConfigScope::ShellOriented, "1");
    cfg("RELAXED_ORDERING", ConfigScope::ShellOriented, "1");
    cfg("MAX_READ_REQ", ConfigScope::ShellOriented, "512");
    cfg("FLR_ENABLE", ConfigScope::ShellOriented, "1");
    cfg("ATS_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("PASID_ENABLE", ConfigScope::ShellOriented, "0");
    cfg("DSC_BYPASS_C2H", ConfigScope::ShellOriented, "0");
    cfg("DSC_BYPASS_H2C", ConfigScope::ShellOriented, "0");
    cfg("C2H_STREAM_MODE", ConfigScope::ShellOriented, "simple");
    cfg("PFETCH_CACHE_DEPTH", ConfigScope::ShellOriented, "16");
    cfg("TIMER_TICK_NS", ConfigScope::ShellOriented, "4");
    cfg("RAM_RETRY_COUNT", ConfigScope::ShellOriented, "2");
    cfg("AXI_PROT", ConfigScope::ShellOriented, "unprivileged");

    addDependency("cad_tool", "vivado-2023.2");
    addDependency("ip:qdma", "5.0");
    addDependency("pcie_hard_ip",
                  format("pcie4_uscale_plus:gen%u_x%u", pcie_gen,
                         lanes));

    setResources(ResourceVector{36500, 51200, 120, 8, 0});
    setWorkload({1450, 0, 0, 0});
}

IntelMcdma::IntelMcdma(unsigned pcie_gen, unsigned lanes,
                       unsigned num_queues, const std::string &inst,
                       DmaEngineStyle style)
    : DmaIp("imcdma_" + inst, Vendor::Intel,
            Protocol::AvalonMemoryMapped, pcie_gen, lanes, num_queues,
            style)
{
    Addr a = 0;
    auto def = [&](const char *n, bool ro = false) {
        regs().define({n, a, ro, ""});
        a += 4;
    };
    def("mcdma_ctrl");
    def("mcdma_d2h_queue_ctrl");
    def("mcdma_h2d_queue_ctrl");
    def("mcdma_queue_base_lo");
    def("mcdma_queue_base_hi");
    def("mcdma_queue_count");
    def("mcdma_wb_interval");
    def("mcdma_int_moderation");
    def("mcdma_status", true);
    def("mcdma_link_status", true);
    def("mcdma_cntr_h2d", true);
    def("mcdma_cntr_d2h", true);
    def("mcdma_cntr_bytes", true);
    def("mcdma_cntr_ctrl", true);
    def("mcdma_err_status", true);

    regs().onWrite(regs().addrOf("mcdma_ctrl"),
                   [this](std::uint32_t v) {
                       regs().poke(regs().addrOf("mcdma_status"), v & 1);
                       regs().poke(regs().addrOf("mcdma_link_status"),
                                   v & 1);
                   });
    bindStatReg("mcdma_cntr_bytes", "data_bytes");
    bindStatReg("mcdma_cntr_ctrl", "ctrl_transfers");

    addInitOp({RegOp::Kind::Write, "mcdma_queue_count", num_queues});
    addInitOp({RegOp::Kind::Write, "mcdma_queue_base_lo", 0x1000});
    addInitOp({RegOp::Kind::Write, "mcdma_queue_base_hi", 0x0});
    addInitOp({RegOp::Kind::Write, "mcdma_wb_interval", 8});
    addInitOp({RegOp::Kind::Write, "mcdma_int_moderation", 64});
    addInitOp({RegOp::Kind::Write, "mcdma_ctrl", 1});
    addInitOp({RegOp::Kind::WaitBit, "mcdma_link_status", 1});
    addInitOp({RegOp::Kind::Read, "mcdma_err_status", 0});

    const unsigned w = dataWidthBits();
    auto port = [&](const char *n, Protocol p, unsigned bits, bool out) {
        addPort({n, p, bits, out});
    };
    port("h2d_st_data", Protocol::AvalonStream, w, true);
    port("h2d_st_valid", Protocol::AvalonStream, 1, true);
    port("h2d_st_sop", Protocol::AvalonStream, 1, true);
    port("h2d_st_eop", Protocol::AvalonStream, 1, true);
    port("h2d_st_empty", Protocol::AvalonStream, 6, true);
    port("d2h_st_data", Protocol::AvalonStream, w, false);
    port("d2h_st_valid", Protocol::AvalonStream, 1, false);
    port("d2h_st_ready", Protocol::AvalonStream, 1, true);
    port("d2h_st_sop", Protocol::AvalonStream, 1, false);
    port("d2h_st_eop", Protocol::AvalonStream, 1, false);
    port("wr_master_address", Protocol::AvalonMemoryMapped, 64, true);
    port("wr_master_writedata", Protocol::AvalonMemoryMapped, w, true);
    port("wr_master_burstcount", Protocol::AvalonMemoryMapped, 12,
         true);
    port("rd_master_address", Protocol::AvalonMemoryMapped, 64, true);
    port("rd_master_readdata", Protocol::AvalonMemoryMapped, w, false);
    port("csr_address", Protocol::AvalonMemoryMapped, 14, false);
    port("csr_readdata", Protocol::AvalonMemoryMapped, 32, true);
    port("csr_writedata", Protocol::AvalonMemoryMapped, 32, false);
    port("pcie_tx", Protocol::AvalonMemoryMapped, lanes, true);
    port("pcie_rx", Protocol::AvalonMemoryMapped, lanes, false);
    port("msi_intfc", Protocol::AvalonMemoryMapped, 1, true);

    auto cfg = [&](const char *n, ConfigScope s, const char *d) {
        addConfig({n, s, d, ""});
    };
    cfg("num_dma_channels", ConfigScope::RoleOriented,
        std::to_string(num_queues).c_str());
    cfg("interface_type", ConfigScope::RoleOriented, "AVST");
    cfg("max_payload_size", ConfigScope::ShellOriented, "256");
    cfg("pcie_generation", ConfigScope::ShellOriented,
        std::to_string(pcie_gen).c_str());
    cfg("pcie_lane_width", ConfigScope::ShellOriented,
        std::to_string(lanes).c_str());
    cfg("user_mode", ConfigScope::ShellOriented, "multichannel");
    cfg("descriptor_format", ConfigScope::ShellOriented, "compact");
    cfg("metadata_enable", ConfigScope::ShellOriented, "0");
    cfg("wb_policy", ConfigScope::ShellOriented, "interval");
    cfg("bam_bas_enable", ConfigScope::ShellOriented, "0");
    cfg("ptile_location", ConfigScope::ShellOriented, "P0");
    cfg("vf_per_pf", ConfigScope::ShellOriented, "0");
    cfg("msi_x_tables", ConfigScope::ShellOriented, "1");
    cfg("data_mover_mode", ConfigScope::ShellOriented, "full");
    cfg("bar0_address_width", ConfigScope::ShellOriented, "16");
    cfg("expansion_rom_enable", ConfigScope::ShellOriented, "0");
    cfg("msi_enable", ConfigScope::ShellOriented, "0");
    cfg("extended_tag", ConfigScope::ShellOriented, "1");
    cfg("relaxed_order", ConfigScope::ShellOriented, "1");
    cfg("max_read_request", ConfigScope::ShellOriented, "512");
    cfg("flr_support", ConfigScope::ShellOriented, "1");
    cfg("completion_timeout", ConfigScope::ShellOriented, "range_b");
    cfg("aspm_support", ConfigScope::ShellOriented, "l1");
    cfg("d2h_prefetch_depth", ConfigScope::ShellOriented, "16");
    cfg("h2d_fifo_mode", ConfigScope::ShellOriented, "store_forward");
    cfg("user_msix_table", ConfigScope::ShellOriented, "internal");
    cfg("avst_ready_latency", ConfigScope::ShellOriented, "3");
    cfg("port_type", ConfigScope::ShellOriented, "native_endpoint");
    cfg("retimer_config", ConfigScope::ShellOriented, "none");
    cfg("error_reporting", ConfigScope::ShellOriented, "aer");

    addDependency("cad_tool", "quartus-23.4");
    addDependency("ip:mcdma", "22.3");
    addDependency("pcie_hard_ip",
                  format("ptile:gen%u_x%u", pcie_gen, lanes));

    setResources(ResourceVector{33800, 47600, 132, 0, 0});
    setWorkload({1520, 0, 0, 0});
}

std::unique_ptr<DmaIp>
makeDma(Vendor chip_vendor, unsigned pcie_gen, unsigned lanes,
        unsigned num_queues, const std::string &inst,
        DmaEngineStyle style)
{
    switch (chip_vendor) {
      case Vendor::Xilinx:
      case Vendor::InHouse:
        return std::make_unique<XilinxQdma>(pcie_gen, lanes,
                                            num_queues, inst, style);
      case Vendor::Intel:
        return std::make_unique<IntelMcdma>(pcie_gen, lanes,
                                            num_queues, inst, style);
    }
    panic("unreachable vendor");
}

} // namespace harmonia
