/**
 * @file
 * oneAPI/OFS baseline model: Intel's commercial shell-role platform.
 * Supports Intel device families only, ships the OFS FIM as a
 * monolithic shell, and exposes a register (CSR) host interface.
 */

#ifndef HARMONIA_FRAMEWORKS_ONEAPI_H_
#define HARMONIA_FRAMEWORKS_ONEAPI_H_

#include "frameworks/framework.h"

namespace harmonia {

class OneApiFramework : public Framework {
  public:
    OneApiFramework();

    bool supports(const FpgaDevice &device) const override;
    ResourceVector
    shellResources(const FpgaDevice &device) const override;
    std::size_t configOps(ConfigTask task) const override;
    double datapathEfficiency() const override { return 0.99; }
    Tick addedLatencyPs() const override { return 110'000; }
};

} // namespace harmonia

#endif // HARMONIA_FRAMEWORKS_ONEAPI_H_
