/**
 * @file
 * Coyote baseline model: the open-source FPGA OS (Korolija et al.,
 * OSDI'20). Supports Xilinx Alveo boards, provides OS abstractions
 * (vFPGAs, unified memory) in a fixed static shell with a register
 * host interface.
 */

#ifndef HARMONIA_FRAMEWORKS_COYOTE_H_
#define HARMONIA_FRAMEWORKS_COYOTE_H_

#include "frameworks/framework.h"

namespace harmonia {

class CoyoteFramework : public Framework {
  public:
    CoyoteFramework();

    bool supports(const FpgaDevice &device) const override;
    ResourceVector
    shellResources(const FpgaDevice &device) const override;
    std::size_t configOps(ConfigTask task) const override;
    double datapathEfficiency() const override { return 0.98; }
    Tick addedLatencyPs() const override { return 140'000; }
};

} // namespace harmonia

#endif // HARMONIA_FRAMEWORKS_COYOTE_H_
