#include "frameworks/vitis.h"

namespace harmonia {

VitisFramework::VitisFramework() : Framework("Vitis")
{
}

bool
VitisFramework::supports(const FpgaDevice &device) const
{
    // Commercial Xilinx boards only: no Intel chips, no custom
    // in-house boards (their shells are tied to known platforms).
    return device.chip().vendor() == Vendor::Xilinx &&
           device.boardVendor == Vendor::Xilinx;
}

ResourceVector
VitisFramework::shellResources(const FpgaDevice &device) const
{
    // The XRT platform shell is monolithic: static region with DMA,
    // clocking, ICAP, firewall and profiling always present.
    const ResourceVector &budget = device.chip().budget;
    ResourceVector r;
    r.lut = static_cast<std::uint64_t>(budget.lut * 0.185);
    r.reg = static_cast<std::uint64_t>(budget.reg * 0.160);
    r.bram = static_cast<std::uint64_t>(budget.bram * 0.210);
    r.uram = static_cast<std::uint64_t>(budget.uram * 0.060);
    r.dsp = static_cast<std::uint64_t>(budget.dsp * 0.012);
    return r;
}

std::size_t
VitisFramework::configOps(ConfigTask task) const
{
    // Register-interface costs measured on the XRT-style register
    // map (paper Table 4 reports the same magnitudes).
    switch (task) {
      case ConfigTask::MonitoringStatistics:
        return 84;
      case ConfigTask::NetworkInitialization:
        return 115;
      case ConfigTask::HostInteraction:
        return 60;
    }
    return 0;
}

} // namespace harmonia
