#include "frameworks/comparison.h"

namespace harmonia {

std::vector<std::unique_ptr<Framework>>
makeBaselines()
{
    std::vector<std::unique_ptr<Framework>> out;
    out.push_back(std::make_unique<VitisFramework>());
    out.push_back(std::make_unique<OneApiFramework>());
    out.push_back(std::make_unique<CoyoteFramework>());
    return out;
}

SupportMatrix
buildSupportMatrix()
{
    SupportMatrix matrix;
    const auto baselines = makeBaselines();
    for (const auto &fw : baselines)
        matrix.frameworks.push_back(fw->name());
    matrix.frameworks.push_back("Harmonia");

    for (const FpgaDevice &dev : DeviceDatabase::instance().all()) {
        matrix.devices.push_back(dev.name);
        for (const auto &fw : baselines)
            matrix.supported[{fw->name(), dev.name}] =
                fw->supports(dev);
        // Harmonia supports every board through its adapters: the
        // shell builds from RBBs on Xilinx, Intel and in-house chips.
        matrix.supported[{"Harmonia", dev.name}] = true;
    }
    return matrix;
}

std::vector<ShellFootprint>
compareShellFootprints(const FpgaDevice &device, const Shell &harmonia)
{
    std::vector<ShellFootprint> rows;
    const ResourceVector &budget = device.chip().budget;

    auto fractions = [&](ShellFootprint &fp) {
        fp.lutFraction = fp.resources.utilization("lut", budget);
        fp.regFraction = fp.resources.utilization("reg", budget);
        fp.bramFraction = fp.resources.utilization("bram", budget);
    };

    for (const auto &fw : makeBaselines()) {
        if (!fw->supports(device))
            continue;
        ShellFootprint fp;
        fp.framework = fw->name();
        fp.resources = fw->shellResources(device);
        fractions(fp);
        rows.push_back(fp);
    }

    ShellFootprint fp;
    fp.framework = "Harmonia";
    fp.resources = harmonia.shellResources();
    fractions(fp);
    rows.push_back(fp);
    return rows;
}

std::vector<ConfigCostRow>
compareConfigCosts(const Shell &shell)
{
    const VitisFramework reg_baseline;

    std::vector<ConfigCostRow> rows;

    ConfigCostRow mon;
    mon.task = ConfigTask::MonitoringStatistics;
    mon.registerOps =
        reg_baseline.configOps(ConfigTask::MonitoringStatistics);
    mon.commandOps = shell.monitoringCommandOps();
    rows.push_back(mon);

    ConfigCostRow net;
    net.task = ConfigTask::NetworkInitialization;
    net.registerOps =
        reg_baseline.configOps(ConfigTask::NetworkInitialization);
    net.commandOps = 0;
    for (const Rbb *rbb : shell.rbbs())
        if (rbb->kind() == RbbKind::Network)
            net.commandOps += rbb->commandInitCount();
    if (net.commandOps == 0)
        net.commandOps = 1;
    rows.push_back(net);

    ConfigCostRow host;
    host.task = ConfigTask::HostInteraction;
    host.registerOps =
        reg_baseline.configOps(ConfigTask::HostInteraction);
    host.commandOps = 0;
    for (const Rbb *rbb : shell.rbbs())
        if (rbb->kind() == RbbKind::Host)
            host.commandOps += rbb->commandInitCount() + 1;
    if (host.commandOps == 0)
        host.commandOps = 1;
    rows.push_back(host);

    return rows;
}

} // namespace harmonia
