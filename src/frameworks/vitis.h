/**
 * @file
 * Vitis baseline model: AMD/Xilinx's commercial shell-role platform.
 * Supports Xilinx device families only, ships a monolithic platform
 * shell, and exposes a register interface for host control.
 */

#ifndef HARMONIA_FRAMEWORKS_VITIS_H_
#define HARMONIA_FRAMEWORKS_VITIS_H_

#include "frameworks/framework.h"

namespace harmonia {

class VitisFramework : public Framework {
  public:
    VitisFramework();

    bool supports(const FpgaDevice &device) const override;
    ResourceVector
    shellResources(const FpgaDevice &device) const override;
    std::size_t configOps(ConfigTask task) const override;
    double datapathEfficiency() const override { return 1.0; }
    Tick addedLatencyPs() const override { return 90'000; }
};

} // namespace harmonia

#endif // HARMONIA_FRAMEWORKS_VITIS_H_
