/**
 * @file
 * Baseline framework models for the §5.4 comparison: Vitis, oneAPI and
 * Coyote. Each model captures what the comparison measures — the
 * device-support matrix (Tab 3), a monolithic shell's resource
 * footprint (Fig 18a), register-interface configuration costs (Tab 4)
 * and datapath efficiency/latency factors (Fig 18b-d). They are
 * models of published shells, not reimplementations; DESIGN.md
 * records the substitution.
 */

#ifndef HARMONIA_FRAMEWORKS_FRAMEWORK_H_
#define HARMONIA_FRAMEWORKS_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "device/database.h"

namespace harmonia {

/** Host-software configuration tasks Table 4 compares. */
enum class ConfigTask {
    MonitoringStatistics,
    NetworkInitialization,
    HostInteraction,
};

const char *toString(ConfigTask task);

/**
 * A platform-level framework under comparison. The Harmonia entry is
 * produced separately from real Shell instances; these baselines are
 * calibrated models.
 */
class Framework {
  public:
    explicit Framework(std::string name) : name_(std::move(name)) {}
    virtual ~Framework() = default;

    const std::string &name() const { return name_; }

    /** Table 3: can this framework target the device at all? */
    virtual bool supports(const FpgaDevice &device) const = 0;

    /**
     * Fig 18a: the shell footprint on @p device. Baselines ship
     * monolithic shells, so the footprint is benchmark-independent.
     */
    virtual ResourceVector
    shellResources(const FpgaDevice &device) const = 0;

    /** Tab 4: register operations the task costs on this framework. */
    virtual std::size_t configOps(ConfigTask task) const = 0;

    /** Fig 18b-d: relative datapath efficiency (1.0 = line rate). */
    virtual double datapathEfficiency() const { return 1.0; }

    /** Fig 18d: shell-added one-way latency. */
    virtual Tick addedLatencyPs() const { return 0; }

  private:
    std::string name_;
};

/** The three baselines, in the paper's order. */
std::vector<std::unique_ptr<Framework>> makeBaselines();

} // namespace harmonia

#endif // HARMONIA_FRAMEWORKS_FRAMEWORK_H_
