#include "frameworks/coyote.h"

namespace harmonia {

CoyoteFramework::CoyoteFramework() : Framework("Coyote")
{
}

bool
CoyoteFramework::supports(const FpgaDevice &device) const
{
    // Open-source shell targeting Xilinx Alveo-class boards.
    return device.chip().vendor() == Vendor::Xilinx &&
           device.boardVendor == Vendor::Xilinx;
}

ResourceVector
CoyoteFramework::shellResources(const FpgaDevice &device) const
{
    // Static layer: XDMA, TLB-based unified memory, network stack and
    // the vFPGA scheduling fabric — leaner than Vitis, still fixed.
    const ResourceVector &budget = device.chip().budget;
    ResourceVector r;
    r.lut = static_cast<std::uint64_t>(budget.lut * 0.150);
    r.reg = static_cast<std::uint64_t>(budget.reg * 0.135);
    r.bram = static_cast<std::uint64_t>(budget.bram * 0.165);
    r.uram = static_cast<std::uint64_t>(budget.uram * 0.040);
    r.dsp = static_cast<std::uint64_t>(budget.dsp * 0.006);
    return r;
}

std::size_t
CoyoteFramework::configOps(ConfigTask task) const
{
    switch (task) {
      case ConfigTask::MonitoringStatistics:
        return 71;
      case ConfigTask::NetworkInitialization:
        return 92;
      case ConfigTask::HostInteraction:
        return 54;
    }
    return 0;
}

} // namespace harmonia
