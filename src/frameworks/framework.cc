#include "frameworks/framework.h"

namespace harmonia {

const char *
toString(ConfigTask task)
{
    switch (task) {
      case ConfigTask::MonitoringStatistics:
        return "Monitoring Statistics";
      case ConfigTask::NetworkInitialization:
        return "Network Initialization";
      case ConfigTask::HostInteraction:
        return "Host Interaction Config";
    }
    return "?";
}

} // namespace harmonia
