#include "frameworks/oneapi.h"

namespace harmonia {

OneApiFramework::OneApiFramework() : Framework("oneAPI")
{
}

bool
OneApiFramework::supports(const FpgaDevice &device) const
{
    return device.chip().vendor() == Vendor::Intel &&
           device.boardVendor == Vendor::Intel;
}

ResourceVector
OneApiFramework::shellResources(const FpgaDevice &device) const
{
    // The OFS FIM static region: PCIe subsystem, memory subsystem,
    // HSSI, management — all present regardless of the workload.
    const ResourceVector &budget = device.chip().budget;
    ResourceVector r;
    r.lut = static_cast<std::uint64_t>(budget.lut * 0.165);
    r.reg = static_cast<std::uint64_t>(budget.reg * 0.150);
    r.bram = static_cast<std::uint64_t>(budget.bram * 0.185);
    r.uram = 0;
    r.dsp = static_cast<std::uint64_t>(budget.dsp * 0.010);
    return r;
}

std::size_t
OneApiFramework::configOps(ConfigTask task) const
{
    switch (task) {
      case ConfigTask::MonitoringStatistics:
        return 78;
      case ConfigTask::NetworkInitialization:
        return 104;
      case ConfigTask::HostInteraction:
        return 66;
    }
    return 0;
}

} // namespace harmonia
