/**
 * @file
 * The §5.4 comparison harness: pairs the baseline framework models
 * with real Harmonia shells and produces the device-support matrix
 * (Tab 3), per-benchmark shell footprints (Fig 18a) and config-cost
 * rows (Tab 4).
 */

#ifndef HARMONIA_FRAMEWORKS_COMPARISON_H_
#define HARMONIA_FRAMEWORKS_COMPARISON_H_

#include <map>

#include "frameworks/coyote.h"
#include "frameworks/oneapi.h"
#include "frameworks/vitis.h"
#include "shell/unified_shell.h"

namespace harmonia {

/** Device-support matrix (Table 3): framework -> device -> yes/no. */
struct SupportMatrix {
    std::vector<std::string> frameworks;  ///< row order
    std::vector<std::string> devices;     ///< column order
    std::map<std::pair<std::string, std::string>, bool> supported;
};

/** Build Table 3 over the standard device database + baselines. */
SupportMatrix buildSupportMatrix();

/** One Fig 18a row: a framework's shell footprint on a device. */
struct ShellFootprint {
    std::string framework;
    ResourceVector resources;
    double lutFraction = 0;
    double regFraction = 0;
    double bramFraction = 0;
};

/**
 * Fig 18a: baseline monolithic footprints on their supported device
 * plus the Harmonia shell actually tailored to @p role.
 */
std::vector<ShellFootprint>
compareShellFootprints(const FpgaDevice &device, const Shell &harmonia);

/** One Tab 4 row: task, register ops (worst baseline), command ops. */
struct ConfigCostRow {
    ConfigTask task;
    std::size_t registerOps = 0;
    std::size_t commandOps = 0;

    double ratio() const
    {
        return commandOps == 0
                   ? 0.0
                   : static_cast<double>(registerOps) / commandOps;
    }
};

/** Tab 4 rows: register baseline vs Harmonia commands for @p shell. */
std::vector<ConfigCostRow> compareConfigCosts(const Shell &shell);

} // namespace harmonia

#endif // HARMONIA_FRAMEWORKS_COMPARISON_H_
