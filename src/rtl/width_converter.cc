#include "rtl/width_converter.h"

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

ByteRepacker::ByteRepacker(std::size_t out_width) : outWidth_(out_width)
{
    if (out_width == 0)
        fatal("ByteRepacker output width must be non-zero");
}

void
ByteRepacker::feed(const Beat &in)
{
    residue_.insert(residue_.end(), in.data.begin(), in.data.end());
    while (residue_.size() >= outWidth_) {
        Beat b;
        b.data.assign(residue_.begin(),
                      residue_.begin() + static_cast<long>(outWidth_));
        residue_.erase(residue_.begin(),
                       residue_.begin() + static_cast<long>(outWidth_));
        b.last = in.last && residue_.empty();
        out_.push_back(std::move(b));
    }
    if (in.last && !residue_.empty()) {
        Beat b;
        b.data = std::move(residue_);
        residue_.clear();
        b.last = true;
        out_.push_back(std::move(b));
    }
}

Beat
ByteRepacker::pop()
{
    if (out_.empty())
        panic("ByteRepacker pop with no output ready");
    Beat b = std::move(out_.front());
    out_.pop_front();
    return b;
}

std::uint64_t
beatsForBytes(std::uint64_t bytes, std::uint64_t width)
{
    if (width == 0)
        fatal("bus width must be non-zero");
    return bytes == 0 ? 0 : ceilDiv(bytes, width);
}

} // namespace harmonia
