/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) — the MAC IP models append/verify an
 * Ethernet FCS with it.
 */

#ifndef HARMONIA_RTL_CRC_H_
#define HARMONIA_RTL_CRC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace harmonia {

/** Compute the Ethernet CRC-32 of @p data (reflected, final XOR). */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len);

/** Convenience overload for byte vectors. */
std::uint32_t crc32(const std::vector<std::uint8_t> &data);

/** Incremental CRC-32 builder for streamed data. */
class Crc32 {
  public:
    void update(const std::uint8_t *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data);
    std::uint32_t value() const;
    void reset();

  private:
    std::uint32_t state_ = 0xffffffffu;
};

} // namespace harmonia

#endif // HARMONIA_RTL_CRC_H_
