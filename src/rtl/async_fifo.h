/**
 * @file
 * Dual-clock FIFO with Gray-coded pointer synchronization — the
 * building block of Harmonia's parameterized clock-domain crossing
 * (§3.3.1, Figure 6; design per Cummings SNUG'02).
 */

#ifndef HARMONIA_RTL_ASYNC_FIFO_H_
#define HARMONIA_RTL_ASYNC_FIFO_H_

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"

namespace harmonia {

/**
 * A multi-flop synchronizer for a Gray-coded pointer crossing into a
 * foreign clock domain. shift() is called once per destination-domain
 * cycle; value() is the pointer as seen by that domain, delayed by the
 * synchronizer depth.
 */
class GraySync {
  public:
    /** @param stages Number of synchronizer flops (>= 2 in practice). */
    explicit GraySync(unsigned stages);

    /** One destination-domain clock edge: shift @p src_gray in. */
    void shift(std::uint64_t src_gray);

    /** The synchronized (delayed) Gray value. */
    std::uint64_t value() const { return regs_.back(); }

    /** True when every flop already holds @p src_gray — one more
     *  shift() of the same value would change nothing. */
    bool
    settled(std::uint64_t src_gray) const
    {
        for (std::uint64_t r : regs_)
            if (r != src_gray)
                return false;
        return true;
    }

    unsigned stages() const { return static_cast<unsigned>(regs_.size()); }

  private:
    std::vector<std::uint64_t> regs_;
};

/**
 * Dual-clock FIFO. The write side and read side belong to different
 * clock domains; each domain must call its tick function exactly once
 * per cycle of its own clock (the shell's CDC component does this).
 *
 * Occupancy as seen by each side is conservative, exactly as in real
 * hardware: the writer may think the FIFO is fuller than it is, the
 * reader may think it is emptier — never the unsafe direction.
 */
template <typename T>
class AsyncFifo {
  public:
    /**
     * @param capacity    Must be a power of two (pointer arithmetic).
     * @param sync_stages Synchronizer flops per crossing (default 2).
     */
    explicit AsyncFifo(std::size_t capacity, unsigned sync_stages = 2)
        : capacity_(capacity), storage_(capacity),
          wptrInRead_(sync_stages), rptrInWrite_(sync_stages)
    {
        if (!isPowerOf2(capacity))
            fatal("AsyncFifo capacity must be a power of two (got %zu)",
                  capacity);
    }

    /** One write-domain clock edge: synchronize the read pointer. */
    void writeTick() { rptrInWrite_.shift(binaryToGray(rptr_)); }

    /** One read-domain clock edge: synchronize the write pointer. */
    void readTick() { wptrInRead_.shift(binaryToGray(wptr_)); }

    /** Writer-visible free check (conservative). */
    bool
    canPush() const
    {
        const std::uint64_t rptr_seen =
            grayToBinary(rptrInWrite_.value());
        return wptr_ - rptr_seen < capacity_;
    }

    /** Reader-visible data check (conservative). */
    bool
    canPop() const
    {
        const std::uint64_t wptr_seen = grayToBinary(wptrInRead_.value());
        return rptr_ != wptr_seen;
    }

    void
    push(T item)
    {
        if (!canPush())
            panic("AsyncFifo push without canPush");
        storage_[wptr_ % capacity_] = std::move(item);
        ++wptr_;
        const std::size_t occupancy = trueSize();
        if (occupancy > highWater_)
            highWater_ = occupancy;
    }

    T
    pop()
    {
        if (!canPop())
            panic("AsyncFifo pop without canPop");
        T item = std::move(storage_[rptr_ % capacity_]);
        ++rptr_;
        return item;
    }

    /** True occupancy (testing/monitoring only — not domain-visible). */
    std::size_t
    trueSize() const
    {
        return static_cast<std::size_t>(wptr_ - rptr_);
    }

    std::size_t capacity() const { return capacity_; }
    unsigned syncStages() const { return wptrInRead_.stages(); }

    /** Peak true occupancy since construction (telemetry). */
    std::size_t highWater() const { return highWater_; }

    /**
     * Fully drained and settled: no data in flight and both pointer
     * synchronizers already show the source value, so writeTick() and
     * readTick() are no-ops until the next push. This is what lets an
     * idle engine fast-forward across a quiet CDC.
     */
    bool
    quiescent() const
    {
        return wptr_ == rptr_ &&
               wptrInRead_.settled(binaryToGray(wptr_)) &&
               rptrInWrite_.settled(binaryToGray(rptr_));
    }

  private:
    std::size_t capacity_;
    std::vector<T> storage_;
    std::size_t highWater_ = 0;
    std::uint64_t wptr_ = 0;  ///< write-domain binary pointer
    std::uint64_t rptr_ = 0;  ///< read-domain binary pointer
    GraySync wptrInRead_;     ///< wptr as seen by the read domain
    GraySync rptrInWrite_;    ///< rptr as seen by the write domain
};

} // namespace harmonia

#endif // HARMONIA_RTL_ASYNC_FIFO_H_
