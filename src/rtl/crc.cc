#include "rtl/crc.h"

#include <array>

namespace harmonia {

namespace {

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> &
table()
{
    static const std::array<std::uint32_t, 256> t = makeTable();
    return t;
}

} // namespace

void
Crc32::update(const std::uint8_t *data, std::size_t len)
{
    const auto &t = table();
    for (std::size_t i = 0; i < len; ++i)
        state_ = t[(state_ ^ data[i]) & 0xff] ^ (state_ >> 8);
}

void
Crc32::update(const std::vector<std::uint8_t> &data)
{
    update(data.data(), data.size());
}

std::uint32_t
Crc32::value() const
{
    return state_ ^ 0xffffffffu;
}

void
Crc32::reset()
{
    state_ = 0xffffffffu;
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len)
{
    Crc32 c;
    c.update(data, len);
    return c.value();
}

std::uint32_t
crc32(const std::vector<std::uint8_t> &data)
{
    return crc32(data.data(), data.size());
}

} // namespace harmonia
