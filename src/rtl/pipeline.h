/**
 * @file
 * Fixed-latency pipeline register chain. The interface wrappers (§3.2)
 * are "fully pipelined sequential translation logic" that adds a few
 * fixed cycles of latency without creating bubbles — this models that.
 */

#ifndef HARMONIA_RTL_PIPELINE_H_
#define HARMONIA_RTL_PIPELINE_H_

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace harmonia {

/**
 * An N-deep shift register of optional payloads. Each cycle the caller
 * shifts once; at most one item may enter per cycle and items emerge
 * exactly N cycles later, preserving order and throughput (one item
 * per cycle — no bubbles are introduced).
 */
template <typename T>
class PipelineReg {
  public:
    explicit PipelineReg(unsigned depth) : stages_(depth)
    {
        if (depth == 0)
            fatal("PipelineReg depth must be non-zero");
    }

    /**
     * Advance one cycle: shift the pipe, inserting @p in (which may be
     * empty) and returning whatever falls out of the last stage.
     */
    std::optional<T>
    shift(std::optional<T> in)
    {
        std::optional<T> out = std::move(stages_.back());
        for (std::size_t i = stages_.size(); i-- > 1;)
            stages_[i] = std::move(stages_[i - 1]);
        stages_[0] = std::move(in);
        return out;
    }

    unsigned depth() const { return static_cast<unsigned>(stages_.size()); }

    /** Number of occupied stages (for drain checks). */
    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (const auto &s : stages_)
            if (s.has_value())
                ++n;
        return n;
    }

    bool empty() const { return occupancy() == 0; }

  private:
    std::vector<std::optional<T>> stages_;
};

/**
 * A time-stamped delay line: items pushed now become popable after a
 * fixed latency, with no rate limit — the packet-level view of a fully
 * pipelined datapath stage. Used where PipelineReg's one-slot-per-
 * cycle granularity is finer than the model needs.
 */
template <typename T>
class DelayLine {
  public:
    void
    push(T item, Tick ready_at)
    {
        if (!items_.empty() && ready_at < items_.back().first)
            ready_at = items_.back().first;  // preserve FIFO order
        items_.emplace_back(ready_at, std::move(item));
    }

    bool
    ready(Tick now) const
    {
        return !items_.empty() && items_.front().first <= now;
    }

    T
    pop(Tick now)
    {
        if (!ready(now))
            panic("DelayLine pop before ready");
        T item = std::move(items_.front().second);
        items_.pop_front();
        return item;
    }

    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    /** Ready time of the oldest item; kTickMax when empty (the idle
     *  fast-forward wake hint). */
    Tick
    frontReadyAt() const
    {
        return items_.empty() ? kTickMax : items_.front().first;
    }

  private:
    std::deque<std::pair<Tick, T>> items_;
};

} // namespace harmonia

#endif // HARMONIA_RTL_PIPELINE_H_
