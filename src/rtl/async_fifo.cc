#include "rtl/async_fifo.h"

namespace harmonia {

GraySync::GraySync(unsigned stages) : regs_(stages, 0)
{
    if (stages < 1)
        fatal("GraySync needs at least one stage");
}

void
GraySync::shift(std::uint64_t src_gray)
{
    for (std::size_t i = regs_.size(); i-- > 1;)
        regs_[i] = regs_[i - 1];
    regs_[0] = src_gray;
}

} // namespace harmonia
