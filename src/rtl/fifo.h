/**
 * @file
 * Bounded single-clock FIFO. The basic queueing element between stages
 * inside one clock domain; cross-domain queues use AsyncFifo.
 */

#ifndef HARMONIA_RTL_FIFO_H_
#define HARMONIA_RTL_FIFO_H_

#include <cstddef>
#include <deque>
#include <utility>

#include "common/logging.h"

namespace harmonia {

/**
 * A bounded FIFO with explicit back-pressure: producers must check
 * canPush() (the "ready" signal) before push().
 */
template <typename T>
class Fifo {
  public:
    explicit Fifo(std::size_t capacity) : capacity_(capacity)
    {
        if (capacity == 0)
            fatal("Fifo capacity must be non-zero");
    }

    bool canPush() const { return items_.size() < capacity_; }
    bool canPop() const { return !items_.empty(); }

    std::size_t size() const { return items_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }

    void
    push(T item)
    {
        if (full())
            panic("push to full FIFO (producer ignored back-pressure)");
        items_.push_back(std::move(item));
    }

    T
    pop()
    {
        if (empty())
            panic("pop from empty FIFO");
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    const T &
    front() const
    {
        if (empty())
            panic("front of empty FIFO");
        return items_.front();
    }

    void clear() { items_.clear(); }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
};

} // namespace harmonia

#endif // HARMONIA_RTL_FIFO_H_
