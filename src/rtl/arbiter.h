/**
 * @file
 * Round-robin arbitration. The Host RBB schedules its 1K DMA queues
 * with an active-list round-robin (§3.3.1); the unified control kernel
 * arbitrates between software controllers.
 */

#ifndef HARMONIA_RTL_ARBITER_H_
#define HARMONIA_RTL_ARBITER_H_

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace harmonia {

/**
 * Work-conserving round-robin arbiter over a fixed set of requestors.
 * grant() scans from the slot after the previous winner and returns the
 * first requesting slot, or nothing when no slot requests.
 */
class RoundRobinArbiter {
  public:
    explicit RoundRobinArbiter(std::size_t num_slots);

    /**
     * @param requesting Predicate: does slot i want a grant this cycle?
     * @return granted slot, if any.
     */
    std::optional<std::size_t>
    grant(const std::function<bool(std::size_t)> &requesting);

    std::size_t numSlots() const { return numSlots_; }

    /** Slot that would be scanned first next call. */
    std::size_t nextSlot() const { return next_; }

    void reset() { next_ = 0; }

  private:
    std::size_t numSlots_;
    std::size_t next_ = 0;
};

/**
 * Round-robin over a dynamic membership set (the Host RBB's
 * active-queue list): only member slots are scanned, so the cost per
 * grant is O(active) instead of O(total queues).
 */
class ActiveListArbiter {
  public:
    explicit ActiveListArbiter(std::size_t num_slots);

    /** Mark a slot active (idempotent). */
    void activate(std::size_t slot);

    /** Mark a slot inactive (idempotent). */
    void deactivate(std::size_t slot);

    bool isActive(std::size_t slot) const;
    std::size_t activeCount() const { return active_.size(); }

    /**
     * Grant the next active slot for which @p requesting holds;
     * slots that no longer request are skipped but stay active.
     */
    std::optional<std::size_t>
    grant(const std::function<bool(std::size_t)> &requesting);

  private:
    std::size_t numSlots_;
    std::vector<std::size_t> active_;      ///< active slots, scan order
    std::vector<std::size_t> position_;    ///< slot -> index+1 (0 = off)
    std::size_t cursor_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_RTL_ARBITER_H_
