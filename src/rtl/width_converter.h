/**
 * @file
 * Byte-level width conversion between interfaces of different data
 * widths — what the wrapper/CDC logic does when an RBB at M bits feeds
 * a role at U bits (§3.3.1).
 */

#ifndef HARMONIA_RTL_WIDTH_CONVERTER_H_
#define HARMONIA_RTL_WIDTH_CONVERTER_H_

#include <cstdint>
#include <deque>
#include <vector>

namespace harmonia {

/** One data beat: up to width-bytes of payload plus framing. */
struct Beat {
    std::vector<std::uint8_t> data;  ///< valid payload bytes
    bool last = false;               ///< end of packet/burst
};

/**
 * Re-packs an input beat stream of arbitrary widths into output beats
 * of exactly @p out_width bytes (the final beat of a packet may be
 * short). Framing (last) is preserved: an input beat with last=true
 * flushes the residue.
 */
class ByteRepacker {
  public:
    explicit ByteRepacker(std::size_t out_width);

    /** Feed one input beat; ready output beats become popable. */
    void feed(const Beat &in);

    bool hasOutput() const { return !out_.empty(); }
    Beat pop();

    /** Bytes buffered but not yet emitted. */
    std::size_t residue() const { return residue_.size(); }

    std::size_t outWidth() const { return outWidth_; }

  private:
    std::size_t outWidth_;
    std::vector<std::uint8_t> residue_;
    std::deque<Beat> out_;
};

/**
 * Number of output beats a packet of @p bytes occupies on a bus that
 * carries @p width bytes per beat.
 */
std::uint64_t beatsForBytes(std::uint64_t bytes, std::uint64_t width);

} // namespace harmonia

#endif // HARMONIA_RTL_WIDTH_CONVERTER_H_
