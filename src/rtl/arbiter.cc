#include "rtl/arbiter.h"

#include "common/logging.h"

namespace harmonia {

RoundRobinArbiter::RoundRobinArbiter(std::size_t num_slots)
    : numSlots_(num_slots)
{
    if (num_slots == 0)
        fatal("arbiter needs at least one slot");
}

std::optional<std::size_t>
RoundRobinArbiter::grant(const std::function<bool(std::size_t)> &requesting)
{
    for (std::size_t i = 0; i < numSlots_; ++i) {
        const std::size_t slot = (next_ + i) % numSlots_;
        if (requesting(slot)) {
            next_ = (slot + 1) % numSlots_;
            return slot;
        }
    }
    return std::nullopt;
}

ActiveListArbiter::ActiveListArbiter(std::size_t num_slots)
    : numSlots_(num_slots), position_(num_slots, 0)
{
    if (num_slots == 0)
        fatal("arbiter needs at least one slot");
}

void
ActiveListArbiter::activate(std::size_t slot)
{
    if (slot >= numSlots_)
        fatal("activate: slot %zu out of range (%zu)", slot, numSlots_);
    if (position_[slot] != 0)
        return;
    active_.push_back(slot);
    position_[slot] = active_.size();
}

void
ActiveListArbiter::deactivate(std::size_t slot)
{
    if (slot >= numSlots_)
        fatal("deactivate: slot %zu out of range (%zu)", slot, numSlots_);
    const std::size_t pos1 = position_[slot];
    if (pos1 == 0)
        return;
    const std::size_t idx = pos1 - 1;
    const std::size_t last = active_.back();
    active_[idx] = last;
    position_[last] = idx + 1;
    active_.pop_back();
    position_[slot] = 0;
    if (cursor_ >= active_.size())
        cursor_ = 0;
}

bool
ActiveListArbiter::isActive(std::size_t slot) const
{
    return slot < numSlots_ && position_[slot] != 0;
}

std::optional<std::size_t>
ActiveListArbiter::grant(const std::function<bool(std::size_t)> &requesting)
{
    const std::size_t n = active_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = (cursor_ + i) % n;
        const std::size_t slot = active_[idx];
        if (requesting(slot)) {
            cursor_ = (idx + 1) % n;
            return slot;
        }
    }
    return std::nullopt;
}

} // namespace harmonia
