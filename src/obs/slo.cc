#include "obs/slo.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "sim/trace.h"

namespace harmonia {

const char *
toString(SloKind kind)
{
    switch (kind) {
      case SloKind::ErrorRate:
        return "error_rate";
      case SloKind::LatencyP99:
        return "latency_p99";
      case SloKind::OccupancyAbove:
        return "occupancy_above";
      case SloKind::GaugeBelow:
        return "gauge_below";
    }
    return "?";
}

const char *
toString(AlertState state)
{
    switch (state) {
      case AlertState::Inactive:
        return "inactive";
      case AlertState::Pending:
        return "pending";
      case AlertState::Firing:
        return "firing";
      case AlertState::Resolved:
        return "resolved";
    }
    return "?";
}

SloEngine::SloEngine(std::string name, TimeSeriesStore &store,
                     Tick evalPeriod)
    : Component(std::move(name)), store_(store),
      evalPeriod_(evalPeriod), stats_(this->name())
{
    if (evalPeriod == 0)
        fatal("slo engine '%s': eval period must be non-zero",
              this->name().c_str());
}

std::size_t
SloEngine::addSpec(SloSpec spec)
{
    if (spec.name.empty())
        fatal("slo spec with an empty name");
    if (spec.burnThreshold <= 0.0)
        fatal("slo spec '%s': burn threshold must be positive",
              spec.name.c_str());
    Alert a;
    a.status.name = spec.name;
    a.spec = std::move(spec);
    alerts_.push_back(std::move(a));
    return alerts_.size() - 1;
}

const SloSpec &
SloEngine::spec(std::size_t i) const
{
    if (i >= alerts_.size())
        fatal("slo engine '%s': spec index %zu out of range",
              name().c_str(), i);
    return alerts_[i].spec;
}

const AlertStatus &
SloEngine::status(std::size_t i) const
{
    if (i >= alerts_.size())
        fatal("slo engine '%s': spec index %zu out of range",
              name().c_str(), i);
    return alerts_[i].status;
}

std::vector<AlertStatus>
SloEngine::statuses() const
{
    std::vector<AlertStatus> out;
    out.reserve(alerts_.size());
    for (const Alert &a : alerts_)
        out.push_back(a.status);
    return out;
}

bool
SloEngine::anyActive() const
{
    for (const Alert &a : alerts_)
        if (a.status.state == AlertState::Pending ||
            a.status.state == AlertState::Firing)
            return true;
    return false;
}

double
SloEngine::burnRate(const SloSpec &spec, const TimeSeriesStore &store,
                    Tick now)
{
    switch (spec.kind) {
      case SloKind::ErrorRate: {
        const double bad =
            store.delta(spec.badMetric, spec.window, now);
        const double total =
            store.delta(spec.totalMetric, spec.window, now);
        if (total <= 0.0)
            return 0.0;
        const double allowed = 1.0 - spec.objective;
        if (allowed <= 0.0)
            return bad > 0.0 ? spec.burnThreshold * 2.0 : 0.0;
        return (bad / total) / allowed;
      }
      case SloKind::LatencyP99: {
        if (spec.objective <= 0.0)
            return 0.0;
        return store.percentileOver(spec.metric, spec.window, 99.0,
                                    now) /
               spec.objective;
      }
      case SloKind::OccupancyAbove: {
        if (spec.objective <= 0.0)
            return 0.0;
        const TsWindowStats w =
            store.windowStats(spec.metric, spec.window, now);
        return w.empty() ? 0.0 : w.mean / spec.objective;
      }
      case SloKind::GaugeBelow: {
        const TsWindowStats w =
            store.windowStats(spec.metric, spec.window, now);
        if (w.empty())
            return 0.0;
        if (w.mean <= 0.0)
            return spec.objective > 0.0 ? 2.0 : 0.0;
        return spec.objective / w.mean;
      }
    }
    return 0.0;
}

void
SloEngine::transition(Alert &a, AlertState to, Tick now)
{
    const AlertState from = a.status.state;
    if (from == to)
        return;
    a.status.state = to;
    a.status.since = now;
    stats_.counter(std::string("to_") + toString(to)).inc();
    switch (to) {
      case AlertState::Pending:
        ++a.status.pendingEvents;
        break;
      case AlertState::Firing:
        ++a.status.fireEvents;
        a.firedAt = now;
        a.clearSince = 0;
        break;
      case AlertState::Resolved:
        ++a.status.resolveEvents;
        // The firing interval renders as one span on the alert track,
        // next to the workload spans that burned the budget.
        Trace::instance().completeSpan(a.firedAt, now, name(),
                                       "alert:" + a.spec.name,
                                       "alert");
        break;
      case AlertState::Inactive:
        break;
    }
    trace(*this, "alert %s: %s -> %s (burn %.3f)",
          a.spec.name.c_str(), toString(from), toString(to),
          a.status.burnRate);
    if (recorder_ != nullptr)
        recorder_->noteAlert(a.spec.name, toString(from), toString(to),
                             now, a.status.burnRate,
                             to == AlertState::Firing);
}

void
SloEngine::evaluate(Tick now)
{
    for (Alert &a : alerts_) {
        const SloSpec &s = a.spec;
        const double burn = burnRate(s, store_, now);
        a.status.burnRate = burn;
        ++a.evals;
        stats_.counter("evaluations").inc();

        const bool trip = burn >= s.burnThreshold;
        const bool clear = burn <= s.burnThreshold * s.clearRatio;
        if (trip) {
            ++a.breaches;
            stats_.counter("breaches").inc();
        }

        // Lifetime budget: error SLOs consume bad/total against the
        // allowance; everything else reports its breach-time fraction.
        if (s.kind == SloKind::ErrorRate) {
            const double bad = store_.latest(s.badMetric);
            const double total = store_.latest(s.totalMetric);
            const double allowed = 1.0 - s.objective;
            a.status.budgetConsumed =
                total > 0.0 && allowed > 0.0
                    ? (bad / total) / allowed
                    : 0.0;
        } else {
            a.status.budgetConsumed =
                a.evals != 0 ? static_cast<double>(a.breaches) /
                                   static_cast<double>(a.evals)
                             : 0.0;
        }

        switch (a.status.state) {
          case AlertState::Inactive:
            if (trip)
                transition(a, AlertState::Pending, now);
            break;
          case AlertState::Pending:
            if (trip && now - a.status.since >= s.pendingFor)
                transition(a, AlertState::Firing, now);
            else if (clear)
                transition(a, AlertState::Inactive, now);
            // In the hysteresis band: hold pending, never promote.
            break;
          case AlertState::Firing:
            if (!clear) {
                a.clearSince = 0;
                break;
            }
            if (a.clearSince == 0)
                a.clearSince = now;
            if (now - a.clearSince >= s.resolveFor)
                transition(a, AlertState::Resolved, now);
            break;
          case AlertState::Resolved:
            if (trip)
                transition(a, AlertState::Pending, now);
            else if (now - a.status.since >= s.resolveFor)
                transition(a, AlertState::Inactive, now);
            break;
        }
    }
}

void
SloEngine::tick()
{
    if (now() < nextDue_)
        return;
    evaluate(now());
    nextDue_ = now() + evalPeriod_;
}

void
SloEngine::registerTelemetry(MetricsRegistry &reg,
                             const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    for (std::size_t i = 0; i < alerts_.size(); ++i) {
        const std::string base = prefix + "/" + alerts_[i].spec.name;
        telemetry_.addGauge(base + "/state", [this, i] {
            return static_cast<double>(alerts_[i].status.state);
        });
        telemetry_.addGauge(base + "/burn_rate", [this, i] {
            return alerts_[i].status.burnRate;
        });
        telemetry_.addGauge(base + "/budget_consumed", [this, i] {
            return alerts_[i].status.budgetConsumed;
        });
    }
}

} // namespace harmonia
