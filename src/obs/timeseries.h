/**
 * @file
 * In-process time-series store: the retained-history half of the
 * observe→decide loop. The MetricsRegistry only knows instantaneous
 * values; this store keeps every registered metric's recent past in
 * fixed memory — a raw ring of (tick, value) points per series plus
 * two tiered rollup rings (min/max/sum/count per window) so long
 * horizons survive after the raw ring has wrapped. The Sampler feeds
 * it on every scrape, so history for the whole registry costs one
 * attachStore() call.
 *
 * Queries are windowed: delta and rate for counters, min/max/mean for
 * gauges, and sliding percentiles computed by folding the window's
 * raw points through the existing Histogram. The SLO engine evaluates
 * burn rates over exactly these windows, and the flight recorder
 * snapshots series tails into its post-mortem bundle.
 *
 * Determinism contract: all state derives from ingested (tick, value)
 * pairs — no wall clock, no allocation-order dependence (series are
 * kept in a name-sorted map), so identical scrape sequences produce
 * identical stores, byte-identical once serialized.
 */

#ifndef HARMONIA_OBS_TIMESERIES_H_
#define HARMONIA_OBS_TIMESERIES_H_

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** One retained observation. */
struct TsPoint {
    Tick tick = 0;
    double value = 0.0;
};

/** One rollup window's aggregate. */
struct TsRollup {
    Tick windowStart = 0;  ///< window covers [start, start + window)
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double last = 0.0;
    std::uint64_t count = 0;

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/** The two rollup tiers above the raw ring. */
enum class TsTier { Mid = 0, Long = 1 };

/** Windowed aggregate of raw points (empty() when no point hit). */
struct TsWindowStats {
    std::uint64_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double first = 0.0;
    double last = 0.0;
    Tick firstTick = 0;
    Tick lastTick = 0;

    bool empty() const { return count == 0; }
};

/** Retention shape; every series in a store shares one config. */
struct TsConfig {
    /** Raw points kept per series. */
    std::size_t rawCapacity = 512;
    /** Rollup buckets kept per tier per series. */
    std::size_t rollupCapacity = 128;
    /** Mid-tier window: 1k cycles of the 250 MHz kernel clock. */
    Tick midWindow = 4'000'000;
    /** Long-tier window: 100k cycles of the same clock. */
    Tick longWindow = 400'000'000;
    /** Hard bound on distinct series (fixed-memory guarantee). */
    std::size_t maxSeries = 4096;
};

class TimeSeriesStore {
  public:
    explicit TimeSeriesStore(TsConfig config = {});

    const TsConfig &config() const { return config_; }

    /**
     * Record one scrape: every scalar sample lands under its metric
     * name; a histogram sample additionally lands its p50/p99 under
     * `<name>/p50` and `<name>/p99` so percentile history is queryable
     * like any gauge. Series are created lazily up to maxSeries;
     * excess series are dropped and counted.
     */
    void ingest(Tick tick, const std::vector<MetricSample> &samples);

    /** Record one point of one series (tests, derived metrics). */
    void ingestPoint(Tick tick, const std::string &name, double value);

    std::size_t seriesCount() const { return series_.size(); }
    bool has(const std::string &name) const;

    /** Name-sorted series names (deterministic iteration order). */
    std::vector<std::string> seriesNames() const;

    /** Raw points oldest→newest; empty vector for unknown series. */
    std::vector<TsPoint> points(const std::string &name) const;

    /** Rollup buckets oldest→newest for one tier. */
    std::vector<TsRollup> rollups(const std::string &name,
                                  TsTier tier) const;

    /** Most recent value; 0.0 when the series is unknown or empty. */
    double latest(const std::string &name) const;
    Tick latestTick(const std::string &name) const;

    /**
     * last - first over raw points in [now - window, now]. The natural
     * counter query; 0.0 when fewer than two points land in-window.
     */
    double delta(const std::string &name, Tick window, Tick now) const;

    /**
     * delta() divided by the observed span (first→last point) in
     * seconds of simulated time; 0.0 on a degenerate window.
     */
    double rate(const std::string &name, Tick window, Tick now) const;

    /** min/max/mean/first/last over raw points in the window. */
    TsWindowStats windowStats(const std::string &name, Tick window,
                              Tick now) const;

    /**
     * Sliding percentile over the window's raw points, folded through
     * the existing Histogram (same bucket-midpoint contract: empty
     * window → 0.0, one sample → that sample's bucket midpoint).
     * Negative values clamp to 0 (tick/occupancy series are >= 0).
     */
    double percentileOver(const std::string &name, Tick window,
                          double pct, Tick now) const;

    /** Scrapes ingested / points dropped by the maxSeries bound. */
    std::uint64_t ingested() const { return ingested_; }
    std::uint64_t droppedSeries() const { return droppedSeries_; }

    void clear();

  private:
    struct Series {
        BoundedRing<TsPoint> raw;
        BoundedRing<TsRollup> mid;
        BoundedRing<TsRollup> lng;
        TsRollup midOpen;   ///< accumulating bucket, not yet sealed
        TsRollup lngOpen;
        bool midStarted = false;
        bool lngStarted = false;

        explicit Series(const TsConfig &cfg)
            : raw(cfg.rawCapacity), mid(cfg.rollupCapacity),
              lng(cfg.rollupCapacity)
        {
        }
    };

    Series *findOrCreate(const std::string &name);
    const Series *find(const std::string &name) const;
    static void fold(TsRollup &open, bool &started, Tick window,
                     BoundedRing<TsRollup> &sealed, Tick tick,
                     double value);
    /** Raw points of @p s inside [now - window, now], oldest→newest. */
    std::vector<TsPoint> windowPoints(const Series &s, Tick window,
                                      Tick now) const;

    TsConfig config_;
    std::map<std::string, Series> series_;
    std::uint64_t ingested_ = 0;
    std::uint64_t droppedSeries_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_OBS_TIMESERIES_H_
