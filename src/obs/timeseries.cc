#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace harmonia {

TimeSeriesStore::TimeSeriesStore(TsConfig config) : config_(config)
{
    if (config_.rawCapacity == 0 || config_.rollupCapacity == 0)
        fatal("time-series store: ring capacities must be non-zero");
    if (config_.midWindow == 0 || config_.longWindow == 0)
        fatal("time-series store: rollup windows must be non-zero");
}

TimeSeriesStore::Series *
TimeSeriesStore::findOrCreate(const std::string &name)
{
    auto it = series_.find(name);
    if (it != series_.end())
        return &it->second;
    if (series_.size() >= config_.maxSeries) {
        ++droppedSeries_;
        return nullptr;
    }
    it = series_.emplace(name, Series(config_)).first;
    return &it->second;
}

const TimeSeriesStore::Series *
TimeSeriesStore::find(const std::string &name) const
{
    const auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

void
TimeSeriesStore::fold(TsRollup &open, bool &started, Tick window,
                      BoundedRing<TsRollup> &sealed, Tick tick,
                      double value)
{
    const Tick start = (tick / window) * window;
    if (started && open.windowStart != start) {
        sealed.push(open);
        started = false;
    }
    if (!started) {
        open = TsRollup{};
        open.windowStart = start;
        open.min = value;
        open.max = value;
        started = true;
    }
    open.min = std::min(open.min, value);
    open.max = std::max(open.max, value);
    open.sum += value;
    open.last = value;
    ++open.count;
}

void
TimeSeriesStore::ingestPoint(Tick tick, const std::string &name,
                             double value)
{
    Series *s = findOrCreate(name);
    if (s == nullptr)
        return;
    s->raw.push(TsPoint{tick, value});
    fold(s->midOpen, s->midStarted, config_.midWindow, s->mid, tick,
         value);
    fold(s->lngOpen, s->lngStarted, config_.longWindow, s->lng, tick,
         value);
}

void
TimeSeriesStore::ingest(Tick tick,
                        const std::vector<MetricSample> &samples)
{
    ++ingested_;
    for (const MetricSample &m : samples) {
        ingestPoint(tick, m.name, m.value);
        if (m.kind == MetricKind::Histogram) {
            ingestPoint(tick, m.name + "/p50", m.p50);
            ingestPoint(tick, m.name + "/p99", m.p99);
        }
    }
}

bool
TimeSeriesStore::has(const std::string &name) const
{
    return find(name) != nullptr;
}

std::vector<std::string>
TimeSeriesStore::seriesNames() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto &[name, s] : series_)
        out.push_back(name);
    return out;
}

std::vector<TsPoint>
TimeSeriesStore::points(const std::string &name) const
{
    const Series *s = find(name);
    return s == nullptr ? std::vector<TsPoint>{} : s->raw.snapshot();
}

std::vector<TsRollup>
TimeSeriesStore::rollups(const std::string &name, TsTier tier) const
{
    const Series *s = find(name);
    if (s == nullptr)
        return {};
    // The open bucket is part of the answer: a decision loop must see
    // the current window, not just sealed history.
    std::vector<TsRollup> out = tier == TsTier::Mid
                                    ? s->mid.snapshot()
                                    : s->lng.snapshot();
    const bool started =
        tier == TsTier::Mid ? s->midStarted : s->lngStarted;
    if (started)
        out.push_back(tier == TsTier::Mid ? s->midOpen : s->lngOpen);
    return out;
}

double
TimeSeriesStore::latest(const std::string &name) const
{
    const Series *s = find(name);
    if (s == nullptr || s->raw.size() == 0)
        return 0.0;
    return s->raw.at(s->raw.size() - 1).value;
}

Tick
TimeSeriesStore::latestTick(const std::string &name) const
{
    const Series *s = find(name);
    if (s == nullptr || s->raw.size() == 0)
        return 0;
    return s->raw.at(s->raw.size() - 1).tick;
}

std::vector<TsPoint>
TimeSeriesStore::windowPoints(const Series &s, Tick window,
                              Tick now) const
{
    const Tick from = now >= window ? now - window : 0;
    std::vector<TsPoint> out;
    for (std::size_t i = 0; i < s.raw.size(); ++i) {
        const TsPoint &p = s.raw.at(i);
        if (p.tick >= from && p.tick <= now)
            out.push_back(p);
    }
    return out;
}

double
TimeSeriesStore::delta(const std::string &name, Tick window,
                       Tick now) const
{
    const Series *s = find(name);
    if (s == nullptr)
        return 0.0;
    const std::vector<TsPoint> pts = windowPoints(*s, window, now);
    if (pts.size() < 2)
        return 0.0;
    return pts.back().value - pts.front().value;
}

double
TimeSeriesStore::rate(const std::string &name, Tick window,
                      Tick now) const
{
    const Series *s = find(name);
    if (s == nullptr)
        return 0.0;
    const std::vector<TsPoint> pts = windowPoints(*s, window, now);
    if (pts.size() < 2 || pts.back().tick == pts.front().tick)
        return 0.0;
    const double span_s =
        static_cast<double>(pts.back().tick - pts.front().tick) /
        static_cast<double>(kTicksPerSecond);
    return (pts.back().value - pts.front().value) / span_s;
}

TsWindowStats
TimeSeriesStore::windowStats(const std::string &name, Tick window,
                             Tick now) const
{
    TsWindowStats out;
    const Series *s = find(name);
    if (s == nullptr)
        return out;
    for (const TsPoint &p : windowPoints(*s, window, now)) {
        if (out.count == 0) {
            out.min = p.value;
            out.max = p.value;
            out.first = p.value;
            out.firstTick = p.tick;
        }
        out.min = std::min(out.min, p.value);
        out.max = std::max(out.max, p.value);
        out.mean += p.value;
        out.last = p.value;
        out.lastTick = p.tick;
        ++out.count;
    }
    if (out.count != 0)
        out.mean /= static_cast<double>(out.count);
    return out;
}

double
TimeSeriesStore::percentileOver(const std::string &name, Tick window,
                                double pct, Tick now) const
{
    const Series *s = find(name);
    if (s == nullptr)
        return 0.0;
    const std::vector<TsPoint> pts = windowPoints(*s, window, now);
    if (pts.empty())
        return 0.0;
    double maxv = 0.0;
    for (const TsPoint &p : pts)
        maxv = std::max(maxv, p.value);
    // 256 buckets spanning [0, max]; the Histogram's bucket-midpoint
    // contract then applies unchanged to the sliding window.
    const std::uint64_t width = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(maxv / 255.0) + 1);
    Histogram h(width, 256);
    for (const TsPoint &p : pts)
        h.sample(p.value <= 0.0
                     ? 0
                     : static_cast<std::uint64_t>(
                           std::llround(p.value)));
    return h.percentile(pct);
}

void
TimeSeriesStore::clear()
{
    series_.clear();
    ingested_ = 0;
    droppedSeries_ = 0;
}

} // namespace harmonia
