/**
 * @file
 * Canned 4-card fleet harness behind `examples/fleet_watch` and
 * `tools/harmonia_top` (tools stay thin front-ends; the scenario
 * logic lives here, library-side, where tests can drive it too).
 *
 * The scenario: four heterogeneous unified shells (Xilinx DeviceA/B,
 * the embedded DeviceC, Intel DeviceD) publish telemetry into the
 * shared registry; an ObsHub federates all four over streaming
 * subscriptions while seeded mixed traffic (rx packets + command
 * rounds) runs on every card. A DeviceDeath window kills one victim
 * mid-run; the hub's liveness tracking declares it dead, the fleet
 * `devices/alive` series drops, and the registered fleet SLO walks
 * the burn-rate lifecycle to firing. When tracing is on, periodic
 * fleet sweeps issue one command per card under a single correlation
 * id, so the trace federation has genuine cross-device trees to
 * stitch. Everything is seeded and simulated-time-paced, so the
 * resulting dashboard bytes are identical across reruns and thread
 * counts.
 */

#ifndef HARMONIA_OBS_FLEET_SIM_H_
#define HARMONIA_OBS_FLEET_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "obs/hub.h"
#include "obs/top_view.h"
#include "obs/trace_federation.h"

namespace harmonia {

/** Scenario knobs; the defaults reproduce the documented drill. */
struct FleetSimConfig {
    std::uint64_t seed = 20260808;
    int rounds = 40;
    Tick roundTicks = 5'000'000;
    /** Victim card and when its DeviceDeath window opens. */
    std::string victim = "DeviceC";
    Tick deathAt = 120'000'000;
    bool injectFault = true;
    /** Enable tracing + periodic cross-device fleet sweeps. */
    bool trace = false;
};

class FleetSim {
  public:
    explicit FleetSim(FleetSimConfig config = {});
    ~FleetSim();

    FleetSim(const FleetSim &) = delete;
    FleetSim &operator=(const FleetSim &) = delete;

    const FleetSimConfig &config() const { return cfg_; }

    /** One traffic + poll round; false once all rounds have run. */
    bool step();

    /** Run every remaining round. */
    void run();

    int round() const { return round_; }

    Engine &engine() { return engine_; }
    ObsHub &hub() { return hub_; }
    const ObsHub &hub() const { return hub_; }
    FaultPlan &plan() { return plan_; }
    TraceFederation &federation() { return fed_; }
    Shell &shell(std::size_t i) { return *shells_[i]; }
    std::size_t shellCount() const { return shells_.size(); }

    /** The dashboard at the current simulated time. */
    std::string top() const;

    /** Device + stream-state summary lines. */
    std::string summary() const { return hub_.summary(); }

    /** Order-sensitive hash of the end state (dashboard + summary +
     *  fault log) — the byte the determinism checks compare. */
    std::uint64_t fingerprint() const;

  private:
    void trafficRound();

    FleetSimConfig cfg_;
    Engine engine_;
    std::vector<std::unique_ptr<Shell>> shells_;
    std::vector<std::unique_ptr<CmdDriver>> drivers_;
    ObsHub hub_;
    FaultPlan plan_;
    TraceFederation fed_;
    int round_ = 0;
    std::uint64_t pktsInjected_ = 0;
    bool traceWasEnabled_ = false;
};

} // namespace harmonia

#endif // HARMONIA_OBS_FLEET_SIM_H_
