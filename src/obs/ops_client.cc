#include "obs/ops_client.h"

#include "telemetry/telemetry_target.h"

namespace harmonia {

namespace {

std::uint64_t
popU64(const std::vector<std::uint32_t> &data, std::size_t at)
{
    return (static_cast<std::uint64_t>(data[at]) << 32) | data[at + 1];
}

bool
validKind(std::uint32_t raw)
{
    return raw <= static_cast<std::uint32_t>(SloKind::GaugeBelow);
}

bool
validState(std::uint32_t raw)
{
    return raw <= static_cast<std::uint32_t>(AlertState::Resolved);
}

} // namespace

const char *
toString(OpsDecodeError err)
{
    switch (err) {
      case OpsDecodeError::Ok:
        return "ok";
      case OpsDecodeError::Transport:
        return "transport";
      case OpsDecodeError::Truncated:
        return "truncated";
      case OpsDecodeError::Malformed:
        return "malformed";
    }
    return "?";
}

OpsDecodeError
OpsClient::decodeSloCount(const CommandPacket &resp,
                          std::uint32_t *count)
{
    if (resp.status != kCmdOk)
        return OpsDecodeError::Transport;
    if (resp.data.empty())
        return OpsDecodeError::Truncated;
    if (resp.data[0] > kMaxWireRecords)
        return OpsDecodeError::Malformed;
    *count = resp.data[0];
    return OpsDecodeError::Ok;
}

OpsDecodeError
OpsClient::decodeSlo(const CommandPacket &resp, WireSlo *out)
{
    if (resp.status != kCmdOk)
        return OpsDecodeError::Transport;
    // total, index, kind, state, 4 x u64, 3 counters, packed name.
    const std::size_t fixed = 4 + 4 * 2 + 3;
    if (resp.data.size() < fixed + TelemetryTarget::kNameWords)
        return OpsDecodeError::Truncated;
    if (!validKind(resp.data[2]) || !validState(resp.data[3]))
        return OpsDecodeError::Malformed;

    out->index = resp.data[1];
    out->kind = static_cast<SloKind>(resp.data[2]);
    out->state = static_cast<AlertState>(resp.data[3]);
    out->objective =
        static_cast<double>(popU64(resp.data, 4)) / 1000.0;
    out->window = static_cast<Tick>(popU64(resp.data, 6));
    out->burnRate =
        static_cast<double>(popU64(resp.data, 8)) / 1000.0;
    out->budgetConsumed =
        static_cast<double>(popU64(resp.data, 10)) / 1000.0;
    out->pendingEvents = resp.data[12];
    out->fireEvents = resp.data[13];
    out->resolveEvents = resp.data[14];
    out->name = TelemetryTarget::unpackName(&resp.data[fixed]);
    return OpsDecodeError::Ok;
}

OpsDecodeError
OpsClient::decodeAlertPage(const CommandPacket &resp,
                           std::uint32_t *total, std::uint32_t *k,
                           std::vector<WireAlert> *out)
{
    if (resp.status != kCmdOk)
        return OpsDecodeError::Transport;
    if (resp.data.size() < 2)
        return OpsDecodeError::Truncated;
    const std::uint32_t claimed_total = resp.data[0];
    const std::uint32_t claimed_k = resp.data[1];
    // The producer never pages more than kAlertBatch records and a
    // page can't hold more rows than its own total claims exist.
    if (claimed_total > kMaxWireRecords ||
        claimed_k > TelemetryTarget::kAlertBatch ||
        claimed_k > claimed_total)
        return OpsDecodeError::Malformed;
    const std::size_t record = 6 + TelemetryTarget::kNameWords;
    if (resp.data.size() < 2 + claimed_k * record)
        return OpsDecodeError::Truncated;
    // Validate every record before appending any: a bad row rejects
    // the whole page instead of leaving a half-decoded tail.
    for (std::uint32_t r = 0; r < claimed_k; ++r)
        if (!validState(resp.data[2 + r * record + 1]))
            return OpsDecodeError::Malformed;
    for (std::uint32_t r = 0; r < claimed_k; ++r) {
        const std::size_t at = 2 + r * record;
        WireAlert a;
        a.index = resp.data[at];
        a.state = static_cast<AlertState>(resp.data[at + 1]);
        a.since = static_cast<Tick>(popU64(resp.data, at + 2));
        a.burnRate =
            static_cast<double>(popU64(resp.data, at + 4)) / 1000.0;
        a.name = TelemetryTarget::unpackName(&resp.data[at + 6]);
        out->push_back(std::move(a));
    }
    *total = claimed_total;
    *k = claimed_k;
    return OpsDecodeError::Ok;
}

std::uint32_t
OpsClient::sloCount()
{
    const CommandPacket resp =
        driver_.call(kRbbTelemetry, 0, kCmdSloStatus);
    std::uint32_t count = 0;
    lastError_ = decodeSloCount(resp, &count);
    return lastError_ == OpsDecodeError::Ok ? count : 0;
}

bool
OpsClient::readSlo(std::uint32_t index, WireSlo *out)
{
    const CommandPacket resp =
        driver_.call(kRbbTelemetry, 0, kCmdSloStatus, {index});
    lastError_ = decodeSlo(resp, out);
    return lastError_ == OpsDecodeError::Ok;
}

std::vector<WireAlert>
OpsClient::readAlerts()
{
    std::vector<WireAlert> out;
    std::uint32_t start = 0;
    std::uint32_t first_total = 0;
    for (;;) {
        const CommandPacket resp = driver_.call(
            kRbbTelemetry, 0, kCmdAlertSnapshot, {start});
        std::uint32_t total = 0;
        std::uint32_t k = 0;
        lastError_ = decodeAlertPage(resp, &total, &k, &out);
        if (lastError_ != OpsDecodeError::Ok)
            return {};
        if (start == 0) {
            first_total = total;
        } else if (total != first_total) {
            // The card changed its story mid-walk: treat the whole
            // snapshot as damaged rather than splicing two worlds.
            lastError_ = OpsDecodeError::Malformed;
            return {};
        }
        start += k;
        if (start >= total)
            break;
        if (k == 0) {
            // More rows claimed but none delivered — a wedged walk
            // would loop forever, so classify and bail.
            lastError_ = OpsDecodeError::Malformed;
            return {};
        }
    }
    return out;
}

bool
OpsClient::requestDump()
{
    const CommandPacket resp =
        driver_.call(kRbbTelemetry, 0, kCmdFlightDump);
    lastError_ = resp.status == kCmdOk ? OpsDecodeError::Ok
                                       : OpsDecodeError::Transport;
    return resp.status == kCmdOk;
}

} // namespace harmonia
