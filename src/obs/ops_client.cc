#include "obs/ops_client.h"

#include "telemetry/telemetry_target.h"

namespace harmonia {

namespace {

std::uint64_t
popU64(const std::vector<std::uint32_t> &data, std::size_t at)
{
    return (static_cast<std::uint64_t>(data[at]) << 32) | data[at + 1];
}

} // namespace

std::uint32_t
OpsClient::sloCount()
{
    const CommandPacket resp =
        driver_.call(kRbbTelemetry, 0, kCmdSloStatus);
    if (resp.status != kCmdOk || resp.data.empty())
        return 0;
    return resp.data[0];
}

bool
OpsClient::readSlo(std::uint32_t index, WireSlo *out)
{
    const CommandPacket resp =
        driver_.call(kRbbTelemetry, 0, kCmdSloStatus, {index});
    // total, index, kind, state, 4 x u64, 3 counters, packed name.
    const std::size_t fixed = 4 + 4 * 2 + 3;
    if (resp.status != kCmdOk ||
        resp.data.size() < fixed + TelemetryTarget::kNameWords)
        return false;

    out->index = resp.data[1];
    out->kind = static_cast<SloKind>(resp.data[2]);
    out->state = static_cast<AlertState>(resp.data[3]);
    out->objective =
        static_cast<double>(popU64(resp.data, 4)) / 1000.0;
    out->window = static_cast<Tick>(popU64(resp.data, 6));
    out->burnRate =
        static_cast<double>(popU64(resp.data, 8)) / 1000.0;
    out->budgetConsumed =
        static_cast<double>(popU64(resp.data, 10)) / 1000.0;
    out->pendingEvents = resp.data[12];
    out->fireEvents = resp.data[13];
    out->resolveEvents = resp.data[14];
    out->name = TelemetryTarget::unpackName(&resp.data[fixed]);
    return true;
}

std::vector<WireAlert>
OpsClient::readAlerts()
{
    std::vector<WireAlert> out;
    std::uint32_t start = 0;
    for (;;) {
        const CommandPacket resp = driver_.call(
            kRbbTelemetry, 0, kCmdAlertSnapshot, {start});
        if (resp.status != kCmdOk || resp.data.size() < 2)
            return {};
        const std::uint32_t total = resp.data[0];
        const std::uint32_t k = resp.data[1];
        const std::size_t record = 6 + TelemetryTarget::kNameWords;
        if (resp.data.size() < 2 + k * record)
            return {};
        for (std::uint32_t r = 0; r < k; ++r) {
            const std::size_t at = 2 + r * record;
            WireAlert a;
            a.index = resp.data[at];
            a.state = static_cast<AlertState>(resp.data[at + 1]);
            a.since = static_cast<Tick>(popU64(resp.data, at + 2));
            a.burnRate =
                static_cast<double>(popU64(resp.data, at + 4)) /
                1000.0;
            a.name =
                TelemetryTarget::unpackName(&resp.data[at + 6]);
            out.push_back(std::move(a));
        }
        start += k;
        if (k == 0 || start >= total)
            break;
    }
    return out;
}

bool
OpsClient::requestDump()
{
    const CommandPacket resp =
        driver_.call(kRbbTelemetry, 0, kCmdFlightDump);
    return resp.status == kCmdOk;
}

} // namespace harmonia
