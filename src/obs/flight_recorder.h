/**
 * @file
 * Black-box flight recorder: an always-on, bounded ring of the
 * operational events that matter when a card misbehaves — command
 * outcomes, injected faults, alert transitions, recovery-mode edges,
 * free-form notes — plus attachments to the time-series store, the
 * SLO engine, the fault plan and the trace. When a fault fires, an
 * alert trips, or an operator asks, it assembles a post-mortem
 * bundle: one JSON document (src/common/json) carrying the event
 * ring, the alert states, series tails, the fault log, and the
 * normalized causal span tree of the command of interest.
 *
 * Like FaultPlan, at most one recorder is armed per process so hook
 * sites (CmdDriver outcomes, FaultPlan injections, RecoveryManager
 * transitions) reach it without plumbing; an unarmed process pays one
 * null check per hook.
 *
 * Determinism contract: every bundle field derives from simulated
 * time and deterministic counters — no wall clock, no pointers, no
 * allocation order. Span and correlation ids are remapped to dense
 * first-appearance order (the raw ids come from process-global
 * counters that survive Trace::clear()), so identical runs produce
 * byte-identical bundles even within one process, and across
 * HARMONIA_SIM_THREADS settings (the engine serializes whenever
 * tracing or an armed FaultPlan is live, and the determinism harness
 * holds the rest).
 */

#ifndef HARMONIA_OBS_FLIGHT_RECORDER_H_
#define HARMONIA_OBS_FLIGHT_RECORDER_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/trace.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

class TimeSeriesStore;
class SloEngine;
class FaultPlan;

/** Event classes the black box distinguishes. */
enum class FdrKind : std::uint32_t {
    Command = 0,   ///< a CmdDriver call's final outcome
    Fault = 1,     ///< a FaultPlan injection
    Alert = 2,     ///< an SLO alert transition
    Recovery = 3,  ///< degraded-mode enter/restore
    Note = 4,      ///< free-form operator/test note
};

const char *toString(FdrKind kind);

/** One recorded event. a/b carry kind-specific payload words. */
struct FdrEvent {
    Tick tick = 0;
    FdrKind kind = FdrKind::Note;
    std::string who;
    std::string what;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class FlightRecorder {
  public:
    /** Event-ring depth (fixed memory once warm). */
    static constexpr std::size_t kDefaultCapacity = 1024;
    /** Raw points per series embedded in a bundle. */
    static constexpr std::size_t kBundleSeriesTail = 16;
    /** Fault-log entries embedded in a bundle. */
    static constexpr std::size_t kBundleFaultTail = 64;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Make this the process-armed recorder (replaces any previous). */
    void arm();
    /** Disarm if this recorder is the armed one. */
    void disarm();
    /** The armed recorder, or nullptr. */
    static FlightRecorder *active();

    // --- Recording -------------------------------------------------

    void note(FdrKind kind, Tick tick, std::string who,
              std::string what, std::uint64_t a = 0,
              std::uint64_t b = 0);

    /** CmdDriver hook: one call()'s final verdict. */
    void noteCommand(Tick tick, const std::string &who,
                     std::uint16_t code, const std::string &verdict,
                     bool ok, unsigned attempts, std::uint64_t corr);

    /** FaultPlan hook: one injected fault (may trigger a dump). */
    void noteFault(const char *kind, const std::string &target,
                   Tick tick);

    /** SloEngine hook: one alert transition (may trigger a dump). */
    void noteAlert(const std::string &slo, const std::string &from,
                   const std::string &to, Tick tick, double burn,
                   bool firingEdge);

    /** RecoveryManager hook: degraded-mode edge. */
    void noteRecovery(const std::string &who, const std::string &what,
                      Tick tick);

    std::size_t size() const { return events_.size(); }
    std::vector<FdrEvent> events() const { return events_.snapshot(); }

    /**
     * The correlation id whose span tree a bundle should explain: the
     * most recent failed command's, falling back to the most recent
     * command's.
     */
    std::uint64_t corrOfInterest() const;

    // --- Attachments (not owned) -----------------------------------

    void attachStore(const TimeSeriesStore *store) { store_ = store; }
    void attachSlo(const SloEngine *slo) { slo_ = slo; }
    void attachFaultPlan(const FaultPlan *plan) { plan_ = plan; }

    // --- Dump triggers ---------------------------------------------

    void setDumpOnFault(bool on) { dumpOnFault_ = on; }
    void setDumpOnAlert(bool on) { dumpOnAlert_ = on; }

    /**
     * Auto-dump pacing: after a trigger fires, further triggers only
     * mark state (never stack dumps) until this much simulated time
     * has passed. A chaos storm produces one bundle, not thousands.
     */
    void setRearmInterval(Tick interval) { rearmInterval_ = interval; }

    /**
     * When set, a trigger writes the bundle to this path immediately;
     * when empty, triggers mark dumpPending() for the host to flush
     * via dumpToFile().
     */
    void setAutoDumpPath(std::string path)
    {
        autoDumpPath_ = std::move(path);
    }

    /** Operator/command-plane request: dump at next opportunity. */
    void requestDump(const std::string &reason, Tick tick);

    bool dumpPending() const { return dumpPending_; }
    const std::string &pendingReason() const { return pendingReason_; }
    std::uint64_t dumps() const { return dumps_; }

    // --- Bundle ----------------------------------------------------

    /** Assemble the post-mortem document for @p reason at @p tick. */
    JsonValue buildBundle(const std::string &reason, Tick tick) const;

    /** buildBundle() pretty-printed — the canonical on-disk form. */
    std::string bundleText(const std::string &reason, Tick tick) const;

    /** Write the bundle; clears dumpPending(). False on I/O failure. */
    bool dumpToFile(const std::string &path, const std::string &reason,
                    Tick tick);

    /** Event/dump counters ("events_<kind>", "dumps", ...). */
    StatGroup &stats() { return stats_; }

    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

  private:
    void trigger(const std::string &reason, Tick tick);

    BoundedRing<FdrEvent> events_;
    const TimeSeriesStore *store_ = nullptr;
    const SloEngine *slo_ = nullptr;
    const FaultPlan *plan_ = nullptr;

    bool dumpOnFault_ = false;
    bool dumpOnAlert_ = false;
    Tick rearmInterval_ = 100'000'000;
    Tick lastTrigger_ = 0;
    bool everTriggered_ = false;
    bool dumpPending_ = false;
    std::string pendingReason_;
    std::string autoDumpPath_;
    std::uint64_t dumps_ = 0;

    std::uint64_t lastCorr_ = 0;
    std::uint64_t lastFailedCorr_ = 0;

    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_OBS_FLIGHT_RECORDER_H_
