#include "obs/trace_federation.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "telemetry/profiler.h"

namespace harmonia {

void
TraceFederation::addDevice(const std::string &label,
                           const std::string &who_prefix)
{
    devices_.push_back({label, who_prefix});
}

std::string
TraceFederation::deviceFor(const std::string &who) const
{
    // Longest matching prefix wins, so "unified_DeviceA" does not
    // also claim a hypothetical "unified_DeviceA2" track.
    const DevicePrefix *best = nullptr;
    for (const DevicePrefix &d : devices_) {
        if (who.compare(0, d.prefix.size(), d.prefix) != 0)
            continue;
        if (best == nullptr ||
            d.prefix.size() > best->prefix.size())
            best = &d;
    }
    return best != nullptr ? best->label : "host";
}

std::vector<std::uint64_t>
TraceFederation::crossDeviceCorrs(const Trace &trace,
                                  std::size_t min_devices) const
{
    std::map<std::uint64_t, std::set<std::string>> touched;
    for (const Trace::Span &s : trace.spans()) {
        if (s.corr == 0)
            continue;
        const std::string dev = deviceFor(s.who);
        if (dev != "host")
            touched[s.corr].insert(dev);
    }
    std::vector<std::uint64_t> out;
    for (const auto &kv : touched)
        if (kv.second.size() >= min_devices)
            out.push_back(kv.first);
    return out;
}

FederatedTree
TraceFederation::treeForCorr(const Trace &trace,
                             std::uint64_t corr) const
{
    FederatedTree tree;
    tree.corr = corr;
    std::set<std::string> devices;
    for (const Trace::Span &s : spanTreeForCorr(trace, corr)) {
        FederatedSpan fs;
        fs.device = deviceFor(s.who);
        fs.span = s;
        if (fs.device != "host")
            devices.insert(fs.device);
        tree.spans.push_back(std::move(fs));
    }
    tree.devices.assign(devices.begin(), devices.end());
    return tree;
}

std::string
TraceFederation::render(const FederatedTree &tree)
{
    std::map<SpanId, Tick> child_ticks;
    for (const FederatedSpan &fs : tree.spans)
        if (fs.span.parent != 0)
            child_ticks[fs.span.parent] +=
                fs.span.end - fs.span.begin;

    const auto depthOf = [&tree](const Trace::Span &s) {
        int d = 0;
        SpanId p = s.parent;
        // Bounded walk: the tree is tiny and acyclic by construction.
        while (p != 0 && d < 16) {
            bool found = false;
            for (const FederatedSpan &t : tree.spans)
                if (t.span.id == p) {
                    p = t.span.parent;
                    found = true;
                    break;
                }
            if (!found)
                break;
            ++d;
        }
        return d;
    };

    std::string out = format("corr %llu across [",
                             static_cast<unsigned long long>(
                                 tree.corr));
    for (std::size_t i = 0; i < tree.devices.size(); ++i)
        out += (i != 0 ? " " : "") + tree.devices[i];
    out += "]\n";

    for (const FederatedSpan &fs : tree.spans) {
        const Trace::Span &s = fs.span;
        const Tick dur = s.end - s.begin;
        const auto it = child_ticks.find(s.id);
        const Tick children =
            it == child_ticks.end() ? 0 : it->second;
        const Tick self = dur - std::min(dur, children);
        out += format("%*s[%-8s] %s/%s %-24s %10llu ticks "
                      "(self %llu)\n",
                      depthOf(s) * 2, "", fs.device.c_str(),
                      s.who.c_str(), s.cat.c_str(), s.what.c_str(),
                      static_cast<unsigned long long>(dur),
                      static_cast<unsigned long long>(self));
    }
    return out;
}

} // namespace harmonia
