#include "obs/fleet_sim.h"

#include "common/packet.h"
#include "device/database.h"

namespace harmonia {

namespace {

struct CardSpec {
    const char *device;
    const char *role;
};

/** The four heterogeneous cards the drill federates. */
constexpr CardSpec kCards[] = {
    {"DeviceA", "sec_gateway"},
    {"DeviceB", "kv_cache"},
    {"DeviceC", "net_probe"},
    {"DeviceD", "ml_infer"},
};

std::uint64_t
fnv1a(std::uint64_t h, const std::string &bytes)
{
    for (char c : bytes) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

FleetSim::FleetSim(FleetSimConfig config)
    : cfg_(std::move(config)), hub_(engine_), plan_(cfg_.seed)
{
    if (cfg_.trace) {
        traceWasEnabled_ = Trace::instance().enabled();
        Trace::instance().setEnabled(true);
    }

    for (const CardSpec &card : kCards) {
        shells_.push_back(Shell::makeUnified(
            engine_, DeviceDatabase::instance().byName(card.device)));
        Shell &shell = *shells_.back();
        shell.registerTelemetry();
        drivers_.push_back(
            std::make_unique<CmdDriver>(engine_, shell));
        hub_.addDevice(card.device, card.role, shell);
        fed_.addDevice(card.device, shell.name());
    }

    hub_.addRollup("uck/commands_executed");
    hub_.addRollup("uck/buffer_occupancy");
    hub_.addRollup("uck/service_time_ps/p99");

    // Fleet SLOs: the liveness objective fires when the victim dies;
    // the latency objective stays comfortably inactive and shows the
    // healthy path on the dashboard.
    // GaugeBelow burn is objective/mean, so the objective sits half a
    // device below full strength: 4 alive burns at 0.875 (quiet), 3
    // alive at 1.167 (tripped).
    SloSpec alive;
    alive.name = "fleet-devices-alive";
    alive.kind = SloKind::GaugeBelow;
    alive.metric = "fleet/devices/alive";
    alive.objective =
        static_cast<double>(sizeof kCards / sizeof kCards[0]) - 0.5;
    alive.window = 30'000'000;
    alive.pendingFor = 5'000'000;
    alive.resolveFor = 1'000'000'000'000ULL;  // a death never clears
    hub_.addFleetSlo(alive);

    SloSpec p99;
    p99.name = "fleet-any-p99";
    p99.kind = SloKind::OccupancyAbove;
    p99.metric = "fleet/uck/service_time_ps/p99/max";
    p99.objective = 1e12;  // generous ps bound; stays inactive
    p99.window = 30'000'000;
    hub_.addFleetSlo(p99);

    // Per-device latency objectives give every dashboard row a live
    // alert cell (and stay quiet at these bounds).
    for (const CardSpec &card : kCards) {
        SloSpec dev;
        dev.name = std::string("p99-") + card.device;
        dev.kind = SloKind::OccupancyAbove;
        dev.metric = std::string("unified_") + card.device +
                     "/uck/service_time_ps/p99";
        dev.objective = 1e12;
        dev.window = 30'000'000;
        hub_.addFleetSlo(dev);
    }

    hub_.subscribeAll();

    if (cfg_.injectFault) {
        // The victim dies and never comes back (same shape as the
        // failover drill, minus the standby).
        plan_.addWindow(FaultKind::DeviceDeath, cfg_.deathAt,
                        2'000'000'000'000ULL, 1.0, cfg_.victim);
        plan_.arm();
    }
}

FleetSim::~FleetSim()
{
    plan_.disarm();
    if (cfg_.trace)
        Trace::instance().setEnabled(traceWasEnabled_);
}

void
FleetSim::trafficRound()
{
    const Tick wire = wireTime(512, 100e9);
    for (std::size_t i = 0; i < shells_.size(); ++i) {
        const std::string &label = kCards[i].device;
        if (!hub_.device(label).alive)
            continue;  // don't burn retries on a declared-dead card
        Shell &shell = *shells_[i];
        for (int p = 0; p < 4; ++p) {
            PacketDesc pkt;
            pkt.bytes = 512;
            pkt.flowHash = pktsInjected_++;
            pkt.injected = engine_.now() + p * wire;
            shell.network().mac().injectRx(pkt, pkt.injected);
        }
        drivers_[i]->call(kRbbSystem, 0, kCmdTimeCount);
        if (round_ % 2 == static_cast<int>(i) % 2)
            drivers_[i]->call(kRbbTelemetry, 0,
                              kCmdModuleStatusRead);
    }

    // Fleet sweep: one command per card under a single correlation
    // id, producing a genuinely cross-device span tree to federate.
    if (cfg_.trace && round_ % 8 == 4) {
        TraceContext ctx;
        ctx.corr = Trace::instance().newCorrelation();
        ScopedTraceContext scope(ctx);
        for (std::size_t i = 0; i < shells_.size(); ++i)
            if (hub_.device(kCards[i].device).alive)
                drivers_[i]->call(kRbbSystem, 0, kCmdTimeCount);
    }

    // Drain what the MACs forwarded so rings never saturate.
    for (std::size_t i = 0; i < shells_.size(); ++i)
        while (shells_[i]->network().rxAvailable())
            shells_[i]->network().rxPop();
}

bool
FleetSim::step()
{
    if (round_ >= cfg_.rounds)
        return false;
    trafficRound();
    engine_.runFor(cfg_.roundTicks);
    hub_.poll(engine_.now());
    ++round_;
    return round_ < cfg_.rounds;
}

void
FleetSim::run()
{
    while (step()) {
    }
}

std::string
FleetSim::top() const
{
    return renderTop(hub_, engine_.now());
}

std::uint64_t
FleetSim::fingerprint() const
{
    std::uint64_t h = 14695981039346656037ULL;
    h = fnv1a(h, top());
    h = fnv1a(h, hub_.summary());
    for (const FaultPlan::Event &e : plan_.log())
        h = fnv1a(h, e.target);
    h ^= plan_.fingerprint();
    return h;
}

} // namespace harmonia
