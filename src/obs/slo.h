/**
 * @file
 * Declarative SLOs and the alert lifecycle over the time-series
 * store — the "decide" half the autoscaler and fleet manager will
 * consume. An SloSpec names an objective (command availability,
 * latency percentile bound, occupancy ceiling); the engine evaluates
 * each spec's burn rate over the store's windows on a fixed simulated
 * -time cadence and drives a per-spec alert state machine:
 *
 *   inactive → pending (condition seen) → firing (held pendingFor)
 *            → resolved (cleared resolveFor, with hysteresis)
 *            → inactive
 *
 * Mirroring RecoveryManager's style, clearing needs the burn rate
 * comfortably below the trip threshold (clearRatio) for a sustained
 * interval, so a metric hovering at the objective cannot flap the
 * alert. Every transition is counted, recorded as a trace event, and
 * noted in the flight recorder; a firing interval completes as one
 * trace span when it resolves, so alerts render on the same Chrome-
 * trace timeline as the workload that caused them. Alert state is
 * queryable in-process, via MetricsRegistry gauges, and over the
 * command plane (kCmdSloStatus / kCmdAlertSnapshot).
 */

#ifndef HARMONIA_OBS_SLO_H_
#define HARMONIA_OBS_SLO_H_

#include <string>
#include <vector>

#include "obs/timeseries.h"
#include "sim/component.h"
#include "telemetry/metrics_registry.h"

namespace harmonia {

/** What an SloSpec measures. */
enum class SloKind : std::uint32_t {
    /** bad/total counter pair vs an availability objective. */
    ErrorRate = 0,
    /** Sliding percentile of a series vs a bound (ticks, bytes...). */
    LatencyP99 = 1,
    /** Windowed mean of a gauge must stay <= objective. */
    OccupancyAbove = 2,
    /** Windowed mean of a gauge must stay >= objective. */
    GaugeBelow = 3,
};

const char *toString(SloKind kind);

/** One declarative objective. */
struct SloSpec {
    std::string name;  ///< e.g. "cmd-availability"
    SloKind kind = SloKind::ErrorRate;

    /** ErrorRate: numerator/denominator counter series. */
    std::string badMetric;
    std::string totalMetric;
    /** Other kinds: the one series evaluated. */
    std::string metric;

    /**
     * ErrorRate: availability target in [0, 1) — 0.999 allows one bad
     * call per thousand. Other kinds: the bound the aggregate is
     * compared against (ticks for LatencyP99, the gauge's unit
     * otherwise).
     */
    double objective = 0.999;

    /** Evaluation window the burn rate is computed over. */
    Tick window = 50'000'000;

    /** Burn rate at or above this trips the condition. */
    double burnThreshold = 1.0;
    /** Clearing needs burn <= clearRatio * burnThreshold. */
    double clearRatio = 0.8;

    /** Condition must hold this long before pending → firing. */
    Tick pendingFor = 10'000'000;
    /** ...and stay cleared this long before firing → resolved. */
    Tick resolveFor = 20'000'000;
};

/** Alert lifecycle states. */
enum class AlertState : std::uint32_t {
    Inactive = 0,
    Pending = 1,
    Firing = 2,
    Resolved = 3,
};

const char *toString(AlertState state);

/** One spec's live alert status. */
struct AlertStatus {
    std::string name;
    AlertState state = AlertState::Inactive;
    Tick since = 0;          ///< when the current state was entered
    double burnRate = 0.0;   ///< most recent evaluation
    double budgetConsumed = 0.0;  ///< lifetime error-budget fraction
    std::uint64_t pendingEvents = 0;
    std::uint64_t fireEvents = 0;
    std::uint64_t resolveEvents = 0;
};

class FlightRecorder;

/**
 * Evaluates every registered SloSpec against one store on a fixed
 * simulated-time period. A Component like the Sampler: register it on
 * any clock; it is idle between due times so the engine's fast-forward
 * can skip it.
 */
class SloEngine : public Component {
  public:
    SloEngine(std::string name, TimeSeriesStore &store,
              Tick evalPeriod = 5'000'000);

    /** Register a spec; returns its stable index. */
    std::size_t addSpec(SloSpec spec);

    std::size_t specCount() const { return alerts_.size(); }
    const SloSpec &spec(std::size_t i) const;

    /** Live status of spec @p i (index from addSpec order). */
    const AlertStatus &status(std::size_t i) const;

    /** All statuses, addSpec order. */
    std::vector<AlertStatus> statuses() const;

    /** Any spec currently pending or firing. */
    bool anyActive() const;

    void tick() override;
    bool idle() const override { return now() < nextDue_; }
    Tick wakeTime() const override { return nextDue_; }

    /**
     * Evaluate every spec at @p now. tick() calls this on the eval
     * cadence; tests and host tooling may call it directly.
     */
    void evaluate(Tick now);

    /** Transitions noted here as alert events (and dump triggers). */
    void attachRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Lifecycle counters: evaluations, transitions by edge. */
    StatGroup &stats() { return stats_; }

    /** Per-spec state/burn/budget gauges under @p prefix. */
    void registerTelemetry(MetricsRegistry &reg,
                           const std::string &prefix);

    /** Compute one spec's burn rate against @p store at @p now. */
    static double burnRate(const SloSpec &spec,
                           const TimeSeriesStore &store, Tick now);

  private:
    struct Alert {
        SloSpec spec;
        AlertStatus status;
        Tick clearSince = 0;   ///< burn first seen below clear level
        Tick firedAt = 0;      ///< firing-interval begin (span)
        std::uint64_t evals = 0;
        std::uint64_t breaches = 0;
    };

    void transition(Alert &a, AlertState to, Tick now);

    TimeSeriesStore &store_;
    Tick evalPeriod_;
    Tick nextDue_ = 0;
    std::vector<Alert> alerts_;
    FlightRecorder *recorder_ = nullptr;
    StatGroup stats_;
    ScopedMetrics telemetry_;
};

} // namespace harmonia

#endif // HARMONIA_OBS_SLO_H_
