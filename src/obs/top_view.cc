#include "obs/top_view.h"

#include <cstdio>

namespace harmonia {

namespace {

/** Worst alert state among specs scoped to @p prefix. */
const char *
alertCell(const SloEngine &slo, const std::string &prefix)
{
    AlertState worst = AlertState::Inactive;
    bool any = false;
    for (std::size_t i = 0; i < slo.specCount(); ++i) {
        const SloSpec &spec = slo.spec(i);
        const auto scoped = [&prefix](const std::string &metric) {
            return metric.compare(0, prefix.size(), prefix) == 0;
        };
        if (!scoped(spec.metric) && !scoped(spec.badMetric) &&
            !scoped(spec.totalMetric))
            continue;
        any = true;
        const AlertState st = slo.status(i).state;
        if (static_cast<std::uint32_t>(st) >
            static_cast<std::uint32_t>(worst))
            worst = st;
    }
    if (!any)
        return "-";
    switch (worst) {
      case AlertState::Inactive:
        return "ok";
      case AlertState::Pending:
        return "PENDING";
      case AlertState::Firing:
        return "FIRING";
      case AlertState::Resolved:
        return "resolved";
    }
    return "?";
}

} // namespace

std::string
renderTop(const ObsHub &hub, Tick now, const TopOptions &options)
{
    std::string out;
    char line[256];

    std::snprintf(
        line, sizeof line,
        "harmonia-top  t=%llu  devices=%zu  polls=%llu  "
        "stream=%lluw  snapshot-equiv=%lluw\n",
        static_cast<unsigned long long>(now), hub.deviceCount(),
        static_cast<unsigned long long>(hub.polls()),
        static_cast<unsigned long long>(hub.streamedWireWords()),
        static_cast<unsigned long long>(
            hub.snapshotEquivalentWords()));
    out += line;

    std::snprintf(line, sizeof line,
                  "%-10s %-14s %-6s %10s %12s %12s %5s %5s %-8s\n",
                  "DEVICE", "ROLE", "WD", "OCC", "CMD/S", "P99(ps)",
                  "GAPS", "RSYNC", "ALERT");
    out += line;

    const TimeSeriesStore &store = hub.store();
    for (const std::string &label : hub.deviceLabels()) {
        const ObsDeviceStatus &st = hub.device(label);
        const double occ =
            store.latest(st.prefix + options.occupancySeries);
        const double cmd_rate = store.rate(
            st.prefix + options.commandsSeries, options.rateWindow,
            now);
        const double p99 =
            store.latest(st.prefix + options.p99Series);
        std::snprintf(
            line, sizeof line,
            "%-10s %-14s %-6s %10.3f %12.3f %12.3f %5llu %5llu "
            "%-8s\n",
            st.label.c_str(), st.role.c_str(),
            st.alive ? "alive" : "DEAD", occ, cmd_rate, p99,
            static_cast<unsigned long long>(st.gapsDetected),
            static_cast<unsigned long long>(st.resyncs),
            alertCell(hub.slo(), st.prefix));
        out += line;
    }

    // Footer: the fleet-scoped alerts (specs over fleet/ series).
    std::size_t firing = 0;
    std::size_t pending = 0;
    std::string detail;
    const SloEngine &slo = hub.slo();
    for (std::size_t i = 0; i < slo.specCount(); ++i) {
        const AlertStatus &st = slo.status(i);
        if (st.state == AlertState::Firing)
            ++firing;
        else if (st.state == AlertState::Pending)
            ++pending;
        if (st.state == AlertState::Firing ||
            st.state == AlertState::Pending) {
            std::snprintf(line, sizeof line,
                          "  [%s] %s burn=%.3f\n",
                          st.state == AlertState::Firing
                              ? "firing"
                              : "pending",
                          st.name.c_str(), st.burnRate);
            detail += line;
        }
    }
    std::snprintf(line, sizeof line,
                  "fleet alerts: %zu firing, %zu pending (of %zu)\n",
                  firing, pending, slo.specCount());
    out += line;
    out += detail;
    return out;
}

} // namespace harmonia
