#include "obs/flight_recorder.h"

#include <map>

#include "common/logging.h"
#include "fault/fault_plan.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "telemetry/exporter.h"
#include "telemetry/profiler.h"

namespace harmonia {

namespace {

FlightRecorder *gArmed = nullptr;

} // namespace

const char *
toString(FdrKind kind)
{
    switch (kind) {
      case FdrKind::Command:
        return "command";
      case FdrKind::Fault:
        return "fault";
      case FdrKind::Alert:
        return "alert";
      case FdrKind::Recovery:
        return "recovery";
      case FdrKind::Note:
        return "note";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : events_(capacity == 0 ? 1 : capacity), stats_("flight_recorder")
{
}

FlightRecorder::~FlightRecorder()
{
    disarm();
}

void
FlightRecorder::arm()
{
    gArmed = this;
}

void
FlightRecorder::disarm()
{
    if (gArmed == this)
        gArmed = nullptr;
}

FlightRecorder *
FlightRecorder::active()
{
    return gArmed;
}

void
FlightRecorder::note(FdrKind kind, Tick tick, std::string who,
                     std::string what, std::uint64_t a,
                     std::uint64_t b)
{
    stats_.counter(std::string("events_") + toString(kind)).inc();
    events_.push(FdrEvent{tick, kind, std::move(who), std::move(what),
                          a, b});
}

void
FlightRecorder::noteCommand(Tick tick, const std::string &who,
                            std::uint16_t code,
                            const std::string &verdict, bool ok,
                            unsigned attempts, std::uint64_t corr)
{
    note(FdrKind::Command, tick, who,
         format("code=0x%04x %s", code, verdict.c_str()),
         ok ? 1 : 0, attempts);
    if (corr != 0)
        lastCorr_ = corr;
    if (!ok && corr != 0)
        lastFailedCorr_ = corr;
}

void
FlightRecorder::noteFault(const char *kind, const std::string &target,
                          Tick tick)
{
    note(FdrKind::Fault, tick, target, kind);
    if (dumpOnFault_)
        trigger(std::string("fault:") + kind, tick);
}

void
FlightRecorder::noteAlert(const std::string &slo,
                          const std::string &from,
                          const std::string &to, Tick tick,
                          double burn, bool firingEdge)
{
    note(FdrKind::Alert, tick, slo, from + "->" + to,
         static_cast<std::uint64_t>(burn * 1000.0));
    if (dumpOnAlert_ && firingEdge)
        trigger("alert:" + slo, tick);
}

void
FlightRecorder::noteRecovery(const std::string &who,
                             const std::string &what, Tick tick)
{
    note(FdrKind::Recovery, tick, who, what);
}

std::uint64_t
FlightRecorder::corrOfInterest() const
{
    return lastFailedCorr_ != 0 ? lastFailedCorr_ : lastCorr_;
}

void
FlightRecorder::requestDump(const std::string &reason, Tick tick)
{
    note(FdrKind::Note, tick, "operator", "dump requested: " + reason);
    trigger(reason, tick);
}

void
FlightRecorder::trigger(const std::string &reason, Tick tick)
{
    if (everTriggered_ && tick - lastTrigger_ < rearmInterval_) {
        stats_.counter("triggers_suppressed").inc();
        return;
    }
    everTriggered_ = true;
    lastTrigger_ = tick;
    stats_.counter("triggers").inc();
    if (!autoDumpPath_.empty()) {
        dumpToFile(autoDumpPath_, reason, tick);
        return;
    }
    dumpPending_ = true;
    pendingReason_ = reason;
}

JsonValue
FlightRecorder::buildBundle(const std::string &reason,
                            Tick tick) const
{
    JsonValue doc = JsonValue::object();
    doc.set("harmonia_postmortem", JsonValue(1));
    doc.set("reason", JsonValue(reason));
    doc.set("tick", JsonValue(static_cast<std::uint64_t>(tick)));

    // --- The black-box event ring, oldest first. ---
    JsonValue events = JsonValue::array();
    for (const FdrEvent &e : events_.snapshot()) {
        JsonValue j = JsonValue::object();
        j.set("tick", JsonValue(static_cast<std::uint64_t>(e.tick)));
        j.set("kind", JsonValue(toString(e.kind)));
        j.set("who", JsonValue(e.who));
        j.set("what", JsonValue(e.what));
        if (e.a != 0)
            j.set("a", JsonValue(e.a));
        if (e.b != 0)
            j.set("b", JsonValue(e.b));
        events.push(std::move(j));
    }
    doc.set("events", std::move(events));

    // --- Alert states at dump time. ---
    if (slo_ != nullptr) {
        JsonValue alerts = JsonValue::array();
        for (const AlertStatus &s : slo_->statuses()) {
            JsonValue j = JsonValue::object();
            j.set("name", JsonValue(s.name));
            j.set("state", JsonValue(toString(s.state)));
            j.set("since",
                  JsonValue(static_cast<std::uint64_t>(s.since)));
            j.set("burn_rate", JsonValue(s.burnRate));
            j.set("budget_consumed", JsonValue(s.budgetConsumed));
            j.set("pending_events", JsonValue(s.pendingEvents));
            j.set("fire_events", JsonValue(s.fireEvents));
            j.set("resolve_events", JsonValue(s.resolveEvents));
            alerts.push(std::move(j));
        }
        doc.set("alerts", std::move(alerts));
    }

    // --- Series tails (name-sorted; bounded per series). ---
    if (store_ != nullptr) {
        JsonValue series = JsonValue::object();
        for (const std::string &name : store_->seriesNames()) {
            const std::vector<TsPoint> pts = store_->points(name);
            JsonValue j = JsonValue::object();
            j.set("latest", JsonValue(store_->latest(name)));
            JsonValue tail = JsonValue::array();
            const std::size_t from =
                pts.size() > kBundleSeriesTail
                    ? pts.size() - kBundleSeriesTail
                    : 0;
            for (std::size_t i = from; i < pts.size(); ++i) {
                JsonValue p = JsonValue::array();
                p.push(JsonValue(
                    static_cast<std::uint64_t>(pts[i].tick)));
                p.push(JsonValue(pts[i].value));
                tail.push(std::move(p));
            }
            j.set("points", std::move(tail));
            series.set(name, std::move(j));
        }
        doc.set("series", std::move(series));
    }

    // --- Fault-plane evidence. ---
    if (plan_ != nullptr) {
        JsonValue f = JsonValue::object();
        f.set("seed", JsonValue(plan_->seed()));
        f.set("fingerprint",
              JsonValue(format("%016llx",
                               static_cast<unsigned long long>(
                                   plan_->fingerprint()))));
        f.set("injected_total", JsonValue(plan_->injectedTotal()));
        JsonValue log = JsonValue::array();
        const std::vector<FaultPlan::Event> &flog = plan_->log();
        const std::size_t from = flog.size() > kBundleFaultTail
                                     ? flog.size() - kBundleFaultTail
                                     : 0;
        for (std::size_t i = from; i < flog.size(); ++i) {
            JsonValue j = JsonValue::object();
            j.set("kind", JsonValue(toString(flog[i].kind)));
            j.set("at",
                  JsonValue(static_cast<std::uint64_t>(flog[i].at)));
            j.set("target", JsonValue(flog[i].target));
            log.push(std::move(j));
        }
        f.set("log", std::move(log));
        doc.set("faults", std::move(f));
    }

    // --- Causal span tree of the command of interest, normalized:
    // span/correlation ids come from process-global counters, so the
    // bundle remaps them to dense first-appearance order (the tree
    // shape, not the raw ids, is the deterministic artifact). ---
    const std::uint64_t corr = corrOfInterest();
    JsonValue tree = JsonValue::array();
    if (corr != 0) {
        std::map<SpanId, std::uint64_t> dense;
        dense[0] = 0;
        const auto idOf = [&dense](SpanId id) {
            const auto [it, fresh] = dense.emplace(id, dense.size());
            (void)fresh;
            return it->second;
        };
        for (const Trace::Span &s :
             spanTreeForCorr(Trace::instance(), corr)) {
            JsonValue j = JsonValue::object();
            j.set("id", JsonValue(idOf(s.id)));
            j.set("parent", JsonValue(idOf(s.parent)));
            j.set("begin",
                  JsonValue(static_cast<std::uint64_t>(s.begin)));
            j.set("end", JsonValue(static_cast<std::uint64_t>(s.end)));
            j.set("who", JsonValue(s.who));
            j.set("what", JsonValue(s.what));
            j.set("cat", JsonValue(s.cat));
            tree.push(std::move(j));
        }
    }
    doc.set("span_tree", std::move(tree));

    return doc;
}

std::string
FlightRecorder::bundleText(const std::string &reason, Tick tick) const
{
    return buildBundle(reason, tick).dump(2) + "\n";
}

bool
FlightRecorder::dumpToFile(const std::string &path,
                           const std::string &reason, Tick tick)
{
    const bool ok = writeTextFile(path, bundleText(reason, tick));
    if (ok) {
        ++dumps_;
        stats_.counter("dumps").inc();
        dumpPending_ = false;
        pendingReason_.clear();
    }
    return ok;
}

void
FlightRecorder::registerTelemetry(MetricsRegistry &reg,
                                  const std::string &prefix)
{
    telemetry_.reset(reg);
    telemetry_.addGroup(prefix, &stats_);
    telemetry_.addGauge(prefix + "/events_retained", [this] {
        return static_cast<double>(events_.size());
    });
    telemetry_.addGauge(prefix + "/dump_pending", [this] {
        return dumpPending_ ? 1.0 : 0.0;
    });
}

} // namespace harmonia
