/**
 * @file
 * Fleet observability hub: the host-side federation point that owns
 * streaming telemetry subscriptions (kCmdObsSubscribe / kCmdObsDelta)
 * to N simulated cards and lands every pushed series — names already
 * carrying the card's `unified_DeviceX/` prefix as the device label —
 * in one fleet-level TimeSeriesStore. On top of that store the hub
 * computes fleet rollups (`fleet/<core>/sum`, `fleet/<core>/max`,
 * quantile-across-devices on demand) and evaluates fleet-scoped SLOs
 * with the existing burn-rate lifecycle, so "rack-wide error rate"
 * and "any-device p99" alert exactly like a single card's objectives.
 *
 * The subscription protocol (DESIGN.md §15) is delta-based: each poll
 * drains only series whose encoded value changed, against an index
 * map negotiated at subscribe time. The hub checks the per-response
 * sequence number; a gap (a produced-but-lost response) triggers an
 * explicit full resync, and deltas carry *cumulative* values, so a
 * resync can never lose or double-count a sample. An epoch flag from
 * the card signals that the flattened series set changed; the hub
 * re-reads the map pages and keeps going. The hub also keeps an
 * honest running total of wire words moved versus what equivalent
 * full-snapshot polling (TelemetryList + per-metric
 * TelemetrySnapshot) would have cost, so the streaming win is
 * assertable in tests rather than folklore.
 *
 * Liveness: a device whose polls fail repeatedly is marked dead and
 * skipped (its history stays queryable). Hosts running a real
 * watchdog can attach it as a probe via attachLiveness(); the hub
 * never reaches up into the ha layer itself.
 */

#ifndef HARMONIA_OBS_HUB_H_
#define HARMONIA_OBS_HUB_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "host/cmd_driver.h"  // harmonia-lint: allow(LAYER-002) the hub polls cards via CmdDriver
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "telemetry/telemetry_target.h"

namespace harmonia {

/** One federated card's live status, as the hub sees it. */
struct ObsDeviceStatus {
    std::string label;  ///< e.g. "DeviceA"
    std::string role;   ///< operator-facing role string
    std::string prefix; ///< series-name prefix = device label source
    bool subscribed = false;
    bool alive = true;
    std::uint32_t subId = 0;
    std::uint32_t epoch = 0;
    std::uint32_t lastSeq = 0;
    std::size_t mapSize = 0;
    std::uint64_t deltasApplied = 0;   ///< delta responses ingested
    std::uint64_t samplesIngested = 0; ///< delta records ingested
    std::uint64_t gapsDetected = 0;    ///< sequence jumps seen
    std::uint64_t resyncs = 0;         ///< full resyncs requested
    std::uint64_t mapReloads = 0;      ///< epoch bumps handled
    std::uint64_t pollFailures = 0;    ///< failed delta calls
    unsigned consecutiveFailures = 0;
};

class ObsHub {
  public:
    /** Consecutive poll failures before a device is declared dead. */
    static constexpr unsigned kDeadAfter = 3;

    /** Delta responses drained per device per poll (bounds a poll). */
    static constexpr unsigned kMaxDrainPerPoll = 16;

    explicit ObsHub(Engine &engine, TsConfig ts_config = {});

    /**
     * Register one card. The subscription prefix defaults to
     * `<shell name>/` — which is exactly the `unified_DeviceX/`
     * device label every exported series carries. Returns false on a
     * duplicate label.
     */
    bool addDevice(const std::string &label, const std::string &role,
                   Shell &shell);

    /**
     * Open the streaming subscription for @p label and read the full
     * index map. False when the label is unknown or the wire said no.
     */
    bool subscribe(const std::string &label);

    /** Subscribe every registered device; count that succeeded. */
    std::size_t subscribeAll();

    /**
     * One federation round at simulated time @p now: drain pending
     * deltas from every live subscribed device (handling gaps, map
     * changes, and resyncs), ingest the samples, refresh the fleet
     * rollup series, and evaluate the fleet SLOs.
     */
    void poll(Tick now);

    /**
     * External liveness verdict for @p label (e.g. a host watchdog's
     * !dead()). Checked before each poll; a false probe marks the
     * device dead without burning wire attempts. The hub's own
     * consecutive-failure tracking still applies on top.
     */
    void attachLiveness(const std::string &label,
                        std::function<bool()> probe);

    // --- Fleet rollups & SLOs ------------------------------------

    /**
     * Roll the per-device series `<prefix><core>` up into
     * `fleet/<core>/sum` and `fleet/<core>/max` on every poll
     * (latest value per live device).
     */
    void addRollup(const std::string &core);

    /**
     * Percentile of `<prefix><core>`'s latest value across devices
     * at @p now — "quantile across the fleet", computed on demand.
     */
    double fleetQuantile(const std::string &core, double pct) const;

    /** Register a fleet-scoped SLO over the hub's store. */
    std::size_t addFleetSlo(SloSpec spec);

    SloEngine &slo() { return slo_; }
    const SloEngine &slo() const { return slo_; }
    TimeSeriesStore &store() { return store_; }
    const TimeSeriesStore &store() const { return store_; }

    // --- Introspection -------------------------------------------

    std::size_t deviceCount() const { return devices_.size(); }

    /** Devices currently considered alive (probe + poll verdicts). */
    std::size_t aliveCount() const;

    /** Labels, name-sorted (deterministic iteration order). */
    std::vector<std::string> deviceLabels() const;

    /** Status of one device; fatal()-free, asserts on unknown. */
    const ObsDeviceStatus &device(const std::string &label) const;

    /** The device's frozen index map (tests, cost accounting). */
    const std::vector<ObsMapEntry> &
    deviceMap(const std::string &label) const;

    /** Poll rounds completed. */
    std::uint64_t polls() const { return polls_; }

    /** Wire words actually moved by the streaming protocol. */
    std::uint64_t streamedWireWords() const { return streamedWords_; }

    /**
     * Wire words the same coverage would have cost as full snapshot
     * polling: per poll round and live device, one TelemetryList walk
     * plus one TelemetrySnapshot per base metric.
     */
    std::uint64_t snapshotEquivalentWords() const
    {
        return snapshotWords_;
    }

    std::uint64_t gapsDetected() const;
    std::uint64_t resyncs() const;

    /** One-line-per-device state summary (examples, debugging). */
    std::string summary() const;

  private:
    struct Device {
        ObsDeviceStatus status;
        Shell *shell = nullptr;
        std::unique_ptr<CmdDriver> driver;
        std::vector<ObsMapEntry> map;
        std::function<bool()> probe;
    };

    /** callChecked + wire-word accounting; nullptr-safe decode. */
    CallOutcome call(Device &dev, std::uint16_t code,
                     const std::vector<std::uint32_t> &data);

    /** Re-read every map page for an (re)opened subscription. */
    bool loadMap(Device &dev);

    /** Drain deltas of one device; true when the device stayed ok. */
    bool drainDevice(Device &dev, Tick now);

    /** Apply one decoded delta response's records to the store. */
    void ingestRecords(Device &dev, Tick now,
                       const std::vector<std::uint32_t> &data,
                       std::uint32_t k);

    /** Snapshot-equivalent polling cost of one round of @p dev. */
    std::uint64_t snapshotCostWords(const Device &dev) const;

    void refreshRollups(Tick now);

    Engine &engine_;
    TimeSeriesStore store_;
    SloEngine slo_;
    std::map<std::string, Device> devices_;  ///< name-sorted
    std::vector<std::string> rollups_;
    std::uint64_t polls_ = 0;
    std::uint64_t streamedWords_ = 0;
    std::uint64_t snapshotWords_ = 0;
};

} // namespace harmonia

#endif // HARMONIA_OBS_HUB_H_
