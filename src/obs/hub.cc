#include "obs/hub.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace harmonia {

namespace {

/** Total wire words of a packet with @p data_words of data. */
std::uint64_t
packetWords(std::size_t data_words)
{
    return CommandPacket::kHdLenWords + data_words + 1;
}

} // namespace

ObsHub::ObsHub(Engine &engine, TsConfig ts_config)
    : engine_(engine), store_(ts_config), slo_("obs.hub.slo", store_)
{
}

bool
ObsHub::addDevice(const std::string &label, const std::string &role,
                  Shell &shell)
{
    if (devices_.count(label) != 0)
        return false;
    Device &dev = devices_[label];
    dev.status.label = label;
    dev.status.role = role;
    dev.status.prefix = shell.name() + "/";
    dev.shell = &shell;
    dev.driver = std::make_unique<CmdDriver>(engine_, shell);
    return true;
}

CallOutcome
ObsHub::call(Device &dev, std::uint16_t code,
             const std::vector<std::uint32_t> &data)
{
    const CallOutcome out =
        dev.driver->callChecked(kRbbTelemetry, 0, code, data);
    // Every attempt retransmits the request; only an answered call
    // moved a response. Both directions count against streaming.
    streamedWords_ +=
        packetWords(data.size()) * std::max(1u, out.attempts);
    if (out.ok())
        streamedWords_ += packetWords(out.response.data.size());
    return out;
}

bool
ObsHub::subscribe(const std::string &label)
{
    const auto it = devices_.find(label);
    if (it == devices_.end())
        return false;
    Device &dev = it->second;
    ObsDeviceStatus &st = dev.status;

    std::vector<std::uint32_t> req{0};
    TelemetryTarget::packNameTo(req, st.prefix);
    const CallOutcome out = call(dev, kCmdObsSubscribe, req);
    if (!out.ok() || out.response.status != kCmdOk ||
        out.response.data.size() < 5)
        return false;

    st.subId = out.response.data[0];
    st.epoch = out.response.data[1];
    st.lastSeq = 0;
    st.subscribed = true;
    st.alive = true;
    st.consecutiveFailures = 0;
    if (!loadMap(dev)) {
        st.subscribed = false;
        return false;
    }
    return true;
}

std::size_t
ObsHub::subscribeAll()
{
    std::size_t ok = 0;
    for (auto &kv : devices_)
        if (subscribe(kv.first))
            ++ok;
    return ok;
}

bool
ObsHub::loadMap(Device &dev)
{
    constexpr std::size_t kRecord = 2 + TelemetryTarget::kNameWords;
    std::vector<ObsMapEntry> map;
    std::uint32_t start = 0;
    for (;;) {
        const CallOutcome out = call(dev, kCmdObsSubscribe,
                                     {dev.status.subId, start});
        if (!out.ok() || out.response.status != kCmdOk)
            return false;
        const std::vector<std::uint32_t> &d = out.response.data;
        if (d.size() < 2)
            return false;
        const std::uint32_t total = d[0];
        const std::uint32_t k = d[1];
        if (d.size() < 2 + static_cast<std::size_t>(k) * kRecord)
            return false;
        if (map.size() != total)
            map.resize(total);
        for (std::uint32_t r = 0; r < k; ++r) {
            const std::size_t at = 2 + r * kRecord;
            const std::uint32_t idx = d[at];
            if (idx >= map.size())
                return false;
            map[idx].enc = d[at + 1];
            map[idx].name =
                TelemetryTarget::unpackName(&d[at + 2]);
        }
        start += k;
        if (k == 0 || start >= total)
            break;
    }
    dev.map = std::move(map);
    dev.status.mapSize = dev.map.size();
    return true;
}

void
ObsHub::ingestRecords(Device &dev, Tick now,
                      const std::vector<std::uint32_t> &data,
                      std::uint32_t k)
{
    for (std::uint32_t r = 0; r < k; ++r) {
        const std::size_t at = 4 + static_cast<std::size_t>(r) * 3;
        const std::uint32_t idx = data[at];
        if (idx >= dev.map.size())
            continue;  // stale index from a torn map change
        const std::uint64_t raw =
            (static_cast<std::uint64_t>(data[at + 1]) << 32) |
            data[at + 2];
        const double value =
            dev.map[idx].enc == 1
                ? static_cast<double>(raw) / 1000.0
                : static_cast<double>(raw);
        store_.ingestPoint(now, dev.map[idx].name, value);
        ++dev.status.samplesIngested;
    }
}

bool
ObsHub::drainDevice(Device &dev, Tick now)
{
    ObsDeviceStatus &st = dev.status;
    bool resync_pending = false;
    for (unsigned round = 0; round < kMaxDrainPerPoll; ++round) {
        std::vector<std::uint32_t> req{st.subId};
        if (resync_pending)
            req.push_back(0x1);  // full resync: re-send everything
        const CallOutcome out = call(dev, kCmdObsDelta, req);
        if (!out.ok() || out.response.status != kCmdOk) {
            ++st.pollFailures;
            return false;
        }
        const std::vector<std::uint32_t> &d = out.response.data;
        if (d.size() < 4 ||
            d.size() < 4 + static_cast<std::size_t>(d[3]) * 3) {
            ++st.pollFailures;
            return false;
        }
        const std::uint32_t seq = d[1];
        const std::uint32_t flags = d[2];
        const std::uint32_t k = d[3];
        const bool gap = seq != st.lastSeq + 1;
        st.epoch = d[0];
        st.lastSeq = seq;
        if (resync_pending) {
            ++st.resyncs;
            resync_pending = false;
        }

        if (flags & 0x1) {
            // The card re-froze the map under a new epoch; its
            // shadow is cleared, so the next response is a full
            // re-send against the new indices.
            ++st.mapReloads;
            if (!loadMap(dev)) {
                ++st.pollFailures;
                return false;
            }
            continue;
        }

        ingestRecords(dev, now, d, k);
        ++st.deltasApplied;

        if (gap) {
            // A produced response never reached us. Its samples live
            // only in the card's shadow now — ask for a full re-send.
            // Deltas carry cumulative values, so re-ingesting what we
            // did see cannot double-count.
            ++st.gapsDetected;
            resync_pending = true;
            continue;
        }
        if (!(flags & 0x2))
            break;
    }
    st.consecutiveFailures = 0;
    return true;
}

std::uint64_t
ObsHub::snapshotCostWords(const Device &dev) const
{
    // What one round of the same coverage costs as snapshot polling:
    // walk TelemetryList, then one TelemetrySnapshot per base metric
    // (a histogram's /p50 and /p99 ride its one 13-word snapshot).
    std::set<std::string> names;
    for (const ObsMapEntry &e : dev.map)
        names.insert(e.name);

    const auto isDerived = [&names](const std::string &n) {
        for (const char *suffix : {"/p50", "/p99"}) {
            const std::size_t len = std::string(suffix).size();
            if (n.size() > len &&
                n.compare(n.size() - len, len, suffix) == 0 &&
                names.count(n.substr(0, n.size() - len)) != 0)
                return true;
        }
        return false;
    };

    std::uint64_t words = 0;
    std::size_t bases = 0;
    for (const ObsMapEntry &e : dev.map) {
        if (isDerived(e.name))
            continue;
        ++bases;
        const bool histogram = names.count(e.name + "/p50") != 0;
        // Request carries one index word; the response carries kind
        // plus the value words.
        words += packetWords(1);
        words += packetWords(histogram ? 13 : 3);
    }

    // List pages: request one start word, response 2 + k records.
    constexpr std::size_t kRecord = 2 + TelemetryTarget::kNameWords;
    for (std::size_t at = 0; at < bases;
         at += TelemetryTarget::kListBatch) {
        const std::size_t k =
            std::min(TelemetryTarget::kListBatch, bases - at);
        words += packetWords(1);
        words += packetWords(2 + k * kRecord);
    }
    return words;
}

void
ObsHub::refreshRollups(Tick now)
{
    // Fleet liveness is itself a series, so "how many cards answer"
    // is SLO-able exactly like any gauge.
    double alive = 0.0;
    double subscribed = 0.0;
    for (const auto &kv : devices_) {
        if (!kv.second.status.subscribed)
            continue;
        subscribed += 1.0;
        if (kv.second.status.alive)
            alive += 1.0;
    }
    store_.ingestPoint(now, "fleet/devices/alive", alive);
    store_.ingestPoint(now, "fleet/devices/subscribed", subscribed);

    for (const std::string &core : rollups_) {
        double sum = 0.0;
        double mx = 0.0;
        std::size_t n = 0;
        for (const auto &kv : devices_) {
            const ObsDeviceStatus &st = kv.second.status;
            if (!st.subscribed || !st.alive)
                continue;
            const std::string name = st.prefix + core;
            if (!store_.has(name))
                continue;
            const double v = store_.latest(name);
            sum += v;
            mx = n == 0 ? v : std::max(mx, v);
            ++n;
        }
        if (n == 0)
            continue;
        store_.ingestPoint(now, "fleet/" + core + "/sum", sum);
        store_.ingestPoint(now, "fleet/" + core + "/max", mx);
    }
}

void
ObsHub::poll(Tick now)
{
    ++polls_;
    for (auto &kv : devices_) {
        Device &dev = kv.second;
        ObsDeviceStatus &st = dev.status;
        if (!st.subscribed)
            continue;
        if (dev.probe != nullptr) {
            if (!dev.probe()) {
                st.alive = false;
                continue;
            }
            if (st.consecutiveFailures < kDeadAfter)
                st.alive = true;  // probe revived it
        }
        if (!st.alive)
            continue;
        if (drainDevice(dev, now)) {
            snapshotWords_ += snapshotCostWords(dev);
        } else if (++st.consecutiveFailures >= kDeadAfter) {
            st.alive = false;
        }
    }
    refreshRollups(now);
    slo_.evaluate(now);
}

void
ObsHub::attachLiveness(const std::string &label,
                       std::function<bool()> probe)
{
    const auto it = devices_.find(label);
    if (it != devices_.end())
        it->second.probe = std::move(probe);
}

void
ObsHub::addRollup(const std::string &core)
{
    if (std::find(rollups_.begin(), rollups_.end(), core) ==
        rollups_.end())
        rollups_.push_back(core);
}

double
ObsHub::fleetQuantile(const std::string &core, double pct) const
{
    std::vector<double> values;
    for (const auto &kv : devices_) {
        const ObsDeviceStatus &st = kv.second.status;
        if (!st.subscribed || !st.alive)
            continue;
        const std::string name = st.prefix + core;
        if (store_.has(name))
            values.push_back(store_.latest(name));
    }
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        std::max(0.0, std::min(100.0, pct)) / 100.0 *
        static_cast<double>(values.size() - 1);
    return values[static_cast<std::size_t>(std::llround(rank))];
}

std::size_t
ObsHub::addFleetSlo(SloSpec spec)
{
    return slo_.addSpec(std::move(spec));
}

std::vector<std::string>
ObsHub::deviceLabels() const
{
    std::vector<std::string> out;
    for (const auto &kv : devices_)
        out.push_back(kv.first);
    return out;
}

std::size_t
ObsHub::aliveCount() const
{
    std::size_t n = 0;
    for (const auto &kv : devices_)
        if (kv.second.status.alive)
            ++n;
    return n;
}

const ObsDeviceStatus &
ObsHub::device(const std::string &label) const
{
    return devices_.at(label).status;
}

const std::vector<ObsMapEntry> &
ObsHub::deviceMap(const std::string &label) const
{
    return devices_.at(label).map;
}

std::uint64_t
ObsHub::gapsDetected() const
{
    std::uint64_t n = 0;
    for (const auto &kv : devices_)
        n += kv.second.status.gapsDetected;
    return n;
}

std::uint64_t
ObsHub::resyncs() const
{
    std::uint64_t n = 0;
    for (const auto &kv : devices_)
        n += kv.second.status.resyncs;
    return n;
}

std::string
ObsHub::summary() const
{
    std::string out;
    for (const auto &kv : devices_) {
        const ObsDeviceStatus &st = kv.second.status;
        char line[256];
        std::snprintf(
            line, sizeof line,
            "%-8s role=%-12s %-5s sub=%u epoch=%u seq=%u map=%zu "
            "deltas=%llu samples=%llu gaps=%llu resyncs=%llu\n",
            st.label.c_str(), st.role.c_str(),
            st.alive ? "alive" : "DEAD", st.subId, st.epoch,
            st.lastSeq, st.mapSize,
            static_cast<unsigned long long>(st.deltasApplied),
            static_cast<unsigned long long>(st.samplesIngested),
            static_cast<unsigned long long>(st.gapsDetected),
            static_cast<unsigned long long>(st.resyncs));
        out += line;
    }
    return out;
}

} // namespace harmonia
