/**
 * @file
 * Trace federation: fleet-level views over the causal span trace.
 * Every simulated card appends to the same process-wide Trace, and a
 * request that hops devices (a failover replay, a cross-card command)
 * keeps its 64-bit correlation id across the hop. Federation makes
 * that explicit: attribute each span to a device by its `who` track,
 * find the corrs that actually crossed devices, and stitch one corr's
 * spans into a single fleet-level tree rendered with per-device
 * attribution — the "what did this request touch, everywhere" query
 * an incident review starts with.
 */

#ifndef HARMONIA_OBS_TRACE_FEDERATION_H_
#define HARMONIA_OBS_TRACE_FEDERATION_H_

#include <string>
#include <vector>

#include "sim/trace.h"

namespace harmonia {

/** One span with its resolved device attribution. */
struct FederatedSpan {
    std::string device;  ///< matched label, or "host" for software
    Trace::Span span;
};

/** One correlation id's stitched fleet-level tree. */
struct FederatedTree {
    std::uint64_t corr = 0;
    std::vector<std::string> devices;  ///< distinct, name-sorted
    std::vector<FederatedSpan> spans;  ///< begin-then-id ordered
};

/**
 * Maps span `who` tracks to device labels. A span whose who starts
 * with a registered prefix (a shell name like "unified_DeviceA")
 * belongs to that device; everything else is host software.
 */
class TraceFederation {
  public:
    /** Register one device; @p who_prefix is typically the shell name. */
    void addDevice(const std::string &label,
                   const std::string &who_prefix);

    std::size_t deviceCount() const { return devices_.size(); }

    /** Device label for one span track ("host" when unmatched). */
    std::string deviceFor(const std::string &who) const;

    /**
     * Correlation ids whose completed spans touch at least
     * @p min_devices distinct devices (host attribution does not
     * count as a device). Ascending, deduplicated.
     */
    std::vector<std::uint64_t>
    crossDeviceCorrs(const Trace &trace,
                     std::size_t min_devices = 2) const;

    /** Stitch one corr's spans into a fleet-level tree. */
    FederatedTree treeForCorr(const Trace &trace,
                              std::uint64_t corr) const;

    /**
     * Render a federated tree as indented text, one line per hop with
     * device attribution, duration and self time. Deterministic.
     */
    static std::string render(const FederatedTree &tree);

  private:
    struct DevicePrefix {
        std::string label;
        std::string prefix;
    };

    std::vector<DevicePrefix> devices_;  ///< longest-prefix wins
};

} // namespace harmonia

#endif // HARMONIA_OBS_TRACE_FEDERATION_H_
