/**
 * @file
 * `harmonia-top`: a deterministic text dashboard over the ObsHub.
 * One row per federated card — role, watchdog/liveness verdict,
 * kernel buffer occupancy, command rate, service-time p99, stream
 * health (gaps, resyncs) and the worst alert state of any fleet SLO
 * scoped to that device — plus a footer with the fleet-level alerts
 * and the streamed-vs-snapshot wire accounting. Everything is
 * computed from the hub's time-series store with fixed-width, fixed
 * -precision formatting, so the same simulated history renders the
 * same bytes on every rerun and thread count: examples show it live,
 * tests byte-diff it.
 */

#ifndef HARMONIA_OBS_TOP_VIEW_H_
#define HARMONIA_OBS_TOP_VIEW_H_

#include <string>

#include "common/types.h"
#include "obs/hub.h"

namespace harmonia {

/** Rendering knobs; the defaults suit the 250 MHz kernel clock. */
struct TopOptions {
    /** Window the command rate is computed over. */
    Tick rateWindow = 50'000'000;
    /** Series cores each row reads (under the device prefix). */
    std::string occupancySeries = "uck/buffer_occupancy";
    std::string commandsSeries = "uck/commands_executed";
    std::string p99Series = "uck/service_time_ps/p99";
};

/** Render the dashboard at simulated time @p now. */
std::string renderTop(const ObsHub &hub, Tick now,
                      const TopOptions &options = {});

} // namespace harmonia

#endif // HARMONIA_OBS_TOP_VIEW_H_
