/**
 * @file
 * Host-side operational-intelligence client: walks the SLO and alert
 * state of a card over the same packetized command plane the BMC uses
 * for sensors (kCmdSloStatus / kCmdAlertSnapshot / kCmdFlightDump
 * at the telemetry target). This is the driver-level query API a
 * fleet manager polls — it never touches in-process obs objects, so
 * it works identically from a standalone tool or a remote controller.
 *
 * Replies cross a wire that faults can truncate or corrupt, so every
 * decode is strict: lengths are checked before each read, enum fields
 * are range-validated, and pagination counters from the card are
 * sanity-capped. A reply that fails any check yields a typed
 * OpsDecodeError (see lastError()) and never a partial or
 * out-of-bounds read.
 */

#ifndef HARMONIA_OBS_OPS_CLIENT_H_
#define HARMONIA_OBS_OPS_CLIENT_H_

#include <string>
#include <vector>

#include "host/cmd_driver.h"  // harmonia-lint: allow(LAYER-002) OpsClient decodes via CmdDriver
#include "obs/slo.h"

namespace harmonia {

/** One alert row decoded from an AlertSnapshot response. */
struct WireAlert {
    std::uint32_t index = 0;
    AlertState state = AlertState::Inactive;
    Tick since = 0;
    double burnRate = 0.0;
    std::string name;
};

/** One spec's full status decoded from an SloStatus response. */
struct WireSlo {
    std::uint32_t index = 0;
    SloKind kind = SloKind::ErrorRate;
    AlertState state = AlertState::Inactive;
    double objective = 0.0;
    Tick window = 0;
    double burnRate = 0.0;
    double budgetConsumed = 0.0;
    std::uint32_t pendingEvents = 0;
    std::uint32_t fireEvents = 0;
    std::uint32_t resolveEvents = 0;
    std::string name;
};

/** How the most recent OpsClient decode went. */
enum class OpsDecodeError : std::uint8_t {
    Ok = 0,
    Transport,  ///< the call itself failed (non-Ok wire status)
    Truncated,  ///< payload ends before the advertised records do
    Malformed,  ///< counts or enum fields outside the protocol range
};

const char *toString(OpsDecodeError err);

class OpsClient {
  public:
    /** No card registers anywhere near this many specs; a count
     *  beyond it is wire damage, not a big fleet. */
    static constexpr std::uint32_t kMaxWireRecords = 65535;

    explicit OpsClient(CmdDriver &driver) : driver_(driver) {}

    /** Registered spec count; 0 when no SLO engine is attached. */
    std::uint32_t sloCount();

    /** Full status of spec @p index; false on any wire failure. */
    bool readSlo(std::uint32_t index, WireSlo *out);

    /** Walk every alert (paged); empty on wire failure. */
    std::vector<WireAlert> readAlerts();

    /** Ask the card's flight recorder for a post-mortem dump. */
    bool requestDump();

    /** Classification of the last query's decode. */
    OpsDecodeError lastError() const { return lastError_; }

    // Pure reply decoders, exposed for direct fuzzing: each consumes
    // one CommandPacket, writes outputs only on Ok, and is guaranteed
    // never to read past resp.data regardless of the reply's claims.

    /** [count] header of a no-argument SloStatus reply. */
    static OpsDecodeError decodeSloCount(const CommandPacket &resp,
                                         std::uint32_t *count);

    /** Full single-spec SloStatus reply. */
    static OpsDecodeError decodeSlo(const CommandPacket &resp,
                                    WireSlo *out);

    /**
     * One AlertSnapshot page: appends its records to @p out and
     * reports the card's claimed @p total and this page's @p k.
     */
    static OpsDecodeError decodeAlertPage(const CommandPacket &resp,
                                          std::uint32_t *total,
                                          std::uint32_t *k,
                                          std::vector<WireAlert> *out);

  private:
    CmdDriver &driver_;
    OpsDecodeError lastError_ = OpsDecodeError::Ok;
};

} // namespace harmonia

#endif // HARMONIA_OBS_OPS_CLIENT_H_
