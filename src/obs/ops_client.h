/**
 * @file
 * Host-side operational-intelligence client: walks the SLO and alert
 * state of a card over the same packetized command plane the BMC uses
 * for sensors (kCmdSloStatus / kCmdAlertSnapshot / kCmdFlightDump
 * at the telemetry target). This is the driver-level query API a
 * fleet manager polls — it never touches in-process obs objects, so
 * it works identically from a standalone tool or a remote controller.
 */

#ifndef HARMONIA_OBS_OPS_CLIENT_H_
#define HARMONIA_OBS_OPS_CLIENT_H_

#include <string>
#include <vector>

#include "host/cmd_driver.h"  // harmonia-lint: allow(LAYER-002) OpsClient decodes via CmdDriver
#include "obs/slo.h"

namespace harmonia {

/** One alert row decoded from an AlertSnapshot response. */
struct WireAlert {
    std::uint32_t index = 0;
    AlertState state = AlertState::Inactive;
    Tick since = 0;
    double burnRate = 0.0;
    std::string name;
};

/** One spec's full status decoded from an SloStatus response. */
struct WireSlo {
    std::uint32_t index = 0;
    SloKind kind = SloKind::ErrorRate;
    AlertState state = AlertState::Inactive;
    double objective = 0.0;
    Tick window = 0;
    double burnRate = 0.0;
    double budgetConsumed = 0.0;
    std::uint32_t pendingEvents = 0;
    std::uint32_t fireEvents = 0;
    std::uint32_t resolveEvents = 0;
    std::string name;
};

class OpsClient {
  public:
    explicit OpsClient(CmdDriver &driver) : driver_(driver) {}

    /** Registered spec count; 0 when no SLO engine is attached. */
    std::uint32_t sloCount();

    /** Full status of spec @p index; false on any wire failure. */
    bool readSlo(std::uint32_t index, WireSlo *out);

    /** Walk every alert (paged); empty on wire failure. */
    std::vector<WireAlert> readAlerts();

    /** Ask the card's flight recorder for a post-mortem dump. */
    bool requestDump();

  private:
    CmdDriver &driver_;
};

} // namespace harmonia

#endif // HARMONIA_OBS_OPS_CLIENT_H_
